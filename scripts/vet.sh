#!/usr/bin/env bash
# Build datalaws-vet and run the full static-analysis sweep exactly as CI's
# static-analysis job does: the invariant suite over the plain and
# faultinject build trees (standalone and as a go vet tool), then the
# pinned third-party checkers when they are installed.
#
# Usage: scripts/vet.sh
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p bin
go build -o bin/datalaws-vet ./cmd/datalaws-vet

echo "== datalaws-vet ./... (standalone)"
./bin/datalaws-vet ./...
echo "== datalaws-vet -tags faultinject ./..."
./bin/datalaws-vet -tags faultinject ./...
echo "== go vet -vettool=bin/datalaws-vet ./..."
go vet -vettool="$PWD/bin/datalaws-vet" ./...
echo "== go vet ./... (stock analyzers)"
go vet ./...

# Third-party checkers are best-effort locally: CI pins and installs them;
# offline development boxes may not have them.
if command -v staticcheck >/dev/null 2>&1; then
  echo "== staticcheck"
  staticcheck -checks "inherit,-ST1000" ./...
else
  echo "== staticcheck not installed; skipping (CI runs it)"
fi
if command -v govulncheck >/dev/null 2>&1; then
  echo "== govulncheck"
  govulncheck ./...
else
  echo "== govulncheck not installed; skipping (CI runs it)"
fi

echo "static analysis clean"
