#!/usr/bin/env bash
# End-to-end smoke of model-shipping replication: boot a primary datalawsd
# with data and a fitted model, boot a second datalawsd as -replica-of the
# primary, and assert the replica (which never held a raw row) answers
# APPROX queries over the wire, rejects exact/ingest statements with the
# replica_readonly code, and reports a fresh feed in /metrics. Both
# processes must then drain cleanly on SIGTERM. Matches the CI
# "replica smoke" step.
#
# Usage: scripts/replica-smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
trap 'kill "$primary_pid" "$replica_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/datalawsd" ./cmd/datalawsd

# Bootstrap SQL: the law intensity = (2+s)*nu + s over 4 sources, then fit.
{
  echo "CREATE TABLE m (source BIGINT, nu DOUBLE, intensity DOUBLE)"
  awk 'BEGIN {
    for (s = 0; s < 4; s++)
      for (i = 1; i <= 8; i++) {
        nu = 0.25 * i
        printf "INSERT INTO m VALUES (%d, %g, %g)\n", s, nu, (2+s)*nu + s
      }
  }'
  echo "FIT MODEL law ON m AS 'intensity ~ a * nu + b' INPUTS (nu) GROUP BY source START (a = 1, b = 0)"
} >"$workdir/init.sql"

wait_portfile() {
  local file="$1" pid="$2" log="$3"
  for _ in $(seq 1 100); do
    [ -s "$file" ] && return 0
    kill -0 "$pid" 2>/dev/null || { cat "$log"; return 1; }
    sleep 0.1
  done
  echo "server never published its ports ($log)" >&2
  return 1
}

"$workdir/datalawsd" -listen 127.0.0.1:0 -metrics 127.0.0.1:0 \
  -init "$workdir/init.sql" -portfile "$workdir/primary.ports" \
  >"$workdir/primary.log" 2>&1 &
primary_pid=$!
wait_portfile "$workdir/primary.ports" "$primary_pid" "$workdir/primary.log"
primary_addr="$(sed -n 1p "$workdir/primary.ports")"

"$workdir/datalawsd" -listen 127.0.0.1:0 -metrics 127.0.0.1:0 \
  -replica-of "$primary_addr" -portfile "$workdir/replica.ports" \
  >"$workdir/replica.log" 2>&1 &
replica_pid=$!
wait_portfile "$workdir/replica.ports" "$replica_pid" "$workdir/replica.log"
replica_addr="$(sed -n 1p "$workdir/replica.ports")"
replica_metrics="$(sed -n 2p "$workdir/replica.ports")"
echo "replica-smoke: primary on $primary_addr, replica on $replica_addr"

# The checker retries internally while the first sync lands.
go run scripts/replica_check.go -replica "$replica_addr"

scrape="$(curl -fsS "http://$replica_metrics/metrics")"
echo "$scrape" | grep -E '^datalaws_replica_(connected|lag_seconds|deltas_applied_total) ' || {
  echo "replica-smoke: scrape missing replica series" >&2; exit 1; }
echo "$scrape" | awk '
  /^datalaws_replica_connected /      { up = $2 }
  /^datalaws_replica_lag_seconds /    { lag = $2 }
  END {
    if (up != 1)            { print "replica not connected to primary" > "/dev/stderr"; exit 1 }
    if (lag < 0 || lag > 30) { print "replica lag " lag " out of range" > "/dev/stderr"; exit 1 }
  }'

for role in replica primary; do
  pid_var="${role}_pid"
  kill -TERM "${!pid_var}"
  for _ in $(seq 1 100); do
    kill -0 "${!pid_var}" 2>/dev/null || break
    sleep 0.1
  done
  if kill -0 "${!pid_var}" 2>/dev/null; then
    echo "replica-smoke: $role ignored SIGTERM" >&2
    exit 1
  fi
  grep -q "drained cleanly" "$workdir/$role.log" || {
    echo "replica-smoke: $role drain did not complete cleanly:" >&2
    cat "$workdir/$role.log" >&2
    exit 1
  }
done
echo "replica-smoke: OK (model-only answers, readonly enforced, clean drains)"
