#!/usr/bin/env bash
# Run the full benchmark suite with allocation stats and record the output
# as a machine-readable baseline (standard `go test -bench` format, directly
# consumable by benchstat) under bench-results/.
#
# Usage: scripts/bench.sh [bench-regex]
#   scripts/bench.sh                       # everything
#   scripts/bench.sh 'ZeroIOScan|Vectorized'  # the row-vs-batch pairs
#   scripts/bench.sh prepared              # prepared vs parse-per-call
#   scripts/bench.sh ingest                # ingestion + background refit
set -euo pipefail
cd "$(dirname "$0")/.."

pattern="${1:-.}"
# Shorthand for the session-API comparison: prepared statements (bind-only
# executions) vs plan-LRU-cached vs parse-per-call.
if [ "$pattern" = "prepared" ]; then
  pattern='ApproxPointQuery|PreparedExactPoint|QueryStreamingFirstRow'
fi
# Shorthand for the live-data loop: batched vs per-row ingestion, query
# latency under concurrent appends, warm vs cold background refit, and the
# drift detector's per-batch overhead.
if [ "$pattern" = "ingest" ]; then
  pattern='Ingest|RefitWarmVsCold|DriftObserve|ModelRefitSwitch'
fi
# Shorthand for morsel-driven parallel execution: scan, group-by and
# grouped-fit scaling across 1/2/4/8 workers. Meaningful numbers need a
# machine with at least as many free cores as workers.
if [ "$pattern" = "parallel" ]; then
  pattern='ParallelScan|ParallelGroupBy|ParallelFit'
fi
# Shorthand for range partitioning: the selective query over a 16-partition
# table vs the identical unpartitioned one (pruning skips 15/16 partitions).
if [ "$pattern" = "partition" ]; then
  pattern='PartitionPruning'
fi
# Shorthand for write-ahead-log group commit: append throughput across
# 1/4/16 concurrent committers, with a real fsync per group vs a no-op one
# (the spread between the two is what group commit amortizes).
if [ "$pattern" = "wal" ]; then
  pattern='GroupCommit'
fi
# Shorthand for the network server: prepared point lookups, cursor
# streaming across batch sizes, and prepared ingest — each through a real
# TCP session, so the spread against the in-process benchmarks is the
# wire's price.
if [ "$pattern" = "serve" ]; then
  pattern='ServePointQuery|ServeScanCursor|ServeIngest'
fi
# Shorthand for model-shipping replication: end-to-end delta propagation
# (REFIT on the primary until installed on the replica) and APPROX point
# queries served by a row-less replica over the wire.
if [ "$pattern" = "replica" ]; then
  pattern='ReplicaDeltaApply|ReplicaPointQuery'
fi
# Shorthand for chunked column storage: selective and full scans over a
# 16-chunk table vs the same rows held entirely in the mutable hot tail
# (the selective spread is zone-map pruning; the full spread is decode
# cost amortized by the chunk cache).
if [ "$pattern" = "blocks" ]; then
  pattern='ChunkedScan'
fi
outdir="bench-results"
mkdir -p "$outdir"
stamp="$(date -u +%Y%m%dT%H%M%SZ)"
out="$outdir/bench-$stamp.txt"

go test -run='^$' -bench="$pattern" -benchmem -count=1 . | tee "$out"
echo >&2
echo "benchmark baseline written to $out" >&2
