#!/usr/bin/env bash
# Run the full benchmark suite with allocation stats and record the output
# as a machine-readable baseline (standard `go test -bench` format, directly
# consumable by benchstat) under bench-results/.
#
# Usage: scripts/bench.sh [bench-regex]
#   scripts/bench.sh                       # everything
#   scripts/bench.sh 'ZeroIOScan|Vectorized'  # the row-vs-batch pairs
#   scripts/bench.sh prepared              # prepared vs parse-per-call
set -euo pipefail
cd "$(dirname "$0")/.."

pattern="${1:-.}"
# Shorthand for the session-API comparison: prepared statements (bind-only
# executions) vs plan-LRU-cached vs parse-per-call.
if [ "$pattern" = "prepared" ]; then
  pattern='ApproxPointQuery|PreparedExactPoint|QueryStreamingFirstRow'
fi
outdir="bench-results"
mkdir -p "$outdir"
stamp="$(date -u +%Y%m%dT%H%M%SZ)"
out="$outdir/bench-$stamp.txt"

go test -run='^$' -bench="$pattern" -benchmem -count=1 . | tee "$out"
echo >&2
echo "benchmark baseline written to $out" >&2
