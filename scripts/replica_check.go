//go:build ignore

// replica_check probes a model-only replica for scripts/replica-smoke.sh:
// it waits for the model to replicate, asserts an APPROX point query
// answers with a sane WITH ERROR interval, and asserts exact and ingest
// statements are rejected with the replica_readonly sentinel.
//
//	go run scripts/replica_check.go -replica 127.0.0.1:PORT
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"datalaws/internal/server"
	"datalaws/internal/wireerr"
)

func main() {
	addr := flag.String("replica", "", "replica query address")
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "replica_check: -replica is required")
		os.Exit(2)
	}
	if err := check(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "replica_check: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("replica_check: OK")
}

func check(addr string) error {
	// The replica serves before its first sync completes; retry the point
	// query until the model lands or the budget expires.
	deadline := time.Now().Add(10 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		err := pointQuery(addr)
		if err == nil {
			return readonly(addr)
		}
		lastErr = err
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("model never became queryable: %w", lastErr)
}

func pointQuery(addr string) error {
	cli, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	rows, err := cli.Query(
		"APPROX SELECT intensity, intensity_lo, intensity_hi FROM m WHERE source = 2 AND nu = 0.5 WITH ERROR")
	if err != nil {
		return err
	}
	defer rows.Close()
	if !rows.Next() {
		return fmt.Errorf("point query returned no rows (err=%v)", rows.Err())
	}
	var y, lo, hi float64
	if err := rows.Scan(&y, &lo, &hi); err != nil {
		return err
	}
	// intensity = (2+2)*0.5 + 2 = 4 exactly (the init data is noiseless).
	if hi < lo || y < lo || y > hi {
		return fmt.Errorf("malformed interval: y=%g [%g, %g]", y, lo, hi)
	}
	if y < 3.9 || y > 4.1 {
		return fmt.Errorf("prediction %g far from the law's 4.0", y)
	}
	if rows.Model == "" {
		return fmt.Errorf("answer did not come from a model")
	}
	return nil
}

func readonly(addr string) error {
	cli, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	for _, stmt := range []string{
		"SELECT count(*) FROM m",
		"INSERT INTO m VALUES (9, 0.25, 1)",
	} {
		if _, err := cli.Exec(stmt); err == nil {
			return fmt.Errorf("%q succeeded on a replica", stmt)
		} else if !errors.Is(err, wireerr.ErrReplicaReadOnly) {
			return fmt.Errorf("%q: got %v, want replica_readonly", stmt, err)
		}
	}
	return nil
}
