#!/usr/bin/env bash
# Prove the invariant suite still has teeth: temporarily re-introduce two
# known past bug classes — a mutation bypassing the WAL gate and a dropped
# WAL fsync error — and assert datalaws-vet rejects the tree, naming the
# right analyzers. CI runs this after the clean sweep, so a weakened or
# accidentally disabled analyzer fails the build instead of rotting quietly.
#
# Usage: scripts/vet-canary.sh   (expects bin/datalaws-vet to exist;
#                                 scripts/vet.sh builds it)
set -euo pipefail
cd "$(dirname "$0")/.."

WALGATE_CANARY=canary_walgate_check.go
IOERRSINK_CANARY=internal/wal/canary_ioerrsink_check.go
cleanup() { rm -f "$WALGATE_CANARY" "$IOERRSINK_CANARY"; }
trap cleanup EXIT

cat > "$WALGATE_CANARY" <<'EOF'
package datalaws

// canaryDropUnlogged re-introduces the pre-WAL bug class: a catalog
// mutation that recovery can never replay. scripts/vet-canary.sh asserts
// the walgate analyzer rejects it.
func (e *Engine) canaryDropUnlogged(name string) bool {
	return e.Catalog.Drop(name)
}
EOF

cat > "$IOERRSINK_CANARY" <<'EOF'
package wal

// canarySyncDropped re-introduces the silent-loss bug class the WAL's
// sticky poisoning exists to kill: an fsync whose error nobody sees.
// scripts/vet-canary.sh asserts the ioerrsink analyzer rejects it.
func canarySyncDropped(f File) {
	f.Sync()
}
EOF

out=$(./bin/datalaws-vet ./... 2>&1) && {
  echo "FAIL: datalaws-vet accepted re-introduced known bugs"
  exit 1
}
echo "$out"
for analyzer in walgate ioerrsink; do
  if ! grep -q "\[$analyzer\]" <<<"$out"; then
    echo "FAIL: $analyzer did not flag its canary"
    exit 1
  fi
done
echo "canary check passed: re-introduced bugs are caught"
