#!/usr/bin/env bash
# End-to-end smoke of the network server: boot datalawsd on ephemeral
# ports, fire a loadgen burst at it (64 concurrent sessions, mixed
# point/scan/ingest), scrape /metrics, and assert the run was clean —
# loadgen saw zero protocol errors, the server recorded zero request
# errors, and the scrape reports qps and latency percentiles. Matches the
# CI "serve smoke" step.
#
# Usage: scripts/serve-smoke.sh [duration] [conns]
set -euo pipefail
cd "$(dirname "$0")/.."

duration="${1:-5s}"
conns="${2:-64}"

workdir="$(mktemp -d)"
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/datalawsd" ./cmd/datalawsd
go build -o "$workdir/loadgen" ./cmd/loadgen

"$workdir/datalawsd" -listen 127.0.0.1:0 -metrics 127.0.0.1:0 \
  -portfile "$workdir/ports" >"$workdir/server.log" 2>&1 &
server_pid=$!

# Wait for the portfile (the server writes it once both listeners bind).
for _ in $(seq 1 100); do
  [ -s "$workdir/ports" ] && break
  kill -0 "$server_pid" 2>/dev/null || { cat "$workdir/server.log"; exit 1; }
  sleep 0.1
done
[ -s "$workdir/ports" ] || { echo "server never published its ports" >&2; exit 1; }

addr="$(sed -n 1p "$workdir/ports")"
metrics="$(sed -n 2p "$workdir/ports")"
echo "serve-smoke: server on $addr, metrics on $metrics"

"$workdir/loadgen" -addr "$addr" -conns "$conns" -duration "$duration" -rate 1000

scrape="$(curl -fsS "http://$metrics/metrics")"
echo "$scrape" | grep -E '^datalaws_(qps|latency_p50_seconds|latency_p99_seconds) ' || {
  echo "serve-smoke: scrape missing qps/latency series" >&2; exit 1; }
errors="$(echo "$scrape" | awk '/^datalaws_query_errors_total /{print $2}')"
if [ "$errors" != "0" ]; then
  echo "serve-smoke: server recorded $errors request errors" >&2
  exit 1
fi

# Graceful drain: SIGTERM must stop the server cleanly.
kill -TERM "$server_pid"
for _ in $(seq 1 100); do
  kill -0 "$server_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
  echo "serve-smoke: server ignored SIGTERM" >&2
  exit 1
fi
grep -q "drained cleanly" "$workdir/server.log" || {
  echo "serve-smoke: drain did not complete cleanly:" >&2
  cat "$workdir/server.log" >&2
  exit 1
}
echo "serve-smoke: OK (zero errors, clean drain)"
