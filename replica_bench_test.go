// Benchmarks for model-shipping replication: how fast a refit on the
// primary lands on a replica (the full publish → long-poll → install
// path), and what a replica charges for an APPROX point query over the
// wire. Run with scripts/bench.sh replica.
package datalaws_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"datalaws"
	"datalaws/internal/expr"
	"datalaws/internal/server"
)

// benchPrimary boots a primary server over measurements-shaped table m
// with a fitted grouped model "law".
func benchPrimary(b *testing.B) (*server.Server, *datalaws.Engine) {
	b.Helper()
	eng := datalaws.NewEngine()
	eng.MustExec("CREATE TABLE m (source BIGINT, nu DOUBLE, intensity DOUBLE)")
	rng := rand.New(rand.NewSource(5))
	var rows [][]expr.Value
	for s := 0; s < 8; s++ {
		for i := 1; i <= 8; i++ {
			nu := 0.25 * float64(i)
			y := (2+float64(s))*nu + float64(s) + 0.05*rng.NormFloat64()
			rows = append(rows, []expr.Value{expr.Int(int64(s)), expr.Float(nu), expr.Float(y)})
		}
	}
	if _, err := eng.Append("m", rows); err != nil {
		b.Fatal(err)
	}
	eng.MustExec(`FIT MODEL law ON m AS 'intensity ~ a * nu + b'
		INPUTS (nu) GROUP BY source START (a = 1, b = 0)`)
	srv := server.New(eng, &server.Config{Logf: b.Logf})
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = srv.Close() })
	return srv, eng
}

// benchReplica attaches a synced replica to the primary.
func benchReplica(b *testing.B, addr string) (*datalaws.Engine, *server.Replicator) {
	b.Helper()
	reng, rep := server.OpenReplica(addr, &server.ReplicaConfig{PollWait: 5 * time.Millisecond})
	rep.Start()
	b.Cleanup(rep.Stop)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := reng.Models.Get("law"); ok {
			return reng, rep
		}
		if time.Now().After(deadline) {
			b.Fatal("replica never synced")
		}
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkReplicaDeltaApply measures end-to-end delta propagation: one
// REFIT on the primary until the new version is installed and queryable on
// the replica (publish, long-poll wake, wire, rebuild, cache prime).
func BenchmarkReplicaDeltaApply(b *testing.B) {
	srv, peng := benchPrimary(b)
	reng, _ := benchReplica(b, srv.Addr())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		peng.MustExec("REFIT MODEL law")
		want := i + 2 // fit is v1; each refit bumps
		for {
			if m, ok := reng.Models.Get("law"); ok && m.Version >= want {
				break
			}
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// BenchmarkReplicaPointQuery measures a prepared APPROX point lookup
// against a model-only replica through a real TCP session — the workload
// the replica exists to absorb.
func BenchmarkReplicaPointQuery(b *testing.B) {
	srv, _ := benchPrimary(b)
	reng, _ := benchReplica(b, srv.Addr())
	rsrv := server.New(reng, &server.Config{Logf: b.Logf})
	if err := rsrv.Serve("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = rsrv.Close() })
	cli, err := server.Dial(rsrv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = cli.Close() })
	st, err := cli.Prepare("APPROX SELECT intensity FROM m WHERE source = ? AND nu = ? WITH ERROR")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := st.Query(int64(i%8), 0.25*float64(i%8+1))
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for rows.Next() {
			n++
		}
		if err := rows.Err(); err != nil {
			b.Fatal(err)
		}
		if n != 1 {
			b.Fatal(fmt.Errorf("point query returned %d rows", n))
		}
	}
}
