package datalaws

import (
	"math"
	"strings"
	"testing"

	"datalaws/internal/capture"
	"datalaws/internal/expr"
	"datalaws/internal/synth"
)

// loadLOFAR builds an engine with a synthetic measurement table and returns
// the generator truth.
func loadLOFAR(t *testing.T, sources, obs int) (*Engine, *synth.LOFARData) {
	t.Helper()
	e := NewEngine()
	d := synth.GenerateLOFAR(synth.LOFARConfig{
		Sources: sources, ObsPerSource: obs, NoiseFrac: 0.03, AnomalyFrac: 0, Seed: 61,
	})
	tb, err := synth.LOFARTable("measurements", d)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	return e, d
}

func TestCreateInsertSelect(t *testing.T) {
	e := NewEngine()
	e.MustExec("CREATE TABLE m (source BIGINT, nu DOUBLE, intensity DOUBLE)")
	e.MustExec("INSERT INTO m VALUES (1, 0.12, 2.3), (1, 0.15, 2.1), (2, 0.12, 5.0)")
	res := e.MustExec("SELECT count(*), avg(intensity) FROM m WHERE source = 1")
	if res.Rows[0][0].I != 2 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	if math.Abs(res.Rows[0][1].F-2.2) > 1e-12 {
		t.Fatalf("avg = %v", res.Rows[0][1])
	}
}

func TestExecErrors(t *testing.T) {
	e := NewEngine()
	for _, q := range []string{
		"NOT SQL AT ALL",
		"SELECT a FROM missing",
		"INSERT INTO missing VALUES (1)",
		"DROP MODEL none",
		"REFIT MODEL none",
		"FIT MODEL x ON missing AS 'y ~ a*x' INPUTS (x)",
	} {
		if _, err := e.Exec(q); err == nil {
			t.Errorf("Exec(%q): want error", q)
		}
	}
}

func TestFitModelAndShowModels(t *testing.T) {
	e, _ := loadLOFAR(t, 20, 40)
	res := e.MustExec(`FIT MODEL spectra ON measurements
		AS 'intensity ~ p * pow(nu, alpha)'
		INPUTS (nu) GROUP BY source START (p = 1, alpha = -1)`)
	if res.Model != "spectra" || !strings.Contains(res.Info, "captured") {
		t.Fatalf("fit result = %+v", res)
	}
	show := e.MustExec("SHOW MODELS")
	if len(show.Rows) != 1 || show.Rows[0][0].S != "spectra" {
		t.Fatalf("show = %v", show.Rows)
	}
	// Median R² column should reflect a good fit.
	if show.Rows[0][4].F < 0.8 {
		t.Fatalf("median R² = %v", show.Rows[0][4])
	}
	e.MustExec("DROP MODEL spectra")
	if len(e.MustExec("SHOW MODELS").Rows) != 0 {
		t.Fatal("model not dropped")
	}
}

func TestApproxSelectEndToEnd(t *testing.T) {
	e, d := loadLOFAR(t, 20, 40)
	e.MustExec(`FIT MODEL spectra ON measurements
		AS 'intensity ~ p * pow(nu, alpha)'
		INPUTS (nu) GROUP BY source START (p = 1, alpha = -1)`)
	// The paper's point query, approximately answered with error bounds.
	res := e.MustExec(`APPROX SELECT intensity, intensity_lo, intensity_hi
		FROM measurements WHERE source = 5 AND nu = 0.15 WITH ERROR`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Model != "spectra" {
		t.Fatalf("model = %q", res.Model)
	}
	v, lo, hi := res.Rows[0][0].F, res.Rows[0][1].F, res.Rows[0][2].F
	truth := d.Truth[5]
	want := truth.P * math.Pow(0.15, truth.Alpha)
	if math.Abs(v-want)/want > 0.2 {
		t.Fatalf("value %g want %g", v, want)
	}
	if !(lo < v && v < hi) {
		t.Fatalf("bounds [%g,%g] around %g", lo, hi, v)
	}
}

func TestApproxRequiresTrustedModel(t *testing.T) {
	e, _ := loadLOFAR(t, 10, 40)
	if _, err := e.Exec("APPROX SELECT intensity FROM measurements WHERE source = 1"); err == nil {
		t.Fatal("want no-model error before any fit")
	}
}

func TestRefitFlow(t *testing.T) {
	e, _ := loadLOFAR(t, 10, 40)
	e.MustExec(`FIT MODEL spectra ON measurements
		AS 'intensity ~ p * pow(nu, alpha)'
		INPUTS (nu) GROUP BY source START (p = 1, alpha = -1)`)
	res := e.MustExec("REFIT MODEL spectra")
	if !strings.Contains(res.Info, "version 2") {
		t.Fatalf("refit info = %q", res.Info)
	}
}

func TestEngineAsCaptureBackend(t *testing.T) {
	e, d := loadLOFAR(t, 15, 40)
	// The Figure 2 workflow against the real engine, in process.
	s, err := capture.NewStrawman(e, "measurements")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRows() != len(d.Source) {
		t.Fatalf("strawman rows = %d", s.NumRows())
	}
	sum, err := s.Fit("spectra", "intensity ~ p * pow(nu, alpha)", []string{"nu"}, &capture.FitOptions{
		GroupBy: "source",
		Start:   map[string]float64{"p": 1, "alpha": -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Groups != 15 || sum.MedianR2 < 0.8 {
		t.Fatalf("summary = %+v", sum)
	}
	// The fit was transparently captured: APPROX works now.
	res := e.MustExec("APPROX SELECT intensity FROM measurements WHERE source = 2 AND nu = 0.12")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// And the strawman can ask for points directly.
	ans, err := s.Point("spectra", 2, []float64{0.12}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ans.Value-res.Rows[0][0].F) > 1e-9 {
		t.Fatalf("strawman point %g vs approx select %g", ans.Value, res.Rows[0][0].F)
	}
}

func TestEngineOverTCP(t *testing.T) {
	e, _ := loadLOFAR(t, 10, 40)
	srv, err := capture.Serve("127.0.0.1:0", e)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := capture.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	s, err := capture.NewStrawman(cli, "measurements")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.Fit("remote", "intensity ~ p * pow(nu, alpha)", []string{"nu"}, &capture.FitOptions{
		GroupBy: "source", Start: map[string]float64{"p": 1, "alpha": -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Groups != 10 {
		t.Fatalf("summary = %+v", sum)
	}
	ans, err := s.Point("remote", 1, []float64{0.16}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !(ans.Lo < ans.Value && ans.Value < ans.Hi) {
		t.Fatalf("answer = %+v", ans)
	}
}

func TestFormatResult(t *testing.T) {
	e := NewEngine()
	e.MustExec("CREATE TABLE t (a BIGINT, b VARCHAR)")
	e.MustExec("INSERT INTO t VALUES (1, 'x'), (22, 'yy')")
	out := FormatResult(e.MustExec("SELECT a, b FROM t ORDER BY a"))
	if !strings.Contains(out, "a") || !strings.Contains(out, "yy") {
		t.Fatalf("format:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestInsertNullAndSelectIsNull(t *testing.T) {
	e := NewEngine()
	e.MustExec("CREATE TABLE t (a BIGINT, b DOUBLE)")
	e.MustExec("INSERT INTO t VALUES (1, NULL), (2, 5.0)")
	res := e.MustExec("SELECT a FROM t WHERE b IS NULL")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestApproxGridMetadata(t *testing.T) {
	e, _ := loadLOFAR(t, 12, 40)
	e.MustExec(`FIT MODEL spectra ON measurements
		AS 'intensity ~ p * pow(nu, alpha)'
		INPUTS (nu) GROUP BY source START (p = 1, alpha = -1)`)
	res := e.MustExec("APPROX SELECT count(*) FROM measurements")
	if res.ApproxGrid != 12*4 {
		t.Fatalf("grid = %d, want 48", res.ApproxGrid)
	}
	// All (source, band) combinations occur in the generator, so the
	// zero-IO count equals the grid.
	if res.Rows[0][0].I != 48 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestExprValueRoundTripThroughEngine(t *testing.T) {
	e := NewEngine()
	e.MustExec("CREATE TABLE t (s VARCHAR, f DOUBLE)")
	e.MustExec("INSERT INTO t VALUES ('it''s', -1.5)")
	res := e.MustExec("SELECT s, f FROM t")
	if res.Rows[0][0].S != "it's" {
		t.Fatalf("string = %q", res.Rows[0][0].S)
	}
	if res.Rows[0][1].K != expr.KindFloat || res.Rows[0][1].F != -1.5 {
		t.Fatalf("float = %v", res.Rows[0][1])
	}
}
