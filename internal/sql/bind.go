package sql

import (
	"fmt"

	"datalaws/internal/expr"
)

// NumParams returns the number of `?` placeholders a parsed statement
// expects. Placeholders are positional and 1-based, so this is the highest
// parameter index referenced anywhere in the statement.
func NumParams(st Stmt) int {
	max := 0
	up := func(e expr.Expr) {
		if e == nil {
			return
		}
		if m := expr.MaxParam(e); m > max {
			max = m
		}
	}
	switch s := st.(type) {
	case *SelectStmt:
		for _, it := range s.Items {
			up(it.Expr)
		}
		for _, j := range s.Joins {
			up(j.On)
		}
		up(s.Where)
		for _, g := range s.GroupBy {
			up(g)
		}
		up(s.Having)
		for _, k := range s.OrderBy {
			up(k.Expr)
		}
	case *InsertStmt:
		for _, row := range s.Rows {
			for _, e := range row {
				up(e)
			}
		}
	case *FitModelStmt:
		up(s.Where)
	case *ExplainStmt:
		return NumParams(s.Inner)
	}
	return max
}

// BindParams returns a copy of st with every `?` placeholder replaced by the
// literal value at its position. The input statement is never mutated, so a
// prepared statement's AST can be bound concurrently by many sessions.
// Statements without placeholders are returned as-is.
func BindParams(st Stmt, args []expr.Value) (Stmt, error) {
	return BindPrepared(st, args, NumParams(st))
}

// BindPrepared is BindParams for callers that already know the statement's
// placeholder count (a prepared statement caches it), skipping the arity
// walk on the per-execution hot path.
func BindPrepared(st Stmt, args []expr.Value, want int) (Stmt, error) {
	if want != len(args) {
		return nil, fmt.Errorf("sql: statement expects %d parameters, got %d", want, len(args))
	}
	if want == 0 {
		return st, nil
	}
	switch s := st.(type) {
	case *SelectStmt:
		return bindSelect(s, args)
	case *InsertStmt:
		out := &InsertStmt{Table: s.Table, Rows: make([][]expr.Expr, len(s.Rows))}
		for i, row := range s.Rows {
			bound := make([]expr.Expr, len(row))
			for j, e := range row {
				b, err := expr.BindParams(e, args)
				if err != nil {
					return nil, err
				}
				bound[j] = b
			}
			out.Rows[i] = bound
		}
		return out, nil
	case *FitModelStmt:
		cp := *s
		w, err := expr.BindParams(s.Where, args)
		if err != nil {
			return nil, err
		}
		cp.Where = w
		return &cp, nil
	case *ExplainStmt:
		inner, err := bindSelect(s.Inner, args)
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Inner: inner}, nil
	}
	return nil, fmt.Errorf("sql: statement %T does not accept parameters", st)
}

func bindSelect(s *SelectStmt, args []expr.Value) (*SelectStmt, error) {
	cp := *s
	cp.Items = make([]SelectItem, len(s.Items))
	for i, it := range s.Items {
		b, err := expr.BindParams(it.Expr, args)
		if err != nil {
			return nil, err
		}
		cp.Items[i] = SelectItem{Expr: b, Alias: it.Alias, Star: it.Star}
	}
	if len(s.Joins) > 0 {
		cp.Joins = make([]JoinClause, len(s.Joins))
		for i, j := range s.Joins {
			b, err := expr.BindParams(j.On, args)
			if err != nil {
				return nil, err
			}
			cp.Joins[i] = JoinClause{Table: j.Table, On: b}
		}
	}
	w, err := expr.BindParams(s.Where, args)
	if err != nil {
		return nil, err
	}
	cp.Where = w
	if len(s.GroupBy) > 0 {
		cp.GroupBy = make([]expr.Expr, len(s.GroupBy))
		for i, g := range s.GroupBy {
			b, err := expr.BindParams(g, args)
			if err != nil {
				return nil, err
			}
			cp.GroupBy[i] = b
		}
	}
	h, err := expr.BindParams(s.Having, args)
	if err != nil {
		return nil, err
	}
	cp.Having = h
	if len(s.OrderBy) > 0 {
		cp.OrderBy = make([]OrderKey, len(s.OrderBy))
		for i, k := range s.OrderBy {
			b, err := expr.BindParams(k.Expr, args)
			if err != nil {
				return nil, err
			}
			cp.OrderBy[i] = OrderKey{Expr: b, Desc: k.Desc}
		}
	}
	return &cp, nil
}
