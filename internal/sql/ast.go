package sql

import (
	"datalaws/internal/expr"
	"datalaws/internal/storage"
)

// Stmt is any parsed statement.
type Stmt interface{ stmt() }

// SelectItem is one projection in a select list.
type SelectItem struct {
	Expr  expr.Expr
	Alias string // "" means derive from the expression
	Star  bool   // SELECT *
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr expr.Expr
	Desc bool
}

// JoinClause is an inner equi-join against another table.
type JoinClause struct {
	Table string
	On    expr.Expr
}

// SelectStmt is a (possibly approximate) query.
type SelectStmt struct {
	// Approx requests model-based approximate answering (the paper's
	// zero-IO scan path); WithError additionally asks for error-bound
	// columns on model-derived values.
	Approx    bool
	WithError bool

	Items   []SelectItem
	From    string
	Joins   []JoinClause
	Where   expr.Expr
	GroupBy []expr.Expr
	Having  expr.Expr
	OrderBy []OrderKey
	Limit   int // -1 means no limit
}

func (*SelectStmt) stmt() {}

// PartitionDef is one partition of a PARTITION BY RANGE clause: rows route
// here while the partition column is below Upper; Max marks VALUES LESS
// THAN (MAXVALUE).
type PartitionDef struct {
	Name  string
	Upper float64
	Max   bool
}

// PartitionBySpec is the PARTITION BY RANGE(col) (...) clause of CREATE
// TABLE.
type PartitionBySpec struct {
	Column string
	Parts  []PartitionDef
}

// CreateTableStmt creates a table, optionally range-partitioned.
type CreateTableStmt struct {
	Name string
	Cols []struct {
		Name string
		Type storage.ColType
	}
	Partition *PartitionBySpec
}

func (*CreateTableStmt) stmt() {}

// InsertStmt appends literal rows.
type InsertStmt struct {
	Table string
	Rows  [][]expr.Expr // literal expressions, evaluated with an empty env
}

func (*InsertStmt) stmt() {}

// FitModelStmt captures a user model server-side: the FIT MODEL extension.
//
//	FIT MODEL spectra ON measurements
//	    AS 'intensity ~ p * pow(nu, alpha)'
//	    INPUTS (nu) GROUP BY source
//	    START (p = 1, alpha = -1)
//	    [WHERE ...] [METHOD LM|GN]
type FitModelStmt struct {
	Name    string
	Table   string
	Formula string
	Inputs  []string
	GroupBy string // optional grouping column (one level, as in the paper)
	Where   expr.Expr
	Start   map[string]float64
	Method  string // "", "lm", "gn"
}

func (*FitModelStmt) stmt() {}

// ShowModelsStmt lists captured models.
type ShowModelsStmt struct{}

func (*ShowModelsStmt) stmt() {}

// DropModelStmt removes a captured model.
type DropModelStmt struct{ Name string }

func (*DropModelStmt) stmt() {}

// DropTableStmt removes a table; models captured on it are dropped with it.
type DropTableStmt struct{ Name string }

func (*DropTableStmt) stmt() {}

// RefitModelStmt re-fits a stale model against current data (the paper's
// "data or model changes" maintenance action).
type RefitModelStmt struct{ Name string }

func (*RefitModelStmt) stmt() {}

// ExplainStmt wraps a SELECT whose physical plan should be rendered instead
// of executed.
type ExplainStmt struct{ Inner *SelectStmt }

func (*ExplainStmt) stmt() {}
