package sql

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParserNeverPanics feeds randomized statement fragments to the parser;
// it must return errors, never panic.
func TestParserNeverPanics(t *testing.T) {
	fragments := []string{
		"SELECT", "APPROX", "FROM", "WHERE", "GROUP BY", "ORDER BY", "LIMIT",
		"FIT MODEL", "ON", "AS", "INPUTS", "START", "(", ")", ",", "*", "+",
		"-", "=", "<>", "<", "'str'", "42", "3.14", "ident", "t1", "nu",
		"count", "avg", "AND", "OR", "NOT", "NULL", "IS", "BETWEEN",
		"JOIN", "HAVING", "WITH ERROR", ";", "EXPLAIN", "--c\n", "''", "^",
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(fragments[rng.Intn(len(fragments))])
			sb.WriteByte(' ')
		}
		// Parse must not panic; error or success are both fine.
		_, _ = Parse(sb.String())
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestLexerNeverPanics feeds random byte strings to the lexer.
func TestLexerNeverPanics(t *testing.T) {
	f := func(input string) bool {
		_, _ = Lex(input)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestValidStatementsRoundRobin checks a battery of valid statements parse.
func TestValidStatementsRoundRobin(t *testing.T) {
	stmts := []string{
		"SELECT 1 + 2 AS three FROM t",
		"SELECT a, b, a*b FROM t WHERE a BETWEEN 1 AND 2 OR b IS NOT NULL",
		"APPROX SELECT x FROM t WHERE y = 3 WITH ERROR",
		"SELECT count(*), min(a), max(a), var(a), stddev(a) FROM t GROUP BY b HAVING count(*) > 1",
		"SELECT * FROM a JOIN b ON a.k = b.k JOIN c ON b.j = c.j",
		"CREATE TABLE t (a BIGINT, b DOUBLE, c VARCHAR, d BOOLEAN)",
		"INSERT INTO t VALUES (1, 2.5, 'x', TRUE), (2, NULL, '', FALSE)",
		"FIT MODEL m ON t AS 'y ~ a + b*x' INPUTS (x) METHOD GN",
		"EXPLAIN SELECT a FROM t ORDER BY a DESC LIMIT 10",
		"EXPLAIN APPROX SELECT a FROM t",
		"SHOW MODELS;",
		"REFIT MODEL m",
		"DROP MODEL m;",
		"SELECT a FROM t ORDER BY a ASC, b DESC, a+b",
		"SELECT -a ^ 2 FROM t",
	}
	for _, s := range stmts {
		if _, err := Parse(s); err != nil {
			t.Errorf("Parse(%q): %v", s, err)
		}
	}
}
