package sql

import (
	"testing"

	"datalaws/internal/storage"
)

func TestParseCreateTablePartitioned(t *testing.T) {
	st, err := Parse(`CREATE TABLE m (source BIGINT, nu DOUBLE, intensity DOUBLE)
		PARTITION BY RANGE(source) (
			PARTITION p0 VALUES LESS THAN (100),
			PARTITION neg VALUES LESS THAN (-2.5),
			PARTITION rest VALUES LESS THAN (MAXVALUE)
		)`)
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := st.(*CreateTableStmt)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if ct.Partition == nil {
		t.Fatal("missing partition spec")
	}
	if ct.Partition.Column != "source" {
		t.Fatalf("column = %q", ct.Partition.Column)
	}
	if len(ct.Partition.Parts) != 3 {
		t.Fatalf("parts = %d", len(ct.Partition.Parts))
	}
	p := ct.Partition.Parts
	if p[0].Name != "p0" || p[0].Upper != 100 || p[0].Max {
		t.Errorf("p0 = %+v", p[0])
	}
	if p[1].Name != "neg" || p[1].Upper != -2.5 || p[1].Max {
		t.Errorf("neg = %+v", p[1])
	}
	if p[2].Name != "rest" || !p[2].Max {
		t.Errorf("rest = %+v", p[2])
	}
	if len(ct.Cols) != 3 || ct.Cols[0].Type != storage.TypeInt64 {
		t.Errorf("cols = %+v", ct.Cols)
	}
	// Note: bound ordering is validated at CREATE time, not by the parser.
}

func TestParseCreateTableUnpartitionedUnchanged(t *testing.T) {
	st, err := Parse(`CREATE TABLE t (a BIGINT)`)
	if err != nil {
		t.Fatal(err)
	}
	if ct := st.(*CreateTableStmt); ct.Partition != nil {
		t.Fatalf("unexpected partition spec: %+v", ct.Partition)
	}
}

// TestPartitionWordsNotReserved pins that the contextual words of the
// PARTITION BY clause stay usable as ordinary identifiers everywhere else —
// pre-existing schemas with such column or table names must keep parsing.
func TestPartitionWordsNotReserved(t *testing.T) {
	for _, src := range []string{
		`SELECT range, less, than, maxvalue FROM partition`,
		`CREATE TABLE partition (range DOUBLE, less BIGINT, than TEXT, maxvalue BOOL)`,
		`SELECT x FROM t WHERE range > 5 ORDER BY partition`,
		`INSERT INTO range VALUES (1)`,
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
	// And a table named like a contextual word can itself be partitioned.
	st, err := Parse(`CREATE TABLE range (partition BIGINT) PARTITION BY RANGE(partition) (PARTITION less VALUES LESS THAN (MAXVALUE))`)
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTableStmt)
	if ct.Partition == nil || ct.Partition.Column != "partition" || ct.Partition.Parts[0].Name != "less" {
		t.Fatalf("partition spec = %+v", ct.Partition)
	}
}

func TestParsePartitionErrors(t *testing.T) {
	for _, src := range []string{
		`CREATE TABLE t (a BIGINT) PARTITION`,
		`CREATE TABLE t (a BIGINT) PARTITION BY HASH(a) (PARTITION p VALUES LESS THAN (1))`,
		`CREATE TABLE t (a BIGINT) PARTITION BY RANGE(a)`,
		`CREATE TABLE t (a BIGINT) PARTITION BY RANGE(a) ()`,
		`CREATE TABLE t (a BIGINT) PARTITION BY RANGE(a) (PARTITION p VALUES LESS THAN 1)`,
		`CREATE TABLE t (a BIGINT) PARTITION BY RANGE(a) (PARTITION p VALUES LESS THAN (1),)`,
		`CREATE TABLE t (a BIGINT) PARTITION BY RANGE(a) (PARTITION p LESS THAN (1))`,
		`CREATE TABLE t (a BIGINT) PARTITION BY RANGE(a) (PARTITION p VALUES LESS THAN (MAXVALUE)) trailing`,
		`CREATE TABLE t (a BIGINT) PARTITION BY RANGE() (PARTITION p VALUES LESS THAN (1))`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}
