package sql

import (
	"fmt"
	"strconv"
	"strings"

	"datalaws/internal/expr"
	"datalaws/internal/storage"
)

// Parse parses one SQL statement (a trailing semicolon is permitted).
func Parse(src string) (Stmt, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.accept(TokOp, ";")
	if p.peek().Kind != TokEOF {
		return nil, fmt.Errorf("sql: unexpected trailing %s", p.peek())
	}
	return st, nil
}

type parser struct {
	toks []Token
	i    int
	// nparams counts `?` placeholders seen so far; placeholders are numbered
	// 1..nparams in source order.
	nparams int
}

func (p *parser) peek() Token { return p.toks[p.i] }
func (p *parser) at(k TokKind, text string) bool {
	t := p.peek()
	return t.Kind == k && (text == "" || t.Text == text)
}
func (p *parser) advance() Token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}
func (p *parser) accept(k TokKind, text string) bool {
	if p.at(k, text) {
		p.advance()
		return true
	}
	return false
}
func (p *parser) expect(k TokKind, text string) (Token, error) {
	if !p.at(k, text) {
		want := text
		if want == "" {
			want = "identifier"
		}
		return Token{}, fmt.Errorf("sql: expected %s, found %s at offset %d", want, p.peek(), p.peek().Pos)
	}
	return p.advance(), nil
}

// atWord reports whether the next token is the given contextual word: an
// identifier spelled like it (case-insensitive). Words that are only
// meaningful inside one clause (PARTITION, RANGE, LESS, THAN, MAXVALUE)
// are matched this way instead of being reserved globally.
func (p *parser) atWord(word string) bool {
	t := p.peek()
	return t.Kind == TokIdent && strings.EqualFold(t.Text, word)
}

func (p *parser) acceptWord(word string) bool {
	if p.atWord(word) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectWord(word string) (Token, error) {
	if !p.atWord(word) {
		return Token{}, fmt.Errorf("sql: expected %s, found %s at offset %d", word, p.peek(), p.peek().Pos)
	}
	return p.advance(), nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.at(TokKeyword, "EXPLAIN"):
		p.advance()
		if !p.at(TokKeyword, "SELECT") && !p.at(TokKeyword, "APPROX") {
			return nil, fmt.Errorf("sql: EXPLAIN supports SELECT statements only, found %s", p.peek())
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Inner: sel}, nil
	case p.at(TokKeyword, "SELECT"), p.at(TokKeyword, "APPROX"):
		return p.parseSelect()
	case p.at(TokKeyword, "CREATE"):
		return p.parseCreateTable()
	case p.at(TokKeyword, "INSERT"):
		return p.parseInsert()
	case p.at(TokKeyword, "FIT"):
		return p.parseFitModel()
	case p.at(TokKeyword, "SHOW"):
		p.advance()
		if _, err := p.expect(TokKeyword, "MODELS"); err != nil {
			return nil, err
		}
		return &ShowModelsStmt{}, nil
	case p.at(TokKeyword, "DROP"):
		p.advance()
		if p.accept(TokKeyword, "TABLE") {
			name, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			return &DropTableStmt{Name: name.Text}, nil
		}
		if _, err := p.expect(TokKeyword, "MODEL"); err != nil {
			return nil, err
		}
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		return &DropModelStmt{Name: name.Text}, nil
	case p.at(TokKeyword, "REFIT"):
		p.advance()
		if _, err := p.expect(TokKeyword, "MODEL"); err != nil {
			return nil, err
		}
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		return &RefitModelStmt{Name: name.Text}, nil
	}
	return nil, fmt.Errorf("sql: unsupported statement starting with %s", p.peek())
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	st := &SelectStmt{Limit: -1}
	if p.accept(TokKeyword, "APPROX") {
		st.Approx = true
	}
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	for {
		if p.accept(TokOp, "*") {
			st.Items = append(st.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(TokKeyword, "AS") {
				a, err := p.expect(TokIdent, "")
				if err != nil {
					return nil, err
				}
				item.Alias = a.Text
			} else if p.at(TokIdent, "") {
				item.Alias = p.advance().Text
			}
			st.Items = append(st.Items, item)
		}
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	st.From = from.Text
	for p.at(TokKeyword, "JOIN") || p.at(TokKeyword, "INNER") {
		p.accept(TokKeyword, "INNER")
		if _, err := p.expect(TokKeyword, "JOIN"); err != nil {
			return nil, err
		}
		tbl, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Joins = append(st.Joins, JoinClause{Table: tbl.Text, On: on})
	}
	if p.accept(TokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.accept(TokKeyword, "GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Having = e
	}
	if p.accept(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			k := OrderKey{Expr: e}
			if p.accept(TokKeyword, "DESC") {
				k.Desc = true
			} else {
				p.accept(TokKeyword, "ASC")
			}
			st.OrderBy = append(st.OrderBy, k)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "LIMIT") {
		n, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, err
		}
		lim, err := strconv.Atoi(n.Text)
		if err != nil || lim < 0 {
			return nil, fmt.Errorf("sql: bad LIMIT %q", n.Text)
		}
		st.Limit = lim
	}
	if p.accept(TokKeyword, "WITH") {
		if _, err := p.expect(TokKeyword, "ERROR"); err != nil {
			return nil, err
		}
		st.WithError = true
	}
	return st, nil
}

func (p *parser) parseCreateTable() (*CreateTableStmt, error) {
	p.advance() // CREATE
	if _, err := p.expect(TokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	st := &CreateTableStmt{Name: name.Text}
	for {
		cn, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		t := p.advance()
		ct, err := typeFromKeyword(t)
		if err != nil {
			return nil, err
		}
		st.Cols = append(st.Cols, struct {
			Name string
			Type storage.ColType
		}{cn.Text, ct})
		if p.accept(TokOp, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	if p.atWord("PARTITION") {
		spec, err := p.parsePartitionBy()
		if err != nil {
			return nil, err
		}
		st.Partition = spec
	}
	return st, nil
}

// parsePartitionBy parses
//
//	PARTITION BY RANGE (col) (
//	    PARTITION p0 VALUES LESS THAN (10),
//	    PARTITION p1 VALUES LESS THAN (MAXVALUE)
//	)
func (p *parser) parsePartitionBy() (*PartitionBySpec, error) {
	p.advance() // PARTITION
	if _, err := p.expect(TokKeyword, "BY"); err != nil {
		return nil, err
	}
	if _, err := p.expectWord("RANGE"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	col, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	spec := &PartitionBySpec{Column: col.Text}
	for {
		if _, err := p.expectWord("PARTITION"); err != nil {
			return nil, err
		}
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "VALUES"); err != nil {
			return nil, err
		}
		if _, err := p.expectWord("LESS"); err != nil {
			return nil, err
		}
		if _, err := p.expectWord("THAN"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, "("); err != nil {
			return nil, err
		}
		def := PartitionDef{Name: name.Text}
		if p.acceptWord("MAXVALUE") {
			def.Max = true
		} else {
			neg := p.accept(TokOp, "-")
			num, err := p.expect(TokNumber, "")
			if err != nil {
				return nil, err
			}
			v, err := strconv.ParseFloat(num.Text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad partition bound %q", num.Text)
			}
			if neg {
				v = -v
			}
			def.Upper = v
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		spec.Parts = append(spec.Parts, def)
		if p.accept(TokOp, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	return spec, nil
}

func typeFromKeyword(t Token) (storage.ColType, error) {
	if t.Kind != TokKeyword {
		return 0, fmt.Errorf("sql: expected a type, found %s at offset %d", t, t.Pos)
	}
	switch t.Text {
	case "BIGINT", "INT", "INTEGER":
		return storage.TypeInt64, nil
	case "DOUBLE", "FLOAT":
		return storage.TypeFloat64, nil
	case "VARCHAR", "TEXT":
		return storage.TypeString, nil
	case "BOOLEAN", "BOOL":
		return storage.TypeBool, nil
	}
	return 0, fmt.Errorf("sql: unknown type %s at offset %d", t, t.Pos)
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	p.advance() // INSERT
	if _, err := p.expect(TokKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name.Text}
	for {
		if _, err := p.expect(TokOp, "("); err != nil {
			return nil, err
		}
		var row []expr.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(TokOp, ",") {
				break
			}
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	return st, nil
}

func (p *parser) parseFitModel() (*FitModelStmt, error) {
	p.advance() // FIT
	if _, err := p.expect(TokKeyword, "MODEL"); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "ON"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "AS"); err != nil {
		return nil, err
	}
	formula, err := p.expect(TokString, "")
	if err != nil {
		return nil, err
	}
	st := &FitModelStmt{Name: name.Text, Table: tbl.Text, Formula: formula.Text, Start: map[string]float64{}}
	for {
		switch {
		case p.accept(TokKeyword, "INPUTS"):
			if _, err := p.expect(TokOp, "("); err != nil {
				return nil, err
			}
			for {
				in, err := p.expect(TokIdent, "")
				if err != nil {
					return nil, err
				}
				st.Inputs = append(st.Inputs, in.Text)
				if !p.accept(TokOp, ",") {
					break
				}
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
		case p.accept(TokKeyword, "GROUP"):
			if _, err := p.expect(TokKeyword, "BY"); err != nil {
				return nil, err
			}
			g, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			st.GroupBy = g.Text
		case p.accept(TokKeyword, "WHERE"):
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Where = e
		case p.accept(TokKeyword, "START"):
			if _, err := p.expect(TokOp, "("); err != nil {
				return nil, err
			}
			for {
				pn, err := p.expect(TokIdent, "")
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokOp, "="); err != nil {
					return nil, err
				}
				neg := p.accept(TokOp, "-")
				num, err := p.expect(TokNumber, "")
				if err != nil {
					return nil, err
				}
				v, err := strconv.ParseFloat(num.Text, 64)
				if err != nil {
					return nil, fmt.Errorf("sql: bad start value %q", num.Text)
				}
				if neg {
					v = -v
				}
				st.Start[pn.Text] = v
				if !p.accept(TokOp, ",") {
					break
				}
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
		case p.accept(TokKeyword, "METHOD"):
			m, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			mm := strings.ToLower(m.Text)
			if mm != "lm" && mm != "gn" {
				return nil, fmt.Errorf("sql: METHOD must be LM or GN, got %q", m.Text)
			}
			st.Method = mm
		default:
			return st, nil
		}
	}
}

// --- embedded scalar expressions ---
//
// The expression grammar mirrors internal/expr but consumes SQL tokens so
// that clause keywords (FROM, GROUP, …) terminate expressions naturally.

func (p *parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &expr.Binary{Op: expr.OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &expr.Binary{Op: expr.OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.accept(TokKeyword, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &expr.Unary{Op: expr.OpNot, X: x}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]expr.Op{
	"=": expr.OpEq, "<>": expr.OpNe, "<": expr.OpLt,
	"<=": expr.OpLe, ">": expr.OpGt, ">=": expr.OpGe,
}

func (p *parser) parseCmp() (expr.Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.Kind == TokOp {
		if op, ok := cmpOps[t.Text]; ok {
			p.advance()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &expr.Binary{Op: op, L: l, R: r}, nil
		}
	}
	if p.accept(TokKeyword, "IS") {
		neg := p.accept(TokKeyword, "NOT")
		if _, err := p.expect(TokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &expr.IsNullExpr{X: l, Negate: neg}, nil
	}
	if p.accept(TokKeyword, "BETWEEN") {
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &expr.Binary{Op: expr.OpAnd,
			L: &expr.Binary{Op: expr.OpGe, L: l, R: lo},
			R: &expr.Binary{Op: expr.OpLe, L: l, R: hi},
		}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (expr.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokOp || (t.Text != "+" && t.Text != "-") {
			return l, nil
		}
		p.advance()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		op := expr.OpAdd
		if t.Text == "-" {
			op = expr.OpSub
		}
		l = &expr.Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMul() (expr.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokOp || (t.Text != "*" && t.Text != "/" && t.Text != "%") {
			return l, nil
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		var op expr.Op
		switch t.Text {
		case "*":
			op = expr.OpMul
		case "/":
			op = expr.OpDiv
		default:
			op = expr.OpMod
		}
		l = &expr.Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if p.accept(TokOp, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &expr.Unary{Op: expr.OpNeg, X: x}, nil
	}
	p.accept(TokOp, "+")
	return p.parsePow()
}

func (p *parser) parsePow() (expr.Expr, error) {
	base, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.accept(TokOp, "^") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &expr.Binary{Op: expr.OpPow, L: base, R: e}, nil
	}
	return base, nil
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.advance()
		if !strings.ContainsAny(t.Text, ".eE") {
			if i, err := strconv.ParseInt(t.Text, 10, 64); err == nil {
				return &expr.Lit{Val: expr.Int(i)}, nil
			}
		}
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q at offset %d", t.Text, t.Pos)
		}
		return &expr.Lit{Val: expr.Float(f)}, nil
	case TokString:
		p.advance()
		return &expr.Lit{Val: expr.Str(t.Text)}, nil
	case TokKeyword:
		switch t.Text {
		case "TRUE":
			p.advance()
			return &expr.Lit{Val: expr.Bool(true)}, nil
		case "FALSE":
			p.advance()
			return &expr.Lit{Val: expr.Bool(false)}, nil
		case "NULL":
			p.advance()
			return &expr.Lit{Val: expr.Null()}, nil
		}
		return nil, fmt.Errorf("sql: unexpected %s in expression at offset %d", t, t.Pos)
	case TokIdent:
		p.advance()
		name := t.Text
		// Qualified name a.b.
		if p.at(TokOp, ".") {
			p.advance()
			f, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			name = name + "." + f.Text
		}
		if p.accept(TokOp, "(") {
			var args []expr.Expr
			if p.accept(TokOp, "*") {
				// count(*) — encode as zero-arg call.
				if _, err := p.expect(TokOp, ")"); err != nil {
					return nil, err
				}
				return &expr.Call{Name: strings.ToLower(name)}, nil
			}
			if !p.at(TokOp, ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(TokOp, ",") {
						break
					}
				}
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return &expr.Call{Name: strings.ToLower(name), Args: args}, nil
		}
		return &expr.Ident{Name: name}, nil
	case TokOp:
		if t.Text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.Text == "?" {
			p.advance()
			p.nparams++
			return &expr.Param{Index: p.nparams}, nil
		}
	}
	return nil, fmt.Errorf("sql: unexpected %s in expression at offset %d", t, t.Pos)
}
