package sql

import (
	"strings"
	"testing"

	"datalaws/internal/expr"
)

func TestParseParamsSelect(t *testing.T) {
	st, err := Parse("SELECT a, b + ? FROM t WHERE a = ? AND b < ? ORDER BY a LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if n := NumParams(st); n != 3 {
		t.Fatalf("NumParams = %d, want 3", n)
	}
	sel := st.(*SelectStmt)
	// Placeholders are numbered in source order: select list first.
	if got := sel.Items[1].Expr.String(); !strings.Contains(got, "$1") {
		t.Fatalf("item expr = %s", got)
	}
	if got := sel.Where.String(); !strings.Contains(got, "$2") || !strings.Contains(got, "$3") {
		t.Fatalf("where expr = %s", got)
	}
}

func TestParseParamsInsert(t *testing.T) {
	st, err := Parse("INSERT INTO t VALUES (?, ?, 3), (?, 5, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if n := NumParams(st); n != 4 {
		t.Fatalf("NumParams = %d, want 4", n)
	}
}

func TestBindParamsProducesLiterals(t *testing.T) {
	st, err := Parse("SELECT a FROM t WHERE a = ? AND b = ?")
	if err != nil {
		t.Fatal(err)
	}
	bound, err := BindParams(st, []expr.Value{expr.Int(7), expr.Str("x")})
	if err != nil {
		t.Fatal(err)
	}
	where := bound.(*SelectStmt).Where.String()
	if !strings.Contains(where, "7") || !strings.Contains(where, "x") {
		t.Fatalf("bound where = %s", where)
	}
	// The template is untouched, so it can be re-bound.
	if tmpl := st.(*SelectStmt).Where.String(); !strings.Contains(tmpl, "$1") {
		t.Fatalf("template mutated: %s", tmpl)
	}
	again, err := BindParams(st, []expr.Value{expr.Int(9), expr.Str("y")})
	if err != nil {
		t.Fatal(err)
	}
	if w := again.(*SelectStmt).Where.String(); !strings.Contains(w, "9") {
		t.Fatalf("rebound where = %s", w)
	}
}

func TestBindParamsArity(t *testing.T) {
	st, err := Parse("SELECT a FROM t WHERE a = ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BindParams(st, nil); err == nil {
		t.Fatal("want error for missing args")
	}
	if _, err := BindParams(st, []expr.Value{expr.Int(1), expr.Int(2)}); err == nil {
		t.Fatal("want error for extra args")
	}
	// Parameter-free statements bind to themselves.
	free, err := Parse("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	bound, err := BindParams(free, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bound != free {
		t.Fatal("parameter-free statement should bind to itself")
	}
}

func TestUnboundParamFailsEval(t *testing.T) {
	st, err := Parse("SELECT a FROM t WHERE a = ?")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectStmt)
	if _, err := expr.Eval(sel.Where, expr.MapEnv{"a": expr.Int(1)}); err == nil {
		t.Fatal("evaluating an unbound parameter should error")
	}
}
