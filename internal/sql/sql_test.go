package sql

import (
	"strings"
	"testing"

	"datalaws/internal/storage"
)

func parseSelect(t *testing.T, src string) *SelectStmt {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *SelectStmt", src, st)
	}
	return sel
}

func TestParseBasicSelect(t *testing.T) {
	sel := parseSelect(t, "SELECT intensity FROM measurements WHERE source = 42 AND wavelength = 0.14")
	if sel.From != "measurements" {
		t.Fatalf("from = %q", sel.From)
	}
	if len(sel.Items) != 1 || sel.Items[0].Expr.String() != "intensity" {
		t.Fatalf("items = %+v", sel.Items)
	}
	if sel.Where == nil {
		t.Fatal("missing where")
	}
	if sel.Approx || sel.WithError {
		t.Fatal("flags should be unset")
	}
}

func TestParsePaperQueries(t *testing.T) {
	// Both example queries from §2 of the paper must parse.
	q1 := "SELECT intensity FROM measurements WHERE source = 42 AND wavelength = 0.14;"
	q2 := "SELECT source, intensity FROM measurements WHERE wavelength = 0.14 AND intensity > 3.0;"
	for _, q := range []string{q1, q2} {
		if _, err := Parse(q); err != nil {
			t.Fatalf("paper query %q: %v", q, err)
		}
	}
}

func TestParseApproxWithError(t *testing.T) {
	sel := parseSelect(t, "APPROX SELECT intensity FROM m WHERE source = 1 WITH ERROR")
	if !sel.Approx || !sel.WithError {
		t.Fatalf("flags = %v %v", sel.Approx, sel.WithError)
	}
}

func TestParseSelectFull(t *testing.T) {
	sel := parseSelect(t, `SELECT source, avg(intensity) AS mean_i FROM m
		WHERE nu > 0.1 GROUP BY source HAVING count(*) > 10
		ORDER BY mean_i DESC, source ASC LIMIT 5`)
	if len(sel.Items) != 2 || sel.Items[1].Alias != "mean_i" {
		t.Fatalf("items = %+v", sel.Items)
	}
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Fatal("group by / having")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Fatalf("order = %+v", sel.OrderBy)
	}
	if sel.Limit != 5 {
		t.Fatalf("limit = %d", sel.Limit)
	}
}

func TestParseImplicitAlias(t *testing.T) {
	sel := parseSelect(t, "SELECT intensity flux FROM m")
	if sel.Items[0].Alias != "flux" {
		t.Fatalf("alias = %q", sel.Items[0].Alias)
	}
}

func TestParseStar(t *testing.T) {
	sel := parseSelect(t, "SELECT * FROM m LIMIT 3")
	if !sel.Items[0].Star {
		t.Fatal("star not detected")
	}
}

func TestParseJoin(t *testing.T) {
	sel := parseSelect(t, "SELECT m.intensity, s.name FROM m JOIN s ON m.source = s.id WHERE s.name = 'pulsar'")
	if len(sel.Joins) != 1 || sel.Joins[0].Table != "s" {
		t.Fatalf("joins = %+v", sel.Joins)
	}
	if sel.Items[0].Expr.String() != "m.intensity" {
		t.Fatalf("qualified ident = %q", sel.Items[0].Expr.String())
	}
}

func TestParseInnerJoinKeyword(t *testing.T) {
	sel := parseSelect(t, "SELECT a FROM m INNER JOIN s ON m.k = s.k")
	if len(sel.Joins) != 1 {
		t.Fatal("inner join")
	}
}

func TestParseCreateTable(t *testing.T) {
	st, err := Parse("CREATE TABLE measurements (source BIGINT, nu DOUBLE, intensity DOUBLE, label VARCHAR, ok BOOLEAN)")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTableStmt)
	if ct.Name != "measurements" || len(ct.Cols) != 5 {
		t.Fatalf("%+v", ct)
	}
	wantTypes := []storage.ColType{storage.TypeInt64, storage.TypeFloat64, storage.TypeFloat64, storage.TypeString, storage.TypeBool}
	for i, w := range wantTypes {
		if ct.Cols[i].Type != w {
			t.Fatalf("col %d type = %v, want %v", i, ct.Cols[i].Type, w)
		}
	}
}

func TestParseInsert(t *testing.T) {
	st, err := Parse("INSERT INTO m VALUES (1, 0.12, 2.31), (2, 0.15, NULL)")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*InsertStmt)
	if ins.Table != "m" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 3 {
		t.Fatalf("%+v", ins)
	}
}

func TestParseFitModel(t *testing.T) {
	st, err := Parse(`FIT MODEL spectra ON measurements
		AS 'intensity ~ p * pow(nu, alpha)'
		INPUTS (nu) GROUP BY source START (p = 1, alpha = -0.5) METHOD LM`)
	if err != nil {
		t.Fatal(err)
	}
	fm := st.(*FitModelStmt)
	if fm.Name != "spectra" || fm.Table != "measurements" {
		t.Fatalf("%+v", fm)
	}
	if fm.Formula != "intensity ~ p * pow(nu, alpha)" {
		t.Fatalf("formula = %q", fm.Formula)
	}
	if len(fm.Inputs) != 1 || fm.Inputs[0] != "nu" {
		t.Fatalf("inputs = %v", fm.Inputs)
	}
	if fm.GroupBy != "source" {
		t.Fatalf("group by = %q", fm.GroupBy)
	}
	if fm.Start["p"] != 1 || fm.Start["alpha"] != -0.5 {
		t.Fatalf("start = %v", fm.Start)
	}
	if fm.Method != "lm" {
		t.Fatalf("method = %q", fm.Method)
	}
}

func TestParseFitModelWithWhere(t *testing.T) {
	st, err := Parse("FIT MODEL m1 ON t AS 'y ~ a + b*x' INPUTS (x) WHERE x > 0")
	if err != nil {
		t.Fatal(err)
	}
	fm := st.(*FitModelStmt)
	if fm.Where == nil {
		t.Fatal("missing where")
	}
}

func TestParseShowDropRefit(t *testing.T) {
	if st, err := Parse("SHOW MODELS"); err != nil {
		t.Fatal(err)
	} else if _, ok := st.(*ShowModelsStmt); !ok {
		t.Fatalf("%T", st)
	}
	if st, err := Parse("DROP MODEL spectra"); err != nil {
		t.Fatal(err)
	} else if st.(*DropModelStmt).Name != "spectra" {
		t.Fatal("name")
	}
	if st, err := Parse("REFIT MODEL spectra"); err != nil {
		t.Fatal(err)
	} else if st.(*RefitModelStmt).Name != "spectra" {
		t.Fatal("name")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM m",
		"SELECT a FROM",
		"SELECT a FROM m WHERE",
		"SELECT a FROM m GROUP",
		"SELECT a FROM m LIMIT -1",
		"SELECT a FROM m LIMIT x",
		"CREATE TABLE t (a NOTATYPE)",
		"CREATE TABLE t a BIGINT",
		"INSERT INTO t (1)",
		"FIT MODEL m ON t",
		"FIT MODEL m ON t AS 'y ~ x' METHOD XX",
		"DELETE FROM t",
		"SELECT a FROM m; SELECT b FROM m",
		"SELECT 'unterminated FROM m",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}

func TestParseBetween(t *testing.T) {
	sel := parseSelect(t, "SELECT a FROM m WHERE nu BETWEEN 0.1 AND 0.2")
	if !strings.Contains(sel.Where.String(), ">=") || !strings.Contains(sel.Where.String(), "<=") {
		t.Fatalf("between expansion = %s", sel.Where)
	}
}

func TestParseComments(t *testing.T) {
	sel := parseSelect(t, "SELECT a -- trailing comment\nFROM m")
	if sel.From != "m" {
		t.Fatal("comment handling")
	}
}

func TestParseCountStar(t *testing.T) {
	sel := parseSelect(t, "SELECT count(*) FROM m")
	if sel.Items[0].Expr.String() != "count()" {
		t.Fatalf("count(*) = %q", sel.Items[0].Expr.String())
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("SELECT @"); err == nil {
		t.Fatal("want lex error")
	}
	if _, err := Lex("'open"); err == nil {
		t.Fatal("want unterminated string error")
	}
}

func TestLexStringEscape(t *testing.T) {
	toks, err := Lex("'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "it's" {
		t.Fatalf("got %q", toks[0].Text)
	}
}

func TestParseDropTable(t *testing.T) {
	st, err := Parse("DROP TABLE measurements")
	if err != nil {
		t.Fatal(err)
	}
	d, ok := st.(*DropTableStmt)
	if !ok || d.Name != "measurements" {
		t.Fatalf("parsed %#v", st)
	}
	// DROP MODEL still parses as before.
	st, err = Parse("DROP MODEL spectra")
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := st.(*DropModelStmt); !ok || m.Name != "spectra" {
		t.Fatalf("parsed %#v", st)
	}
	if _, err := Parse("DROP spectra"); err == nil {
		t.Fatal("DROP without TABLE/MODEL should fail")
	}
}
