package sql

import (
	"testing"

	"datalaws/internal/expr"
)

// fuzzSeeds covers every statement kind plus the differential query corpus
// shapes: filters, 3VL edge cases, grouped aggregates, ORDER BY/LIMIT,
// joins, placeholders, APPROX/WITH ERROR, and the FIT MODEL extension.
// Crashers found by fuzzing get committed under testdata/fuzz and replayed
// by plain `go test`.
var fuzzSeeds = []string{
	"SELECT * FROM t",
	"SELECT id, x FROM t WHERE x > 0 AND y IS NULL",
	"SELECT id FROM t WHERE NOT (x > 0 OR y > 0)",
	"SELECT id FROM t WHERE x > NULL OR id < 3",
	"SELECT id, id + x, id * 2, id % 3, x / 2.0, -x FROM t",
	"SELECT id FROM t WHERE label = 'a' AND flag = TRUE",
	"SELECT count(*), sum(x), avg(x), min(x), max(x), var(x), stddev(x) FROM t",
	"SELECT grp, count(*) FROM t GROUP BY grp HAVING count(*) > 1 ORDER BY grp DESC LIMIT 3",
	"SELECT t.id, g.name FROM t JOIN g ON t.grp = g.grp ORDER BY t.id",
	"SELECT id, x AS ex FROM t ORDER BY ex DESC LIMIT 3",
	"APPROX SELECT intensity FROM m WHERE source = ? AND nu = ? WITH ERROR",
	"APPROX SELECT source, avg(intensity) FROM m GROUP BY source",
	"SELECT abs(x), pow(x, 2), min(x, y), round(x) FROM t WHERE x <> 0 AND 10.0 / x > 2",
	"CREATE TABLE m (source BIGINT, nu DOUBLE, intensity DOUBLE, label VARCHAR, ok BOOLEAN)",
	"DROP TABLE m",
	"INSERT INTO m VALUES (1, 0.5, 2.5), (2, NULL, -1e9)",
	"FIT MODEL spectra ON m AS 'intensity ~ p * pow(nu, alpha)' INPUTS (nu) GROUP BY source START (p = 1, alpha = -1)",
	"FIT MODEL lin ON m AS 'y ~ a + b * x' INPUTS (x) WHERE x > 0 METHOD gn",
	"SHOW MODELS",
	"DROP MODEL spectra",
	"REFIT MODEL spectra",
	"EXPLAIN SELECT * FROM t WHERE x = ?",
	"EXPLAIN APPROX SELECT intensity FROM m WHERE nu = 0.15",
	"SELECT 'unterminated",
	"SELECT 1e999, 0x, 9223372036854775808 FROM t",
	"select is null not between and or -- comment\n;",
	"((((((((((", "", " ", ";", "?", "'';''", "\x00\xff",
	// PARTITION BY RANGE grammar (the committed testdata/fuzz corpus covers
	// more shapes, including malformed ones).
	"CREATE TABLE t (k BIGINT, x DOUBLE) PARTITION BY RANGE(k) (PARTITION p0 VALUES LESS THAN (100), PARTITION p1 VALUES LESS THAN (MAXVALUE))",
	"CREATE TABLE t (k DOUBLE) PARTITION BY RANGE(k) (PARTITION neg VALUES LESS THAN (-2.5e3))",
	"CREATE TABLE t (k BIGINT) PARTITION BY RANGE(k) (PARTITION p VALUES LESS THAN",
}

// FuzzParse throws arbitrary statement text at the lexer and parser. The
// invariants: never panic, never return a nil statement without an error,
// and any parse that succeeds must survive parameter counting and
// placeholder binding (the prepared-statement path).
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if _, err := Lex(src); err != nil {
			// Lexer rejections are fine; the parser must cope either way.
			_ = err
		}
		st, err := Parse(src)
		if err != nil {
			return
		}
		if st == nil {
			t.Fatalf("Parse(%q) returned nil statement and nil error", src)
		}
		n := NumParams(st)
		if n < 0 {
			t.Fatalf("NumParams(%q) = %d", src, n)
		}
		if n > 0 && n <= 16 {
			vals := make([]expr.Value, n)
			for i := range vals {
				vals[i] = expr.Int(int64(i))
			}
			bound, err := BindPrepared(st, vals, n)
			if err == nil && bound == nil {
				t.Fatalf("BindPrepared(%q) returned nil statement and nil error", src)
			}
		}
	})
}
