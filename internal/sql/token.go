// Package sql implements the query language surface of the engine: a lexer,
// parser and AST for a SQL subset (SELECT with WHERE / GROUP BY / HAVING /
// ORDER BY / LIMIT / inner JOIN, CREATE TABLE, INSERT) extended with the
// paper's model statements: FIT MODEL captures a user model server-side,
// APPROX SELECT routes a query through the model store instead of the raw
// data, and WITH ERROR annotates approximate answers with error bounds.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind enumerates lexical token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp
)

// Token is one lexical token with its source offset.
type Token struct {
	Kind TokKind
	Text string // keywords are upper-cased; idents keep their spelling
	Pos  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

var keywords = map[string]bool{
	"SELECT": true, "APPROX": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true,
	"ASC": true, "DESC": true, "LIMIT": true, "AS": true,
	"JOIN": true, "INNER": true, "ON": true,
	"CREATE": true, "TABLE": true, "INSERT": true, "INTO": true, "VALUES": true,
	"FIT": true, "MODEL": true, "MODELS": true, "SHOW": true, "DROP": true,
	"START": true, "METHOD": true, "INPUTS": true, "WITH": true, "ERROR": true,
	"AND": true, "OR": true, "NOT": true, "NULL": true, "TRUE": true, "FALSE": true,
	"IS": true, "BETWEEN": true, "IN": true,
	"BIGINT": true, "DOUBLE": true, "VARCHAR": true, "BOOLEAN": true,
	"INT": true, "INTEGER": true, "FLOAT": true, "TEXT": true, "BOOL": true,
	"EXACT": true, "REFIT": true, "EXPLAIN": true,
}

// PARTITION, RANGE, LESS, THAN and MAXVALUE are deliberately NOT reserved:
// they appear only in the PARTITION BY clause of CREATE TABLE, where the
// parser matches them as contextual words (parser.atWord), so pre-existing
// schemas with columns named "range" or "partition" keep working.

// Lex tokenizes a statement.
func Lex(src string) ([]Token, error) {
	var toks []Token
	pos := 0
	for pos < len(src) {
		c := src[pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			pos++
		case c == '-' && pos+1 < len(src) && src[pos+1] == '-':
			// Line comment.
			for pos < len(src) && src[pos] != '\n' {
				pos++
			}
		case isDigit(c) || (c == '.' && pos+1 < len(src) && isDigit(src[pos+1])):
			start := pos
			seenDot, seenExp := false, false
		numLoop:
			for pos < len(src) {
				d := src[pos]
				switch {
				case isDigit(d):
					pos++
				case d == '.' && !seenDot && !seenExp:
					seenDot = true
					pos++
				case (d == 'e' || d == 'E') && !seenExp && pos > start:
					seenExp = true
					pos++
					if pos < len(src) && (src[pos] == '+' || src[pos] == '-') {
						pos++
					}
				default:
					break numLoop
				}
			}
			toks = append(toks, Token{Kind: TokNumber, Text: src[start:pos], Pos: start})
		case c == '\'':
			start := pos
			pos++
			var sb strings.Builder
			closed := false
			for pos < len(src) {
				if src[pos] == '\'' {
					if pos+1 < len(src) && src[pos+1] == '\'' {
						sb.WriteByte('\'')
						pos += 2
						continue
					}
					pos++
					closed = true
					break
				}
				sb.WriteByte(src[pos])
				pos++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string at offset %d", start)
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		case isIdentStart(c):
			start := pos
			for pos < len(src) && isIdentPart(src[pos]) {
				pos++
			}
			word := src[start:pos]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{Kind: TokKeyword, Text: up, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		default:
			if pos+1 < len(src) {
				two := src[pos : pos+2]
				switch two {
				case "<=", ">=", "<>", "!=":
					if two == "!=" {
						two = "<>"
					}
					toks = append(toks, Token{Kind: TokOp, Text: two, Pos: pos})
					pos += 2
					continue
				}
			}
			switch c {
			case '+', '-', '*', '/', '%', '^', '(', ')', ',', '=', '<', '>', ';', '.', '?':
				toks = append(toks, Token{Kind: TokOp, Text: string(c), Pos: pos})
				pos++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", rune(c), pos)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: len(src)})
	return toks, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return c == '_' || unicode.IsLetter(rune(c)) || isDigit(c) }
