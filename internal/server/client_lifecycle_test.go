package server

import (
	"errors"
	"runtime"
	"testing"
)

// Client lifecycle regression tests: closing a client — in any order
// relative to its cursors, and racing transport failure — must leave no
// session goroutine behind server-side and fail fast (not write to a dead
// socket) client-side.

func TestClientCloseIdempotent(t *testing.T) {
	srv, _ := newTestServer(t, 100, nil)
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cli.FetchRows = 8
	rows, err := cli.Query("SELECT a FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}

	if err := cli.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := cli.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
	// A cursor released after its client closed must fail fast with the
	// closed sentinel, not attempt the wire.
	if err := rows.Close(); !errors.Is(err, errClientClosed) {
		t.Fatalf("Rows.Close after Client.Close = %v, want errClientClosed", err)
	}
	if err := cli.Ping(); !errors.Is(err, errClientClosed) {
		t.Fatalf("Ping after Close = %v, want errClientClosed", err)
	}
}

func TestClientLifecycleNoGoroutineLeak(t *testing.T) {
	srv, _ := newTestServer(t, 2000, nil)
	// Warm one full cycle so lazily-started runtime goroutines don't count
	// against the baseline.
	func() {
		cli, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = cli.Close() }()
		if err := cli.Ping(); err != nil {
			t.Fatal(err)
		}
	}()
	waitFor(t, "warmup session to drain", func() bool { return srv.ActiveSessions() == 0 })
	runtime.GC()
	baseline := runtime.NumGoroutine()

	for i := 0; i < 30; i++ {
		cli, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		cli.FetchRows = 16
		rows, err := cli.Query("SELECT a, b FROM big")
		if err != nil {
			t.Fatal(err)
		}
		if !rows.Next() {
			t.Fatalf("iteration %d: no rows: %v", i, rows.Err())
		}
		// The cursor is mid-stream (2000 rows, batch 16). Exercise every
		// teardown order, including Rows.Close racing a client already
		// torn down.
		switch i % 3 {
		case 0:
			_ = rows.Close()
			_ = cli.Close()
		case 1:
			_ = cli.Close()
			_ = rows.Close()
		case 2:
			_ = cli.Close()
			_ = cli.Close()
		}
	}

	waitFor(t, "sessions to drain", func() bool { return srv.ActiveSessions() == 0 })
	waitFor(t, "goroutines to return to baseline", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+3
	})
}
