// Package server is the network face of the engine: a TCP server hosting
// concurrent per-connection sessions over a length-prefixed framed
// protocol, built directly on Engine.Query/Prepare. In the paper's
// client/server split the wire ships kilobyte-scale models and query
// answers, never raw measurement tables — so the protocol is built around
// small frames: point answers, batched cursor pulls with client-driven
// flow control, and prepared-statement ids that amortize planning across
// a session's executions.
//
// Protocol. Every message is one frame: a 4-byte big-endian payload
// length followed by a gob-encoded Request or Response. Each frame is an
// independent gob stream (its own type preamble), so a rejected or
// garbled frame cannot desync the session the way a shared stateful
// stream would, and the length prefix lets the server refuse oversized
// payloads before decoding allocates anything. Within a session,
// requests are processed in order; responses match request order.
//
// A query's row stream comes back as a cursor: the response to
// OpQuery/OpStmtQuery carries the first batch of rows plus a cursor id
// when more remain; the client pulls the rest with OpFetch (each pull
// capped by the client's MaxRows — the flow control), and OpCloseCursor
// releases a cursor early. Server-side the cursor maps 1:1 onto the lazy
// *datalaws.Rows, so an abandoned cursor never materializes the rest of
// the result, and a client disconnect cancels the session context, which
// aborts every in-flight scan mid-batch.
package server

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"datalaws/internal/expr"
)

// Op enumerates request opcodes.
type Op uint8

// Request opcodes. Append-only: the opcode is protocol surface.
const (
	// OpQuery executes one SQL statement (the server's plan-LRU serves
	// repeated texts) and replies with the first row batch.
	OpQuery Op = iota + 1
	// OpPrepare parses SQL once server-side and replies with a statement id.
	OpPrepare
	// OpStmtQuery executes a prepared statement with bound arguments.
	OpStmtQuery
	// OpFetch pulls the next row batch from an open cursor.
	OpFetch
	// OpCloseCursor releases an open cursor before exhaustion.
	OpCloseCursor
	// OpCloseStmt releases a prepared statement id.
	OpCloseStmt
	// OpPing is a liveness no-op.
	OpPing
	// OpSubscribeModels starts model replication: the reply is a full
	// snapshot of the primary's captured models (as deltas) plus the feed
	// cursor the subscriber polls from.
	OpSubscribeModels
	// OpModelDelta long-polls the model changefeed from a cursor position,
	// replying with the deltas published since — or an empty batch after
	// WaitMillis with no change.
	OpModelDelta
)

func (o Op) String() string {
	switch o {
	case OpQuery:
		return "query"
	case OpPrepare:
		return "prepare"
	case OpStmtQuery:
		return "stmt-query"
	case OpFetch:
		return "fetch"
	case OpCloseCursor:
		return "close-cursor"
	case OpCloseStmt:
		return "close-stmt"
	case OpPing:
		return "ping"
	case OpSubscribeModels:
		return "subscribe-models"
	case OpModelDelta:
		return "model-delta"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Request is one client frame.
type Request struct {
	Op Op
	// SQL is the statement text (OpQuery, OpPrepare).
	SQL string
	// Args bind `?` placeholders positionally (OpQuery, OpStmtQuery).
	Args []expr.Value
	// StmtID selects a prepared statement (OpStmtQuery, OpCloseStmt).
	StmtID uint64
	// CursorID selects an open cursor (OpFetch, OpCloseCursor).
	CursorID uint64
	// MaxRows caps the rows in the reply batch — the client-driven flow
	// control. 0 takes the server default.
	MaxRows int

	// FeedTerm/FeedSeq position an OpModelDelta poll on the changefeed
	// (the cursor returned by the previous subscribe or poll response).
	FeedTerm uint64
	FeedSeq  uint64
	// WaitMillis is how long an OpModelDelta poll may block waiting for
	// new deltas before replying empty. 0 returns immediately.
	WaitMillis int
	// MaxDeltas caps the deltas in one OpModelDelta reply. 0 takes the
	// server default.
	MaxDeltas int
}

// Response is one server frame.
type Response struct {
	// ErrCode/ErrMsg report a request failure (wireerr codes; empty on
	// success). A failed request never opens a cursor.
	ErrCode string
	ErrMsg  string

	// StmtID and NumParams answer OpPrepare.
	StmtID    uint64
	NumParams int

	// CursorID is non-zero while the cursor remains open server-side
	// (more batches to fetch). Columns is set on the first batch.
	CursorID uint64
	Columns  []string
	Rows     [][]expr.Value
	// Done marks the stream exhausted; the server has already released
	// the cursor.
	Done bool

	// Statement metadata, set on the first response of an execution
	// (mirrors datalaws.Rows).
	Info             string
	Model            string
	ModelVersion     int
	SEInflation      float64
	ExactFallback    bool
	Hybrid           bool
	Partitions       int
	PartitionsPruned int

	// Replication payload (OpSubscribeModels, OpModelDelta). Deltas carry
	// model parameters and table manifests, never rows; FeedTerm/FeedSeq is
	// the cursor to poll from next; Resync marks a reply that replaces the
	// subscriber's whole catalog rather than extending it (first subscribe,
	// or a poll whose cursor the primary could no longer serve
	// incrementally). Growth maps model name → fraction of unmodeled rows
	// appended since that model's fit, shipped on every reply so the
	// replica can widen its intervals for staleness it cannot observe.
	Deltas   []ModelDelta
	FeedTerm uint64
	FeedSeq  uint64
	Resync   bool
	Growth   map[string]float64
}

// DefaultMaxFrame bounds a single frame's payload. Row batches dominate
// frame size; 8MB comfortably fits the default batch of wide rows while
// refusing attacker-sized length prefixes before any allocation.
const DefaultMaxFrame = 8 << 20

// DefaultFetchRows is the server's batch size when the client sends
// MaxRows = 0.
const DefaultFetchRows = 256

// maxFetchRows caps what a client may request per pull, bounding the
// server-side batch buffer regardless of client behavior.
const maxFetchRows = 16384

// errFrameTooBig reports a frame whose declared length exceeds the cap.
type errFrameTooBig struct {
	n   uint32
	max int
}

func (e *errFrameTooBig) Error() string {
	return fmt.Sprintf("server: frame of %d bytes exceeds cap %d", e.n, e.max)
}

// writeMsg gob-encodes v and writes it as one length-prefixed frame.
// Each frame is a self-contained gob stream (see package comment).
func writeMsg(w io.Writer, v any, max int) error {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0}) // length placeholder
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("server: encode: %w", err)
	}
	payload := buf.Len() - 4
	if payload > max {
		return &errFrameTooBig{n: uint32(payload), max: max}
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b[:4], uint32(payload))
	_, err := w.Write(b)
	return err
}

// readMsg reads one frame and gob-decodes it into v, rejecting frames
// larger than max before allocating the payload.
func readMsg(r io.Reader, v any, max int) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int64(n) > int64(max) {
		return &errFrameTooBig{n: n, max: max}
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("server: decode: %w", err)
	}
	return nil
}
