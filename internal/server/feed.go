package server

// Model replication, the paper's client/server split taken to its
// conclusion: a replica that never holds a raw measurement row can still
// answer approximate queries, because everything the planner needs — model
// parameters, table manifests, enumerated input domains, observed-combo
// legal sets — is kilobytes, not gigabytes. The primary publishes its model
// store's changefeed over the session protocol: OpSubscribeModels replies
// with a full catalog snapshot plus a feed cursor, OpModelDelta long-polls
// that cursor for increments. Rows never cross this wire.

import (
	"fmt"
	"strings"
	"time"

	"datalaws/internal/aqp"
	"datalaws/internal/modelstore"
	"datalaws/internal/wireerr"
)

// defaultMaxDeltas bounds one OpModelDelta reply when the client sends
// MaxDeltas = 0; a resync (full snapshot) is never split.
const defaultMaxDeltas = 256

// maxWaitMillis caps how long one OpModelDelta poll may park server-side,
// bounding what a hostile WaitMillis can pin.
const maxWaitMillis = 60_000

// ModelDelta is one changefeed entry on the wire: a captured model's
// parameters plus the planning artifacts a row-less replica cannot derive
// itself. For drops only Kind and Name are set.
type ModelDelta struct {
	Kind  modelstore.ChangeKind
	Name  string
	Model *modelstore.ModelRecord

	// Table manifests the model's table (a partition child carries its
	// parent's partitioning so the replica can rebuild the family shape).
	// Nil when the primary's table vanished between publish and build.
	Table *TableMeta

	// Domains are the model's enumerated input domains and LegalGroups/
	// LegalInputs/LegalWidth the observed (group, inputs) combinations —
	// both scanned from rows the replica will never see. DomainsOK is
	// false when a domain exceeded the primary's MaxDistinct (the model
	// then serves only what the replica can answer without a grid);
	// LegalOK is false when the primary's legal set is inexact (Bloom),
	// in which case the replica falls back to admitting every combination.
	Domains     []aqp.Domain
	DomainsOK   bool
	LegalGroups []int64
	LegalInputs []float64
	LegalWidth  int
	LegalOK     bool
}

// TableMeta is a table's shape without its rows: enough for a replica to
// register a zero-row stub the planner can bind models against.
type TableMeta struct {
	// Name is the table the model references — a partition child's
	// "<parent>#<partition>" name when Parent is set.
	Name string
	// Parent/Column/Ranges carry the partitioned parent's declaration;
	// empty for plain tables.
	Parent string
	Column string
	Ranges []PartRange
	// Cols is the schema, types in storage.ColType encoding.
	Cols []ColMeta
}

// ColMeta is one schema column on the wire.
type ColMeta struct {
	Name string
	Type uint8
}

// PartRange mirrors table.RangePartition on the wire.
type PartRange struct {
	Name  string
	Upper float64
	Max   bool
}

// buildDelta turns one changefeed entry into its wire form, attaching the
// table manifest and the enumeration artifacts built with exactly the
// planner knobs the primary itself queries under.
func (s *Server) buildDelta(c modelstore.Change) ModelDelta {
	d := ModelDelta{Kind: c.Kind, Name: c.Name}
	if c.Kind == modelstore.ChangeDrop || c.Model == nil {
		return d
	}
	rec := modelstore.RecordOf(c.Model)
	d.Model = &rec
	t, ok := s.eng.Catalog.Get(c.Model.Spec.Table)
	if !ok {
		return d
	}
	d.Table = s.tableMeta(c.Model.Spec.Table)
	opts := s.eng.AQPOptions()
	cache := opts.Cache
	if cache == nil {
		cache = aqp.NewCache()
	}
	if doms, err := cache.Domains(t, c.Model, opts.MaxDistinct); err == nil {
		d.Domains, d.DomainsOK = doms, true
	}
	if ls, err := cache.Legal(t, c.Model, opts.UseBloom, opts.FPRate); err == nil {
		if groups, inputs, width, exact := aqp.ExportLegalCombos(ls); exact {
			d.LegalGroups, d.LegalInputs, d.LegalWidth, d.LegalOK = groups, inputs, width, true
		}
	}
	return d
}

// tableMeta manifests one catalog table; nil if it does not exist.
func (s *Server) tableMeta(name string) *TableMeta {
	t, ok := s.eng.Catalog.Get(name)
	if !ok {
		return nil
	}
	tm := &TableMeta{Name: name}
	for _, c := range t.Schema().Cols {
		tm.Cols = append(tm.Cols, ColMeta{Name: c.Name, Type: uint8(c.Type)})
	}
	if parent, _, found := strings.Cut(name, "#"); found {
		if pt, ok := s.eng.Catalog.GetPartitioned(parent); ok {
			tm.Parent = parent
			tm.Column = pt.Column()
			for _, rg := range pt.Ranges() {
				tm.Ranges = append(tm.Ranges, PartRange{Name: rg.Name, Upper: rg.Upper, Max: rg.Max})
			}
		}
	}
	return tm
}

// growthMap snapshots each model's unmodeled-row growth fraction. Shipped
// on every feed reply — growth moves on ingest, not on feed entries, so a
// replica polling an idle feed still learns its models are going stale.
func (s *Server) growthMap() map[string]float64 {
	models := s.eng.Models.List()
	if len(models) == 0 {
		return nil
	}
	g := make(map[string]float64, len(models))
	for _, m := range models {
		t, ok := s.eng.Catalog.Get(m.Spec.Table)
		if !ok {
			continue
		}
		if st := m.StalenessAgainst(t); st.GrowthFrac > 0 {
			g[m.Spec.Name] = st.GrowthFrac
		}
	}
	return g
}

// feedResponse assembles one subscribe/poll reply.
func (s *Server) feedResponse(changes []modelstore.Change, next modelstore.Cursor, resync bool) *Response {
	resp := &Response{
		Done:     true,
		Resync:   resync,
		FeedTerm: next.Term,
		FeedSeq:  next.Seq,
		Growth:   s.growthMap(),
	}
	if len(changes) > 0 {
		resp.Deltas = make([]ModelDelta, 0, len(changes))
		for _, c := range changes {
			resp.Deltas = append(resp.Deltas, s.buildDelta(c))
		}
	}
	s.metrics.RecordDeltasSent(len(resp.Deltas))
	return resp
}

// handleSubscribe answers OpSubscribeModels: the full current catalog as
// capture deltas, stamped with the cursor to poll from.
func (sess *session) handleSubscribe() *Response {
	srv := sess.srv
	if srv.isDraining() {
		return errResponse(fmt.Errorf("server: %w", wireerr.ErrDraining))
	}
	srv.metrics.RecordSubscribe()
	// A zero cursor can never match the store's term (terms start at 1),
	// so this is always the resync path: the whole catalog plus FeedPos.
	changes, next, _ := srv.eng.Models.ChangesSince(modelstore.Cursor{}, 0)
	return srv.feedResponse(changes, next, true)
}

// handleModelDelta answers OpModelDelta: deltas past the client's cursor,
// long-polling up to WaitMillis when the feed is caught up. The poll parks
// inside the session's request loop — the protocol is strictly
// request/response, so a subscriber session runs no other statements while
// waiting — and wakes on publish, timeout, client disconnect, or drain.
func (sess *session) handleModelDelta(req *Request) *Response {
	srv := sess.srv
	store := srv.eng.Models
	cur := modelstore.Cursor{Term: req.FeedTerm, Seq: req.FeedSeq}
	max := req.MaxDeltas
	if max <= 0 {
		max = defaultMaxDeltas
	}
	var timeout <-chan time.Time
	if w := req.WaitMillis; w > 0 {
		if w > maxWaitMillis {
			w = maxWaitMillis
		}
		timer := time.NewTimer(time.Duration(w) * time.Millisecond)
		defer timer.Stop()
		timeout = timer.C
	}
	for {
		if srv.isDraining() {
			return errResponse(fmt.Errorf("server: %w", wireerr.ErrDraining))
		}
		// Watch before ChangesSince: a publish in the gap closes this
		// channel, so the select below cannot sleep through it.
		wake := store.Watch()
		changes, next, resync := store.ChangesSince(cur, max)
		if len(changes) > 0 || resync || timeout == nil {
			return srv.feedResponse(changes, next, resync)
		}
		select {
		case <-wake:
		case <-timeout:
			// Caught up: an empty reply hands the cursor back unchanged
			// (next == cur here) with a fresh growth snapshot.
			return srv.feedResponse(nil, next, false)
		case <-sess.ctx.Done():
			return errResponse(fmt.Errorf("server: %w: session closed", wireerr.ErrBadRequest))
		case <-srv.done:
			return errResponse(fmt.Errorf("server: %w", wireerr.ErrDraining))
		}
	}
}
