package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"datalaws"
	"datalaws/internal/expr"
	"datalaws/internal/modelstore"
	"datalaws/internal/wal"
	"datalaws/internal/wireerr"
)

// Replica tests: a model-only replica follows the primary's changefeed and
// answers APPROX queries whose intervals contain the primary's own
// fresh-model answers, while rejecting anything that needs raw rows.

// lawRows synthesizes intensity = (2+s)*nu + s + noise for sources
// 0..groups-1 over nu = 0.25..2.0.
func lawRows(groups int, noise float64, seed int64) [][]expr.Value {
	rng := rand.New(rand.NewSource(seed))
	var rows [][]expr.Value
	for s := 0; s < groups; s++ {
		for i := 1; i <= 8; i++ {
			nu := 0.25 * float64(i)
			y := (2+float64(s))*nu + float64(s) + noise*rng.NormFloat64()
			rows = append(rows, []expr.Value{expr.Int(int64(s)), expr.Float(nu), expr.Float(y)})
		}
	}
	return rows
}

// newPrimary boots a primary server over table m with a fitted grouped
// model "law".
func newPrimary(t *testing.T) (*Server, *datalaws.Engine) {
	t.Helper()
	eng := datalaws.NewEngine()
	eng.MustExec("CREATE TABLE m (source BIGINT, nu DOUBLE, intensity DOUBLE)")
	if _, err := eng.Append("m", lawRows(4, 0.05, 11)); err != nil {
		t.Fatal(err)
	}
	eng.MustExec(`FIT MODEL law ON m AS 'intensity ~ a * nu + b'
		INPUTS (nu) GROUP BY source START (a = 1, b = 0)`)
	srv := New(eng, &Config{Logf: t.Logf})
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, eng
}

// newReplica attaches a replica to addr and serves it on its own port,
// returning the replica engine, its replicator, and a wire client against
// the replica's server.
func newReplica(t *testing.T, addr string) (*datalaws.Engine, *Replicator, *Client) {
	t.Helper()
	reng, rep := OpenReplica(addr, &ReplicaConfig{PollWait: 25 * time.Millisecond, Logf: t.Logf})
	rep.Start()
	t.Cleanup(rep.Stop)
	rsrv := New(reng, &Config{Logf: t.Logf})
	if err := rsrv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rsrv.Close() })
	return reng, rep, dialTest(t, rsrv)
}

// replicaHasModel waits for name to arrive (at minimum version v) over the
// feed.
func replicaHasModel(t *testing.T, reng *datalaws.Engine, name string, v int) {
	t.Helper()
	waitFor(t, fmt.Sprintf("replica model %q v%d", name, v), func() bool {
		m, ok := reng.Models.Get(name)
		return ok && m.Version >= v
	})
}

// approxInterval runs one WITH ERROR point query over the wire and returns
// (value, lo, hi).
func approxInterval(t *testing.T, cli *Client, source int64, nu float64) (y, lo, hi float64) {
	t.Helper()
	rows, err := cli.Query(fmt.Sprintf(
		"APPROX SELECT intensity, intensity_lo, intensity_hi FROM m WHERE source = %d AND nu = %g WITH ERROR",
		source, nu))
	if err != nil {
		t.Fatalf("replica approx (%d, %g): %v", source, nu, err)
	}
	defer func() { _ = rows.Close() }()
	if !rows.Next() {
		t.Fatalf("replica approx (%d, %g): no row (err=%v)", source, nu, rows.Err())
	}
	if err := rows.Scan(&y, &lo, &hi); err != nil {
		t.Fatal(err)
	}
	return y, lo, hi
}

// primaryApprox returns the primary's fresh-model point prediction.
func primaryApprox(t *testing.T, eng *datalaws.Engine, source int64, nu float64) float64 {
	t.Helper()
	res := eng.MustExec(fmt.Sprintf(
		"APPROX SELECT intensity FROM m WHERE source = %d AND nu = %g", source, nu))
	if len(res.Rows) != 1 {
		t.Fatalf("primary approx (%d, %g): %d rows", source, nu, len(res.Rows))
	}
	return res.Rows[0][0].F
}

func TestReplicaServesModelAnswersWithoutRows(t *testing.T) {
	srv, peng := newPrimary(t)
	reng, _, cli := newReplica(t, srv.Addr())
	replicaHasModel(t, reng, "law", 1)

	// The replica holds zero rows, yet answers point queries with
	// intervals containing the primary's fresh prediction.
	if tb, ok := reng.Catalog.Get("m"); !ok || tb.NumRows() != 0 {
		t.Fatalf("replica stub table: ok=%v rows=%d, want empty stub", ok, tb.NumRows())
	}
	for s := int64(0); s < 4; s++ {
		want := primaryApprox(t, peng, s, 0.5)
		_, lo, hi := approxInterval(t, cli, s, 0.5)
		if want < lo || want > hi {
			t.Fatalf("source %d: primary %g outside replica interval [%g, %g]", s, want, lo, hi)
		}
	}

	// Aggregates ride the same model grid.
	rows, err := cli.Query("APPROX SELECT avg(intensity) FROM m WHERE source = 2 WITH ERROR")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("aggregate: no row (err=%v)", rows.Err())
	}
	var avg float64
	if err := rows.Scan(&avg); err != nil {
		t.Fatal(err)
	}
	_ = rows.Close()
	pres := peng.MustExec("APPROX SELECT avg(intensity) FROM m WHERE source = 2")
	if got, want := avg, pres.Rows[0][0].F; got != want {
		t.Fatalf("aggregate from identical model params: replica %g != primary %g", got, want)
	}
	if rows.Model == "" {
		t.Fatal("replica answer did not come from a model")
	}
}

func TestReplicaRejectsRowsAndWrites(t *testing.T) {
	srv, _ := newPrimary(t)
	reng, _, cli := newReplica(t, srv.Addr())
	replicaHasModel(t, reng, "law", 1)

	for _, stmt := range []string{
		"INSERT INTO m VALUES (9, 0.1, 0.2)",
		"SELECT count(*) FROM m",
		"CREATE TABLE scratch (x BIGINT)",
		"FIT MODEL law2 ON m AS 'intensity ~ a * nu' INPUTS (nu) START (a = 1)",
		"DROP MODEL law",
	} {
		_, err := cli.Exec(stmt)
		if err == nil {
			t.Fatalf("%q succeeded on a model-only replica", stmt)
		}
		if !errors.Is(err, wireerr.ErrReplicaReadOnly) {
			t.Fatalf("%q: error %v does not unwrap to ErrReplicaReadOnly", stmt, err)
		}
	}
}

func TestReplicaFollowsRefitAndDrop(t *testing.T) {
	srv, peng := newPrimary(t)
	reng, _, cli := newReplica(t, srv.Addr())
	replicaHasModel(t, reng, "law", 1)

	// Refit after more data: the replica picks up the new version and its
	// intervals track the refreshed parameters.
	if _, err := peng.Append("m", lawRows(4, 0.05, 12)); err != nil {
		t.Fatal(err)
	}
	peng.MustExec("REFIT MODEL law")
	replicaHasModel(t, reng, "law", 2)
	want := primaryApprox(t, peng, 1, 0.75)
	_, lo, hi := approxInterval(t, cli, 1, 0.75)
	if want < lo || want > hi {
		t.Fatalf("post-refit: primary %g outside replica interval [%g, %g]", want, lo, hi)
	}

	// Drop propagates; with FallbackExact forced off the replica then has
	// no way to answer.
	peng.MustExec("DROP MODEL law")
	waitFor(t, "model drop to replicate", func() bool {
		_, ok := reng.Models.Get("law")
		return !ok
	})
	if _, err := cli.Exec("APPROX SELECT intensity FROM m WHERE source = 1 AND nu = 0.75"); err == nil {
		t.Fatal("APPROX query answered after its model was dropped")
	} else if !errors.Is(err, modelstore.ErrNoModel) {
		t.Fatalf("want ErrNoModel after drop, got %v", err)
	}
}

// TestReplicaDifferentialContainment is the consistency harness: across the
// whole fitted grid, every replica interval contains the primary's
// fresh-model answer — first in steady state, then through a staleness
// window where the primary has ingested and refitted but the replica is
// frozen on the old model with only its growth-widened bounds.
func TestReplicaDifferentialContainment(t *testing.T) {
	srv, peng := newPrimary(t)
	reng, rep, cli := newReplica(t, srv.Addr())
	replicaHasModel(t, reng, "law", 1)

	sweep := func(phase string) {
		t.Helper()
		for s := int64(0); s < 4; s++ {
			for i := 1; i <= 8; i++ {
				nu := 0.25 * float64(i)
				want := primaryApprox(t, peng, s, nu)
				_, lo, hi := approxInterval(t, cli, s, nu)
				if want < lo || want > hi {
					t.Fatalf("%s (%d, %g): primary %g outside replica [%g, %g]",
						phase, s, nu, want, lo, hi)
				}
			}
		}
	}
	sweep("steady state")

	// Staleness window: the primary ingests a slightly drifted batch; the
	// replica learns the growth fraction (its inflation floor rises) and
	// is then frozen — exactly the state of a replica mid-refit. After the
	// primary refits, the frozen replica's widened stale intervals must
	// still contain the primary's fresh answers.
	rng := rand.New(rand.NewSource(13))
	var drifted [][]expr.Value
	for s := 0; s < 4; s++ {
		for i := 1; i <= 8; i++ {
			nu := 0.25 * float64(i)
			y := (2+float64(s))*nu + float64(s) + 0.02 + 0.05*rng.NormFloat64()
			drifted = append(drifted, []expr.Value{expr.Int(int64(s)), expr.Float(nu), expr.Float(y)})
		}
	}
	if _, err := peng.Append("m", drifted); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "growth to reach replica", func() bool {
		return rep.InflationFor("law") > 1.0
	})
	rep.Stop()
	peng.MustExec("REFIT MODEL law")
	if m, _ := reng.Models.Get("law"); m.Version != 1 {
		t.Fatalf("replica refitted while frozen: version %d", m.Version)
	}
	sweep("staleness window")

	// The widening is visible in the answer metadata.
	rows, err := cli.Query("APPROX SELECT intensity FROM m WHERE source = 1 AND nu = 0.75 WITH ERROR")
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	_ = rows.Close()
	if rows.SEInflation <= 1.0 {
		t.Fatalf("stale replica answered with SEInflation %g, want > 1", rows.SEInflation)
	}
}

func TestReplicaPartitionedFamily(t *testing.T) {
	eng := datalaws.NewEngine()
	eng.MustExec(`CREATE TABLE m (source BIGINT, nu DOUBLE, intensity DOUBLE) PARTITION BY RANGE(source) (
		PARTITION p0 VALUES LESS THAN (2),
		PARTITION p1 VALUES LESS THAN (MAXVALUE))`)
	if _, err := eng.Append("m", lawRows(4, 0.05, 14)); err != nil {
		t.Fatal(err)
	}
	eng.MustExec(`FIT MODEL law ON m AS 'intensity ~ a * nu + b'
		INPUTS (nu) GROUP BY source START (a = 1, b = 0)`)
	srv := New(eng, &Config{Logf: t.Logf})
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	reng, _, cli := newReplica(t, srv.Addr())
	replicaHasModel(t, reng, "law#p0", 1)
	replicaHasModel(t, reng, "law#p1", 1)
	if _, ok := reng.Catalog.GetPartitioned("m"); !ok {
		t.Fatal("replica did not rebuild the partitioned parent")
	}

	// One query per partition: routing and pruning work on the stub shape.
	for _, s := range []int64{0, 3} {
		want := primaryApprox(t, eng, s, 0.5)
		_, lo, hi := approxInterval(t, cli, s, 0.5)
		if want < lo || want > hi {
			t.Fatalf("partitioned source %d: primary %g outside replica [%g, %g]", s, want, lo, hi)
		}
	}
}

// TestPrimaryRestartResumesFeed reboots the primary from its data directory
// on the same address: the replica's old cursor belongs to a previous feed
// term, so it must resync — never alias — and keep serving the model.
func TestPrimaryRestartResumesFeed(t *testing.T) {
	dir := t.TempDir()
	eng, err := datalaws.Open(dir, wal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	eng.MustExec("CREATE TABLE m (source BIGINT, nu DOUBLE, intensity DOUBLE)")
	if _, err := eng.Append("m", lawRows(4, 0.05, 15)); err != nil {
		t.Fatal(err)
	}
	eng.MustExec(`FIT MODEL law ON m AS 'intensity ~ a * nu + b'
		INPUTS (nu) GROUP BY source START (a = 1, b = 0)`)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv := New(eng, &Config{Logf: t.Logf})
	if err := srv.ServeListener(ln); err != nil {
		t.Fatal(err)
	}

	reng, rep, cli := newReplica(t, addr)
	replicaHasModel(t, reng, "law", 1)

	// Restart the primary on the same address from its durable state.
	_ = srv.Close()
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	eng2, err := datalaws.Open(dir, wal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var ln2 net.Listener
	waitFor(t, "restart listener on "+addr, func() bool {
		ln2, err = net.Listen("tcp", addr)
		return err == nil
	})
	srv2 := New(eng2, &Config{Logf: t.Logf})
	if err := srv2.ServeListener(ln2); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv2.Close() })

	// The replica redials, resyncs against the new term, and still serves.
	_, preResyncs := rep.Stats()
	waitFor(t, "replica resync after primary restart", func() bool {
		_, resyncs := rep.Stats()
		return resyncs > preResyncs && rep.Connected()
	})
	replicaHasModel(t, reng, "law", 1)
	want := primaryApprox(t, eng2, 2, 0.5)
	_, lo, hi := approxInterval(t, cli, 2, 0.5)
	if want < lo || want > hi {
		t.Fatalf("post-restart: primary %g outside replica [%g, %g]", want, lo, hi)
	}
}

// TestDrainUnblocksFeedLongPoll: a subscriber parked in a long poll must
// not hold graceful shutdown hostage.
func TestDrainUnblocksFeedLongPoll(t *testing.T) {
	srv, _ := newPrimary(t)
	cli := dialTest(t, srv)
	sub, err := cli.SubscribeModels()
	if err != nil {
		t.Fatal(err)
	}

	pollDone := make(chan error, 1)
	go func() {
		_, err := cli.PollDeltas(sub.Term, sub.Seq, 30*time.Second, 0)
		pollDone <- err
	}()
	// Let the poll park server-side before draining.
	time.Sleep(20 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	shutDone := make(chan error, 1)
	go func() { shutDone <- srv.Shutdown(ctx) }()

	select {
	case err := <-pollDone:
		if err == nil {
			t.Fatal("long poll returned deltas during drain, want draining error")
		}
		if !errors.Is(err, wireerr.ErrDraining) && !strings.Contains(err.Error(), "receive") {
			t.Fatalf("long poll failed with %v, want draining or torn connection", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("long poll still parked 3s into drain")
	}
	if err := <-shutDone; err != nil {
		t.Fatalf("shutdown did not complete cleanly: %v", err)
	}
}
