package server

import (
	"fmt"
	"sync"
	"time"

	"datalaws"
	"datalaws/internal/aqp"
	"datalaws/internal/modelstore"
	"datalaws/internal/storage"
	"datalaws/internal/table"
)

// ReplicaConfig tunes a model-shipping read replica.
type ReplicaConfig struct {
	// PollWait is how long each feed poll parks on the primary waiting for
	// deltas (the long-poll window). Default 1s.
	PollWait time.Duration
	// MaxDeltas caps deltas per poll reply; 0 takes the server default.
	MaxDeltas int
	// LagInflate widens WITH ERROR standard errors by this fraction per
	// second since the last successful feed poll, on top of the primary's
	// reported growth — so a replica cut off from its primary serves ever
	// more honest (wider) bounds instead of ever staler tight ones.
	// Default 0 (growth-only inflation).
	LagInflate float64
	// RedialBackoff bounds the reconnect backoff after a failed dial or a
	// torn feed; the first retry waits RedialBackoff/8, doubling up to the
	// bound. Default 2s.
	RedialBackoff time.Duration
	// Logf receives connection-lifecycle messages; nil discards them.
	Logf func(format string, args ...any)
}

func (c *ReplicaConfig) withDefaults() ReplicaConfig {
	out := ReplicaConfig{}
	if c != nil {
		out = *c
	}
	if out.PollWait <= 0 {
		out.PollWait = time.Second
	}
	if out.RedialBackoff <= 0 {
		out.RedialBackoff = 2 * time.Second
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// Replicator keeps a replica engine's model catalog synchronized with a
// primary's changefeed: subscribe for the full catalog, then long-poll for
// deltas, installing each model (with its shipped planning artifacts) into
// the local store. It doubles as the engine's aqp.Inflator: the primary's
// reported growth plus measured feed lag widen every WITH ERROR bound the
// replica serves.
type Replicator struct {
	// cat/models are held directly rather than through the engine: a
	// replica has no WAL, deliberately — its durable state IS the
	// primary's changefeed, and a resync reconstructs everything — so the
	// feed-apply path writes below the engine's log-then-apply gate.
	cat    *table.Catalog
	models *modelstore.Store
	eng    *datalaws.Engine
	addr   string
	cfg    ReplicaConfig

	metrics *Metrics

	startOnce sync.Once
	stopOnce  sync.Once
	done      chan struct{}
	wg        sync.WaitGroup

	mu        sync.Mutex
	growth    map[string]float64
	lastSync  time.Time
	connected bool
	applied   uint64
	resyncs   uint64
}

// OpenReplica builds a model-only replica of the primary at addr: an engine
// with no rows and no WAL whose model store tracks the primary's
// changefeed. The engine rejects mutations and exact SELECTs with
// wireerr.ErrReplicaReadOnly and never falls back from APPROX to exact
// plans. Call Start on the returned Replicator to begin syncing (the
// engine answers queries before the first sync completes, with an empty
// catalog), and Stop to detach.
func OpenReplica(addr string, cfg *ReplicaConfig) (*datalaws.Engine, *Replicator) {
	eng := datalaws.NewEngine()
	r := &Replicator{
		cat:    eng.Catalog,
		models: eng.Models,
		eng:    eng,
		addr:   addr,
		cfg:    cfg.withDefaults(),
		done:   make(chan struct{}),
		growth: map[string]float64{},
	}
	eng.SetReplica(r)
	return eng, r
}

// UseMetrics publishes the replicator's gauges through a server metrics
// registry (the replica's own /metrics endpoint).
func (r *Replicator) UseMetrics(m *Metrics) {
	r.metrics = m
	m.WireReplica()
}

// Start launches the sync loop.
func (r *Replicator) Start() {
	r.startOnce.Do(func() {
		r.wg.Add(1)
		go r.run()
	})
}

// Stop terminates the sync loop and waits for it to exit. The engine keeps
// serving from its last-synced catalog, bounds widening with lag.
func (r *Replicator) Stop() {
	r.stopOnce.Do(func() { close(r.done) })
	r.wg.Wait()
}

// InflationFor implements aqp.Inflator: the SE widening floor for one
// model's WITH ERROR bounds. 1 + growth + lag·LagInflate — growth is the
// primary's unmodeled-row fraction for this model from the last poll, lag
// the seconds since that poll. The planner combines this by max with its
// local growth factor (inert here: stub tables never grow).
func (r *Replicator) InflationFor(model string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := 1.0
	if g := r.growth[model]; g > 0 {
		f += g
	}
	if r.cfg.LagInflate > 0 && !r.lastSync.IsZero() {
		f += r.cfg.LagInflate * time.Since(r.lastSync).Seconds()
	}
	return f
}

// Lag reports the time since the last successful feed poll; ok is false
// before the first sync.
func (r *Replicator) Lag() (time.Duration, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lastSync.IsZero() {
		return 0, false
	}
	return time.Since(r.lastSync), true
}

// Connected reports whether the feed link to the primary is currently up.
func (r *Replicator) Connected() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.connected
}

// Stats reports deltas applied and full resyncs since Start.
func (r *Replicator) Stats() (applied, resyncs uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied, r.resyncs
}

func (r *Replicator) setConnected(up bool) {
	r.mu.Lock()
	r.connected = up
	r.mu.Unlock()
	if r.metrics != nil {
		r.metrics.SetReplicaConnected(up)
	}
}

// run is the sync loop: dial, subscribe (full resync), poll until the link
// tears or the primary drains, redial with backoff. Exits on Stop.
func (r *Replicator) run() {
	defer r.wg.Done()
	defer r.setConnected(false)
	backoff := r.cfg.RedialBackoff / 8
	if backoff <= 0 {
		backoff = r.cfg.RedialBackoff
	}
	for {
		select {
		case <-r.done:
			return
		default:
		}
		cur, err := r.syncOnce()
		if err != nil {
			r.setConnected(false)
			r.cfg.Logf("replica: feed to %s down: %v (retry in %s)", r.addr, err, backoff)
			select {
			case <-r.done:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > r.cfg.RedialBackoff {
				backoff = r.cfg.RedialBackoff
			}
			continue
		}
		backoff = r.cfg.RedialBackoff / 8
		_ = cur
	}
}

// syncOnce runs one feed session: subscribe, apply the resync, then poll
// until an error (redial) or Stop. Returns nil only on Stop.
func (r *Replicator) syncOnce() (modelstore.Cursor, error) {
	var cur modelstore.Cursor
	c, err := Dial(r.addr)
	if err != nil {
		return cur, err
	}
	defer func() { _ = c.Close() }()
	batch, err := c.SubscribeModels()
	if err != nil {
		return cur, err
	}
	r.setConnected(true)
	if err := r.applyBatch(batch); err != nil {
		return cur, err
	}
	cur = modelstore.Cursor{Term: batch.Term, Seq: batch.Seq}
	for {
		select {
		case <-r.done:
			return cur, nil
		default:
		}
		batch, err := c.PollDeltas(cur.Term, cur.Seq, r.cfg.PollWait, r.cfg.MaxDeltas)
		if err != nil {
			return cur, err
		}
		if err := r.applyBatch(batch); err != nil {
			return cur, err
		}
		cur = modelstore.Cursor{Term: batch.Term, Seq: batch.Seq}
	}
}

// applyBatch installs one feed reply: on resync, models the batch does not
// mention are dropped first (they no longer exist on the primary); then
// each delta applies in feed order, and the growth/lag snapshot updates.
func (r *Replicator) applyBatch(b *DeltaBatch) error {
	if b.Resync {
		keep := make(map[string]bool, len(b.Deltas))
		for _, d := range b.Deltas {
			if d.Kind != modelstore.ChangeDrop {
				keep[d.Name] = true
			}
		}
		for _, m := range r.models.List() {
			if !keep[m.Spec.Name] {
				r.models.Uninstall(m.Spec.Name)
			}
		}
	}
	applied := 0
	for _, d := range b.Deltas {
		if err := r.applyDelta(d); err != nil {
			return fmt.Errorf("replica: applying %s %q: %w", d.Kind, d.Name, err)
		}
		applied++
	}
	r.mu.Lock()
	r.growth = b.Growth
	if r.growth == nil {
		r.growth = map[string]float64{}
	}
	r.lastSync = time.Now()
	r.applied += uint64(applied)
	if b.Resync {
		r.resyncs++
	}
	r.mu.Unlock()
	if r.metrics != nil {
		r.metrics.RecordReplicaSync()
		r.metrics.RecordDeltasApplied(applied)
		if b.Resync {
			r.metrics.RecordReplicaResync()
		}
	}
	return nil
}

// applyDelta installs or removes one model, registering its stub table and
// priming the planner caches with the shipped enumeration artifacts — keyed
// by the replica's own planner knobs, so local planning finds them instead
// of scanning the (empty) stub.
func (r *Replicator) applyDelta(d ModelDelta) error {
	if d.Kind == modelstore.ChangeDrop {
		r.models.Uninstall(d.Name)
		return nil
	}
	if d.Model == nil {
		return fmt.Errorf("delta without model payload")
	}
	cm, err := modelstore.ModelFromRecord(*d.Model)
	if err != nil {
		return err
	}
	t, err := r.ensureStubTable(d.Table, cm.Spec.Table)
	if err != nil {
		return err
	}
	r.models.Install(cm)
	opts := r.eng.AQPOptions()
	if opts.Cache != nil && t != nil {
		if d.DomainsOK {
			opts.Cache.PrimeDomains(t, cm, opts.MaxDistinct, d.Domains)
		}
		if d.LegalOK {
			legal := aqp.LegalSetFromCombos(d.LegalGroups, d.LegalInputs, d.LegalWidth)
			opts.Cache.PrimeLegal(t, cm, opts.UseBloom, opts.FPRate, legal)
		} else {
			// The primary's legal set was inexact (Bloom) and cannot cross
			// the wire; admit every grid combination rather than none.
			opts.Cache.PrimeLegal(t, cm, opts.UseBloom, opts.FPRate, aqp.AllowAll{})
		}
	}
	return nil
}

// ensureStubTable registers the zero-row table a shipped model binds
// against (partitioned families register the whole parent, so every
// sibling child exists once the first family member arrives). The stub
// never receives rows, so its version never moves and primed cache entries
// stay valid until the next delta re-primes them.
func (r *Replicator) ensureStubTable(tm *TableMeta, name string) (*table.Table, error) {
	if t, ok := r.cat.Get(name); ok {
		return t, nil
	}
	if tm == nil {
		// The primary's table vanished between publish and ship; the model
		// still installs, but without a table the planner cannot bind it.
		return nil, nil
	}
	defs := make([]table.ColumnDef, len(tm.Cols))
	for i, c := range tm.Cols {
		defs[i] = table.ColumnDef{Name: c.Name, Type: storage.ColType(c.Type)}
	}
	schema, err := table.NewSchema(defs...)
	if err != nil {
		return nil, err
	}
	if tm.Parent != "" {
		ranges := make([]table.RangePartition, len(tm.Ranges))
		for i, rg := range tm.Ranges {
			ranges[i] = table.RangePartition{Name: rg.Name, Upper: rg.Upper, Max: rg.Max}
		}
		if _, err := r.cat.CreatePartitioned(tm.Parent, schema, tm.Column, ranges); err != nil {
			return nil, err
		}
		t, ok := r.cat.Get(name)
		if !ok {
			return nil, fmt.Errorf("partition child %q missing after creating %q", name, tm.Parent)
		}
		return t, nil
	}
	return r.cat.Create(name, schema)
}
