package server

import (
	"fmt"
	"math/bits"
	"net/http"
	"sync/atomic"
	"time"

	"datalaws/internal/refit"
)

// Route classifies how a query was answered, the paper's central
// distinction surfaced as an operational signal: approximate traffic
// served from captured models vs exact traffic scanning measurements.
type Route uint8

// Query routes.
const (
	// RouteExact: answered by the exact pipeline.
	RouteExact Route = iota
	// RouteApprox: answered from a captured model's parameter table.
	RouteApprox
	// RouteFallback: an APPROX query answered exactly because no trusted
	// model covered it.
	RouteFallback
	// RouteOther: statements without a row stream (DDL, INSERT, FIT, ...).
	RouteOther
	numRoutes
)

// Latency histogram: bucket i holds durations in [2^(i-1), 2^i) µs, so 36
// buckets cover sub-µs to ~9.5 hours.
const histBuckets = 36

// qps is measured over a sliding window of one-second slots.
const (
	qpsSlots  = 16
	qpsWindow = 10 // seconds summed on read
)

// Metrics aggregates the server's operational counters. All methods are
// safe for concurrent use from every session; recording is a few atomic
// adds so it stays off the critical path's lock graph.
type Metrics struct {
	start time.Time

	queriesTotal atomic.Uint64
	fetchesTotal atomic.Uint64
	errorsTotal  atomic.Uint64
	routes       [numRoutes]atomic.Uint64
	rowsSent     atomic.Uint64

	sessionsActive atomic.Int64
	sessionsTotal  atomic.Uint64
	cursorsOpen    atomic.Int64

	hist [histBuckets]atomic.Uint64

	qpsSec   [qpsSlots]atomic.Int64
	qpsCount [qpsSlots]atomic.Uint64

	driftTriggers  atomic.Uint64
	growthTriggers atomic.Uint64
	refitsTotal    atomic.Uint64
	refitFailures  atomic.Uint64
	lastRefitUnix  atomic.Int64 // nanoseconds; 0 = never
	lastRefitTook  atomic.Int64 // nanoseconds

	// Model-feed counters: the primary side of replication.
	feedSubscribes atomic.Uint64
	feedDeltasSent atomic.Uint64

	// Replica counters, emitted only once a Replicator wires itself in
	// (primaries keep a clean scrape).
	replicaWired     atomic.Bool
	replicaConnected atomic.Int64 // 0/1 gauge
	replicaApplied   atomic.Uint64
	replicaResyncs   atomic.Uint64
	replicaLastSync  atomic.Int64 // nanoseconds; 0 = never synced
}

// NewMetrics returns a zeroed metrics registry with the uptime clock
// started.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

// RecordQuery accounts one executed statement: its answer route, the
// latency to its first batch, and whether it failed.
func (m *Metrics) RecordQuery(route Route, d time.Duration, err error) {
	m.queriesTotal.Add(1)
	if err != nil {
		m.errorsTotal.Add(1)
	} else if route < numRoutes {
		m.routes[route].Add(1)
	}
	m.observeLatency(d)
	m.tickQPS()
}

// RecordFetch accounts one cursor pull and the rows it shipped.
func (m *Metrics) RecordFetch(rows int, err error) {
	m.fetchesTotal.Add(1)
	if err != nil {
		m.errorsTotal.Add(1)
	}
	m.rowsSent.Add(uint64(rows))
}

// RecordRows accounts rows shipped in a query's first batch.
func (m *Metrics) RecordRows(rows int) { m.rowsSent.Add(uint64(rows)) }

// SessionOpened/SessionClosed maintain the active-session gauge.
func (m *Metrics) SessionOpened() {
	m.sessionsActive.Add(1)
	m.sessionsTotal.Add(1)
}

// SessionClosed decrements the active-session gauge.
func (m *Metrics) SessionClosed() { m.sessionsActive.Add(-1) }

// CursorOpened/CursorClosed maintain the open-cursor gauge.
func (m *Metrics) CursorOpened() { m.cursorsOpen.Add(1) }

// CursorClosed decrements the open-cursor gauge.
func (m *Metrics) CursorClosed() { m.cursorsOpen.Add(-1) }

// ActiveSessions reports the current session gauge.
func (m *Metrics) ActiveSessions() int64 { return m.sessionsActive.Load() }

// OpenCursors reports the current cursor gauge.
func (m *Metrics) OpenCursors() int64 { return m.cursorsOpen.Load() }

// Errors reports the cumulative request-error count.
func (m *Metrics) Errors() uint64 { return m.errorsTotal.Load() }

// Queries reports the cumulative executed-statement count.
func (m *Metrics) Queries() uint64 { return m.queriesTotal.Load() }

// RecordRefit observes one background refit attempt; wire it into
// refit.Options.OnEvent so /metrics exposes the model lifecycle.
func (m *Metrics) RecordRefit(ev refit.Event) {
	switch ev.Trigger {
	case "drift":
		m.driftTriggers.Add(1)
	case "growth":
		m.growthTriggers.Add(1)
	}
	if ev.Err != nil {
		m.refitFailures.Add(1)
		return
	}
	m.refitsTotal.Add(1)
	m.lastRefitUnix.Store(time.Now().UnixNano())
	m.lastRefitTook.Store(int64(ev.Took))
}

// RecordSubscribe counts one OpSubscribeModels (a replica attaching).
func (m *Metrics) RecordSubscribe() { m.feedSubscribes.Add(1) }

// RecordDeltasSent counts model deltas shipped to subscribers.
func (m *Metrics) RecordDeltasSent(n int) { m.feedDeltasSent.Add(uint64(n)) }

// WireReplica marks this process as a replica so Handler emits the
// replica_* lines; called by Replicator.UseMetrics.
func (m *Metrics) WireReplica() { m.replicaWired.Store(true) }

// SetReplicaConnected maintains the replica's primary-link gauge.
func (m *Metrics) SetReplicaConnected(up bool) {
	var v int64
	if up {
		v = 1
	}
	m.replicaConnected.Store(v)
}

// RecordDeltasApplied counts model deltas a replica installed locally.
func (m *Metrics) RecordDeltasApplied(n int) { m.replicaApplied.Add(uint64(n)) }

// RecordReplicaSync stamps one successful feed poll — empty or not — the
// reference point for the replica_lag_seconds gauge.
func (m *Metrics) RecordReplicaSync() { m.replicaLastSync.Store(time.Now().UnixNano()) }

// RecordReplicaResync counts full-catalog resyncs (first attach, cursor
// fallen off the feed ring, primary restart).
func (m *Metrics) RecordReplicaResync() { m.replicaResyncs.Add(1) }

func (m *Metrics) observeLatency(d time.Duration) {
	us := uint64(d / time.Microsecond)
	b := bits.Len64(us) // 0 for sub-µs
	if b >= histBuckets {
		b = histBuckets - 1
	}
	m.hist[b].Add(1)
}

func (m *Metrics) tickQPS() {
	now := time.Now().Unix()
	slot := int(now % qpsSlots)
	if m.qpsSec[slot].Load() != now {
		// Racy reset is fine: the slot is approximate by design, and a
		// lost increment at a second boundary cannot skew a 10s window.
		m.qpsSec[slot].Store(now)
		m.qpsCount[slot].Store(0)
	}
	m.qpsCount[slot].Add(1)
}

// QPS reports the query rate over the trailing window.
func (m *Metrics) QPS() float64 {
	now := time.Now().Unix()
	var sum uint64
	for i := 0; i < qpsSlots; i++ {
		if sec := m.qpsSec[i].Load(); sec > 0 && now-sec < qpsWindow {
			sum += m.qpsCount[i].Load()
		}
	}
	return float64(sum) / float64(qpsWindow)
}

// Quantile estimates the q-th latency quantile (0 < q < 1) from the
// histogram, reporting each bucket's upper bound — a ≤2× overestimate by
// construction, stable and allocation-free.
func (m *Metrics) Quantile(q float64) time.Duration {
	var counts [histBuckets]uint64
	var total uint64
	for i := range m.hist {
		counts[i] = m.hist[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum > target {
			if i == 0 {
				return time.Microsecond
			}
			return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(uint64(1)<<uint(histBuckets-1)) * time.Microsecond
}

// Handler serves the scrape endpoint: plain-text `name value` lines in
// Prometheus exposition style, one gauge or counter per line.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		now := time.Now()
		p := func(name string, format string, v any) {
			fmt.Fprintf(w, "datalaws_%s "+format+"\n", name, v)
		}
		p("uptime_seconds", "%.3f", now.Sub(m.start).Seconds())
		p("sessions_active", "%d", m.sessionsActive.Load())
		p("sessions_total", "%d", m.sessionsTotal.Load())
		p("cursors_open", "%d", m.cursorsOpen.Load())
		p("queries_total", "%d", m.queriesTotal.Load())
		p("fetches_total", "%d", m.fetchesTotal.Load())
		p("query_errors_total", "%d", m.errorsTotal.Load())
		p("rows_sent_total", "%d", m.rowsSent.Load())
		p("qps", "%.2f", m.QPS())
		p("latency_p50_seconds", "%.6f", m.Quantile(0.50).Seconds())
		p("latency_p90_seconds", "%.6f", m.Quantile(0.90).Seconds())
		p("latency_p99_seconds", "%.6f", m.Quantile(0.99).Seconds())
		p("route_approx_total", "%d", m.routes[RouteApprox].Load())
		p("route_exact_total", "%d", m.routes[RouteExact].Load())
		p("route_exact_fallback_total", "%d", m.routes[RouteFallback].Load())
		p("route_other_total", "%d", m.routes[RouteOther].Load())
		p("drift_triggers_total", "%d", m.driftTriggers.Load())
		p("growth_triggers_total", "%d", m.growthTriggers.Load())
		p("refits_total", "%d", m.refitsTotal.Load())
		p("refit_failures_total", "%d", m.refitFailures.Load())
		// Refit lag: how long the most recent background refit took from
		// trigger to atomic swap, and how long ago it finished.
		p("refit_lag_seconds", "%.3f", time.Duration(m.lastRefitTook.Load()).Seconds())
		if last := m.lastRefitUnix.Load(); last > 0 {
			p("last_refit_age_seconds", "%.3f", now.Sub(time.Unix(0, last)).Seconds())
		} else {
			p("last_refit_age_seconds", "%.3f", -1.0)
		}
		p("feed_subscribes_total", "%d", m.feedSubscribes.Load())
		p("feed_deltas_sent_total", "%d", m.feedDeltasSent.Load())
		if m.replicaWired.Load() {
			p("replica_connected", "%d", m.replicaConnected.Load())
			p("replica_deltas_applied_total", "%d", m.replicaApplied.Load())
			p("replica_resyncs_total", "%d", m.replicaResyncs.Load())
			// Replication lag: age of the last successful feed poll; -1
			// means the replica has never reached its primary.
			if last := m.replicaLastSync.Load(); last > 0 {
				p("replica_lag_seconds", "%.3f", now.Sub(time.Unix(0, last)).Seconds())
			} else {
				p("replica_lag_seconds", "%.3f", -1.0)
			}
		}
	})
}
