package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"datalaws"
	"datalaws/internal/expr"
	"datalaws/internal/wireerr"
)

// Config tunes a Server. The zero value takes defaults.
type Config struct {
	// MaxFrame caps a single frame's payload bytes (default
	// DefaultMaxFrame). Oversized frames drop the connection before any
	// payload allocation.
	MaxFrame int
	// FetchRows is the row-batch size used when a client sends
	// MaxRows = 0 (default DefaultFetchRows).
	FetchRows int
	// Logf sinks server diagnostics (default log.Printf).
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() Config {
	out := Config{MaxFrame: DefaultMaxFrame, FetchRows: DefaultFetchRows, Logf: log.Printf}
	if c == nil {
		return out
	}
	if c.MaxFrame > 0 {
		out.MaxFrame = c.MaxFrame
	}
	if c.FetchRows > 0 {
		out.FetchRows = c.FetchRows
	}
	if c.Logf != nil {
		out.Logf = c.Logf
	}
	return out
}

// Server hosts concurrent sessions over the framed protocol, one session
// per TCP connection, all sharing one Engine (whose catalog, model store
// and plan cache are already internally synchronized — including the plan
// LRU that serves repeated unprepared texts across every session).
type Server struct {
	eng     *datalaws.Engine
	cfg     Config
	metrics *Metrics
	done    chan struct{}
	wg      sync.WaitGroup

	mu       sync.Mutex
	ln       net.Listener
	sessions map[*session]struct{}
	draining bool
	closed   bool
}

// New builds a server over an engine. Call Serve (or ServeListener) to
// start accepting.
func New(eng *datalaws.Engine, cfg *Config) *Server {
	return &Server{
		eng:      eng,
		cfg:      cfg.withDefaults(),
		metrics:  NewMetrics(),
		done:     make(chan struct{}),
		sessions: map[*session]struct{}{},
	}
}

// Metrics exposes the server's counters (mount Metrics().Handler() on an
// HTTP mux for the scrape endpoint).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Serve listens on addr ("127.0.0.1:0" for an ephemeral port) and starts
// the accept loop.
func (s *Server) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen: %w", err)
	}
	return s.ServeListener(ln)
}

// ServeListener starts the accept loop on an existing listener, which the
// server then owns.
func (s *Server) ServeListener(ln net.Listener) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		_ = ln.Close()
		return errors.New("server: already shut down")
	}
	if s.ln != nil {
		_ = ln.Close()
		return errors.New("server: already serving")
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr reports the bound listener address ("" before Serve).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// ActiveSessions reports the live session count.
func (s *Server) ActiveSessions() int { return int(s.metrics.ActiveSessions()) }

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// temporaryAcceptErr mirrors the capture transport's classification:
// timeouts, aborted handshakes and descriptor exhaustion recover on their
// own and deserve a backoff-retry; anything else means the listener is
// gone for good.
func temporaryAcceptErr(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, syscall.ECONNABORTED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EMFILE) ||
		errors.Is(err, syscall.ENFILE) ||
		errors.Is(err, syscall.ENOBUFS) ||
		errors.Is(err, syscall.ENOMEM)
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	backoff := time.Duration(0)
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			if !temporaryAcceptErr(err) {
				s.cfg.Logf("server: accept failed permanently, stopping listener loop: %v", err)
				return
			}
			if backoff == 0 {
				s.cfg.Logf("server: temporary accept error (backing off): %v", err)
				backoff = 5 * time.Millisecond
			} else if backoff < 200*time.Millisecond {
				backoff *= 2
			}
			select {
			case <-s.done:
				return
			case <-time.After(backoff):
			}
			continue
		}
		backoff = 0
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// session is one connection's state: its prepared statements, its open
// cursors, and the context that cancels every in-flight execution the
// moment the client disconnects. The stmts/cursors maps are touched only
// by the handler goroutine; openCursors is atomic because drain reads it
// from outside.
type session struct {
	srv    *Server
	conn   net.Conn
	ctx    context.Context
	cancel context.CancelFunc

	stmts      map[uint64]*datalaws.Stmt
	cursors    map[uint64]*datalaws.Rows
	nextStmt   uint64
	nextCursor uint64

	openCursors atomic.Int64
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	sess := &session{
		srv:     s,
		conn:    conn,
		ctx:     ctx,
		cancel:  cancel,
		stmts:   map[uint64]*datalaws.Stmt{},
		cursors: map[uint64]*datalaws.Rows{},
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		_ = conn.Close()
		return
	}
	s.sessions[sess] = struct{}{}
	s.mu.Unlock()
	s.metrics.SessionOpened()
	defer func() {
		cancel()
		sess.teardown()
		s.mu.Lock()
		delete(s.sessions, sess)
		s.mu.Unlock()
		s.metrics.SessionClosed()
	}()

	// The reader goroutine is the disconnect watchdog: it blocks on the
	// socket while the handler executes, so a client that vanishes
	// mid-query fails the read immediately and the cancel propagates —
	// via exec.BindContext — into every operator the session is running.
	reqs := make(chan *Request, 4)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer close(reqs)
		for {
			req := new(Request)
			if err := readMsg(conn, req, s.cfg.MaxFrame); err != nil {
				cancel()
				return
			}
			select {
			case reqs <- req:
			case <-ctx.Done():
				return
			}
		}
	}()

	for req := range reqs {
		resp := sess.handle(req)
		if err := writeMsg(conn, resp, s.cfg.MaxFrame); err != nil {
			break
		}
		if s.isDraining() && sess.openCursors.Load() == 0 {
			// Drain: this session's in-flight cursors are finished;
			// closing the connection lets Shutdown complete.
			break
		}
	}
	cancel()
	_ = conn.Close()
	// Unblock the reader if it is parked on a channel send, then wait for
	// it to observe the closed connection.
	for range reqs {
	}
}

// teardown releases every cursor the session still holds; their lazy Rows
// close their operator trees, freeing scans mid-stream.
func (sess *session) teardown() {
	for id, rows := range sess.cursors {
		_ = rows.Close()
		delete(sess.cursors, id)
		sess.openCursors.Add(-1)
		sess.srv.metrics.CursorClosed()
	}
}

// kickIfIdle force-closes the session's connection when it holds no open
// cursors; used at drain start so idle sessions don't hold shutdown
// hostage. Sessions mid-cursor are left to finish.
func (sess *session) kickIfIdle() {
	if sess.openCursors.Load() == 0 {
		_ = sess.conn.Close()
	}
}

func errResponse(err error) *Response {
	return &Response{ErrCode: wireerr.Code(err), ErrMsg: err.Error(), Done: true}
}

func (sess *session) handle(req *Request) *Response {
	switch req.Op {
	case OpPing:
		return &Response{Done: true}
	case OpPrepare:
		if sess.srv.isDraining() {
			return errResponse(fmt.Errorf("server: %w", wireerr.ErrDraining))
		}
		st, err := sess.srv.eng.Prepare(req.SQL)
		if err != nil {
			return errResponse(err)
		}
		sess.nextStmt++
		sess.stmts[sess.nextStmt] = st
		return &Response{StmtID: sess.nextStmt, NumParams: st.NumParams(), Done: true}
	case OpQuery, OpStmtQuery:
		return sess.handleQuery(req)
	case OpFetch:
		rows, ok := sess.cursors[req.CursorID]
		if !ok {
			return errResponse(fmt.Errorf("server: %w: unknown cursor %d", wireerr.ErrBadRequest, req.CursorID))
		}
		resp := sess.pullBatch(rows, req.MaxRows)
		if resp.Done {
			sess.releaseCursor(req.CursorID)
		} else {
			resp.CursorID = req.CursorID
		}
		sess.srv.metrics.RecordFetch(len(resp.Rows), wireerr.Rehydrate(resp.ErrCode, resp.ErrMsg))
		return resp
	case OpCloseCursor:
		if rows, ok := sess.cursors[req.CursorID]; ok {
			_ = rows.Close()
			sess.releaseCursor(req.CursorID)
		}
		return &Response{Done: true}
	case OpCloseStmt:
		delete(sess.stmts, req.StmtID)
		return &Response{Done: true}
	case OpSubscribeModels:
		return sess.handleSubscribe()
	case OpModelDelta:
		return sess.handleModelDelta(req)
	}
	return errResponse(fmt.Errorf("server: %w: unknown opcode %d", wireerr.ErrBadRequest, uint8(req.Op)))
}

func (sess *session) releaseCursor(id uint64) {
	delete(sess.cursors, id)
	sess.openCursors.Add(-1)
	sess.srv.metrics.CursorClosed()
}

func (sess *session) handleQuery(req *Request) *Response {
	if sess.srv.isDraining() {
		return errResponse(fmt.Errorf("server: %w", wireerr.ErrDraining))
	}
	start := time.Now()
	var rows *datalaws.Rows
	var err error
	switch req.Op {
	case OpQuery:
		rows, err = sess.srv.eng.Query(sess.ctx, req.SQL, valuesToArgs(req.Args)...)
	default: // OpStmtQuery
		st, ok := sess.stmts[req.StmtID]
		if !ok {
			return errResponse(fmt.Errorf("server: %w: unknown statement %d", wireerr.ErrBadRequest, req.StmtID))
		}
		rows, err = st.Query(sess.ctx, valuesToArgs(req.Args)...)
	}
	if err != nil {
		sess.srv.metrics.RecordQuery(RouteOther, time.Since(start), err)
		return errResponse(err)
	}
	resp := sess.pullBatch(rows, req.MaxRows)
	resp.Columns = rows.Columns()
	resp.Info = rows.Info
	resp.Model = rows.Model
	resp.ModelVersion = rows.ModelVersion
	resp.SEInflation = rows.SEInflation
	resp.ExactFallback = rows.ExactFallback
	resp.Hybrid = rows.Hybrid
	resp.Partitions = rows.Partitions
	resp.PartitionsPruned = rows.PartitionsPruned
	sess.srv.metrics.RecordQuery(routeOf(rows), time.Since(start), wireerr.Rehydrate(resp.ErrCode, resp.ErrMsg))
	sess.srv.metrics.RecordRows(len(resp.Rows))
	if !resp.Done {
		sess.nextCursor++
		sess.cursors[sess.nextCursor] = rows
		sess.openCursors.Add(1)
		sess.srv.metrics.CursorOpened()
		resp.CursorID = sess.nextCursor
	}
	return resp
}

// pullBatch advances rows by up to n (clamped; the client's flow
// control), deep-copying each row out of the cursor's reuse buffer. When
// the stream ends — exhaustion or error — the underlying Rows has closed
// itself and Done is set.
func (sess *session) pullBatch(rows *datalaws.Rows, n int) *Response {
	if n <= 0 {
		n = sess.srv.cfg.FetchRows
	}
	if n > maxFetchRows {
		n = maxFetchRows
	}
	resp := &Response{}
	for len(resp.Rows) < n {
		if !rows.Next() {
			resp.Done = true
			if err := rows.Err(); err != nil {
				resp.ErrCode, resp.ErrMsg = wireerr.Code(err), err.Error()
			}
			break
		}
		r := rows.Row()
		cp := make([]expr.Value, len(r))
		copy(cp, r)
		resp.Rows = append(resp.Rows, cp)
	}
	return resp
}

// routeOf classifies how a statement was answered, for the
// approx-vs-exact route counters.
func routeOf(rows *datalaws.Rows) Route {
	switch {
	case rows.Model != "":
		return RouteApprox
	case rows.ExactFallback:
		return RouteFallback
	case len(rows.Columns()) > 0:
		return RouteExact
	default:
		return RouteOther
	}
}

// valuesToArgs lifts wire values into Query arguments (the engine's
// binder accepts expr.Value directly).
func valuesToArgs(vals []expr.Value) []any {
	if len(vals) == 0 {
		return nil
	}
	out := make([]any, len(vals))
	for i, v := range vals {
		out[i] = v
	}
	return out
}

// Shutdown drains the server gracefully: stop accepting, reject new
// statements with wireerr.CodeDraining, close idle sessions immediately,
// let sessions with in-flight cursors finish streaming, and force-close
// whatever remains when ctx expires (returning ctx.Err()). The engine is
// not closed — that is the caller's decision, after Shutdown returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	alreadyDraining := s.draining
	s.draining = true
	ln := s.ln
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()

	if !alreadyDraining {
		close(s.done)
	}
	if ln != nil {
		_ = ln.Close()
	}
	for _, sess := range sessions {
		sess.kickIfIdle()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.forceCloseSessions()
		<-done
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return err
}

// Close shuts the server down immediately: no drain, every connection
// force-closed. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	alreadyDraining := s.draining
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if !alreadyDraining {
		close(s.done)
	}
	if ln != nil {
		_ = ln.Close()
	}
	s.forceCloseSessions()
	s.wg.Wait()
	return nil
}

func (s *Server) forceCloseSessions() {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.cancel()
		_ = sess.conn.Close()
	}
}
