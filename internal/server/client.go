package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"datalaws/internal/expr"
	"datalaws/internal/wireerr"
)

// errClientClosed poisons calls after an explicit Close, distinguishing a
// deliberate shutdown from a torn connection.
var errClientClosed = errors.New("server: client closed")

// Client is a session against a datalawsd server: one TCP connection,
// prepared statements bound to server-side ids, streaming cursors pulled
// batch by batch. A Client serializes its calls internally, so cursors
// and statements of one client may be used from one goroutine at a time;
// open one client per concurrent session (they are cheap — the server
// side is a goroutine and two maps).
//
// Like the capture transport, the client poisons itself on the first
// transport error: the framed protocol cannot desync, but a torn
// connection cannot say which in-flight request died, so later calls fail
// fast with the original error and the caller redials.
type Client struct {
	// FetchRows is the batch size cursors request per pull (the
	// client-driven flow control); 0 lets the server choose. Set before
	// issuing queries.
	FetchRows int

	mu       sync.Mutex
	conn     net.Conn
	maxFrame int
	err      error
	closed   bool
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, maxFrame: DefaultMaxFrame}, nil
}

// Close terminates the session; the server releases its statements and
// cursors. Idempotent, and later calls on the client (including a
// Rows.Close racing this) fail fast with errClientClosed instead of
// writing to a dead socket.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.err == nil {
		c.err = errClientClosed
	}
	return c.conn.Close()
}

// call runs one request/response round trip.
func (c *Client) call(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		if errors.Is(c.err, errClientClosed) {
			return nil, c.err
		}
		return nil, fmt.Errorf("server: client poisoned by earlier transport error: %w", c.err)
	}
	if err := writeMsg(c.conn, req, c.maxFrame); err != nil {
		c.poison(err)
		return nil, fmt.Errorf("server: send %s: %w", req.Op, err)
	}
	resp := new(Response)
	if err := readMsg(c.conn, resp, c.maxFrame); err != nil {
		c.poison(err)
		return nil, fmt.Errorf("server: receive %s: %w", req.Op, err)
	}
	if resp.ErrMsg != "" {
		// A server-reported failure is a clean request outcome: the
		// session stays framed and usable.
		return nil, wireerr.Rehydrate(resp.ErrCode, resp.ErrMsg)
	}
	return resp, nil
}

// poison marks the connection unusable; called with c.mu held.
func (c *Client) poison(err error) {
	c.err = err
	_ = c.conn.Close()
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.call(&Request{Op: OpPing})
	return err
}

// Query executes one SQL statement and returns its streaming cursor.
func (c *Client) Query(sql string, args ...any) (*Rows, error) {
	vals, err := argsToValues(args)
	if err != nil {
		return nil, err
	}
	resp, err := c.call(&Request{Op: OpQuery, SQL: sql, Args: vals, MaxRows: c.FetchRows})
	if err != nil {
		return nil, err
	}
	return newRows(c, resp), nil
}

// Exec executes one statement to completion, discarding any rows, and
// returns the statement's Info summary — the convenience form for DDL,
// INSERT and FIT MODEL.
func (c *Client) Exec(sql string, args ...any) (string, error) {
	rows, err := c.Query(sql, args...)
	if err != nil {
		return "", err
	}
	for rows.Next() {
	}
	if err := rows.Err(); err != nil {
		_ = rows.Close()
		return "", err
	}
	return rows.Info, rows.Close()
}

// Prepare parses sql once server-side, returning a reusable handle.
func (c *Client) Prepare(sql string) (*Stmt, error) {
	resp, err := c.call(&Request{Op: OpPrepare, SQL: sql})
	if err != nil {
		return nil, err
	}
	return &Stmt{c: c, id: resp.StmtID, numParams: resp.NumParams}, nil
}

// Stmt is a server-side prepared statement.
type Stmt struct {
	c         *Client
	id        uint64
	numParams int
}

// NumParams reports the statement's `?` placeholder count.
func (st *Stmt) NumParams() int { return st.numParams }

// Query executes the prepared statement with bound args.
func (st *Stmt) Query(args ...any) (*Rows, error) {
	vals, err := argsToValues(args)
	if err != nil {
		return nil, err
	}
	resp, err := st.c.call(&Request{Op: OpStmtQuery, StmtID: st.id, Args: vals, MaxRows: st.c.FetchRows})
	if err != nil {
		return nil, err
	}
	return newRows(st.c, resp), nil
}

// Close releases the server-side statement id.
func (st *Stmt) Close() error {
	_, err := st.c.call(&Request{Op: OpCloseStmt, StmtID: st.id})
	return err
}

// Rows is a client-side streaming cursor: Next pulls batches from the
// server on demand (each pull bounded by the client's FetchRows), so an
// abandoned or LIMITed read never ships — or materializes — the rest of
// the result.
type Rows struct {
	// Statement metadata from the first response (mirrors datalaws.Rows).
	Info             string
	Model            string
	ModelVersion     int
	SEInflation      float64
	ExactFallback    bool
	Hybrid           bool
	Partitions       int
	PartitionsPruned int

	c        *Client
	cursorID uint64
	cols     []string
	buf      [][]expr.Value
	pos      int
	cur      []expr.Value
	done     bool
	err      error
	closed   bool
}

func newRows(c *Client, resp *Response) *Rows {
	return &Rows{
		Info:             resp.Info,
		Model:            resp.Model,
		ModelVersion:     resp.ModelVersion,
		SEInflation:      resp.SEInflation,
		ExactFallback:    resp.ExactFallback,
		Hybrid:           resp.Hybrid,
		Partitions:       resp.Partitions,
		PartitionsPruned: resp.PartitionsPruned,
		c:                c,
		cursorID:         resp.CursorID,
		cols:             resp.Columns,
		buf:              resp.Rows,
		done:             resp.Done,
	}
}

// Columns returns the output column names.
func (r *Rows) Columns() []string { return r.cols }

// Next advances the cursor, fetching the next batch from the server when
// the local buffer drains. It reports false at end of stream or on error
// (check Err afterwards).
func (r *Rows) Next() bool {
	if r.err != nil || r.closed {
		return false
	}
	for r.pos >= len(r.buf) {
		if r.done {
			return false
		}
		resp, err := r.c.call(&Request{Op: OpFetch, CursorID: r.cursorID, MaxRows: r.c.FetchRows})
		if err != nil {
			r.err = err
			r.done = true
			return false
		}
		r.buf, r.pos = resp.Rows, 0
		r.done = resp.Done
		if r.done {
			r.cursorID = 0 // server already released the cursor
		}
	}
	r.cur = r.buf[r.pos]
	r.pos++
	return true
}

// Row returns the current row; valid until the next call to Next.
func (r *Rows) Row() []expr.Value { return r.cur }

// Err returns the error that terminated iteration, if any.
func (r *Rows) Err() error { return r.err }

// Scan copies the current row into dest, one pointer per column.
// Supported targets: *int64, *float64 (INT coerces), *string, *bool,
// *expr.Value, *any.
func (r *Rows) Scan(dest ...any) error {
	if r.cur == nil {
		return fmt.Errorf("server: Scan called without a successful Next")
	}
	if len(dest) != len(r.cur) {
		return fmt.Errorf("server: Scan got %d targets for %d columns", len(dest), len(r.cur))
	}
	for i, d := range dest {
		if err := scanValue(r.cur[i], d); err != nil {
			return fmt.Errorf("server: Scan column %d: %w", i, err)
		}
	}
	return nil
}

// Close releases the cursor, telling the server to free it if the stream
// was abandoned early. Idempotent.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.cursorID == 0 || r.done || r.err != nil {
		return nil
	}
	_, err := r.c.call(&Request{Op: OpCloseCursor, CursorID: r.cursorID})
	return err
}

func scanValue(v expr.Value, dest any) error {
	switch d := dest.(type) {
	case *expr.Value:
		*d = v
		return nil
	case *any:
		switch v.K {
		case expr.KindInt:
			*d = v.I
		case expr.KindFloat:
			*d = v.F
		case expr.KindString:
			*d = v.S
		case expr.KindBool:
			*d = v.B
		default:
			*d = nil
		}
		return nil
	case *int64:
		if v.K != expr.KindInt {
			return fmt.Errorf("cannot scan %s into *int64", v.K)
		}
		*d = v.I
		return nil
	case *float64:
		switch v.K {
		case expr.KindFloat:
			*d = v.F
		case expr.KindInt:
			*d = float64(v.I)
		default:
			return fmt.Errorf("cannot scan %s into *float64", v.K)
		}
		return nil
	case *string:
		if v.K != expr.KindString {
			return fmt.Errorf("cannot scan %s into *string", v.K)
		}
		*d = v.S
		return nil
	case *bool:
		if v.K != expr.KindBool {
			return fmt.Errorf("cannot scan %s into *bool", v.K)
		}
		*d = v.B
		return nil
	}
	return fmt.Errorf("unsupported Scan target %T", dest)
}

// DeltaBatch is one reply from the model changefeed: deltas to apply, the
// cursor to poll from next, and the primary's current growth snapshot.
type DeltaBatch struct {
	Deltas []ModelDelta
	Term   uint64
	Seq    uint64
	// Resync marks a batch that replaces the subscriber's whole model
	// catalog: models absent from it no longer exist on the primary.
	Resync bool
	// Growth maps model name → unmodeled-row growth fraction on the
	// primary, the staleness signal a row-less replica cannot measure.
	Growth map[string]float64
}

func deltaBatch(resp *Response) *DeltaBatch {
	return &DeltaBatch{
		Deltas: resp.Deltas,
		Term:   resp.FeedTerm,
		Seq:    resp.FeedSeq,
		Resync: resp.Resync,
		Growth: resp.Growth,
	}
}

// SubscribeModels fetches the primary's full model catalog as a resync
// batch; poll the returned cursor with PollDeltas for increments.
func (c *Client) SubscribeModels() (*DeltaBatch, error) {
	resp, err := c.call(&Request{Op: OpSubscribeModels})
	if err != nil {
		return nil, err
	}
	return deltaBatch(resp), nil
}

// PollDeltas long-polls the model changefeed from (term, seq), blocking
// server-side up to wait for new deltas; an empty batch after wait is a
// healthy caught-up poll, not an error. max caps the deltas per reply
// (0 takes the server default).
func (c *Client) PollDeltas(term, seq uint64, wait time.Duration, max int) (*DeltaBatch, error) {
	resp, err := c.call(&Request{
		Op:         OpModelDelta,
		FeedTerm:   term,
		FeedSeq:    seq,
		WaitMillis: int(wait / time.Millisecond),
		MaxDeltas:  max,
	})
	if err != nil {
		return nil, err
	}
	return deltaBatch(resp), nil
}

// argsToValues boxes Go arguments as wire values.
func argsToValues(args []any) ([]expr.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]expr.Value, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case nil:
			out[i] = expr.Null()
		case expr.Value:
			out[i] = v
		case int:
			out[i] = expr.Int(int64(v))
		case int32:
			out[i] = expr.Int(int64(v))
		case int64:
			out[i] = expr.Int(v)
		case float32:
			out[i] = expr.Float(float64(v))
		case float64:
			out[i] = expr.Float(v)
		case string:
			out[i] = expr.Str(v)
		case bool:
			out[i] = expr.Bool(v)
		default:
			return nil, fmt.Errorf("server: unsupported argument type %T (argument %d)", a, i+1)
		}
	}
	return out, nil
}
