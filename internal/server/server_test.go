package server

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"datalaws"
	"datalaws/internal/expr"
	"datalaws/internal/wireerr"
)

// newTestServer boots a server over a fresh engine holding table
// big(a BIGINT, b DOUBLE) with n sequential rows.
func newTestServer(t *testing.T, n int, cfg *Config) (*Server, *datalaws.Engine) {
	t.Helper()
	eng := datalaws.NewEngine()
	eng.MustExec("CREATE TABLE big (a BIGINT, b DOUBLE)")
	tb, _ := eng.Catalog.Get("big")
	for i := 0; i < n; i++ {
		if err := tb.AppendRow([]expr.Value{expr.Int(int64(i)), expr.Float(float64(i) * 0.5)}); err != nil {
			t.Fatal(err)
		}
	}
	if cfg == nil {
		cfg = &Config{}
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	srv := New(eng, cfg)
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, eng
}

func dialTest(t *testing.T, srv *Server) *Client {
	t.Helper()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cli.Close() })
	return cli
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestQueryRoundTrip(t *testing.T) {
	srv, _ := newTestServer(t, 10, nil)
	cli := dialTest(t, srv)

	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
	if info, err := cli.Exec("INSERT INTO big VALUES (?, ?)", int64(100), 3.25); err != nil || info == "" {
		t.Fatalf("Exec: info=%q err=%v", info, err)
	}
	rows, err := cli.Query("SELECT a, b FROM big WHERE a >= ? ORDER BY a", int64(8))
	if err != nil {
		t.Fatal(err)
	}
	if cols := rows.Columns(); len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Fatalf("columns = %v", cols)
	}
	var as []int64
	var bs []float64
	for rows.Next() {
		var a int64
		var b float64
		if err := rows.Scan(&a, &b); err != nil {
			t.Fatal(err)
		}
		as = append(as, a)
		bs = append(bs, b)
	}
	if rows.Err() != nil {
		t.Fatal(rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if len(as) != 3 || as[0] != 8 || as[2] != 100 || bs[2] != 3.25 {
		t.Fatalf("got %v %v", as, bs)
	}
}

func TestPreparedStatements(t *testing.T) {
	srv, _ := newTestServer(t, 50, nil)
	cli := dialTest(t, srv)

	st, err := cli.Prepare("SELECT b FROM big WHERE a = ?")
	if err != nil {
		t.Fatal(err)
	}
	if st.NumParams() != 1 {
		t.Fatalf("NumParams = %d", st.NumParams())
	}
	for i := int64(0); i < 10; i++ {
		rows, err := st.Query(i)
		if err != nil {
			t.Fatal(err)
		}
		if !rows.Next() {
			t.Fatalf("row %d missing: %v", i, rows.Err())
		}
		var b float64
		if err := rows.Scan(&b); err != nil {
			t.Fatal(err)
		}
		if b != float64(i)*0.5 {
			t.Fatalf("b = %v for a = %d", b, i)
		}
		_ = rows.Close()
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// A released statement id is a clean request error, not a dead session.
	if _, err := st.Query(int64(1)); !errors.Is(err, wireerr.ErrBadRequest) {
		t.Fatalf("closed statement gave %v, want ErrBadRequest", err)
	}
	if err := cli.Ping(); err != nil {
		t.Fatalf("session unusable after statement error: %v", err)
	}
}

// TestCursorBatching drives the flow control: a small client batch size
// forces many OpFetch round trips, and every row still arrives in order.
func TestCursorBatching(t *testing.T) {
	const n = 500
	srv, _ := newTestServer(t, n, nil)
	cli := dialTest(t, srv)
	cli.FetchRows = 7

	rows, err := cli.Query("SELECT a FROM big ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	for rows.Next() {
		var a int64
		if err := rows.Scan(&a); err != nil {
			t.Fatal(err)
		}
		if a != got {
			t.Fatalf("row %d out of order: a = %d", got, a)
		}
		got++
	}
	if rows.Err() != nil {
		t.Fatal(rows.Err())
	}
	if got != n {
		t.Fatalf("streamed %d rows, want %d", got, n)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "cursor release", func() bool { return srv.Metrics().OpenCursors() == 0 })
}

// TestCursorEarlyClose abandons a cursor after one batch; OpCloseCursor
// must free the server-side Rows without draining the rest.
func TestCursorEarlyClose(t *testing.T) {
	srv, _ := newTestServer(t, 10_000, nil)
	cli := dialTest(t, srv)
	cli.FetchRows = 4

	rows, err := cli.Query("SELECT a FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	if srv.Metrics().OpenCursors() != 1 {
		t.Fatalf("open cursors = %d, want 1", srv.Metrics().OpenCursors())
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "cursor release", func() bool { return srv.Metrics().OpenCursors() == 0 })
	// The session survives an abandoned cursor.
	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSessions exercises many parallel sessions mixing reads,
// prepared point lookups and ingest; meant to run under -race.
func TestConcurrentSessions(t *testing.T) {
	const sessions = 16
	const iters = 20
	srv, _ := newTestServer(t, 200, nil)

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			cli, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer func() { _ = cli.Close() }()
			st, err := cli.Prepare("SELECT b FROM big WHERE a = ?")
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < iters; i++ {
				switch i % 3 {
				case 0:
					rows, err := st.Query(int64(i % 200))
					if err != nil {
						errs <- fmt.Errorf("session %d point: %w", s, err)
						return
					}
					for rows.Next() {
					}
					if err := rows.Err(); err != nil {
						errs <- err
						return
					}
					_ = rows.Close()
				case 1:
					rows, err := cli.Query("SELECT count(*) FROM big")
					if err != nil {
						errs <- fmt.Errorf("session %d scan: %w", s, err)
						return
					}
					for rows.Next() {
					}
					_ = rows.Close()
				default:
					if _, err := cli.Exec("INSERT INTO big VALUES (?, ?)", int64(1000+s), 1.5); err != nil {
						errs <- fmt.Errorf("session %d ingest: %w", s, err)
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if e := srv.Metrics().Errors(); e != 0 {
		t.Fatalf("server recorded %d request errors", e)
	}
	waitFor(t, "sessions to close", func() bool { return srv.ActiveSessions() == 0 })
}

// TestClientDisconnectCancelsCursor pins the acceptance criterion:
// killing a client mid-cursor frees its session — cursor released,
// session gone, no goroutine left behind.
func TestClientDisconnectCancelsCursor(t *testing.T) {
	srv, _ := newTestServer(t, 100_000, nil)
	base := runtime.NumGoroutine()

	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cli.FetchRows = 8
	rows, err := cli.Query("SELECT a, b FROM big")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16 && rows.Next(); i++ {
	}
	if srv.Metrics().OpenCursors() != 1 {
		t.Fatalf("open cursors = %d, want 1", srv.Metrics().OpenCursors())
	}
	// Kill the connection with the cursor still open — no protocol goodbye.
	_ = cli.Close()

	waitFor(t, "session teardown", func() bool {
		return srv.ActiveSessions() == 0 && srv.Metrics().OpenCursors() == 0
	})
	waitFor(t, "goroutines to drain", func() bool {
		return runtime.NumGoroutine() <= base+2
	})
}

// TestGracefulDrain walks the full drain choreography: idle sessions are
// kicked, new statements are refused with CodeDraining, in-flight cursors
// stream to completion, and Shutdown returns once they do.
func TestGracefulDrain(t *testing.T) {
	srv, _ := newTestServer(t, 300, nil)

	busy := dialTest(t, srv)
	busy.FetchRows = 10
	rows, err := busy.Query("SELECT a FROM big ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	var first int64
	if !rows.Next() {
		t.Fatalf("no rows: %v", rows.Err())
	}
	if err := rows.Scan(&first); err != nil {
		t.Fatal(err)
	}

	idle := dialTest(t, srv)
	if err := idle.Ping(); err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// The idle session gets kicked immediately.
	waitFor(t, "idle session kick", func() bool { return idle.Ping() != nil })
	// New connections are refused: the listener is closed.
	waitFor(t, "listener close", func() bool {
		_, err := net.DialTimeout("tcp", srv.Addr(), 100*time.Millisecond)
		if err != nil {
			return true
		}
		// Dial may succeed against a dead accept queue; a real session
		// cannot be established once Shutdown force-closes it.
		return false
	})

	// The busy session is refused new work but keeps its cursor.
	if _, err := busy.Query("SELECT count(*) FROM big"); !errors.Is(err, wireerr.ErrDraining) {
		t.Fatalf("query during drain gave %v, want ErrDraining", err)
	}
	n := int64(1)
	for rows.Next() {
		n++
	}
	if rows.Err() != nil {
		t.Fatalf("drain interrupted the in-flight cursor: %v", rows.Err())
	}
	if n != 300 {
		t.Fatalf("cursor streamed %d rows under drain, want 300", n)
	}

	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("Shutdown = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return after the last cursor finished")
	}
	if srv.ActiveSessions() != 0 {
		t.Fatalf("sessions alive after Shutdown: %d", srv.ActiveSessions())
	}
}

// TestShutdownDeadlineForceCloses pins the drain deadline: a session that
// parks on an open cursor forever cannot hold Shutdown hostage.
func TestShutdownDeadlineForceCloses(t *testing.T) {
	srv, _ := newTestServer(t, 10_000, nil)
	cli := dialTest(t, srv)
	cli.FetchRows = 4
	rows, err := cli.Query("SELECT a FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no rows: %v", rows.Err())
	}
	// Never fetch again; the session holds its cursor open.
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = srv.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("Shutdown took %v past its deadline", d)
	}
	waitFor(t, "forced teardown", func() bool { return srv.ActiveSessions() == 0 })
}

// TestSentinelsCrossTheFrames pins errors.Is matching across the framed
// protocol, end to end through the engine.
func TestSentinelsCrossTheFrames(t *testing.T) {
	srv, _ := newTestServer(t, 1, nil)
	cli := dialTest(t, srv)

	_, err := cli.Query("SELECT a FROM nope")
	if !errors.Is(err, datalaws.ErrUnknownTable) {
		t.Fatalf("unknown-table sentinel lost in transit: %v", err)
	}
	if !strings.Contains(err.Error(), `"nope"`) {
		t.Fatalf("message lost in transit: %v", err)
	}
	// A clean request error leaves the session healthy.
	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestServerRefusesOversizedFrames pins the allocation bound on the new
// protocol: a frame header past MaxFrame drops the connection before the
// payload is read, and the server keeps serving.
func TestServerRefusesOversizedFrames(t *testing.T) {
	srv, _ := newTestServer(t, 1, &Config{MaxFrame: 1 << 12})

	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = raw.Close() }()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 64<<20) // claim a 64MB payload
	if _, err := raw.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	_ = raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("server answered an oversized frame instead of dropping it")
	}

	// Well-behaved sessions still work.
	cli := dialTest(t, srv)
	if err := cli.Ping(); err != nil {
		t.Fatalf("server unusable after rejecting an oversized frame: %v", err)
	}
	waitFor(t, "bad session teardown", func() bool { return srv.ActiveSessions() <= 1 })
}

func TestWriteMsgRespectsCap(t *testing.T) {
	var sink strings.Builder
	big := &Request{Op: OpQuery, SQL: strings.Repeat("x", 1<<12)}
	err := writeMsg(&sink, big, 1<<10)
	var tooBig *errFrameTooBig
	if !errors.As(err, &tooBig) {
		t.Fatalf("writeMsg = %v, want errFrameTooBig", err)
	}
	if sink.Len() != 0 {
		t.Fatalf("writeMsg leaked %d bytes of a refused frame", sink.Len())
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, 100, nil)
	cli := dialTest(t, srv)

	for i := 0; i < 5; i++ {
		rows, err := cli.Query("SELECT a FROM big WHERE a < ?", int64(10))
		if err != nil {
			t.Fatal(err)
		}
		for rows.Next() {
		}
		_ = rows.Close()
	}
	if _, err := cli.Query("SELECT a FROM nope"); err == nil {
		t.Fatal("expected an error for the metrics counter")
	}

	rec := httptest.NewRecorder()
	srv.Metrics().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"datalaws_qps ",
		"datalaws_latency_p50_seconds ",
		"datalaws_latency_p99_seconds ",
		"datalaws_queries_total 6",
		"datalaws_query_errors_total 1",
		"datalaws_route_exact_total 5",
		"datalaws_sessions_active 1",
		"datalaws_refits_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics body missing %q:\n%s", want, body)
		}
	}
}
