package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// The `go vet -vettool` unit protocol. For every package, the go command
// invokes the tool with a single argument: the path to a JSON config naming
// the package's source files and the compiled export data of its imports.
// The tool analyzes that one package, prints diagnostics to stderr, writes
// the (empty — this suite exchanges no facts) .vetx output file the go
// command expects, and exits 2 when it found anything. `go vet` also probes
// the tool once with -V=full to version its result cache.

// vetConfig mirrors the config JSON written by cmd/go for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
	GoVersion                 string
}

// PrintVersion answers `datalaws-vet -V=full`, the go command's cache probe:
// the output must carry a buildID= token that changes whenever the tool
// binary does, so vet results are re-derived after the analyzers change. A
// content hash of the executable is exactly that (the same scheme the
// x/tools unitchecker uses).
func PrintVersion(w io.Writer) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Fprintf(w, "%s version devel datalaws buildID=%02x\n", filepath.Base(exe), h.Sum(nil))
	return nil
}

// PrintFlags answers `datalaws-vet -flags`: the go command probes the tool
// for its supported flags as a JSON list before driving it, mirroring the
// x/tools unitchecker handshake.
func PrintFlags(w io.Writer, fs *flag.FlagSet) error {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{}
	fs.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// RunUnit analyzes the single package described by the vet config file and
// returns its findings. It writes the facts output file as a side effect —
// without it the go command reports the tool as failed even on a clean
// package.
func RunUnit(cfgPath string, analyzers []*Analyzer) ([]Finding, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", cfgPath, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if to, ok := cfg.ImportMap[path]; ok {
			path = to
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		goFiles = append(goFiles, f)
	}
	lp, err := typecheckFiles(fset, imp, cfg.ImportPath, cfg.Dir, goFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}
	// Synthesized test-main packages ("pkg.test") hold only generated code.
	if strings.HasSuffix(cfg.ImportPath, ".test") {
		return nil, nil
	}
	return RunAnalyzers([]*LoadedPackage{lp}, analyzers)
}
