// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis core: Analyzer, Pass and Diagnostic, plus
// the project's //lint:ignore suppression directive. The build environment
// carries no third-party modules, so the suite vendors exactly the surface
// it needs on top of go/ast and go/types; analyzers written against it keep
// the upstream shape and could move to x/tools unchanged.
//
// The suite's analyzers (internal/analysis/passes/...) mechanically enforce
// engine invariants that were previously tribal knowledge:
//
//   - walgate: mutations must pass through the WAL log-then-apply gate
//   - snapshotread: cross-column table reads must hold one Snapshot/View
//   - ctxloop: batch-pull and morsel-claim loops must observe cancellation
//   - ioerrsink: WAL/persist I/O errors must never be silently dropped
//
// Run them with cmd/datalaws-vet (standalone over package patterns, or as a
// `go vet -vettool`), or scripts/vet.sh.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Analyzer describes one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc states the invariant the analyzer enforces and which PR
	// established it.
	Doc string
	// Run executes the check against one package and reports findings
	// through pass.Report. The result value is unused by this suite (kept
	// for upstream shape).
	Run func(*Pass) (interface{}, error)
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Category: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	Pos      token.Pos
	Category string // analyzer name
	Message  string
}

// NewInfo returns a types.Info with every map an analyzer needs populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// --- //lint:ignore suppression -------------------------------------------

// An ignore directive has the form
//
//	//lint:ignore walgate reason the call is intentionally unlogged
//
// naming one analyzer (or a comma-separated list) and a mandatory non-empty
// reason. It suppresses matching diagnostics positioned on the directive's
// own line or on the line immediately below it (the staticcheck convention:
// the comment sits on or above the offending statement). A directive with no
// reason is itself reported — the whole point is that every suppression
// documents why the invariant does not apply.
type ignoreDirective struct {
	file     string
	line     int
	checks   []string
	hasWhy   bool
	pos      token.Pos
	consumed bool
}

var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)(.*)$`)

func collectIgnores(fset *token.FileSet, files []*ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				out = append(out, &ignoreDirective{
					file:   p.Filename,
					line:   p.Line,
					checks: strings.Split(m[1], ","),
					hasWhy: strings.TrimSpace(m[2]) != "",
					pos:    c.Pos(),
				})
			}
		}
	}
	return out
}

// ApplyIgnores filters diags against the //lint:ignore directives found in
// files. It returns the surviving diagnostics plus extra diagnostics for
// malformed (reason-less) or unused directives, so a suppression can never
// rot silently after the code it excused is gone.
func ApplyIgnores(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	dirs := collectIgnores(fset, files)
	if len(dirs) == 0 {
		return diags
	}
	var kept []Diagnostic
	for _, d := range diags {
		p := fset.Position(d.Pos)
		suppressed := false
		for _, dir := range dirs {
			if !dir.hasWhy || dir.file != p.Filename {
				continue
			}
			if p.Line != dir.line && p.Line != dir.line+1 {
				continue
			}
			for _, c := range dir.checks {
				if c == d.Category {
					dir.consumed = true
					suppressed = true
					break
				}
			}
			if suppressed {
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, dir := range dirs {
		if !dir.hasWhy {
			kept = append(kept, Diagnostic{Pos: dir.pos, Category: "lint-directive",
				Message: "lint:ignore directive is missing its reason; document why the invariant does not apply"})
		} else if !dir.consumed {
			kept = append(kept, Diagnostic{Pos: dir.pos, Category: "lint-directive",
				Message: fmt.Sprintf("lint:ignore %s suppresses nothing here; remove the stale directive", strings.Join(dir.checks, ","))})
		}
	}
	return kept
}

// --- shared AST helpers ---------------------------------------------------

// WalkStack traverses every file, calling f with each node and the stack of
// its ancestors (outermost first, not including n itself). Analyzers use it
// where a finding's legality depends on enclosing context (the walgate's
// mutate-wrapper rule).
func WalkStack(files []*ast.File, f func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			f(n, stack)
			stack = append(stack, n)
			return true
		})
	}
}

// EnclosingFuncName returns the name of the outermost function declaration
// on the stack ("" at package scope). Function literals report the named
// function that lexically contains them — allowlists reason about the
// top-level entry point, not the closure.
func EnclosingFuncName(stack []ast.Node) string {
	for _, n := range stack {
		if fd, ok := n.(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// The suite enforces production invariants; tests construct engines and
// tables directly by design, so diagnostics in test files are dropped.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// NamedReceiver resolves a method call's receiver to its named type,
// unwrapping pointers and aliases. It returns the package path and type
// name, or ok=false for non-method calls and unnamed receivers.
func NamedReceiver(info *types.Info, call *ast.CallExpr) (pkgPath, typeName, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	s, isMethod := info.Selections[sel]
	if !isMethod || s.Kind() != types.MethodVal {
		return "", "", "", false
	}
	named := namedOf(s.Recv())
	if named == nil || named.Obj().Pkg() == nil {
		return "", "", "", false
	}
	return named.Obj().Pkg().Path(), named.Obj().Name(), sel.Sel.Name, true
}

// PkgFunc resolves a call to a package-level function, returning its
// package path and name (ok=false for methods, builtins and locals).
func PkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return "", "", false
	}
	fn, isFn := info.Uses[id].(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", "", false
	}
	if sig, sigOK := fn.Type().(*types.Signature); !sigOK || sig.Recv() != nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// IsNamedType reports whether t (possibly behind pointers) is the named
// type pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}
