package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// applyOn parses src, fabricates one walgate diagnostic per line containing
// the marker "DIAG", and runs ApplyIgnores over the result.
func applyOn(t *testing.T, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	tf := fset.File(f.Pos())
	for i, line := range strings.Split(src, "\n") {
		if strings.Contains(line, "DIAG") {
			diags = append(diags, Diagnostic{Pos: tf.LineStart(i + 1), Category: "walgate", Message: "seeded"})
		}
	}
	return ApplyIgnores(fset, []*ast.File{f}, diags)
}

func categories(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Category)
	}
	return out
}

func TestIgnoreSuppressesLineBelow(t *testing.T) {
	got := applyOn(t, `package p

func f() {
	//lint:ignore walgate the call is intentionally unlogged
	_ = 1 // DIAG
}
`)
	if len(got) != 0 {
		t.Fatalf("want no surviving diagnostics, got %v", categories(got))
	}
}

func TestIgnoreRequiresMatchingCategory(t *testing.T) {
	got := applyOn(t, `package p

func f() {
	//lint:ignore ctxloop reason that names a different analyzer
	_ = 1 // DIAG
}
`)
	// The walgate diagnostic survives, and the ctxloop directive is stale.
	if len(got) != 2 {
		t.Fatalf("want 2 diagnostics (survivor + stale directive), got %v", categories(got))
	}
	if got[0].Category != "walgate" || got[1].Category != "lint-directive" {
		t.Fatalf("unexpected categories %v", categories(got))
	}
}

func TestMalformedDirectiveReported(t *testing.T) {
	got := applyOn(t, `package p

func f() {
	//lint:ignore walgate
	_ = 1 // DIAG
}
`)
	// A reason-less directive suppresses nothing and is itself reported.
	if len(got) != 2 {
		t.Fatalf("want 2 diagnostics (survivor + malformed directive), got %v", categories(got))
	}
	foundMalformed := false
	for _, d := range got {
		if d.Category == "lint-directive" && strings.Contains(d.Message, "missing its reason") {
			foundMalformed = true
		}
	}
	if !foundMalformed {
		t.Fatalf("malformed directive not reported: %v", got)
	}
}

func TestStaleDirectiveReported(t *testing.T) {
	got := applyOn(t, `package p

func f() {
	//lint:ignore walgate nothing on the next line actually triggers
	_ = 1
}
`)
	if len(got) != 1 || got[0].Category != "lint-directive" ||
		!strings.Contains(got[0].Message, "suppresses nothing") {
		t.Fatalf("stale directive not reported: %v", got)
	}
}

func TestMultiAnalyzerDirective(t *testing.T) {
	got := applyOn(t, `package p

func f() {
	//lint:ignore snapshotread,walgate one directive can name several analyzers
	_ = 1 // DIAG
}
`)
	if len(got) != 0 {
		t.Fatalf("want no surviving diagnostics, got %v", categories(got))
	}
}
