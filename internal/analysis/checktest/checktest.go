// Package checktest runs an analyzer over a testdata source tree and
// compares its diagnostics against inline `// want "regex"` annotations —
// the analysistest contract, implemented on the stdlib so fixtures typecheck
// fully offline.
//
// Fixtures live under <testdata>/src/<import/path>/. Imports resolve
// recursively inside the same tree, so a fixture that needs a stdlib or
// engine package imports a stub with the same import path (e.g.
// testdata/src/os, testdata/src/datalaws): analyzers match packages by path,
// so stubs exercise exactly the same code paths as the real dependencies
// without requiring export data.
package checktest

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"datalaws/internal/analysis"
)

// Run analyzes the fixture package at <testdata>/src/<pkgPath> and reports
// any mismatch between produced diagnostics and `// want` annotations as
// test failures. Build-tagged fixture files are selected by tags.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPath string, tags ...string) {
	t.Helper()
	fset := token.NewFileSet()
	im := &srcImporter{
		fset:   fset,
		srcDir: filepath.Join(testdata, "src"),
		tags:   tags,
		pkgs:   map[string]*typedPkg{},
	}
	tp, err := im.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture package %s: %v", pkgPath, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     tp.files,
		Pkg:       tp.pkg,
		TypesInfo: tp.info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}
	diags = analysis.ApplyIgnores(fset, tp.files, diags)

	wants := collectWants(t, fset, tp.files)
	for _, d := range diags {
		p := fset.Position(d.Pos)
		if !claimWant(wants, p.Filename, p.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", p, d.Message, d.Category)
		}
	}
	for _, w := range wants {
		if !w.claimed {
			t.Errorf("%s:%d: no diagnostic matched `want %q`", w.file, w.line, w.rx.String())
		}
	}
}

// want is one expectation parsed from a `// want "rx"` comment.
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	claimed bool
}

// wantRe captures each quoted or backquoted pattern after the want marker.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants parses every `// want` annotation; the expectation anchors to
// the comment's own line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "want ")
				if !strings.HasPrefix(text, "//") || i < 0 {
					continue
				}
				p := fset.Position(c.Pos())
				for _, lit := range wantRe.FindAllString(text[i+len("want "):], -1) {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", p, lit, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", p, pat, err)
					}
					wants = append(wants, &want{file: p.Filename, line: p.Line, rx: rx})
				}
			}
		}
	}
	return wants
}

// claimWant consumes the first unclaimed expectation on the diagnostic's
// line whose pattern matches the message.
func claimWant(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.claimed && w.file == file && w.line == line && w.rx.MatchString(msg) {
			w.claimed = true
			return true
		}
	}
	return false
}

// typedPkg is one typechecked fixture package.
type typedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// srcImporter typechecks fixture packages from source, resolving every
// import inside the same testdata/src tree.
type srcImporter struct {
	fset    *token.FileSet
	srcDir  string
	tags    []string
	pkgs    map[string]*typedPkg
	loading []string // active load stack, for cycle reporting
}

// Import implements types.Importer for the typechecker's recursive loads.
func (im *srcImporter) Import(path string) (*types.Package, error) {
	tp, err := im.load(path)
	if err != nil {
		return nil, err
	}
	return tp.pkg, nil
}

func (im *srcImporter) load(path string) (*typedPkg, error) {
	if tp, ok := im.pkgs[path]; ok {
		return tp, nil
	}
	for _, active := range im.loading {
		if active == path {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
	}
	im.loading = append(im.loading, path)
	defer func() { im.loading = im.loading[:len(im.loading)-1] }()

	ctxt := build.Default
	ctxt.BuildTags = im.tags
	ctxt.CgoEnabled = false
	dir := filepath.Join(im.srcDir, filepath.FromSlash(path))
	bp, err := ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("fixture package %q: %w", path, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: im}
	pkg, err := conf.Check(path, im.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking fixture %q: %w", path, err)
	}
	tp := &typedPkg{pkg: pkg, files: files, info: info}
	im.pkgs[path] = tp
	return tp, nil
}
