package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The standalone loader: `go list -export -json -deps` enumerates the
// module's packages plus every dependency's compiled export data, and each
// module package is parsed from source and typechecked against that export
// data — the same inputs `go vet` hands a vettool, without needing go vet to
// drive. Works fully offline (the module has no external dependencies; the
// toolchain builds stdlib export data into the local build cache on demand).

// LoadedPackage is one typechecked module package ready for analysis.
type LoadedPackage struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Standard   bool
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
	Incomplete bool
}

// LoadPackages lists patterns (honoring build tags) and typechecks every
// package belonging to the current module.
func LoadPackages(dir string, tags []string, patterns ...string) ([]*LoadedPackage, error) {
	args := []string{"list", "-e", "-export", "-json", "-deps"}
	if len(tags) > 0 {
		args = append(args, "-tags", strings.Join(tags, ","))
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	modPath, err := modulePath(dir)
	if err != nil {
		return nil, err
	}

	var targets []*listedPkg
	exports := map[string]string{}
	importMap := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
		if !p.Standard && (p.ImportPath == modPath || strings.HasPrefix(p.ImportPath, modPath+"/")) {
			cp := p
			targets = append(targets, &cp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, importMap, exports)
	var pkgs []*LoadedPackage
	for _, t := range targets {
		lp, err := typecheckFiles(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// exportImporter resolves imports through compiled export data, exactly as
// the compiler would: source import path → ImportMap → export file.
func exportImporter(fset *token.FileSet, importMap, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if to, ok := importMap[path]; ok {
			path = to
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// typecheckFiles parses and typechecks one package from source against
// export-data imports.
func typecheckFiles(fset *token.FileSet, imp types.Importer, pkgPath, dir string, goFiles []string) (*LoadedPackage, error) {
	var files []*ast.File
	for _, name := range goFiles {
		fn := name
		if !filepath.IsAbs(fn) {
			fn = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", fn, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %w", pkgPath, err)
	}
	return &LoadedPackage{PkgPath: pkgPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

func modulePath(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %w", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// Finding is one positioned diagnostic from a run over loaded packages.
type Finding struct {
	Position token.Position
	Category string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Position, f.Message, f.Category)
}

// RunAnalyzers applies every analyzer to every package, filters test-file
// diagnostics and //lint:ignore suppressions, and returns position-sorted
// findings.
func RunAnalyzers(pkgs []*LoadedPackage, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, p := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Pkg,
				TypesInfo: p.Info,
				Report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, p.PkgPath, err)
			}
		}
		for _, d := range ApplyIgnores(p.Fset, p.Files, diags) {
			if IsTestFile(p.Fset, d.Pos) {
				continue
			}
			findings = append(findings, Finding{Position: p.Fset.Position(d.Pos), Category: d.Category, Message: d.Message})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings, nil
}
