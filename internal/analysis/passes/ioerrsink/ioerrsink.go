// Package ioerrsink enforces the WAL's error-poisoning contract at its
// edges: I/O errors from the log's filesystem surface and the snapshot
// commit path must never be silently dropped or overwritten before they are
// observed.
//
// The durability PR made the log poison itself after any write or fsync
// error — later mutations fail loudly with the original error instead of
// silently going unlogged. That guarantee only holds if every error those
// I/O calls return actually reaches the poisoning logic: one bare
// `f.Sync()` statement reintroduces the silent-loss bug class the WAL
// exists to kill.
package ioerrsink

import (
	"go/ast"
	"go/types"

	"datalaws/internal/analysis"
)

// Analyzer flags dropped and shadowed I/O errors in the WAL and snapshot
// persistence paths.
var Analyzer = &analysis.Analyzer{
	Name: "ioerrsink",
	Doc: `WAL and snapshot I/O errors must not be dropped or shadowed

Applies to datalaws/internal/wal and the engine's persist.go/wal_engine.go.
Flagged calls: methods of the wal filesystem surface (Sync, Close, Write,
SyncDir, Truncate, Remove, MkdirAll, Rotate, ReclaimBelow) on wal-declared
types and *os.File, plus os.Rename/os.Remove/os.Truncate. A diagnostic is
raised when such a call's error is silently discarded — used as a bare
statement, or assigned to an error variable that is overwritten before it
is read. An explicit "_ = f.Close()" is an audited drop and is allowed (it
is greppable and visibly deliberate); "defer f.Close()" on read-side
handles is conventional and exempt, but deferring Sync-class calls is not.`,
	Run: run,
}

// flaggedMethods on wal types and *os.File.
var flaggedMethods = map[string]bool{
	"Sync": true, "Close": true, "Write": true, "SyncDir": true,
	"Truncate": true, "Remove": true, "MkdirAll": true,
	"Rotate": true, "ReclaimBelow": true,
}

// flaggedOsFuncs are package-level os functions in the commit path.
var flaggedOsFuncs = map[string]bool{
	"Rename": true, "Remove": true, "Truncate": true,
}

// scopedFile reports whether diagnostics apply to this package/file. The
// wal package is fully in scope; in the engine package only the snapshot
// and WAL wiring files are (the invariant is about the durability path, not
// every Close in the codebase).
func scopedFile(pkgPath, filename string) bool {
	if pkgPath == "datalaws/internal/wal" {
		return true
	}
	if pkgPath != "datalaws" {
		return false
	}
	base := filename
	for i := len(filename) - 1; i >= 0; i-- {
		if filename[i] == '/' {
			base = filename[i+1:]
			break
		}
	}
	return base == "persist.go" || base == "wal_engine.go"
}

func run(pass *analysis.Pass) (interface{}, error) {
	pkgPath := pass.Pkg.Path()
	if pkgPath != "datalaws/internal/wal" && pkgPath != "datalaws" {
		return nil, nil
	}
	for _, file := range pass.Files {
		if !scopedFile(pkgPath, pass.Fset.Position(file.Pos()).Filename) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					if name, hit := flaggedCall(pass.TypesInfo, call); hit {
						pass.Reportf(call.Pos(),
							"%s returns an I/O error that is silently dropped; check it (or make the drop explicit and audited with `_ = %s`)",
							name, name)
					}
				}
			case *ast.DeferStmt:
				name, hit := flaggedCall(pass.TypesInfo, st.Call)
				if hit && !isDeferredClose(st.Call) {
					pass.Reportf(st.Call.Pos(),
						"deferred %s drops its I/O error; sync-class failures must reach the poisoning/commit logic — call it inline and check the error", name)
				}
			case *ast.BlockStmt:
				checkShadowing(pass, st)
			}
			return true
		})
	}
	return nil, nil
}

// flaggedCall reports whether call is in the flagged I/O set and returns a
// printable name for it.
func flaggedCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	if pkg, typ, method, ok := analysis.NamedReceiver(info, call); ok {
		if !flaggedMethods[method] {
			return "", false
		}
		if pkg == "datalaws/internal/wal" || (pkg == "os" && typ == "File") {
			return typ + "." + method, true
		}
		return "", false
	}
	if pkg, name, ok := analysis.PkgFunc(info, call); ok && pkg == "os" && flaggedOsFuncs[name] {
		return "os." + name, true
	}
	return "", false
}

// isDeferredClose matches the conventional `defer f.Close()` shape, which
// is exempt: write-path handles in this codebase close inline before their
// contents are published (the writeFileSynced pattern), so surviving defers
// are read-side cleanup whose Close error carries no durability meaning.
func isDeferredClose(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Close"
}

// checkShadowing flags block-local error shadowing: an error variable
// assigned from a flagged call and then overwritten before any read. The
// scan is linear within one block — exactly the copy-paste shape
// (`err = a.Sync(); err = b.Close()`) that loses the first failure.
func checkShadowing(pass *analysis.Pass, block *ast.BlockStmt) {
	type pendingWrite struct {
		obj  types.Object
		call *ast.CallExpr
		name string
	}
	var pending []pendingWrite
	for _, stmt := range block.List {
		asg, isAsg := stmt.(*ast.AssignStmt)

		// Any use of a pending error variable in this statement clears it —
		// except its own plain reassignment target position.
		used := map[types.Object]bool{}
		ast.Inspect(stmt, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if isAsg && asg.Tok.String() == "=" {
				for _, lhs := range asg.Lhs {
					if lhs == n {
						return true
					}
				}
			}
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				used[obj] = true
			}
			return true
		})
		var kept []pendingWrite
		for _, p := range pending {
			if used[p.obj] {
				continue
			}
			kept = append(kept, p)
		}
		pending = kept

		if !isAsg {
			continue
		}
		// An overwrite of a still-pending error variable is the shadow.
		if asg.Tok.String() == "=" {
			for _, lhs := range asg.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Uses[id]
				if obj == nil {
					continue
				}
				var kept2 []pendingWrite
				for _, p := range pending {
					if p.obj == obj {
						pass.Reportf(p.call.Pos(),
							"error from %s is overwritten before it is read; the first failure is lost to the poisoning/commit logic", p.name)
						continue
					}
					kept2 = append(kept2, p)
				}
				pending = kept2
			}
		}
		// A flagged call assigned into a plain error variable becomes
		// pending until read.
		if len(asg.Rhs) == 1 {
			if call, ok := asg.Rhs[0].(*ast.CallExpr); ok {
				if name, hit := flaggedCall(pass.TypesInfo, call); hit {
					if id, ok := asg.Lhs[len(asg.Lhs)-1].(*ast.Ident); ok && id.Name != "_" {
						var obj types.Object
						if asg.Tok.String() == "=" {
							obj = pass.TypesInfo.Uses[id]
						} else {
							obj = pass.TypesInfo.Defs[id]
						}
						if obj != nil && isErrorVar(obj) {
							pending = append(pending, pendingWrite{obj: obj, call: call, name: name})
						}
					}
				}
			}
		}
	}
}

func isErrorVar(obj types.Object) bool {
	return obj.Type() != nil && obj.Type().String() == "error"
}
