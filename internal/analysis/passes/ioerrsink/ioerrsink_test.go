package ioerrsink_test

import (
	"testing"

	"datalaws/internal/analysis/checktest"
	"datalaws/internal/analysis/passes/ioerrsink"
)

func TestWal(t *testing.T) {
	checktest.Run(t, "testdata", ioerrsink.Analyzer, "datalaws/internal/wal")
}

// TestWalFaultinject proves the analyzer covers the build-tagged
// fault-injection tree: fault.go only exists under -tags faultinject, and
// its seeded drop must be found there (TestWal above proves the plain tree
// excludes it).
func TestWalFaultinject(t *testing.T) {
	checktest.Run(t, "testdata", ioerrsink.Analyzer, "datalaws/internal/wal", "faultinject")
}

// TestEngine covers the persist.go-only scoping inside the engine package.
func TestEngine(t *testing.T) {
	checktest.Run(t, "testdata", ioerrsink.Analyzer, "datalaws")
}
