// Fixture for ioerrsink in the engine package: only persist.go and
// wal_engine.go are in the durability path.
package datalaws

import "os"

func publish(tmp, dst string) error {
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp) // want `os\.Remove returns an I/O error that is silently dropped`
		return err
	}
	return nil
}

func publishAudited(tmp, dst string) error {
	if err := os.Rename(tmp, dst); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return nil
}

func syncDropped(f *os.File) {
	f.Sync() // want `File\.Sync returns an I/O error that is silently dropped`
}
