//go:build faultinject

// Build-tagged fixture: the fault-injection tree is part of the durability
// path too, and the analyzer must see it when run with -tags faultinject.
package wal

func faultPartialWrite(f *File, p []byte) {
	f.Write(p) // want `File\.Write returns an I/O error that is silently dropped`
}
