// Fixture for ioerrsink inside the wal package: every file here is in the
// durability path, and wal-declared types carry the flagged method set.
package wal

// File is the log file surface stub.
type File struct{}

// Close returns an I/O error.
func (f *File) Close() error { return nil }

// Sync returns an I/O error.
func (f *File) Sync() error { return nil }

// Write returns an I/O error.
func (f *File) Write(p []byte) (int, error) { return 0, nil }

// FS is the filesystem surface stub.
type FS struct{}

// SyncDir returns an I/O error.
func (fs *FS) SyncDir(dir string) error { return nil }

func bareDrop(f *File) {
	f.Sync() // want `File\.Sync returns an I/O error that is silently dropped`
}

func bareDropFS(fs *FS) {
	fs.SyncDir("d") // want `FS\.SyncDir returns an I/O error that is silently dropped`
}

// An explicit blank assignment is an audited, greppable drop.
func auditedDrop(f *File) {
	_ = f.Close()
}

// defer f.Close() is the read-side convention and exempt.
func deferredClose(f *File) error {
	defer f.Close()
	return nil
}

// Deferring a sync-class call loses the error that poisons the log.
func deferredSync(f *File) {
	defer f.Sync() // want `deferred File\.Sync drops its I/O error`
}

// Overwriting a pending error loses the first failure.
func shadowed(a, b *File) error {
	var err error
	err = a.Sync() // want `error from File\.Sync is overwritten before it is read`
	err = b.Close()
	return err
}

// Checking each error before the next assignment is the correct shape.
func sequential(a, b *File) error {
	if err := a.Sync(); err != nil {
		return err
	}
	return b.Close()
}

// A documented suppression is honored.
func suppressedDrop(f *File) {
	//lint:ignore ioerrsink fixture handle is memory-backed; its Sync cannot fail
	f.Sync()
}
