// Files outside persist.go/wal_engine.go are not in the durability path:
// identical drops here are not flagged.
package datalaws

import "os"

func elsewhere(f *os.File) {
	f.Close()
}
