// Stub of the stdlib os package: ioerrsink flags *os.File methods and the
// rename/remove/truncate commit-path functions by import path, which this
// stub provides without stdlib export data.
package os

// File is the os file handle stub.
type File struct{}

// Close returns an I/O error.
func (f *File) Close() error { return nil }

// Sync returns an I/O error.
func (f *File) Sync() error { return nil }

// Rename is part of the atomic-publish commit path.
func Rename(oldpath, newpath string) error { return nil }

// Remove is part of the commit path's cleanup.
func Remove(name string) error { return nil }

// Truncate is part of the commit path.
func Truncate(name string, size int64) error { return nil }
