// Fixture for snapshotread: the second separately-locked read of one table
// in one function is flagged; single reads, Snapshot/View rewrites and
// distinct tables are not.
package reads

import "datalaws/internal/table"

// Two data reads of one table tear.
func torn(t *table.Table) {
	a, _ := t.FloatColumn("a")
	b, _ := t.FloatColumn("b") // want `FloatColumn\(\) is the second separately-locked read of table "t" in torn \(2 data/0 metadata reads\)`
	_, _ = a, b
}

// A data read sized against a separate NumRows tears too.
func tornMeta(t *table.Table) {
	n := t.NumRows()
	c, _ := t.IntColumn("c") // want `IntColumn\(\) is the second separately-locked read of table "t" in tornMeta \(1 data/1 metadata reads\)`
	_ = n
	_ = c
}

// Row plus Column is a cross-accessor pair.
func tornMixed(s struct{ Tab *table.Table }) {
	r := s.Tab.Row(0)
	col := s.Tab.Column("x") // want `Column\(\) is the second separately-locked read of table "s\.Tab" in tornMixed`
	_ = r
	_ = col
}

// One read is consistent by construction.
func single(t *table.Table) {
	_, _ = t.FloatColumn("a")
}

// Metadata alone cannot tear.
func metaOnly(t *table.Table) {
	_ = t.NumRows()
	_ = t.NumRows()
}

// The rewrite the analyzer demands: everything under one lock.
func snapshotted(t *table.Table) {
	_ = t.Snapshot(func(cols []table.Column, rows int, version uint64) error {
		return nil
	})
}

// Distinct tables never pair.
func twoTables(a, b *table.Table) {
	x, _ := a.FloatColumn("x")
	y, _ := b.FloatColumn("x")
	_, _ = x, y
}

// A single Chunks capture is the sanctioned consistent read; everything
// drawn from the returned view shares one append state.
func chunkCapture(t *table.Table) {
	v := t.Chunks()
	_, _, _ = v.Columns(0)
	_ = v.NumSealed()
}

// Two captures can straddle an append, same as any other accessor pair.
func tornDoubleCapture(t *table.Table) {
	a := t.Chunks()
	b := t.Chunks() // want `Chunks\(\) is the second separately-locked read of table "t" in tornDoubleCapture \(2 data/0 metadata reads\)`
	_, _ = a, b
}

// A capture next to a direct accessor pairs too.
func tornCaptureAndRow(t *table.Table) {
	v := t.Chunks()
	r := t.Row(0) // want `Row\(\) is the second separately-locked read of table "t" in tornCaptureAndRow \(2 data/0 metadata reads\)`
	_, _ = v, r
}

// Raw per-chunk decode bypasses the shared cache: flagged even alone.
func rawChunkDecode(c *table.Chunk) {
	_, _ = c.Columns() // want `Columns\(\) on \*table\.Chunk decodes outside the shared chunk cache`
}

// A documented suppression is honored.
func tornSuppressed(t *table.Table) {
	a, _ := t.FloatColumn("a")
	//lint:ignore snapshotread fixture table is private to this goroutine; no concurrent appender exists
	b, _ := t.FloatColumn("b")
	_, _ = a, b
}
