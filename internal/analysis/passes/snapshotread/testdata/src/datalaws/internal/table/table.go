// Stub of the engine's table package: snapshotread matches accessor methods
// on *table.Table by (import path, type, method).
package table

// Column is the columnar data interface stub.
type Column interface{}

// Table is the columnar table stub; every accessor locks independently in
// the real implementation, which is the race the analyzer guards.
type Table struct{ Name string }

// NumRows is a metadata accessor.
func (t *Table) NumRows() int { return 0 }

// Column is a data accessor.
func (t *Table) Column(name string) Column { return nil }

// ColumnAt is a data accessor.
func (t *Table) ColumnAt(i int) Column { return nil }

// FloatColumn is a data accessor.
func (t *Table) FloatColumn(name string) ([]float64, error) { return nil, nil }

// IntColumn is a data accessor.
func (t *Table) IntColumn(name string) ([]int64, error) { return nil, nil }

// Row is a data accessor.
func (t *Table) Row(i int) []interface{} { return nil }

// View runs f under one read-lock acquisition.
func (t *Table) View(f func(cols []Column, rows int) error) error { return nil }

// Snapshot is View extended with the version counter.
func (t *Table) Snapshot(f func(cols []Column, rows int, version uint64) error) error { return nil }

// Chunks captures a consistent chunked view under one lock; a data
// accessor for pairing purposes.
func (t *Table) Chunks() *ChunkView { return nil }

// ChunkView is the point-in-time chunked capture stub.
type ChunkView struct{}

// Columns on a ChunkView reads through the shared decode cache; sanctioned.
func (v *ChunkView) Columns(k int) ([]Column, int, error) { return nil, 0, nil }

// NumSealed is chunk-shape metadata on the captured view.
func (v *ChunkView) NumSealed() int { return 0 }

// Chunk is one sealed, encoded chunk.
type Chunk struct{}

// Columns decodes the raw frames, bypassing the cache; flagged outside
// the table package.
func (c *Chunk) Columns() ([]Column, error) { return nil, nil }
