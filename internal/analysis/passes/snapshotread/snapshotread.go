// Package snapshotread enforces consistent cross-column reads: code that
// reads more than one piece of a *table.Table's data must do so under a
// single Snapshot() or View() callback, not through repeated accessor calls.
//
// Each accessor (Column, ColumnAt, FloatColumn, IntColumn, Row, NumRows)
// takes and releases the table's read lock independently, so two calls can
// observe different append states — the cross-column race the live-capture
// PR fixed in fitSpec by introducing table.Snapshot: a fit that read column
// A at version v and column B at version v+1 produced rows that never
// coexisted. One accessor call is fine; the second one on the same table in
// the same function is where the torn view becomes possible.
package snapshotread

import (
	"go/ast"

	"datalaws/internal/analysis"
)

// Analyzer flags functions reading multiple columns of one table without an
// intervening Snapshot/View.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotread",
	Doc: `cross-column table reads must happen under one Snapshot/View

Within one function, a second data-accessor call (Column/ColumnAt/
FloatColumn/IntColumn/Row/Chunks) on the same *table.Table — or a data
accessor combined with NumRows — is flagged: each call locks
independently, so the pair can observe different append states. Rewrite
the function to take table.Snapshot (data + row count + version under one
lock), table.View, or a single table.Chunks capture read through the
returned ChunkView. Decoding a sealed chunk through Chunk.Columns() is
also flagged outside the table package: it bypasses the shared decode
cache (and its memory budget); go through ChunkView.Columns instead.
The table package itself implements the accessors and is exempt.`,
	Run: run,
}

// dataAccessors read column data; pairing any two is a potential torn view.
// Chunks belongs here even though each call is internally consistent: two
// captures — or a capture next to a direct accessor — can still straddle an
// append, which is exactly the torn pair the single-capture rewrite avoids.
var dataAccessors = map[string]bool{
	"Column": true, "ColumnAt": true, "FloatColumn": true,
	"IntColumn": true, "Row": true, "Chunks": true,
}

// metaAccessors read row-count metadata; torn only when combined with a
// data accessor (e.g. NumRows sized against a column read separately).
var metaAccessors = map[string]bool{
	"NumRows": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Path() == "datalaws/internal/table" {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// access is one accessor call on a table-valued receiver expression.
type access struct {
	call *ast.CallExpr
	name string
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Accessor calls grouped by receiver expression spelling. Keying on the
	// source text of the receiver ("t", "s.Table", "pt.Part(i)") is the
	// pragmatic identity: two identical spellings in one function denote the
	// same table in every realistic case, and differing spellings of one
	// table merely under-approximate.
	byRecv := map[string][]access{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if !dataAccessors[name] && !metaAccessors[name] && name != "Columns" {
			return true
		}
		rpkg, rtype, _, ok := analysis.NamedReceiver(pass.TypesInfo, call)
		if !ok || rpkg != "datalaws/internal/table" {
			return true
		}
		// Chunk.Columns decodes the sealed frames directly, skipping the
		// shared cache and its byte budget: every call re-pays the decode and
		// the result is unaccounted memory. Always wrong outside the table
		// package, regardless of pairing.
		if rtype == "Chunk" && name == "Columns" {
			pass.Reportf(call.Pos(),
				"Columns() on *table.Chunk decodes outside the shared chunk cache; read through a ChunkView (table.Chunks) so decodes are cached and budgeted")
			return true
		}
		if rtype != "Table" {
			return true
		}
		key := exprText(sel.X)
		byRecv[key] = append(byRecv[key], access{call: call, name: name})
		return true
	})
	for recv, accs := range byRecv {
		data := 0
		meta := 0
		for _, a := range accs {
			if dataAccessors[a.name] {
				data++
			} else {
				meta++
			}
		}
		if data < 1 || data+meta < 2 {
			continue
		}
		// Report once per table, at the second access: the first lone read
		// was consistent; the second is where the view can tear.
		a := accs[1]
		pass.Reportf(a.call.Pos(),
			"%s() is the second separately-locked read of table %q in %s (%d data/%d metadata reads); combine them under one %s.Snapshot/View to avoid a torn cross-column view",
			a.name, recv, fd.Name.Name, data, meta, recv)
	}
}

// exprText renders a receiver expression back to source-ish text for keying
// and messages.
func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprText(x.Fun) + "(…)"
	case *ast.ParenExpr:
		return "(" + exprText(x.X) + ")"
	case *ast.IndexExpr:
		return exprText(x.X) + "[…]"
	case *ast.StarExpr:
		return "*" + exprText(x.X)
	default:
		return "table"
	}
}
