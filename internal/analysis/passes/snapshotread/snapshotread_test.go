package snapshotread_test

import (
	"testing"

	"datalaws/internal/analysis/checktest"
	"datalaws/internal/analysis/passes/snapshotread"
)

func TestReads(t *testing.T) {
	checktest.Run(t, "testdata", snapshotread.Analyzer, "reads")
}
