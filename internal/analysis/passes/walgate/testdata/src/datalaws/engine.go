// Fixture for walgate's strict mode: inside the engine package every gated
// call must sit in the mutate closure, a replay function, or carry a
// documented suppression.
package datalaws

import (
	"datalaws/internal/modelstore"
	"datalaws/internal/table"
)

// Record stands in for a WAL record.
type Record struct{ Type int }

// Result stands in for a statement result.
type Result struct{}

// Engine mirrors the real engine's owned references.
type Engine struct {
	Catalog *table.Catalog
	Models  *modelstore.Store
}

// mutate reproduces the real log-then-apply gate's shape; walgate accepts
// gated calls lexically inside the closure passed to it.
func (e *Engine) mutate(rec *Record, apply func() (*Result, error)) (*Result, error) {
	return apply()
}

func (e *Engine) execDropBad(name string) error {
	return e.Catalog.Drop(name) // want `Catalog\.Drop mutates engine state outside the WAL gate`
}

func (e *Engine) appendBad(t *table.Table, rows [][]interface{}) (int, error) {
	return t.AppendRows(rows) // want `Table\.AppendRows mutates engine state outside the WAL gate`
}

func (e *Engine) captureBad(t *table.Table, spec modelstore.Spec) error {
	_, err := e.Models.Capture(t, spec) // want `Store\.Capture mutates engine state outside the WAL gate`
	return err
}

// The live path: log first, then apply inside the mutate closure.
func (e *Engine) execDropGated(name string) (*Result, error) {
	return e.mutate(&Record{}, func() (*Result, error) {
		if err := e.Catalog.Drop(name); err != nil {
			return nil, err
		}
		return &Result{}, nil
	})
}

// applyDrop is a replay function: it re-executes an already-logged record.
func (e *Engine) applyDrop(name string) error {
	return e.Catalog.Drop(name)
}

// applyAppend routes through a helper that is itself replay-named.
func (e *Engine) applyAppend(t *table.Table, rows [][]interface{}) (int, error) {
	return t.AppendRows(rows)
}

// loadFlat is the snapshot-recovery path that runs before the log attaches.
func (e *Engine) loadFlat(t *table.Table) error {
	return e.Catalog.Add(t)
}

// RegisterTable mirrors the real engine's documented pre-WAL escape hatch.
//
//lint:ignore walgate fixture mirrors RegisterTable, the documented pre-WAL escape hatch
func (e *Engine) RegisterTable(t *table.Table) error { return e.Catalog.Add(t) }

// Reads are never gated.
func (e *Engine) lookup(name string) (*table.Table, error) {
	return e.Catalog.Lookup(name)
}
