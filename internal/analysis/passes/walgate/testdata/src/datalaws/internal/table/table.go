// Stub of the engine's table package: walgate matches gated methods by
// (import path, type, method), so these empty bodies exercise the same
// resolution as the real catalog.
package table

// Table is the columnar table stub.
type Table struct{ Name string }

// AppendRow is gated.
func (t *Table) AppendRow(vals []interface{}) error { return nil }

// AppendRows is gated.
func (t *Table) AppendRows(rows [][]interface{}) (int, error) { return 0, nil }

// Catalog is the table registry stub.
type Catalog struct{}

// Create is gated.
func (c *Catalog) Create(name string) (*Table, error) { return nil, nil }

// Add is gated.
func (c *Catalog) Add(t *Table) error { return nil }

// Drop is gated.
func (c *Catalog) Drop(name string) error { return nil }

// Lookup is not gated: reads carry no durability contract.
func (c *Catalog) Lookup(name string) (*Table, error) { return nil, nil }
