// Fixture for walgate's strict mode in internal/refit, which holds
// engine-owned store references.
package refit

import "datalaws/internal/modelstore"

// Refitter mirrors the background maintenance loop.
type Refitter struct{ store *modelstore.Store }

func (r *Refitter) refitBad(name string, t interface{}) {
	_, _ = r.store.Refit(name, t) // want `Store\.Refit mutates engine state outside the WAL gate`
}

func (r *Refitter) refitSuppressed(name string, t interface{}) {
	//lint:ignore walgate fixture mirrors the real refitter: background refits are deliberately unlogged
	_, _ = r.store.Refit(name, t)
}
