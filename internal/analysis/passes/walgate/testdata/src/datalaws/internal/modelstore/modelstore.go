// Stub of the engine's model store: walgate matches gated methods by
// (import path, type, method).
package modelstore

// Spec describes a model capture.
type Spec struct{ Name string }

// CapturedModel is a fitted model stub.
type CapturedModel struct{ Version int }

// Store is the captured-model registry stub.
type Store struct{}

// Capture is gated.
func (s *Store) Capture(t interface{}, spec Spec) (*CapturedModel, error) { return nil, nil }

// Refit is gated.
func (s *Store) Refit(name string, t interface{}) (*CapturedModel, error) { return nil, nil }

// RefitCold is gated.
func (s *Store) RefitCold(name string, t interface{}) (*CapturedModel, error) { return nil, nil }

// Drop is gated.
func (s *Store) Drop(name string) {}

// Get is not gated: reads carry no durability contract.
func (s *Store) Get(name string) (*CapturedModel, bool) { return nil, false }
