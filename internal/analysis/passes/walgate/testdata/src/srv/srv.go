// Fixture for walgate outside the engine: only calls that reach a gated
// primitive through a live *datalaws.Engine bypass a log; free-standing
// tables and stores carry no durability contract.
package srv

import (
	"datalaws"
	"datalaws/internal/modelstore"
	"datalaws/internal/table"
)

func dropViaEngine(e *datalaws.Engine) {
	_ = e.Catalog.Drop("t") // want `Catalog\.Drop reached through \*datalaws\.Engine bypasses its WAL gate`
}

func captureViaEngine(e *datalaws.Engine, t *table.Table) {
	_, _ = e.Models.Capture(t, modelstore.Spec{}) // want `Store\.Capture reached through \*datalaws\.Engine bypasses its WAL gate`
}

// The receiver chain is followed through indexing and calls.
func dropViaSlice(engines []*datalaws.Engine) {
	_ = engines[0].Catalog.Drop("t") // want `Catalog\.Drop reached through \*datalaws\.Engine bypasses its WAL gate`
}

// A free-standing table was never attached to an engine: nothing to log.
func fillDetached(t *table.Table) {
	_ = t.AppendRow(nil)
}

// Likewise a free-standing store.
func captureDetached(s *modelstore.Store, t *table.Table) {
	_, _ = s.Capture(t, modelstore.Spec{})
}

// A suppressed engine-rooted call documents why no log applies.
func dropSuppressed(e *datalaws.Engine) {
	//lint:ignore walgate fixture engine has no WAL attached; mirrors the repro harnesses
	_ = e.Catalog.Drop("t")
}
