package walgate_test

import (
	"testing"

	"datalaws/internal/analysis/checktest"
	"datalaws/internal/analysis/passes/walgate"
)

// TestEngine covers strict mode: the engine package itself, including the
// mutate-closure and apply*/loadFlat acceptance paths.
func TestEngine(t *testing.T) {
	checktest.Run(t, "testdata", walgate.Analyzer, "datalaws")
}

// TestRefit covers the other strict package, internal/refit.
func TestRefit(t *testing.T) {
	checktest.Run(t, "testdata", walgate.Analyzer, "datalaws/internal/refit")
}

// TestClient covers engine-rooted detection outside the strict packages.
func TestClient(t *testing.T) {
	checktest.Run(t, "testdata", walgate.Analyzer, "srv")
}
