// Package walgate enforces the engine's durability gate: every call that
// mutates catalog, table or model-store state must pass through the WAL
// log-then-apply path, so no code path — today's REPL or a future network
// server — can change state the log never heard about.
//
// The invariant was established by the WAL PR (wal_engine.go): mutations run
// as Engine.mutate(record, apply) — the record is group-committed to the log
// first, then the apply* function (shared with recovery's replay dispatch)
// changes memory. A gated primitive called anywhere else is exactly the bug
// class recovery cannot repair: an effect with no record.
package walgate

import (
	"go/ast"
	"go/types"

	"datalaws/internal/analysis"
)

// Analyzer flags calls to state-mutating engine primitives made outside the
// WAL gate.
var Analyzer = &analysis.Analyzer{
	Name: "walgate",
	Doc: `mutations must go through the Engine.mutate log-then-apply gate

Gated primitives are the catalog mutators (Create/CreatePartitioned/Add/
AddPartitioned/Drop), table appends (AppendRow/AppendRows) and model-store
mutators (Capture/CapturePartitioned/Refit/RefitCold/Drop/DropFamily/
DropForTable/Load).

In the engine package (and internal/refit, which holds engine-owned
references), any gated call is a diagnostic unless it occurs (a) inside an
apply* function or loadFlat — the replay/recovery paths that re-execute
already-logged records, or (b) lexically inside a function literal passed to
Engine.mutate — the live log-then-apply closure. Elsewhere, a gated call is
flagged when its receiver is reached through an *Engine (e.Catalog.Drop
from a client package bypasses that engine's log); free-standing tables and
stores never attached to an engine carry no durability contract and are not
flagged. Intentional exceptions carry a //lint:ignore walgate directive with
a documented reason.`,
	Run: run,
}

// gated maps (package, type) to the method set that mutates durable state.
var gated = map[[2]string]map[string]bool{
	{"datalaws/internal/table", "Table"}: {
		"AppendRow": true, "AppendRows": true,
	},
	{"datalaws/internal/table", "Catalog"}: {
		"Create": true, "CreatePartitioned": true, "Add": true,
		"AddPartitioned": true, "Drop": true,
	},
	{"datalaws/internal/modelstore", "Store"}: {
		"Capture": true, "CapturePartitioned": true, "Refit": true,
		"RefitCold": true, "Drop": true, "DropFamily": true,
		"DropForTable": true, "Load": true,
	},
}

// strictPkgs hold engine-owned references to the primitives: every gated
// call there is inside the blast radius of the durability contract.
var strictPkgs = map[string]bool{
	"datalaws":                true,
	"datalaws/internal/refit": true,
}

// replayFuncs are the named recovery paths allowed to call primitives
// directly: they re-execute records already durable in the log (apply*) or
// rebuild state from a snapshot before the log attaches (loadFlat).
func isReplayFunc(name string) bool {
	return name == "loadFlat" || (len(name) >= 5 && name[:5] == "apply")
}

func run(pass *analysis.Pass) (interface{}, error) {
	pkgPath := pass.Pkg.Path()
	// The defining packages implement the primitives; their internal calls
	// are below the gate by construction.
	if pkgPath == "datalaws/internal/table" || pkgPath == "datalaws/internal/modelstore" {
		return nil, nil
	}
	strict := strictPkgs[pkgPath]
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		rpkg, rtype, method, ok := analysis.NamedReceiver(pass.TypesInfo, call)
		if !ok {
			return
		}
		methods, isGated := gated[[2]string{rpkg, rtype}]
		if !isGated || !methods[method] {
			return
		}
		if strict {
			if isReplayFunc(analysis.EnclosingFuncName(stack)) {
				return
			}
			if insideMutateLiteral(pass.TypesInfo, stack) {
				return
			}
			pass.Reportf(call.Pos(),
				"%s.%s mutates engine state outside the WAL gate; route it through Engine.mutate or an apply* replay function",
				rtype, method)
			return
		}
		// Outside the engine: only calls reaching through a live *Engine
		// bypass a log.
		if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel && rootsAtEngine(pass.TypesInfo, sel.X) {
			pass.Reportf(call.Pos(),
				"%s.%s reached through *datalaws.Engine bypasses its WAL gate; use the engine's logged API (Append/Exec/SaveDir) instead",
				rtype, method)
		}
	})
	return nil, nil
}

// insideMutateLiteral reports whether the node whose ancestor stack is given
// sits inside a function literal passed as an argument to Engine.mutate —
// the live log-then-apply closure.
func insideMutateLiteral(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		lit, isLit := stack[i].(*ast.FuncLit)
		if !isLit || i == 0 {
			continue
		}
		call, isCall := stack[i-1].(*ast.CallExpr)
		if !isCall {
			continue
		}
		isArg := false
		for _, arg := range call.Args {
			if arg == lit {
				isArg = true
				break
			}
		}
		if !isArg {
			continue
		}
		if pkg, typ, method, ok := analysis.NamedReceiver(info, call); ok &&
			pkg == "datalaws" && typ == "Engine" && method == "mutate" {
			return true
		}
	}
	return false
}

// rootsAtEngine reports whether the receiver expression reaches its value
// through a datalaws.Engine (e.Catalog, eng.Models.…, engines[i].Catalog).
func rootsAtEngine(info *types.Info, e ast.Expr) bool {
	for e != nil {
		if tv, ok := info.Types[e]; ok && analysis.IsNamedType(tv.Type, "datalaws", "Engine") {
			return true
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
	return false
}
