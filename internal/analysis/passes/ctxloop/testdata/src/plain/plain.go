// Fixture proving ctxloop is scoped to the executor packages: identical
// loop shapes elsewhere are not flagged.
package plain

type source struct{}

func (s *source) NextMorsel() (int, bool) { return 0, false }

func drain(s *source) {
	for {
		_, ok := s.NextMorsel()
		if !ok {
			return
		}
	}
}
