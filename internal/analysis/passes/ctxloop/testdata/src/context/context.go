// Stub of the stdlib context package: ctxloop recognizes ctx.Err()/ctx.Done()
// by the named type context.Context, which this stub provides without
// needing stdlib export data.
package context

// Context is the cancellation carrier stub.
type Context interface {
	Err() error
	Done() <-chan struct{}
}
