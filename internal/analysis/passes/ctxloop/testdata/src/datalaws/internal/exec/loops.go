// Fixture for ctxloop: pull loops in the executor must observe cancellation
// either directly (CheckInterrupt, ctx.Err, ctx.Done) or by binding every
// pull's error result.
package exec

import "context"

type batch struct{}

type operator struct{}

func (o *operator) NextBatch() (*batch, error) { return nil, nil }

type rowSource struct{}

func (r *rowSource) Next() ([]interface{}, error) { return nil, nil }

type morselSource struct{}

func (m *morselSource) NextMorsel() (int, bool) { return 0, false }

// Interruptible mirrors the real cancellation hook.
type Interruptible struct{}

// CheckInterrupt mirrors the real hook's shape.
func (i *Interruptible) CheckInterrupt() error { return nil }

// Morsel claims return no error, so a bare claim loop cannot stop.
func claimUnchecked(s *morselSource) {
	for { // want `loop claims morsels via NextMorsel without a cancellation check`
		_, ok := s.NextMorsel()
		if !ok {
			return
		}
	}
}

// ctx.Err in the body bounds the loop.
func claimCtx(ctx context.Context, s *morselSource) {
	for {
		if ctx.Err() != nil {
			return
		}
		_, ok := s.NextMorsel()
		if !ok {
			return
		}
	}
}

// The Interruptible hook bounds the loop too.
func claimInterruptible(in *Interruptible, s *morselSource) {
	for {
		if err := in.CheckInterrupt(); err != nil {
			return
		}
		_, ok := s.NextMorsel()
		if !ok {
			return
		}
	}
}

// Binding the pull's error propagates a canceled leaf.
func drainBound(o *operator) error {
	for {
		b, err := o.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
	}
}

// Discarding the error severs the only cancellation path.
func drainDiscarded(o *operator) {
	for { // want `loop pulls via NextBatch without observing cancellation`
		b, _ := o.NextBatch()
		if b == nil {
			return
		}
	}
}

// Row pulls follow the same rule.
func drainRowsDiscarded(r *rowSource) {
	for { // want `loop pulls via Next without observing cancellation`
		row, _ := r.Next()
		if row == nil {
			return
		}
	}
}

// A range loop that pulls inside its body is still a pull loop.
func drainRange(os []*operator) {
	for range os { // want `loop pulls via NextBatch without observing cancellation`
		b, _ := os[0].NextBatch()
		_ = b
	}
}

// A documented suppression is honored.
func claimSuppressed(s *morselSource) {
	//lint:ignore ctxloop fixture source is bounded and local; loop terminates without cancellation
	for {
		_, ok := s.NextMorsel()
		if !ok {
			return
		}
	}
}
