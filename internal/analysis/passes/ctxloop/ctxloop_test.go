package ctxloop_test

import (
	"testing"

	"datalaws/internal/analysis/checktest"
	"datalaws/internal/analysis/passes/ctxloop"
)

func TestExecLoops(t *testing.T) {
	checktest.Run(t, "testdata", ctxloop.Analyzer, "datalaws/internal/exec")
}

// TestOutOfScope proves the analyzer only fires inside the executor
// packages.
func TestOutOfScope(t *testing.T) {
	checktest.Run(t, "testdata", ctxloop.Analyzer, "plain")
}
