// Package ctxloop enforces cancellation in the executor's pull loops: a
// loop in internal/exec or internal/aqp that pulls rows/batches or claims
// morsels must either observe cancellation directly (Interruptible check,
// ctx.Err, ctx.Done) or propagate it by checking the error every pull
// returns.
//
// The invariant comes from the session PR's cancellation design: leaf
// operators (scans, model scans, morsel claimers) embed exec.Interruptible
// and check the statement context; interior operators inherit cancellation
// because a canceled leaf surfaces an error that each drain loop must
// propagate. A pull loop that neither checks the context nor looks at the
// pulled error is a pipeline that outlives its canceled statement — the
// exact bug class Ctrl-C in the REPL and Rows.Close exist to prevent.
package ctxloop

import (
	"go/ast"
	"go/types"

	"datalaws/internal/analysis"
)

// Analyzer flags executor loops that pull data without observing
// cancellation.
var Analyzer = &analysis.Analyzer{
	Name: "ctxloop",
	Doc: `executor pull loops must observe cancellation

Applies to datalaws/internal/exec and datalaws/internal/aqp. A for/range
loop whose body pulls data — calls a 2-result (value, error) method named
Next/NextBatch, or claims work via NextMorsel — must contain either a
cancellation check (CheckInterrupt/CheckInterruptNow, ctx.Err(), ctx.Done())
or bind and thereby propagate every pull's error result (non-blank). Morsel
claims return no error, so claim loops always need the explicit check.`,
	Run: run,
}

// scoped packages: the execution engine layers whose loops drive query
// pipelines.
var scoped = map[string]bool{
	"datalaws/internal/exec": true,
	"datalaws/internal/aqp":  true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !scoped[pass.Pkg.Path()] {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var cond ast.Node
			switch l := n.(type) {
			case *ast.ForStmt:
				body, cond = l.Body, l.Cond
			case *ast.RangeStmt:
				body = l.Body
			default:
				return true
			}
			checkLoop(pass, n, cond, body)
			return true
		})
	}
	return nil, nil
}

func checkLoop(pass *analysis.Pass, loop ast.Node, cond ast.Node, body *ast.BlockStmt) {
	var pulls []*ast.CallExpr // Next/NextBatch calls, error-propagating
	var claims []*ast.CallExpr
	checked := false

	inspect := func(n ast.Node) bool {
		// Nested loops run their own checkLoop; their bodies still count
		// toward this loop's pulls and checks (a check anywhere under the
		// outer body bounds the outer iteration too, conservatively).
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isCancellationCheck(pass.TypesInfo, call) {
			checked = true
			return true
		}
		switch kind := pullKind(pass.TypesInfo, call); kind {
		case pullErr:
			pulls = append(pulls, call)
		case pullClaim:
			claims = append(claims, call)
		}
		return true
	}
	if cond != nil {
		ast.Inspect(cond, inspect)
	}
	ast.Inspect(body, inspect)

	if checked || (len(pulls) == 0 && len(claims) == 0) {
		return
	}
	if len(claims) > 0 {
		pass.Reportf(loop.Pos(),
			"loop claims morsels via %s without a cancellation check; NextMorsel returns no error, so add a CheckInterrupt/ctx.Err check in the loop body",
			callName(claims[0]))
		return
	}
	// Error-returning pulls propagate a canceled leaf's error — but only if
	// the loop actually binds the error.
	for _, p := range pulls {
		if !errBound(pass.TypesInfo, body, cond, p) {
			pass.Reportf(loop.Pos(),
				"loop pulls via %s without observing cancellation: no CheckInterrupt/ctx.Err check and the pull's error result is not bound, so a canceled statement cannot stop this loop",
				callName(p))
			return
		}
	}
}

type pullClass int

const (
	pullNone  pullClass = iota
	pullErr             // (value, error) pull: Next/NextBatch
	pullClaim           // NextMorsel: no error result
)

// pullKind classifies a call as a data pull. Matching is by method name and
// result shape rather than a closed interface list: any operator-shaped
// Next/NextBatch in the executor packages is a pull, including ones added
// after this analyzer.
func pullKind(info *types.Info, call *ast.CallExpr) pullClass {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return pullNone
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return pullNone
	}
	sig, ok := s.Obj().Type().(*types.Signature)
	if !ok {
		return pullNone
	}
	switch sel.Sel.Name {
	case "Next", "NextBatch":
		res := sig.Results()
		if res.Len() == 2 && isErrorType(res.At(1).Type()) {
			return pullErr
		}
	case "NextMorsel":
		return pullClaim
	}
	return pullNone
}

// isCancellationCheck matches the accepted ways a loop observes its
// context: the Interruptible hooks, ctx.Err(), and ctx.Done().
func isCancellationCheck(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "CheckInterrupt", "CheckInterruptNow":
		if pkg, _, _, ok := analysis.NamedReceiver(info, call); ok {
			return pkg == "datalaws/internal/exec" || pkg == "datalaws/internal/aqp"
		}
		return false
	case "Err", "Done":
		if s, ok := info.Selections[sel]; ok {
			return analysis.IsNamedType(s.Recv(), "context", "Context")
		}
		if tv, ok := info.Types[sel.X]; ok {
			return analysis.IsNamedType(tv.Type, "context", "Context")
		}
	}
	return false
}

// errBound reports whether the pull call's error result is bound to a
// non-blank variable, i.e. the loop can see a canceled leaf's error. The
// call must be the sole RHS of a 2-value assignment (including the init of
// an if/for statement); any other use discards the error.
func errBound(info *types.Info, body *ast.BlockStmt, cond ast.Node, pull *ast.CallExpr) bool {
	bound := false
	check := func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(asg.Rhs) != 1 || asg.Rhs[0] != pull || len(asg.Lhs) != 2 {
			return true
		}
		if id, ok := asg.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
			bound = true
		}
		return true
	}
	ast.Inspect(body, check)
	if cond != nil {
		ast.Inspect(cond, check)
	}
	return bound
}

func isErrorType(t types.Type) bool {
	return t.String() == "error"
}

func callName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "call"
}
