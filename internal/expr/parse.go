package expr

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses src into an expression tree.
//
// Grammar (precedence from lowest to highest):
//
//	or     := and (OR and)*
//	and    := not (AND not)*
//	not    := NOT not | cmp
//	cmp    := add ((= | <> | < | <= | > | >=) add)? | add IS [NOT] NULL
//	add    := mul ((+|-) mul)*
//	mul    := unary ((*|/|%) unary)*
//	unary  := - unary | pow
//	pow    := primary (^ unary)?          (right associative)
//	primary:= number | string | ident | ident(args) | TRUE|FALSE|NULL | (or)
func Parse(src string) (Expr, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("expr: unexpected trailing input %q at offset %d", p.peek().text, p.peek().pos)
	}
	return e, nil
}

// MustParse is Parse that panics on error; for tests and package literals.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) advance() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) expectOp(text string) error {
	t := p.peek()
	if t.kind != tokOp || t.text != text {
		return fmt.Errorf("expr: expected %q at offset %d, found %q", text, t.pos, t.text)
	}
	p.advance()
	return nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKeyw && p.peek().text == "OR" {
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKeyw && p.peek().text == "AND" {
		p.advance()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.peek().kind == tokKeyw && p.peek().text == "NOT" {
		p.advance()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: OpNot, X: x}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]Op{"=": OpEq, "<>": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokOp {
		if op, ok := cmpOps[t.text]; ok {
			p.advance()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	if t.kind == tokKeyw && t.text == "IS" {
		p.advance()
		neg := false
		if p.peek().kind == tokKeyw && p.peek().text == "NOT" {
			neg = true
			p.advance()
		}
		if p.peek().kind != tokKeyw || p.peek().text != "NULL" {
			return nil, fmt.Errorf("expr: expected NULL after IS at offset %d", p.peek().pos)
		}
		p.advance()
		return &IsNullExpr{X: l, Negate: neg}, nil
	}
	if t.kind == tokKeyw && t.text == "BETWEEN" {
		p.advance()
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokKeyw || p.peek().text != "AND" {
			return nil, fmt.Errorf("expr: expected AND in BETWEEN at offset %d", p.peek().pos)
		}
		p.advance()
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &Binary{
			Op: OpAnd,
			L:  &Binary{Op: OpGe, L: l, R: lo},
			R:  &Binary{Op: OpLe, L: l, R: hi},
		}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "+" && t.text != "-") {
			return l, nil
		}
		p.advance()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		op := OpAdd
		if t.text == "-" {
			op = OpSub
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "*" && t.text != "/" && t.text != "%") {
			return l, nil
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		var op Op
		switch t.text {
		case "*":
			op = OpMul
		case "/":
			op = OpDiv
		default:
			op = OpMod
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.kind == tokOp && t.text == "-" {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: OpNeg, X: x}, nil
	}
	if t.kind == tokOp && t.text == "+" {
		p.advance()
		return p.parseUnary()
	}
	return p.parsePow()
}

func (p *parser) parsePow() (Expr, error) {
	base, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokOp && t.text == "^" {
		p.advance()
		exp, err := p.parseUnary() // right associative, allows -x exponents
		if err != nil {
			return nil, err
		}
		return &Binary{Op: OpPow, L: base, R: exp}, nil
	}
	return base, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		if !strings.ContainsAny(t.text, ".eE") {
			if i, err := strconv.ParseInt(t.text, 10, 64); err == nil {
				return &Lit{Val: Int(i)}, nil
			}
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("expr: bad number %q at offset %d", t.text, t.pos)
		}
		return &Lit{Val: Float(f)}, nil
	case tokString:
		p.advance()
		return &Lit{Val: Str(t.text)}, nil
	case tokKeyw:
		switch t.text {
		case "TRUE":
			p.advance()
			return &Lit{Val: Bool(true)}, nil
		case "FALSE":
			p.advance()
			return &Lit{Val: Bool(false)}, nil
		case "NULL":
			p.advance()
			return &Lit{Val: Null()}, nil
		}
		return nil, fmt.Errorf("expr: unexpected keyword %q at offset %d", t.text, t.pos)
	case tokIdent:
		p.advance()
		if n := p.peek(); n.kind == tokOp && n.text == "(" {
			p.advance()
			var args []Expr
			if !(p.peek().kind == tokOp && p.peek().text == ")") {
				for {
					a, err := p.parseOr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.peek().kind == tokOp && p.peek().text == "," {
						p.advance()
						continue
					}
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &Call{Name: strings.ToLower(t.text), Args: args}, nil
		}
		return &Ident{Name: t.text}, nil
	case tokOp:
		if t.text == "(" {
			p.advance()
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("expr: unexpected token %q at offset %d", t.text, t.pos)
}
