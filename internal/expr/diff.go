package expr

import (
	"fmt"
	"math"
)

// Diff returns the symbolic partial derivative of e with respect to the
// identifier v. It supports the numeric fragment of the language
// (+ − × ÷ ^, pow, exp, log, sqrt, sin, cos, tan, abs) and returns an error
// for non-differentiable constructs. The result is simplified by constant
// folding so the fitting engine can evaluate analytic Jacobians cheaply.
func Diff(e Expr, v string) (Expr, error) {
	d, err := diff(e, v)
	if err != nil {
		return nil, err
	}
	return Simplify(d), nil
}

func lit(f float64) Expr { return &Lit{Val: Float(f)} }

func diff(e Expr, v string) (Expr, error) {
	switch n := e.(type) {
	case *Lit:
		return lit(0), nil
	case *Ident:
		if n.Name == v {
			return lit(1), nil
		}
		return lit(0), nil
	case *Unary:
		if n.Op != OpNeg {
			return nil, fmt.Errorf("expr: cannot differentiate %s", n.Op)
		}
		dx, err := diff(n.X, v)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: OpNeg, X: dx}, nil
	case *Binary:
		return diffBinary(n, v)
	case *Call:
		return diffCall(n, v)
	}
	return nil, fmt.Errorf("expr: cannot differentiate %T", e)
}

func diffBinary(n *Binary, v string) (Expr, error) {
	dl, err := diff(n.L, v)
	if err != nil {
		return nil, err
	}
	dr, err := diff(n.R, v)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case OpAdd:
		return &Binary{Op: OpAdd, L: dl, R: dr}, nil
	case OpSub:
		return &Binary{Op: OpSub, L: dl, R: dr}, nil
	case OpMul:
		// (fg)' = f'g + fg'
		return &Binary{Op: OpAdd,
			L: &Binary{Op: OpMul, L: dl, R: n.R},
			R: &Binary{Op: OpMul, L: n.L, R: dr},
		}, nil
	case OpDiv:
		// (f/g)' = (f'g − fg') / g²
		return &Binary{Op: OpDiv,
			L: &Binary{Op: OpSub,
				L: &Binary{Op: OpMul, L: dl, R: n.R},
				R: &Binary{Op: OpMul, L: n.L, R: dr},
			},
			R: &Binary{Op: OpMul, L: n.R, R: n.R},
		}, nil
	case OpPow:
		return diffPow(n.L, n.R, dl, dr)
	}
	return nil, fmt.Errorf("expr: cannot differentiate %s", n.Op)
}

// diffPow handles f^g. When g is constant: g·f^(g−1)·f'. When f is constant:
// f^g·ln(f)·g'. General case uses f^g·(g'·ln f + g·f'/f).
func diffPow(f, g, df, dg Expr) (Expr, error) {
	if isZeroConst(dg) {
		// d/dv f^c = c·f^(c−1)·f'
		return &Binary{Op: OpMul,
			L: &Binary{Op: OpMul,
				L: g,
				R: &Binary{Op: OpPow, L: f, R: &Binary{Op: OpSub, L: g, R: lit(1)}},
			},
			R: df,
		}, nil
	}
	if isZeroConst(df) {
		// d/dv c^g = c^g·ln(c)·g'
		return &Binary{Op: OpMul,
			L: &Binary{Op: OpMul,
				L: &Binary{Op: OpPow, L: f, R: g},
				R: &Call{Name: "log", Args: []Expr{f}},
			},
			R: dg,
		}, nil
	}
	// General case.
	return &Binary{Op: OpMul,
		L: &Binary{Op: OpPow, L: f, R: g},
		R: &Binary{Op: OpAdd,
			L: &Binary{Op: OpMul, L: dg, R: &Call{Name: "log", Args: []Expr{f}}},
			R: &Binary{Op: OpDiv, L: &Binary{Op: OpMul, L: g, R: df}, R: f},
		},
	}, nil
}

func diffCall(n *Call, v string) (Expr, error) {
	if n.Name == "pow" && len(n.Args) == 2 {
		df, err := diff(n.Args[0], v)
		if err != nil {
			return nil, err
		}
		dg, err := diff(n.Args[1], v)
		if err != nil {
			return nil, err
		}
		return diffPow(n.Args[0], n.Args[1], df, dg)
	}
	if len(n.Args) != 1 {
		return nil, fmt.Errorf("expr: cannot differentiate %s/%d", n.Name, len(n.Args))
	}
	x := n.Args[0]
	dx, err := diff(x, v)
	if err != nil {
		return nil, err
	}
	var outer Expr
	switch n.Name {
	case "exp":
		outer = &Call{Name: "exp", Args: []Expr{x}}
	case "log":
		outer = &Binary{Op: OpDiv, L: lit(1), R: x}
	case "sqrt":
		outer = &Binary{Op: OpDiv, L: lit(0.5), R: &Call{Name: "sqrt", Args: []Expr{x}}}
	case "sin":
		outer = &Call{Name: "cos", Args: []Expr{x}}
	case "cos":
		outer = &Unary{Op: OpNeg, X: &Call{Name: "sin", Args: []Expr{x}}}
	case "tan":
		c := &Call{Name: "cos", Args: []Expr{x}}
		outer = &Binary{Op: OpDiv, L: lit(1), R: &Binary{Op: OpMul, L: c, R: c}}
	case "abs":
		outer = &Call{Name: "sign", Args: []Expr{x}}
	default:
		return nil, fmt.Errorf("expr: cannot differentiate function %q", n.Name)
	}
	return &Binary{Op: OpMul, L: outer, R: dx}, nil
}

func isZeroConst(e Expr) bool {
	l, ok := e.(*Lit)
	if !ok {
		return false
	}
	f, err := l.Val.AsFloat()
	return err == nil && f == 0
}

func constVal(e Expr) (float64, bool) {
	l, ok := e.(*Lit)
	if !ok {
		return 0, false
	}
	f, err := l.Val.AsFloat()
	if err != nil {
		return 0, false
	}
	return f, true
}

// Simplify performs constant folding and identity elimination
// (x+0, x·1, x·0, x^1, …) on the numeric fragment of e.
func Simplify(e Expr) Expr {
	switch n := e.(type) {
	case *Unary:
		x := Simplify(n.X)
		if n.Op == OpNeg {
			if c, ok := constVal(x); ok {
				return lit(-c)
			}
			if inner, ok := x.(*Unary); ok && inner.Op == OpNeg {
				return inner.X
			}
		}
		return &Unary{Op: n.Op, X: x}
	case *Binary:
		l, r := Simplify(n.L), Simplify(n.R)
		lc, lok := constVal(l)
		rc, rok := constVal(r)
		if lok && rok {
			switch n.Op {
			case OpAdd:
				return lit(lc + rc)
			case OpSub:
				return lit(lc - rc)
			case OpMul:
				return lit(lc * rc)
			case OpDiv:
				if rc != 0 {
					return lit(lc / rc)
				}
			case OpPow:
				return lit(math.Pow(lc, rc))
			}
		}
		switch n.Op {
		case OpAdd:
			if lok && lc == 0 {
				return r
			}
			if rok && rc == 0 {
				return l
			}
		case OpSub:
			if rok && rc == 0 {
				return l
			}
			if lok && lc == 0 {
				return &Unary{Op: OpNeg, X: r}
			}
		case OpMul:
			if (lok && lc == 0) || (rok && rc == 0) {
				return lit(0)
			}
			if lok && lc == 1 {
				return r
			}
			if rok && rc == 1 {
				return l
			}
		case OpDiv:
			if lok && lc == 0 {
				return lit(0)
			}
			if rok && rc == 1 {
				return l
			}
		case OpPow:
			if rok && rc == 1 {
				return l
			}
			if rok && rc == 0 {
				return lit(1)
			}
		}
		return &Binary{Op: n.Op, L: l, R: r}
	case *Call:
		args := make([]Expr, len(n.Args))
		allConst := true
		vals := make([]float64, len(n.Args))
		for i, a := range n.Args {
			args[i] = Simplify(a)
			if c, ok := constVal(args[i]); ok {
				vals[i] = c
			} else {
				allConst = false
			}
		}
		if allConst {
			if b, ok := builtins[n.Name]; ok && (b.arity < 0 || b.arity == len(vals)) && len(vals) > 0 {
				return lit(b.fn(vals))
			}
		}
		return &Call{Name: n.Name, Args: args}
	}
	return e
}
