package expr

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokNumber
	tokString
	tokIdent
	tokOp   // punctuation operator: + - * / % ^ ( ) , = <> < <= > >=
	tokKeyw // AND OR NOT TRUE FALSE NULL IS
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// lexer tokenizes expression source. Keywords are case-insensitive;
// identifiers keep their original spelling.
type lexer struct {
	src  string
	pos  int
	toks []token
}

var keywords = map[string]struct{}{
	"AND": {}, "OR": {}, "NOT": {}, "TRUE": {}, "FALSE": {}, "NULL": {}, "IS": {},
	"IN": {}, "BETWEEN": {}, "LIKE": {},
}

// lexAll splits src into tokens or returns a positioned error.
func lexAll(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		return l.lexNumber()
	case c == '\'' || c == '"':
		return l.lexString(c)
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if _, ok := keywords[strings.ToUpper(text)]; ok {
			return token{kind: tokKeyw, text: strings.ToUpper(text), pos: start}, nil
		}
		return token{kind: tokIdent, text: text, pos: start}, nil
	default:
		// Multi-char operators first.
		if l.pos+1 < len(l.src) {
			two := l.src[l.pos : l.pos+2]
			switch two {
			case "<=", ">=", "<>", "!=", "==":
				l.pos += 2
				if two == "!=" {
					two = "<>"
				}
				if two == "==" {
					two = "="
				}
				return token{kind: tokOp, text: two, pos: start}, nil
			}
		}
		switch c {
		case '+', '-', '*', '/', '%', '^', '(', ')', ',', '=', '<', '>':
			l.pos++
			return token{kind: tokOp, text: string(c), pos: start}, nil
		}
		return token{}, fmt.Errorf("expr: unexpected character %q at offset %d", rune(c), start)
	}
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
		}
	}
	return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
}

func (l *lexer) lexString(quote byte) (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			// Doubled quote is an escaped quote (SQL style).
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
				sb.WriteByte(quote)
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tokString, text: sb.String(), pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return token{}, fmt.Errorf("expr: unterminated string literal at offset %d", start)
}

func isSpace(c byte) bool      { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return c == '_' || c == '.' || unicode.IsLetter(rune(c)) || isDigit(c) }
