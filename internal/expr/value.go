// Package expr implements the typed scalar expression language shared by the
// SQL layer (predicates, projections) and the model-capture layer (user
// model formulas such as "p * pow(nu, alpha)"). It provides a lexer, a
// precedence-climbing parser, a typed evaluator with SQL-style NULL
// semantics, a float fast path for fitting loops, and symbolic
// differentiation used for analytic Jacobians and model exploration.
package expr

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates runtime value types.
type Kind uint8

// Value kinds. Null propagates through arithmetic and comparisons as in SQL.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a runtime scalar. The zero Value is NULL.
type Value struct {
	K Kind
	I int64
	F float64
	S string
	B bool
}

// Convenience constructors.

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{K: KindFloat, F: f} }

// Str returns a string value.
func Str(s string) Value { return Value{K: KindString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{K: KindBool, B: b} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// AsFloat coerces numeric values to float64. Booleans map to 0/1.
func (v Value) AsFloat() (float64, error) {
	switch v.K {
	case KindInt:
		return float64(v.I), nil
	case KindFloat:
		return v.F, nil
	case KindBool:
		if v.B {
			return 1, nil
		}
		return 0, nil
	case KindString:
		f, err := strconv.ParseFloat(v.S, 64)
		if err != nil {
			return 0, fmt.Errorf("expr: cannot coerce string %q to number", v.S)
		}
		return f, nil
	case KindNull:
		return 0, fmt.Errorf("expr: NULL has no numeric value")
	}
	return 0, fmt.Errorf("expr: cannot coerce %s to number", v.K)
}

// AsBool coerces to boolean; numbers are true when nonzero.
func (v Value) AsBool() (bool, error) {
	switch v.K {
	case KindBool:
		return v.B, nil
	case KindInt:
		return v.I != 0, nil
	case KindFloat:
		return v.F != 0, nil
	case KindNull:
		return false, nil
	}
	return false, fmt.Errorf("expr: cannot coerce %s to bool", v.K)
}

// String renders the value in SQL-literal style.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.S)
	case KindBool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	}
	return "?"
}

// Compare orders two values. It returns <0, 0, >0 and an error when the
// kinds are incomparable. NULLs compare as errors (callers apply SQL
// three-valued logic before calling Compare).
func Compare(a, b Value) (int, error) {
	if a.IsNull() || b.IsNull() {
		return 0, fmt.Errorf("expr: cannot compare NULL")
	}
	if a.K == KindString || b.K == KindString {
		if a.K != KindString || b.K != KindString {
			return 0, fmt.Errorf("expr: cannot compare %s with %s", a.K, b.K)
		}
		switch {
		case a.S < b.S:
			return -1, nil
		case a.S > b.S:
			return 1, nil
		}
		return 0, nil
	}
	if a.K == KindBool || b.K == KindBool {
		ab, _ := a.AsBool()
		bb, _ := b.AsBool()
		switch {
		case !ab && bb:
			return -1, nil
		case ab && !bb:
			return 1, nil
		}
		return 0, nil
	}
	// Numeric comparison; preserve int precision when both are ints.
	if a.K == KindInt && b.K == KindInt {
		switch {
		case a.I < b.I:
			return -1, nil
		case a.I > b.I:
			return 1, nil
		}
		return 0, nil
	}
	af, err := a.AsFloat()
	if err != nil {
		return 0, err
	}
	bf, err := b.AsFloat()
	if err != nil {
		return 0, err
	}
	switch {
	case af < bf:
		return -1, nil
	case af > bf:
		return 1, nil
	case math.IsNaN(af) && !math.IsNaN(bf):
		return -1, nil
	case !math.IsNaN(af) && math.IsNaN(bf):
		return 1, nil
	}
	return 0, nil
}

// Equal reports whether two values are equal under Compare semantics,
// treating two NULLs as equal (used for grouping keys, not predicates).
func Equal(a, b Value) bool {
	if a.IsNull() && b.IsNull() {
		return true
	}
	if a.IsNull() != b.IsNull() {
		return false
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}
