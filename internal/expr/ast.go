package expr

import (
	"fmt"
	"sort"
	"strings"
)

// Op enumerates unary and binary operators.
type Op uint8

// Operators. Comparison operators yield booleans under SQL three-valued
// logic; arithmetic operators propagate NULL.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpPow
	OpNeg
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpNot
)

func (o Op) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub, OpNeg:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpPow:
		return "^"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpNot:
		return "NOT"
	}
	return "?"
}

// Expr is a parsed expression node.
type Expr interface {
	String() string
}

// Lit is a literal constant.
type Lit struct{ Val Value }

func (l *Lit) String() string { return l.Val.String() }

// Ident references a column or free variable by name.
type Ident struct{ Name string }

func (i *Ident) String() string { return i.Name }

// Unary applies OpNeg or OpNot to X.
type Unary struct {
	Op Op
	X  Expr
}

func (u *Unary) String() string {
	if u.Op == OpNot {
		return fmt.Sprintf("NOT (%s)", u.X)
	}
	return fmt.Sprintf("(-%s)", u.X)
}

// Binary applies a binary operator to L and R.
type Binary struct {
	Op   Op
	L, R Expr
}

func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Param is a positional statement parameter (the SQL `?` placeholder),
// 1-based in source order. Parameters carry no value of their own: a
// statement is bound before execution by substituting each Param with the
// literal supplied for its index (see BindParams), so compiled plans and
// kernels only ever see literals. Evaluating an unbound Param is an error.
type Param struct{ Index int }

func (p *Param) String() string { return fmt.Sprintf("$%d", p.Index) }

// MaxParam returns the highest parameter index referenced by e (0 when the
// expression has no placeholders).
func MaxParam(e Expr) int {
	max := 0
	switch n := e.(type) {
	case *Param:
		return n.Index
	case *Unary:
		return MaxParam(n.X)
	case *Binary:
		if l := MaxParam(n.L); l > max {
			max = l
		}
		if r := MaxParam(n.R); r > max {
			max = r
		}
	case *Call:
		for _, a := range n.Args {
			if m := MaxParam(a); m > max {
				max = m
			}
		}
	case *IsNullExpr:
		return MaxParam(n.X)
	}
	return max
}

// BindParams returns e with every Param replaced by the literal value at
// args[Index-1]. Subtrees without placeholders are returned unchanged (no
// copying), so binding a parameter-free expression is free.
func BindParams(e Expr, args []Value) (Expr, error) {
	if e == nil {
		return nil, nil
	}
	switch n := e.(type) {
	case *Param:
		if n.Index < 1 || n.Index > len(args) {
			return nil, fmt.Errorf("expr: parameter $%d out of range (%d bound)", n.Index, len(args))
		}
		return &Lit{Val: args[n.Index-1]}, nil
	case *Unary:
		x, err := BindParams(n.X, args)
		if err != nil {
			return nil, err
		}
		if x == n.X {
			return n, nil
		}
		return &Unary{Op: n.Op, X: x}, nil
	case *Binary:
		l, err := BindParams(n.L, args)
		if err != nil {
			return nil, err
		}
		r, err := BindParams(n.R, args)
		if err != nil {
			return nil, err
		}
		if l == n.L && r == n.R {
			return n, nil
		}
		return &Binary{Op: n.Op, L: l, R: r}, nil
	case *Call:
		changed := false
		bound := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			b, err := BindParams(a, args)
			if err != nil {
				return nil, err
			}
			bound[i] = b
			if b != a {
				changed = true
			}
		}
		if !changed {
			return n, nil
		}
		return &Call{Name: n.Name, Args: bound}, nil
	case *IsNullExpr:
		x, err := BindParams(n.X, args)
		if err != nil {
			return nil, err
		}
		if x == n.X {
			return n, nil
		}
		return &IsNullExpr{X: x, Negate: n.Negate}, nil
	}
	return e, nil
}

// Call invokes a built-in function.
type Call struct {
	Name string
	Args []Expr
}

func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Name, strings.Join(parts, ", "))
}

// IsNullExpr tests X IS NULL (or IS NOT NULL when Negate is set).
type IsNullExpr struct {
	X      Expr
	Negate bool
}

func (e *IsNullExpr) String() string {
	if e.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", e.X)
	}
	return fmt.Sprintf("(%s IS NULL)", e.X)
}

// Vars returns the sorted set of identifier names referenced by e.
func Vars(e Expr) []string {
	set := map[string]struct{}{}
	collectVars(e, set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func collectVars(e Expr, set map[string]struct{}) {
	switch n := e.(type) {
	case *Ident:
		set[n.Name] = struct{}{}
	case *Unary:
		collectVars(n.X, set)
	case *Binary:
		collectVars(n.L, set)
		collectVars(n.R, set)
	case *Call:
		for _, a := range n.Args {
			collectVars(a, set)
		}
	case *IsNullExpr:
		collectVars(n.X, set)
	}
}

// Substitute returns a copy of e with identifiers replaced per subs. Names
// not present in subs are left untouched.
func Substitute(e Expr, subs map[string]Expr) Expr {
	switch n := e.(type) {
	case *Lit:
		return n
	case *Ident:
		if r, ok := subs[n.Name]; ok {
			return r
		}
		return n
	case *Unary:
		return &Unary{Op: n.Op, X: Substitute(n.X, subs)}
	case *Binary:
		return &Binary{Op: n.Op, L: Substitute(n.L, subs), R: Substitute(n.R, subs)}
	case *Call:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = Substitute(a, subs)
		}
		return &Call{Name: n.Name, Args: args}
	case *IsNullExpr:
		return &IsNullExpr{X: Substitute(n.X, subs), Negate: n.Negate}
	}
	return e
}
