package expr

import (
	"fmt"
	"sort"
	"strings"
)

// Op enumerates unary and binary operators.
type Op uint8

// Operators. Comparison operators yield booleans under SQL three-valued
// logic; arithmetic operators propagate NULL.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpPow
	OpNeg
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpNot
)

func (o Op) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub, OpNeg:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpPow:
		return "^"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpNot:
		return "NOT"
	}
	return "?"
}

// Expr is a parsed expression node.
type Expr interface {
	String() string
}

// Lit is a literal constant.
type Lit struct{ Val Value }

func (l *Lit) String() string { return l.Val.String() }

// Ident references a column or free variable by name.
type Ident struct{ Name string }

func (i *Ident) String() string { return i.Name }

// Unary applies OpNeg or OpNot to X.
type Unary struct {
	Op Op
	X  Expr
}

func (u *Unary) String() string {
	if u.Op == OpNot {
		return fmt.Sprintf("NOT (%s)", u.X)
	}
	return fmt.Sprintf("(-%s)", u.X)
}

// Binary applies a binary operator to L and R.
type Binary struct {
	Op   Op
	L, R Expr
}

func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Call invokes a built-in function.
type Call struct {
	Name string
	Args []Expr
}

func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Name, strings.Join(parts, ", "))
}

// IsNullExpr tests X IS NULL (or IS NOT NULL when Negate is set).
type IsNullExpr struct {
	X      Expr
	Negate bool
}

func (e *IsNullExpr) String() string {
	if e.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", e.X)
	}
	return fmt.Sprintf("(%s IS NULL)", e.X)
}

// Vars returns the sorted set of identifier names referenced by e.
func Vars(e Expr) []string {
	set := map[string]struct{}{}
	collectVars(e, set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func collectVars(e Expr, set map[string]struct{}) {
	switch n := e.(type) {
	case *Ident:
		set[n.Name] = struct{}{}
	case *Unary:
		collectVars(n.X, set)
	case *Binary:
		collectVars(n.L, set)
		collectVars(n.R, set)
	case *Call:
		for _, a := range n.Args {
			collectVars(a, set)
		}
	case *IsNullExpr:
		collectVars(n.X, set)
	}
}

// Substitute returns a copy of e with identifiers replaced per subs. Names
// not present in subs are left untouched.
func Substitute(e Expr, subs map[string]Expr) Expr {
	switch n := e.(type) {
	case *Lit:
		return n
	case *Ident:
		if r, ok := subs[n.Name]; ok {
			return r
		}
		return n
	case *Unary:
		return &Unary{Op: n.Op, X: Substitute(n.X, subs)}
	case *Binary:
		return &Binary{Op: n.Op, L: Substitute(n.L, subs), R: Substitute(n.R, subs)}
	case *Call:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = Substitute(a, subs)
		}
		return &Call{Name: n.Name, Args: args}
	case *IsNullExpr:
		return &IsNullExpr{X: Substitute(n.X, subs), Negate: n.Negate}
	}
	return e
}
