package expr

import (
	"fmt"
	"math"
)

// VecArg binds one identifier slot of a compiled vector kernel: either a
// full column (Vec non-nil) or a broadcast scalar applied to every row.
// Model scans bind input columns as vectors and fitted parameters as either
// scalars or per-row vectors, depending on how they enumerate groups.
type VecArg struct {
	Vec    []float64
	Scalar float64
}

// VecKernel evaluates a compiled numeric expression over rows [0, n) of its
// argument bindings, writing results into out[:n]. Kernels reuse internal
// scratch buffers between calls and are therefore not safe for concurrent
// use; compile one kernel per goroutine.
type VecKernel func(n int, args []VecArg, out []float64)

// CompileVec lowers a numeric expression into a vectorized kernel with every
// identifier pre-resolved to a slot of the args slice. It is the batch
// analogue of Compile: one closure-tree walk per column slice instead of one
// per row, which removes per-row call overhead and the per-call argument
// allocations of the scalar path. Non-numeric constructs (comparisons,
// logic, IS NULL) do not compile; callers fall back to row-at-a-time
// evaluation.
func CompileVec(e Expr, index map[string]int) (VecKernel, error) {
	switch n := e.(type) {
	case *Lit:
		v, err := n.Val.AsFloat()
		if err != nil {
			return nil, err
		}
		return func(n int, _ []VecArg, out []float64) {
			for i := 0; i < n; i++ {
				out[i] = v
			}
		}, nil
	case *Ident:
		idx, ok := index[n.Name]
		if !ok {
			return nil, fmt.Errorf("expr: unbound identifier %q", n.Name)
		}
		return func(n int, args []VecArg, out []float64) {
			a := args[idx]
			if a.Vec != nil {
				copy(out[:n], a.Vec[:n])
				return
			}
			s := a.Scalar
			for i := 0; i < n; i++ {
				out[i] = s
			}
		}, nil
	case *Unary:
		if n.Op != OpNeg {
			return nil, fmt.Errorf("expr: operator %s not numeric", n.Op)
		}
		x, err := CompileVec(n.X, index)
		if err != nil {
			return nil, err
		}
		return func(n int, args []VecArg, out []float64) {
			x(n, args, out)
			for i := 0; i < n; i++ {
				out[i] = -out[i]
			}
		}, nil
	case *Binary:
		return compileVecBinary(n, index)
	case *Call:
		return compileVecCall(n, index)
	}
	return nil, fmt.Errorf("expr: cannot compile %T", e)
}

func compileVecBinary(n *Binary, index map[string]int) (VecKernel, error) {
	l, err := CompileVec(n.L, index)
	if err != nil {
		return nil, err
	}
	r, err := CompileVec(n.R, index)
	if err != nil {
		return nil, err
	}
	var tmp []float64 // right-operand scratch, grown on demand
	combine := func(apply func(n int, out, t []float64)) VecKernel {
		return func(n int, args []VecArg, out []float64) {
			if cap(tmp) < n {
				tmp = make([]float64, n)
			}
			t := tmp[:n]
			l(n, args, out)
			r(n, args, t)
			apply(n, out, t)
		}
	}
	switch n.Op {
	case OpAdd:
		return combine(func(n int, out, t []float64) {
			for i := 0; i < n; i++ {
				out[i] += t[i]
			}
		}), nil
	case OpSub:
		return combine(func(n int, out, t []float64) {
			for i := 0; i < n; i++ {
				out[i] -= t[i]
			}
		}), nil
	case OpMul:
		return combine(func(n int, out, t []float64) {
			for i := 0; i < n; i++ {
				out[i] *= t[i]
			}
		}), nil
	case OpDiv:
		return combine(func(n int, out, t []float64) {
			for i := 0; i < n; i++ {
				out[i] /= t[i]
			}
		}), nil
	case OpMod:
		return combine(func(n int, out, t []float64) {
			for i := 0; i < n; i++ {
				out[i] = math.Mod(out[i], t[i])
			}
		}), nil
	case OpPow:
		return combine(func(n int, out, t []float64) {
			for i := 0; i < n; i++ {
				out[i] = math.Pow(out[i], t[i])
			}
		}), nil
	}
	return nil, fmt.Errorf("expr: operator %s not numeric", n.Op)
}

func compileVecCall(n *Call, index map[string]int) (VecKernel, error) {
	b, ok := builtins[n.Name]
	if !ok {
		return nil, fmt.Errorf("expr: unknown function %q", n.Name)
	}
	if b.arity >= 0 && len(n.Args) != b.arity {
		return nil, fmt.Errorf("expr: %s expects %d args, got %d", n.Name, b.arity, len(n.Args))
	}
	if b.arity < 0 && len(n.Args) == 0 {
		return nil, fmt.Errorf("expr: %s expects at least one arg", n.Name)
	}
	// pow lowers to the Pow operator kernel, avoiding per-row arg slices.
	if n.Name == "pow" && len(n.Args) == 2 {
		return compileVecBinary(&Binary{Op: OpPow, L: n.Args[0], R: n.Args[1]}, index)
	}
	argKs := make([]VecKernel, len(n.Args))
	for i, a := range n.Args {
		k, err := CompileVec(a, index)
		if err != nil {
			return nil, err
		}
		argKs[i] = k
	}
	fn := b.fn
	if len(argKs) == 1 {
		x := argKs[0]
		scratch := make([]float64, 1)
		return func(n int, args []VecArg, out []float64) {
			x(n, args, out)
			for i := 0; i < n; i++ {
				scratch[0] = out[i]
				out[i] = fn(scratch)
			}
		}, nil
	}
	var tmps [][]float64
	scratch := make([]float64, len(argKs))
	return func(n int, args []VecArg, out []float64) {
		if tmps == nil || cap(tmps[0]) < n {
			tmps = make([][]float64, len(argKs))
			for j := range tmps {
				tmps[j] = make([]float64, n)
			}
		}
		for j, k := range argKs {
			k(n, args, tmps[j][:n])
		}
		for i := 0; i < n; i++ {
			for j := range tmps {
				scratch[j] = tmps[j][i]
			}
			out[i] = fn(scratch)
		}
	}, nil
}
