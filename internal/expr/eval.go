package expr

import (
	"fmt"
	"math"
)

// Env resolves identifier names to values during evaluation.
type Env interface {
	Lookup(name string) (Value, bool)
}

// MapEnv is an Env backed by a map.
type MapEnv map[string]Value

// Lookup implements Env.
func (m MapEnv) Lookup(name string) (Value, bool) {
	v, ok := m[name]
	return v, ok
}

// FloatEnv resolves identifiers to float64, the fast path for fitting loops.
type FloatEnv func(name string) (float64, bool)

// Eval evaluates e under env with SQL semantics: NULL propagates through
// arithmetic and comparison; AND/OR use three-valued logic collapsed to
// (value, isNull).
func Eval(e Expr, env Env) (Value, error) {
	switch n := e.(type) {
	case *Lit:
		return n.Val, nil
	case *Ident:
		v, ok := env.Lookup(n.Name)
		if !ok {
			return Value{}, fmt.Errorf("expr: unknown identifier %q", n.Name)
		}
		return v, nil
	case *Unary:
		return evalUnary(n, env)
	case *Binary:
		return evalBinary(n, env)
	case *Call:
		return evalCall(n, env)
	case *IsNullExpr:
		v, err := Eval(n.X, env)
		if err != nil {
			return Value{}, err
		}
		isNull := v.IsNull()
		if n.Negate {
			isNull = !isNull
		}
		return Bool(isNull), nil
	case *Param:
		return Value{}, fmt.Errorf("expr: unbound parameter $%d", n.Index)
	}
	return Value{}, fmt.Errorf("expr: cannot evaluate %T", e)
}

func evalUnary(n *Unary, env Env) (Value, error) {
	v, err := Eval(n.X, env)
	if err != nil {
		return Value{}, err
	}
	return ApplyUnary(n.Op, v)
}

// ApplyUnary applies OpNeg or OpNot to an already-evaluated operand with SQL
// semantics (NULL in, NULL out). It is shared by the tree-walking evaluator
// and the vectorized kernels, so both paths agree on coercions and errors.
func ApplyUnary(op Op, v Value) (Value, error) {
	if v.IsNull() {
		return Null(), nil
	}
	switch op {
	case OpNeg:
		switch v.K {
		case KindInt:
			return Int(-v.I), nil
		default:
			f, err := v.AsFloat()
			if err != nil {
				return Value{}, err
			}
			return Float(-f), nil
		}
	case OpNot:
		b, err := v.AsBool()
		if err != nil {
			return Value{}, err
		}
		return Bool(!b), nil
	}
	return Value{}, fmt.Errorf("expr: bad unary op %s", op)
}

func evalBinary(n *Binary, env Env) (Value, error) {
	// Short-circuit logic with SQL three-valued semantics.
	if n.Op == OpAnd || n.Op == OpOr {
		l, err := Eval(n.L, env)
		if err != nil {
			return Value{}, err
		}
		if !l.IsNull() {
			lb, err := l.AsBool()
			if err != nil {
				return Value{}, err
			}
			if n.Op == OpAnd && !lb {
				return Bool(false), nil
			}
			if n.Op == OpOr && lb {
				return Bool(true), nil
			}
		}
		r, err := Eval(n.R, env)
		if err != nil {
			return Value{}, err
		}
		if r.IsNull() || l.IsNull() {
			// FALSE AND NULL = FALSE handled above; remaining combinations
			// involving NULL are NULL.
			if !r.IsNull() {
				rb, _ := r.AsBool()
				if n.Op == OpAnd && !rb {
					return Bool(false), nil
				}
				if n.Op == OpOr && rb {
					return Bool(true), nil
				}
			}
			return Null(), nil
		}
		rb, err := r.AsBool()
		if err != nil {
			return Value{}, err
		}
		return Bool(rb), nil
	}

	l, err := Eval(n.L, env)
	if err != nil {
		return Value{}, err
	}
	r, err := Eval(n.R, env)
	if err != nil {
		return Value{}, err
	}
	return ApplyBinary(n.Op, l, r)
}

// ApplyBinary applies a comparison or arithmetic operator to two
// already-evaluated operands with SQL semantics: NULL propagates, and
// integer arithmetic stays integral except division and power. AND/OR
// short-circuit and are handled by the evaluator, not here. Like ApplyUnary,
// it is the single source of scalar semantics shared with vector kernels.
func ApplyBinary(op Op, l, r Value) (Value, error) {
	if l.IsNull() || r.IsNull() {
		return Null(), nil
	}
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		c, err := Compare(l, r)
		if err != nil {
			return Value{}, err
		}
		switch op {
		case OpEq:
			return Bool(c == 0), nil
		case OpNe:
			return Bool(c != 0), nil
		case OpLt:
			return Bool(c < 0), nil
		case OpLe:
			return Bool(c <= 0), nil
		case OpGt:
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}
	}
	// Arithmetic. Integer ops stay integral except division and power.
	if l.K == KindInt && r.K == KindInt {
		switch op {
		case OpAdd:
			return Int(l.I + r.I), nil
		case OpSub:
			return Int(l.I - r.I), nil
		case OpMul:
			return Int(l.I * r.I), nil
		case OpMod:
			if r.I == 0 {
				return Value{}, fmt.Errorf("expr: integer modulo by zero")
			}
			return Int(l.I % r.I), nil
		}
	}
	lf, err := l.AsFloat()
	if err != nil {
		return Value{}, err
	}
	rf, err := r.AsFloat()
	if err != nil {
		return Value{}, err
	}
	switch op {
	case OpAdd:
		return Float(lf + rf), nil
	case OpSub:
		return Float(lf - rf), nil
	case OpMul:
		return Float(lf * rf), nil
	case OpDiv:
		if rf == 0 {
			return Value{}, fmt.Errorf("expr: division by zero")
		}
		return Float(lf / rf), nil
	case OpMod:
		if rf == 0 {
			return Value{}, fmt.Errorf("expr: modulo by zero")
		}
		return Float(math.Mod(lf, rf)), nil
	case OpPow:
		return Float(math.Pow(lf, rf)), nil
	}
	return Value{}, fmt.Errorf("expr: bad binary op %s", op)
}

// funcTable maps built-in function names to float implementations, with the
// number of expected arguments (-1 means variadic, at least one).
type builtin struct {
	arity int
	fn    func(args []float64) float64
}

var builtins = map[string]builtin{
	"abs":   {1, func(a []float64) float64 { return math.Abs(a[0]) }},
	"sqrt":  {1, func(a []float64) float64 { return math.Sqrt(a[0]) }},
	"exp":   {1, func(a []float64) float64 { return math.Exp(a[0]) }},
	"log":   {1, func(a []float64) float64 { return math.Log(a[0]) }},
	"log2":  {1, func(a []float64) float64 { return math.Log2(a[0]) }},
	"log10": {1, func(a []float64) float64 { return math.Log10(a[0]) }},
	"pow":   {2, func(a []float64) float64 { return math.Pow(a[0], a[1]) }},
	"sin":   {1, func(a []float64) float64 { return math.Sin(a[0]) }},
	"cos":   {1, func(a []float64) float64 { return math.Cos(a[0]) }},
	"tan":   {1, func(a []float64) float64 { return math.Tan(a[0]) }},
	"atan":  {1, func(a []float64) float64 { return math.Atan(a[0]) }},
	"floor": {1, func(a []float64) float64 { return math.Floor(a[0]) }},
	"ceil":  {1, func(a []float64) float64 { return math.Ceil(a[0]) }},
	"round": {1, func(a []float64) float64 { return math.Round(a[0]) }},
	"sign": {1, func(a []float64) float64 {
		switch {
		case a[0] > 0:
			return 1
		case a[0] < 0:
			return -1
		}
		return 0
	}},
	"min": {-1, func(a []float64) float64 {
		m := a[0]
		for _, v := range a[1:] {
			if v < m {
				m = v
			}
		}
		return m
	}},
	"max": {-1, func(a []float64) float64 {
		m := a[0]
		for _, v := range a[1:] {
			if v > m {
				m = v
			}
		}
		return m
	}},
}

func evalCall(n *Call, env Env) (Value, error) {
	b, ok := builtins[n.Name]
	if !ok {
		return Value{}, fmt.Errorf("expr: unknown function %q", n.Name)
	}
	if b.arity >= 0 && len(n.Args) != b.arity {
		return Value{}, fmt.Errorf("expr: %s expects %d args, got %d", n.Name, b.arity, len(n.Args))
	}
	if b.arity < 0 && len(n.Args) == 0 {
		return Value{}, fmt.Errorf("expr: %s expects at least one arg", n.Name)
	}
	args := make([]float64, len(n.Args))
	for i, a := range n.Args {
		v, err := Eval(a, env)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() {
			return Null(), nil
		}
		f, err := v.AsFloat()
		if err != nil {
			return Value{}, err
		}
		args[i] = f
	}
	return Float(b.fn(args)), nil
}

// LookupBuiltin exposes a built-in scalar function's float implementation
// and arity (-1 means variadic with at least one argument) so vectorized
// kernels can bind the function pointer once instead of resolving the name
// per row.
func LookupBuiltin(name string) (arity int, fn func([]float64) float64, ok bool) {
	b, ok := builtins[name]
	if !ok {
		return 0, nil, false
	}
	return b.arity, b.fn, true
}

// ApplyCall invokes a built-in over already-evaluated arguments with SQL
// semantics (any NULL argument yields NULL).
func ApplyCall(name string, args []Value) (Value, error) {
	b, ok := builtins[name]
	if !ok {
		return Value{}, fmt.Errorf("expr: unknown function %q", name)
	}
	if b.arity >= 0 && len(args) != b.arity {
		return Value{}, fmt.Errorf("expr: %s expects %d args, got %d", name, b.arity, len(args))
	}
	if b.arity < 0 && len(args) == 0 {
		return Value{}, fmt.Errorf("expr: %s expects at least one arg", name)
	}
	fargs := make([]float64, len(args))
	for i, v := range args {
		if v.IsNull() {
			return Null(), nil
		}
		f, err := v.AsFloat()
		if err != nil {
			return Value{}, err
		}
		fargs[i] = f
	}
	return Float(b.fn(fargs)), nil
}

// EvalFloat evaluates e as a float64 under a FloatEnv, without Value boxing.
// It is the inner loop of the fitting engine and model scans; unresolvable
// names or non-numeric constructs return an error.
func EvalFloat(e Expr, env FloatEnv) (float64, error) {
	switch n := e.(type) {
	case *Lit:
		return n.Val.AsFloat()
	case *Ident:
		v, ok := env(n.Name)
		if !ok {
			return 0, fmt.Errorf("expr: unknown identifier %q", n.Name)
		}
		return v, nil
	case *Unary:
		x, err := EvalFloat(n.X, env)
		if err != nil {
			return 0, err
		}
		if n.Op == OpNeg {
			return -x, nil
		}
		return 0, fmt.Errorf("expr: operator %s not numeric", n.Op)
	case *Binary:
		l, err := EvalFloat(n.L, env)
		if err != nil {
			return 0, err
		}
		r, err := EvalFloat(n.R, env)
		if err != nil {
			return 0, err
		}
		switch n.Op {
		case OpAdd:
			return l + r, nil
		case OpSub:
			return l - r, nil
		case OpMul:
			return l * r, nil
		case OpDiv:
			return l / r, nil
		case OpMod:
			return math.Mod(l, r), nil
		case OpPow:
			return math.Pow(l, r), nil
		}
		return 0, fmt.Errorf("expr: operator %s not numeric", n.Op)
	case *Call:
		b, ok := builtins[n.Name]
		if !ok {
			return 0, fmt.Errorf("expr: unknown function %q", n.Name)
		}
		args := make([]float64, len(n.Args))
		for i, a := range n.Args {
			v, err := EvalFloat(a, env)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		if b.arity >= 0 && len(args) != b.arity {
			return 0, fmt.Errorf("expr: %s expects %d args, got %d", n.Name, b.arity, len(args))
		}
		return b.fn(args), nil
	case *Param:
		return 0, fmt.Errorf("expr: unbound parameter $%d", n.Index)
	}
	return 0, fmt.Errorf("expr: cannot numerically evaluate %T", e)
}

// Compile lowers e into a closure evaluating against a positional slice,
// given a name→index binding. It avoids per-row map lookups in hot loops.
func Compile(e Expr, index map[string]int) (func(row []float64) float64, error) {
	switch n := e.(type) {
	case *Lit:
		v, err := n.Val.AsFloat()
		if err != nil {
			return nil, err
		}
		return func([]float64) float64 { return v }, nil
	case *Ident:
		idx, ok := index[n.Name]
		if !ok {
			return nil, fmt.Errorf("expr: unbound identifier %q", n.Name)
		}
		return func(row []float64) float64 { return row[idx] }, nil
	case *Unary:
		if n.Op != OpNeg {
			return nil, fmt.Errorf("expr: operator %s not numeric", n.Op)
		}
		x, err := Compile(n.X, index)
		if err != nil {
			return nil, err
		}
		return func(row []float64) float64 { return -x(row) }, nil
	case *Binary:
		l, err := Compile(n.L, index)
		if err != nil {
			return nil, err
		}
		r, err := Compile(n.R, index)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case OpAdd:
			return func(row []float64) float64 { return l(row) + r(row) }, nil
		case OpSub:
			return func(row []float64) float64 { return l(row) - r(row) }, nil
		case OpMul:
			return func(row []float64) float64 { return l(row) * r(row) }, nil
		case OpDiv:
			return func(row []float64) float64 { return l(row) / r(row) }, nil
		case OpMod:
			return func(row []float64) float64 { return math.Mod(l(row), r(row)) }, nil
		case OpPow:
			return func(row []float64) float64 { return math.Pow(l(row), r(row)) }, nil
		}
		return nil, fmt.Errorf("expr: operator %s not numeric", n.Op)
	case *Call:
		b, ok := builtins[n.Name]
		if !ok {
			return nil, fmt.Errorf("expr: unknown function %q", n.Name)
		}
		if b.arity >= 0 && len(n.Args) != b.arity {
			return nil, fmt.Errorf("expr: %s expects %d args, got %d", n.Name, b.arity, len(n.Args))
		}
		argFns := make([]func([]float64) float64, len(n.Args))
		for i, a := range n.Args {
			f, err := Compile(a, index)
			if err != nil {
				return nil, err
			}
			argFns[i] = f
		}
		fn := b.fn
		return func(row []float64) float64 {
			args := make([]float64, len(argFns))
			for i, f := range argFns {
				args[i] = f(row)
			}
			return fn(args)
		}, nil
	}
	return nil, fmt.Errorf("expr: cannot compile %T", e)
}
