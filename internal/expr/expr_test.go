package expr

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func evalF(t *testing.T, src string, env map[string]float64) float64 {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	got, err := EvalFloat(e, func(name string) (float64, bool) {
		v, ok := env[name]
		return v, ok
	})
	if err != nil {
		t.Fatalf("EvalFloat(%q): %v", src, err)
	}
	return got
}

func TestParseArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"2 ^ 3 ^ 2", 512}, // right associative
		{"-2 ^ 2", -4},     // unary binds looser than ^
		{"10 / 4", 2.5},
		{"7 % 3", 1},
		{"2 * -3", -6},
		{"1.5e2 + .5", 150.5},
		{"pow(2, 10)", 1024},
		{"sqrt(16) + abs(-3)", 7},
		{"min(3, 1, 2)", 1},
		{"max(3, 1, 2)", 3},
		{"log(exp(2))", 2},
		{"round(2.6)", 3},
	}
	for _, c := range cases {
		if got := evalF(t, c.src, nil); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%q = %g, want %g", c.src, got, c.want)
		}
	}
}

func TestParseVariables(t *testing.T) {
	env := map[string]float64{"x": 3, "y": 4, "nu": 0.14, "alpha": -0.7, "p": 0.06}
	if got := evalF(t, "x*x + y*y", env); got != 25 {
		t.Fatalf("got %g", got)
	}
	// The paper's model: I = p * nu^alpha.
	want := 0.06 * math.Pow(0.14, -0.7)
	if got := evalF(t, "p * pow(nu, alpha)", env); math.Abs(got-want) > 1e-15 {
		t.Fatalf("power law = %g, want %g", got, want)
	}
	if got := evalF(t, "p * nu ^ alpha", env); math.Abs(got-want) > 1e-15 {
		t.Fatalf("power law via ^ = %g, want %g", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"1 +", "(, )", "foo(", "1 2", "'unterminated", "@x", "pow(1)",
		"x BETWEEN 1", "x IS 3",
	}
	for _, src := range bad {
		e, err := Parse(src)
		if err == nil {
			// Arity errors surface at eval time for function calls.
			if _, everr := EvalFloat(e, func(string) (float64, bool) { return 1, true }); everr == nil {
				t.Errorf("Parse(%q): want error", src)
			}
		}
	}
}

func TestEvalTyped(t *testing.T) {
	env := MapEnv{
		"name": Str("lofar"),
		"n":    Int(42),
		"f":    Float(1.5),
		"ok":   Bool(true),
		"miss": Null(),
	}
	cases := []struct {
		src  string
		want Value
	}{
		{"n = 42", Bool(true)},
		{"n <> 42", Bool(false)},
		{"name = 'lofar'", Bool(true)},
		{"name = 'other'", Bool(false)},
		{"n + 1", Int(43)},
		{"n * 2", Int(84)},
		{"n / 4", Float(10.5)},
		{"f < 2 AND ok", Bool(true)},
		{"f > 2 OR ok", Bool(true)},
		{"NOT ok", Bool(false)},
		{"miss IS NULL", Bool(true)},
		{"miss IS NOT NULL", Bool(false)},
		{"n IS NULL", Bool(false)},
		{"miss + 1", Null()},
		{"miss = 1", Null()},
		{"FALSE AND miss", Bool(false)},
		{"TRUE OR miss", Bool(true)},
		{"TRUE AND miss", Null()},
		{"n BETWEEN 40 AND 45", Bool(true)},
		{"n BETWEEN 43 AND 45", Bool(false)},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		got, err := Eval(e, env)
		if err != nil {
			t.Fatalf("Eval(%q): %v", c.src, err)
		}
		if !Equal(got, c.want) || got.IsNull() != c.want.IsNull() {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	env := MapEnv{"s": Str("a"), "n": Int(1)}
	for _, src := range []string{"unknown + 1", "1/0", "n % 0", "s + 1", "s < 1"} {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := Eval(e, env); err == nil {
			t.Errorf("Eval(%q): want error", src)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	e, err := Parse("'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	v, err := Eval(e, MapEnv{})
	if err != nil || v.S != "it's" {
		t.Fatalf("got %v, %v", v, err)
	}
}

func TestVars(t *testing.T) {
	e := MustParse("p * pow(nu, alpha) + b")
	got := Vars(e)
	want := []string{"alpha", "b", "nu", "p"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
}

func TestSubstitute(t *testing.T) {
	e := MustParse("a + b*2")
	s := Substitute(e, map[string]Expr{"a": MustParse("10"), "b": MustParse("x")})
	got, err := EvalFloat(s, func(n string) (float64, bool) {
		if n == "x" {
			return 3, true
		}
		return 0, false
	})
	if err != nil || got != 16 {
		t.Fatalf("Substitute eval = %g, %v", got, err)
	}
}

func TestDiffBasics(t *testing.T) {
	cases := []struct {
		src, wrt string
		at       map[string]float64
		want     float64
	}{
		{"x*x", "x", map[string]float64{"x": 3}, 6},
		{"x^3", "x", map[string]float64{"x": 2}, 12},
		{"2*x + 7", "x", map[string]float64{"x": 5}, 2},
		{"y", "x", map[string]float64{"x": 1, "y": 2}, 0},
		{"exp(2*x)", "x", map[string]float64{"x": 0}, 2},
		{"log(x)", "x", map[string]float64{"x": 4}, 0.25},
		{"sqrt(x)", "x", map[string]float64{"x": 4}, 0.25},
		{"sin(x)", "x", map[string]float64{"x": 0}, 1},
		{"cos(x)", "x", map[string]float64{"x": 0}, 0},
		{"1/x", "x", map[string]float64{"x": 2}, -0.25},
		{"pow(x, 2)", "x", map[string]float64{"x": 5}, 10},
	}
	for _, c := range cases {
		e := MustParse(c.src)
		d, err := Diff(e, c.wrt)
		if err != nil {
			t.Fatalf("Diff(%q): %v", c.src, err)
		}
		got, err := EvalFloat(d, func(n string) (float64, bool) {
			v, ok := c.at[n]
			return v, ok
		})
		if err != nil {
			t.Fatalf("eval d(%q)/d%s = %v: %v", c.src, c.wrt, d, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("d(%q)/d%s at %v = %g, want %g (deriv %v)", c.src, c.wrt, c.at, got, c.want, d)
		}
	}
}

func TestDiffPowerLawModel(t *testing.T) {
	// The LOFAR model I = p·ν^α: ∂I/∂p = ν^α, ∂I/∂α = p·ν^α·ln(ν).
	e := MustParse("p * pow(nu, alpha)")
	env := func(n string) (float64, bool) {
		m := map[string]float64{"p": 0.06, "nu": 0.14, "alpha": -0.7}
		v, ok := m[n]
		return v, ok
	}
	dp, err := Diff(e, "p")
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvalFloat(dp, env)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(0.14, -0.7)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("dI/dp = %g, want %g", got, want)
	}
	da, err := Diff(e, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	got, err = EvalFloat(da, env)
	if err != nil {
		t.Fatal(err)
	}
	want = 0.06 * math.Pow(0.14, -0.7) * math.Log(0.14)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("dI/dalpha = %g, want %g", got, want)
	}
}

func TestDiffMatchesNumericProperty(t *testing.T) {
	exprs := []string{
		"x*x + 3*x", "exp(x)", "x^3 - 2*x", "sin(x)*cos(x)", "log(x+2)",
		"sqrt(x+1)", "x / (x + 1)", "pow(x+1, 2.5)",
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := exprs[rng.Intn(len(exprs))]
		x := rng.Float64()*4 + 0.1
		e := MustParse(src)
		d, err := Diff(e, "x")
		if err != nil {
			return false
		}
		envAt := func(xx float64) FloatEnv {
			return func(n string) (float64, bool) {
				if n == "x" {
					return xx, true
				}
				return 0, false
			}
		}
		analytic, err := EvalFloat(d, envAt(x))
		if err != nil {
			return false
		}
		const h = 1e-6
		fp, err1 := EvalFloat(e, envAt(x+h))
		fm, err2 := EvalFloat(e, envAt(x-h))
		if err1 != nil || err2 != nil {
			return false
		}
		numeric := (fp - fm) / (2 * h)
		return math.Abs(analytic-numeric) <= 1e-4*(1+math.Abs(numeric))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSimplify(t *testing.T) {
	cases := []struct{ src, want string }{
		{"x + 0", "x"},
		{"0 + x", "x"},
		{"x * 1", "x"},
		{"x * 0", "0"},
		{"x ^ 1", "x"},
		{"x ^ 0", "1"},
		{"2 * 3", "6"},
		{"x - 0", "x"},
		{"x / 1", "x"},
	}
	for _, c := range cases {
		got := Simplify(MustParse(c.src)).String()
		if got != c.want {
			t.Errorf("Simplify(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestCompileMatchesEvalFloat(t *testing.T) {
	index := map[string]int{"x": 0, "y": 1}
	exprs := []string{"x + y", "x*y - 2", "pow(x, 2) + sqrt(y)", "max(x, y)", "-x^2"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := exprs[rng.Intn(len(exprs))]
		e := MustParse(src)
		fn, err := Compile(e, index)
		if err != nil {
			return false
		}
		row := []float64{rng.Float64()*10 + 0.1, rng.Float64()*10 + 0.1}
		want, err := EvalFloat(e, func(n string) (float64, bool) {
			return row[index[n]], true
		})
		if err != nil {
			return false
		}
		got := fn(row)
		return math.Abs(got-want) < 1e-12 || (math.IsNaN(got) && math.IsNaN(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCompileUnbound(t *testing.T) {
	if _, err := Compile(MustParse("z + 1"), map[string]int{"x": 0}); err == nil {
		t.Fatal("want error for unbound identifier")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Float(1.5), Int(1), 1},
		{Str("a"), Str("b"), -1},
		{Bool(false), Bool(true), -1},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil {
			t.Fatalf("Compare(%v,%v): %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if _, err := Compare(Str("a"), Int(1)); err == nil {
		t.Fatal("want error comparing string to int")
	}
	if _, err := Compare(Null(), Int(1)); err == nil {
		t.Fatal("want error comparing NULL")
	}
}

func TestValueString(t *testing.T) {
	for _, c := range []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(7), "7"},
		{Float(1.5), "1.5"},
		{Str("hi"), `"hi"`},
		{Bool(true), "TRUE"},
	} {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.K, got, c.want)
		}
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	// Rendering then reparsing must preserve semantics.
	srcs := []string{"1 + 2 * x", "p * pow(nu, alpha)", "NOT (a AND b)", "x IS NULL", "-(x + 1) ^ 2"}
	for _, src := range srcs {
		e := MustParse(src)
		r, err := Parse(e.String())
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", e.String(), src, err)
		}
		if !strings.EqualFold(r.String(), e.String()) {
			t.Errorf("round trip %q → %q → %q", src, e.String(), r.String())
		}
	}
}
