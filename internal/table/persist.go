package table

import (
	"encoding/binary"
	"fmt"
	"io"

	"datalaws/internal/storage"
)

// Binary table format:
//
//	magic "DLTB1" | uvarint(len name) name | uvarint ncols |
//	  per column: uvarint(len name) name | uvarint(len frame) frame
//
// Column frames are storage.EncodeColumn output, so on-disk tables inherit
// the lightweight encodings (delta, RLE, dictionary, XOR floats).

var tableMagic = []byte("DLTB1")

// WriteBinary serializes the table to w. The whole serialization runs under
// one read-lock acquisition (Snapshot): encoding column by column without it
// races concurrent appends — reallocated slice headers, and columns captured
// at different lengths, which ReadBinary would reject as corrupt. Writers
// block for the duration of this table's encode; readers are unaffected.
func WriteBinary(t *Table, w io.Writer) error {
	return t.Snapshot(func(cols []storage.Column, _ int, _ uint64) error {
		if _, err := w.Write(tableMagic); err != nil {
			return err
		}
		if err := writeBytes(w, []byte(t.Name)); err != nil {
			return err
		}
		defs := t.Schema().Cols
		if err := writeUvarint(w, uint64(len(defs))); err != nil {
			return err
		}
		for i, def := range defs {
			if err := writeBytes(w, []byte(def.Name)); err != nil {
				return err
			}
			frame := storage.EncodeColumn(cols[i])
			if err := writeBytes(w, frame); err != nil {
				return err
			}
		}
		return nil
	})
}

// ReadBinary deserializes a table written by WriteBinary.
func ReadBinary(r io.Reader) (*Table, error) {
	magic := make([]byte, len(tableMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("table: reading magic: %w", err)
	}
	if string(magic) != string(tableMagic) {
		return nil, fmt.Errorf("table: bad magic %q", magic)
	}
	nameB, err := readBytes(r)
	if err != nil {
		return nil, err
	}
	ncols, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if ncols == 0 || ncols > 1<<16 {
		return nil, fmt.Errorf("table: implausible column count %d", ncols)
	}
	defs := make([]ColumnDef, 0, ncols)
	cols := make([]storage.Column, 0, ncols)
	rows := -1
	for i := uint64(0); i < ncols; i++ {
		cn, err := readBytes(r)
		if err != nil {
			return nil, err
		}
		frame, err := readBytes(r)
		if err != nil {
			return nil, err
		}
		col, err := storage.DecodeColumn(frame)
		if err != nil {
			return nil, fmt.Errorf("table: column %q: %w", cn, err)
		}
		if rows == -1 {
			rows = col.Len()
		} else if col.Len() != rows {
			return nil, fmt.Errorf("table: column %q has %d rows, want %d", cn, col.Len(), rows)
		}
		defs = append(defs, ColumnDef{Name: string(cn), Type: col.Type()})
		cols = append(cols, col)
	}
	schema, err := NewSchema(defs...)
	if err != nil {
		return nil, err
	}
	t := New(string(nameB), schema)
	t.cols = cols
	if rows < 0 {
		rows = 0
	}
	t.rows = rows
	t.version = uint64(rows)
	return t, nil
}

func writeUvarint(w io.Writer, v uint64) error {
	buf := make([]byte, binary.MaxVarintLen64)
	n := binary.PutUvarint(buf, v)
	_, err := w.Write(buf[:n])
	return err
}

func writeBytes(w io.Writer, b []byte) error {
	if err := writeUvarint(w, uint64(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

type byteReaderWrap struct{ r io.Reader }

func (b byteReaderWrap) ReadByte() (byte, error) {
	var one [1]byte
	_, err := io.ReadFull(b.r, one[:])
	return one[0], err
}

func readUvarint(r io.Reader) (uint64, error) {
	if br, ok := r.(io.ByteReader); ok {
		return binary.ReadUvarint(br)
	}
	return binary.ReadUvarint(byteReaderWrap{r})
}

func readBytes(r io.Reader) ([]byte, error) {
	n, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > 1<<31 {
		return nil, fmt.Errorf("table: implausible length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}
