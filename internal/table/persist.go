package table

import (
	"encoding/binary"
	"fmt"
	"io"

	"datalaws/internal/expr"
	"datalaws/internal/storage"
)

// Binary table format, version 2 (chunked):
//
//	magic "DLTB2" | uvarint(len name) name | uvarint chunkRows | uvarint ncols |
//	  per column: uvarint(len name) name | type byte
//	uvarint nsealed |
//	  per sealed chunk: uvarint rows | per column: uvarint(len frame) frame
//	uvarint tailRows | per column: uvarint(len frame) frame
//
// Sealed chunk frames are written verbatim — a checkpoint never decodes cold
// chunks — and the hot tail is encoded separately. Zone maps are not
// serialized: the load-time validation pass decodes each chunk once anyway,
// and recomputing zones there makes corrupt-zone unsound pruning impossible.
//
// Version 1 ("DLTB1": name | ncols | per-column name+frame, one frame per
// whole column) is still read; loading re-seals it under the current chunk
// budget.

var (
	tableMagic   = []byte("DLTB2")
	tableMagicV1 = []byte("DLTB1")
)

// WriteBinary serializes the table to w. The chunk list and tail are
// captured under one read-lock acquisition (Chunks): serializing without it
// races concurrent appends — reallocated slice headers, and columns captured
// at different lengths, which ReadBinary would reject as corrupt. Sealed
// chunks stream their encoded frames verbatim; only the tail is encoded
// here.
func WriteBinary(t *Table, w io.Writer) error {
	v := t.Chunks()
	if _, err := w.Write(tableMagic); err != nil {
		return err
	}
	if err := writeBytes(w, []byte(t.Name)); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(t.chunkRows)); err != nil {
		return err
	}
	defs := t.Schema().Cols
	if err := writeUvarint(w, uint64(len(defs))); err != nil {
		return err
	}
	for _, def := range defs {
		if err := writeBytes(w, []byte(def.Name)); err != nil {
			return err
		}
		if _, err := w.Write([]byte{byte(def.Type)}); err != nil {
			return err
		}
	}
	if err := writeUvarint(w, uint64(len(v.sealed))); err != nil {
		return err
	}
	for _, ch := range v.sealed {
		if err := writeUvarint(w, uint64(ch.rows)); err != nil {
			return err
		}
		for _, frame := range ch.frames {
			if err := writeBytes(w, frame); err != nil {
				return err
			}
		}
	}
	if err := writeUvarint(w, uint64(v.tailRows)); err != nil {
		return err
	}
	if v.tailRows > 0 {
		for _, col := range v.tail {
			if err := writeBytes(w, storage.EncodeColumn(col)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadBinary deserializes a table written by WriteBinary (either format
// version). Every sealed chunk is decoded once to validate its frames and
// recompute zone maps and size accounting; the decoded columns are then
// dropped, so load memory is bounded by one chunk, not the table.
func ReadBinary(r io.Reader) (*Table, error) {
	magic := make([]byte, len(tableMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("table: reading magic: %w", err)
	}
	switch string(magic) {
	case string(tableMagic):
		return readBinaryV2(r)
	case string(tableMagicV1):
		return readBinaryV1(r)
	}
	return nil, fmt.Errorf("table: bad magic %q", magic)
}

func readBinaryV2(r io.Reader) (*Table, error) {
	nameB, err := readBytes(r)
	if err != nil {
		return nil, err
	}
	chunkRows, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if chunkRows == 0 || chunkRows > 1<<31 {
		return nil, fmt.Errorf("table: implausible chunk row budget %d", chunkRows)
	}
	ncols, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if ncols == 0 || ncols > 1<<16 {
		return nil, fmt.Errorf("table: implausible column count %d", ncols)
	}
	defs := make([]ColumnDef, 0, ncols)
	for i := uint64(0); i < ncols; i++ {
		cn, err := readBytes(r)
		if err != nil {
			return nil, err
		}
		var tb [1]byte
		if _, err := io.ReadFull(r, tb[:]); err != nil {
			return nil, fmt.Errorf("table: column %q type: %w", cn, err)
		}
		defs = append(defs, ColumnDef{Name: string(cn), Type: storage.ColType(tb[0])})
	}
	schema, err := NewSchema(defs...)
	if err != nil {
		return nil, err
	}
	nsealed, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if nsealed > 1<<31 {
		return nil, fmt.Errorf("table: implausible chunk count %d", nsealed)
	}
	t := New(string(nameB), schema)
	t.chunkRows = int(chunkRows)
	for c := uint64(0); c < nsealed; c++ {
		rows, err := readUvarint(r)
		if err != nil {
			return nil, err
		}
		if rows == 0 || rows > chunkRows {
			return nil, fmt.Errorf("table: chunk %d has implausible row count %d", c, rows)
		}
		ch := &Chunk{rows: int(rows), frames: make([][]byte, ncols), zones: make([]ZoneMap, ncols)}
		for i := uint64(0); i < ncols; i++ {
			frame, err := readBytes(r)
			if err != nil {
				return nil, err
			}
			ch.frames[i] = frame
			ch.encoded += len(frame)
		}
		// Validate by decoding once, and recompute zones and the raw-size
		// estimate from the decoded columns.
		cols, err := ch.decode()
		if err != nil {
			return nil, fmt.Errorf("table: chunk %d: %w", c, err)
		}
		for i, col := range cols {
			if col.Type() != defs[i].Type {
				return nil, fmt.Errorf("table: chunk %d column %q is %v, schema says %v", c, defs[i].Name, col.Type(), defs[i].Type)
			}
			ch.zones[i] = zoneOf(col, ch.rows)
			ch.raw += colRawBytes(col, ch.rows)
		}
		t.sealed = append(t.sealed, ch)
		t.sealedRows += ch.rows
	}
	tailRows, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if tailRows > chunkRows {
		return nil, fmt.Errorf("table: implausible tail row count %d", tailRows)
	}
	if tailRows > 0 {
		for i := uint64(0); i < ncols; i++ {
			frame, err := readBytes(r)
			if err != nil {
				return nil, err
			}
			col, err := storage.DecodeColumn(frame)
			if err != nil {
				return nil, fmt.Errorf("table: tail column %q: %w", defs[i].Name, err)
			}
			if col.Type() != defs[i].Type {
				return nil, fmt.Errorf("table: tail column %q is %v, schema says %v", defs[i].Name, col.Type(), defs[i].Type)
			}
			if col.Len() != int(tailRows) {
				return nil, fmt.Errorf("table: tail column %q has %d rows, want %d", defs[i].Name, col.Len(), tailRows)
			}
			t.tail[i] = col
		}
		t.tailRows = int(tailRows)
		if t.tailRows >= t.chunkRows {
			t.sealTailLocked()
		}
	}
	t.version = uint64(t.sealedRows + t.tailRows)
	return t, nil
}

// readBinaryV1 reads the legacy flat format: whole-column frames, which are
// decoded and re-appended row by row so the table re-seals under the current
// chunk budget.
func readBinaryV1(r io.Reader) (*Table, error) {
	nameB, err := readBytes(r)
	if err != nil {
		return nil, err
	}
	ncols, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if ncols == 0 || ncols > 1<<16 {
		return nil, fmt.Errorf("table: implausible column count %d", ncols)
	}
	defs := make([]ColumnDef, 0, ncols)
	cols := make([]storage.Column, 0, ncols)
	rows := -1
	for i := uint64(0); i < ncols; i++ {
		cn, err := readBytes(r)
		if err != nil {
			return nil, err
		}
		frame, err := readBytes(r)
		if err != nil {
			return nil, err
		}
		col, err := storage.DecodeColumn(frame)
		if err != nil {
			return nil, fmt.Errorf("table: column %q: %w", cn, err)
		}
		if rows == -1 {
			rows = col.Len()
		} else if col.Len() != rows {
			return nil, fmt.Errorf("table: column %q has %d rows, want %d", cn, col.Len(), rows)
		}
		defs = append(defs, ColumnDef{Name: string(cn), Type: col.Type()})
		cols = append(cols, col)
	}
	schema, err := NewSchema(defs...)
	if err != nil {
		return nil, err
	}
	t := New(string(nameB), schema)
	if rows < 0 {
		rows = 0
	}
	vrow := make([]expr.Value, len(cols))
	for r := 0; r < rows; r++ {
		for i, col := range cols {
			vrow[i] = col.Value(r)
		}
		if err := t.appendRowLocked(vrow); err != nil {
			return nil, err
		}
	}
	t.version = uint64(rows)
	return t, nil
}

func writeUvarint(w io.Writer, v uint64) error {
	buf := make([]byte, binary.MaxVarintLen64)
	n := binary.PutUvarint(buf, v)
	_, err := w.Write(buf[:n])
	return err
}

func writeBytes(w io.Writer, b []byte) error {
	if err := writeUvarint(w, uint64(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

type byteReaderWrap struct{ r io.Reader }

func (b byteReaderWrap) ReadByte() (byte, error) {
	var one [1]byte
	_, err := io.ReadFull(b.r, one[:])
	return one[0], err
}

func readUvarint(r io.Reader) (uint64, error) {
	if br, ok := r.(io.ByteReader); ok {
		return binary.ReadUvarint(br)
	}
	return binary.ReadUvarint(byteReaderWrap{r})
}

func readBytes(r io.Reader) ([]byte, error) {
	n, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > 1<<31 {
		return nil, fmt.Errorf("table: implausible length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}
