package table

import (
	"fmt"
	"math"

	"datalaws/internal/expr"
	"datalaws/internal/storage"
)

// DefaultChunkRows is the row budget of one sealed chunk. It matches the
// morsel size of the parallel executor (16 × the batch size), so a morsel is
// exactly "decode one chunk". A var so tests can shrink it to force many
// chunks over small fixtures; per-table thresholds are fixed at New and
// persisted, so changing the default never re-shapes existing tables.
var DefaultChunkRows = 16 * 1024

// ZoneMap summarizes one column of one sealed chunk for scan pruning:
// min/max over the non-NULL, non-NaN values plus the NULL count. HasBounds
// is false for non-numeric columns and for chunks whose column holds no
// finite-comparable value — such chunks can never satisfy a range predicate
// on the column.
type ZoneMap struct {
	Min, Max  float64
	Nulls     int
	HasBounds bool
}

// Chunk is an immutable sealed run of rows stored column-encoded: one
// storage.EncodeColumn frame per schema column plus a zone map. Chunks are
// shared by reference between the owning table, scan views and the decoded
// cache; nothing mutates one after sealing.
type Chunk struct {
	rows   int
	frames [][]byte
	zones  []ZoneMap
	// raw is the decoded in-memory footprint estimate (RawSizeBytes
	// accounting); encoded is the summed frame length.
	raw     int
	encoded int
}

// NumRows returns the chunk's row count.
func (ch *Chunk) NumRows() int { return ch.rows }

// EncodedBytes returns the summed size of the chunk's column frames.
func (ch *Chunk) EncodedBytes() int { return ch.encoded }

// Zone returns the zone map of column i.
func (ch *Chunk) Zone(i int) ZoneMap { return ch.zones[i] }

// Columns decodes every column frame, bypassing the decoded-chunk cache.
// External packages should read chunks through ChunkView.Columns (guarded,
// cached) — the snapshotread analyzer flags raw per-chunk access outside
// internal/table.
func (ch *Chunk) Columns() ([]storage.Column, error) { return ch.decode() }

// decode materializes the chunk's columns from their frames.
func (ch *Chunk) decode() ([]storage.Column, error) {
	cols := make([]storage.Column, len(ch.frames))
	for i, frame := range ch.frames {
		c, err := storage.DecodeColumn(frame)
		if err != nil {
			return nil, fmt.Errorf("table: chunk column %d: %w", i, err)
		}
		if c.Len() != ch.rows {
			return nil, fmt.Errorf("table: chunk column %d has %d rows, want %d", i, c.Len(), ch.rows)
		}
		cols[i] = c
	}
	return cols, nil
}

// sealChunk encodes n rows of live columns into an immutable chunk.
func sealChunk(cols []storage.Column, n int) *Chunk {
	ch := &Chunk{
		rows:   n,
		frames: make([][]byte, len(cols)),
		zones:  make([]ZoneMap, len(cols)),
	}
	for i, c := range cols {
		ch.frames[i] = storage.EncodeColumn(c)
		ch.zones[i] = zoneOf(c, n)
		ch.encoded += len(ch.frames[i])
		ch.raw += colRawBytes(c, n)
	}
	return ch
}

// zoneOf computes the zone map of the first n rows of a column.
func zoneOf(c storage.Column, n int) ZoneMap {
	var z ZoneMap
	update := func(v float64) {
		if math.IsNaN(v) {
			return
		}
		if !z.HasBounds {
			z.Min, z.Max, z.HasBounds = v, v, true
			return
		}
		if v < z.Min {
			z.Min = v
		}
		if v > z.Max {
			z.Max = v
		}
	}
	switch col := c.(type) {
	case *storage.Int64Column:
		for i := 0; i < n; i++ {
			if col.Nulls.Get(i) {
				z.Nulls++
				continue
			}
			// int64 → float64 loses precision beyond 2^53; widen the bounds
			// outward so the zone still over-approximates the true range.
			update(floatLo(col.Vals[i]))
			update(floatHi(col.Vals[i]))
		}
	case *storage.Float64Column:
		for i := 0; i < n; i++ {
			if col.Nulls.Get(i) {
				z.Nulls++
				continue
			}
			update(col.Vals[i])
		}
	default:
		for i := 0; i < n; i++ {
			if c.IsNull(i) {
				z.Nulls++
			}
		}
	}
	return z
}

// floatLo returns a float64 ≤ v; floatHi a float64 ≥ v. Inside ±2^53 the
// conversion is exact; beyond it, nudge one ulp outward to stay sound.
func floatLo(v int64) float64 {
	f := float64(v)
	if v > 1<<53 || v < -(1<<53) {
		return math.Nextafter(f, math.Inf(-1))
	}
	return f
}

func floatHi(v int64) float64 {
	f := float64(v)
	if v > 1<<53 || v < -(1<<53) {
		return math.Nextafter(f, math.Inf(1))
	}
	return f
}

// colRawBytes estimates the decoded in-memory footprint of the first n rows
// (the RawSizeBytes accounting).
func colRawBytes(c storage.Column, n int) int {
	switch col := c.(type) {
	case *storage.Int64Column:
		return 8 * n
	case *storage.Float64Column:
		return 8 * n
	case *storage.StringColumn:
		total := 4 * n
		for _, s := range col.Dict {
			total += len(s)
		}
		return total
	case *storage.BoolColumn:
		return (n + 7) / 8
	}
	return 0
}

// prunedBy reports whether the chunk provably holds no row satisfying the
// [lo, hi] interval on column ci. NULL rows never satisfy a comparison, so a
// chunk whose column has no comparable value is pruned whenever any bound is
// set; NaN floats likewise compare false to everything.
func (ch *Chunk) prunedBy(ci int, lo, hi Bound) bool {
	z := ch.zones[ci]
	if !z.HasBounds {
		return lo.Set || hi.Set
	}
	if lo.Set && (z.Max < lo.F || (lo.Strict && z.Max == lo.F)) {
		return true
	}
	if hi.Set && (z.Min > hi.F || (hi.Strict && z.Min == hi.F)) {
		return true
	}
	return false
}

// ChunkView is a consistent point-in-time view of a table's storage: the
// sealed chunk list plus an immutable snapshot of the hot tail, captured
// under one lock acquisition. Sealed chunks never change; the tail snapshot
// caps each column's slice header at the captured row count and
// prefix-clones its bitmaps, so the view stays valid while writers keep
// appending. Scans address the view by chunk index 0..NumChunks()-1, where
// the tail (when non-empty) is the last, never-pruned pseudo-chunk.
type ChunkView struct {
	name     string
	schema   *Schema
	sealed   []*Chunk
	tail     []storage.Column // nil when the tail was empty at capture
	tailRows int
	rows     int
	version  uint64
}

// Chunks captures a ChunkView under one read-lock acquisition.
func (t *Table) Chunks() *ChunkView {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.chunkViewLocked()
}

// chunkViewLocked builds the view; callers hold t.mu.
func (t *Table) chunkViewLocked() *ChunkView {
	v := &ChunkView{
		name:    t.Name,
		schema:  t.schema,
		sealed:  t.sealed[:len(t.sealed):len(t.sealed)],
		rows:    t.sealedRows + t.tailRows,
		version: t.version,
	}
	if t.tailRows > 0 {
		v.tail = make([]storage.Column, len(t.tail))
		for i, c := range t.tail {
			v.tail[i] = prefixView(c, t.tailRows)
		}
		v.tailRows = t.tailRows
	}
	return v
}

// prefixView captures an immutable view of a column's first n rows: slice
// headers capped at n (a concurrent append may write past n or reallocate,
// but never mutates the first n elements) and prefix-cloned bitmaps —
// bitmaps pack many rows per word, so appends mutate words earlier rows
// share. The string dictionary header is likewise capped: appended rows may
// extend it, never rewrite existing entries.
func prefixView(c storage.Column, n int) storage.Column {
	switch col := c.(type) {
	case *storage.Int64Column:
		return &storage.Int64Column{Vals: col.Vals[:n:n], Nulls: col.Nulls.ClonePrefix(n)}
	case *storage.Float64Column:
		return &storage.Float64Column{Vals: col.Vals[:n:n], Nulls: col.Nulls.ClonePrefix(n)}
	case *storage.StringColumn:
		return &storage.StringColumn{
			Codes: col.Codes[:n:n],
			Dict:  col.Dict[:len(col.Dict):len(col.Dict)],
			Nulls: col.Nulls.ClonePrefix(n),
		}
	case *storage.BoolColumn:
		return &storage.BoolColumn{Vals: col.Vals.ClonePrefix(n), Nulls: col.Nulls.ClonePrefix(n)}
	}
	return c
}

// Rows returns the view's total row count.
func (v *ChunkView) Rows() int { return v.rows }

// Version returns the table version the view captured.
func (v *ChunkView) Version() uint64 { return v.version }

// NumChunks counts the view's scan units: sealed chunks plus the tail
// pseudo-chunk when it is non-empty.
func (v *ChunkView) NumChunks() int {
	n := len(v.sealed)
	if v.tailRows > 0 {
		n++
	}
	return n
}

// NumSealed counts only the sealed chunks.
func (v *ChunkView) NumSealed() int { return len(v.sealed) }

// ChunkLen returns the row count of chunk k.
func (v *ChunkView) ChunkLen(k int) int {
	if k < len(v.sealed) {
		return v.sealed[k].rows
	}
	return v.tailRows
}

// ChunkStart returns the global row offset of chunk k's first row.
func (v *ChunkView) ChunkStart(k int) int {
	off := 0
	for i := 0; i < k && i < len(v.sealed); i++ {
		off += v.sealed[i].rows
	}
	return off
}

// Columns materializes chunk k's column set. Sealed chunks decode through
// the shared byte-budgeted cache (a scan's working set, not the table size,
// bounds memory); the tail snapshot is returned directly. The returned
// columns are immutable and safe to share across goroutines.
func (v *ChunkView) Columns(k int) ([]storage.Column, error) {
	if k < len(v.sealed) {
		return decodedCache.columns(v.sealed[k])
	}
	if v.tail == nil {
		return nil, fmt.Errorf("table %s: chunk %d out of range", v.name, k)
	}
	return v.tail, nil
}

// Survivors prunes the view's chunks against a WHERE predicate: for every
// numeric column it extracts the interval the predicate's AND-tree implies
// (PredBounds, the same machinery partition pruning uses, with qualifier
// matching "col" and "qualifier.col") and drops sealed chunks whose zone
// maps provably cannot satisfy it. The tail is never pruned — its zones are
// not maintained while it mutates. A nil predicate keeps everything.
func (v *ChunkView) Survivors(where expr.Expr, qualifier string) []int {
	total := v.NumChunks()
	all := func() []int {
		keep := make([]int, total)
		for i := range keep {
			keep[i] = i
		}
		return keep
	}
	if where == nil || len(v.sealed) == 0 {
		return all()
	}
	type colBound struct {
		idx    int
		lo, hi Bound
	}
	var bounds []colBound
	for i, def := range v.schema.Cols {
		if def.Type != storage.TypeInt64 && def.Type != storage.TypeFloat64 {
			continue
		}
		lo, hi := PredBounds(where, def.Name, qualifier)
		if lo.Set || hi.Set {
			bounds = append(bounds, colBound{idx: i, lo: lo, hi: hi})
		}
	}
	if len(bounds) == 0 {
		return all()
	}
	keep := make([]int, 0, total)
chunks:
	for k, ch := range v.sealed {
		for _, b := range bounds {
			if ch.prunedBy(b.idx, b.lo, b.hi) {
				continue chunks
			}
		}
		keep = append(keep, k)
	}
	if v.tailRows > 0 {
		keep = append(keep, len(v.sealed))
	}
	return keep
}
