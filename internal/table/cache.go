package table

import (
	"container/list"
	"sync"

	"datalaws/internal/storage"
)

// DefaultChunkCacheBytes is the decoded-chunk cache's default byte budget.
// The budget bounds the decoded working set, not the table size: a scan over
// a table many times larger than the budget streams chunks through the cache
// and completes in bounded memory.
const DefaultChunkCacheBytes = 128 << 20

// chunkCache is a process-wide LRU of decoded chunks keyed by chunk
// identity. Entries evicted while a scan still holds their column slices
// stay alive through the garbage collector; the cache only bounds what it
// retains. A decoded chunk larger than the whole budget is returned uncached
// so retained bytes never exceed the budget.
type chunkCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	ll      *list.List // front = most recently used
	entries map[*Chunk]*list.Element

	hits, misses, evictions uint64
}

type cacheEntry struct {
	ch   *Chunk
	cols []storage.Column
	size int64
}

var decodedCache = newChunkCache(DefaultChunkCacheBytes)

func newChunkCache(budget int64) *chunkCache {
	return &chunkCache{budget: budget, ll: list.New(), entries: map[*Chunk]*list.Element{}}
}

// columns returns the chunk's decoded column set, decoding on miss. The
// decode runs outside the lock — concurrent misses on one chunk may decode
// it twice, but only one result is retained.
func (c *chunkCache) columns(ch *Chunk) ([]storage.Column, error) {
	c.mu.Lock()
	if el, ok := c.entries[ch]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		cols := el.Value.(*cacheEntry).cols
		c.mu.Unlock()
		return cols, nil
	}
	c.misses++
	c.mu.Unlock()

	cols, err := ch.decode()
	if err != nil {
		return nil, err
	}
	size := int64(ch.raw)

	c.mu.Lock()
	if _, ok := c.entries[ch]; !ok && size <= c.budget {
		c.entries[ch] = c.ll.PushFront(&cacheEntry{ch: ch, cols: cols, size: size})
		c.used += size
		c.evictLocked()
	}
	c.mu.Unlock()
	return cols, nil
}

// evictLocked drops least-recently-used entries until used ≤ budget; callers
// hold c.mu. The most recent entry survives because its size alone fits the
// budget (columns checks before inserting).
func (c *chunkCache) evictLocked() {
	for c.used > c.budget && c.ll.Len() > 1 {
		back := c.ll.Back()
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.entries, e.ch)
		c.used -= e.size
		c.evictions++
	}
	if c.used > c.budget && c.ll.Len() == 1 {
		back := c.ll.Back()
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.entries, e.ch)
		c.used -= e.size
		c.evictions++
	}
}

func (c *chunkCache) setBudget(bytes int64) {
	c.mu.Lock()
	c.budget = bytes
	c.evictLocked()
	c.mu.Unlock()
}

func (c *chunkCache) stats() ChunkCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ChunkCacheStats{
		Budget:    c.budget,
		Used:      c.used,
		Entries:   c.ll.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

func (c *chunkCache) resetStats() {
	c.mu.Lock()
	c.hits, c.misses, c.evictions = 0, 0, 0
	c.mu.Unlock()
}

// ChunkCacheStats reports the decoded-chunk cache's occupancy and traffic.
// Misses count chunk decodes, which is what the "selective scans decode few
// chunks" acceptance tests measure.
type ChunkCacheStats struct {
	Budget    int64
	Used      int64
	Entries   int
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// SetChunkCacheBudget resizes the process-wide decoded-chunk cache,
// evicting immediately if the new budget is smaller. A budget of 0 disables
// caching (every sealed-chunk read decodes).
func SetChunkCacheBudget(bytes int64) { decodedCache.setBudget(bytes) }

// CacheStats returns the decoded-chunk cache counters.
func CacheStats() ChunkCacheStats { return decodedCache.stats() }

// ResetCacheStats zeroes the hit/miss/eviction counters (occupancy is kept);
// tests bracket a scan with it to measure decode traffic.
func ResetCacheStats() { decodedCache.resetStats() }
