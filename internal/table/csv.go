package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"datalaws/internal/expr"
	"datalaws/internal/storage"
)

// ReadCSV loads a table from CSV with a header row, inferring column types
// from the first data row (int64 → float64 → bool → string fallback). Empty
// fields become NULL.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: reading CSV header: %w", err)
	}
	var records [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: reading CSV: %w", err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("table: CSV row has %d fields, header has %d", len(rec), len(header))
		}
		records = append(records, rec)
	}
	defs := make([]ColumnDef, len(header))
	for i, h := range header {
		defs[i] = ColumnDef{Name: h, Type: inferType(records, i)}
	}
	schema, err := NewSchema(defs...)
	if err != nil {
		return nil, err
	}
	t := New(name, schema)
	for rn, rec := range records {
		vals := make([]expr.Value, len(rec))
		for i, field := range rec {
			v, err := parseField(field, defs[i].Type)
			if err != nil {
				return nil, fmt.Errorf("table: CSV row %d column %q: %w", rn+1, header[i], err)
			}
			vals[i] = v
		}
		if err := t.AppendRow(vals); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func inferType(records [][]string, col int) storage.ColType {
	sawAny := false
	isInt, isFloat, isBool := true, true, true
	for _, rec := range records {
		f := rec[col]
		if f == "" {
			continue
		}
		sawAny = true
		if _, err := strconv.ParseInt(f, 10, 64); err != nil {
			isInt = false
		}
		if _, err := strconv.ParseFloat(f, 64); err != nil {
			isFloat = false
		}
		if _, err := strconv.ParseBool(f); err != nil {
			isBool = false
		}
		if !isInt && !isFloat && !isBool {
			return storage.TypeString
		}
	}
	switch {
	case !sawAny:
		return storage.TypeString
	case isInt:
		return storage.TypeInt64
	case isFloat:
		return storage.TypeFloat64
	case isBool:
		return storage.TypeBool
	}
	return storage.TypeString
}

func parseField(f string, t storage.ColType) (expr.Value, error) {
	if f == "" {
		return expr.Null(), nil
	}
	switch t {
	case storage.TypeInt64:
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return expr.Value{}, err
		}
		return expr.Int(v), nil
	case storage.TypeFloat64:
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return expr.Value{}, err
		}
		return expr.Float(v), nil
	case storage.TypeBool:
		v, err := strconv.ParseBool(f)
		if err != nil {
			return expr.Value{}, err
		}
		return expr.Bool(v), nil
	}
	return expr.Str(f), nil
}

// WriteCSV writes the table with a header row. NULLs render as empty fields.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema().Names()); err != nil {
		return err
	}
	n := t.NumRows()
	for i := 0; i < n; i++ {
		row := t.Row(i)
		rec := make([]string, len(row))
		for c, v := range row {
			rec[c] = renderField(v)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func renderField(v expr.Value) string {
	switch v.K {
	case expr.KindNull:
		return ""
	case expr.KindInt:
		return strconv.FormatInt(v.I, 10)
	case expr.KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case expr.KindBool:
		return strconv.FormatBool(v.B)
	}
	return v.S
}
