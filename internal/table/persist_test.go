package table

import (
	"bytes"
	"testing"

	"datalaws/internal/expr"
	"datalaws/internal/storage"
)

func TestBinaryRoundTrip(t *testing.T) {
	s, err := NewSchema(
		ColumnDef{Name: "source", Type: storage.TypeInt64},
		ColumnDef{Name: "nu", Type: storage.TypeFloat64},
		ColumnDef{Name: "label", Type: storage.TypeString},
		ColumnDef{Name: "ok", Type: storage.TypeBool},
	)
	if err != nil {
		t.Fatal(err)
	}
	tb := New("m", s)
	tb.AppendRow([]expr.Value{expr.Int(1), expr.Float(0.12), expr.Str("pulsar"), expr.Bool(true)})
	tb.AppendRow([]expr.Value{expr.Int(2), expr.Null(), expr.Str("quasar"), expr.Bool(false)})
	tb.AppendRow([]expr.Value{expr.Int(3), expr.Float(0.18), expr.Null(), expr.Null()})

	var buf bytes.Buffer
	if err := WriteBinary(tb, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "m" || back.NumRows() != 3 {
		t.Fatalf("shape: %s %d", back.Name, back.NumRows())
	}
	for i := 0; i < 3; i++ {
		a, b := tb.Row(i), back.Row(i)
		for c := range a {
			if a[c].IsNull() != b[c].IsNull() {
				t.Fatalf("null mismatch row %d col %d", i, c)
			}
			if !a[c].IsNull() && !expr.Equal(a[c], b[c]) {
				t.Fatalf("row %d col %d: %v vs %v", i, c, a[c], b[c])
			}
		}
	}
	// Loaded table must accept further appends.
	if err := back.AppendRow([]expr.Value{expr.Int(4), expr.Float(1), expr.Str("grb"), expr.Bool(true)}); err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 4 {
		t.Fatal("append after load")
	}
}

func TestBinaryEmptyTable(t *testing.T) {
	s, _ := NewSchema(ColumnDef{Name: "a", Type: storage.TypeInt64})
	tb := New("empty", s)
	var buf bytes.Buffer
	if err := WriteBinary(tb, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 0 {
		t.Fatalf("rows = %d", back.NumRows())
	}
}

func TestBinaryCorruption(t *testing.T) {
	s, _ := NewSchema(ColumnDef{Name: "a", Type: storage.TypeInt64})
	tb := New("x", s)
	for i := 0; i < 10; i++ {
		tb.AppendRow([]expr.Value{expr.Int(int64(i))})
	}
	var buf bytes.Buffer
	WriteBinary(tb, &buf)
	b := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(b[:len(b)/2])); err == nil {
		t.Fatal("want error for truncated input")
	}
	bad := append([]byte("XXXXX"), b[5:]...)
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("want error for bad magic")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("want error for empty input")
	}
}

// TestWriteBinaryConcurrentAppend: serialization must snapshot the table —
// encoding columns at different lengths (or racing a slice reallocation)
// produces a file ReadBinary rejects. Run under -race.
func TestWriteBinaryConcurrentAppend(t *testing.T) {
	tb := New("m", lofarSchema(t))
	for i := 0; i < 1000; i++ {
		if err := tb.AppendRow([]expr.Value{expr.Int(int64(i)), expr.Float(0.15), expr.Float(2)}); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := tb.AppendRow([]expr.Value{expr.Int(1), expr.Float(0.15), expr.Float(2)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		var buf bytes.Buffer
		if err := WriteBinary(tb, &buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("snapshot save produced unloadable file: %v", err)
		}
		if back.NumRows() < 1000 {
			t.Fatalf("rows = %d", back.NumRows())
		}
	}
	close(stop)
	<-done
}
