// Package table provides the relational layer over columnar storage: schemas,
// tables, a catalog, and CSV import/export. Tables are append-oriented (the
// telescope keeps observing; §2 expects measurement counts to grow linearly
// over time) and safe for concurrent readers with a single writer.
package table

import (
	"errors"
	"fmt"
	"sync"

	"datalaws/internal/expr"
	"datalaws/internal/storage"
)

// ErrUnknownTable marks lookups of tables that do not exist in a catalog;
// callers can test for it with errors.Is across every layer that wraps it.
var ErrUnknownTable = errors.New("unknown table")

// ColumnDef describes one column of a schema.
type ColumnDef struct {
	Name string
	Type storage.ColType
}

// Schema is an ordered list of column definitions.
type Schema struct {
	Cols []ColumnDef
}

// NewSchema builds a schema, rejecting duplicate column names.
func NewSchema(cols ...ColumnDef) (*Schema, error) {
	seen := map[string]bool{}
	for _, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("table: empty column name")
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("table: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
	}
	return &Schema{Cols: append([]ColumnDef(nil), cols...)}, nil
}

// Index returns the position of the named column, or -1.
func (s *Schema) Index(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// Table is a relational table over typed columns.
type Table struct {
	Name   string
	schema *Schema

	mu      sync.RWMutex
	cols    []storage.Column
	rows    int
	version uint64 // bumped on every append; model staleness detection
}

// New creates an empty table with the given schema.
func New(name string, schema *Schema) *Table {
	cols := make([]storage.Column, len(schema.Cols))
	for i, c := range schema.Cols {
		cols[i] = storage.NewColumn(c.Type)
	}
	return &Table{Name: name, schema: schema, cols: cols}
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// NumRows returns the current row count.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// Version returns a counter that increases with every append. The model
// store compares it against the version captured at fit time to detect the
// paper's "data changes" staleness condition.
func (t *Table) Version() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// AppendRow appends one row of boxed values matching the schema order.
func (t *Table) AppendRow(vals []expr.Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.appendRowLocked(vals); err != nil {
		return err
	}
	t.version++
	return nil
}

// AppendRows appends a batch of rows under one lock acquisition — the
// ingestion fast path. It returns the number of rows appended; on error,
// rows before the failing one remain appended (the table stays row-aligned,
// ingestion is append-only). The version counter is bumped once per batch
// that changed the table.
func (t *Table) AppendRows(rows [][]expr.Value) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for r, vals := range rows {
		if err := t.appendRowLocked(vals); err != nil {
			if r > 0 {
				t.version++
			}
			return r, err
		}
	}
	if len(rows) > 0 {
		t.version++
	}
	return len(rows), nil
}

// appendRowLocked appends one schema-aligned row; callers hold t.mu and are
// responsible for the version bump. A failing value rolls back the partial
// row so columns stay aligned.
func (t *Table) appendRowLocked(vals []expr.Value) error {
	if len(vals) != len(t.schema.Cols) {
		return fmt.Errorf("table %s: row has %d values, schema has %d", t.Name, len(vals), len(t.schema.Cols))
	}
	for i, v := range vals {
		if err := t.cols[i].AppendValue(v); err != nil {
			for j := 0; j < i; j++ {
				rollbackLast(t.cols[j])
			}
			return fmt.Errorf("table %s, column %s: %w", t.Name, t.schema.Cols[i].Name, err)
		}
	}
	t.rows++
	return nil
}

func rollbackLast(c storage.Column) {
	switch col := c.(type) {
	case *storage.Int64Column:
		col.Vals = col.Vals[:len(col.Vals)-1]
		nb := storage.NewBitmap(0)
		for i := 0; i < len(col.Vals); i++ {
			nb.Append(col.Nulls.Get(i))
		}
		col.Nulls = nb
	case *storage.Float64Column:
		col.Vals = col.Vals[:len(col.Vals)-1]
		nb := storage.NewBitmap(0)
		for i := 0; i < len(col.Vals); i++ {
			nb.Append(col.Nulls.Get(i))
		}
		col.Nulls = nb
	case *storage.StringColumn:
		col.Codes = col.Codes[:len(col.Codes)-1]
		nb := storage.NewBitmap(0)
		for i := 0; i < len(col.Codes); i++ {
			nb.Append(col.Nulls.Get(i))
		}
		col.Nulls = nb
	case *storage.BoolColumn:
		vb, nb := storage.NewBitmap(0), storage.NewBitmap(0)
		for i := 0; i < col.Vals.Len()-1; i++ {
			vb.Append(col.Vals.Get(i))
			nb.Append(col.Nulls.Get(i))
		}
		col.Vals, col.Nulls = vb, nb
	}
}

// Column returns the named column, or nil.
func (t *Table) Column(name string) storage.Column {
	i := t.schema.Index(name)
	if i < 0 {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.cols[i]
}

// ColumnAt returns the column at position i.
func (t *Table) ColumnAt(i int) storage.Column {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.cols[i]
}

// View runs f with the column set and row count under one read-lock
// acquisition. Scans that snapshot typed slice headers (the vectorized
// table scan) must take them inside f: reading a column's slice header
// outside the lock races with a concurrent append's header update, even
// though the first `rows` elements themselves are immutable.
func (t *Table) View(f func(cols []storage.Column, rows int) error) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return f(t.cols, t.rows)
}

// Snapshot is View extended with the version counter: f observes columns,
// row count and version under the same read-lock acquisition, so fitting can
// record exactly which table state it saw even while a writer keeps
// appending. Only the first `rows` elements of each column are part of the
// snapshot; they are immutable once written.
func (t *Table) Snapshot(f func(cols []storage.Column, rows int, version uint64) error) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return f(t.cols, t.rows, t.version)
}

// Row materializes row i as boxed values.
func (t *Table) Row(i int) []expr.Value {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]expr.Value, len(t.cols))
	for c, col := range t.cols {
		out[c] = col.Value(i)
	}
	return out
}

// FloatColumn extracts the named column as []float64, coercing integers.
// NULL entries and non-numeric columns yield an error: fitting needs
// complete numeric data.
func (t *Table) FloatColumn(name string) ([]float64, error) {
	col := t.Column(name)
	if col == nil {
		return nil, fmt.Errorf("table %s: no column %q", t.Name, name)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	switch c := col.(type) {
	case *storage.Float64Column:
		if c.Nulls.Any() {
			return nil, fmt.Errorf("table %s: column %q contains NULLs", t.Name, name)
		}
		out := make([]float64, len(c.Vals))
		copy(out, c.Vals)
		return out, nil
	case *storage.Int64Column:
		if c.Nulls.Any() {
			return nil, fmt.Errorf("table %s: column %q contains NULLs", t.Name, name)
		}
		out := make([]float64, len(c.Vals))
		for i, v := range c.Vals {
			out[i] = float64(v)
		}
		return out, nil
	}
	return nil, fmt.Errorf("table %s: column %q is not numeric", t.Name, name)
}

// IntColumn extracts the named column as []int64.
func (t *Table) IntColumn(name string) ([]int64, error) {
	col := t.Column(name)
	if col == nil {
		return nil, fmt.Errorf("table %s: no column %q", t.Name, name)
	}
	c, ok := col.(*storage.Int64Column)
	if !ok {
		return nil, fmt.Errorf("table %s: column %q is not BIGINT", t.Name, name)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if c.Nulls.Any() {
		return nil, fmt.Errorf("table %s: column %q contains NULLs", t.Name, name)
	}
	out := make([]int64, len(c.Vals))
	copy(out, c.Vals)
	return out, nil
}

// ModelView extracts the model-evaluation read set — row count, an optional
// BIGINT group column, and a list of numeric columns coerced to float64 —
// under a single read-lock acquisition, so every returned slice describes
// the same table state even while a writer keeps appending. Separate
// FloatColumn/IntColumn calls each take their own lock and can observe a
// torn cross-column view. groupCol may be "" for ungrouped extraction.
func (t *Table) ModelView(groupCol string, floatCols []string) (rows int, group []int64, floats [][]float64, err error) {
	floats = make([][]float64, len(floatCols))
	err = t.Snapshot(func(cols []storage.Column, n int, _ uint64) error {
		rows = n
		if groupCol != "" {
			i := t.schema.Index(groupCol)
			if i < 0 {
				return fmt.Errorf("table %s: no column %q", t.Name, groupCol)
			}
			c, ok := cols[i].(*storage.Int64Column)
			if !ok {
				return fmt.Errorf("table %s: column %q is not BIGINT", t.Name, groupCol)
			}
			if anyNullPrefix(c.Nulls, n) {
				return fmt.Errorf("table %s: column %q contains NULLs", t.Name, groupCol)
			}
			group = make([]int64, n)
			copy(group, c.Vals[:n])
		}
		for k, name := range floatCols {
			i := t.schema.Index(name)
			if i < 0 {
				return fmt.Errorf("table %s: no column %q", t.Name, name)
			}
			out, err := floatPrefix(t.Name, name, cols[i], n)
			if err != nil {
				return err
			}
			floats[k] = out
		}
		return nil
	})
	if err != nil {
		return 0, nil, nil, err
	}
	return rows, group, floats, nil
}

// Head materializes the first min(n, rows) rows as boxed values and returns
// them with the total row count, under a single read-lock acquisition —
// unlike a Row loop bracketed by NumRows calls, the prefix and the count
// agree even while a writer keeps appending.
func (t *Table) Head(n int) ([][]expr.Value, int) {
	var out [][]expr.Value
	total := 0
	_ = t.Snapshot(func(cols []storage.Column, rows int, _ uint64) error {
		total = rows
		if n > rows {
			n = rows
		}
		out = make([][]expr.Value, n)
		for r := 0; r < n; r++ {
			vals := make([]expr.Value, len(cols))
			for c, col := range cols {
				vals[c] = col.Value(r)
			}
			out[r] = vals
		}
		return nil
	})
	return out, total
}

// floatPrefix coerces the first rows entries of a numeric column to
// float64, mirroring FloatColumn's rules (integers coerce; NULLs and
// non-numeric columns error). Caller holds the table lock via Snapshot.
func floatPrefix(tname, cname string, col storage.Column, rows int) ([]float64, error) {
	switch c := col.(type) {
	case *storage.Float64Column:
		if anyNullPrefix(c.Nulls, rows) {
			return nil, fmt.Errorf("table %s: column %q contains NULLs", tname, cname)
		}
		out := make([]float64, rows)
		copy(out, c.Vals[:rows])
		return out, nil
	case *storage.Int64Column:
		if anyNullPrefix(c.Nulls, rows) {
			return nil, fmt.Errorf("table %s: column %q contains NULLs", tname, cname)
		}
		out := make([]float64, rows)
		for i, v := range c.Vals[:rows] {
			out[i] = float64(v)
		}
		return out, nil
	}
	return nil, fmt.Errorf("table %s: column %q is not numeric", tname, cname)
}

// anyNullPrefix reports whether any of the first rows entries is NULL.
func anyNullPrefix(b *storage.Bitmap, rows int) bool {
	for i := 0; i < rows && i < b.Len(); i++ {
		if b.Get(i) {
			return true
		}
	}
	return false
}

// RawSizeBytes estimates the in-memory footprint of the stored data, used
// for the paper's Table 1 raw-vs-model size comparison.
func (t *Table) RawSizeBytes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	total := 0
	for _, col := range t.cols {
		switch c := col.(type) {
		case *storage.Int64Column:
			total += 8 * len(c.Vals)
		case *storage.Float64Column:
			total += 8 * len(c.Vals)
		case *storage.StringColumn:
			total += 4 * len(c.Codes)
			for _, s := range c.Dict {
				total += len(s)
			}
		case *storage.BoolColumn:
			total += (c.Len() + 7) / 8
		}
	}
	return total
}

// Catalog is a named collection of tables. Partitioned tables register
// twice: the parent under its own name in a partitioned map, and every
// partition's child table under its "<table>#<partition>" name among the
// plain tables (which is what lets model capture, drift detection and
// persistence treat partitions as ordinary tables).
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	parted map[string]*PartitionedTable
	epoch  uint64 // bumped on every create/add/drop; plan-cache invalidation
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: map[string]*Table{}, parted: map[string]*PartitionedTable{}}
}

// Epoch returns a counter that increases whenever the set of tables changes
// (create, add, drop). Cached plans record the epoch they were compiled
// under and are discarded on mismatch, so a plan can never survive a DROP
// TABLE / re-CREATE of its table.
func (c *Catalog) Epoch() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.epoch
}

// Create registers a new empty table; it fails on duplicate names.
func (c *Catalog) Create(name string, schema *Schema) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.freeNameLocked(name); err != nil {
		return nil, err
	}
	t := New(name, schema)
	c.tables[name] = t
	c.epoch++
	return t, nil
}

// freeNameLocked reports whether a name is taken by any table or partitioned
// table; callers hold c.mu.
func (c *Catalog) freeNameLocked(name string) error {
	if _, exists := c.tables[name]; exists {
		return fmt.Errorf("table: %q already exists", name)
	}
	if _, exists := c.parted[name]; exists {
		return fmt.Errorf("table: %q already exists", name)
	}
	return nil
}

// Add registers an existing table.
func (c *Catalog) Add(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.freeNameLocked(t.Name); err != nil {
		return err
	}
	c.tables[t.Name] = t
	c.epoch++
	return nil
}

// CreatePartitioned registers a new empty range-partitioned table: the
// parent under name, plus one child table per partition under its
// "<table>#<partition>" name.
func (c *Catalog) CreatePartitioned(name string, schema *Schema, column string, ranges []RangePartition) (*PartitionedTable, error) {
	pt, err := NewPartitioned(name, schema, column, ranges)
	if err != nil {
		return nil, err
	}
	if err := c.AddPartitioned(pt); err != nil {
		return nil, err
	}
	return pt, nil
}

// AddPartitioned registers an existing partitioned table and its children.
func (c *Catalog) AddPartitioned(pt *PartitionedTable) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.freeNameLocked(pt.Name); err != nil {
		return err
	}
	for _, child := range pt.parts {
		if err := c.freeNameLocked(child.Name); err != nil {
			return err
		}
	}
	c.parted[pt.Name] = pt
	for _, child := range pt.parts {
		c.tables[child.Name] = child
	}
	c.epoch++
	return nil
}

// GetPartitioned looks up a partitioned table by its parent name.
func (c *Catalog) GetPartitioned(name string) (*PartitionedTable, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	pt, ok := c.parted[name]
	return pt, ok
}

// Get looks up a plain table by name (partition children included).
func (c *Catalog) Get(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	return t, ok
}

// Lookup is Get with an ErrUnknownTable-wrapped error instead of a boolean,
// for callers that propagate the failure. Looking up a partitioned parent
// reports ErrPartitioned: callers that support partitioning check
// GetPartitioned first, and everything else fails loudly rather than
// treating the parent as an empty table.
func (c *Catalog) Lookup(name string) (*Table, error) {
	t, ok := c.Get(name)
	if !ok {
		if _, parted := c.GetPartitioned(name); parted {
			return nil, fmt.Errorf("table: %w: %q", ErrPartitioned, name)
		}
		return nil, fmt.Errorf("table: %w %q", ErrUnknownTable, name)
	}
	return t, nil
}

// Drop removes a table. Dropping a partitioned parent removes its children
// with it; partition children cannot be dropped individually.
func (c *Catalog) Drop(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if pt, ok := c.parted[name]; ok {
		delete(c.parted, name)
		for _, child := range pt.parts {
			delete(c.tables, child.Name)
		}
		c.epoch++
		return true
	}
	if _, ok := c.tables[name]; !ok {
		return false
	}
	// Refuse to drop a partition child out from under its parent.
	for _, pt := range c.parted {
		for _, child := range pt.parts {
			if child.Name == name {
				return false
			}
		}
	}
	delete(c.tables, name)
	c.epoch++
	return true
}

// Names lists the registered table names, partition children included.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	return out
}

// PartitionedNames lists the partitioned parent names.
func (c *Catalog) PartitionedNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.parted))
	for n := range c.parted {
		out = append(out, n)
	}
	return out
}
