// Package table provides the relational layer over columnar storage: schemas,
// tables, a catalog, and CSV import/export. Tables are append-oriented (the
// telescope keeps observing; §2 expects measurement counts to grow linearly
// over time) and safe for concurrent readers with a single writer.
//
// Storage is two-tier: appends land in a mutable hot tail of plain columns;
// when the tail reaches the chunk row budget it is sealed into an immutable
// compressed chunk (per-column best-of encoding plus a zone map for scan
// pruning). Readers take a ChunkView — sealed chunk references plus an
// immutable tail snapshot captured under one lock — and decode chunks on
// demand through a byte-budgeted LRU cache, so a scan's working set, not the
// table size, bounds memory.
package table

import (
	"errors"
	"fmt"
	"sync"

	"datalaws/internal/expr"
	"datalaws/internal/storage"
)

// ErrUnknownTable marks lookups of tables that do not exist in a catalog;
// callers can test for it with errors.Is across every layer that wraps it.
var ErrUnknownTable = errors.New("unknown table")

// ColumnDef describes one column of a schema.
type ColumnDef struct {
	Name string
	Type storage.ColType
}

// Schema is an ordered list of column definitions.
type Schema struct {
	Cols []ColumnDef
}

// NewSchema builds a schema, rejecting duplicate column names.
func NewSchema(cols ...ColumnDef) (*Schema, error) {
	seen := map[string]bool{}
	for _, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("table: empty column name")
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("table: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
	}
	return &Schema{Cols: append([]ColumnDef(nil), cols...)}, nil
}

// Index returns the position of the named column, or -1.
func (s *Schema) Index(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// Table is a relational table over typed columns: a list of sealed immutable
// compressed chunks plus a mutable hot tail absorbing appends.
type Table struct {
	Name   string
	schema *Schema

	mu         sync.RWMutex
	sealed     []*Chunk
	sealedRows int
	tail       []storage.Column
	tailRows   int
	chunkRows  int    // seal threshold, fixed at creation and persisted
	version    uint64 // bumped on every append; model staleness detection
}

// New creates an empty table with the given schema. The seal threshold is
// captured from DefaultChunkRows at creation, so sealing depends only on the
// row-arrival sequence — WAL replay re-seals a recovered table identically.
func New(name string, schema *Schema) *Table {
	t := &Table{Name: name, schema: schema, chunkRows: DefaultChunkRows}
	if t.chunkRows < 1 {
		t.chunkRows = 1
	}
	t.tail = newTailCols(schema)
	return t
}

func newTailCols(schema *Schema) []storage.Column {
	cols := make([]storage.Column, len(schema.Cols))
	for i, c := range schema.Cols {
		cols[i] = storage.NewColumn(c.Type)
	}
	return cols
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// NumRows returns the current row count.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.sealedRows + t.tailRows
}

// NumChunks counts the table's current scan units: sealed chunks plus the
// hot tail when it is non-empty.
func (t *Table) NumChunks() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := len(t.sealed)
	if t.tailRows > 0 {
		n++
	}
	return n
}

// Version returns a counter that increases with every append. The model
// store compares it against the version captured at fit time to detect the
// paper's "data changes" staleness condition.
func (t *Table) Version() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// AppendRow appends one row of boxed values matching the schema order.
func (t *Table) AppendRow(vals []expr.Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.appendRowLocked(vals); err != nil {
		return err
	}
	t.version++
	return nil
}

// AppendRows appends a batch of rows under one lock acquisition — the
// ingestion fast path. It returns the number of rows appended; on error,
// rows before the failing one remain appended (the table stays row-aligned,
// ingestion is append-only). The version counter is bumped once per batch
// that changed the table.
func (t *Table) AppendRows(rows [][]expr.Value) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for r, vals := range rows {
		if err := t.appendRowLocked(vals); err != nil {
			if r > 0 {
				t.version++
			}
			return r, err
		}
	}
	if len(rows) > 0 {
		t.version++
	}
	return len(rows), nil
}

// appendRowLocked appends one schema-aligned row to the hot tail, sealing it
// into a chunk when the row budget fills; callers hold t.mu and are
// responsible for the version bump. A failing value rolls back the partial
// row so columns stay aligned.
func (t *Table) appendRowLocked(vals []expr.Value) error {
	if len(vals) != len(t.schema.Cols) {
		return fmt.Errorf("table %s: row has %d values, schema has %d", t.Name, len(vals), len(t.schema.Cols))
	}
	for i, v := range vals {
		if err := t.tail[i].AppendValue(v); err != nil {
			for j := 0; j < i; j++ {
				rollbackLast(t.tail[j])
			}
			return fmt.Errorf("table %s, column %s: %w", t.Name, t.schema.Cols[i].Name, err)
		}
	}
	t.tailRows++
	if t.tailRows >= t.chunkRows {
		t.sealTailLocked()
	}
	return nil
}

// sealTailLocked encodes the tail into an immutable chunk and starts a fresh
// one; callers hold t.mu. Safe against concurrent ChunkViews: their tail
// snapshots alias the old column backing arrays, which sealing never
// mutates.
func (t *Table) sealTailLocked() {
	if t.tailRows == 0 {
		return
	}
	t.sealed = append(t.sealed, sealChunk(t.tail, t.tailRows))
	t.sealedRows += t.tailRows
	t.tailRows = 0
	t.tail = newTailCols(t.schema)
}

func rollbackLast(c storage.Column) {
	switch col := c.(type) {
	case *storage.Int64Column:
		col.Vals = col.Vals[:len(col.Vals)-1]
		nb := storage.NewBitmap(0)
		for i := 0; i < len(col.Vals); i++ {
			nb.Append(col.Nulls.Get(i))
		}
		col.Nulls = nb
	case *storage.Float64Column:
		col.Vals = col.Vals[:len(col.Vals)-1]
		nb := storage.NewBitmap(0)
		for i := 0; i < len(col.Vals); i++ {
			nb.Append(col.Nulls.Get(i))
		}
		col.Nulls = nb
	case *storage.StringColumn:
		col.Codes = col.Codes[:len(col.Codes)-1]
		nb := storage.NewBitmap(0)
		for i := 0; i < len(col.Codes); i++ {
			nb.Append(col.Nulls.Get(i))
		}
		col.Nulls = nb
	case *storage.BoolColumn:
		vb, nb := storage.NewBitmap(0), storage.NewBitmap(0)
		for i := 0; i < col.Vals.Len()-1; i++ {
			vb.Append(col.Vals.Get(i))
			nb.Append(col.Nulls.Get(i))
		}
		col.Vals, col.Nulls = vb, nb
	}
}

// mustDecode is the chunk-decode failure policy for accessors whose
// signature has no error: frames are validated by decoding at load time and
// produced by the in-process encoder otherwise, so a failure here means
// memory corruption, not bad input — fail loudly.
func mustDecode(cols []storage.Column, err error) []storage.Column {
	if err != nil {
		panic(fmt.Sprintf("table: sealed chunk failed to decode: %v", err))
	}
	return cols
}

// Column returns the named column materialized across every chunk, or nil.
// Tables that fit in the tail return the snapshot directly; otherwise the
// chunks are decoded and concatenated — prefer ChunkView or View/Snapshot
// for scan-sized reads.
func (t *Table) Column(name string) storage.Column {
	i := t.schema.Index(name)
	if i < 0 {
		return nil
	}
	return t.ColumnAt(i)
}

// ColumnAt returns the column at position i, materialized across chunks.
func (t *Table) ColumnAt(i int) storage.Column {
	v := t.Chunks()
	if len(v.sealed) == 0 {
		if v.tail != nil {
			return v.tail[i]
		}
		return storage.NewColumn(t.schema.Cols[i].Type)
	}
	dst := storage.NewColumn(t.schema.Cols[i].Type)
	for k := 0; k < v.NumChunks(); k++ {
		cols := mustDecode(v.Columns(k))
		appendColPrefix(dst, cols[i], v.ChunkLen(k))
	}
	return dst
}

// View runs f over a consistent materialized snapshot: every column decoded
// and concatenated from the same ChunkView, so cross-column reads cannot
// tear even while a writer keeps appending. The columns handed to f are
// immutable. Scans should not use View — it materializes the whole table;
// the chunk-streaming path (Chunks) bounds memory by the cache budget.
func (t *Table) View(f func(cols []storage.Column, rows int) error) error {
	cols, rows, _, err := t.materializeView()
	if err != nil {
		return err
	}
	return f(cols, rows)
}

// Snapshot is View extended with the version counter: f observes columns,
// row count and version captured from the same instant, so fitting can
// record exactly which table state it saw even while a writer keeps
// appending.
func (t *Table) Snapshot(f func(cols []storage.Column, rows int, version uint64) error) error {
	cols, rows, version, err := t.materializeView()
	if err != nil {
		return err
	}
	return f(cols, rows, version)
}

// materializeView decodes and concatenates every chunk of one ChunkView.
// Tables with no sealed chunks return the tail snapshot without copying.
func (t *Table) materializeView() ([]storage.Column, int, uint64, error) {
	v := t.Chunks()
	if len(v.sealed) == 0 {
		cols := v.tail
		if cols == nil {
			cols = newTailCols(t.schema)
		}
		return cols, v.rows, v.version, nil
	}
	out := newTailCols(t.schema)
	for k := 0; k < v.NumChunks(); k++ {
		cols, err := v.Columns(k)
		if err != nil {
			return nil, 0, 0, err
		}
		for i := range out {
			appendColPrefix(out[i], cols[i], v.ChunkLen(k))
		}
	}
	return out, v.rows, v.version, nil
}

// appendColPrefix appends the first n rows of src onto dst (same storage
// type; chunks of one table share the schema).
func appendColPrefix(dst, src storage.Column, n int) {
	switch d := dst.(type) {
	case *storage.Int64Column:
		s := src.(*storage.Int64Column)
		d.Vals = append(d.Vals, s.Vals[:n]...)
		appendBits(d.Nulls, s.Nulls, n)
	case *storage.Float64Column:
		s := src.(*storage.Float64Column)
		d.Vals = append(d.Vals, s.Vals[:n]...)
		appendBits(d.Nulls, s.Nulls, n)
	case *storage.StringColumn:
		s := src.(*storage.StringColumn)
		for i := 0; i < n; i++ {
			if s.Nulls.Get(i) {
				d.AppendNull()
			} else {
				d.Append(s.Dict[s.Codes[i]])
			}
		}
	case *storage.BoolColumn:
		s := src.(*storage.BoolColumn)
		for i := 0; i < n; i++ {
			if s.Nulls.Get(i) {
				d.AppendNull()
			} else {
				d.Append(s.Vals.Get(i))
			}
		}
	}
}

func appendBits(dst, src *storage.Bitmap, n int) {
	for i := 0; i < n; i++ {
		dst.Append(src.Get(i))
	}
}

// Row materializes row i as boxed values. Tail rows are read under the lock;
// sealed rows resolve their chunk under the lock and decode through the
// cache outside it, so sequential Row loops (CSV export) decode each chunk
// once.
func (t *Table) Row(i int) []expr.Value {
	t.mu.RLock()
	if i >= t.sealedRows {
		li := i - t.sealedRows
		out := make([]expr.Value, len(t.tail))
		for c, col := range t.tail {
			out[c] = col.Value(li)
		}
		t.mu.RUnlock()
		return out
	}
	var ch *Chunk
	li, off := 0, 0
	for _, c := range t.sealed {
		if i < off+c.rows {
			ch, li = c, i-off
			break
		}
		off += c.rows
	}
	t.mu.RUnlock()
	cols := mustDecode(decodedCache.columns(ch))
	out := make([]expr.Value, len(cols))
	for c, col := range cols {
		out[c] = col.Value(li)
	}
	return out
}

// FloatColumn extracts the named column as []float64, coercing integers.
// NULL entries and non-numeric columns yield an error: fitting needs
// complete numeric data. NULL detection reads the sealed chunks' zone maps,
// so a NULL-bearing table fails before any chunk is decoded.
func (t *Table) FloatColumn(name string) ([]float64, error) {
	i := t.schema.Index(name)
	if i < 0 {
		return nil, fmt.Errorf("table %s: no column %q", t.Name, name)
	}
	def := t.schema.Cols[i]
	if def.Type != storage.TypeInt64 && def.Type != storage.TypeFloat64 {
		return nil, fmt.Errorf("table %s: column %q is not numeric", t.Name, name)
	}
	v := t.Chunks()
	if v.hasNulls(i) {
		return nil, fmt.Errorf("table %s: column %q contains NULLs", t.Name, name)
	}
	out := make([]float64, 0, v.rows)
	for k := 0; k < v.NumChunks(); k++ {
		cols, err := v.Columns(k)
		if err != nil {
			return nil, err
		}
		n := v.ChunkLen(k)
		switch c := cols[i].(type) {
		case *storage.Float64Column:
			out = append(out, c.Vals[:n]...)
		case *storage.Int64Column:
			for _, x := range c.Vals[:n] {
				out = append(out, float64(x))
			}
		}
	}
	return out, nil
}

// IntColumn extracts the named column as []int64.
func (t *Table) IntColumn(name string) ([]int64, error) {
	i := t.schema.Index(name)
	if i < 0 {
		return nil, fmt.Errorf("table %s: no column %q", t.Name, name)
	}
	if t.schema.Cols[i].Type != storage.TypeInt64 {
		return nil, fmt.Errorf("table %s: column %q is not BIGINT", t.Name, name)
	}
	v := t.Chunks()
	if v.hasNulls(i) {
		return nil, fmt.Errorf("table %s: column %q contains NULLs", t.Name, name)
	}
	out := make([]int64, 0, v.rows)
	for k := 0; k < v.NumChunks(); k++ {
		cols, err := v.Columns(k)
		if err != nil {
			return nil, err
		}
		n := v.ChunkLen(k)
		out = append(out, cols[i].(*storage.Int64Column).Vals[:n]...)
	}
	return out, nil
}

// hasNulls reports whether column i holds any NULL in the view: sealed
// chunks answer from their zone maps without decoding, the tail by scanning
// its snapshot.
func (v *ChunkView) hasNulls(i int) bool {
	for _, ch := range v.sealed {
		if ch.zones[i].Nulls > 0 {
			return true
		}
	}
	if v.tail != nil {
		c := v.tail[i]
		for r := 0; r < v.tailRows; r++ {
			if c.IsNull(r) {
				return true
			}
		}
	}
	return false
}

// ModelView extracts the model-evaluation read set — row count, an optional
// BIGINT group column, and a list of numeric columns coerced to float64 —
// from a single ChunkView, so every returned slice describes the same table
// state even while a writer keeps appending. Separate FloatColumn/IntColumn
// calls each capture their own view and can observe a torn cross-column
// snapshot. groupCol may be "" for ungrouped extraction.
func (t *Table) ModelView(groupCol string, floatCols []string) (rows int, group []int64, floats [][]float64, err error) {
	v := t.Chunks()
	rows = v.rows
	gi := -1
	if groupCol != "" {
		gi = t.schema.Index(groupCol)
		if gi < 0 {
			return 0, nil, nil, fmt.Errorf("table %s: no column %q", t.Name, groupCol)
		}
		if t.schema.Cols[gi].Type != storage.TypeInt64 {
			return 0, nil, nil, fmt.Errorf("table %s: column %q is not BIGINT", t.Name, groupCol)
		}
		if v.hasNulls(gi) {
			return 0, nil, nil, fmt.Errorf("table %s: column %q contains NULLs", t.Name, groupCol)
		}
		group = make([]int64, 0, rows)
	}
	fidx := make([]int, len(floatCols))
	floats = make([][]float64, len(floatCols))
	for k, name := range floatCols {
		fidx[k] = t.schema.Index(name)
		if fidx[k] < 0 {
			return 0, nil, nil, fmt.Errorf("table %s: no column %q", t.Name, name)
		}
		def := t.schema.Cols[fidx[k]]
		if def.Type != storage.TypeInt64 && def.Type != storage.TypeFloat64 {
			return 0, nil, nil, fmt.Errorf("table %s: column %q is not numeric", t.Name, name)
		}
		if v.hasNulls(fidx[k]) {
			return 0, nil, nil, fmt.Errorf("table %s: column %q contains NULLs", t.Name, name)
		}
		floats[k] = make([]float64, 0, rows)
	}
	for k := 0; k < v.NumChunks(); k++ {
		cols, cerr := v.Columns(k)
		if cerr != nil {
			return 0, nil, nil, cerr
		}
		n := v.ChunkLen(k)
		if gi >= 0 {
			group = append(group, cols[gi].(*storage.Int64Column).Vals[:n]...)
		}
		for j, ci := range fidx {
			switch c := cols[ci].(type) {
			case *storage.Float64Column:
				floats[j] = append(floats[j], c.Vals[:n]...)
			case *storage.Int64Column:
				for _, x := range c.Vals[:n] {
					floats[j] = append(floats[j], float64(x))
				}
			}
		}
	}
	if gi < 0 {
		group = nil
	}
	return rows, group, floats, nil
}

// Head materializes the first min(n, rows) rows as boxed values and returns
// them with the total row count, from a single ChunkView — the prefix and
// the count agree even while a writer keeps appending. Only the chunks
// covering the prefix are decoded.
func (t *Table) Head(n int) ([][]expr.Value, int) {
	v := t.Chunks()
	total := v.rows
	if n > total {
		n = total
	}
	out := make([][]expr.Value, 0, n)
	for k := 0; k < v.NumChunks() && len(out) < n; k++ {
		cols := mustDecode(v.Columns(k))
		cl := v.ChunkLen(k)
		for r := 0; r < cl && len(out) < n; r++ {
			vals := make([]expr.Value, len(cols))
			for c, col := range cols {
				vals[c] = col.Value(r)
			}
			out = append(out, vals)
		}
	}
	return out, total
}

// anyNullPrefix reports whether any of the first rows entries is NULL.
func anyNullPrefix(b *storage.Bitmap, rows int) bool {
	for i := 0; i < rows && i < b.Len(); i++ {
		if b.Get(i) {
			return true
		}
	}
	return false
}

// RawSizeBytes estimates the decoded in-memory footprint of the stored data,
// used for the paper's Table 1 raw-vs-model size comparison. Sealed chunks
// report the footprint captured at seal time.
func (t *Table) RawSizeBytes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	total := 0
	for _, ch := range t.sealed {
		total += ch.raw
	}
	for _, col := range t.tail {
		total += colRawBytes(col, t.tailRows)
	}
	return total
}

// EncodedSizeBytes sums the sealed chunks' frame bytes — the compressed
// footprint the chunked layout actually retains for cold data.
func (t *Table) EncodedSizeBytes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	total := 0
	for _, ch := range t.sealed {
		total += ch.encoded
	}
	return total
}

// Catalog is a named collection of tables. Partitioned tables register
// twice: the parent under its own name in a partitioned map, and every
// partition's child table under its "<table>#<partition>" name among the
// plain tables (which is what lets model capture, drift detection and
// persistence treat partitions as ordinary tables).
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	parted map[string]*PartitionedTable
	epoch  uint64 // bumped on every create/add/drop; plan-cache invalidation
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: map[string]*Table{}, parted: map[string]*PartitionedTable{}}
}

// Epoch returns a counter that increases whenever the set of tables changes
// (create, add, drop). Cached plans record the epoch they were compiled
// under and are discarded on mismatch, so a plan can never survive a DROP
// TABLE / re-CREATE of its table.
func (c *Catalog) Epoch() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.epoch
}

// AdvanceEpoch raises the epoch strictly past floor (a persisted pre-restart
// value). A reopened catalog replays its load as a handful of Add calls, so
// without this its epoch would restart near zero and epoch-keyed plan caches
// could alias a pre-restart compilation; advancing past the persisted high
// water mark makes every post-restart epoch strictly greater than every
// pre-restart one.
func (c *Catalog) AdvanceEpoch(floor uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch <= floor {
		c.epoch = floor + 1
	}
}

// Create registers a new empty table; it fails on duplicate names.
func (c *Catalog) Create(name string, schema *Schema) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.freeNameLocked(name); err != nil {
		return nil, err
	}
	t := New(name, schema)
	c.tables[name] = t
	c.epoch++
	return t, nil
}

// freeNameLocked reports whether a name is taken by any table or partitioned
// table; callers hold c.mu.
func (c *Catalog) freeNameLocked(name string) error {
	if _, exists := c.tables[name]; exists {
		return fmt.Errorf("table: %q already exists", name)
	}
	if _, exists := c.parted[name]; exists {
		return fmt.Errorf("table: %q already exists", name)
	}
	return nil
}

// Add registers an existing table.
func (c *Catalog) Add(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.freeNameLocked(t.Name); err != nil {
		return err
	}
	c.tables[t.Name] = t
	c.epoch++
	return nil
}

// CreatePartitioned registers a new empty range-partitioned table: the
// parent under name, plus one child table per partition under its
// "<table>#<partition>" name.
func (c *Catalog) CreatePartitioned(name string, schema *Schema, column string, ranges []RangePartition) (*PartitionedTable, error) {
	pt, err := NewPartitioned(name, schema, column, ranges)
	if err != nil {
		return nil, err
	}
	if err := c.AddPartitioned(pt); err != nil {
		return nil, err
	}
	return pt, nil
}

// AddPartitioned registers an existing partitioned table and its children.
func (c *Catalog) AddPartitioned(pt *PartitionedTable) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.freeNameLocked(pt.Name); err != nil {
		return err
	}
	for _, child := range pt.parts {
		if err := c.freeNameLocked(child.Name); err != nil {
			return err
		}
	}
	c.parted[pt.Name] = pt
	for _, child := range pt.parts {
		c.tables[child.Name] = child
	}
	c.epoch++
	return nil
}

// GetPartitioned looks up a partitioned table by its parent name.
func (c *Catalog) GetPartitioned(name string) (*PartitionedTable, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	pt, ok := c.parted[name]
	return pt, ok
}

// Get looks up a plain table by name (partition children included).
func (c *Catalog) Get(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	return t, ok
}

// Lookup is Get with an ErrUnknownTable-wrapped error instead of a boolean,
// for callers that propagate the failure. Looking up a partitioned parent
// reports ErrPartitioned: callers that support partitioning check
// GetPartitioned first, and everything else fails loudly rather than
// treating the parent as an empty table.
func (c *Catalog) Lookup(name string) (*Table, error) {
	t, ok := c.Get(name)
	if !ok {
		if _, parted := c.GetPartitioned(name); parted {
			return nil, fmt.Errorf("table: %w: %q", ErrPartitioned, name)
		}
		return nil, fmt.Errorf("table: %w %q", ErrUnknownTable, name)
	}
	return t, nil
}

// Drop removes a table. Dropping a partitioned parent removes its children
// with it; partition children cannot be dropped individually.
func (c *Catalog) Drop(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if pt, ok := c.parted[name]; ok {
		delete(c.parted, name)
		for _, child := range pt.parts {
			delete(c.tables, child.Name)
		}
		c.epoch++
		return true
	}
	if _, ok := c.tables[name]; !ok {
		return false
	}
	// Refuse to drop a partition child out from under its parent.
	for _, pt := range c.parted {
		for _, child := range pt.parts {
			if child.Name == name {
				return false
			}
		}
	}
	delete(c.tables, name)
	c.epoch++
	return true
}

// Names lists the registered table names, partition children included.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	return out
}

// PartitionedNames lists the partitioned parent names.
func (c *Catalog) PartitionedNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.parted))
	for n := range c.parted {
		out = append(out, n)
	}
	return out
}
