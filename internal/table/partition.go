package table

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"datalaws/internal/expr"
	"datalaws/internal/storage"
)

// Horizontal range partitioning. A partitioned table splits its rows across
// child tables by ranges of one numeric column, so that both row scans and
// captured models stay local to a regime: the paper's laws hold within a
// regime, and a selective query can skip whole partitions — rows and models —
// entirely. Each partition is a full *Table (its own columns, lock, version
// counter), so the append path, snapshot scans, model fitting, drift
// detection and background refit all work per partition unchanged.

// ErrPartitioned marks lookups that found a partitioned table where a plain
// table was required; callers that support partitioning check
// GetPartitioned first.
var ErrPartitioned = errors.New("table is partitioned")

// ErrNoPartition marks rows whose partition-column value falls outside every
// partition range.
var ErrNoPartition = errors.New("no partition admits value")

// RangePartition is one partition's declaration: rows route here when the
// partition column is below Upper (and at or above the previous partition's
// Upper). Max marks VALUES LESS THAN (MAXVALUE) — an unbounded final range.
type RangePartition struct {
	Name  string
	Upper float64
	Max   bool
}

// PartitionedTable is a range-partitioned table: a schema shared by ordered
// child tables, each covering the half-open range
// [previous Upper, own Upper). Children are named "<table>#<partition>" —
// '#' cannot appear in a SQL identifier, so the names can never collide with
// user tables or be referenced directly from SQL.
type PartitionedTable struct {
	Name   string
	schema *Schema
	column string
	colIdx int
	ranges []RangePartition
	parts  []*Table
}

// NewPartitioned creates an empty partitioned table. The partition column
// must be numeric (BIGINT or DOUBLE); bounds must be strictly increasing,
// with MAXVALUE allowed only on the last partition.
func NewPartitioned(name string, schema *Schema, column string, ranges []RangePartition) (*PartitionedTable, error) {
	pt, err := validatePartitioned(name, schema, column, ranges)
	if err != nil {
		return nil, err
	}
	for i, r := range ranges {
		pt.parts[i] = New(PartitionTableName(name, r.Name), schema)
	}
	return pt, nil
}

// NewPartitionedFrom reassembles a partitioned table around existing child
// tables (the persistence load path). Children must match the ranges in
// count and order and share the parent schema's column names and types.
func NewPartitionedFrom(name string, schema *Schema, column string, ranges []RangePartition, children []*Table) (*PartitionedTable, error) {
	pt, err := validatePartitioned(name, schema, column, ranges)
	if err != nil {
		return nil, err
	}
	if len(children) != len(ranges) {
		return nil, fmt.Errorf("table: partitioned %q has %d ranges but %d children", name, len(ranges), len(children))
	}
	for i, child := range children {
		if child == nil {
			return nil, fmt.Errorf("table: partitioned %q: nil child %d", name, i)
		}
		if err := sameSchema(schema, child.Schema()); err != nil {
			return nil, fmt.Errorf("table: partition %q of %q: %w", ranges[i].Name, name, err)
		}
		pt.parts[i] = child
	}
	return pt, nil
}

func validatePartitioned(name string, schema *Schema, column string, ranges []RangePartition) (*PartitionedTable, error) {
	idx := schema.Index(column)
	if idx < 0 {
		return nil, fmt.Errorf("table: partition column %q is not in the schema of %q", column, name)
	}
	switch schema.Cols[idx].Type {
	case storage.TypeInt64, storage.TypeFloat64:
	default:
		return nil, fmt.Errorf("table: partition column %q of %q must be numeric", column, name)
	}
	if len(ranges) == 0 {
		return nil, fmt.Errorf("table: partitioned %q needs at least one partition", name)
	}
	seen := map[string]bool{}
	for i, r := range ranges {
		if r.Name == "" {
			return nil, fmt.Errorf("table: partition %d of %q has an empty name", i, name)
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("table: duplicate partition name %q in %q", r.Name, name)
		}
		seen[r.Name] = true
		if r.Max {
			if i != len(ranges)-1 {
				return nil, fmt.Errorf("table: MAXVALUE partition %q of %q must come last", r.Name, name)
			}
			continue
		}
		if math.IsNaN(r.Upper) {
			return nil, fmt.Errorf("table: partition %q of %q has a NaN bound", r.Name, name)
		}
		if i > 0 && !ranges[i-1].Max && r.Upper <= ranges[i-1].Upper {
			return nil, fmt.Errorf("table: partition bounds of %q must be strictly increasing (%q: %g after %g)",
				name, r.Name, r.Upper, ranges[i-1].Upper)
		}
	}
	return &PartitionedTable{
		Name:   name,
		schema: schema,
		column: column,
		colIdx: idx,
		ranges: append([]RangePartition(nil), ranges...),
		parts:  make([]*Table, len(ranges)),
	}, nil
}

func sameSchema(a, b *Schema) error {
	if len(a.Cols) != len(b.Cols) {
		return fmt.Errorf("schema has %d columns, want %d", len(b.Cols), len(a.Cols))
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return fmt.Errorf("column %d is %v, want %v", i, b.Cols[i], a.Cols[i])
		}
	}
	return nil
}

// PartitionTableName is the catalog name of one partition's child table.
func PartitionTableName(table, part string) string { return table + "#" + part }

// Schema returns the shared schema.
func (pt *PartitionedTable) Schema() *Schema { return pt.schema }

// Column returns the partition column name.
func (pt *PartitionedTable) Column() string { return pt.column }

// Ranges returns the partition declarations in range order.
func (pt *PartitionedTable) Ranges() []RangePartition {
	return append([]RangePartition(nil), pt.ranges...)
}

// NumParts returns the partition count.
func (pt *PartitionedTable) NumParts() int { return len(pt.parts) }

// Part returns the i-th partition's child table.
func (pt *PartitionedTable) Part(i int) *Table { return pt.parts[i] }

// Partitions returns the child tables in range order.
func (pt *PartitionedTable) Partitions() []*Table {
	return append([]*Table(nil), pt.parts...)
}

// NumRows is the total row count across partitions.
func (pt *PartitionedTable) NumRows() int {
	n := 0
	for _, p := range pt.parts {
		n += p.NumRows()
	}
	return n
}

// bounds returns partition i's half-open range [lo, hi).
func (pt *PartitionedTable) bounds(i int) (lo, hi float64) {
	lo = math.Inf(-1)
	if i > 0 {
		lo = pt.ranges[i-1].Upper
	}
	hi = math.Inf(1)
	if !pt.ranges[i].Max {
		hi = pt.ranges[i].Upper
	}
	return lo, hi
}

// Route returns the partition index admitting a partition-column value.
func (pt *PartitionedTable) Route(v float64) (int, error) {
	if math.IsNaN(v) {
		return 0, fmt.Errorf("table %s: %w: NaN", pt.Name, ErrNoPartition)
	}
	i := sort.Search(len(pt.ranges), func(i int) bool {
		return pt.ranges[i].Max || v < pt.ranges[i].Upper
	})
	if i >= len(pt.ranges) {
		return 0, fmt.Errorf("table %s: %w: %g (last bound is %g; add a MAXVALUE partition)",
			pt.Name, ErrNoPartition, v, pt.ranges[len(pt.ranges)-1].Upper)
	}
	return i, nil
}

// RouteRows splits schema-aligned rows into per-partition batches, in
// partition order, preserving the arrival order within each batch. Every row
// is routed before anything is returned, so an unroutable row (NULL,
// non-numeric or out-of-range partition key, short row) rejects the whole
// batch and nothing is appended.
func (pt *PartitionedTable) RouteRows(rows [][]expr.Value) ([][][]expr.Value, error) {
	out := make([][][]expr.Value, len(pt.parts))
	for r, row := range rows {
		if pt.colIdx >= len(row) {
			return nil, fmt.Errorf("table %s: row %d has %d values, schema has %d", pt.Name, r, len(row), len(pt.schema.Cols))
		}
		v := row[pt.colIdx]
		if v.IsNull() {
			return nil, fmt.Errorf("table %s: row %d: partition column %q is NULL", pt.Name, r, pt.column)
		}
		f, err := v.AsFloat()
		if err != nil {
			return nil, fmt.Errorf("table %s: row %d: partition column %q: %w", pt.Name, r, pt.column, err)
		}
		i, err := pt.Route(f)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", r, err)
		}
		out[i] = append(out[i], row)
	}
	return out, nil
}

// AppendRows routes and appends a batch, one child-table lock acquisition
// per touched partition. It returns the number of rows appended. Routing
// errors reject the batch before anything lands; a child append error leaves
// earlier partitions' rows in place (ingestion is append-only).
func (pt *PartitionedTable) AppendRows(rows [][]expr.Value) (int, error) {
	batches, err := pt.RouteRows(rows)
	if err != nil {
		return 0, err
	}
	total := 0
	for i, b := range batches {
		if len(b) == 0 {
			continue
		}
		n, err := pt.parts[i].AppendRows(b)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Bound is one side of an interval derived from a predicate: Set marks a
// constraint present, Strict marks it exclusive.
type Bound struct {
	F      float64
	Strict bool
	Set    bool
}

// tightenLo keeps the stronger of two lower bounds.
func tightenLo(a, b Bound) Bound {
	if !a.Set {
		return b
	}
	if !b.Set {
		return a
	}
	if b.F > a.F || (b.F == a.F && b.Strict) {
		return b
	}
	return a
}

// tightenHi keeps the stronger of two upper bounds.
func tightenHi(a, b Bound) Bound {
	if !a.Set {
		return b
	}
	if !b.Set {
		return a
	}
	if b.F < a.F || (b.F == a.F && b.Strict) {
		return b
	}
	return a
}

// PredBounds extracts the interval a predicate's top-level AND tree implies
// for one column (matched unqualified or qualified with tableName).
// Conjuncts it cannot analyze — ORs, function calls, parameters, columns of
// other tables — contribute nothing, so the result is always a sound
// over-approximation: every row satisfying pred has the column inside
// [lo, hi].
func PredBounds(pred expr.Expr, col, tableName string) (lo, hi Bound) {
	if pred == nil {
		return
	}
	b, ok := pred.(*expr.Binary)
	if !ok {
		return
	}
	matches := func(e expr.Expr) bool {
		id, ok := e.(*expr.Ident)
		return ok && (id.Name == col || id.Name == tableName+"."+col)
	}
	// litVal converts a comparison literal to the float domain pruning and
	// routing operate in. sharp reports whether strict comparisons stay
	// strict in that domain: row filters compare BIGINT values as exact
	// int64, while routing converts keys through float64 — beyond 2^53
	// distinct ints collapse onto one float, so a row with k < L can route
	// into the partition starting exactly at float64(L). Demoting the bound
	// to inclusive there keeps pruning a sound over-approximation.
	litVal := func(e expr.Expr) (f float64, sharp, ok bool) {
		l, ok2 := e.(*expr.Lit)
		if !ok2 || l.Val.IsNull() {
			return 0, false, false
		}
		f, err := l.Val.AsFloat()
		if err != nil {
			return 0, false, false
		}
		sharp = l.Val.K != expr.KindInt || (l.Val.I < 1<<53 && l.Val.I > -(1<<53))
		return f, sharp, true
	}
	switch b.Op {
	case expr.OpAnd:
		llo, lhi := PredBounds(b.L, col, tableName)
		rlo, rhi := PredBounds(b.R, col, tableName)
		return tightenLo(llo, rlo), tightenHi(lhi, rhi)
	case expr.OpEq, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe:
		op := b.Op
		var f float64
		var sharp, ok bool
		if matches(b.L) {
			f, sharp, ok = litVal(b.R)
		} else if matches(b.R) {
			if f, sharp, ok = litVal(b.L); ok {
				// literal OP col — flip to col OP' literal.
				switch op {
				case expr.OpLt:
					op = expr.OpGt
				case expr.OpLe:
					op = expr.OpGe
				case expr.OpGt:
					op = expr.OpLt
				case expr.OpGe:
					op = expr.OpLe
				}
			}
		}
		if !ok {
			return
		}
		switch op {
		case expr.OpEq:
			lo = Bound{F: f, Set: true}
			hi = Bound{F: f, Set: true}
		case expr.OpLt:
			hi = Bound{F: f, Strict: sharp, Set: true}
		case expr.OpLe:
			hi = Bound{F: f, Set: true}
		case expr.OpGt:
			lo = Bound{F: f, Strict: sharp, Set: true}
		case expr.OpGe:
			lo = Bound{F: f, Set: true}
		}
	}
	return
}

// PruneBounds returns the indexes of partitions whose range can intersect
// [lo, hi]; unset bounds leave that side unconstrained. Pruning is
// conservative: a partition is dropped only when its range provably cannot
// contain a qualifying value.
func (pt *PartitionedTable) PruneBounds(lo, hi Bound) []int {
	var keep []int
	for i := range pt.parts {
		plo, phi := pt.bounds(i)
		// Partition holds values in [plo, phi).
		if lo.Set && phi <= lo.F {
			continue // everything in the partition is below the lower bound
		}
		if hi.Set {
			if plo > hi.F || (hi.Strict && plo >= hi.F) {
				continue // everything in the partition is above the upper bound
			}
		}
		keep = append(keep, i)
	}
	return keep
}

// PruneExpr prunes with the bounds a WHERE predicate implies for the
// partition column. A nil predicate keeps every partition.
func (pt *PartitionedTable) PruneExpr(where expr.Expr, tableName string) []int {
	lo, hi := PredBounds(where, pt.column, tableName)
	return pt.PruneBounds(lo, hi)
}
