package table

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"datalaws/internal/expr"
	"datalaws/internal/storage"
)

// withChunkRows shrinks the seal threshold for tables created inside the
// test, restoring it when the test ends. It must run before the fixture is
// built: the threshold is captured at New.
func withChunkRows(t *testing.T, n int) {
	t.Helper()
	old := DefaultChunkRows
	DefaultChunkRows = n
	t.Cleanup(func() { DefaultChunkRows = old })
}

func chunkFixtureSchema(t *testing.T) *Schema {
	t.Helper()
	schema, err := NewSchema(
		ColumnDef{Name: "id", Type: storage.TypeInt64},
		ColumnDef{Name: "x", Type: storage.TypeFloat64},
		ColumnDef{Name: "s", Type: storage.TypeString},
		ColumnDef{Name: "b", Type: storage.TypeBool},
	)
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

// chunkFixtureRow generates row i deterministically; some rows carry NULLs
// so seal/decode must round-trip bitmaps, and x mixes a linear trend with
// noise so several encodings stay in play.
func chunkFixtureRow(i int) []expr.Value {
	row := []expr.Value{
		expr.Int(int64(i)),
		expr.Float(3.5*float64(i) + float64(i%7)),
		expr.Str(fmt.Sprintf("s%d", i%5)),
		expr.Bool(i%3 == 0),
	}
	if i%11 == 3 {
		row[1] = expr.Null()
	}
	if i%13 == 5 {
		row[2] = expr.Null()
	}
	return row
}

func buildChunkFixture(t *testing.T, rows int) *Table {
	t.Helper()
	tb := New("cf", chunkFixtureSchema(t))
	batch := make([][]expr.Value, rows)
	for i := range batch {
		batch[i] = chunkFixtureRow(i)
	}
	if n, err := tb.AppendRows(batch); err != nil || n != rows {
		t.Fatalf("append: %d, %v", n, err)
	}
	return tb
}

// TestSealingAndAccessors pins the two-tier shape (rows/chunkRows sealed
// chunks plus a hot tail) and that every accessor agrees with the appended
// data across seal boundaries.
func TestSealingAndAccessors(t *testing.T) {
	withChunkRows(t, 8)
	const rows = 35
	tb := buildChunkFixture(t, rows)

	if got := tb.NumRows(); got != rows {
		t.Fatalf("NumRows = %d, want %d", got, rows)
	}
	v := tb.Chunks()
	if v.NumSealed() != 4 {
		t.Fatalf("NumSealed = %d, want 4", v.NumSealed())
	}
	if v.NumChunks() != 5 {
		t.Fatalf("NumChunks = %d, want 5 (4 sealed + tail)", v.NumChunks())
	}
	if tb.NumChunks() != 5 {
		t.Fatalf("Table.NumChunks = %d, want 5", tb.NumChunks())
	}

	// Row crosses seal boundaries.
	for i := 0; i < rows; i++ {
		want := chunkFixtureRow(i)
		got := tb.Row(i)
		for c := range want {
			if !sameVal(got[c], want[c]) {
				t.Fatalf("Row(%d) col %d = %v, want %v", i, c, got[c], want[c])
			}
		}
	}

	// Materialized columns concatenate all chunks.
	idCol := tb.Column("id")
	if idCol.Len() != rows {
		t.Fatalf("Column(id).Len = %d, want %d", idCol.Len(), rows)
	}
	for i := 0; i < rows; i++ {
		if got := idCol.(*storage.Int64Column).Vals[i]; got != int64(i) {
			t.Fatalf("id[%d] = %d", i, got)
		}
	}

	// View sees a consistent whole-table materialization.
	if err := tb.View(func(cols []storage.Column, n int) error {
		if n != rows {
			t.Fatalf("View rows = %d, want %d", n, rows)
		}
		for _, c := range cols {
			if c.Len() != rows {
				t.Fatalf("View column len = %d, want %d", c.Len(), rows)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Head spans the first seal boundary and reports the total.
	head, total := tb.Head(10)
	if total != rows || len(head) != 10 {
		t.Fatalf("Head = %d rows, total %d", len(head), total)
	}
	if !sameVal(head[9][0], expr.Int(9)) {
		t.Fatalf("Head row 9 id = %v", head[9][0])
	}

	// IntColumn on the null-free id column.
	ids, err := tb.IntColumn("id")
	if err != nil || len(ids) != rows {
		t.Fatalf("IntColumn: %v, %d vals", err, len(ids))
	}
	// FloatColumn must refuse the NULL-bearing x — and the zone maps answer
	// without decoding.
	if _, err := tb.FloatColumn("x"); err == nil {
		t.Fatal("FloatColumn(x) should fail: column has NULLs")
	}
}

// TestZoneMapSurvivors pins pruning: with ascending ids, a lower-bound
// predicate keeps only the top chunks; the tail always survives.
func TestZoneMapSurvivors(t *testing.T) {
	withChunkRows(t, 8)
	tb := buildChunkFixture(t, 35) // chunks: [0..7][8..15][16..23][24..31] + tail [32..34]

	parse := func(src string) expr.Expr {
		e, err := expr.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		return e
	}
	v := tb.Chunks()
	cases := []struct {
		pred string
		want []int
	}{
		{"id >= 24", []int{3, 4}},
		{"id < 8", []int{0, 4}},
		{"id > 7 AND id <= 16", []int{1, 2, 4}},
		{"cf.id = 20", []int{2, 4}},
		{"id > 100", []int{4}},             // everything sealed pruned; tail stays
		{"s = 's3'", []int{0, 1, 2, 3, 4}}, // non-numeric: no pruning
	}
	for _, tc := range cases {
		got := v.Survivors(parse(tc.pred), "cf")
		if len(got) != len(tc.want) {
			t.Fatalf("Survivors(%q) = %v, want %v", tc.pred, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("Survivors(%q) = %v, want %v", tc.pred, got, tc.want)
			}
		}
	}
	if got := v.Survivors(nil, "cf"); len(got) != 5 {
		t.Fatalf("Survivors(nil) = %v, want all 5", got)
	}
}

// TestZoneMapNullChunk: a chunk whose column is entirely NULL (or NaN) has
// no bounds and is pruned by any range predicate — NULL never satisfies a
// comparison.
func TestZoneMapNullChunk(t *testing.T) {
	withChunkRows(t, 4)
	schema, err := NewSchema(ColumnDef{Name: "x", Type: storage.TypeFloat64})
	if err != nil {
		t.Fatal(err)
	}
	tb := New("nn", schema)
	rows := [][]expr.Value{
		{expr.Null()}, {expr.Null()}, {expr.Float(math.NaN())}, {expr.Null()}, // chunk 0: unbounded
		{expr.Float(1)}, {expr.Float(2)}, {expr.Float(3)}, {expr.Float(4)}, // chunk 1
	}
	if _, err := tb.AppendRows(rows); err != nil {
		t.Fatal(err)
	}
	pred, err := expr.Parse("x > 0")
	if err != nil {
		t.Fatal(err)
	}
	got := tb.Chunks().Survivors(pred, "nn")
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Survivors = %v, want [1]", got)
	}
}

// TestZoneMapInt64Precision: int64 zone bounds beyond 2^53 widen outward so
// pruning stays sound despite float64 rounding.
func TestZoneMapInt64Precision(t *testing.T) {
	withChunkRows(t, 2)
	schema, err := NewSchema(ColumnDef{Name: "k", Type: storage.TypeInt64})
	if err != nil {
		t.Fatal(err)
	}
	tb := New("big", schema)
	const huge = int64(1<<53 + 1) // float64(huge) rounds DOWN to 2^53
	if _, err := tb.AppendRows([][]expr.Value{{expr.Int(huge)}, {expr.Int(huge)}}); err != nil {
		t.Fatal(err)
	}
	// The predicate k >= 2^53+1 must keep the chunk: its true max is 2^53+1
	// even though the rounded float max says 2^53.
	pred := &expr.Binary{Op: expr.OpGe, L: &expr.Ident{Name: "k"}, R: &expr.Lit{Val: expr.Int(huge)}}
	if got := tb.Chunks().Survivors(pred, "big"); len(got) != 1 {
		t.Fatalf("Survivors = %v, want the chunk kept", got)
	}
}

// TestChunkCacheBudget: a scan over a table whose decoded size is several
// times the cache budget completes correctly while the cache never retains
// more than the budget.
func TestChunkCacheBudget(t *testing.T) {
	withChunkRows(t, 64)
	schema, err := NewSchema(
		ColumnDef{Name: "id", Type: storage.TypeInt64},
		ColumnDef{Name: "x", Type: storage.TypeFloat64},
	)
	if err != nil {
		t.Fatal(err)
	}
	tb := New("lrg", schema)
	const rows = 64 * 32 // 32 sealed chunks, raw 64*16 = 1 KiB each
	batch := make([][]expr.Value, rows)
	for i := range batch {
		batch[i] = []expr.Value{expr.Int(int64(i)), expr.Float(float64(i) * 0.5)}
	}
	if _, err := tb.AppendRows(batch); err != nil {
		t.Fatal(err)
	}
	raw := tb.RawSizeBytes()
	budget := int64(raw / 4)
	SetChunkCacheBudget(budget)
	t.Cleanup(func() { SetChunkCacheBudget(DefaultChunkCacheBytes) })
	ResetCacheStats()

	// Two full passes: the working set exceeds the budget, so the second
	// pass still misses (the cache cannot hold everything), yet every value
	// comes back right.
	for pass := 0; pass < 2; pass++ {
		var sum float64
		v := tb.Chunks()
		for k := 0; k < v.NumChunks(); k++ {
			cols, err := v.Columns(k)
			if err != nil {
				t.Fatal(err)
			}
			for _, x := range cols[1].(*storage.Float64Column).Vals[:v.ChunkLen(k)] {
				sum += x
			}
		}
		want := 0.5 * float64(rows) * float64(rows-1) / 2
		if sum != want {
			t.Fatalf("pass %d: sum = %v, want %v", pass, sum, want)
		}
	}
	st := CacheStats()
	if st.Used > st.Budget {
		t.Fatalf("cache retains %d bytes over budget %d", st.Used, st.Budget)
	}
	if st.Evictions == 0 {
		t.Fatalf("expected evictions with budget %d over raw %d; stats %+v", budget, raw, st)
	}
	if st.Misses == 0 {
		t.Fatal("expected decode misses")
	}
}

// TestChunkCacheDisabled: budget 0 still serves reads (uncached).
func TestChunkCacheDisabled(t *testing.T) {
	withChunkRows(t, 8)
	SetChunkCacheBudget(0)
	t.Cleanup(func() { SetChunkCacheBudget(DefaultChunkCacheBytes) })
	tb := buildChunkFixture(t, 20)
	v := tb.Chunks()
	for k := 0; k < v.NumChunks(); k++ {
		if _, err := v.Columns(k); err != nil {
			t.Fatal(err)
		}
	}
	if st := CacheStats(); st.Used != 0 || st.Entries != 0 {
		t.Fatalf("disabled cache retained %+v", st)
	}
}

// TestChunkViewStableUnderAppend: a captured view must not see rows
// appended after capture, even across a seal of the tail it snapshotted.
func TestChunkViewStableUnderAppend(t *testing.T) {
	withChunkRows(t, 8)
	tb := buildChunkFixture(t, 12) // 1 sealed + tail of 4
	v := tb.Chunks()
	if v.Rows() != 12 || v.NumChunks() != 2 {
		t.Fatalf("view: %d rows, %d chunks", v.Rows(), v.NumChunks())
	}
	// Push the tail over the seal threshold.
	for i := 12; i < 30; i++ {
		if err := tb.AppendRow(chunkFixtureRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if v.Rows() != 12 {
		t.Fatalf("view grew to %d rows", v.Rows())
	}
	cols, err := v.Columns(1) // the captured tail
	if err != nil {
		t.Fatal(err)
	}
	if cols[0].Len() != 4 {
		t.Fatalf("captured tail has %d rows, want 4", cols[0].Len())
	}
	for i := 0; i < 4; i++ {
		if got := cols[0].(*storage.Int64Column).Vals[i]; got != int64(8+i) {
			t.Fatalf("tail id[%d] = %d, want %d", i, got, 8+i)
		}
	}
}

// TestPersistRoundTripChunked: DLTB2 write → read preserves every row
// bit-for-bit, the chunk layout, the seal threshold, and the encoded frames
// verbatim; the loaded table keeps absorbing appends.
func TestPersistRoundTripChunked(t *testing.T) {
	withChunkRows(t, 8)
	tb := buildChunkFixture(t, 35)
	var buf bytes.Buffer
	if err := WriteBinary(tb, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 35 || back.chunkRows != 8 {
		t.Fatalf("loaded: %d rows, chunkRows %d", back.NumRows(), back.chunkRows)
	}
	bv, ov := back.Chunks(), tb.Chunks()
	if bv.NumSealed() != ov.NumSealed() || bv.NumChunks() != ov.NumChunks() {
		t.Fatalf("chunk layout changed: %d/%d vs %d/%d", bv.NumSealed(), bv.NumChunks(), ov.NumSealed(), ov.NumChunks())
	}
	if back.EncodedSizeBytes() != tb.EncodedSizeBytes() {
		t.Fatalf("encoded bytes %d vs %d: frames not verbatim", back.EncodedSizeBytes(), tb.EncodedSizeBytes())
	}
	for i := 0; i < 35; i++ {
		want, got := tb.Row(i), back.Row(i)
		for c := range want {
			if !sameVal(got[c], want[c]) {
				t.Fatalf("row %d col %d: %v vs %v", i, c, got[c], want[c])
			}
		}
	}
	// The loaded table seals like the original (threshold came from the file).
	for i := 35; i < 48; i++ {
		if err := back.AppendRow(chunkFixtureRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := back.Chunks().NumSealed(); got != 6 {
		t.Fatalf("post-load sealing: %d sealed, want 6", got)
	}
}

// TestPersistRoundTripExoticFloats: NaN payloads and signed zeros survive
// the seal → persist → load path bit-exactly (the linear/XOR codecs store
// residuals as bit XORs, never arithmetic differences).
func TestPersistRoundTripExoticFloats(t *testing.T) {
	withChunkRows(t, 4)
	schema, err := NewSchema(ColumnDef{Name: "x", Type: storage.TypeFloat64})
	if err != nil {
		t.Fatal(err)
	}
	tb := New("fx", schema)
	bitsIn := []uint64{
		0x7FF8000000000001, // NaN with payload
		0xFFF8000000000000, // negative NaN
		math.Float64bits(math.Inf(1)),
		0x8000000000000000, // -0
		math.Float64bits(1.5),
		math.Float64bits(-2.5),
		0x7FF0000000000001, // signaling-NaN pattern
		math.Float64bits(5e-324),
	}
	rows := make([][]expr.Value, len(bitsIn))
	for i, b := range bitsIn {
		rows[i] = []expr.Value{expr.Float(math.Float64frombits(b))}
	}
	if _, err := tb.AppendRows(rows); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(tb, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	col := back.Column("x").(*storage.Float64Column)
	for i, want := range bitsIn {
		if got := math.Float64bits(col.Vals[i]); got != want {
			t.Fatalf("row %d: bits %016x, want %016x", i, got, want)
		}
	}
}

// TestPersistLegacyV1: the old flat DLTB1 format still loads, re-sealing
// under the current chunk budget.
func TestPersistLegacyV1(t *testing.T) {
	withChunkRows(t, 8)
	// Hand-encode a v1 stream: magic | name | ncols | per-col name+frame.
	ic := storage.NewInt64Column()
	fc := storage.NewFloat64Column()
	for i := 0; i < 20; i++ {
		ic.Append(int64(i))
		fc.Append(float64(i) * 1.5)
	}
	var buf bytes.Buffer
	buf.WriteString("DLTB1")
	writeBytes(&buf, []byte("legacy"))
	writeUvarint(&buf, 2)
	writeBytes(&buf, []byte("id"))
	writeBytes(&buf, storage.EncodeColumn(ic))
	writeBytes(&buf, []byte("x"))
	writeBytes(&buf, storage.EncodeColumn(fc))

	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "legacy" || back.NumRows() != 20 {
		t.Fatalf("loaded %q with %d rows", back.Name, back.NumRows())
	}
	if got := back.Chunks().NumSealed(); got != 2 {
		t.Fatalf("re-seal: %d sealed chunks, want 2", got)
	}
	for i := 0; i < 20; i++ {
		row := back.Row(i)
		if !sameVal(row[0], expr.Int(int64(i))) || !sameVal(row[1], expr.Float(float64(i)*1.5)) {
			t.Fatalf("row %d = %v", i, row)
		}
	}
}

// sameVal compares boxed values bit-exactly for floats.
func sameVal(a, b expr.Value) bool {
	if a.K != b.K {
		return false
	}
	if a.K == expr.KindFloat {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		return math.Float64bits(af) == math.Float64bits(bf)
	}
	return a.String() == b.String()
}
