package table

import (
	"bytes"
	"strings"
	"testing"

	"datalaws/internal/expr"
	"datalaws/internal/storage"
)

func lofarSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		ColumnDef{Name: "source", Type: storage.TypeInt64},
		ColumnDef{Name: "nu", Type: storage.TypeFloat64},
		ColumnDef{Name: "intensity", Type: storage.TypeFloat64},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustSchema(t *testing.T, cols ...ColumnDef) *Schema {
	t.Helper()
	s, err := NewSchema(cols...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(ColumnDef{Name: "a"}, ColumnDef{Name: "a"}); err == nil {
		t.Fatal("want duplicate error")
	}
	if _, err := NewSchema(ColumnDef{Name: ""}); err == nil {
		t.Fatal("want empty-name error")
	}
	s := lofarSchema(t)
	if s.Index("nu") != 1 || s.Index("missing") != -1 {
		t.Fatal("Index")
	}
	if got := s.Names(); got[0] != "source" || len(got) != 3 {
		t.Fatalf("Names = %v", got)
	}
}

func TestAppendAndRead(t *testing.T) {
	tb := New("measurements", lofarSchema(t))
	rows := [][]expr.Value{
		{expr.Int(1), expr.Float(0.12), expr.Float(2.3)},
		{expr.Int(1), expr.Float(0.15), expr.Float(2.1)},
		{expr.Int(2), expr.Float(0.12), expr.Null()},
	}
	for _, r := range rows {
		if err := tb.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	if tb.NumRows() != 3 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	got := tb.Row(1)
	if got[0].I != 1 || got[1].F != 0.15 {
		t.Fatalf("Row(1) = %v", got)
	}
	if !tb.Row(2)[2].IsNull() {
		t.Fatal("NULL lost")
	}
}

func TestAppendRowWrongArity(t *testing.T) {
	tb := New("m", lofarSchema(t))
	if err := tb.AppendRow([]expr.Value{expr.Int(1)}); err == nil {
		t.Fatal("want arity error")
	}
}

func TestAppendRowTypeErrorRollsBack(t *testing.T) {
	tb := New("m", lofarSchema(t))
	err := tb.AppendRow([]expr.Value{expr.Int(1), expr.Str("bad"), expr.Float(1)})
	if err == nil {
		t.Fatal("want type error")
	}
	if tb.NumRows() != 0 {
		t.Fatalf("rows = %d after failed append", tb.NumRows())
	}
	// Columns must stay aligned for subsequent appends.
	if err := tb.AppendRow([]expr.Value{expr.Int(1), expr.Float(0.1), expr.Float(2)}); err != nil {
		t.Fatal(err)
	}
	if tb.Column("source").Len() != 1 || tb.Column("nu").Len() != 1 {
		t.Fatal("columns misaligned after rollback")
	}
}

func TestVersionBumpsOnAppend(t *testing.T) {
	tb := New("m", lofarSchema(t))
	v0 := tb.Version()
	tb.AppendRow([]expr.Value{expr.Int(1), expr.Float(0.1), expr.Float(2)})
	if tb.Version() <= v0 {
		t.Fatal("version did not advance")
	}
}

func TestFloatColumnExtraction(t *testing.T) {
	tb := New("m", lofarSchema(t))
	tb.AppendRow([]expr.Value{expr.Int(5), expr.Float(0.12), expr.Float(2.5)})
	tb.AppendRow([]expr.Value{expr.Int(6), expr.Float(0.15), expr.Float(2.7)})
	fs, err := tb.FloatColumn("nu")
	if err != nil || len(fs) != 2 || fs[1] != 0.15 {
		t.Fatalf("FloatColumn: %v %v", fs, err)
	}
	// Int column coerces.
	fs, err = tb.FloatColumn("source")
	if err != nil || fs[0] != 5 {
		t.Fatalf("int coercion: %v %v", fs, err)
	}
	is, err := tb.IntColumn("source")
	if err != nil || is[1] != 6 {
		t.Fatalf("IntColumn: %v %v", is, err)
	}
	if _, err := tb.FloatColumn("missing"); err == nil {
		t.Fatal("want missing-column error")
	}
	if _, err := tb.IntColumn("nu"); err == nil {
		t.Fatal("want type error")
	}
}

func TestFloatColumnRejectsNulls(t *testing.T) {
	tb := New("m", lofarSchema(t))
	tb.AppendRow([]expr.Value{expr.Int(1), expr.Null(), expr.Float(1)})
	if _, err := tb.FloatColumn("nu"); err == nil {
		t.Fatal("want NULL error")
	}
}

func TestRawSizeBytes(t *testing.T) {
	tb := New("m", lofarSchema(t))
	for i := 0; i < 100; i++ {
		tb.AppendRow([]expr.Value{expr.Int(int64(i)), expr.Float(0.1), expr.Float(2)})
	}
	// 3 columns × 8 bytes × 100 rows.
	if got := tb.RawSizeBytes(); got != 2400 {
		t.Fatalf("RawSizeBytes = %d, want 2400", got)
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	s := lofarSchema(t)
	tb, err := c.Create("m", s)
	if err != nil || tb == nil {
		t.Fatal(err)
	}
	if _, err := c.Create("m", s); err == nil {
		t.Fatal("want duplicate error")
	}
	got, ok := c.Get("m")
	if !ok || got != tb {
		t.Fatal("Get")
	}
	if len(c.Names()) != 1 {
		t.Fatal("Names")
	}
	if !c.Drop("m") || c.Drop("m") {
		t.Fatal("Drop")
	}
	other := New("x", s)
	if err := c.Add(other); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(other); err == nil {
		t.Fatal("want duplicate on Add")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	in := "source,nu,intensity,label\n1,0.12,2.31,alpha\n2,0.15,,beta\n3,0.16,1.59,\n"
	tb, err := ReadCSV("m", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 3 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	sch := tb.Schema()
	if sch.Cols[0].Type != storage.TypeInt64 {
		t.Fatalf("source type = %v", sch.Cols[0].Type)
	}
	if sch.Cols[1].Type != storage.TypeFloat64 {
		t.Fatalf("nu type = %v", sch.Cols[1].Type)
	}
	if sch.Cols[3].Type != storage.TypeString {
		t.Fatalf("label type = %v", sch.Cols[3].Type)
	}
	if !tb.Row(1)[2].IsNull() {
		t.Fatal("empty field must be NULL")
	}
	var buf bytes.Buffer
	if err := WriteCSV(tb, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("m2", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tb.NumRows() {
		t.Fatal("row count changed")
	}
	for i := 0; i < 3; i++ {
		a, b := tb.Row(i), back.Row(i)
		for c := range a {
			if a[c].IsNull() != b[c].IsNull() {
				t.Fatalf("null mismatch row %d col %d", i, c)
			}
			if !a[c].IsNull() && !expr.Equal(a[c], b[c]) {
				t.Fatalf("value mismatch row %d col %d: %v vs %v", i, c, a[c], b[c])
			}
		}
	}
}

func TestCSVBoolInference(t *testing.T) {
	in := "flag\ntrue\nfalse\ntrue\n"
	tb, err := ReadCSV("f", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Schema().Cols[0].Type != storage.TypeBool {
		t.Fatalf("type = %v", tb.Schema().Cols[0].Type)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", strings.NewReader("")); err == nil {
		t.Fatal("want error for empty input")
	}
	if _, err := ReadCSV("x", strings.NewReader("a,b\n1\n")); err == nil {
		t.Fatal("want error for ragged row")
	}
}

func TestAppendRowsBatch(t *testing.T) {
	tb := New("t", mustSchema(t,
		ColumnDef{Name: "a", Type: storage.TypeInt64},
		ColumnDef{Name: "b", Type: storage.TypeFloat64},
	))
	v0 := tb.Version()
	rows := [][]expr.Value{
		{expr.Int(1), expr.Float(1.5)},
		{expr.Int(2), expr.Float(2.5)},
		{expr.Int(3), expr.Float(3.5)},
	}
	n, err := tb.AppendRows(rows)
	if err != nil || n != 3 {
		t.Fatalf("AppendRows = %d, %v", n, err)
	}
	if tb.NumRows() != 3 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	// One version bump per batch, not per row.
	if tb.Version() != v0+1 {
		t.Fatalf("version = %d, want %d", tb.Version(), v0+1)
	}
	// Empty batch: no bump.
	if n, err := tb.AppendRows(nil); err != nil || n != 0 {
		t.Fatalf("empty batch = %d, %v", n, err)
	}
	if tb.Version() != v0+1 {
		t.Fatal("empty batch bumped version")
	}
}

func TestAppendRowsPartialFailure(t *testing.T) {
	tb := New("t", mustSchema(t,
		ColumnDef{Name: "a", Type: storage.TypeInt64},
	))
	rows := [][]expr.Value{
		{expr.Int(1)},
		{expr.Str("nope")}, // type error
		{expr.Int(3)},
	}
	n, err := tb.AppendRows(rows)
	if err == nil || n != 1 {
		t.Fatalf("AppendRows = %d, %v", n, err)
	}
	// The prefix persists, columns stay aligned, and the version moved
	// because data changed.
	if tb.NumRows() != 1 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if tb.Version() == 0 {
		t.Fatal("partial batch should bump version")
	}
}

func TestCatalogEpoch(t *testing.T) {
	c := NewCatalog()
	e0 := c.Epoch()
	if _, err := c.Create("t", mustSchema(t, ColumnDef{Name: "a", Type: storage.TypeInt64})); err != nil {
		t.Fatal(err)
	}
	if c.Epoch() == e0 {
		t.Fatal("create did not bump epoch")
	}
	e1 := c.Epoch()
	if !c.Drop("t") {
		t.Fatal("drop failed")
	}
	if c.Epoch() == e1 {
		t.Fatal("drop did not bump epoch")
	}
	// Failed operations leave the epoch alone.
	e2 := c.Epoch()
	if c.Drop("missing") {
		t.Fatal("dropped a missing table")
	}
	if c.Epoch() != e2 {
		t.Fatal("failed drop bumped epoch")
	}
}
