package table

import (
	"bytes"
	"strings"
	"testing"

	"datalaws/internal/expr"
	"datalaws/internal/storage"
)

func lofarSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		ColumnDef{Name: "source", Type: storage.TypeInt64},
		ColumnDef{Name: "nu", Type: storage.TypeFloat64},
		ColumnDef{Name: "intensity", Type: storage.TypeFloat64},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(ColumnDef{Name: "a"}, ColumnDef{Name: "a"}); err == nil {
		t.Fatal("want duplicate error")
	}
	if _, err := NewSchema(ColumnDef{Name: ""}); err == nil {
		t.Fatal("want empty-name error")
	}
	s := lofarSchema(t)
	if s.Index("nu") != 1 || s.Index("missing") != -1 {
		t.Fatal("Index")
	}
	if got := s.Names(); got[0] != "source" || len(got) != 3 {
		t.Fatalf("Names = %v", got)
	}
}

func TestAppendAndRead(t *testing.T) {
	tb := New("measurements", lofarSchema(t))
	rows := [][]expr.Value{
		{expr.Int(1), expr.Float(0.12), expr.Float(2.3)},
		{expr.Int(1), expr.Float(0.15), expr.Float(2.1)},
		{expr.Int(2), expr.Float(0.12), expr.Null()},
	}
	for _, r := range rows {
		if err := tb.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	if tb.NumRows() != 3 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	got := tb.Row(1)
	if got[0].I != 1 || got[1].F != 0.15 {
		t.Fatalf("Row(1) = %v", got)
	}
	if !tb.Row(2)[2].IsNull() {
		t.Fatal("NULL lost")
	}
}

func TestAppendRowWrongArity(t *testing.T) {
	tb := New("m", lofarSchema(t))
	if err := tb.AppendRow([]expr.Value{expr.Int(1)}); err == nil {
		t.Fatal("want arity error")
	}
}

func TestAppendRowTypeErrorRollsBack(t *testing.T) {
	tb := New("m", lofarSchema(t))
	err := tb.AppendRow([]expr.Value{expr.Int(1), expr.Str("bad"), expr.Float(1)})
	if err == nil {
		t.Fatal("want type error")
	}
	if tb.NumRows() != 0 {
		t.Fatalf("rows = %d after failed append", tb.NumRows())
	}
	// Columns must stay aligned for subsequent appends.
	if err := tb.AppendRow([]expr.Value{expr.Int(1), expr.Float(0.1), expr.Float(2)}); err != nil {
		t.Fatal(err)
	}
	if tb.Column("source").Len() != 1 || tb.Column("nu").Len() != 1 {
		t.Fatal("columns misaligned after rollback")
	}
}

func TestVersionBumpsOnAppend(t *testing.T) {
	tb := New("m", lofarSchema(t))
	v0 := tb.Version()
	tb.AppendRow([]expr.Value{expr.Int(1), expr.Float(0.1), expr.Float(2)})
	if tb.Version() <= v0 {
		t.Fatal("version did not advance")
	}
}

func TestFloatColumnExtraction(t *testing.T) {
	tb := New("m", lofarSchema(t))
	tb.AppendRow([]expr.Value{expr.Int(5), expr.Float(0.12), expr.Float(2.5)})
	tb.AppendRow([]expr.Value{expr.Int(6), expr.Float(0.15), expr.Float(2.7)})
	fs, err := tb.FloatColumn("nu")
	if err != nil || len(fs) != 2 || fs[1] != 0.15 {
		t.Fatalf("FloatColumn: %v %v", fs, err)
	}
	// Int column coerces.
	fs, err = tb.FloatColumn("source")
	if err != nil || fs[0] != 5 {
		t.Fatalf("int coercion: %v %v", fs, err)
	}
	is, err := tb.IntColumn("source")
	if err != nil || is[1] != 6 {
		t.Fatalf("IntColumn: %v %v", is, err)
	}
	if _, err := tb.FloatColumn("missing"); err == nil {
		t.Fatal("want missing-column error")
	}
	if _, err := tb.IntColumn("nu"); err == nil {
		t.Fatal("want type error")
	}
}

func TestFloatColumnRejectsNulls(t *testing.T) {
	tb := New("m", lofarSchema(t))
	tb.AppendRow([]expr.Value{expr.Int(1), expr.Null(), expr.Float(1)})
	if _, err := tb.FloatColumn("nu"); err == nil {
		t.Fatal("want NULL error")
	}
}

func TestRawSizeBytes(t *testing.T) {
	tb := New("m", lofarSchema(t))
	for i := 0; i < 100; i++ {
		tb.AppendRow([]expr.Value{expr.Int(int64(i)), expr.Float(0.1), expr.Float(2)})
	}
	// 3 columns × 8 bytes × 100 rows.
	if got := tb.RawSizeBytes(); got != 2400 {
		t.Fatalf("RawSizeBytes = %d, want 2400", got)
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	s := lofarSchema(t)
	tb, err := c.Create("m", s)
	if err != nil || tb == nil {
		t.Fatal(err)
	}
	if _, err := c.Create("m", s); err == nil {
		t.Fatal("want duplicate error")
	}
	got, ok := c.Get("m")
	if !ok || got != tb {
		t.Fatal("Get")
	}
	if len(c.Names()) != 1 {
		t.Fatal("Names")
	}
	if !c.Drop("m") || c.Drop("m") {
		t.Fatal("Drop")
	}
	other := New("x", s)
	if err := c.Add(other); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(other); err == nil {
		t.Fatal("want duplicate on Add")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	in := "source,nu,intensity,label\n1,0.12,2.31,alpha\n2,0.15,,beta\n3,0.16,1.59,\n"
	tb, err := ReadCSV("m", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 3 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	sch := tb.Schema()
	if sch.Cols[0].Type != storage.TypeInt64 {
		t.Fatalf("source type = %v", sch.Cols[0].Type)
	}
	if sch.Cols[1].Type != storage.TypeFloat64 {
		t.Fatalf("nu type = %v", sch.Cols[1].Type)
	}
	if sch.Cols[3].Type != storage.TypeString {
		t.Fatalf("label type = %v", sch.Cols[3].Type)
	}
	if !tb.Row(1)[2].IsNull() {
		t.Fatal("empty field must be NULL")
	}
	var buf bytes.Buffer
	if err := WriteCSV(tb, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("m2", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tb.NumRows() {
		t.Fatal("row count changed")
	}
	for i := 0; i < 3; i++ {
		a, b := tb.Row(i), back.Row(i)
		for c := range a {
			if a[c].IsNull() != b[c].IsNull() {
				t.Fatalf("null mismatch row %d col %d", i, c)
			}
			if !a[c].IsNull() && !expr.Equal(a[c], b[c]) {
				t.Fatalf("value mismatch row %d col %d: %v vs %v", i, c, a[c], b[c])
			}
		}
	}
}

func TestCSVBoolInference(t *testing.T) {
	in := "flag\ntrue\nfalse\ntrue\n"
	tb, err := ReadCSV("f", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Schema().Cols[0].Type != storage.TypeBool {
		t.Fatalf("type = %v", tb.Schema().Cols[0].Type)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", strings.NewReader("")); err == nil {
		t.Fatal("want error for empty input")
	}
	if _, err := ReadCSV("x", strings.NewReader("a,b\n1\n")); err == nil {
		t.Fatal("want error for ragged row")
	}
}
