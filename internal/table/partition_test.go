package table

import (
	"errors"
	"math"
	"testing"

	"datalaws/internal/expr"
	"datalaws/internal/storage"
)

func partSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		ColumnDef{Name: "k", Type: storage.TypeInt64},
		ColumnDef{Name: "x", Type: storage.TypeFloat64},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mkParted(t *testing.T) *PartitionedTable {
	t.Helper()
	pt, err := NewPartitioned("t", partSchema(t), "k", []RangePartition{
		{Name: "p0", Upper: 10},
		{Name: "p1", Upper: 20},
		{Name: "p2", Max: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

func TestPartitionedValidation(t *testing.T) {
	s := partSchema(t)
	cases := []struct {
		name   string
		column string
		ranges []RangePartition
	}{
		{"missing column", "nope", []RangePartition{{Name: "p", Max: true}}},
		{"no partitions", "k", nil},
		{"empty name", "k", []RangePartition{{Name: "", Upper: 1}}},
		{"duplicate name", "k", []RangePartition{{Name: "p", Upper: 1}, {Name: "p", Upper: 2}}},
		{"non-increasing", "k", []RangePartition{{Name: "a", Upper: 5}, {Name: "b", Upper: 5}}},
		{"maxvalue not last", "k", []RangePartition{{Name: "a", Max: true}, {Name: "b", Upper: 5}}},
		{"double maxvalue", "k", []RangePartition{{Name: "a", Max: true}, {Name: "b", Max: true}}},
		{"nan bound", "k", []RangePartition{{Name: "a", Upper: math.NaN()}}},
	}
	for _, c := range cases {
		if _, err := NewPartitioned("t", s, c.column, c.ranges); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	// Non-numeric partition column.
	ss, err := NewSchema(ColumnDef{Name: "s", Type: storage.TypeString})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPartitioned("t", ss, "s", []RangePartition{{Name: "p", Max: true}}); err == nil {
		t.Error("string partition column: want error")
	}
}

func TestPartitionRouting(t *testing.T) {
	pt := mkParted(t)
	for _, c := range []struct {
		v    float64
		want int
	}{
		{-100, 0}, {0, 0}, {9.99, 0}, {10, 1}, {19, 1}, {20, 2}, {1e12, 2},
	} {
		got, err := pt.Route(c.v)
		if err != nil {
			t.Fatalf("Route(%g): %v", c.v, err)
		}
		if got != c.want {
			t.Errorf("Route(%g) = %d, want %d", c.v, got, c.want)
		}
	}
	if _, err := pt.Route(math.NaN()); !errors.Is(err, ErrNoPartition) {
		t.Errorf("Route(NaN) err = %v, want ErrNoPartition", err)
	}

	// Without a MAXVALUE partition, out-of-range values are rejected.
	bounded, err := NewPartitioned("b", partSchema(t), "k", []RangePartition{{Name: "p0", Upper: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bounded.Route(10); !errors.Is(err, ErrNoPartition) {
		t.Errorf("Route(10) on bounded err = %v, want ErrNoPartition", err)
	}
}

func TestPartitionAppendRoutesAndRejects(t *testing.T) {
	pt := mkParted(t)
	rows := [][]expr.Value{
		{expr.Int(1), expr.Float(0.5)},
		{expr.Int(15), expr.Float(1.5)},
		{expr.Int(99), expr.Float(2.5)},
		{expr.Int(2), expr.Float(3.5)},
	}
	n, err := pt.AppendRows(rows)
	if err != nil || n != 4 {
		t.Fatalf("AppendRows = %d, %v", n, err)
	}
	if got := pt.Part(0).NumRows(); got != 2 {
		t.Errorf("p0 rows = %d, want 2", got)
	}
	if got := pt.Part(1).NumRows(); got != 1 {
		t.Errorf("p1 rows = %d, want 1", got)
	}
	if got := pt.Part(2).NumRows(); got != 1 {
		t.Errorf("p2 rows = %d, want 1", got)
	}
	if got := pt.NumRows(); got != 4 {
		t.Errorf("NumRows = %d, want 4", got)
	}

	// A NULL partition key rejects the whole batch before anything lands.
	before := pt.NumRows()
	if _, err := pt.AppendRows([][]expr.Value{
		{expr.Int(3), expr.Float(1)},
		{expr.Null(), expr.Float(2)},
	}); err == nil {
		t.Fatal("NULL partition key: want error")
	}
	if pt.NumRows() != before {
		t.Errorf("rows appended despite routing error: %d -> %d", before, pt.NumRows())
	}
}

func TestPredBounds(t *testing.T) {
	parse := func(src string) expr.Expr {
		e, err := expr.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		return e
	}
	cases := []struct {
		src    string
		lo, hi Bound
	}{
		{"k = 5", Bound{F: 5, Set: true}, Bound{F: 5, Set: true}},
		{"k < 5", Bound{}, Bound{F: 5, Strict: true, Set: true}},
		{"k <= 5", Bound{}, Bound{F: 5, Set: true}},
		{"k > 5", Bound{F: 5, Strict: true, Set: true}, Bound{}},
		{"5 > k", Bound{}, Bound{F: 5, Strict: true, Set: true}},
		{"5 <= k", Bound{F: 5, Set: true}, Bound{}},
		{"k >= 2 AND k < 7", Bound{F: 2, Set: true}, Bound{F: 7, Strict: true, Set: true}},
		{"t.k >= 2 AND x < 3", Bound{F: 2, Set: true}, Bound{}},
		// OR and unanalyzable shapes contribute nothing.
		{"k = 5 OR k = 6", Bound{}, Bound{}},
		{"abs(k) < 5", Bound{}, Bound{}},
		{"k < x", Bound{}, Bound{}},
		// A conjunct on another table's column is ignored.
		{"o.k = 5", Bound{}, Bound{}},
	}
	for _, c := range cases {
		lo, hi := PredBounds(parse(c.src), "k", "t")
		if lo != c.lo || hi != c.hi {
			t.Errorf("PredBounds(%q) = %+v, %+v; want %+v, %+v", c.src, lo, hi, c.lo, c.hi)
		}
	}
}

func TestPruneExpr(t *testing.T) {
	pt := mkParted(t) // p0 [-inf,10) p1 [10,20) p2 [20,inf)
	parse := func(src string) expr.Expr {
		e, err := expr.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		return e
	}
	cases := []struct {
		src  string
		want []int
	}{
		{"k = 15", []int{1}},
		{"k = 10", []int{1}},
		{"k < 10", []int{0}},
		{"k <= 10", []int{0, 1}},
		{"k >= 20", []int{2}},
		{"k > 19 AND k < 21", []int{1, 2}},
		{"k >= 5 AND k < 15", []int{0, 1}},
		{"x > 3", []int{0, 1, 2}},
		{"k = 5 OR k = 25", []int{0, 1, 2}}, // OR: no pruning, conservative
	}
	for _, c := range cases {
		got := pt.PruneExpr(parse(c.src), "t")
		if len(got) != len(c.want) {
			t.Errorf("PruneExpr(%q) = %v, want %v", c.src, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("PruneExpr(%q) = %v, want %v", c.src, got, c.want)
				break
			}
		}
	}
	// nil predicate keeps everything.
	if got := pt.PruneExpr(nil, "t"); len(got) != 3 {
		t.Errorf("PruneExpr(nil) = %v, want all 3", got)
	}
}

// TestPruneHugeIntBoundsConservative: BIGINT filters compare exact int64
// while routing goes through float64, so beyond 2^53 a strict bound from
// `k < L` must demote to inclusive — otherwise a row with k < L whose key
// rounds up onto the partition boundary would be pruned away.
func TestPruneHugeIntBoundsConservative(t *testing.T) {
	const boundary = float64(1 << 53)
	pt, err := NewPartitioned("t", partSchema(t), "k", []RangePartition{
		{Name: "lo", Upper: boundary},
		{Name: "hi", Max: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	// k = 2^53 - 1 < 2^53 exactly as ints, but float64(2^53-1+...) — a row
	// key like 2^53+1 would round onto the boundary. The predicate
	// k < 9007199254740993 (2^53+1, inexact in float64) must keep BOTH
	// partitions: its float image is exactly the boundary.
	pred := &expr.Binary{Op: expr.OpLt,
		L: &expr.Ident{Name: "k"},
		R: &expr.Lit{Val: expr.Int(1<<53 + 1)},
	}
	if got := pt.PruneExpr(pred, "t"); len(got) != 2 {
		t.Fatalf("huge-int strict bound pruned a reachable partition: %v", got)
	}
	// Small ints keep sharp pruning: k < 2^53 at a small boundary…
	small, err := NewPartitioned("s", partSchema(t), "k", []RangePartition{
		{Name: "lo", Upper: 10},
		{Name: "hi", Max: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	sharp := &expr.Binary{Op: expr.OpLt,
		L: &expr.Ident{Name: "k"},
		R: &expr.Lit{Val: expr.Int(10)},
	}
	if got := small.PruneExpr(sharp, "s"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("small-int strict bound lost sharpness: %v", got)
	}
}

func TestCatalogPartitioned(t *testing.T) {
	c := NewCatalog()
	e0 := c.Epoch()
	pt, err := c.CreatePartitioned("t", partSchema(t), "k", []RangePartition{
		{Name: "p0", Upper: 10}, {Name: "p1", Max: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Epoch() == e0 {
		t.Error("CreatePartitioned did not bump the epoch")
	}
	if _, ok := c.GetPartitioned("t"); !ok {
		t.Fatal("GetPartitioned(t) not found")
	}
	if _, ok := c.Get(PartitionTableName("t", "p0")); !ok {
		t.Fatal("child table not registered")
	}
	if _, err := c.Lookup("t"); !errors.Is(err, ErrPartitioned) {
		t.Errorf("Lookup(parent) err = %v, want ErrPartitioned", err)
	}
	// Name collisions in both directions.
	if _, err := c.Create("t", partSchema(t)); err == nil {
		t.Error("Create over partitioned name: want error")
	}
	if _, err := c.CreatePartitioned("t", partSchema(t), "k", pt.Ranges()); err == nil {
		t.Error("duplicate CreatePartitioned: want error")
	}
	// Children cannot be dropped out from under the parent.
	if c.Drop(PartitionTableName("t", "p0")) {
		t.Error("Drop(child) succeeded")
	}
	// Dropping the parent cascades.
	e1 := c.Epoch()
	if !c.Drop("t") {
		t.Fatal("Drop(t) failed")
	}
	if c.Epoch() == e1 {
		t.Error("Drop did not bump the epoch")
	}
	if _, ok := c.Get(PartitionTableName("t", "p0")); ok {
		t.Error("child survived parent drop")
	}
	if _, ok := c.GetPartitioned("t"); ok {
		t.Error("parent survived drop")
	}
}
