// Package sampling implements uniform-sampling approximate query answering,
// the other classic baseline the paper cites (§1, BlinkDB-style: "only a
// subset of data is used to answer a time-critical query … predicting the
// extent of these errors is well understood"). Estimates carry CLT-based
// 95 % confidence half-widths so the S2 experiment can compare error bounds
// with the model-based path.
package sampling

import (
	"fmt"
	"math"
	"math/rand"

	"datalaws/internal/stats"
)

// Sample is a uniform random sample of a column, remembering the population
// size for scale-up estimates.
type Sample struct {
	Vals []float64
	// PopN is the population row count the sample was drawn from.
	PopN int
}

// Uniform draws a fraction-frac uniform sample (without replacement) from
// vals, deterministically under seed.
func Uniform(vals []float64, frac float64, seed int64) (*Sample, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("sampling: fraction %g outside (0,1]", frac)
	}
	n := len(vals)
	k := int(math.Round(float64(n) * frac))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(n)[:k]
	s := &Sample{Vals: make([]float64, k), PopN: n}
	for i, j := range idx {
		s.Vals[i] = vals[j]
	}
	return s, nil
}

// SizeBytes is the sample's storage footprint.
func (s *Sample) SizeBytes() int { return 8 * len(s.Vals) }

// Estimate is a point estimate with a 95 % confidence half-width.
type Estimate struct {
	Value     float64
	HalfWidth float64
}

// Mean estimates the population mean.
func (s *Sample) Mean() Estimate {
	m := stats.Mean(s.Vals)
	if len(s.Vals) < 2 {
		return Estimate{Value: m, HalfWidth: math.Inf(1)}
	}
	se := stats.StdDev(s.Vals) / math.Sqrt(float64(len(s.Vals)))
	z := stats.StdNormal.Quantile(0.975)
	return Estimate{Value: m, HalfWidth: z * se}
}

// Sum estimates the population sum by scaling the sample mean.
func (s *Sample) Sum() Estimate {
	m := s.Mean()
	f := float64(s.PopN)
	return Estimate{Value: m.Value * f, HalfWidth: m.HalfWidth * f}
}

// CountWhere estimates how many population rows satisfy pred.
func (s *Sample) CountWhere(pred func(float64) bool) Estimate {
	k := 0
	for _, v := range s.Vals {
		if pred(v) {
			k++
		}
	}
	n := len(s.Vals)
	p := float64(k) / float64(n)
	se := math.Sqrt(p * (1 - p) / float64(n))
	z := stats.StdNormal.Quantile(0.975)
	f := float64(s.PopN)
	return Estimate{Value: p * f, HalfWidth: z * se * f}
}

// MeanWhere estimates the mean over rows satisfying pred (a filtered
// aggregate); the half-width reflects the effective subsample size.
func (s *Sample) MeanWhere(pred func(float64) bool) Estimate {
	var sub []float64
	for _, v := range s.Vals {
		if pred(v) {
			sub = append(sub, v)
		}
	}
	if len(sub) == 0 {
		return Estimate{Value: math.NaN(), HalfWidth: math.Inf(1)}
	}
	m := stats.Mean(sub)
	if len(sub) < 2 {
		return Estimate{Value: m, HalfWidth: math.Inf(1)}
	}
	se := stats.StdDev(sub) / math.Sqrt(float64(len(sub)))
	z := stats.StdNormal.Quantile(0.975)
	return Estimate{Value: m, HalfWidth: z * se}
}
