package sampling

import (
	"math"
	"math/rand"
	"testing"
)

func normalData(n int, mu, sigma float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = mu + sigma*rng.NormFloat64()
	}
	return out
}

func TestUniformSampleShape(t *testing.T) {
	vals := normalData(10000, 50, 10, 1)
	s, err := Uniform(vals, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Vals) != 1000 || s.PopN != 10000 {
		t.Fatalf("sample %d of %d", len(s.Vals), s.PopN)
	}
	if s.SizeBytes() != 8000 {
		t.Fatalf("size = %d", s.SizeBytes())
	}
}

func TestUniformErrors(t *testing.T) {
	vals := []float64{1, 2, 3}
	if _, err := Uniform(vals, 0, 1); err == nil {
		t.Fatal("want error for zero fraction")
	}
	if _, err := Uniform(vals, 1.5, 1); err == nil {
		t.Fatal("want error for fraction > 1")
	}
	s, err := Uniform(vals, 0.01, 1) // rounds to at least one element
	if err != nil || len(s.Vals) != 1 {
		t.Fatalf("%v %v", s, err)
	}
}

func TestMeanEstimateNearTruth(t *testing.T) {
	vals := normalData(100000, 42, 5, 3)
	s, err := Uniform(vals, 0.05, 4)
	if err != nil {
		t.Fatal(err)
	}
	est := s.Mean()
	if math.Abs(est.Value-42) > 3*est.HalfWidth {
		t.Fatalf("mean estimate %g ± %g far from 42", est.Value, est.HalfWidth)
	}
	if est.HalfWidth <= 0 || est.HalfWidth > 1 {
		t.Fatalf("half width = %g", est.HalfWidth)
	}
}

func TestCIWidthShrinksWithSampleSize(t *testing.T) {
	vals := normalData(100000, 0, 1, 5)
	small, _ := Uniform(vals, 0.01, 6)
	big, _ := Uniform(vals, 0.2, 6)
	if big.Mean().HalfWidth >= small.Mean().HalfWidth {
		t.Fatalf("CI should shrink: %g vs %g", big.Mean().HalfWidth, small.Mean().HalfWidth)
	}
}

func TestMeanCICoverage(t *testing.T) {
	// Repeated sampling: the 95% CI should contain the population mean in
	// roughly 95% of draws.
	vals := normalData(50000, 7, 2, 7)
	var popMean float64
	for _, v := range vals {
		popMean += v
	}
	popMean /= float64(len(vals))
	hits, trials := 0, 200
	for i := 0; i < trials; i++ {
		s, _ := Uniform(vals, 0.02, int64(100+i))
		est := s.Mean()
		if popMean >= est.Value-est.HalfWidth && popMean <= est.Value+est.HalfWidth {
			hits++
		}
	}
	rate := float64(hits) / float64(trials)
	if rate < 0.88 || rate > 1.0 {
		t.Fatalf("coverage = %.3f", rate)
	}
}

func TestSumEstimate(t *testing.T) {
	vals := normalData(20000, 10, 1, 8)
	var exact float64
	for _, v := range vals {
		exact += v
	}
	s, _ := Uniform(vals, 0.1, 9)
	est := s.Sum()
	if math.Abs(est.Value-exact) > 3*est.HalfWidth {
		t.Fatalf("sum %g ± %g vs exact %g", est.Value, est.HalfWidth, exact)
	}
}

func TestCountWhere(t *testing.T) {
	vals := normalData(50000, 0, 1, 10)
	exact := 0
	for _, v := range vals {
		if v > 1 {
			exact++
		}
	}
	s, _ := Uniform(vals, 0.1, 11)
	est := s.CountWhere(func(v float64) bool { return v > 1 })
	if math.Abs(est.Value-float64(exact)) > 3*est.HalfWidth+1 {
		t.Fatalf("count %g ± %g vs exact %d", est.Value, est.HalfWidth, exact)
	}
}

func TestMeanWhere(t *testing.T) {
	vals := normalData(50000, 0, 1, 12)
	var sum float64
	n := 0
	for _, v := range vals {
		if v > 0 {
			sum += v
			n++
		}
	}
	s, _ := Uniform(vals, 0.1, 13)
	est := s.MeanWhere(func(v float64) bool { return v > 0 })
	if math.Abs(est.Value-sum/float64(n)) > 3*est.HalfWidth {
		t.Fatalf("mean-where %g ± %g vs %g", est.Value, est.HalfWidth, sum/float64(n))
	}
	// Empty predicate subset.
	empty := s.MeanWhere(func(float64) bool { return false })
	if !math.IsNaN(empty.Value) {
		t.Fatal("want NaN for empty subset")
	}
}
