// Package wireerr carries the engine's sentinel errors across process
// boundaries. An error flattened to its message string survives a network
// hop readable but untestable: errors.Is(err, modelstore.ErrNoModel) is
// false on the client even though the server returned exactly that
// sentinel, so remote backends silently lose the fallback and retry
// behavior local ones get. Instead, the wire carries a small stable code
// alongside the message; the client rehydrates the code into an error that
// unwraps to the original sentinel while keeping the server's message.
package wireerr

import (
	"errors"

	"datalaws/internal/modelstore"
	"datalaws/internal/table"
)

// Stable wire codes. These are protocol surface: renaming one breaks
// mixed-version deployments, so codes are append-only.
const (
	// CodeNone marks success (the empty string, so zero values are clean).
	CodeNone = ""
	// CodeOther marks an error with no sentinel identity: the message is
	// all the client gets.
	CodeOther = "other"
	// CodeNoModel maps modelstore.ErrNoModel (no trusted model can answer).
	CodeNoModel = "no_model"
	// CodeUnknownTable maps table.ErrUnknownTable.
	CodeUnknownTable = "unknown_table"
	// CodeUnknownModel maps modelstore.ErrNotFound.
	CodeUnknownModel = "unknown_model"
	// CodeDraining marks a server refusing new work during graceful
	// shutdown; clients may retry against another replica.
	CodeDraining = "draining"
	// CodeBadRequest marks a protocol-level rejection (unknown opcode,
	// oversized payload, bad cursor/statement id). Not retryable.
	CodeBadRequest = "bad_request"
	// CodeReplicaReadOnly marks a mutation or exact query rejected by a
	// model-only read replica: it holds laws, not rows. Clients should
	// route the statement to the primary.
	CodeReplicaReadOnly = "replica_readonly"
)

// ErrDraining is the client-side sentinel for CodeDraining.
var ErrDraining = errors.New("server draining")

// ErrBadRequest is the client-side sentinel for CodeBadRequest.
var ErrBadRequest = errors.New("bad request")

// ErrReplicaReadOnly is the sentinel for CodeReplicaReadOnly: the statement
// needs raw rows or mutates state, and this node is a model-only replica.
var ErrReplicaReadOnly = errors.New("replica is read-only (models, not rows)")

// sentinels maps each wire code to the error it rehydrates into. Order in
// Code matters instead: more specific sentinels are probed first.
var sentinels = map[string]error{
	CodeNoModel:         modelstore.ErrNoModel,
	CodeUnknownTable:    table.ErrUnknownTable,
	CodeUnknownModel:    modelstore.ErrNotFound,
	CodeDraining:        ErrDraining,
	CodeBadRequest:      ErrBadRequest,
	CodeReplicaReadOnly: ErrReplicaReadOnly,
}

// Code classifies err for the wire: the code of the innermost known
// sentinel, CodeOther for unrecognized errors, CodeNone for nil.
func Code(err error) string {
	switch {
	case err == nil:
		return CodeNone
	case errors.Is(err, modelstore.ErrNoModel):
		return CodeNoModel
	case errors.Is(err, table.ErrUnknownTable):
		return CodeUnknownTable
	case errors.Is(err, modelstore.ErrNotFound):
		return CodeUnknownModel
	case errors.Is(err, ErrDraining):
		return CodeDraining
	case errors.Is(err, ErrBadRequest):
		return CodeBadRequest
	case errors.Is(err, ErrReplicaReadOnly):
		return CodeReplicaReadOnly
	}
	return CodeOther
}

// Rehydrate rebuilds a client-side error from its wire form: the message is
// preserved verbatim, and when the code names a known sentinel the result
// unwraps to it, so errors.Is behaves identically for local and remote
// backends. Unknown codes (a newer server) degrade to a plain message
// error rather than failing.
func Rehydrate(code, msg string) error {
	if code == CodeNone && msg == "" {
		return nil
	}
	if sentinel, ok := sentinels[code]; ok {
		return &remoteError{msg: msg, sentinel: sentinel}
	}
	return errors.New(msg)
}

// remoteError is a server-produced error crossing the wire: the server's
// message with the sentinel's identity grafted back on.
type remoteError struct {
	msg      string
	sentinel error
}

func (e *remoteError) Error() string { return e.msg }

func (e *remoteError) Unwrap() error { return e.sentinel }
