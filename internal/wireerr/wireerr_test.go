package wireerr

import (
	"errors"
	"fmt"
	"testing"

	"datalaws/internal/modelstore"
	"datalaws/internal/table"
)

func TestCodeClassifiesSentinels(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, CodeNone},
		{errors.New("boom"), CodeOther},
		{modelstore.ErrNoModel, CodeNoModel},
		{fmt.Errorf("datalaws: %w: wrapped twice", modelstore.ErrNoModel), CodeNoModel},
		{fmt.Errorf("x: %w", table.ErrUnknownTable), CodeUnknownTable},
		{fmt.Errorf("x: %w", modelstore.ErrNotFound), CodeUnknownModel},
		{ErrDraining, CodeDraining},
		{ErrBadRequest, CodeBadRequest},
		{ErrReplicaReadOnly, CodeReplicaReadOnly},
		{fmt.Errorf("x: %w", ErrReplicaReadOnly), CodeReplicaReadOnly},
	}
	for _, c := range cases {
		if got := Code(c.err); got != c.want {
			t.Errorf("Code(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestRehydrateRoundTrip(t *testing.T) {
	orig := fmt.Errorf("datalaws: %w: no model covers column x", modelstore.ErrNoModel)
	back := Rehydrate(Code(orig), orig.Error())
	if back == nil {
		t.Fatal("rehydrated error is nil")
	}
	if !errors.Is(back, modelstore.ErrNoModel) {
		t.Fatalf("errors.Is lost the sentinel: %v", back)
	}
	if back.Error() != orig.Error() {
		t.Fatalf("message changed: %q != %q", back.Error(), orig.Error())
	}

	// Every known code survives the hop.
	for code, sentinel := range sentinels {
		e := Rehydrate(code, "msg for "+code)
		if !errors.Is(e, sentinel) {
			t.Errorf("code %q does not rehydrate to its sentinel", code)
		}
		if e.Error() != "msg for "+code {
			t.Errorf("code %q message mangled: %q", code, e.Error())
		}
	}
}

func TestRehydrateEdgeCases(t *testing.T) {
	if err := Rehydrate(CodeNone, ""); err != nil {
		t.Fatalf("empty wire error should be nil, got %v", err)
	}
	// A plain message without a sentinel still comes back as an error.
	if err := Rehydrate(CodeOther, "plain failure"); err == nil || err.Error() != "plain failure" {
		t.Fatalf("CodeOther = %v", err)
	}
	// Unknown codes (newer server) degrade gracefully.
	if err := Rehydrate("code_from_the_future", "m"); err == nil || err.Error() != "m" {
		t.Fatalf("unknown code = %v", err)
	}
	// Legacy peers may send a message with no code at all.
	if err := Rehydrate(CodeNone, "legacy error"); err == nil || err.Error() != "legacy error" {
		t.Fatalf("no-code error = %v", err)
	}
}
