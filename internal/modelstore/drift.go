package modelstore

import (
	"fmt"
	"math"
	"sync"

	"datalaws/internal/expr"
	"datalaws/internal/table"
)

// Drift detection: the live-data answer to validating a law once against a
// frozen sample. Every captured model stores the residual standard error the
// law achieved at fit time; as rows stream in, the detector standardizes
// each new observation's residual against that stored ResidualSE. While the
// law still holds, standardized residuals stay near unit scale; when the
// data-generating process moves, they blow up long before the table has
// grown enough for a row-count heuristic to notice. Growth alone is the
// second trigger: even drift-free appends shrink what a refit's parameter
// covariance would be, so enough new rows warrant a refit for tighter error
// bounds.

// DriftConfig tunes when accumulated evidence declares a model stale.
type DriftConfig struct {
	// MinRows is the number of attributable new rows required before the
	// residual test may fire (small samples are noisy). Default 32.
	MinRows int
	// MaxRMSZ fires the residual trigger when the root-mean-square
	// standardized residual of new rows exceeds it. Residuals of in-law data
	// have RMSZ ≈ 1; default 2.
	MaxRMSZ float64
	// MaxGrowthFrac fires the growth trigger when the table has grown by
	// more than this fraction since the fit. 0 takes the default (0.5); a
	// negative value disables the growth trigger entirely.
	MaxGrowthFrac float64
}

// DefaultDriftConfig returns the default thresholds.
func DefaultDriftConfig() DriftConfig {
	return DriftConfig{MinRows: 32, MaxRMSZ: 2, MaxGrowthFrac: 0.5}
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.MinRows == 0 {
		c.MinRows = 32
	}
	if c.MaxRMSZ == 0 {
		c.MaxRMSZ = 2
	}
	if c.MaxGrowthFrac == 0 {
		c.MaxGrowthFrac = 0.5
	}
	return c
}

// DriftState accumulates residual evidence for one model since its last
// (re)fit.
type DriftState struct {
	// Observed counts rows attributed to the model (group fitted, values
	// numeric, inside the model's WHERE region).
	Observed int
	// SumSqZ is the sum of squared standardized residuals of observed rows.
	SumSqZ float64
	// Skipped counts rows the detector could not attribute (unknown or
	// unfitted group, NULL/non-numeric values, outside the fit region).
	Skipped int
	// ModelVersion is the model version the evidence was collected against.
	ModelVersion int
}

// RMSZ is the root-mean-square standardized residual of observed rows.
func (s DriftState) RMSZ() float64 {
	if s.Observed == 0 {
		return 0
	}
	return math.Sqrt(s.SumSqZ / float64(s.Observed))
}

// DriftReport is a staleness verdict with its evidence.
type DriftReport struct {
	Model   string
	State   DriftState
	Growth  Staleness
	Trigger string // "drift", "growth", or "" when fresh
}

// Stale reports whether either trigger fired.
func (r DriftReport) Stale() bool { return r.Trigger != "" }

func (r DriftReport) String() string {
	if !r.Stale() {
		return fmt.Sprintf("model %s fresh (rmsz=%.2f over %d rows, growth=%.0f%%)",
			r.Model, r.State.RMSZ(), r.State.Observed, 100*r.Growth.GrowthFrac)
	}
	return fmt.Sprintf("model %s stale via %s (rmsz=%.2f over %d rows, growth=%.0f%%)",
		r.Model, r.Trigger, r.State.RMSZ(), r.State.Observed, 100*r.Growth.GrowthFrac)
}

// DriftDetector tracks per-model residual evidence across appends. It is
// safe for concurrent use: ingestion feeds Observe from any number of
// writers while the background refitter polls Check.
type DriftDetector struct {
	cfg DriftConfig

	mu      sync.Mutex
	byModel map[string]*DriftState
}

// NewDriftDetector returns a detector with the given thresholds (zero fields
// take defaults).
func NewDriftDetector(cfg DriftConfig) *DriftDetector {
	return &DriftDetector{cfg: cfg.withDefaults(), byModel: map[string]*DriftState{}}
}

// Config returns the effective thresholds.
func (d *DriftDetector) Config() DriftConfig { return d.cfg }

// Observe feeds freshly appended rows (schema-aligned boxed values) through
// model m's law, accumulating standardized residuals. Evidence collected
// against an older model version is discarded first, so a refit implicitly
// resets the accumulator.
func (d *DriftDetector) Observe(m *CapturedModel, schema *table.Schema, rows [][]expr.Value) {
	if len(rows) == 0 {
		return
	}
	plan, ok := newRowPlan(m, schema)
	if !ok {
		return
	}
	var observed, skipped int
	var sumSqZ float64
	inputs := make([]float64, len(m.Model.Inputs))
	for _, row := range rows {
		z, ok := plan.standardizedResidual(m, row, inputs)
		if !ok {
			skipped++
			continue
		}
		observed++
		sumSqZ += z * z
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.byModel[m.Spec.Name]
	if st == nil || st.ModelVersion != m.Version {
		st = &DriftState{ModelVersion: m.Version}
		d.byModel[m.Spec.Name] = st
	}
	st.Observed += observed
	st.Skipped += skipped
	st.SumSqZ += sumSqZ
}

// Check renders the staleness verdict for m against the current table state.
func (d *DriftDetector) Check(m *CapturedModel, t *table.Table) DriftReport {
	d.mu.Lock()
	var st DriftState
	if s := d.byModel[m.Spec.Name]; s != nil && s.ModelVersion == m.Version {
		st = *s
	}
	d.mu.Unlock()

	rep := DriftReport{Model: m.Spec.Name, State: st}
	if t != nil {
		rep.Growth = m.StalenessAgainst(t)
	}
	switch {
	case st.Observed >= d.cfg.MinRows && st.RMSZ() > d.cfg.MaxRMSZ:
		rep.Trigger = "drift"
	case d.cfg.MaxGrowthFrac > 0 && rep.Growth.GrowthFrac > d.cfg.MaxGrowthFrac:
		rep.Trigger = "growth"
	}
	return rep
}

// Reset discards accumulated evidence for a model (after a refit or drop).
func (d *DriftDetector) Reset(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.byModel, name)
}

// State returns a copy of the accumulated evidence for a model.
func (d *DriftDetector) State(name string) DriftState {
	d.mu.Lock()
	defer d.mu.Unlock()
	if s := d.byModel[name]; s != nil {
		return *s
	}
	return DriftState{}
}

// rowPlan pre-resolves the schema positions a model needs from an appended
// row, so Observe is index math per row instead of name lookups. The WHERE
// environment is allocated once and holds only the columns the predicate
// references — Observe runs synchronously on the ingest path.
type rowPlan struct {
	outIdx   int
	inIdx    []int
	groupIdx int // -1 for ungrouped models
	where    expr.Expr
	// whereCols maps env names to schema positions for WHERE evaluation.
	whereCols []struct {
		name string
		idx  int
	}
	env expr.MapEnv // reused per row; keys are exactly whereCols
}

func newRowPlan(m *CapturedModel, schema *table.Schema) (*rowPlan, bool) {
	p := &rowPlan{outIdx: schema.Index(m.Model.Output), groupIdx: -1, where: m.Spec.Where}
	if p.outIdx < 0 {
		return nil, false
	}
	for _, in := range m.Model.Inputs {
		i := schema.Index(in)
		if i < 0 {
			return nil, false
		}
		p.inIdx = append(p.inIdx, i)
	}
	if m.Grouped() {
		if p.groupIdx = schema.Index(m.Spec.GroupBy); p.groupIdx < 0 {
			return nil, false
		}
	}
	if p.where != nil {
		for _, name := range expr.Vars(p.where) {
			i := schema.Index(name)
			if i < 0 {
				return nil, false
			}
			p.whereCols = append(p.whereCols, struct {
				name string
				idx  int
			}{name, i})
		}
		p.env = expr.MapEnv{}
	}
	return p, true
}

// standardizedResidual computes (y − f(β̂, x)) / ResidualSE for one appended
// row, reporting ok=false for rows that cannot be attributed to the model.
func (p *rowPlan) standardizedResidual(m *CapturedModel, row []expr.Value, inputs []float64) (float64, bool) {
	if p.where != nil {
		for _, wc := range p.whereCols {
			if wc.idx >= len(row) {
				return 0, false
			}
			p.env[wc.name] = row[wc.idx]
		}
		v, err := expr.Eval(p.where, p.env)
		if err != nil || v.IsNull() {
			return 0, false
		}
		if in, err := v.AsBool(); err != nil || !in {
			return 0, false
		}
	}
	var key int64
	if p.groupIdx >= 0 {
		if p.groupIdx >= len(row) || row[p.groupIdx].K != expr.KindInt {
			return 0, false
		}
		key = row[p.groupIdx].I
	}
	g, ok := m.GroupFor(key)
	if !ok || g.DF <= 0 {
		return 0, false
	}
	for i, idx := range p.inIdx {
		if idx >= len(row) {
			return 0, false
		}
		f, err := row[idx].AsFloat()
		if err != nil {
			return 0, false
		}
		inputs[i] = f
	}
	if p.outIdx >= len(row) {
		return 0, false
	}
	y, err := row[p.outIdx].AsFloat()
	if err != nil {
		return 0, false
	}
	yhat := m.Model.Eval(g.Params, inputs)
	se := g.ResidualSE
	if se <= 0 || math.IsNaN(se) {
		// A perfect historical fit has no noise scale; any deviation is
		// infinite evidence. Clamp to a tiny scale instead.
		se = 1e-12
	}
	z := (y - yhat) / se
	if math.IsNaN(z) || math.IsInf(z, 0) {
		return 0, false
	}
	return z, true
}
