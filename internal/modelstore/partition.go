package modelstore

import (
	"fmt"
	"sort"
	"strings"

	"datalaws/internal/table"
)

// Per-partition model capture. A model fitted on a range-partitioned table
// becomes a family of independent captured models, one per partition, named
// "<model>#<partition>" and fitted on the partition's child table. Each
// family member carries its own parameter table, quality judgment, version
// counter and staleness state, so drift detection and background refit stay
// local: a hot partition re-fits alone, and a model gone stale in one regime
// does not revoke the others.

// PartitionModelName is the store name of one partition's family member.
func PartitionModelName(model, part string) string { return model + "#" + part }

// familyPrefix is the key prefix shared by a family's members.
func familyPrefix(model string) string { return model + "#" }

// nameFree reports whether a model name is available: not taken exactly,
// and not the base name of an existing partitioned family.
func (s *Store) nameFree(name string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nameFreeLocked(name)
}

func (s *Store) nameFreeLocked(name string) error {
	if _, exists := s.models[name]; exists {
		return fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	prefix := familyPrefix(name)
	for n := range s.models {
		if strings.HasPrefix(n, prefix) {
			return fmt.Errorf("%w: %q (per-partition family)", ErrDuplicate, name)
		}
	}
	return nil
}

// PartitionCapture reports one partition's outcome within a family capture.
type PartitionCapture struct {
	Partition string
	Model     *CapturedModel // nil when the fit failed
	Err       error
}

// CapturePartitioned fits spec independently against every partition of pt,
// storing one family member per partition that fitted. Partitions whose fit
// fails (too few rows, no convergence) are reported but do not abort the
// capture — the approximate planner answers them from raw rows instead. An
// error is returned only when the name collides or every partition failed.
func (s *Store) CapturePartitioned(pt *table.PartitionedTable, spec Spec) ([]PartitionCapture, error) {
	if name := spec.Name; name == "" {
		return nil, fmt.Errorf("modelstore: empty model name")
	}
	if err := s.nameFree(spec.Name); err != nil {
		return nil, err
	}

	ranges := pt.Ranges()
	out := make([]PartitionCapture, 0, len(ranges))
	ok := 0
	for i, r := range ranges {
		sub := spec
		sub.Name = PartitionModelName(spec.Name, r.Name)
		sub.Table = pt.Part(i).Name
		m, err := s.Capture(pt.Part(i), sub)
		out = append(out, PartitionCapture{Partition: r.Name, Model: m, Err: err})
		if err == nil {
			ok++
		}
	}
	if ok == 0 {
		// Nothing was stored (every Capture failed before registering), so
		// there is nothing to roll back.
		first := out[0].Err
		return out, fmt.Errorf("modelstore: fitting %q failed on every partition of %q: %w", spec.Name, pt.Name, first)
	}
	return out, nil
}

// Family returns the members of a partitioned model family, sorted by name;
// empty when name is not a family.
func (s *Store) Family(name string) []*CapturedModel {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*CapturedModel
	prefix := familyPrefix(name)
	for n, m := range s.models {
		if strings.HasPrefix(n, prefix) {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Name < out[j].Spec.Name })
	return out
}

// DropFamily removes a model by name together with any partitioned family
// members ("name#..."), returning the dropped names (nil when none existed).
func (s *Store) DropFamily(name string) []string {
	var dropped []string
	if s.Drop(name) {
		dropped = append(dropped, name)
	}
	for _, m := range s.Family(name) {
		if s.Drop(m.Spec.Name) {
			dropped = append(dropped, m.Spec.Name)
		}
	}
	return dropped
}
