package modelstore

import (
	"bytes"
	"testing"
	"time"
)

// Regression for the restart-aliasing bug: Load used to merely increment
// the in-memory epoch, so a reopened store restarted near zero and
// epoch-keyed plan caches (and changefeed cursors) could alias pre-restart
// positions. capture→refit→save→reopen must yield a strictly greater epoch
// than any value observed before the restart.
func TestLoadEpochStrictlyAboveAllPreRestartValues(t *testing.T) {
	tb, _ := lofarFixture(t)
	s := NewStore()
	if _, err := s.Capture(tb, powerSpec("spectra")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Refit("spectra", tb); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Capture(tb, powerSpec("other")); err != nil {
		t.Fatal(err)
	}
	maxEpoch := s.Epoch()
	if maxEpoch < 3 {
		t.Fatalf("expected at least 3 epoch bumps, got %d", maxEpoch)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}

	s2 := NewStore()
	if e := s2.Epoch(); e >= maxEpoch {
		t.Fatalf("fresh store epoch %d already past %d — fixture too weak", e, maxEpoch)
	}
	if err := s2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := s2.Epoch(); got <= maxEpoch {
		t.Fatalf("reopened epoch %d not strictly greater than pre-restart max %d", got, maxEpoch)
	}
	// And the reopened store keeps strictly increasing from there.
	before := s2.Epoch()
	if !s2.Drop("other") {
		t.Fatal("drop failed")
	}
	if got := s2.Epoch(); got <= before {
		t.Fatalf("epoch %d did not advance past %d after drop", got, before)
	}
}

// A cursor issued before a restart must never be a valid position after it:
// the term persists and strictly increases across Load, forcing a resync.
func TestLoadTermStrictlyIncreasesAcrossRestarts(t *testing.T) {
	tb, _ := lofarFixture(t)
	s := NewStore()
	if _, err := s.Capture(tb, powerSpec("spectra")); err != nil {
		t.Fatal(err)
	}
	oldPos := s.FeedPos()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}

	s2 := NewStore()
	if err := s2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	newPos := s2.FeedPos()
	if newPos.Term <= oldPos.Term {
		t.Fatalf("term %d not strictly greater than pre-restart term %d", newPos.Term, oldPos.Term)
	}
	// The old cursor resyncs rather than silently reading the new feed.
	changes, next, resync := s2.ChangesSince(oldPos, 0)
	if !resync {
		t.Fatal("pre-restart cursor must trigger resync")
	}
	if len(changes) != 1 || changes[0].Name != "spectra" || changes[0].Kind != ChangeCapture {
		t.Fatalf("resync should list the full catalog, got %+v", changes)
	}
	if next != newPos {
		t.Fatalf("resync cursor %+v != feed pos %+v", next, newPos)
	}

	// Two generations deep: save the reopened store, load again, terms keep
	// climbing (term was persisted, not reset).
	var buf2 bytes.Buffer
	if err := s2.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	s3 := NewStore()
	if err := s3.Load(bytes.NewReader(buf2.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := s3.FeedPos().Term; got <= newPos.Term {
		t.Fatalf("generation-3 term %d not strictly greater than %d", got, newPos.Term)
	}
}

func TestChangesSinceStreamsCaptureRefitDrop(t *testing.T) {
	tb, _ := lofarFixture(t)
	s := NewStore()
	start := s.FeedPos()

	if _, err := s.Capture(tb, powerSpec("spectra")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Refit("spectra", tb); err != nil {
		t.Fatal(err)
	}
	s.Drop("spectra")

	changes, next, resync := s.ChangesSince(start, 0)
	if resync {
		t.Fatal("fresh-from-start cursor should not resync")
	}
	kinds := []ChangeKind{ChangeCapture, ChangeRefit, ChangeDrop}
	if len(changes) != len(kinds) {
		t.Fatalf("got %d changes, want %d", len(changes), len(kinds))
	}
	for i, c := range changes {
		if c.Kind != kinds[i] || c.Name != "spectra" {
			t.Fatalf("change %d: kind=%v name=%q", i, c.Kind, c.Name)
		}
		if c.Kind == ChangeDrop && c.Model != nil {
			t.Fatal("drop entries carry no model")
		}
		if c.Kind != ChangeDrop && c.Model == nil {
			t.Fatalf("%v entry missing model", c.Kind)
		}
		if i > 0 && changes[i].Pos.Seq <= changes[i-1].Pos.Seq {
			t.Fatal("positions not strictly increasing")
		}
	}
	if next != changes[len(changes)-1].Pos {
		t.Fatal("next cursor should be the last entry's position")
	}
	// Caught up: polling again returns nothing.
	more, again, resync := s.ChangesSince(next, 0)
	if len(more) != 0 || resync || again != next {
		t.Fatalf("caught-up poll returned %d changes resync=%v", len(more), resync)
	}
}

func TestChangesSinceMaxBatches(t *testing.T) {
	tb, _ := lofarFixture(t)
	s := NewStore()
	cur := s.FeedPos()
	if _, err := s.Capture(tb, powerSpec("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Capture(tb, powerSpec("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Capture(tb, powerSpec("c")); err != nil {
		t.Fatal(err)
	}
	var names []string
	for {
		changes, next, resync := s.ChangesSince(cur, 2)
		if resync {
			t.Fatal("unexpected resync")
		}
		if len(changes) == 0 {
			break
		}
		if len(changes) > 2 {
			t.Fatalf("batch of %d exceeds max 2", len(changes))
		}
		for _, c := range changes {
			names = append(names, c.Name)
		}
		cur = next
	}
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("paged names: %v", names)
	}
}

func TestChangesSinceResyncsPastTrimmedRing(t *testing.T) {
	tb, _ := lofarFixture(t)
	s := NewStore()
	early := s.FeedPos()
	if _, err := s.Capture(tb, powerSpec("keeper")); err != nil {
		t.Fatal(err)
	}
	// Overflow the ring with churn on a second name.
	if _, err := s.Capture(tb, powerSpec("churn")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < feedRingCap+8; i++ {
		if _, err := s.Refit("churn", tb); err != nil {
			t.Fatal(err)
		}
	}
	changes, next, resync := s.ChangesSince(early, 0)
	if !resync {
		t.Fatal("cursor behind the retained ring must resync")
	}
	if len(changes) != 2 {
		t.Fatalf("resync catalog has %d entries, want 2", len(changes))
	}
	if next != s.FeedPos() {
		t.Fatal("resync cursor should be the current feed position")
	}
}

func TestWatchWakesOnPublish(t *testing.T) {
	tb, _ := lofarFixture(t)
	s := NewStore()
	ch := s.Watch()
	select {
	case <-ch:
		t.Fatal("watch fired before any change")
	default:
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := s.Capture(tb, powerSpec("spectra")); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("watch did not wake on capture")
	}
	<-done
}

func TestInstallReplacesAndPublishes(t *testing.T) {
	tb, _ := lofarFixture(t)
	primary := NewStore()
	m1, err := primary.Capture(tb, powerSpec("spectra"))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := primary.Refit("spectra", tb)
	if err != nil {
		t.Fatal(err)
	}

	replica := NewStore()
	cur := replica.FeedPos()
	replica.Install(m1)
	got, ok := replica.Get("spectra")
	if !ok || got.ID != m1.ID || got.Version != m1.Version {
		t.Fatalf("installed model mismatch: %+v", got)
	}
	if len(replica.ForTable(m1.Spec.Table)) != 1 {
		t.Fatal("byTable index not maintained by Install")
	}
	replica.Install(m2)
	got, _ = replica.Get("spectra")
	if got.Version != m2.Version {
		t.Fatalf("replace kept version %d, want %d", got.Version, m2.Version)
	}
	if n := len(replica.ForTable(m1.Spec.Table)); n != 1 {
		t.Fatalf("replace left %d byTable entries, want 1", n)
	}
	changes, _, resync := replica.ChangesSince(cur, 0)
	if resync || len(changes) != 2 || changes[0].Kind != ChangeCapture || changes[1].Kind != ChangeRefit {
		t.Fatalf("install feed: resync=%v changes=%+v", resync, changes)
	}
	if !replica.Uninstall("spectra") {
		t.Fatal("uninstall failed")
	}
	if _, ok := replica.Get("spectra"); ok {
		t.Fatal("model still present after Uninstall")
	}
}

func TestDropForTablePublishesPerModel(t *testing.T) {
	tb, _ := lofarFixture(t)
	s := NewStore()
	if _, err := s.Capture(tb, powerSpec("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Capture(tb, powerSpec("b")); err != nil {
		t.Fatal(err)
	}
	cur := s.FeedPos()
	dropped := s.DropForTable("measurements")
	if len(dropped) != 2 {
		t.Fatalf("dropped %v", dropped)
	}
	changes, _, resync := s.ChangesSince(cur, 0)
	if resync || len(changes) != 2 {
		t.Fatalf("want 2 drop entries, got %d (resync=%v)", len(changes), resync)
	}
	for _, c := range changes {
		if c.Kind != ChangeDrop {
			t.Fatalf("kind %v", c.Kind)
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	tb, _ := lofarFixture(t)
	s := NewStore()
	m, err := s.Capture(tb, powerSpec("spectra"))
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := ModelFromRecord(RecordOf(m))
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.ID != m.ID || rebuilt.Version != m.Version || rebuilt.Spec.Formula != m.Spec.Formula {
		t.Fatalf("record round trip lost identity: %+v", rebuilt)
	}
	if len(rebuilt.Groups) != len(m.Groups) {
		t.Fatalf("groups %d vs %d", len(rebuilt.Groups), len(m.Groups))
	}
	g, ok := rebuilt.GroupFor(1)
	if !ok {
		t.Fatal("group 1 unusable after round trip")
	}
	if v := rebuilt.Model.Eval(g.Params, []float64{0.14}); v <= 0 {
		t.Fatalf("rebuilt model evaluates to %g", v)
	}
}
