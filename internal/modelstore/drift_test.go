package modelstore

import (
	"math"
	"math/rand"
	"testing"

	"datalaws/internal/expr"
	"datalaws/internal/storage"
	"datalaws/internal/table"
)

// driftFixture builds a table following y = p·x^α per group, captures a
// model on it, and returns both.
func driftFixture(t *testing.T, groups, obs int) (*table.Table, *Store, *CapturedModel) {
	t.Helper()
	schema, err := table.NewSchema(
		table.ColumnDef{Name: "g", Type: storage.TypeInt64},
		table.ColumnDef{Name: "x", Type: storage.TypeFloat64},
		table.ColumnDef{Name: "y", Type: storage.TypeFloat64},
	)
	if err != nil {
		t.Fatal(err)
	}
	tb := table.New("m", schema)
	rng := rand.New(rand.NewSource(7))
	xs := []float64{0.12, 0.15, 0.16, 0.18}
	for g := 1; g <= groups; g++ {
		for i := 0; i < obs; i++ {
			x := xs[i%len(xs)]
			y := 2.5 * math.Pow(x, -0.7) * (1 + 0.02*rng.NormFloat64())
			if err := tb.AppendRow([]expr.Value{expr.Int(int64(g)), expr.Float(x), expr.Float(y)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	s := NewStore()
	m, err := s.Capture(tb, Spec{
		Name: "law", Table: "m", Formula: "y ~ p * pow(x, alpha)",
		Inputs: []string{"x"}, GroupBy: "g",
		Start: map[string]float64{"p": 1, "alpha": -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb, s, m
}

func lawRow(g int64, x, p, alpha, noise float64, rng *rand.Rand) []expr.Value {
	y := p * math.Pow(x, alpha) * (1 + noise*rng.NormFloat64())
	return []expr.Value{expr.Int(g), expr.Float(x), expr.Float(y)}
}

func TestDriftDetectorInLawRowsStayFresh(t *testing.T) {
	tb, _, m := driftFixture(t, 4, 40)
	det := NewDriftDetector(DriftConfig{MinRows: 16, MaxRMSZ: 2, MaxGrowthFrac: 10})
	rng := rand.New(rand.NewSource(11))
	var rows [][]expr.Value
	for i := 0; i < 100; i++ {
		rows = append(rows, lawRow(int64(i%4+1), 0.15, 2.5, -0.7, 0.02, rng))
	}
	det.Observe(m, tb.Schema(), rows)
	if _, err := tb.AppendRows(rows); err != nil {
		t.Fatal(err)
	}
	rep := det.Check(m, tb)
	if rep.Stale() {
		t.Fatalf("in-law appends flagged stale: %s", rep)
	}
	if st := det.State("law"); st.Observed != 100 {
		t.Fatalf("observed = %d", st.Observed)
	}
	// Residuals of data from the fitted law hover around unit scale.
	if rmsz := det.State("law").RMSZ(); rmsz > 2 || rmsz <= 0 {
		t.Fatalf("rmsz = %v", rmsz)
	}
}

func TestDriftDetectorLawChangeTriggers(t *testing.T) {
	tb, _, m := driftFixture(t, 4, 40)
	det := NewDriftDetector(DriftConfig{MinRows: 16, MaxRMSZ: 2, MaxGrowthFrac: -1})
	rng := rand.New(rand.NewSource(13))
	// The law moved: proportionality tripled.
	var rows [][]expr.Value
	for i := 0; i < 48; i++ {
		rows = append(rows, lawRow(int64(i%4+1), 0.15, 7.5, -0.7, 0.02, rng))
	}
	det.Observe(m, tb.Schema(), rows)
	rep := det.Check(m, tb)
	if !rep.Stale() || rep.Trigger != "drift" {
		t.Fatalf("law change not detected: %s", rep)
	}
	// Evidence resets with the model version: a new version starts clean.
	det.Reset("law")
	if det.State("law").Observed != 0 {
		t.Fatal("reset did not clear evidence")
	}
}

func TestDriftDetectorGrowthTrigger(t *testing.T) {
	tb, _, m := driftFixture(t, 4, 40)
	det := NewDriftDetector(DriftConfig{MinRows: 1 << 30, MaxRMSZ: 1e9, MaxGrowthFrac: 0.5})
	rng := rand.New(rand.NewSource(17))
	var rows [][]expr.Value
	for i := 0; i < 4*40; i++ { // double the table: growth 1.0 > 0.5
		rows = append(rows, lawRow(int64(i%4+1), 0.15, 2.5, -0.7, 0.02, rng))
	}
	if _, err := tb.AppendRows(rows); err != nil {
		t.Fatal(err)
	}
	rep := det.Check(m, tb)
	if !rep.Stale() || rep.Trigger != "growth" {
		t.Fatalf("growth not detected: %s", rep)
	}
}

func TestDriftDetectorSkipsUnattributableRows(t *testing.T) {
	tb, _, m := driftFixture(t, 4, 40)
	det := NewDriftDetector(DriftConfig{})
	rows := [][]expr.Value{
		{expr.Int(99), expr.Float(0.15), expr.Float(1)}, // unfitted group
		{expr.Int(1), expr.Null(), expr.Float(1)},       // NULL input
		{expr.Int(1), expr.Float(0.15), expr.Null()},    // NULL output
	}
	det.Observe(m, tb.Schema(), rows)
	st := det.State("law")
	if st.Observed != 0 || st.Skipped != 3 {
		t.Fatalf("observed=%d skipped=%d", st.Observed, st.Skipped)
	}
}

func TestRefitWarmStartsFromPreviousParams(t *testing.T) {
	tb, s, m := driftFixture(t, 4, 40)
	rng := rand.New(rand.NewSource(19))
	var rows [][]expr.Value
	for i := 0; i < 160; i++ {
		rows = append(rows, lawRow(int64(i%4+1), 0.16, 2.5, -0.7, 0.02, rng))
	}
	if _, err := tb.AppendRows(rows); err != nil {
		t.Fatal(err)
	}
	warm, err := s.Refit("law", tb)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Version != m.Version+1 {
		t.Fatalf("version = %d", warm.Version)
	}
	if warm.FittedRows != tb.NumRows() {
		t.Fatalf("fitted rows = %d, table has %d", warm.FittedRows, tb.NumRows())
	}
	cold, err := s.RefitCold("law", tb)
	if err != nil {
		t.Fatal(err)
	}
	// Warm start from the converged optimum should need no more iterations
	// than restarting from the spec's declared start, typically far fewer.
	warmIters, coldIters := 0, 0
	for k, g := range warm.Groups {
		warmIters += g.Iters
		coldIters += cold.Groups[k].Iters
	}
	if warmIters > coldIters {
		t.Fatalf("warm refit took %d iterations, cold took %d", warmIters, coldIters)
	}
	if warmIters == 0 {
		t.Fatal("nonlinear warm refit reported zero iterations")
	}
}

// TestRefitRetainsCoverageOnGroupFailure: when new data breaks one group's
// refit, the previous version's parameters are retained for it — a refit
// must never turn answerable queries into empty results.
func TestRefitRetainsCoverageOnGroupFailure(t *testing.T) {
	schema, err := table.NewSchema(
		table.ColumnDef{Name: "g", Type: storage.TypeInt64},
		table.ColumnDef{Name: "x", Type: storage.TypeFloat64},
		table.ColumnDef{Name: "y", Type: storage.TypeFloat64},
	)
	if err != nil {
		t.Fatal(err)
	}
	tb := table.New("m", schema)
	rng := rand.New(rand.NewSource(41))
	xs := []float64{0.12, 0.15, 0.16, 0.18}
	for g := 1; g <= 3; g++ {
		for i := 0; i < 40; i++ {
			x := xs[i%4]
			y := 2 * math.Pow(x, -0.7) * (1 + 0.02*rng.NormFloat64())
			if err := tb.AppendRow([]expr.Value{expr.Int(int64(g)), expr.Float(x), expr.Float(y)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	s := NewStore()
	// Gauss-Newton diverges hard on the poisoned rows below, giving a
	// deterministic per-group refit failure.
	m, err := s.Capture(tb, Spec{
		Name: "law", Table: "m", Formula: "y ~ p * pow(x, alpha)",
		Inputs: []string{"x"}, GroupBy: "g",
		Start:  map[string]float64{"p": 1, "alpha": -1},
		Method: "gn",
	})
	if err != nil {
		t.Fatal(err)
	}
	oldG1, ok := m.GroupFor(1)
	if !ok {
		t.Fatal("group 1 unfitted at capture")
	}
	// Poison group 1 with astronomically large outliers: its residual sum
	// of squares overflows and the group's refit fails.
	for i := 0; i < 4; i++ {
		if err := tb.AppendRow([]expr.Value{expr.Int(1), expr.Float(0.15), expr.Float(1e300)}); err != nil {
			t.Fatal(err)
		}
	}
	nm, err := s.Refit("law", tb)
	if err != nil {
		t.Fatal(err)
	}
	g1, ok := nm.GroupFor(1)
	if !ok {
		t.Fatal("refit lost group 1 coverage")
	}
	if g1.Retained == "" {
		t.Fatal("group 1 should be marked retained")
	}
	for i, p := range g1.Params {
		if p != oldG1.Params[i] {
			t.Fatalf("retained params differ: %v vs %v", g1.Params, oldG1.Params)
		}
	}
	// The healthy groups were genuinely re-fitted.
	if g2, ok := nm.GroupFor(2); !ok || g2.Retained != "" {
		t.Fatalf("group 2 = %+v", g2)
	}
	if nm.Quality.GroupsOK != 3 {
		t.Fatalf("quality counts retained coverage: %+v", nm.Quality)
	}
}
