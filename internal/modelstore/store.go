// Package modelstore implements the paper's central artifact: a catalog of
// harvested user models. Each captured model keeps its source-code formula
// ("we can store the models in their source code form inside the database",
// §3), the per-group fitted parameter table (the paper's Table 1), quality
// judgments (R², residual SE, F-test), and the table version at fit time so
// staleness — the §4.1 "data or model changes" challenge — is detectable.
// The store answers best-model selection among multiple overlapping models
// and drives refit/switch maintenance.
package modelstore

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"datalaws/internal/expr"
	"datalaws/internal/fit"
	"datalaws/internal/stats"
	"datalaws/internal/storage"
	"datalaws/internal/table"
)

// Errors returned by the store.
var (
	ErrNotFound  = errors.New("modelstore: model not found")
	ErrDuplicate = errors.New("modelstore: model already exists")
	ErrNoModel   = errors.New("modelstore: no applicable model")
)

// GroupParams is one row of the parameter table: the fitted constants and
// goodness of fit for one group (one LOFAR source in the paper's example).
type GroupParams struct {
	Key        int64
	Params     []float64 // aligned with CapturedModel.Model.Params
	ResidualSE float64
	R2         float64
	N          int
	DF         int
	// Iters is the optimizer iteration count of the fit (0 for the direct
	// OLS path); warm-started refits should show markedly fewer iterations.
	Iters int
	// Retained is non-empty when a refit failed for this group and the
	// previous version's parameters were kept instead (it holds the refit
	// error). A live refit never loses answering coverage the old version
	// had: the old law, however stale, beats an empty result.
	Retained string
	// Cov is the parameter covariance for error bounds (may be nil when the
	// information matrix was singular).
	Cov [][]float64
	// FitErr records a per-group fitting failure; such groups stay
	// unmodeled and queries against them fall back to raw data.
	FitErr string
}

// OK reports whether the group fitted successfully.
func (g *GroupParams) OK() bool { return g.FitErr == "" }

// Quality aggregates fit quality across groups, the measures the engine
// uses to "judge the quality of the model" (§3).
type Quality struct {
	MedianR2         float64
	MeanR2           float64
	MedianResidualSE float64
	WorstR2          float64
	GroupsOK         int
	GroupsFailed     int
}

// Spec describes what to fit: it is the declarative content of a FIT MODEL
// statement.
type Spec struct {
	Name    string
	Table   string
	Formula string
	Inputs  []string
	GroupBy string // optional single grouping column
	Where   expr.Expr
	Start   map[string]float64
	Method  string // "", "lm", "gn"
}

// CapturedModel is one harvested model with its trained parameters.
type CapturedModel struct {
	ID      int
	Spec    Spec
	Model   *fit.Model
	Groups  map[int64]*GroupParams
	Order   []int64 // group keys in ascending order
	Quality Quality

	// Fit-time snapshot for staleness detection.
	FittedVersion uint64
	FittedRows    int
	Version       int // bumped by every refit
}

// Grouped reports whether the model was fitted per group.
func (m *CapturedModel) Grouped() bool { return m.Spec.GroupBy != "" }

// GroupFor returns the parameters applicable to a group key. Ungrouped
// models store a single entry under key 0 and ignore the argument.
func (m *CapturedModel) GroupFor(key int64) (*GroupParams, bool) {
	if !m.Grouped() {
		g, ok := m.Groups[0]
		return g, ok && g.OK()
	}
	g, ok := m.Groups[key]
	if !ok || !g.OK() {
		return nil, false
	}
	return g, true
}

// ParamSizeBytes is the storage footprint of the parameter table: per group,
// the key plus one float64 per parameter plus the residual SE (the layout of
// the paper's Table 1, which it prices at 640 KB for 35,692 sources).
func (m *CapturedModel) ParamSizeBytes() int {
	perGroup := 8 + 8*len(m.Model.Params) + 8
	return perGroup * len(m.Groups)
}

// ParamTable materializes the parameter table as a relational table — the
// right-hand side of the paper's Table 1 transformation.
func (m *CapturedModel) ParamTable() (*table.Table, error) {
	defs := []table.ColumnDef{{Name: "group_key", Type: storage.TypeInt64}}
	for _, p := range m.Model.Params {
		defs = append(defs, table.ColumnDef{Name: p, Type: storage.TypeFloat64})
	}
	defs = append(defs,
		table.ColumnDef{Name: "residual_se", Type: storage.TypeFloat64},
		table.ColumnDef{Name: "r2", Type: storage.TypeFloat64},
		table.ColumnDef{Name: "n", Type: storage.TypeInt64},
	)
	schema, err := table.NewSchema(defs...)
	if err != nil {
		return nil, err
	}
	t := table.New(m.Spec.Name+"_params", schema)
	for _, key := range m.Order {
		g := m.Groups[key]
		if !g.OK() {
			continue
		}
		row := []expr.Value{expr.Int(g.Key)}
		for _, p := range g.Params {
			row = append(row, expr.Float(p))
		}
		row = append(row, expr.Float(g.ResidualSE), expr.Float(g.R2), expr.Int(int64(g.N)))
		if err := t.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Staleness quantifies data drift since the model was fitted.
type Staleness struct {
	RowsAtFit   int
	RowsNow     int
	AddedRows   int
	GrowthFrac  float64
	VersionLag  uint64
	NeverFitted bool
}

// StalenessAgainst computes drift relative to the current table state.
func (m *CapturedModel) StalenessAgainst(t *table.Table) Staleness {
	now := t.NumRows()
	s := Staleness{
		RowsAtFit:  m.FittedRows,
		RowsNow:    now,
		AddedRows:  now - m.FittedRows,
		VersionLag: t.Version() - m.FittedVersion,
	}
	if m.FittedRows > 0 {
		s.GrowthFrac = float64(s.AddedRows) / float64(m.FittedRows)
	} else {
		s.NeverFitted = true
	}
	return s
}

// Store is the model catalog.
type Store struct {
	mu      sync.RWMutex
	models  map[string]*CapturedModel
	byTable map[string][]*CapturedModel
	nextID  int
	epoch   uint64 // bumped on every capture/refit/drop/load
	fitPar  int    // GroupedFit worker bound; 0 = GOMAXPROCS

	// Changefeed state (feed.go): term increases across Load boundaries,
	// seq within one incarnation; changeLog is the bounded entry ring and
	// notify wakes pollers on every publish.
	term      uint64
	seq       uint64
	changeLog []Change
	notify    chan struct{}
}

// NewStore returns an empty catalog.
func NewStore() *Store {
	return &Store{
		models:  map[string]*CapturedModel{},
		byTable: map[string][]*CapturedModel{},
		term:    1,
		notify:  make(chan struct{}),
	}
}

// Epoch returns a counter that increases whenever the model catalog changes
// (capture, refit swap, drop, load). Plan caches record the epoch a plan was
// compiled under and discard entries on mismatch, so cached plans never
// outlive the models they were planned against. The epoch is persisted by
// Save and restored as a floor by Load, so a reopened store's epochs are
// strictly greater than any value observed before the restart — cached keys
// can never alias across a restart.
func (s *Store) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// SetFitParallelism bounds the worker pool that fits groups during Capture
// and Refit (0 restores the GOMAXPROCS default, 1 fits serially).
// Background refits go through Refit, so the knob covers them too.
func (s *Store) SetFitParallelism(n int) {
	s.mu.Lock()
	s.fitPar = n
	s.mu.Unlock()
}

func (s *Store) fitParallelism() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fitPar
}

// Capture fits spec against t and stores the result — steps 2–3 of the
// paper's Figure 2 (the database "dutifully fits the model … at the same
// time, the database stores the model as well as its parameters for later
// use"). A model with the same name must not already exist; a partitioned
// family "name#..." occupies its base name too (DROP MODEL name drops the
// family, so letting an unrelated plain model share the base would make
// that drop destroy both).
func (s *Store) Capture(t *table.Table, spec Spec) (*CapturedModel, error) {
	if err := s.nameFree(spec.Name); err != nil {
		return nil, err
	}
	cm, err := fitSpec(t, spec, nil, s.fitParallelism())
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.nameFreeLocked(spec.Name); err != nil {
		return nil, err
	}
	s.nextID++
	cm.ID = s.nextID
	cm.Version = 1
	s.models[spec.Name] = cm
	s.byTable[spec.Table] = append(s.byTable[spec.Table], cm)
	s.publishLocked(ChangeCapture, spec.Name, cm)
	return cm, nil
}

// Refit re-fits a stored model against the current table contents, bumping
// its version — the paper's response to "changing or added observations can
// change fit of the model dramatically". The optimizer warm-starts from the
// previous parameters group by group (recursive refitting), so groups whose
// law still holds converge almost immediately; RefitCold restarts from the
// spec's declared starting values instead, for laws that changed so much the
// old optimum misleads.
//
// Fitting runs entirely outside the store lock on a consistent table
// snapshot, so queries keep answering from the old version until the new one
// is swapped in atomically.
func (s *Store) Refit(name string, t *table.Table) (*CapturedModel, error) {
	return s.refit(name, t, true)
}

// RefitCold is Refit without warm-starting.
func (s *Store) RefitCold(name string, t *table.Table) (*CapturedModel, error) {
	return s.refit(name, t, false)
}

func (s *Store) refit(name string, t *table.Table, warm bool) (*CapturedModel, error) {
	s.mu.RLock()
	old, ok := s.models[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	var prev *CapturedModel
	if warm {
		prev = old
	}
	cm, err := fitSpec(t, old.Spec, prev, s.fitParallelism())
	if err != nil {
		return nil, err
	}
	if retainFailedGroups(cm, old) > 0 {
		cm.Quality = computeQuality(cm)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// The model may have been refit concurrently; chain versions off
	// whatever is current so the swap is last-writer-wins but monotonic.
	// A different ID means the model was dropped and re-captured (possibly
	// with a different formula) while we were fitting — swapping our result
	// in would silently clobber the user's new model, so abort instead.
	cur, ok := s.models[name]
	if !ok || cur.ID != old.ID {
		return nil, fmt.Errorf("%w: %q (dropped or replaced during refit)", ErrNotFound, name)
	}
	cm.ID = cur.ID
	cm.Version = cur.Version + 1
	s.models[name] = cm
	tbl := s.byTable[old.Spec.Table]
	for i, m := range tbl {
		if m.ID == cur.ID {
			tbl[i] = cm
			break
		}
	}
	s.publishLocked(ChangeRefit, name, cm)
	return cm, nil
}

// Get returns a model by name.
func (s *Store) Get(name string) (*CapturedModel, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.models[name]
	return m, ok
}

// Drop removes a model by name.
func (s *Store) Drop(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.models[name]
	if !ok {
		return false
	}
	delete(s.models, name)
	tbl := s.byTable[m.Spec.Table]
	for i := range tbl {
		if tbl[i] == m {
			s.byTable[m.Spec.Table] = append(tbl[:i], tbl[i+1:]...)
			break
		}
	}
	s.publishLocked(ChangeDrop, name, nil)
	return true
}

// DropForTable removes every model fitted on tableName (DROP TABLE cascades
// to its captured models: their parameter tables describe data that no
// longer exists). It returns the dropped model names.
func (s *Store) DropForTable(tableName string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := make([]string, 0, len(s.byTable[tableName]))
	for _, m := range s.byTable[tableName] {
		delete(s.models, m.Spec.Name)
		dropped = append(dropped, m.Spec.Name)
	}
	if len(dropped) > 0 {
		delete(s.byTable, tableName)
		// One feed entry per model: a follower applies drops by name.
		for _, name := range dropped {
			s.publishLocked(ChangeDrop, name, nil)
		}
	}
	return dropped
}

// List returns all models sorted by name.
func (s *Store) List() []*CapturedModel {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*CapturedModel, 0, len(s.models))
	for _, m := range s.models {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Name < out[j].Spec.Name })
	return out
}

// ForTable returns models fitted on a table, sorted by name.
func (s *Store) ForTable(tableName string) []*CapturedModel {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := append([]*CapturedModel(nil), s.byTable[tableName]...)
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Name < out[j].Spec.Name })
	return out
}

// SelectionPolicy tunes BestFor's choice among multiple candidate models —
// the §4.1 "multiple, partial or grouped models" challenge.
type SelectionPolicy struct {
	// MinMedianR2 rejects models whose median group R² is below this bound.
	MinMedianR2 float64
	// MaxStalenessFrac rejects models whose table grew by more than this
	// fraction since the fit.
	MaxStalenessFrac float64
}

// DefaultPolicy accepts well-fitting (R² ≥ 0.8), mostly fresh (≤ 20 % new
// rows) models.
var DefaultPolicy = SelectionPolicy{MinMedianR2: 0.8, MaxStalenessFrac: 0.2}

// BestFor picks the best stored model that predicts output on tableName,
// preferring higher median R² and breaking ties with lower residual SE.
func (s *Store) BestFor(tableName, output string, t *table.Table, pol SelectionPolicy) (*CapturedModel, error) {
	candidates := s.ForTable(tableName)
	var best *CapturedModel
	for _, m := range candidates {
		if m.Model.Output != output {
			continue
		}
		if m.Quality.MedianR2 < pol.MinMedianR2 {
			continue
		}
		if t != nil && pol.MaxStalenessFrac > 0 {
			if st := m.StalenessAgainst(t); st.GrowthFrac > pol.MaxStalenessFrac {
				continue
			}
		}
		if best == nil ||
			m.Quality.MedianR2 > best.Quality.MedianR2 ||
			(m.Quality.MedianR2 == best.Quality.MedianR2 &&
				m.Quality.MedianResidualSE < best.Quality.MedianResidualSE) {
			best = m
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: table %q output %q", ErrNoModel, tableName, output)
	}
	return best, nil
}

// fitSpec runs the fitting workload for a spec against a consistent table
// snapshot. When prev is non-nil, the fit warm-starts from prev's fitted
// parameters group by group.
// fitSpec fits one model spec against a consistent snapshot of t;
// parallelism bounds the per-group fitting workers (0 = GOMAXPROCS).
func fitSpec(t *table.Table, spec Spec, prev *CapturedModel, parallelism int) (*CapturedModel, error) {
	model, err := fit.ParseModel(spec.Formula, spec.Inputs)
	if err != nil {
		return nil, err
	}

	// Extract every needed column under one read-lock acquisition, so a fit
	// racing concurrent appends sees one consistent prefix of the table and
	// records exactly that version/row count for staleness tracking. Only
	// cheap copies and prefix views happen under the lock; the interpreted
	// WHERE pass and the fit itself run on them afterwards, entirely off the
	// writer's path.
	needed := append([]string{model.Output}, model.Inputs...)
	cols := map[string][]float64{}
	var group []int64
	var whereCols []storage.Column
	var version uint64
	var rows int
	err = t.Snapshot(func(sc []storage.Column, n int, v uint64) error {
		version, rows = v, n
		for _, name := range needed {
			vals, err := floatPrefix(t, sc, name, n)
			if err != nil {
				return err
			}
			cols[name] = vals
		}
		if spec.GroupBy != "" {
			g, err := intPrefix(t, sc, spec.GroupBy, n)
			if err != nil {
				return err
			}
			group = g
		}
		if spec.Where != nil {
			whereCols = make([]storage.Column, len(sc))
			for i := range sc {
				whereCols[i] = prefixView(sc[i], n)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if spec.Where != nil {
		keep, err := filterMask(t, whereCols, rows, spec.Where)
		if err != nil {
			return nil, err
		}
		for name, vals := range cols {
			cols[name] = applyMask(vals, keep)
		}
		if group != nil {
			var g []int64
			for i, k := range keep {
				if k {
					g = append(g, group[i])
				}
			}
			group = g
		}
	}

	opts := &fit.NLSOptions{}
	if spec.Method == "gn" {
		opts.Method = fit.GaussNewton
	}

	var startFor func(int64) map[string]float64
	if prev != nil {
		startFor = warmStartFrom(prev, model)
	}

	cm := &CapturedModel{
		Spec:          spec,
		Model:         model,
		Groups:        map[int64]*GroupParams{},
		FittedVersion: version,
		FittedRows:    rows,
	}
	if spec.GroupBy == "" {
		start := spec.Start
		if startFor != nil {
			if s := startFor(0); s != nil {
				start = s
			}
		}
		res, err := model.Fit(cols, start, opts)
		if err != nil {
			return nil, err
		}
		cm.Groups[0] = groupFromResult(0, res)
		cm.Order = []int64{0}
	} else {
		gf := &fit.GroupedFit{Model: model, Start: spec.Start, StartFor: startFor, Opts: opts, Parallelism: parallelism}
		results, err := gf.Run(group, cols)
		if err != nil {
			return nil, err
		}
		for _, gr := range results {
			if gr.Err != nil {
				cm.Groups[gr.Key] = &GroupParams{Key: gr.Key, FitErr: gr.Err.Error()}
			} else {
				cm.Groups[gr.Key] = groupFromResult(gr.Key, gr.Res)
			}
			cm.Order = append(cm.Order, gr.Key)
		}
	}
	cm.Quality = computeQuality(cm)
	return cm, nil
}

// retainFailedGroups copies the previous version's parameters into groups
// whose refit failed (new or shrunk data can break convergence for
// individual groups), recording the refit error in Retained. Without this, a
// background refit could silently turn answerable point queries into empty
// results. It returns the number of groups retained.
func retainFailedGroups(cm, old *CapturedModel) int {
	n := 0
	for key, g := range cm.Groups {
		if g.OK() {
			continue
		}
		og, ok := old.GroupFor(key)
		if !ok {
			continue
		}
		kept := *og // old models are immutable after the swap; sharing slices is safe
		kept.Retained = g.FitErr
		cm.Groups[key] = &kept
		n++
	}
	return n
}

// warmStartFrom maps a group key to starting values taken from a previously
// fitted model, or nil (fall back to the spec's declared start) when the
// group was unfitted or the parameter set changed.
func warmStartFrom(prev *CapturedModel, model *fit.Model) func(int64) map[string]float64 {
	return func(key int64) map[string]float64 {
		g, ok := prev.GroupFor(key)
		if !ok || len(g.Params) != len(model.Params) {
			return nil
		}
		start := make(map[string]float64, len(model.Params))
		for j, p := range model.Params {
			v := g.Params[j]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil
			}
			start[p] = v
		}
		return start
	}
}

// floatPrefix extracts the first n values of a numeric column as float64s.
// It is FloatColumn restricted to a snapshot prefix; callers hold the
// table's read lock through Snapshot, so the column holds exactly n rows and
// the word-wise Nulls.Any suffices.
func floatPrefix(t *table.Table, sc []storage.Column, name string, n int) ([]float64, error) {
	idx := t.Schema().Index(name)
	if idx < 0 {
		return nil, fmt.Errorf("table %s: no column %q", t.Name, name)
	}
	switch c := sc[idx].(type) {
	case *storage.Float64Column:
		if c.Nulls.Any() {
			return nil, fmt.Errorf("table %s: column %q contains NULLs", t.Name, name)
		}
		out := make([]float64, n)
		copy(out, c.Vals[:n])
		return out, nil
	case *storage.Int64Column:
		if c.Nulls.Any() {
			return nil, fmt.Errorf("table %s: column %q contains NULLs", t.Name, name)
		}
		out := make([]float64, n)
		for i, v := range c.Vals[:n] {
			out[i] = float64(v)
		}
		return out, nil
	}
	return nil, fmt.Errorf("table %s: column %q is not numeric", t.Name, name)
}

// intPrefix extracts the first n values of a BIGINT column.
func intPrefix(t *table.Table, sc []storage.Column, name string, n int) ([]int64, error) {
	idx := t.Schema().Index(name)
	if idx < 0 {
		return nil, fmt.Errorf("table %s: no column %q", t.Name, name)
	}
	c, ok := sc[idx].(*storage.Int64Column)
	if !ok {
		return nil, fmt.Errorf("table %s: column %q is not BIGINT", t.Name, name)
	}
	if c.Nulls.Any() {
		return nil, fmt.Errorf("table %s: column %q contains NULLs", t.Name, name)
	}
	out := make([]int64, n)
	copy(out, c.Vals[:n])
	return out, nil
}

// prefixView captures an immutable view of a column's first n rows: slice
// headers capped at n (a concurrent append may write past n or reallocate,
// but never mutates the first n elements) and prefix-cloned bitmaps. Views
// taken under the table lock stay valid after it is released, which is what
// lets the interpreted WHERE pass run without stalling writers.
func prefixView(c storage.Column, n int) storage.Column {
	switch col := c.(type) {
	case *storage.Int64Column:
		return &storage.Int64Column{Vals: col.Vals[:n:n], Nulls: col.Nulls.ClonePrefix(n)}
	case *storage.Float64Column:
		return &storage.Float64Column{Vals: col.Vals[:n:n], Nulls: col.Nulls.ClonePrefix(n)}
	case *storage.StringColumn:
		return &storage.StringColumn{Codes: col.Codes[:n:n], Dict: col.Dict, Nulls: col.Nulls.ClonePrefix(n)}
	case *storage.BoolColumn:
		return &storage.BoolColumn{Vals: col.Vals.ClonePrefix(n), Nulls: col.Nulls.ClonePrefix(n)}
	}
	return c
}

func groupFromResult(key int64, res *fit.Result) *GroupParams {
	g := &GroupParams{
		Key:        key,
		Params:     append([]float64(nil), res.Params...),
		ResidualSE: res.ResidualSE,
		R2:         res.R2,
		N:          res.N,
		DF:         res.DF,
		Iters:      res.Iterations,
	}
	if res.Cov != nil {
		p := len(res.Params)
		g.Cov = make([][]float64, p)
		for i := 0; i < p; i++ {
			g.Cov[i] = make([]float64, p)
			for j := 0; j < p; j++ {
				g.Cov[i][j] = res.Cov.At(i, j)
			}
		}
	}
	return g
}

func computeQuality(cm *CapturedModel) Quality {
	var r2s, ses []float64
	q := Quality{WorstR2: math.Inf(1)}
	for _, g := range cm.Groups {
		if !g.OK() {
			q.GroupsFailed++
			continue
		}
		q.GroupsOK++
		r2s = append(r2s, g.R2)
		ses = append(ses, g.ResidualSE)
		if g.R2 < q.WorstR2 {
			q.WorstR2 = g.R2
		}
	}
	if len(r2s) > 0 {
		q.MedianR2 = stats.Median(r2s)
		q.MeanR2 = stats.Mean(r2s)
		q.MedianResidualSE = stats.Median(ses)
	} else {
		q.WorstR2 = math.NaN()
	}
	return q
}

// filterMask evaluates the WHERE predicate over snapshot prefix views. It
// runs after the table lock is released — the views are immutable — so a
// large interpreted pass never stalls writers.
func filterMask(t *table.Table, sc []storage.Column, n int, where expr.Expr) ([]bool, error) {
	keep := make([]bool, n)
	names := t.Schema().Names()
	env := expr.MapEnv{}
	for i := 0; i < n; i++ {
		for c, name := range names {
			env[name] = sc[c].Value(i)
		}
		v, err := expr.Eval(where, env)
		if err != nil {
			return nil, err
		}
		if !v.IsNull() {
			b, err := v.AsBool()
			if err != nil {
				return nil, err
			}
			keep[i] = b
		}
	}
	return keep, nil
}

func applyMask(vals []float64, keep []bool) []float64 {
	out := make([]float64, 0, len(vals))
	for i, v := range vals {
		if keep[i] {
			out = append(out, v)
		}
	}
	return out
}
