package modelstore

import (
	"encoding/json"
	"fmt"
	"io"

	"datalaws/internal/expr"
	"datalaws/internal/fit"
	"datalaws/internal/table"
)

// The catalog persists as JSON: models travel in their source-code form
// (formula and WHERE predicate as text, §3: "we can store the models in
// their source code form inside the database") plus the numeric parameter
// tables; compiled evaluators and Jacobians are rebuilt on load.

type persistGroup struct {
	Key        int64       `json:"key"`
	Params     []float64   `json:"params,omitempty"`
	ResidualSE float64     `json:"residual_se,omitempty"`
	R2         float64     `json:"r2,omitempty"`
	N          int         `json:"n,omitempty"`
	DF         int         `json:"df,omitempty"`
	Iters      int         `json:"iters,omitempty"`
	Retained   string      `json:"retained,omitempty"`
	Cov        [][]float64 `json:"cov,omitempty"`
	FitErr     string      `json:"fit_err,omitempty"`
}

type persistModel struct {
	ID            int                `json:"id"`
	Name          string             `json:"name"`
	Table         string             `json:"table"`
	Formula       string             `json:"formula"`
	Inputs        []string           `json:"inputs"`
	GroupBy       string             `json:"group_by,omitempty"`
	WhereSrc      string             `json:"where,omitempty"`
	Start         map[string]float64 `json:"start,omitempty"`
	Method        string             `json:"method,omitempty"`
	Groups        []persistGroup     `json:"groups"`
	FittedVersion uint64             `json:"fitted_version"`
	FittedRows    int                `json:"fitted_rows"`
	Version       int                `json:"version"`
}

type persistFile struct {
	FormatVersion int            `json:"format_version"`
	NextID        int            `json:"next_id"`
	Models        []persistModel `json:"models"`
}

// Save writes the catalog as JSON.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pf := persistFile{FormatVersion: 1, NextID: s.nextID}
	for _, m := range s.models {
		pm := persistModel{
			ID:            m.ID,
			Name:          m.Spec.Name,
			Table:         m.Spec.Table,
			Formula:       m.Spec.Formula,
			Inputs:        m.Spec.Inputs,
			GroupBy:       m.Spec.GroupBy,
			Start:         m.Spec.Start,
			Method:        m.Spec.Method,
			FittedVersion: m.FittedVersion,
			FittedRows:    m.FittedRows,
			Version:       m.Version,
		}
		if m.Spec.Where != nil {
			pm.WhereSrc = m.Spec.Where.String()
		}
		for _, key := range m.Order {
			g := m.Groups[key]
			pm.Groups = append(pm.Groups, persistGroup{
				Key: g.Key, Params: g.Params, ResidualSE: g.ResidualSE,
				R2: g.R2, N: g.N, DF: g.DF, Iters: g.Iters, Retained: g.Retained,
				Cov: g.Cov, FitErr: g.FitErr,
			})
		}
		pf.Models = append(pf.Models, pm)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(pf)
}

// Load reads a catalog written by Save, rebuilding compiled models from
// their source formulas. It fails on duplicate names against the current
// contents.
func (s *Store) Load(r io.Reader) error {
	var pf persistFile
	if err := json.NewDecoder(r).Decode(&pf); err != nil {
		return fmt.Errorf("modelstore: decoding: %w", err)
	}
	if pf.FormatVersion != 1 {
		return fmt.Errorf("modelstore: unsupported format version %d", pf.FormatVersion)
	}
	loaded := make([]*CapturedModel, 0, len(pf.Models))
	for _, pm := range pf.Models {
		cm, err := rebuildModel(pm)
		if err != nil {
			return fmt.Errorf("modelstore: model %q: %w", pm.Name, err)
		}
		loaded = append(loaded, cm)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, cm := range loaded {
		if _, exists := s.models[cm.Spec.Name]; exists {
			return fmt.Errorf("%w: %q", ErrDuplicate, cm.Spec.Name)
		}
	}
	for _, cm := range loaded {
		s.models[cm.Spec.Name] = cm
		s.byTable[cm.Spec.Table] = append(s.byTable[cm.Spec.Table], cm)
	}
	if pf.NextID > s.nextID {
		s.nextID = pf.NextID
	}
	if len(loaded) > 0 {
		s.epoch++
	}
	return nil
}

func rebuildModel(pm persistModel) (*CapturedModel, error) {
	model, err := fit.ParseModel(pm.Formula, pm.Inputs)
	if err != nil {
		return nil, err
	}
	spec := Spec{
		Name: pm.Name, Table: pm.Table, Formula: pm.Formula,
		Inputs: pm.Inputs, GroupBy: pm.GroupBy, Start: pm.Start, Method: pm.Method,
	}
	if pm.WhereSrc != "" {
		w, err := expr.Parse(pm.WhereSrc)
		if err != nil {
			return nil, fmt.Errorf("parsing where %q: %w", pm.WhereSrc, err)
		}
		spec.Where = w
	}
	cm := &CapturedModel{
		ID: pm.ID, Spec: spec, Model: model,
		Groups:        map[int64]*GroupParams{},
		FittedVersion: pm.FittedVersion,
		FittedRows:    pm.FittedRows,
		Version:       pm.Version,
	}
	for _, pg := range pm.Groups {
		g := &GroupParams{
			Key: pg.Key, Params: pg.Params, ResidualSE: pg.ResidualSE,
			R2: pg.R2, N: pg.N, DF: pg.DF, Iters: pg.Iters, Retained: pg.Retained,
			Cov: pg.Cov, FitErr: pg.FitErr,
		}
		if g.OK() && len(g.Params) != len(model.Params) {
			return nil, fmt.Errorf("group %d has %d params, formula has %d", pg.Key, len(g.Params), len(model.Params))
		}
		cm.Groups[pg.Key] = g
		cm.Order = append(cm.Order, pg.Key)
	}
	cm.Quality = computeQuality(cm)
	return cm, nil
}

// SaveParamTableCSV exports a model's parameter table as CSV — the shape of
// the paper's Table 1 right-hand side, for downstream tools.
func SaveParamTableCSV(m *CapturedModel, w io.Writer) error {
	pt, err := m.ParamTable()
	if err != nil {
		return err
	}
	return table.WriteCSV(pt, w)
}
