package modelstore

import (
	"encoding/json"
	"fmt"
	"io"

	"datalaws/internal/expr"
	"datalaws/internal/fit"
	"datalaws/internal/table"
)

// The catalog persists as JSON: models travel in their source-code form
// (formula and WHERE predicate as text, §3: "we can store the models in
// their source code form inside the database") plus the numeric parameter
// tables; compiled evaluators and Jacobians are rebuilt on load. The same
// record types ship over the replication wire (gob), which is why they are
// exported: a model delta is exactly a persisted model, minus the rows.

// GroupRecord is the serialized form of one GroupParams row.
type GroupRecord struct {
	Key        int64       `json:"key"`
	Params     []float64   `json:"params,omitempty"`
	ResidualSE float64     `json:"residual_se,omitempty"`
	R2         float64     `json:"r2,omitempty"`
	N          int         `json:"n,omitempty"`
	DF         int         `json:"df,omitempty"`
	Iters      int         `json:"iters,omitempty"`
	Retained   string      `json:"retained,omitempty"`
	Cov        [][]float64 `json:"cov,omitempty"`
	FitErr     string      `json:"fit_err,omitempty"`
}

// ModelRecord is the serialized form of one CapturedModel: the spec in
// source form plus the fitted parameter table.
type ModelRecord struct {
	ID            int                `json:"id"`
	Name          string             `json:"name"`
	Table         string             `json:"table"`
	Formula       string             `json:"formula"`
	Inputs        []string           `json:"inputs"`
	GroupBy       string             `json:"group_by,omitempty"`
	WhereSrc      string             `json:"where,omitempty"`
	Start         map[string]float64 `json:"start,omitempty"`
	Method        string             `json:"method,omitempty"`
	Groups        []GroupRecord      `json:"groups"`
	FittedVersion uint64             `json:"fitted_version"`
	FittedRows    int                `json:"fitted_rows"`
	Version       int                `json:"version"`
}

type persistFile struct {
	FormatVersion int           `json:"format_version"`
	NextID        int           `json:"next_id"`
	Epoch         uint64        `json:"epoch,omitempty"`
	Term          uint64        `json:"term,omitempty"`
	Models        []ModelRecord `json:"models"`
}

// RecordOf serializes a captured model. Captured models are immutable after
// the store swap, so no lock is needed.
func RecordOf(m *CapturedModel) ModelRecord {
	r := ModelRecord{
		ID:            m.ID,
		Name:          m.Spec.Name,
		Table:         m.Spec.Table,
		Formula:       m.Spec.Formula,
		Inputs:        m.Spec.Inputs,
		GroupBy:       m.Spec.GroupBy,
		Start:         m.Spec.Start,
		Method:        m.Spec.Method,
		FittedVersion: m.FittedVersion,
		FittedRows:    m.FittedRows,
		Version:       m.Version,
	}
	if m.Spec.Where != nil {
		r.WhereSrc = m.Spec.Where.String()
	}
	for _, key := range m.Order {
		g := m.Groups[key]
		r.Groups = append(r.Groups, GroupRecord{
			Key: g.Key, Params: g.Params, ResidualSE: g.ResidualSE,
			R2: g.R2, N: g.N, DF: g.DF, Iters: g.Iters, Retained: g.Retained,
			Cov: g.Cov, FitErr: g.FitErr,
		})
	}
	return r
}

// ModelFromRecord rebuilds a captured model from its serialized form,
// re-parsing the formula and WHERE source and recomputing quality.
func ModelFromRecord(r ModelRecord) (*CapturedModel, error) {
	return rebuildModel(r)
}

// Save writes the catalog as JSON, including the feed position (epoch and
// term) so a reopened store resumes strictly past every pre-restart value.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pf := persistFile{FormatVersion: 1, NextID: s.nextID, Epoch: s.epoch, Term: s.term}
	for _, m := range s.models {
		pf.Models = append(pf.Models, RecordOf(m))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(pf)
}

// Load reads a catalog written by Save, rebuilding compiled models from
// their source formulas. It fails on duplicate names against the current
// contents.
//
// Load advances the store strictly past the persisted feed position: the
// epoch continues above max(current, persisted) — never resetting toward
// zero, so epoch-keyed plan caches cannot alias across a restart — and the
// term increments past max(current, persisted), invalidating every cursor
// issued by the previous incarnation (followers resync; WAL replay after
// Load republishes in the new term, so nothing is missed).
func (s *Store) Load(r io.Reader) error {
	var pf persistFile
	if err := json.NewDecoder(r).Decode(&pf); err != nil {
		return fmt.Errorf("modelstore: decoding: %w", err)
	}
	if pf.FormatVersion != 1 {
		return fmt.Errorf("modelstore: unsupported format version %d", pf.FormatVersion)
	}
	loaded := make([]*CapturedModel, 0, len(pf.Models))
	for _, pm := range pf.Models {
		cm, err := rebuildModel(pm)
		if err != nil {
			return fmt.Errorf("modelstore: model %q: %w", pm.Name, err)
		}
		loaded = append(loaded, cm)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, cm := range loaded {
		if _, exists := s.models[cm.Spec.Name]; exists {
			return fmt.Errorf("%w: %q", ErrDuplicate, cm.Spec.Name)
		}
	}
	if pf.NextID > s.nextID {
		s.nextID = pf.NextID
	}
	if pf.Epoch > s.epoch {
		s.epoch = pf.Epoch
	}
	s.epoch++
	if pf.Term > s.term {
		s.term = pf.Term
	}
	s.term++
	s.seq = 0
	s.changeLog = nil
	for _, cm := range loaded {
		s.installLocked(cm)
	}
	return nil
}

func rebuildModel(pm ModelRecord) (*CapturedModel, error) {
	model, err := fit.ParseModel(pm.Formula, pm.Inputs)
	if err != nil {
		return nil, err
	}
	spec := Spec{
		Name: pm.Name, Table: pm.Table, Formula: pm.Formula,
		Inputs: pm.Inputs, GroupBy: pm.GroupBy, Start: pm.Start, Method: pm.Method,
	}
	if pm.WhereSrc != "" {
		w, err := expr.Parse(pm.WhereSrc)
		if err != nil {
			return nil, fmt.Errorf("parsing where %q: %w", pm.WhereSrc, err)
		}
		spec.Where = w
	}
	cm := &CapturedModel{
		ID: pm.ID, Spec: spec, Model: model,
		Groups:        map[int64]*GroupParams{},
		FittedVersion: pm.FittedVersion,
		FittedRows:    pm.FittedRows,
		Version:       pm.Version,
	}
	for _, pg := range pm.Groups {
		g := &GroupParams{
			Key: pg.Key, Params: pg.Params, ResidualSE: pg.ResidualSE,
			R2: pg.R2, N: pg.N, DF: pg.DF, Iters: pg.Iters, Retained: pg.Retained,
			Cov: pg.Cov, FitErr: pg.FitErr,
		}
		if g.OK() && len(g.Params) != len(model.Params) {
			return nil, fmt.Errorf("group %d has %d params, formula has %d", pg.Key, len(g.Params), len(model.Params))
		}
		cm.Groups[pg.Key] = g
		cm.Order = append(cm.Order, pg.Key)
	}
	cm.Quality = computeQuality(cm)
	return cm, nil
}

// SaveParamTableCSV exports a model's parameter table as CSV — the shape of
// the paper's Table 1 right-hand side, for downstream tools.
func SaveParamTableCSV(m *CapturedModel, w io.Writer) error {
	pt, err := m.ParamTable()
	if err != nil {
		return err
	}
	return table.WriteCSV(pt, w)
}
