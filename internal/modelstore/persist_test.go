package modelstore

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"datalaws/internal/expr"
)

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	tb, _ := lofarFixture(t)
	s := NewStore()
	spec := powerSpec("spectra")
	w, _ := expr.Parse("nu > 0.1")
	spec.Where = w
	orig, err := s.Capture(tb, spec)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}

	s2 := NewStore()
	if err := s2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get("spectra")
	if !ok {
		t.Fatal("model missing after load")
	}
	if got.Spec.Formula != orig.Spec.Formula {
		t.Fatalf("formula %q vs %q", got.Spec.Formula, orig.Spec.Formula)
	}
	if got.Spec.Where == nil || got.Spec.Where.String() != orig.Spec.Where.String() {
		t.Fatalf("where %v vs %v", got.Spec.Where, orig.Spec.Where)
	}
	if got.Version != orig.Version || got.FittedRows != orig.FittedRows {
		t.Fatal("snapshot fields lost")
	}
	if len(got.Groups) != len(orig.Groups) {
		t.Fatalf("groups %d vs %d", len(got.Groups), len(orig.Groups))
	}
	for key, og := range orig.Groups {
		gg, ok := got.Groups[key]
		if !ok {
			t.Fatalf("group %d missing", key)
		}
		for i := range og.Params {
			if math.Abs(og.Params[i]-gg.Params[i]) > 1e-12 {
				t.Fatalf("group %d param %d: %g vs %g", key, i, og.Params[i], gg.Params[i])
			}
		}
		if math.Abs(og.R2-gg.R2) > 1e-12 {
			t.Fatal("R2 lost")
		}
	}
	if math.Abs(got.Quality.MedianR2-orig.Quality.MedianR2) > 1e-12 {
		t.Fatal("quality not recomputed")
	}
	// The reloaded model must still evaluate: its compiled form was rebuilt
	// from source.
	g, ok := got.GroupFor(1)
	if !ok {
		t.Fatal("group 1 unusable after load")
	}
	v := got.Model.Eval(g.Params, []float64{0.14})
	if math.IsNaN(v) || v <= 0 {
		t.Fatalf("reloaded model evaluates to %g", v)
	}
	// And ForTable indexing was rebuilt.
	if len(s2.ForTable("measurements")) != 1 {
		t.Fatal("byTable index lost")
	}
}

func TestStoreLoadDuplicateRejected(t *testing.T) {
	tb, _ := lofarFixture(t)
	s := NewStore()
	if _, err := s.Capture(tb, powerSpec("spectra")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := s.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("want duplicate error loading into the same store")
	}
}

func TestStoreLoadBadInput(t *testing.T) {
	s := NewStore()
	if err := s.Load(strings.NewReader("not json")); err == nil {
		t.Fatal("want decode error")
	}
	if err := s.Load(strings.NewReader(`{"format_version": 99}`)); err == nil {
		t.Fatal("want version error")
	}
	if err := s.Load(strings.NewReader(`{"format_version":1,"models":[{"name":"x","formula":"bad","inputs":[]}]}`)); err == nil {
		t.Fatal("want formula error")
	}
}

func TestSaveParamTableCSV(t *testing.T) {
	tb, _ := lofarFixture(t)
	s := NewStore()
	m, err := s.Capture(tb, powerSpec("spectra"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveParamTableCSV(m, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "group_key,alpha,p,residual_se,r2,n") {
		t.Fatalf("header: %q", strings.SplitN(out, "\n", 2)[0])
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 31 { // header + 30 groups
		t.Fatalf("rows: %d", len(strings.Split(strings.TrimSpace(out), "\n")))
	}
}
