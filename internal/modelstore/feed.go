package modelstore

import "sort"

// The changefeed is the replication surface of the catalog: every mutation
// that bumps the epoch also appends a Change entry, so a subscriber (a
// model-shipping read replica) can follow captures, refit swaps and drops
// without ever seeing a raw row. Positions are (term, seq) pairs: seq
// increases within one store incarnation, term increases across Load
// boundaries (persisted in the snapshot), so a cursor issued before a
// restart can never alias a position after it — the follower is told to
// resync instead.

// Cursor identifies a position in the model changefeed. The zero Cursor is
// "before everything" and always triggers a resync.
type Cursor struct {
	Term uint64
	Seq  uint64
}

// ChangeKind classifies a changefeed entry.
type ChangeKind uint8

const (
	// ChangeCapture is a newly captured (or newly visible, after load or
	// resync) model.
	ChangeCapture ChangeKind = iota + 1
	// ChangeRefit is an atomic swap of a model's fitted parameters.
	ChangeRefit
	// ChangeDrop removes a model; Model is nil.
	ChangeDrop
)

func (k ChangeKind) String() string {
	switch k {
	case ChangeCapture:
		return "capture"
	case ChangeRefit:
		return "refit"
	case ChangeDrop:
		return "drop"
	}
	return "unknown"
}

// Change is one changefeed entry. Model is the post-change captured model
// (immutable once published) or nil for drops. Partition-family members
// appear as individual entries under their qualified "model#part" names.
type Change struct {
	Pos   Cursor
	Kind  ChangeKind
	Name  string
	Model *CapturedModel
}

// feedRingCap bounds the retained change log. Followers that fall further
// behind than the ring get a resync (full catalog) instead of history.
const feedRingCap = 1024

// publishLocked records one catalog change: it advances the sequence, bumps
// the epoch (every published change invalidates plans), appends to the
// bounded ring and wakes watchers. Callers hold s.mu.
func (s *Store) publishLocked(kind ChangeKind, name string, m *CapturedModel) {
	s.seq++
	s.epoch++
	c := Change{Pos: Cursor{Term: s.term, Seq: s.seq}, Kind: kind, Name: name, Model: m}
	s.changeLog = append(s.changeLog, c)
	if len(s.changeLog) > feedRingCap {
		s.changeLog = append(s.changeLog[:0:0], s.changeLog[len(s.changeLog)-feedRingCap:]...)
	}
	if s.notify != nil {
		close(s.notify)
	}
	s.notify = make(chan struct{})
}

// FeedPos returns the current end-of-feed position. A follower that applies
// a full snapshot of the catalog may start polling from here.
func (s *Store) FeedPos() Cursor {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Cursor{Term: s.term, Seq: s.seq}
}

// Watch returns a channel that is closed on the next catalog change. Callers
// re-arm by calling Watch again after the close; the usual loop is
// ChangesSince → (empty) → select on Watch/timeout → ChangesSince.
func (s *Store) Watch() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.notify == nil {
		s.notify = make(chan struct{})
	}
	return s.notify
}

// ChangesSince returns the changes after cur, at most max entries (max <= 0
// means no bound), plus the cursor to poll from next. When cur is from an
// older incarnation (term mismatch) or predates the retained ring, resync is
// true and the returned changes are the full current catalog as synthetic
// capture entries, all stamped at the current feed position — the follower
// must replace its state wholesale, dropping anything absent from the set.
func (s *Store) ChangesSince(cur Cursor, max int) (changes []Change, next Cursor, resync bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pos := Cursor{Term: s.term, Seq: s.seq}
	needResync := cur.Term != s.term || cur.Seq > s.seq
	if !needResync && cur.Seq < s.seq {
		// Entries (cur.Seq, s.seq] must all still be in the ring.
		if len(s.changeLog) == 0 || s.changeLog[0].Pos.Seq > cur.Seq+1 {
			needResync = true
		}
	}
	if needResync {
		names := make([]string, 0, len(s.models))
		for name := range s.models {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			changes = append(changes, Change{Pos: pos, Kind: ChangeCapture, Name: name, Model: s.models[name]})
		}
		return changes, pos, true
	}
	for _, c := range s.changeLog {
		if c.Pos.Seq <= cur.Seq {
			continue
		}
		if max > 0 && len(changes) >= max {
			break
		}
		changes = append(changes, c)
	}
	next = cur
	if n := len(changes); n > 0 {
		next = changes[n-1].Pos
	}
	return changes, next, false
}

// Install puts a model into the catalog without fitting, replacing any
// same-name entry — the replica-side apply of a changefeed capture or refit.
// The shipped ID and Version are kept so a replica's catalog mirrors the
// primary's. Replicas have no WAL (their state is reconstructible from the
// primary's feed), which is why Install sits outside the engine's
// log-then-apply gate.
func (s *Store) Install(cm *CapturedModel) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.installLocked(cm)
}

func (s *Store) installLocked(cm *CapturedModel) {
	kind := ChangeCapture
	if old, ok := s.models[cm.Spec.Name]; ok {
		kind = ChangeRefit
		tbl := s.byTable[old.Spec.Table]
		for i := range tbl {
			if tbl[i] == old {
				s.byTable[old.Spec.Table] = append(tbl[:i], tbl[i+1:]...)
				break
			}
		}
	}
	s.models[cm.Spec.Name] = cm
	s.byTable[cm.Spec.Table] = append(s.byTable[cm.Spec.Table], cm)
	if cm.ID > s.nextID {
		s.nextID = cm.ID
	}
	s.publishLocked(kind, cm.Spec.Name, cm)
}

// Uninstall removes a model by name on a replica, publishing the drop. It is
// Drop without the durability contract: replica catalogs are rebuilt from
// the primary's changefeed, never from a local log.
func (s *Store) Uninstall(name string) bool {
	return s.Drop(name)
}
