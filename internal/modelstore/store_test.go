package modelstore

import (
	"errors"
	"math"
	"testing"

	"datalaws/internal/expr"
	"datalaws/internal/synth"
	"datalaws/internal/table"
)

func lofarFixture(t *testing.T) (*table.Table, *synth.LOFARData) {
	t.Helper()
	d := synth.GenerateLOFAR(synth.LOFARConfig{
		Sources: 30, ObsPerSource: 40, NoiseFrac: 0.03, AnomalyFrac: 0, Seed: 9,
	})
	tb, err := synth.LOFARTable("measurements", d)
	if err != nil {
		t.Fatal(err)
	}
	return tb, d
}

func powerSpec(name string) Spec {
	return Spec{
		Name:    name,
		Table:   "measurements",
		Formula: "intensity ~ p * pow(nu, alpha)",
		Inputs:  []string{"nu"},
		GroupBy: "source",
		Start:   map[string]float64{"p": 1, "alpha": -1},
	}
}

func TestCaptureGroupedModel(t *testing.T) {
	tb, d := lofarFixture(t)
	s := NewStore()
	m, err := s.Capture(tb, powerSpec("spectra"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Quality.GroupsOK != 30 || m.Quality.GroupsFailed != 0 {
		t.Fatalf("groups: %+v", m.Quality)
	}
	if m.Quality.MedianR2 < 0.8 {
		t.Fatalf("median R² = %g", m.Quality.MedianR2)
	}
	// Recovered parameters track the generator truth.
	for key, g := range m.Groups {
		truth := d.Truth[key]
		p, _ := paramByName(m, g, "p")
		alpha, _ := paramByName(m, g, "alpha")
		if math.Abs(p-truth.P) > 0.2*truth.P+0.02 {
			t.Fatalf("source %d: p=%g truth=%g", key, p, truth.P)
		}
		if math.Abs(alpha-truth.Alpha) > 0.25 {
			t.Fatalf("source %d: alpha=%g truth=%g", key, alpha, truth.Alpha)
		}
	}
	// Version and snapshot recorded.
	if m.Version != 1 || m.FittedRows != tb.NumRows() {
		t.Fatalf("version=%d rows=%d", m.Version, m.FittedRows)
	}
}

func paramByName(m *CapturedModel, g *GroupParams, name string) (float64, bool) {
	for i, p := range m.Model.Params {
		if p == name {
			return g.Params[i], true
		}
	}
	return 0, false
}

func TestCaptureDuplicateRejected(t *testing.T) {
	tb, _ := lofarFixture(t)
	s := NewStore()
	if _, err := s.Capture(tb, powerSpec("m1")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Capture(tb, powerSpec("m1")); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("want ErrDuplicate, got %v", err)
	}
}

func TestCaptureUngrouped(t *testing.T) {
	tb, _ := lofarFixture(t)
	s := NewStore()
	spec := Spec{
		Name:    "global",
		Table:   "measurements",
		Formula: "intensity ~ a + b*nu",
		Inputs:  []string{"nu"},
	}
	m, err := s.Capture(tb, spec)
	if err != nil {
		t.Fatal(err)
	}
	if m.Grouped() {
		t.Fatal("ungrouped model reports grouped")
	}
	g, ok := m.GroupFor(12345) // any key maps to the single fit
	if !ok || len(g.Params) != 2 {
		t.Fatalf("GroupFor: %v %v", g, ok)
	}
}

func TestCaptureWithWhere(t *testing.T) {
	tb, _ := lofarFixture(t)
	s := NewStore()
	spec := powerSpec("partial")
	w, err := expr.Parse("nu > 0.13")
	if err != nil {
		t.Fatal(err)
	}
	spec.Where = w
	m, err := s.Capture(tb, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Only 3 of 4 bands pass the filter, so every group has fewer points.
	for _, g := range m.Groups {
		if !g.OK() {
			continue
		}
		if g.N >= 40 {
			t.Fatalf("group %d used %d rows; filter not applied", g.Key, g.N)
		}
	}
}

func TestParamTable(t *testing.T) {
	tb, _ := lofarFixture(t)
	s := NewStore()
	m, err := s.Capture(tb, powerSpec("spectra"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := m.ParamTable()
	if err != nil {
		t.Fatal(err)
	}
	if pt.NumRows() != 30 {
		t.Fatalf("param table rows = %d", pt.NumRows())
	}
	names := pt.Schema().Names()
	want := []string{"group_key", "alpha", "p", "residual_se", "r2", "n"}
	for i, w := range want {
		if names[i] != w {
			t.Fatalf("param table columns = %v", names)
		}
	}
	// The paper's Table 1 compression claim: parameters ≪ raw data.
	if m.ParamSizeBytes() >= tb.RawSizeBytes()/5 {
		t.Fatalf("params %d bytes vs raw %d: expected ≪", m.ParamSizeBytes(), tb.RawSizeBytes())
	}
}

func TestStalenessAndRefit(t *testing.T) {
	tb, _ := lofarFixture(t)
	s := NewStore()
	m, err := s.Capture(tb, powerSpec("spectra"))
	if err != nil {
		t.Fatal(err)
	}
	st := m.StalenessAgainst(tb)
	if st.AddedRows != 0 || st.GrowthFrac != 0 {
		t.Fatalf("fresh model reports staleness: %+v", st)
	}
	// Append ~30% more rows.
	add := tb.NumRows() * 3 / 10
	for i := 0; i < add; i++ {
		tb.AppendRow([]expr.Value{expr.Int(1), expr.Float(0.15), expr.Float(2.0)})
	}
	st = m.StalenessAgainst(tb)
	if st.GrowthFrac < 0.25 {
		t.Fatalf("growth = %g", st.GrowthFrac)
	}
	// Refit bumps version and refreshes the snapshot.
	m2, err := s.Refit("spectra", tb)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version != 2 {
		t.Fatalf("version = %d", m2.Version)
	}
	if m2.StalenessAgainst(tb).AddedRows != 0 {
		t.Fatal("refit did not refresh snapshot")
	}
	got, _ := s.Get("spectra")
	if got != m2 {
		t.Fatal("store still returns the old model")
	}
}

func TestRefitUnknown(t *testing.T) {
	tb, _ := lofarFixture(t)
	s := NewStore()
	if _, err := s.Refit("nope", tb); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestDropAndList(t *testing.T) {
	tb, _ := lofarFixture(t)
	s := NewStore()
	s.Capture(tb, powerSpec("a"))
	s.Capture(tb, Spec{
		Name: "b", Table: "measurements",
		Formula: "intensity ~ c0 + c1*nu", Inputs: []string{"nu"},
	})
	if got := s.List(); len(got) != 2 || got[0].Spec.Name != "a" {
		t.Fatalf("List = %v", got)
	}
	if got := s.ForTable("measurements"); len(got) != 2 {
		t.Fatalf("ForTable = %d", len(got))
	}
	if !s.Drop("a") || s.Drop("a") {
		t.Fatal("Drop")
	}
	if got := s.ForTable("measurements"); len(got) != 1 || got[0].Spec.Name != "b" {
		t.Fatalf("ForTable after drop = %v", got)
	}
}

func TestBestForPrefersBetterModel(t *testing.T) {
	tb, _ := lofarFixture(t)
	s := NewStore()
	// The power law fits well; a constant-only model fits poorly.
	if _, err := s.Capture(tb, powerSpec("good")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Capture(tb, Spec{
		Name: "poor", Table: "measurements",
		Formula: "intensity ~ c0 + 0*nu + c1*nu", Inputs: []string{"nu"},
		GroupBy: "source",
	}); err != nil {
		t.Fatal(err)
	}
	best, err := s.BestFor("measurements", "intensity", tb, SelectionPolicy{MinMedianR2: 0})
	if err != nil {
		t.Fatal(err)
	}
	if best.Spec.Name != "good" {
		t.Fatalf("best = %q", best.Spec.Name)
	}
}

func TestBestForRejectsStale(t *testing.T) {
	tb, _ := lofarFixture(t)
	s := NewStore()
	if _, err := s.Capture(tb, powerSpec("spectra")); err != nil {
		t.Fatal(err)
	}
	add := tb.NumRows() / 2
	for i := 0; i < add; i++ {
		tb.AppendRow([]expr.Value{expr.Int(1), expr.Float(0.15), expr.Float(2.0)})
	}
	if _, err := s.BestFor("measurements", "intensity", tb, DefaultPolicy); !errors.Is(err, ErrNoModel) {
		t.Fatalf("want ErrNoModel for stale model, got %v", err)
	}
	// Refitting restores eligibility.
	if _, err := s.Refit("spectra", tb); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BestFor("measurements", "intensity", tb, DefaultPolicy); err != nil {
		t.Fatalf("refit model not selected: %v", err)
	}
}

func TestBestForNoModel(t *testing.T) {
	tb, _ := lofarFixture(t)
	s := NewStore()
	if _, err := s.BestFor("measurements", "intensity", tb, DefaultPolicy); !errors.Is(err, ErrNoModel) {
		t.Fatalf("want ErrNoModel, got %v", err)
	}
}

func TestCaptureBadSpecs(t *testing.T) {
	tb, _ := lofarFixture(t)
	s := NewStore()
	cases := []Spec{
		{Name: "x", Table: "measurements", Formula: "no tilde", Inputs: []string{"nu"}},
		{Name: "x", Table: "measurements", Formula: "intensity ~ p*pow(nu,alpha)", Inputs: []string{"nu"}, GroupBy: "nosuch"},
		{Name: "x", Table: "measurements", Formula: "nosuch ~ p*pow(nu,alpha)", Inputs: []string{"nu"}},
	}
	for i, spec := range cases {
		if _, err := s.Capture(tb, spec); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestGroupedModelWithFailedGroups(t *testing.T) {
	// One group has too few observations; it must be recorded as failed,
	// not dropped silently.
	tb, _ := lofarFixture(t)
	tb.AppendRow([]expr.Value{expr.Int(999), expr.Float(0.12), expr.Float(1.0)})
	s := NewStore()
	m, err := s.Capture(tb, powerSpec("spectra"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Quality.GroupsFailed != 1 {
		t.Fatalf("failed groups = %d", m.Quality.GroupsFailed)
	}
	g, ok := m.Groups[999]
	if !ok || g.OK() {
		t.Fatal("failed group must be recorded with its error")
	}
	if _, usable := m.GroupFor(999); usable {
		t.Fatal("failed group must not be usable")
	}
}
