package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSumKahan(t *testing.T) {
	// 1 + 1e16 − 1e16 loses the 1 under naive summation order.
	xs := []float64{1, 1e16, -1e16}
	if got := Sum(xs); got != 1 {
		t.Fatalf("Sum = %g, want 1", got)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %g, want 5", got)
	}
	if got := Variance(xs); !close(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %g, want %g", got, 32.0/7.0)
	}
	if got := StdDev(xs); !close(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %g", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("want NaN for insufficient input")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = %g,%g", min, max)
	}
	min, max = MinMax(nil)
	if !math.IsNaN(min) || !math.IsNaN(max) {
		t.Fatal("want NaN for empty")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.p); !close(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := Median([]float64{1, 2, 3, 4}); !close(got, 2.5, 1e-12) {
		t.Fatalf("Median = %g, want 2.5", got)
	}
	if !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("want NaN for invalid input")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated input: %v", xs)
	}
}

func TestCovarianceCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Correlation(xs, ys); !close(got, 1, 1e-12) {
		t.Fatalf("Correlation = %g, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Correlation(xs, neg); !close(got, -1, 1e-12) {
		t.Fatalf("Correlation = %g, want -1", got)
	}
	if got := Covariance(xs, ys); !close(got, 5, 1e-12) {
		t.Fatalf("Covariance = %g, want 5", got)
	}
}

func TestMeanStdMatchesTwoPass(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 5
		}
		m, s := MeanStd(xs)
		return close(m, Mean(xs), 1e-9) && close(s, StdDev(xs), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalCDF(t *testing.T) {
	n := StdNormal
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1, 0.8413447460685429},
	}
	for _, c := range cases {
		if got := n.CDF(c.x); !close(got, c.want, 1e-12) {
			t.Fatalf("CDF(%g) = %.15g, want %.15g", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	n := Normal{Mu: 2, Sigma: 3}
	for _, p := range []float64{0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999} {
		x := n.Quantile(p)
		if got := n.CDF(x); !close(got, p, 1e-12) {
			t.Fatalf("CDF(Quantile(%g)) = %g", p, got)
		}
	}
	if !math.IsInf(n.Quantile(0), -1) || !math.IsInf(n.Quantile(1), 1) {
		t.Fatal("want infinities at the boundary")
	}
}

func TestNormalPDF(t *testing.T) {
	if got := StdNormal.PDF(0); !close(got, 1/math.Sqrt(2*math.Pi), 1e-15) {
		t.Fatalf("PDF(0) = %g", got)
	}
}

func TestStudentTCDF(t *testing.T) {
	// Reference values from R: pt(2, df=5) = 0.9490303; pt(-1, df=10) = 0.1704466.
	cases := []struct{ nu, x, want float64 }{
		{5, 2, 0.9490302605850709},
		{10, -1, 0.17044656615103004},
		{1, 0, 0.5},
	}
	for _, c := range cases {
		got := StudentT{Nu: c.nu}.CDF(c.x)
		if !close(got, c.want, 1e-6) {
			t.Fatalf("t CDF(nu=%g, %g) = %.8g, want %.8g", c.nu, c.x, got, c.want)
		}
	}
}

// simpson integrates f over [a,b] with n (even) panels.
func simpson(f func(float64) float64, a, b float64, n int) float64 {
	h := (b - a) / float64(n)
	s := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			s += 4 * f(x)
		} else {
			s += 2 * f(x)
		}
	}
	return s * h / 3
}

func TestStudentTCDFMatchesIntegratedPDF(t *testing.T) {
	// Independent cross-check: the incomplete-beta CDF must match numeric
	// integration of the density.
	for _, nu := range []float64{3, 8, 30} {
		d := StudentT{Nu: nu}
		for _, x := range []float64{-2, -0.5, 0.7, 1.96} {
			want := 0.5 + simpson(d.PDF, 0, x, 4000)
			if got := d.CDF(x); !close(got, want, 1e-9) {
				t.Fatalf("t CDF(nu=%g,%g) = %.10g, integral %.10g", nu, x, got, want)
			}
		}
	}
}

func TestStudentTQuantile(t *testing.T) {
	// qt(0.975, 10) = 2.228139; qt(0.975, 2) = 4.302653.
	cases := []struct{ nu, p, want float64 }{
		{10, 0.975, 2.2281388519649385},
		{2, 0.975, 4.302652729911275},
		{5, 0.5, 0},
		{5, 0.025, -2.5705818366147395},
	}
	for _, c := range cases {
		got := StudentT{Nu: c.nu}.Quantile(c.p)
		if !close(got, c.want, 1e-8) {
			t.Fatalf("t Quantile(nu=%g, %g) = %.10g, want %.10g", c.nu, c.p, got, c.want)
		}
	}
}

func TestStudentTQuantileRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nu := 1 + rng.Float64()*50
		p := 0.01 + rng.Float64()*0.98
		d := StudentT{Nu: nu}
		x := d.Quantile(p)
		return close(d.CDF(x), p, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStudentTApproachesNormal(t *testing.T) {
	// With large df the t distribution converges to the normal.
	d := StudentT{Nu: 1e6}
	for _, x := range []float64{-2, -1, 0, 1, 2} {
		if !close(d.CDF(x), StdNormal.CDF(x), 1e-5) {
			t.Fatalf("t(1e6).CDF(%g) = %g, normal = %g", x, d.CDF(x), StdNormal.CDF(x))
		}
	}
}

func TestFDistCDF(t *testing.T) {
	// pf(1, 1, 1) = 0.5 exactly; boundary behaviour at x = 0.
	if got := (FDist{D1: 1, D2: 1}).CDF(1); !close(got, 0.5, 1e-10) {
		t.Fatalf("F CDF(1,1,1) = %g, want 0.5", got)
	}
	if got := (FDist{D1: 2, D2: 2}).CDF(0); got != 0 {
		t.Fatalf("F CDF at 0 = %g, want 0", got)
	}
}

func TestFDistCDFMatchesIntegratedDensity(t *testing.T) {
	// Cross-check the incomplete-beta implementation against numeric
	// integration of the F density.
	fpdf := func(d1, d2 float64) func(float64) float64 {
		lg1, _ := math.Lgamma(d1 / 2)
		lg2, _ := math.Lgamma(d2 / 2)
		lg12, _ := math.Lgamma((d1 + d2) / 2)
		logc := lg12 - lg1 - lg2 + (d1/2)*math.Log(d1/d2)
		return func(x float64) float64 {
			if x <= 0 {
				return 0
			}
			return math.Exp(logc + (d1/2-1)*math.Log(x) - ((d1+d2)/2)*math.Log(1+d1*x/d2))
		}
	}
	cases := []struct{ d1, d2, x float64 }{
		{5, 10, 3}, {3, 12, 3.49}, {2, 8, 1.2}, {10, 10, 0.8},
	}
	for _, c := range cases {
		want := simpson(fpdf(c.d1, c.d2), 1e-12, c.x, 20000)
		got := FDist{D1: c.d1, D2: c.d2}.CDF(c.x)
		if !close(got, want, 1e-6) {
			t.Fatalf("F CDF(%g,%g,%g) = %.8g, integral %.8g", c.d1, c.d2, c.x, got, want)
		}
	}
}

func TestFDistSurvival(t *testing.T) {
	f := FDist{D1: 3, D2: 12}
	x := 3.49 // approx 0.05 critical value for F(3,12)
	p := f.SurvivalF(x)
	if !close(p, 0.05, 5e-3) {
		t.Fatalf("F survival = %g, want ≈0.05", p)
	}
}

func TestChiSquaredCDF(t *testing.T) {
	// pchisq(3.841459, 1) = 0.95; pchisq(5, 5) = 0.5841198.
	cases := []struct{ k, x, want float64 }{
		{1, 3.841458820694124, 0.95},
		{5, 5, 0.5841198},
		{2, 0, 0},
	}
	for _, c := range cases {
		got := ChiSquared{K: c.k}.CDF(c.x)
		if !close(got, c.want, 1e-6) {
			t.Fatalf("chi2 CDF(%g, %g) = %.7g, want %.7g", c.k, c.x, got, c.want)
		}
	}
}

func TestRegIncBetaProperties(t *testing.T) {
	// Boundary values and symmetry I_x(a,b) = 1 − I_{1−x}(b,a).
	if got := RegIncBeta(2, 3, 0); got != 0 {
		t.Fatalf("I_0 = %g", got)
	}
	if got := RegIncBeta(2, 3, 1); got != 1 {
		t.Fatalf("I_1 = %g", got)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 0.5 + rng.Float64()*10
		b := 0.5 + rng.Float64()*10
		x := rng.Float64()
		lhs := RegIncBeta(a, b, x)
		rhs := 1 - RegIncBeta(b, a, 1-x)
		return close(lhs, rhs, 1e-10) && lhs >= 0 && lhs <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRegIncBetaUniform(t *testing.T) {
	// I_x(1,1) = x (Beta(1,1) is uniform).
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); !close(got, x, 1e-12) {
			t.Fatalf("I_%g(1,1) = %g", x, got)
		}
	}
}

func TestRegLowerGamma(t *testing.T) {
	// P(1, x) = 1 − e^{−x}.
	for _, x := range []float64{0.1, 1, 2, 5} {
		want := 1 - math.Exp(-x)
		if got := RegLowerGamma(1, x); !close(got, want, 1e-12) {
			t.Fatalf("P(1,%g) = %g, want %g", x, got, want)
		}
	}
	if got := RegLowerGamma(3, 0); got != 0 {
		t.Fatalf("P(3,0) = %g", got)
	}
	// Monotone in x.
	prev := 0.0
	for x := 0.5; x < 20; x += 0.5 {
		cur := RegLowerGamma(4, x)
		if cur < prev {
			t.Fatalf("P(4,·) not monotone at %g", x)
		}
		prev = cur
	}
}

func TestCDFMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nu := 1 + rng.Float64()*20
		d := StudentT{Nu: nu}
		a := rng.NormFloat64() * 3
		b := a + rng.Float64()*3
		return d.CDF(a) <= d.CDF(b)+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
