// Package stats provides the statistical substrate for the fitting engine:
// descriptive statistics, special functions (regularized incomplete beta and
// gamma), and probability distributions (Normal, Student-t, F, Chi-squared)
// with CDFs and inverse CDFs. These back the goodness-of-fit judgments
// (R², F-tests) and the error bounds on approximate answers that the paper
// requires of a model-harvesting database.
package stats

import (
	"math"
	"sort"
)

// Sum returns the sum of xs using Neumaier compensated summation, which
// preserves low-order bits even when a large term temporarily swamps the
// running sum (e.g. 1 + 1e16 − 1e16 = 1).
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		t := sum + x
		if math.Abs(sum) >= math.Abs(x) {
			comp += (sum - t) + x
		} else {
			comp += (x - t) + sum
		}
		sum = t
	}
	return sum + comp
}

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased sample variance (n−1 denominator), or NaN
// when fewer than two observations are supplied.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest values, or (NaN, NaN) for empty
// input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Quantile returns the p-th quantile (0 ≤ p ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the R default). The input
// is not modified.
func Quantile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 || p < 0 || p > 1 {
		return math.NaN()
	}
	s := make([]float64, n)
	copy(s, xs)
	sort.Float64s(s)
	if n == 1 {
		return s[0]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return s[n-1]
	}
	return s[lo] + (h-float64(lo))*(s[hi]-s[lo])
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Covariance returns the unbiased sample covariance of two equally long
// series, or NaN if the lengths differ or n < 2.
func Covariance(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var s float64
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(n-1)
}

// Correlation returns the Pearson correlation coefficient of two series.
func Correlation(xs, ys []float64) float64 {
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 {
		return math.NaN()
	}
	return Covariance(xs, ys) / (sx * sy)
}

// MeanStd returns mean and sample standard deviation in a single pass
// (Welford's algorithm), useful for streaming over column chunks.
func MeanStd(xs []float64) (mean, std float64) {
	var m, m2 float64
	for i, x := range xs {
		d := x - m
		m += d / float64(i+1)
		m2 += d * (x - m)
	}
	if len(xs) < 2 {
		return m, math.NaN()
	}
	return m, math.Sqrt(m2 / float64(len(xs)-1))
}
