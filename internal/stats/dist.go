package stats

import "math"

// Normal is the Gaussian distribution with mean Mu and standard deviation
// Sigma.
type Normal struct {
	Mu, Sigma float64
}

// StdNormal is the standard normal distribution N(0, 1).
var StdNormal = Normal{Mu: 0, Sigma: 1}

// PDF returns the probability density at x.
func (n Normal) PDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-0.5*z*z) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns P(X ≤ x).
func (n Normal) CDF(x float64) float64 {
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// Quantile returns the inverse CDF at probability p using Acklam's rational
// approximation refined by one Halley step; accurate to ~1e-15.
func (n Normal) Quantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	z := acklam(p)
	// One Halley refinement step against the exact CDF.
	e := StdNormal.CDF(z) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(z*z/2)
	z = z - u/(1+z*u/2)
	return n.Mu + n.Sigma*z
}

// acklam computes the standard-normal quantile via Peter Acklam's algorithm.
func acklam(p float64) float64 {
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// StudentT is Student's t distribution with Nu degrees of freedom.
type StudentT struct {
	Nu float64
}

// PDF returns the density at x.
func (t StudentT) PDF(x float64) float64 {
	lg1, _ := math.Lgamma((t.Nu + 1) / 2)
	lg2, _ := math.Lgamma(t.Nu / 2)
	return math.Exp(lg1-lg2) / math.Sqrt(t.Nu*math.Pi) *
		math.Pow(1+x*x/t.Nu, -(t.Nu+1)/2)
}

// CDF returns P(T ≤ x) via the regularized incomplete beta function.
func (t StudentT) CDF(x float64) float64 {
	if math.IsNaN(x) {
		return math.NaN()
	}
	if t.Nu <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0.5
	}
	ib := RegIncBeta(t.Nu/2, 0.5, t.Nu/(t.Nu+x*x))
	if x > 0 {
		return 1 - 0.5*ib
	}
	return 0.5 * ib
}

// Quantile returns the inverse CDF at probability p using a normal starting
// point refined by bisection+Newton; suitable for critical values in
// confidence intervals.
func (t StudentT) Quantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	if p == 0.5 {
		return 0
	}
	// Symmetric: solve for the upper half and mirror.
	if p < 0.5 {
		return -t.Quantile(1 - p)
	}
	// Start from the normal quantile, expand an upper bracket, then bisect
	// with Newton acceleration.
	x := StdNormal.Quantile(p)
	lo, hi := 0.0, math.Max(x*4, 16.0)
	for t.CDF(hi) < p {
		hi *= 2
		if hi > 1e10 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		c := t.CDF(x)
		d := t.PDF(x)
		if d > 1e-300 {
			nx := x - (c-p)/d
			if nx > lo && nx < hi {
				x = nx
			} else {
				x = (lo + hi) / 2
			}
		} else {
			x = (lo + hi) / 2
		}
		c = t.CDF(x)
		if math.Abs(c-p) < 1e-14 {
			return x
		}
		if c < p {
			lo = x
		} else {
			hi = x
		}
	}
	return x
}

// FDist is the F distribution with D1 numerator and D2 denominator degrees
// of freedom.
type FDist struct {
	D1, D2 float64
}

// CDF returns P(F ≤ x).
func (f FDist) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return RegIncBeta(f.D1/2, f.D2/2, f.D1*x/(f.D1*x+f.D2))
}

// SurvivalF returns the F-test p-value P(F > x).
func (f FDist) SurvivalF(x float64) float64 { return 1 - f.CDF(x) }

// ChiSquared is the chi-squared distribution with K degrees of freedom.
type ChiSquared struct {
	K float64
}

// CDF returns P(X ≤ x).
func (c ChiSquared) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return RegLowerGamma(c.K/2, x/2)
}
