package stats

import "math"

// RegIncBeta returns the regularized incomplete beta function I_x(a, b),
// computed with the continued-fraction expansion (Numerical Recipes §6.4,
// modified Lentz's method). It is the workhorse behind the Student-t and F
// distribution CDFs.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	case a <= 0 || b <= 0:
		return math.NaN()
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-16
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// RegLowerGamma returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a), using the series expansion for x < a+1 and the
// continued fraction otherwise.
func RegLowerGamma(a, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case a <= 0:
		return math.NaN()
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaCF(a, x)
}

func gammaSeries(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 3e-16
	)
	lga, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for n := 0; n < maxIter; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lga)
}

func gammaCF(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 3e-16
		fpmin   = 1e-300
	)
	lga, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lga) * h
}
