// Package explore implements the paper's "model exploration" opportunity
// (§4.2): "we can find interesting subsets of the data by analyzing the
// first derivative of the model function for regions in the parameter space
// with high gradients". The symbolic derivatives come from internal/expr;
// the grid comes from the enumerable input domains.
package explore

import (
	"fmt"
	"math"
	"sort"

	"datalaws/internal/expr"
	"datalaws/internal/modelstore"
)

// GradientPoint is one grid point annotated with the model's gradient
// magnitude with respect to its inputs.
type GradientPoint struct {
	Group  int64
	Inputs []float64
	Value  float64
	// GradNorm is ‖∂f/∂inputs‖₂ at this point.
	GradNorm float64
}

// HighGradientRegions evaluates the input-gradient magnitude of the model
// over the cross product of the supplied input domains for every fitted
// group, returning the topK points with the steepest response — the
// "interesting" regions a user should explore first.
func HighGradientRegions(m *modelstore.CapturedModel, domains map[string][]float64, topK int) ([]GradientPoint, error) {
	model := m.Model
	// Symbolic input derivatives.
	derivs := make([]expr.Expr, len(model.Inputs))
	for i, in := range model.Inputs {
		d, err := expr.Diff(model.RHS, in)
		if err != nil {
			return nil, fmt.Errorf("explore: model not differentiable in %q: %w", in, err)
		}
		derivs[i] = d
	}
	// Compile against [params..., inputs...] rows, as the fit engine does.
	index := map[string]int{}
	for j, p := range model.Params {
		index[p] = j
	}
	for k, in := range model.Inputs {
		index[in] = len(model.Params) + k
	}
	derivFns := make([]func([]float64) float64, len(derivs))
	for i, d := range derivs {
		fn, err := expr.Compile(d, index)
		if err != nil {
			return nil, fmt.Errorf("explore: compiling derivative: %w", err)
		}
		derivFns[i] = fn
	}

	doms := make([][]float64, len(model.Inputs))
	for i, in := range model.Inputs {
		vals, ok := domains[in]
		if !ok || len(vals) == 0 {
			return nil, fmt.Errorf("explore: missing domain for input %q", in)
		}
		doms[i] = vals
	}

	var pts []GradientPoint
	row := make([]float64, len(model.Params)+len(model.Inputs))
	idx := make([]int, len(doms))
	for _, key := range m.Order {
		g := m.Groups[key]
		if !g.OK() {
			continue
		}
		copy(row, g.Params)
		for i := range idx {
			idx[i] = 0
		}
		for {
			inputs := make([]float64, len(doms))
			for i := range doms {
				inputs[i] = doms[i][idx[i]]
				row[len(model.Params)+i] = inputs[i]
			}
			var ss float64
			for _, fn := range derivFns {
				d := fn(row)
				ss += d * d
			}
			pts = append(pts, GradientPoint{
				Group:    key,
				Inputs:   inputs,
				Value:    model.Eval(g.Params, inputs),
				GradNorm: math.Sqrt(ss),
			})
			// Odometer.
			i := len(idx) - 1
			for ; i >= 0; i-- {
				idx[i]++
				if idx[i] < len(doms[i]) {
					break
				}
				idx[i] = 0
			}
			if i < 0 {
				break
			}
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].GradNorm > pts[j].GradNorm })
	if topK > 0 && topK < len(pts) {
		pts = pts[:topK]
	}
	return pts, nil
}
