package explore

import (
	"math"
	"testing"

	"datalaws/internal/modelstore"
	"datalaws/internal/synth"
)

func TestHighGradientRegionsPowerLaw(t *testing.T) {
	d := synth.GenerateLOFAR(synth.LOFARConfig{
		Sources: 10, ObsPerSource: 40, NoiseFrac: 0.02, AnomalyFrac: 0, Seed: 51,
	})
	tb, err := synth.LOFARTable("m", d)
	if err != nil {
		t.Fatal(err)
	}
	store := modelstore.NewStore()
	m, err := store.Capture(tb, modelstore.Spec{
		Name: "spectra", Table: "m",
		Formula: "intensity ~ p * pow(nu, alpha)",
		Inputs:  []string{"nu"}, GroupBy: "source",
		Start: map[string]float64{"p": 1, "alpha": -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := HighGradientRegions(m, map[string][]float64{"nu": synth.Bands}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10*len(synth.Bands) {
		t.Fatalf("points = %d, want full grid", len(pts))
	}
	// For I = p·ν^α with α<0, |dI/dν| within each source is largest at the
	// lowest frequency (sources differ in brightness, so the global ranking
	// interleaves them).
	bestPerGroup := map[int64]GradientPoint{}
	for _, p := range pts {
		if cur, ok := bestPerGroup[p.Group]; !ok || p.GradNorm > cur.GradNorm {
			bestPerGroup[p.Group] = p
		}
	}
	for g, p := range bestPerGroup {
		if p.Inputs[0] != 0.12 {
			t.Fatalf("group %d: steepest at nu=%g, want 0.12", g, p.Inputs[0])
		}
	}
	// The global top point is the lowest band of its own source too.
	if pts[0].Inputs[0] != 0.12 {
		t.Fatalf("global top at nu=%g", pts[0].Inputs[0])
	}
	// Gradient magnitude should match the analytic derivative.
	top := pts[0]
	g := m.Groups[top.Group]
	var alpha, pconst float64
	for i, name := range m.Model.Params {
		switch name {
		case "alpha":
			alpha = g.Params[i]
		case "p":
			pconst = g.Params[i]
		}
	}
	want := math.Abs(pconst * alpha * math.Pow(0.12, alpha-1))
	if math.Abs(top.GradNorm-want)/want > 1e-9 {
		t.Fatalf("gradient %g, analytic %g", top.GradNorm, want)
	}
	// Ordering is descending.
	for i := 1; i < len(pts); i++ {
		if pts[i].GradNorm > pts[i-1].GradNorm {
			t.Fatal("not sorted")
		}
	}
}

func TestHighGradientErrors(t *testing.T) {
	d := synth.GenerateLOFAR(synth.LOFARConfig{Sources: 3, ObsPerSource: 20, Seed: 5})
	tb, _ := synth.LOFARTable("m", d)
	store := modelstore.NewStore()
	m, err := store.Capture(tb, modelstore.Spec{
		Name: "s", Table: "m",
		Formula: "intensity ~ p * pow(nu, alpha)",
		Inputs:  []string{"nu"}, GroupBy: "source",
		Start: map[string]float64{"p": 1, "alpha": -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := HighGradientRegions(m, map[string][]float64{}, 5); err == nil {
		t.Fatal("want missing-domain error")
	}
}
