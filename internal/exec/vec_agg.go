package exec

import (
	"fmt"
	"strconv"

	"datalaws/internal/expr"
)

// VecHashAggregate is the vectorized HashAggregate: group keys and aggregate
// arguments are evaluated once per batch through compiled kernels (no
// per-row expression trees, no per-identifier map lookups), then folded into
// the same aggState machinery as the row operator so results match exactly.
// Output columns are "$grp0…" followed by "$agg0…", like HashAggregate.
type VecHashAggregate struct {
	Child      VectorOperator
	GroupExprs []expr.Expr
	Aggs       []AggSpec

	cols       []string
	groupKerns []kernelFn
	argKerns   []kernelFn
	groups     []*aggGroup
	pos        int
}

// Columns implements VectorOperator.
func (h *VecHashAggregate) Columns() []string {
	if h.cols == nil {
		h.cols = aggOutputCols(len(h.GroupExprs), len(h.Aggs))
	}
	return h.cols
}

// Open implements VectorOperator: it fully consumes the child and builds the
// groups.
func (h *VecHashAggregate) Open() error {
	childCols := h.Child.Columns()
	h.groupKerns = make([]kernelFn, len(h.GroupExprs))
	for i, g := range h.GroupExprs {
		k, err := compileKernel(g, childCols)
		if err != nil {
			return fmt.Errorf("exec: GROUP BY: %w", err)
		}
		h.groupKerns[i] = k
	}
	h.argKerns = make([]kernelFn, len(h.Aggs))
	for i, spec := range h.Aggs {
		if spec.Arg == nil {
			continue // COUNT(*) needs no argument kernel
		}
		k, err := compileKernel(spec.Arg, childCols)
		if err != nil {
			return fmt.Errorf("exec: aggregate arg: %w", err)
		}
		h.argKerns[i] = k
	}
	if err := h.Child.Open(); err != nil {
		return err
	}
	h.groups = nil
	h.pos = 0

	index := map[string]*aggGroup{}
	var order []*aggGroup
	keyVecs := make([]*Vector, len(h.groupKerns))
	argVecs := make([]*Vector, len(h.Aggs))
	var kb []byte
	for {
		b, err := h.Child.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		sel := b.selection()
		for i, k := range h.groupKerns {
			v, err := k(b, sel)
			if err != nil {
				return fmt.Errorf("exec: GROUP BY: %w", err)
			}
			keyVecs[i] = v
		}
		for i, k := range h.argKerns {
			if k == nil {
				continue
			}
			v, err := k(b, sel)
			if err != nil {
				return fmt.Errorf("exec: aggregate arg: %w", err)
			}
			argVecs[i] = v
		}
		if len(h.groupKerns) == 0 {
			// Global aggregation: one group, no key building.
			if len(order) == 0 {
				grp := &aggGroup{states: make([]aggState, len(h.Aggs))}
				order = append(order, grp)
			}
			if err := foldAggArgs(order[0], h.Aggs, argVecs, sel); err != nil {
				return err
			}
			continue
		}
		for _, i := range sel {
			kb = kb[:0]
			for _, kv := range keyVecs {
				kb = appendKeyEntry(kb, kv, i)
				kb = append(kb, 0)
			}
			grp, ok := index[string(kb)]
			if !ok {
				key := make([]expr.Value, len(keyVecs))
				for j, kv := range keyVecs {
					key[j] = kv.Value(i)
				}
				grp = &aggGroup{key: key, states: make([]aggState, len(h.Aggs))}
				index[string(kb)] = grp
				order = append(order, grp)
			}
			for a, spec := range h.Aggs {
				var v expr.Value
				if spec.Arg == nil {
					v = expr.Int(1)
				} else {
					v = argVecs[a].Value(i)
				}
				if err := grp.states[a].update(spec.Kind, v); err != nil {
					return fmt.Errorf("exec: aggregate: %w", err)
				}
			}
		}
	}
	// A global aggregate over zero rows still yields one output row.
	if len(order) == 0 && len(h.GroupExprs) == 0 {
		order = append(order, &aggGroup{states: make([]aggState, len(h.Aggs))})
	}
	h.groups = order
	return nil
}

// foldAggArgs folds a batch's aggregate argument vectors into one group's
// states using bulk/typed paths where possible; shared by the serial
// aggregate's global path and the parallel partial-aggregate phase.
func foldAggArgs(grp *aggGroup, aggs []AggSpec, argVecs []*Vector, sel []int) error {
	for a, spec := range aggs {
		st := &grp.states[a]
		if spec.Arg == nil {
			// COUNT(*): every selected row counts, no per-row work.
			st.count += int64(len(sel))
			continue
		}
		v := argVecs[a]
		switch {
		case v.Kind == expr.KindFloat && isNumericAgg(spec.Kind):
			for _, i := range sel {
				if v.Null != nil && v.Null[i] {
					continue
				}
				st.addFloat(spec.Kind, v.F[i])
			}
		case v.Kind == expr.KindInt && isNumericAgg(spec.Kind):
			for _, i := range sel {
				if v.Null != nil && v.Null[i] {
					continue
				}
				st.addFloat(spec.Kind, float64(v.I[i]))
			}
		default:
			for _, i := range sel {
				if err := st.update(spec.Kind, v.Value(i)); err != nil {
					return fmt.Errorf("exec: aggregate: %w", err)
				}
			}
		}
	}
	return nil
}

// isNumericAgg reports whether the aggregate folds through addFloat (COUNT,
// SUM, AVG, VAR, STDDEV — MIN/MAX preserve the argument's kind and go
// through the boxed path).
func isNumericAgg(k AggKind) bool {
	switch k {
	case AggCount, AggSum, AggAvg, AggVar, AggStdDev:
		return true
	}
	return false
}

// appendKeyEntry renders one group-key entry exactly as Value.String() does
// so batch and row grouping agree byte-for-byte.
func appendKeyEntry(kb []byte, v *Vector, i int) []byte {
	if v.IsNull(i) {
		return append(kb, "NULL"...)
	}
	switch v.Kind {
	case expr.KindInt:
		return strconv.AppendInt(kb, v.I[i], 10)
	case expr.KindFloat:
		return strconv.AppendFloat(kb, v.F[i], 'g', -1, 64)
	case expr.KindString:
		return strconv.AppendQuote(kb, v.S[i])
	case expr.KindBool:
		if v.B[i] {
			return append(kb, "TRUE"...)
		}
		return append(kb, "FALSE"...)
	}
	return append(kb, v.Value(i).String()...)
}

// NextBatch implements VectorOperator, emitting the grouped results.
func (h *VecHashAggregate) NextBatch() (*Batch, error) {
	if h.pos >= len(h.groups) {
		return nil, nil
	}
	lo := h.pos
	hi := lo + BatchSize
	if hi > len(h.groups) {
		hi = len(h.groups)
	}
	h.pos = hi
	return emitGroupBatch(h.groups, lo, hi, len(h.GroupExprs), h.Aggs), nil
}

// emitGroupBatch materializes groups [lo, hi) as a columnar batch; shared
// by the serial and parallel hash aggregates.
func emitGroupBatch(groups []*aggGroup, lo, hi, ngroup int, aggs []AggSpec) *Batch {
	n := hi - lo
	b := &Batch{N: n, Cols: make([]*Vector, ngroup+len(aggs))}
	vals := make([]expr.Value, n)
	for c := 0; c < ngroup; c++ {
		for i := 0; i < n; i++ {
			vals[i] = groups[lo+i].key[c]
		}
		b.Cols[c] = vectorFromValues(vals)
	}
	for a, spec := range aggs {
		for i := 0; i < n; i++ {
			vals[i] = groups[lo+i].states[a].final(spec.Kind)
		}
		b.Cols[ngroup+a] = vectorFromValues(vals)
	}
	return b
}

// Close implements VectorOperator.
func (h *VecHashAggregate) Close() error {
	h.groups = nil
	return h.Child.Close()
}
