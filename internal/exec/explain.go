package exec

import (
	"fmt"
	"strings"
)

// Explainer lets external operators (e.g. the model scan) describe
// themselves in EXPLAIN output.
type Explainer interface {
	ExplainInfo() string
}

// PlanString renders an operator tree as an indented plan, one operator per
// line, children indented below their parent.
func PlanString(op Operator) string {
	var sb strings.Builder
	writePlan(&sb, op, 0)
	return sb.String()
}

func writePlan(sb *strings.Builder, op Operator, depth int) {
	indent := strings.Repeat("  ", depth)
	switch o := op.(type) {
	case *TableScan:
		fmt.Fprintf(sb, "%sTableScan %s (%d rows)%s\n", indent, o.Table.Name, o.Table.NumRows(),
			chunkExplain(o.Table, o.Where, o.alias))
	case *ValuesScan:
		fmt.Fprintf(sb, "%sValuesScan (%d rows)\n", indent, len(o.Rows))
	case *Filter:
		fmt.Fprintf(sb, "%sFilter %s\n", indent, o.Pred)
		writePlan(sb, o.Child, depth+1)
	case *Project:
		fmt.Fprintf(sb, "%sProject %s\n", indent, strings.Join(o.Names, ", "))
		writePlan(sb, o.Child, depth+1)
	case *HashAggregate:
		var parts []string
		for _, g := range o.GroupExprs {
			parts = append(parts, g.String())
		}
		fmt.Fprintf(sb, "%sHashAggregate group=[%s] aggs=%d\n", indent, strings.Join(parts, ", "), len(o.Aggs))
		writePlan(sb, o.Child, depth+1)
	case *HashJoin:
		fmt.Fprintf(sb, "%sHashJoin on %s\n", indent, o.On)
		writePlan(sb, o.Left, depth+1)
		writePlan(sb, o.Right, depth+1)
	case *Sort:
		fmt.Fprintf(sb, "%sSort keys=%d\n", indent, len(o.Keys))
		writePlan(sb, o.Child, depth+1)
	case *Limit:
		fmt.Fprintf(sb, "%sLimit %d\n", indent, o.N)
		writePlan(sb, o.Child, depth+1)
	case *Concat:
		fmt.Fprintf(sb, "%sConcat (%d children)\n", indent, len(o.Children))
		for _, c := range o.Children {
			writePlan(sb, c, depth+1)
		}
	case *sliceOp:
		fmt.Fprintf(sb, "%sStripHiddenColumns keep=%d\n", indent, o.N)
		writePlan(sb, o.Child, depth+1)
	case *rowAdapter:
		fmt.Fprintf(sb, "%sVectorized\n", indent)
		writeVecPlan(sb, o.V, depth+1)
	default:
		if ex, ok := op.(Explainer); ok {
			fmt.Fprintf(sb, "%s%s\n", indent, ex.ExplainInfo())
			return
		}
		fmt.Fprintf(sb, "%s%T\n", indent, op)
	}
}

// writeVecPlan renders the batch pipeline below a row adapter.
func writeVecPlan(sb *strings.Builder, op VectorOperator, depth int) {
	indent := strings.Repeat("  ", depth)
	switch o := op.(type) {
	case *VecTableScan:
		fmt.Fprintf(sb, "%sVecTableScan %s (%d rows)%s\n", indent, o.Table.Name, o.Table.NumRows(),
			chunkExplain(o.Table, o.Where, o.aliasName()))
	case *VecValuesScan:
		fmt.Fprintf(sb, "%sVecValuesScan (%d rows)\n", indent, len(o.Rows))
	case *VecFilter:
		fmt.Fprintf(sb, "%sVecFilter %s\n", indent, o.Pred)
		writeVecPlan(sb, o.Child, depth+1)
	case *VecProject:
		fmt.Fprintf(sb, "%sVecProject %s\n", indent, strings.Join(o.Names, ", "))
		writeVecPlan(sb, o.Child, depth+1)
	case *VecHashAggregate:
		var parts []string
		for _, g := range o.GroupExprs {
			parts = append(parts, g.String())
		}
		fmt.Fprintf(sb, "%sVecHashAggregate group=[%s] aggs=%d\n", indent, strings.Join(parts, ", "), len(o.Aggs))
		writeVecPlan(sb, o.Child, depth+1)
	case *VecConcat:
		fmt.Fprintf(sb, "%sVecConcat (%d children)\n", indent, len(o.Children))
		for _, c := range o.Children {
			writeVecPlan(sb, c, depth+1)
		}
	case *VecGather:
		fmt.Fprintf(sb, "%sGather workers=%d (morsel-driven, in order)\n", indent, o.Workers())
		writeVecPlan(sb, o.pipes[0].pipe, depth+1)
	case *VecParallelHashAggregate:
		var parts []string
		for _, g := range o.GroupExprs {
			parts = append(parts, g.String())
		}
		fmt.Fprintf(sb, "%sParallelHashAggregate group=[%s] aggs=%d workers=%d (partial+merge)\n",
			indent, strings.Join(parts, ", "), len(o.Aggs), o.Workers())
		writeVecPlan(sb, o.pipes[0].pipe, depth+1)
	case *vecMorselScan:
		fmt.Fprintf(sb, "%sVecMorselScan %s (%d rows)%s\n", indent, o.shared.tbl.Name, o.shared.tbl.NumRows(),
			chunkExplain(o.shared.tbl, o.shared.where, o.shared.alias))
	case *batchAdapter:
		fmt.Fprintf(sb, "%sRowSource\n", indent)
		writePlan(sb, o.Op, depth+1)
	default:
		if ex, ok := op.(Explainer); ok {
			fmt.Fprintf(sb, "%s%s\n", indent, ex.ExplainInfo())
			return
		}
		fmt.Fprintf(sb, "%s%T\n", indent, op)
	}
}
