package exec

import (
	"fmt"
	"strings"
	"testing"

	"datalaws/internal/expr"
	"datalaws/internal/sql"
	"datalaws/internal/storage"
	"datalaws/internal/table"
)

// partedFixture builds a catalog with a 4-partition table and an identical
// unpartitioned copy, rows rows total.
func partedFixture(t *testing.T, rows int) *table.Catalog {
	t.Helper()
	cat := table.NewCatalog()
	schema, err := table.NewSchema(
		table.ColumnDef{Name: "k", Type: storage.TypeInt64},
		table.ColumnDef{Name: "x", Type: storage.TypeFloat64},
		table.ColumnDef{Name: "s", Type: storage.TypeString},
	)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := cat.CreatePartitioned("t", schema, "k", []table.RangePartition{
		{Name: "p0", Upper: 100},
		{Name: "p1", Upper: 200},
		{Name: "p2", Upper: 300},
		{Name: "p3", Max: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := cat.Create("flat", schema)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([][]expr.Value, 0, rows)
	for i := 0; i < rows; i++ {
		k := int64((i * 13) % 400)
		row := []expr.Value{expr.Int(k), expr.Float(float64(i) * 0.5), expr.Str(fmt.Sprintf("s%d", i%7))}
		batch = append(batch, row)
	}
	if n, err := pt.AppendRows(batch); err != nil || n != rows {
		t.Fatalf("partitioned append: %d, %v", n, err)
	}
	if n, err := flat.AppendRows(batch); err != nil || n != rows {
		t.Fatalf("flat append: %d, %v", n, err)
	}
	return cat
}

// partitionQueries reference the partitioned table as "t"; the same text
// with "flat" substituted runs against the unpartitioned copy.
var partitionQueries = []string{
	"SELECT * FROM t",
	"SELECT k, x FROM t WHERE k = 150",
	"SELECT k, x FROM t WHERE k >= 100 AND k < 200",
	"SELECT count(*), sum(x) FROM t WHERE k < 100",
	"SELECT k, count(*) FROM t GROUP BY k ORDER BY k LIMIT 10",
	"SELECT s, count(*), avg(x) FROM t GROUP BY s ORDER BY s",
	"SELECT k, x FROM t WHERE k > 250 ORDER BY x DESC, k LIMIT 7",
	"SELECT count(*) FROM t WHERE k >= 400", // everything pruned
	"SELECT x FROM t WHERE k = 399 AND x > 0 ORDER BY x LIMIT 3",
}

// TestPartitionScanMatchesFlat runs every query against the partitioned
// table in all three strategies (row, serial batch, parallel) and against
// the unpartitioned copy, demanding identical results. Partitioned row
// order interleaves differently from insertion order, so unordered queries
// compare as sorted multisets.
func TestPartitionScanMatchesFlat(t *testing.T) {
	withSmallMorsels(t, 256)
	cat := partedFixture(t, 4000)
	for _, q := range partitionQueries {
		flatQ := strings.ReplaceAll(q, " t", " flat")
		flatSt, err := sql.Parse(flatQ)
		if err != nil {
			t.Fatal(err)
		}
		flatOp, err := BuildSelectOpts(cat, flatSt.(*sql.SelectStmt), nil, Options{Mode: ModeRow})
		if err != nil {
			t.Fatalf("plan flat %q: %v", flatQ, err)
		}
		want, wantErr := Drain(flatOp)
		if wantErr != nil {
			t.Fatalf("flat %q: %v", flatQ, wantErr)
		}
		ordered := strings.Contains(q, "ORDER BY")
		for _, opts := range []Options{
			{Mode: ModeRow},
			{Mode: ModeAuto, Parallelism: 1},
			{Mode: ModeAuto, Parallelism: 4},
		} {
			st, err := sql.Parse(q)
			if err != nil {
				t.Fatal(err)
			}
			op, err := BuildSelectOpts(cat, st.(*sql.SelectStmt), nil, opts)
			if err != nil {
				t.Fatalf("plan %q (%+v): %v", q, opts, err)
			}
			got, gotErr := Drain(op)
			if gotErr != nil {
				t.Fatalf("%q (%+v): %v", q, opts, gotErr)
			}
			compareRows(t, fmt.Sprintf("%q (%+v)", q, opts), want, got, ordered)
		}
	}
}

// compareRows compares result sets; when ordered is false both sides are
// sorted by their rendered form first.
func compareRows(t *testing.T, label string, want, got []Row, ordered bool) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	render := func(rows []Row) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			var sb strings.Builder
			for c, v := range r {
				if c > 0 {
					sb.WriteByte('|')
				}
				sb.WriteString(fmt.Sprintf("%s:%s", v.K, v))
			}
			out[i] = sb.String()
		}
		return out
	}
	w, g := render(want), render(got)
	if !ordered {
		sortStrings(w)
		sortStrings(g)
	}
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("%s: row %d mismatch:\n  want %s\n  got  %s", label, i, w[i], g[i])
		}
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestPartitionPruningInPlan pins that pruning actually removes partitions
// from the plan and that EXPLAIN reports it.
func TestPartitionPruningInPlan(t *testing.T) {
	cat := partedFixture(t, 400)
	build := func(q string) Operator {
		st, err := sql.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		op, err := BuildSelectOpts(cat, st.(*sql.SelectStmt), nil, Options{Mode: ModeRow})
		if err != nil {
			t.Fatal(err)
		}
		return op
	}
	findScan := func(op Operator) *PartitionScan {
		for {
			switch o := op.(type) {
			case *PartitionScan:
				return o
			case *Filter:
				op = o.Child
			case *Project:
				op = o.Child
			case *HashAggregate:
				op = o.Child
			case *Limit:
				op = o.Child
			case *Sort:
				op = o.Child
			case *sliceOp:
				op = o.Child
			default:
				t.Fatalf("no PartitionScan under %T", op)
			}
		}
	}
	for _, c := range []struct {
		q         string
		surviving int
	}{
		{"SELECT k FROM t WHERE k = 150", 1},
		{"SELECT k FROM t WHERE k >= 100 AND k < 300", 2},
		{"SELECT k FROM t", 4},
		{"SELECT k FROM t WHERE k >= 400", 1}, // p3 is MAXVALUE: [300, inf)
	} {
		ps := findScan(build(c.q))
		if len(ps.Parts) != c.surviving {
			t.Errorf("%q: %d surviving partitions, want %d", c.q, len(ps.Parts), c.surviving)
		}
		wantLine := fmt.Sprintf("partitions: %d/4 pruned", 4-c.surviving)
		if plan := PlanString(build(c.q)); !strings.Contains(plan, wantLine) {
			t.Errorf("%q: EXPLAIN missing %q:\n%s", c.q, wantLine, plan)
		}
	}
}

// TestPartitionScanParallelExplain pins the morsel-split path renders its
// pruning provenance too.
func TestPartitionScanParallelExplain(t *testing.T) {
	withSmallMorsels(t, 256)
	cat := partedFixture(t, 4000)
	st, err := sql.Parse("SELECT k FROM t WHERE k < 200")
	if err != nil {
		t.Fatal(err)
	}
	op, err := BuildSelectOpts(cat, st.(*sql.SelectStmt), nil, Options{Mode: ModeAuto, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	plan := PlanString(op)
	if !strings.Contains(plan, "partitions: 2/4 pruned") {
		t.Errorf("parallel EXPLAIN missing pruning info:\n%s", plan)
	}
	if !strings.Contains(plan, "Gather") {
		t.Logf("plan did not parallelize (small machine?):\n%s", plan)
	}
}
