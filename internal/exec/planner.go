package exec

import (
	"fmt"
	"strings"

	"datalaws/internal/expr"
	"datalaws/internal/sql"
	"datalaws/internal/table"
)

// BuildSelect lowers a parsed SELECT onto a physical operator tree:
//
//	scan → joins → filter → [aggregate → having] → project(+order keys)
//	     → sort → strip order keys → limit
//
// and then onto the batch pipeline where the operators support it
// (ModeAuto).
func BuildSelect(cat *table.Catalog, st *sql.SelectStmt) (Operator, error) {
	return BuildSelectOverMode(cat, st, nil, ModeAuto)
}

// BuildSelectOver is BuildSelect with the FROM-table scan replaced by an
// arbitrary source operator when source is non-nil. The approximate query
// layer uses this to substitute a model scan for the raw table scan while
// reusing the full relational pipeline on top (§4.2 zero-IO scans).
func BuildSelectOver(cat *table.Catalog, st *sql.SelectStmt, source Operator) (Operator, error) {
	return BuildSelectOverMode(cat, st, source, ModeAuto)
}

// BuildSelectOverMode is BuildSelectOver with explicit control over row
// versus batch lowering; ModeRow skips vectorization entirely. It keeps
// the serial pipeline — BuildSelectOpts adds morsel-driven parallelism.
func BuildSelectOverMode(cat *table.Catalog, st *sql.SelectStmt, source Operator, mode Mode) (Operator, error) {
	return BuildSelectOpts(cat, st, source, Options{Mode: mode, Parallelism: 1})
}

// BuildSelectOpts is BuildSelectOver with full execution options: row
// versus batch mode plus the morsel-driven parallelism budget (see
// Options). Plans whose source cannot split into morsels fall back to the
// serial pipeline regardless of the budget.
func BuildSelectOpts(cat *table.Catalog, st *sql.SelectStmt, source Operator, opts Options) (Operator, error) {
	base, err := buildFrom(cat, st, source)
	if err != nil {
		return nil, err
	}
	if st.Where != nil {
		base = &Filter{Child: base, Pred: st.Where}
	}

	items, err := expandStars(st.Items, base.Columns())
	if err != nil {
		return nil, err
	}

	agg := newAggAnalysis(st.GroupBy)
	rewrittenItems := make([]expr.Expr, len(items))
	names := make([]string, len(items))
	for i, it := range items {
		rewrittenItems[i] = agg.rewrite(it.Expr)
		names[i] = itemName(it)
	}
	var having expr.Expr
	if st.Having != nil {
		having = agg.rewrite(st.Having)
	}

	// ORDER BY may reference select aliases; substitute those first.
	aliasSubs := map[string]expr.Expr{}
	for i, it := range items {
		if it.Alias != "" {
			aliasSubs[it.Alias] = items[i].Expr
		}
	}
	orderExprs := make([]expr.Expr, len(st.OrderBy))
	for i, k := range st.OrderBy {
		oe := k.Expr
		if id, ok := oe.(*expr.Ident); ok {
			if sub, ok := aliasSubs[id.Name]; ok {
				oe = sub
			}
		}
		orderExprs[i] = agg.rewrite(oe)
	}

	grouped := len(st.GroupBy) > 0 || len(agg.specs) > 0
	if grouped {
		// Every non-aggregate identifier must resolve to a group key.
		for i, e := range rewrittenItems {
			if err := agg.validate(e); err != nil {
				return nil, fmt.Errorf("exec: select item %d: %w", i+1, err)
			}
		}
		if having != nil {
			if err := agg.validate(having); err != nil {
				return nil, fmt.Errorf("exec: HAVING: %w", err)
			}
		}
		for i, e := range orderExprs {
			if err := agg.validate(e); err != nil {
				return nil, fmt.Errorf("exec: ORDER BY key %d: %w", i+1, err)
			}
		}
		base = &HashAggregate{Child: base, GroupExprs: st.GroupBy, Aggs: agg.specs}
		if having != nil {
			base = &Filter{Child: base, Pred: having}
		}
	} else if st.Having != nil {
		return nil, fmt.Errorf("exec: HAVING without GROUP BY or aggregates")
	}

	// Project the visible items plus hidden order keys.
	projExprs := append([]expr.Expr{}, rewrittenItems...)
	projNames := append([]string{}, names...)
	for i, oe := range orderExprs {
		projExprs = append(projExprs, oe)
		projNames = append(projNames, fmt.Sprintf("$ord%d", i))
	}
	var op Operator = &Project{Child: base, Exprs: projExprs, Names: projNames}

	if len(orderExprs) > 0 {
		keys := make([]SortKey, len(orderExprs))
		for i := range orderExprs {
			keys[i] = SortKey{Col: len(items) + i, Desc: st.OrderBy[i].Desc}
		}
		op = &Sort{Child: op, Keys: keys}
		op = &sliceOp{Child: op, N: len(items)}
	}
	if st.Limit >= 0 {
		op = &Limit{Child: op, N: st.Limit}
	}
	if opts.Mode != ModeRow {
		op = LowerOpts(op, opts.Workers())
	}
	return op, nil
}

func buildFrom(cat *table.Catalog, st *sql.SelectStmt, source Operator) (Operator, error) {
	var op Operator
	if source != nil {
		op = source
	} else {
		s, err := buildScan(cat, st.From, st.Where)
		if err != nil {
			return nil, err
		}
		op = s
	}
	for _, j := range st.Joins {
		// Pruning the right side by the statement's WHERE is sound for inner
		// joins: a conjunct restricting this table's partition column must
		// hold on every joined result row.
		right, err := buildScan(cat, j.Table, st.Where)
		if err != nil {
			return nil, err
		}
		op = &HashJoin{Left: op, Right: right, On: j.On}
	}
	return op, nil
}

// buildScan builds the base scan for a named table: a pruned PartitionScan
// for range-partitioned tables, a plain TableScan otherwise.
func buildScan(cat *table.Catalog, name string, where expr.Expr) (Operator, error) {
	if pt, ok := cat.GetPartitioned(name); ok {
		return NewPartitionScan(pt, where), nil
	}
	t, err := cat.Lookup(name)
	if err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	ts := NewTableScan(t)
	ts.Where = where
	return ts, nil
}

func expandStars(items []sql.SelectItem, cols []string) ([]sql.SelectItem, error) {
	var out []sql.SelectItem
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		for _, c := range cols {
			name := c
			if i := strings.LastIndexByte(c, '.'); i >= 0 {
				name = c[i+1:]
			}
			out = append(out, sql.SelectItem{Expr: &expr.Ident{Name: c}, Alias: name})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("exec: empty select list")
	}
	return out, nil
}

func itemName(it sql.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if id, ok := it.Expr.(*expr.Ident); ok {
		if i := strings.LastIndexByte(id.Name, '.'); i >= 0 {
			return id.Name[i+1:]
		}
		return id.Name
	}
	return it.Expr.String()
}

// aggAnalysis rewrites expressions for execution above a HashAggregate:
// aggregate calls become $aggN references and group-key subtrees become
// $grpN references.
type aggAnalysis struct {
	groupByStr []string
	specs      []AggSpec
	specIndex  map[string]int
}

func newAggAnalysis(groupBy []expr.Expr) *aggAnalysis {
	a := &aggAnalysis{specIndex: map[string]int{}}
	for _, g := range groupBy {
		a.groupByStr = append(a.groupByStr, g.String())
	}
	return a
}

func (a *aggAnalysis) rewrite(e expr.Expr) expr.Expr {
	// Group-key match takes precedence so "GROUP BY x ... SELECT x" works.
	es := e.String()
	for i, g := range a.groupByStr {
		if es == g {
			return &expr.Ident{Name: fmt.Sprintf("$grp%d", i)}
		}
	}
	switch n := e.(type) {
	case *expr.Call:
		if kind, ok := IsAggregateCall(n); ok {
			var arg expr.Expr
			if len(n.Args) == 1 {
				arg = n.Args[0]
			}
			key := fmt.Sprintf("%d|%s", kind, n.String())
			idx, seen := a.specIndex[key]
			if !seen {
				idx = len(a.specs)
				a.specs = append(a.specs, AggSpec{Kind: kind, Arg: arg})
				a.specIndex[key] = idx
			}
			return &expr.Ident{Name: fmt.Sprintf("$agg%d", idx)}
		}
		args := make([]expr.Expr, len(n.Args))
		for i, arg := range n.Args {
			args[i] = a.rewrite(arg)
		}
		return &expr.Call{Name: n.Name, Args: args}
	case *expr.Unary:
		return &expr.Unary{Op: n.Op, X: a.rewrite(n.X)}
	case *expr.Binary:
		return &expr.Binary{Op: n.Op, L: a.rewrite(n.L), R: a.rewrite(n.R)}
	case *expr.IsNullExpr:
		return &expr.IsNullExpr{X: a.rewrite(n.X), Negate: n.Negate}
	}
	return e
}

// validate ensures a rewritten expression references only $grp/$agg columns.
func (a *aggAnalysis) validate(e expr.Expr) error {
	for _, v := range expr.Vars(e) {
		if !strings.HasPrefix(v, "$grp") && !strings.HasPrefix(v, "$agg") {
			return fmt.Errorf("column %q must appear in GROUP BY or inside an aggregate", v)
		}
	}
	return nil
}

// sliceOp keeps only the first N columns of each row (dropping hidden sort
// keys).
type sliceOp struct {
	Child Operator
	N     int
}

func (s *sliceOp) Columns() []string { return s.Child.Columns()[:s.N] }
func (s *sliceOp) Open() error       { return s.Child.Open() }
func (s *sliceOp) Next() (Row, error) {
	row, err := s.Child.Next()
	if err != nil || row == nil {
		return nil, err
	}
	return row[:s.N], nil
}
func (s *sliceOp) Close() error { return s.Child.Close() }
