package exec

import (
	"fmt"
	"strings"

	"datalaws/internal/expr"
)

// HashJoin is an inner equi-join. The ON condition must be a conjunction of
// equalities, each comparing one left column with one right column. It
// checks the statement context itself: a join can emit unboundedly many
// rows per input row, so the leaf scans' interrupt checks alone would not
// bound cancellation latency.
type HashJoin struct {
	Left, Right Operator
	On          expr.Expr
	Interruptible

	cols      []string
	leftKeys  []int
	rightKeys []int
	built     map[string][]Row
	cur       []Row // pending matches for the current left row
	curLeft   Row
	leftDone  bool
}

// Columns implements Operator.
func (j *HashJoin) Columns() []string {
	if j.cols == nil {
		j.cols = append(append([]string{}, j.Left.Columns()...), j.Right.Columns()...)
	}
	return j.cols
}

// Open implements Operator: it extracts the equi-keys, builds a hash table
// on the right input, and prepares to stream the left input.
func (j *HashJoin) Open() error {
	lcols, rcols := j.Left.Columns(), j.Right.Columns()
	lk, rk, err := extractEquiKeys(j.On, lcols, rcols)
	if err != nil {
		return err
	}
	j.leftKeys, j.rightKeys = lk, rk
	if err := j.Right.Open(); err != nil {
		return err
	}
	j.built = map[string][]Row{}
	for {
		row, err := j.Right.Next()
		if err != nil {
			// Close the build side on a failed drain so a parallel input
			// (gather worker pool) shuts down instead of leaking.
			j.Right.Close()
			return err
		}
		if row == nil {
			break
		}
		key, ok := joinKey(row, j.rightKeys)
		if !ok {
			continue // NULL keys never match in an inner join
		}
		j.built[key] = append(j.built[key], row)
	}
	if err := j.Right.Close(); err != nil {
		return err
	}
	j.cur = nil
	j.leftDone = false
	j.ResetInterrupt()
	return j.Left.Open()
}

// Next implements Operator.
func (j *HashJoin) Next() (Row, error) {
	for {
		if err := j.CheckInterrupt(); err != nil {
			return nil, err
		}
		if len(j.cur) > 0 {
			r := j.cur[0]
			j.cur = j.cur[1:]
			out := make(Row, 0, len(j.curLeft)+len(r))
			out = append(out, j.curLeft...)
			out = append(out, r...)
			return out, nil
		}
		if j.leftDone {
			return nil, nil
		}
		row, err := j.Left.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			j.leftDone = true
			return nil, nil
		}
		key, ok := joinKey(row, j.leftKeys)
		if !ok {
			continue
		}
		j.curLeft = row
		j.cur = j.built[key]
	}
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.built = nil
	return j.Left.Close()
}

func joinKey(row Row, keys []int) (string, bool) {
	var sb strings.Builder
	for _, k := range keys {
		v := row[k]
		if v.IsNull() {
			return "", false
		}
		// Normalize numerics so 1 (int) joins 1.0 (float).
		if v.K == expr.KindInt {
			v = expr.Float(float64(v.I))
		}
		sb.WriteString(v.String())
		sb.WriteByte('\x00')
	}
	return sb.String(), true
}

// extractEquiKeys decomposes an ON conjunction into aligned left/right
// column index lists.
func extractEquiKeys(on expr.Expr, lcols, rcols []string) (left, right []int, err error) {
	conjuncts := splitConjuncts(on)
	if len(conjuncts) == 0 {
		return nil, nil, fmt.Errorf("exec: empty join condition")
	}
	for _, c := range conjuncts {
		b, ok := c.(*expr.Binary)
		if !ok || b.Op != expr.OpEq {
			return nil, nil, fmt.Errorf("exec: join condition %s is not an equality", c)
		}
		li, ri, ok := sideIndexes(b.L, b.R, lcols, rcols)
		if !ok {
			li, ri, ok = sideIndexes(b.R, b.L, lcols, rcols)
		}
		if !ok {
			return nil, nil, fmt.Errorf("exec: join condition %s must compare a left column with a right column", c)
		}
		left = append(left, li)
		right = append(right, ri)
	}
	return left, right, nil
}

func sideIndexes(l, r expr.Expr, lcols, rcols []string) (int, int, bool) {
	li, lok := identIndex(l, lcols)
	ri, rok := identIndex(r, rcols)
	return li, ri, lok && rok
}

func identIndex(e expr.Expr, cols []string) (int, bool) {
	id, ok := e.(*expr.Ident)
	if !ok {
		return 0, false
	}
	i, err := ResolveColumn(cols, id.Name)
	if err != nil {
		return 0, false
	}
	return i, true
}

func splitConjuncts(e expr.Expr) []expr.Expr {
	if b, ok := e.(*expr.Binary); ok && b.Op == expr.OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []expr.Expr{e}
}
