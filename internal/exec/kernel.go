package exec

import (
	"fmt"
	"math"

	"datalaws/internal/expr"
)

// kernelFn is a compiled expression: it evaluates over the physical rows
// listed in sel (which must be a subset of [0, b.N)), returning a vector of
// physical length b.N whose entries outside sel are unspecified. Identifier
// resolution happens once at compile time, so evaluation performs no map
// lookups; scalar semantics (NULL propagation, coercions, errors) are shared
// with the row evaluator through expr.ApplyBinary and friends.
type kernelFn func(b *Batch, sel []int) (*Vector, error)

// compileKernel lowers an expression into a vector kernel against the given
// column layout. Identifiers are resolved eagerly, so ambiguous or unknown
// columns fail here — at plan/open time — rather than on the first row.
func compileKernel(e expr.Expr, cols []string) (kernelFn, error) {
	switch n := e.(type) {
	case *expr.Lit:
		v := n.Val
		var cached *Vector
		return func(b *Batch, _ []int) (*Vector, error) {
			if cached == nil || cached.Len() != b.N {
				cached = constVector(v, b.N)
			}
			return cached, nil
		}, nil
	case *expr.Ident:
		idx, err := ResolveColumn(cols, n.Name)
		if err != nil {
			return nil, err
		}
		return func(b *Batch, _ []int) (*Vector, error) {
			return b.Cols[idx], nil
		}, nil
	case *expr.Unary:
		return compileUnaryKernel(n, cols)
	case *expr.Binary:
		if n.Op == expr.OpAnd || n.Op == expr.OpOr {
			return compileLogicalKernel(n, cols)
		}
		lk, err := compileKernel(n.L, cols)
		if err != nil {
			return nil, err
		}
		rk, err := compileKernel(n.R, cols)
		if err != nil {
			return nil, err
		}
		op := n.Op
		return func(b *Batch, sel []int) (*Vector, error) {
			l, err := lk(b, sel)
			if err != nil {
				return nil, err
			}
			r, err := rk(b, sel)
			if err != nil {
				return nil, err
			}
			return evalBinaryVec(op, l, r, b.N, sel)
		}, nil
	case *expr.Call:
		return compileCallKernel(n, cols)
	case *expr.IsNullExpr:
		ck, err := compileKernel(n.X, cols)
		if err != nil {
			return nil, err
		}
		negate := n.Negate
		return func(b *Batch, sel []int) (*Vector, error) {
			c, err := ck(b, sel)
			if err != nil {
				return nil, err
			}
			out := &Vector{Kind: expr.KindBool, B: make([]bool, b.N)}
			for _, i := range sel {
				out.B[i] = c.IsNull(i) != negate
			}
			return out, nil
		}, nil
	}
	return nil, fmt.Errorf("exec: cannot compile %T", e)
}

// constVector materializes a literal as a broadcast vector of length n.
func constVector(v expr.Value, n int) *Vector {
	switch v.K {
	case expr.KindInt:
		out := &Vector{Kind: expr.KindInt, I: make([]int64, n)}
		for i := range out.I {
			out.I[i] = v.I
		}
		return out
	case expr.KindFloat:
		out := &Vector{Kind: expr.KindFloat, F: make([]float64, n)}
		for i := range out.F {
			out.F[i] = v.F
		}
		return out
	case expr.KindString:
		out := &Vector{Kind: expr.KindString, S: make([]string, n)}
		for i := range out.S {
			out.S[i] = v.S
		}
		return out
	case expr.KindBool:
		out := &Vector{Kind: expr.KindBool, B: make([]bool, n)}
		for i := range out.B {
			out.B[i] = v.B
		}
		return out
	}
	return newNullVector(n)
}

// truth coerces entry i to SQL boolean: (value, isNull, error).
func truth(v *Vector, i int) (bool, bool, error) {
	if v.IsNull(i) {
		return false, true, nil
	}
	t, err := v.Value(i).AsBool()
	return t, false, err
}

func compileUnaryKernel(n *expr.Unary, cols []string) (kernelFn, error) {
	ck, err := compileKernel(n.X, cols)
	if err != nil {
		return nil, err
	}
	op := n.Op
	return func(b *Batch, sel []int) (*Vector, error) {
		c, err := ck(b, sel)
		if err != nil {
			return nil, err
		}
		nn := b.N
		if op == expr.OpNot {
			out := &Vector{Kind: expr.KindBool, B: make([]bool, nn)}
			for _, i := range sel {
				t, isN, err := truth(c, i)
				if err != nil {
					return nil, err
				}
				if isN {
					out.setNull(i, nn)
					continue
				}
				out.B[i] = !t
			}
			return out, nil
		}
		// OpNeg fast paths: typed numeric vectors negate in bulk.
		switch c.Kind {
		case expr.KindInt:
			out := &Vector{Kind: expr.KindInt, I: make([]int64, nn), Null: c.Null}
			for _, i := range sel {
				out.I[i] = -c.I[i]
			}
			return out, nil
		case expr.KindFloat:
			out := &Vector{Kind: expr.KindFloat, F: make([]float64, nn), Null: c.Null}
			for _, i := range sel {
				out.F[i] = -c.F[i]
			}
			return out, nil
		}
		vals := make([]expr.Value, nn)
		for _, i := range sel {
			v, err := expr.ApplyUnary(op, c.Value(i))
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return vectorFromValues(vals), nil
	}, nil
}

// compileLogicalKernel implements AND/OR with SQL three-valued logic and
// row-engine-compatible short-circuiting: the right operand is evaluated
// only for rows the left operand does not decide, so side conditions like
// "x <> 0 AND 1/x > 2" never divide by zero on excluded rows.
func compileLogicalKernel(n *expr.Binary, cols []string) (kernelFn, error) {
	lk, err := compileKernel(n.L, cols)
	if err != nil {
		return nil, err
	}
	rk, err := compileKernel(n.R, cols)
	if err != nil {
		return nil, err
	}
	isAnd := n.Op == expr.OpAnd
	var needBuf []int
	return func(b *Batch, sel []int) (*Vector, error) {
		lv, err := lk(b, sel)
		if err != nil {
			return nil, err
		}
		nn := b.N
		out := &Vector{Kind: expr.KindBool, B: make([]bool, nn)}
		need := needBuf[:0]
		for _, i := range sel {
			t, isN, err := truth(lv, i)
			if err != nil {
				return nil, err
			}
			if !isN {
				if isAnd && !t {
					continue // FALSE AND x = FALSE
				}
				if !isAnd && t {
					out.B[i] = true // TRUE OR x = TRUE
					continue
				}
			}
			need = append(need, i)
		}
		needBuf = need
		if len(need) > 0 {
			rv, err := rk(b, need)
			if err != nil {
				return nil, err
			}
			for _, i := range need {
				_, lN, _ := truth(lv, i)
				rt, rN, err := truth(rv, i)
				if err != nil {
					return nil, err
				}
				if isAnd {
					switch {
					case !rN && !rt:
						// any FALSE decides AND, even against NULL
					case lN || rN:
						out.setNull(i, nn)
					default:
						out.B[i] = true // l TRUE (it reached here), r TRUE
					}
				} else {
					switch {
					case !rN && rt:
						out.B[i] = true // any TRUE decides OR
					case lN || rN:
						out.setNull(i, nn)
					default:
						// l FALSE, r FALSE
					}
				}
			}
		}
		return out, nil
	}, nil
}

// mergedNulls unions two null masks over physical length n (nil when neither
// operand can be NULL).
func mergedNulls(l, r *Vector, n int) []bool {
	if l.Null == nil && r.Null == nil {
		return nil
	}
	out := make([]bool, n)
	if l.Null != nil {
		copy(out, l.Null)
	}
	if r.Null != nil {
		for i, b := range r.Null {
			if b {
				out[i] = true
			}
		}
	}
	return out
}

// cmpF orders two floats with the row engine's NaN semantics (NaN sorts
// below every number).
func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case math.IsNaN(a) && !math.IsNaN(b):
		return -1
	case !math.IsNaN(a) && math.IsNaN(b):
		return 1
	}
	return 0
}

func cmpHolds(op expr.Op, c int) bool {
	switch op {
	case expr.OpEq:
		return c == 0
	case expr.OpNe:
		return c != 0
	case expr.OpLt:
		return c < 0
	case expr.OpLe:
		return c <= 0
	case expr.OpGt:
		return c > 0
	default:
		return c >= 0
	}
}

// evalBinaryVec dispatches a non-logical binary operator over two vectors,
// using typed bulk loops for the common numeric and string cases and the
// shared boxed scalar path for everything else.
func evalBinaryVec(op expr.Op, l, r *Vector, n int, sel []int) (*Vector, error) {
	if l.Kind == expr.KindNull || r.Kind == expr.KindNull {
		return newNullVector(n), nil
	}
	lInt, lFloat := l.Kind == expr.KindInt, l.Kind == expr.KindFloat
	rInt, rFloat := r.Kind == expr.KindInt, r.Kind == expr.KindFloat
	numeric := (lInt || lFloat) && (rInt || rFloat)

	switch op {
	case expr.OpEq, expr.OpNe, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe:
		if !numeric {
			if l.Kind == expr.KindString && r.Kind == expr.KindString {
				return compareStringVec(op, l, r, n, sel), nil
			}
			return applyBinarySlow(op, l, r, n, sel)
		}
		out := &Vector{Kind: expr.KindBool, B: make([]bool, n), Null: mergedNulls(l, r, n)}
		nulls := out.Null
		if lInt && rInt {
			li, ri := l.I, r.I
			for _, i := range sel {
				if nulls != nil && nulls[i] {
					continue
				}
				c := 0
				switch {
				case li[i] < ri[i]:
					c = -1
				case li[i] > ri[i]:
					c = 1
				}
				out.B[i] = cmpHolds(op, c)
			}
			return out, nil
		}
		gl, gr := floatGetter(l), floatGetter(r)
		for _, i := range sel {
			if nulls != nil && nulls[i] {
				continue
			}
			out.B[i] = cmpHolds(op, cmpF(gl(i), gr(i)))
		}
		return out, nil
	}

	// Arithmetic.
	if lInt && rInt {
		switch op {
		case expr.OpAdd, expr.OpSub, expr.OpMul, expr.OpMod:
			out := &Vector{Kind: expr.KindInt, I: make([]int64, n), Null: mergedNulls(l, r, n)}
			nulls := out.Null
			li, ri := l.I, r.I
			for _, i := range sel {
				if nulls != nil && nulls[i] {
					continue
				}
				switch op {
				case expr.OpAdd:
					out.I[i] = li[i] + ri[i]
				case expr.OpSub:
					out.I[i] = li[i] - ri[i]
				case expr.OpMul:
					out.I[i] = li[i] * ri[i]
				default:
					if ri[i] == 0 {
						return nil, fmt.Errorf("expr: integer modulo by zero")
					}
					out.I[i] = li[i] % ri[i]
				}
			}
			return out, nil
		}
	}
	if !numeric {
		return applyBinarySlow(op, l, r, n, sel)
	}
	out := &Vector{Kind: expr.KindFloat, F: make([]float64, n), Null: mergedNulls(l, r, n)}
	nulls := out.Null
	gl, gr := floatGetter(l), floatGetter(r)
	for _, i := range sel {
		if nulls != nil && nulls[i] {
			continue
		}
		lf, rf := gl(i), gr(i)
		switch op {
		case expr.OpAdd:
			out.F[i] = lf + rf
		case expr.OpSub:
			out.F[i] = lf - rf
		case expr.OpMul:
			out.F[i] = lf * rf
		case expr.OpDiv:
			if rf == 0 {
				return nil, fmt.Errorf("expr: division by zero")
			}
			out.F[i] = lf / rf
		case expr.OpMod:
			if rf == 0 {
				return nil, fmt.Errorf("expr: modulo by zero")
			}
			out.F[i] = math.Mod(lf, rf)
		case expr.OpPow:
			out.F[i] = math.Pow(lf, rf)
		default:
			return nil, fmt.Errorf("expr: bad binary op %s", op)
		}
	}
	return out, nil
}

// floatGetter returns a per-row float accessor for an int or float vector.
func floatGetter(v *Vector) func(i int) float64 {
	if v.Kind == expr.KindFloat {
		f := v.F
		return func(i int) float64 { return f[i] }
	}
	iv := v.I
	return func(i int) float64 { return float64(iv[i]) }
}

func compareStringVec(op expr.Op, l, r *Vector, n int, sel []int) *Vector {
	out := &Vector{Kind: expr.KindBool, B: make([]bool, n), Null: mergedNulls(l, r, n)}
	nulls := out.Null
	for _, i := range sel {
		if nulls != nil && nulls[i] {
			continue
		}
		c := 0
		switch {
		case l.S[i] < r.S[i]:
			c = -1
		case l.S[i] > r.S[i]:
			c = 1
		}
		out.B[i] = cmpHolds(op, c)
	}
	return out
}

// applyBinarySlow is the boxed fallback for operand-kind combinations with
// no bulk loop (bools in comparisons, strings in arithmetic, mixed-kind
// vectors); it delegates per row to the shared scalar semantics.
func applyBinarySlow(op expr.Op, l, r *Vector, n int, sel []int) (*Vector, error) {
	vals := make([]expr.Value, n)
	for _, i := range sel {
		v, err := expr.ApplyBinary(op, l.Value(i), r.Value(i))
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return vectorFromValues(vals), nil
}

func compileCallKernel(n *expr.Call, cols []string) (kernelFn, error) {
	arity, fn, ok := expr.LookupBuiltin(n.Name)
	if !ok {
		return nil, fmt.Errorf("expr: unknown function %q", n.Name)
	}
	if arity >= 0 && len(n.Args) != arity {
		return nil, fmt.Errorf("expr: %s expects %d args, got %d", n.Name, arity, len(n.Args))
	}
	if arity < 0 && len(n.Args) == 0 {
		return nil, fmt.Errorf("expr: %s expects at least one arg", n.Name)
	}
	argKs := make([]kernelFn, len(n.Args))
	for i, a := range n.Args {
		k, err := compileKernel(a, cols)
		if err != nil {
			return nil, err
		}
		argKs[i] = k
	}
	name := n.Name
	scratch := make([]float64, len(argKs))
	boxed := make([]expr.Value, len(argKs))
	return func(b *Batch, sel []int) (*Vector, error) {
		args := make([]*Vector, len(argKs))
		fast := true
		for j, k := range argKs {
			v, err := k(b, sel)
			if err != nil {
				return nil, err
			}
			args[j] = v
			if v.Kind != expr.KindInt && v.Kind != expr.KindFloat {
				fast = false
			}
		}
		nn := b.N
		if fast {
			out := &Vector{Kind: expr.KindFloat, F: make([]float64, nn)}
			getters := make([]func(int) float64, len(args))
			for j, v := range args {
				getters[j] = floatGetter(v)
				if v.Null != nil {
					out.Null = mergedNulls(v, out, nn)
				}
			}
			for _, i := range sel {
				if out.Null != nil && out.Null[i] {
					continue
				}
				for j, g := range getters {
					scratch[j] = g(i)
				}
				out.F[i] = fn(scratch)
			}
			return out, nil
		}
		vals := make([]expr.Value, nn)
		for _, i := range sel {
			for j, v := range args {
				boxed[j] = v.Value(i)
			}
			v, err := expr.ApplyCall(name, boxed)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return vectorFromValues(vals), nil
	}, nil
}
