package exec

import (
	"strings"
	"testing"

	"datalaws/internal/expr"
	"datalaws/internal/storage"
	"datalaws/internal/table"
)

// chunked64Fixture builds a table "big" with exactly 64 sealed chunks of 64
// rows: id ascending (so zone maps slice the key space cleanly), x a noisy
// measurement.
func chunked64Fixture(t *testing.T) *table.Catalog {
	t.Helper()
	cat := table.NewCatalog()
	schema, err := table.NewSchema(
		table.ColumnDef{Name: "id", Type: storage.TypeInt64},
		table.ColumnDef{Name: "x", Type: storage.TypeFloat64},
	)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := cat.Create("big", schema)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 64 * 64
	batch := make([][]expr.Value, rows)
	for i := range batch {
		batch[i] = []expr.Value{expr.Int(int64(i)), expr.Float(float64(i%97) * 0.25)}
	}
	if n, err := tb.AppendRows(batch); err != nil || n != rows {
		t.Fatalf("append: %d, %v", n, err)
	}
	if got := tb.Chunks().NumSealed(); got != 64 {
		t.Fatalf("fixture has %d sealed chunks, want 64", got)
	}
	return cat
}

// TestSelectiveScanDecodesFewChunks is the tentpole acceptance criterion: a
// selective query over a 64-chunk table decodes at most 25% of the chunks
// (zone maps prune the rest before any decode), across all three execution
// strategies, and EXPLAIN surfaces the pruning.
func TestSelectiveScanDecodesFewChunks(t *testing.T) {
	withSmallMorsels(t, 64)
	cat := chunked64Fixture(t)
	// ids 3900..4000 span chunks 60..62 (3 of 64).
	const q = "SELECT count(*), sum(x) FROM big WHERE id >= 3900 AND id < 4000"

	var base []Row
	run := func(label string, build func() (Operator, error)) {
		t.Helper()
		table.SetChunkCacheBudget(0) // every decode shows up as a miss
		defer table.SetChunkCacheBudget(table.DefaultChunkCacheBytes)
		table.ResetCacheStats()
		op, err := build()
		if err != nil {
			t.Fatalf("%s: plan: %v", label, err)
		}
		rows, err := Drain(op)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		st := table.CacheStats()
		if st.Misses > 64/4 {
			t.Fatalf("%s: decoded %d of 64 chunks, want ≤ 16", label, st.Misses)
		}
		if st.Misses < 3 {
			t.Fatalf("%s: decoded only %d chunks — the matching rows span 3", label, st.Misses)
		}
		if base == nil {
			base = rows
			return
		}
		if len(rows) != len(base) {
			t.Fatalf("%s: %d rows vs %d", label, len(rows), len(base))
		}
		for r := range base {
			for c := range base[r] {
				if !sameValue(rows[r][c], base[r][c]) {
					t.Fatalf("%s: row %d col %d: %v vs %v", label, r, c, rows[r][c], base[r][c])
				}
			}
		}
	}
	run("row", func() (Operator, error) { return buildMode(t, cat, q, ModeRow) })
	run("batch", func() (Operator, error) { return buildParallel(t, cat, q, 1) })
	run("parallel", func() (Operator, error) { return buildParallel(t, cat, q, 4) })

	// The count pins correctness independent of the baseline: exactly 100
	// ids land in [3900, 4000).
	if got := base[0][0]; !sameValue(got, expr.Int(100)) {
		t.Fatalf("count = %v, want 100", got)
	}

	// EXPLAIN renders the pruning on both the row and vectorized plans.
	rowOp, err := buildMode(t, cat, q, ModeRow)
	if err != nil {
		t.Fatal(err)
	}
	if plan := PlanString(rowOp); !strings.Contains(plan, "chunks: 61/64 pruned") {
		t.Fatalf("row plan missing chunk pruning:\n%s", plan)
	}
	parOp, err := buildParallel(t, cat, q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan := PlanString(parOp); !strings.Contains(plan, "chunks: 61/64 pruned") {
		t.Fatalf("parallel plan missing chunk pruning:\n%s", plan)
	}
}

// TestScanLargerThanCacheBudget: with the decoded-chunk cache squeezed to a
// quarter of the table's decoded footprint, a full scan still returns
// exactly the right answer — chunks stream through the cache instead of
// residing in memory.
func TestScanLargerThanCacheBudget(t *testing.T) {
	withSmallMorsels(t, 64)
	cat := chunked64Fixture(t)
	tb, _ := cat.Get("big")
	table.SetChunkCacheBudget(int64(tb.RawSizeBytes() / 4))
	defer table.SetChunkCacheBudget(table.DefaultChunkCacheBytes)
	table.ResetCacheStats()

	const q = "SELECT count(*), sum(id) FROM big"
	for _, workers := range []int{1, 4} {
		op, err := buildParallel(t, cat, q, workers)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := Drain(op)
		if err != nil {
			t.Fatal(err)
		}
		const n = 64 * 64
		if !sameValue(rows[0][0], expr.Int(n)) || !sameValue(rows[0][1], expr.Float(n*(n-1)/2)) {
			t.Fatalf("workers=%d: got %v", workers, rows[0])
		}
	}
	if st := table.CacheStats(); st.Used > st.Budget {
		t.Fatalf("cache over budget: %+v", st)
	}
}

// TestPartitionScanPrunesChunks: chunk pruning composes with partition
// pruning — surviving partitions still skip their non-matching chunks.
func TestPartitionScanPrunesChunks(t *testing.T) {
	withSmallMorsels(t, 64)
	cat := table.NewCatalog()
	schema, err := table.NewSchema(
		table.ColumnDef{Name: "k", Type: storage.TypeInt64},
		table.ColumnDef{Name: "id", Type: storage.TypeInt64},
	)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := cat.CreatePartitioned("pt", schema, "k", []table.RangePartition{
		{Name: "lo", Upper: 1000},
		{Name: "hi", Max: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	const rows = 2000
	batch := make([][]expr.Value, rows)
	for i := range batch {
		batch[i] = []expr.Value{expr.Int(int64(i)), expr.Int(int64(i))}
	}
	if _, err := pt.AppendRows(batch); err != nil {
		t.Fatal(err)
	}
	// id >= 1900 lives in partition "hi" (k >= 1000), and within it in the
	// top chunks only.
	table.SetChunkCacheBudget(0)
	defer table.SetChunkCacheBudget(table.DefaultChunkCacheBytes)
	table.ResetCacheStats()
	op, err := buildParallel(t, cat, "SELECT count(*) FROM pt WHERE k >= 1000 AND id >= 1900", 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if !sameValue(res[0][0], expr.Int(100)) {
		t.Fatalf("count = %v, want 100", res[0][0])
	}
	// Partition "hi" holds 1000 rows = 15 sealed chunks + tail; id >= 1900
	// survives in at most 3 of them. Partition "lo" is pruned wholesale.
	if st := table.CacheStats(); st.Misses > 4 {
		t.Fatalf("decoded %d chunks, want ≤ 4; pruning failed", st.Misses)
	}
}
