package exec

import (
	"context"
)

// interruptStride is how many rows a leaf operator emits between context
// checks. Context errors are read behind a mutex, so per-row checks would
// dominate tight scan loops; one check per stride bounds cancellation
// latency to a batch-sized window while keeping the fast path branch-only.
const interruptStride = BatchSize

// ContextAware is implemented by operators that honor context cancellation.
// BindContext walks an operator tree and hands the statement context to
// every operator that implements it.
type ContextAware interface {
	SetContext(ctx context.Context)
}

// Interruptible is an embeddable cancellation hook for leaf operators (scans
// and generators). Leaves are where rows enter a plan, so checking there
// bounds how long any pipeline — including blocking operators that drain
// their child at Open, like Sort, HashAggregate and HashJoin — can outlive a
// canceled context.
type Interruptible struct {
	ctx   context.Context
	count int
}

// SetContext implements ContextAware.
func (in *Interruptible) SetContext(ctx context.Context) { in.ctx = ctx }

// Context returns the bound context (nil when the statement has none).
func (in *Interruptible) Context() context.Context { return in.ctx }

// ResetInterrupt restarts the stride counter; call it from Open so reopened
// operators check promptly.
func (in *Interruptible) ResetInterrupt() { in.count = 0 }

// CheckInterrupt returns the context's error once per stride of calls (and
// on the first call). Per-row loops call it every row; per-batch loops call
// CheckInterruptNow instead.
func (in *Interruptible) CheckInterrupt() error {
	if in.ctx == nil {
		return nil
	}
	if in.count%interruptStride == 0 {
		if err := in.ctx.Err(); err != nil {
			return err
		}
	}
	in.count++
	return nil
}

// CheckInterruptNow returns the context's error unconditionally.
func (in *Interruptible) CheckInterruptNow() error {
	if in.ctx == nil {
		return nil
	}
	return in.ctx.Err()
}

// BindContext attaches ctx to every ContextAware operator in a plan,
// descending through both the row and the vectorized pipeline (including the
// row↔batch adapter shims). Binding a nil or Background context is a no-op
// at execution time. It returns op for chaining.
func BindContext(op Operator, ctx context.Context) Operator {
	bindRowCtx(op, ctx)
	return op
}

func bindRowCtx(op Operator, ctx context.Context) {
	if ca, ok := op.(ContextAware); ok {
		ca.SetContext(ctx)
	}
	switch o := op.(type) {
	case *Filter:
		bindRowCtx(o.Child, ctx)
	case *Project:
		bindRowCtx(o.Child, ctx)
	case *Limit:
		bindRowCtx(o.Child, ctx)
	case *Sort:
		bindRowCtx(o.Child, ctx)
	case *sliceOp:
		bindRowCtx(o.Child, ctx)
	case *HashAggregate:
		bindRowCtx(o.Child, ctx)
	case *HashJoin:
		bindRowCtx(o.Left, ctx)
		bindRowCtx(o.Right, ctx)
	case *Concat:
		for _, c := range o.Children {
			bindRowCtx(c, ctx)
		}
	case *PartitionScan:
		// Child partition scans are built at Open and inherit the bound
		// context from the scan itself (ContextAware above).
	case *rowAdapter:
		bindVecCtx(o.V, ctx)
	}
}

func bindVecCtx(op VectorOperator, ctx context.Context) {
	if ca, ok := op.(ContextAware); ok {
		ca.SetContext(ctx)
	}
	switch o := op.(type) {
	case *VecFilter:
		bindVecCtx(o.Child, ctx)
	case *VecProject:
		bindVecCtx(o.Child, ctx)
	case *VecHashAggregate:
		bindVecCtx(o.Child, ctx)
	case *VecConcat:
		for _, c := range o.Children {
			bindVecCtx(c, ctx)
		}
	case *vecPartitionScan:
		for _, c := range o.Children {
			bindVecCtx(c, ctx)
		}
	case *VecGather:
		// The gather watches the context while waiting on workers; each
		// worker pipeline's leaf checks it independently, so a canceled
		// statement stops both the pool and the consumer.
		for i := range o.pipes {
			bindVecCtx(o.pipes[i].pipe, ctx)
		}
	case *VecParallelHashAggregate:
		for i := range o.pipes {
			bindVecCtx(o.pipes[i].pipe, ctx)
		}
	case *batchAdapter:
		bindRowCtx(o.Op, ctx)
	}
}
