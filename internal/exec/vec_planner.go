package exec

// Mode selects how BuildSelect lowers a plan.
type Mode uint8

const (
	// ModeAuto lowers a plan onto the batch (vectorized) pipeline when every
	// operator in a subtree supports it and falls back to row-at-a-time
	// execution otherwise.
	//
	// Batch execution evaluates expressions over whole batches (up to
	// BatchSize rows) before downstream operators consume them, so — as in
	// other vectorized engines — a runtime expression error (e.g. division
	// by zero) is raised even when early termination such as LIMIT would
	// have stopped a row-at-a-time plan before reaching the offending row.
	// Errors guarded by a preceding WHERE are unaffected: filters narrow
	// the selection before later kernels run.
	ModeAuto Mode = iota
	// ModeRow forces row-at-a-time execution; used for differential testing
	// and row-vs-batch benchmarks.
	ModeRow
)

// Vectorizable lets operators defined outside this package (e.g. the aqp
// model scan) provide a vectorized implementation that the plan lowering
// can pick up.
type Vectorizable interface {
	AsVectorOperator() (VectorOperator, bool)
}

// Lower rewrites an operator tree so that every maximal vectorizable
// subtree executes in batch mode behind a row adapter. Operators with no
// vectorized implementation (sort, limit, join) keep their row form and
// pull from the adapters; plans with no vectorizable parts come back
// unchanged.
func Lower(op Operator) Operator { return LowerOpts(op, 1) }

// LowerOpts is Lower with a worker budget: when workers > 1 it first tries
// to rewrite each maximal vectorizable subtree into a morsel-driven
// parallel plan (per-worker scan pipelines behind a gather, or a partial
// aggregate with a merge phase), falling back to the serial batch pipeline
// and finally to row execution.
func LowerOpts(op Operator, workers int) Operator {
	// Pass-through tops: lower underneath, keep the row operator.
	switch o := op.(type) {
	case *Limit:
		o.Child = LowerOpts(o.Child, workers)
		return o
	case *Sort:
		o.Child = LowerOpts(o.Child, workers)
		return o
	case *sliceOp:
		o.Child = LowerOpts(o.Child, workers)
		return o
	}
	if workers > 1 {
		if vop, ok := parallelize(op, workers); ok {
			return NewRowAdapter(vop)
		}
	}
	if vop, ok := vectorize(op); ok {
		return NewRowAdapter(vop)
	}
	// The operator itself cannot vectorize (unsupported expression, join,
	// …): still lower its inputs so any vectorizable subtree underneath
	// runs in batch mode.
	switch o := op.(type) {
	case *Filter:
		o.Child = LowerOpts(o.Child, workers)
	case *Project:
		o.Child = LowerOpts(o.Child, workers)
	case *HashAggregate:
		o.Child = LowerOpts(o.Child, workers)
	case *HashJoin:
		o.Left = LowerOpts(o.Left, workers)
		o.Right = LowerOpts(o.Right, workers)
	case *Concat:
		for i, c := range o.Children {
			o.Children[i] = LowerOpts(c, workers)
		}
	}
	return op
}

// vectorize converts a row operator subtree into its vectorized counterpart,
// reporting false when any operator or expression in the subtree has no
// batch implementation.
func vectorize(op Operator) (VectorOperator, bool) {
	switch o := op.(type) {
	case *TableScan:
		// Carry the row scan's column list (it may qualify with an alias —
		// partition children scan under their parent's name) and its pruning
		// predicate.
		return &VecTableScan{Table: o.Table, Where: o.Where, Alias: o.alias, cols: append([]string(nil), o.cols...)}, true
	case *ValuesScan:
		return &VecValuesScan{Cols: o.Cols, Rows: o.Rows}, true
	case *Filter:
		child, ok := vectorize(o.Child)
		if !ok {
			return nil, false
		}
		if _, err := compileKernel(o.Pred, child.Columns()); err != nil {
			return nil, false
		}
		return &VecFilter{Child: child, Pred: o.Pred}, true
	case *Project:
		child, ok := vectorize(o.Child)
		if !ok {
			return nil, false
		}
		for _, e := range o.Exprs {
			if _, err := compileKernel(e, child.Columns()); err != nil {
				return nil, false
			}
		}
		return &VecProject{Child: child, Exprs: o.Exprs, Names: o.Names}, true
	case *HashAggregate:
		child, ok := vectorize(o.Child)
		if !ok {
			return nil, false
		}
		for _, e := range o.GroupExprs {
			if _, err := compileKernel(e, child.Columns()); err != nil {
				return nil, false
			}
		}
		for _, spec := range o.Aggs {
			if spec.Arg == nil {
				continue
			}
			if _, err := compileKernel(spec.Arg, child.Columns()); err != nil {
				return nil, false
			}
		}
		return &VecHashAggregate{Child: child, GroupExprs: o.GroupExprs, Aggs: o.Aggs}, true
	case *Concat:
		children := make([]VectorOperator, len(o.Children))
		any := false
		for i, c := range o.Children {
			if v, ok := vectorize(c); ok {
				children[i] = v
				any = true
			}
		}
		if !any {
			return nil, false
		}
		// Row-only children ride along behind the row→batch shim so a
		// hybrid plan (model scan ∪ raw scan) still runs vectorized.
		for i, c := range children {
			if c == nil {
				children[i] = NewBatchAdapter(o.Children[i])
			}
		}
		return &VecConcat{Children: children}, true
	}
	if v, ok := op.(Vectorizable); ok {
		return v.AsVectorOperator()
	}
	return nil, false
}

// Vectorized reports whether a lowered plan executes its pipeline in batch
// mode (possibly under row-mode sort/limit/strip wrappers). Exposed for
// tests and EXPLAIN consumers.
func Vectorized(op Operator) bool {
	switch o := op.(type) {
	case *Limit:
		return Vectorized(o.Child)
	case *Sort:
		return Vectorized(o.Child)
	case *sliceOp:
		return Vectorized(o.Child)
	case *rowAdapter:
		return true
	}
	return false
}
