package exec

import (
	"fmt"
	"sort"

	"datalaws/internal/expr"
)

// Filter passes through rows for which Pred evaluates to TRUE.
type Filter struct {
	Child Operator
	Pred  expr.Expr

	env *rowEnv
}

// Columns implements Operator.
func (f *Filter) Columns() []string { return f.Child.Columns() }

// Open implements Operator.
func (f *Filter) Open() error {
	f.env = newRowEnv(f.Child.Columns())
	if err := f.env.resolve(f.Pred); err != nil {
		return err
	}
	return f.Child.Open()
}

// Next implements Operator.
func (f *Filter) Next() (Row, error) {
	for {
		row, err := f.Child.Next()
		if err != nil || row == nil {
			return row, err
		}
		f.env.bind(row)
		ok, err := EvalPredicate(f.Pred, f.env)
		if err != nil {
			return nil, fmt.Errorf("exec: WHERE: %w", err)
		}
		if ok {
			return row, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.Child.Close() }

// Project computes one output column per expression.
type Project struct {
	Child Operator
	Exprs []expr.Expr
	Names []string

	env *rowEnv
}

// Columns implements Operator.
func (p *Project) Columns() []string { return p.Names }

// Open implements Operator.
func (p *Project) Open() error {
	if len(p.Exprs) != len(p.Names) {
		return fmt.Errorf("exec: project has %d exprs, %d names", len(p.Exprs), len(p.Names))
	}
	p.env = newRowEnv(p.Child.Columns())
	if err := p.env.resolve(p.Exprs...); err != nil {
		return err
	}
	return p.Child.Open()
}

// Next implements Operator.
func (p *Project) Next() (Row, error) {
	row, err := p.Child.Next()
	if err != nil || row == nil {
		return nil, err
	}
	p.env.bind(row)
	out := make(Row, len(p.Exprs))
	for i, e := range p.Exprs {
		v, err := expr.Eval(e, p.env)
		if err != nil {
			return nil, fmt.Errorf("exec: projecting %s: %w", e, err)
		}
		out[i] = v
	}
	return out, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.Child.Close() }

// Limit stops after N rows.
type Limit struct {
	Child Operator
	N     int

	seen int
}

// Columns implements Operator.
func (l *Limit) Columns() []string { return l.Child.Columns() }

// Open implements Operator.
func (l *Limit) Open() error { l.seen = 0; return l.Child.Open() }

// Next implements Operator.
func (l *Limit) Next() (Row, error) {
	if l.seen >= l.N {
		return nil, nil
	}
	row, err := l.Child.Next()
	if err != nil || row == nil {
		return nil, err
	}
	l.seen++
	return row, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.Child.Close() }

// SortKey orders by a column index with direction.
type SortKey struct {
	Col  int
	Desc bool
}

// Sort materializes the child and emits rows ordered by Keys. NULLs sort
// first ascending (last descending).
type Sort struct {
	Child Operator
	Keys  []SortKey

	rows []Row
	pos  int
}

// Columns implements Operator.
func (s *Sort) Columns() []string { return s.Child.Columns() }

// Open implements Operator.
func (s *Sort) Open() error {
	if err := s.Child.Open(); err != nil {
		return err
	}
	s.rows = nil
	s.pos = 0
	for {
		row, err := s.Child.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		s.rows = append(s.rows, row)
	}
	var sortErr error
	sort.SliceStable(s.rows, func(i, j int) bool {
		for _, k := range s.Keys {
			a, b := s.rows[i][k.Col], s.rows[j][k.Col]
			c, err := compareNullable(a, b)
			if err != nil && sortErr == nil {
				sortErr = err
			}
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return sortErr
}

func compareNullable(a, b expr.Value) (int, error) {
	switch {
	case a.IsNull() && b.IsNull():
		return 0, nil
	case a.IsNull():
		return -1, nil
	case b.IsNull():
		return 1, nil
	}
	return expr.Compare(a, b)
}

// Next implements Operator.
func (s *Sort) Next() (Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.rows = nil
	return s.Child.Close()
}

// Concat emits all rows of its children in order. Children must have
// identical column lists; the approximate query layer uses it to stitch a
// model scan over the covered region to a raw scan over the rest (the
// paper's "partial models" routing).
type Concat struct {
	Children []Operator
	idx      int
}

// Columns implements Operator.
func (c *Concat) Columns() []string {
	if len(c.Children) == 0 {
		return nil
	}
	return c.Children[0].Columns()
}

// Open implements Operator.
func (c *Concat) Open() error {
	if len(c.Children) == 0 {
		return fmt.Errorf("exec: empty concat")
	}
	want := c.Children[0].Columns()
	for _, ch := range c.Children[1:] {
		got := ch.Columns()
		if len(got) != len(want) {
			return fmt.Errorf("exec: concat children have %d vs %d columns", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("exec: concat column %d mismatch: %q vs %q", i, got[i], want[i])
			}
		}
	}
	c.idx = 0
	return c.Children[0].Open()
}

// Next implements Operator.
func (c *Concat) Next() (Row, error) {
	for {
		row, err := c.Children[c.idx].Next()
		if err != nil {
			return nil, err
		}
		if row != nil {
			return row, nil
		}
		if err := c.Children[c.idx].Close(); err != nil {
			return nil, err
		}
		c.idx++
		if c.idx >= len(c.Children) {
			return nil, nil
		}
		if err := c.Children[c.idx].Open(); err != nil {
			return nil, err
		}
	}
}

// Close implements Operator.
func (c *Concat) Close() error {
	if c.idx < len(c.Children) {
		return c.Children[c.idx].Close()
	}
	return nil
}
