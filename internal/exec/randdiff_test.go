package exec

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"

	"datalaws/internal/expr"
	"datalaws/internal/sql"
	"datalaws/internal/storage"
	"datalaws/internal/table"
)

// Randomized differential testing: a seeded generator produces queries —
// projections, filters, GROUP BY aggregates, ORDER BY/LIMIT — over
// partitioned and unpartitioned fixtures, and every query runs through row
// mode, the serial batch pipeline, and morsel-driven parallelism 1/2/4. All
// strategies must agree on results (exactly, except for documented
// last-ulps float divergence in merged aggregates) and on error messages.
//
// The run is deterministic from the logged seed: reproduce a failure with
//
//	RANDDIFF_SEED=<seed> RANDDIFF_ITERS=<n> go test -run TestRandomizedDifferential ./internal/exec
//
// RANDDIFF_ITERS bounds the query count (default 500; the race job runs a
// smaller bound).

const (
	defaultRanddiffIters = 500
	defaultRanddiffSeed  = 20260730
)

func randdiffConfig(t *testing.T) (seed int64, iters int) {
	t.Helper()
	seed, iters = defaultRanddiffSeed, defaultRanddiffIters
	if s := os.Getenv("RANDDIFF_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad RANDDIFF_SEED %q: %v", s, err)
		}
		seed = v
	}
	if s := os.Getenv("RANDDIFF_ITERS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			t.Fatalf("bad RANDDIFF_ITERS %q", s)
		}
		iters = v
	}
	if testing.Short() {
		iters = min(iters, 60)
	}
	return seed, iters
}

// randdiffFixture builds a partitioned table "t" and an identical
// unpartitioned "flat": k BIGINT (partition key, no NULLs), id BIGINT, x/y
// DOUBLE and s VARCHAR and b BOOLEAN with NULLs sprinkled in.
func randdiffFixture(t *testing.T, rng *rand.Rand, rows int) *table.Catalog {
	t.Helper()
	cat := table.NewCatalog()
	schema, err := table.NewSchema(
		table.ColumnDef{Name: "k", Type: storage.TypeInt64},
		table.ColumnDef{Name: "id", Type: storage.TypeInt64},
		table.ColumnDef{Name: "x", Type: storage.TypeFloat64},
		table.ColumnDef{Name: "y", Type: storage.TypeFloat64},
		table.ColumnDef{Name: "s", Type: storage.TypeString},
		table.ColumnDef{Name: "b", Type: storage.TypeBool},
	)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := cat.CreatePartitioned("t", schema, "k", []table.RangePartition{
		{Name: "p0", Upper: 100},
		{Name: "p1", Upper: 200},
		{Name: "p2", Upper: 300},
		{Name: "p3", Max: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := cat.Create("flat", schema)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([][]expr.Value, 0, rows)
	maybeNull := func(p float64, v expr.Value) expr.Value {
		if rng.Float64() < p {
			return expr.Null()
		}
		return v
	}
	for i := 0; i < rows; i++ {
		row := []expr.Value{
			expr.Int(int64(rng.Intn(400))),
			expr.Int(int64(i)),
			maybeNull(0.08, expr.Float(float64(rng.Intn(2000))/100-10)),
			maybeNull(0.08, expr.Float(rng.NormFloat64()*50)),
			maybeNull(0.05, expr.Str(fmt.Sprintf("s%d", rng.Intn(9)))),
			maybeNull(0.05, expr.Bool(rng.Intn(2) == 0)),
		}
		batch = append(batch, row)
	}
	if n, err := pt.AppendRows(batch); err != nil || n != rows {
		t.Fatalf("append t: %d, %v", n, err)
	}
	if n, err := flat.AppendRows(batch); err != nil || n != rows {
		t.Fatalf("append flat: %d, %v", n, err)
	}
	return cat
}

// genQuery emits one random SELECT; grouped reports whether it aggregates
// (its results then compare with float tolerance), ordered whether output
// order is fully determined.
func genQuery(rng *rand.Rand) (q string, grouped, ordered bool) {
	from := "t"
	if rng.Intn(2) == 0 {
		from = "flat"
	}
	var sb strings.Builder
	where := genWhere(rng)

	if rng.Intn(3) > 0 { // 2/3 aggregate queries
		grouped = true
		keys := [][2]string{
			{"k % 4", "kmod"},
			{"s", "s"},
			{"b", "b"},
			{"k", "k"},
			{"id % 10", "idmod"},
		}
		nk := 1 + rng.Intn(2)
		rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		sel := keys[:nk]
		aggPool := []string{"count(*)", "count(x)", "sum(x)", "avg(y)", "min(x)", "max(y)", "sum(x + y)", "min(s)"}
		na := 1 + rng.Intn(3)
		var items []string
		var keyExprs []string
		for _, kk := range sel {
			items = append(items, fmt.Sprintf("%s AS %s", kk[0], kk[1]))
			keyExprs = append(keyExprs, kk[0])
		}
		for i := 0; i < na; i++ {
			items = append(items, aggPool[rng.Intn(len(aggPool))])
		}
		fmt.Fprintf(&sb, "SELECT %s FROM %s", strings.Join(items, ", "), from)
		if where != "" {
			fmt.Fprintf(&sb, " WHERE %s", where)
		}
		fmt.Fprintf(&sb, " GROUP BY %s", strings.Join(keyExprs, ", "))
		if rng.Intn(4) == 0 {
			fmt.Fprintf(&sb, " HAVING count(*) > %d", rng.Intn(3))
		}
		// Always order by the group keys: deterministic output without
		// ordering by merged float aggregates.
		var ord []string
		for _, kk := range sel {
			dir := ""
			if rng.Intn(3) == 0 {
				dir = " DESC"
			}
			ord = append(ord, kk[1]+dir)
		}
		fmt.Fprintf(&sb, " ORDER BY %s", strings.Join(ord, ", "))
		ordered = true
		if rng.Intn(3) == 0 {
			fmt.Fprintf(&sb, " LIMIT %d", 1+rng.Intn(20))
		}
		return sb.String(), grouped, ordered
	}

	// Plain projection query.
	projPool := []string{"k", "id", "x", "y", "s", "b", "x + y", "id * 2", "-x", "abs(x)", "round(y)", "x IS NULL", "id % 7"}
	np := 1 + rng.Intn(4)
	var items []string
	for i := 0; i < np; i++ {
		items = append(items, projPool[rng.Intn(len(projPool))])
	}
	fmt.Fprintf(&sb, "SELECT id, %s FROM %s", strings.Join(items, ", "), from)
	if where != "" {
		fmt.Fprintf(&sb, " WHERE %s", where)
	}
	if rng.Intn(2) == 0 {
		// id is unique, so ordering by it is total.
		dir := ""
		if rng.Intn(2) == 0 {
			dir = " DESC"
		}
		fmt.Fprintf(&sb, " ORDER BY id%s", dir)
		ordered = true
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&sb, " LIMIT %d", 1+rng.Intn(50))
		}
	}
	return sb.String(), grouped, ordered
}

func genWhere(rng *rand.Rand) string {
	if rng.Intn(4) == 0 {
		return ""
	}
	atoms := []string{
		"k < 100", "k >= 100 AND k < 300", "k = 250", "k > 380",
		"x > 0", "x <= 2.5", "y < 10 OR y > 40", "x IS NULL", "y IS NOT NULL",
		"s = 's3'", "s <> 's1'", "b", "NOT b", "b IS NULL",
		"x BETWEEN -2 AND 6", "id % 3 = 1", "x + y > 0",
		"x <> 0 AND 10.0 / x > 2", // guarded division
	}
	n := 1 + rng.Intn(3)
	var parts []string
	for i := 0; i < n; i++ {
		parts = append(parts, atoms[rng.Intn(len(atoms))])
	}
	op := " AND "
	if rng.Intn(3) == 0 {
		op = " OR "
	}
	return "(" + strings.Join(parts, op) + ")"
}

// randdiffStrategies are the execution strategies every generated query
// must agree across; row mode is the baseline.
func randdiffStrategies() []Options {
	return []Options{
		{Mode: ModeRow},
		{Mode: ModeAuto, Parallelism: 1},
		{Mode: ModeAuto, Parallelism: 2},
		{Mode: ModeAuto, Parallelism: 4},
	}
}

func TestRandomizedDifferential(t *testing.T) {
	seed, iters := randdiffConfig(t)
	t.Logf("randdiff: seed=%d iters=%d (set RANDDIFF_SEED / RANDDIFF_ITERS to reproduce)", seed, iters)
	rng := rand.New(rand.NewSource(seed))
	withSmallMorsels(t, 256)
	cat := randdiffFixture(t, rng, 3000)

	// The differential corpus only exercises the chunked paths if the fixture
	// actually spans chunks: pin the shape so a future DefaultChunkRows or
	// fixture-size change can't silently collapse it to a single tail.
	flat, ok := cat.Get("flat")
	if !ok {
		t.Fatal("fixture missing flat table")
	}
	if cv := flat.Chunks(); cv.NumSealed() < 4 || cv.NumChunks() == cv.NumSealed() {
		t.Fatalf("fixture shape: %d sealed chunks, %d total — want ≥4 sealed plus a hot tail",
			cv.NumSealed(), cv.NumChunks())
	}

	for i := 0; i < iters; i++ {
		q, grouped, ordered := genQuery(rng)
		st, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("iter %d: generator produced unparsable query %q: %v", i, q, err)
		}
		var baseRows []Row
		var baseErr error
		for si, opts := range randdiffStrategies() {
			stmt, err := sql.Parse(q)
			if err != nil {
				t.Fatal(err)
			}
			op, err := BuildSelectOpts(cat, stmt.(*sql.SelectStmt), nil, opts)
			if err != nil {
				t.Fatalf("iter %d: plan %q (%+v): %v", i, q, opts, err)
			}
			rows, runErr := Drain(op)
			if si == 0 {
				baseRows, baseErr = rows, runErr
				continue
			}
			if (runErr == nil) != (baseErr == nil) {
				t.Fatalf("iter %d: %q: row err = %v, %+v err = %v", i, q, baseErr, opts, runErr)
			}
			if runErr != nil {
				if runErr.Error() != baseErr.Error() {
					t.Fatalf("iter %d: %q: error mismatch:\n  row:  %v\n  %+v: %v", i, q, baseErr, opts, runErr)
				}
				continue
			}
			compareRanddiff(t, i, q, opts, baseRows, rows, grouped, ordered)
		}
		_ = st
	}
}

// compareRanddiff compares a strategy's result against the row-mode
// baseline. Ordered results compare positionally; unordered ones as sorted
// multisets. Grouped (aggregated) queries tolerate last-ulps float drift
// from the parallel partial-aggregate merge; everything else must match
// exactly.
func compareRanddiff(t *testing.T, iter int, q string, opts Options, want, got []Row, grouped, ordered bool) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("iter %d: %q (%+v): %d rows, want %d", iter, q, opts, len(got), len(want))
	}
	w, g := want, got
	if !ordered {
		w, g = sortedRows(want), sortedRows(got)
	}
	for r := range w {
		if len(w[r]) != len(g[r]) {
			t.Fatalf("iter %d: %q (%+v) row %d: width %d vs %d", iter, q, opts, r, len(g[r]), len(w[r]))
		}
		for c := range w[r] {
			same := sameValue(w[r][c], g[r][c])
			if !same && grouped {
				same = closeValue(w[r][c], g[r][c])
			}
			if !same {
				t.Fatalf("iter %d: %q (%+v) row %d col %d: %v (%s) vs baseline %v (%s)",
					iter, q, opts, r, c, g[r][c], g[r][c].K, w[r][c], w[r][c].K)
			}
		}
	}
}

// sortedRows returns rows sorted by their rendered form (multiset compare).
func sortedRows(rows []Row) []Row {
	keys := make([]string, len(rows))
	idx := make([]int, len(rows))
	for i, r := range rows {
		var sb strings.Builder
		for c, v := range r {
			if c > 0 {
				sb.WriteByte('|')
			}
			fmt.Fprintf(&sb, "%s:%s", v.K, v)
		}
		keys[i] = sb.String()
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	out := make([]Row, len(rows))
	for i, j := range idx {
		out[i] = rows[j]
	}
	return out
}
