package exec

import (
	"fmt"
	"math"
	"strings"

	"datalaws/internal/expr"
)

// AggKind enumerates supported aggregate functions.
type AggKind uint8

// Aggregates. Var and StdDev use Welford's online algorithm with the
// unbiased (n−1) denominator.
const (
	AggCount AggKind = iota
	AggSum
	AggAvg
	AggMin
	AggMax
	AggVar
	AggStdDev
)

// aggKindByName maps lower-case function names to aggregate kinds.
// count with zero args is COUNT(*).
var aggKindByName = map[string]AggKind{
	"count": AggCount, "sum": AggSum, "avg": AggAvg,
	"min": AggMin, "max": AggMax, "var": AggVar, "stddev": AggStdDev,
}

// IsAggregateCall reports whether a call expression denotes an aggregate in
// select-list position. min/max with more than one argument remain scalar
// functions.
func IsAggregateCall(c *expr.Call) (AggKind, bool) {
	k, ok := aggKindByName[strings.ToLower(c.Name)]
	if !ok {
		return 0, false
	}
	switch k {
	case AggCount:
		return k, len(c.Args) <= 1
	default:
		return k, len(c.Args) == 1
	}
}

// AggSpec is one aggregate computation: Kind over Arg (nil for COUNT(*)).
type AggSpec struct {
	Kind AggKind
	Arg  expr.Expr
}

type aggState struct {
	count int64
	sum   float64
	mean  float64
	m2    float64
	min   expr.Value
	max   expr.Value
	seen  bool
}

func (st *aggState) update(kind AggKind, v expr.Value) error {
	if v.IsNull() {
		return nil // SQL aggregates skip NULLs
	}
	switch kind {
	case AggCount:
		st.count++
	case AggSum, AggAvg, AggVar, AggStdDev:
		f, err := v.AsFloat()
		if err != nil {
			return err
		}
		st.count++
		st.sum += f
		d := f - st.mean
		st.mean += d / float64(st.count)
		st.m2 += d * (f - st.mean)
	case AggMin:
		if !st.seen {
			st.min, st.seen = v, true
			return nil
		}
		c, err := expr.Compare(v, st.min)
		if err != nil {
			return err
		}
		if c < 0 {
			st.min = v
		}
	case AggMax:
		if !st.seen {
			st.max, st.seen = v, true
			return nil
		}
		c, err := expr.Compare(v, st.max)
		if err != nil {
			return err
		}
		if c > 0 {
			st.max = v
		}
	}
	return nil
}

// addFloat is update for a known-numeric non-NULL argument: the vectorized
// aggregate calls it with raw floats, skipping the boxing and coercion of
// the generic path. Only valid for COUNT/SUM/AVG/VAR/STDDEV.
func (st *aggState) addFloat(kind AggKind, f float64) {
	st.count++
	if kind == AggCount {
		return
	}
	st.sum += f
	d := f - st.mean
	st.mean += d / float64(st.count)
	st.m2 += d * (f - st.mean)
}

// merge folds another partial state for the same group into st — the
// recombination step of parallel aggregation. COUNT/SUM/AVG merge
// additively, MIN/MAX by comparison, and VAR/STDDEV through the two-sample
// Welford combination. Merging reassociates floating-point addition, so
// SUM/AVG/VAR/STDDEV results can differ from serial execution in the last
// few ulps.
func (st *aggState) merge(o *aggState, kind AggKind) error {
	switch kind {
	case AggCount:
		st.count += o.count
	case AggSum, AggAvg, AggVar, AggStdDev:
		if o.count == 0 {
			return nil
		}
		if st.count == 0 {
			*st = *o
			return nil
		}
		na, nb := float64(st.count), float64(o.count)
		delta := o.mean - st.mean
		st.m2 += o.m2 + delta*delta*na*nb/(na+nb)
		st.mean += delta * nb / (na + nb)
		st.sum += o.sum
		st.count += o.count
	case AggMin:
		if !o.seen {
			return nil
		}
		if !st.seen {
			st.min, st.seen = o.min, true
			return nil
		}
		c, err := expr.Compare(o.min, st.min)
		if err != nil {
			return err
		}
		if c < 0 {
			st.min = o.min
		}
	case AggMax:
		if !o.seen {
			return nil
		}
		if !st.seen {
			st.max, st.seen = o.max, true
			return nil
		}
		c, err := expr.Compare(o.max, st.max)
		if err != nil {
			return err
		}
		if c > 0 {
			st.max = o.max
		}
	}
	return nil
}

func (st *aggState) final(kind AggKind) expr.Value {
	switch kind {
	case AggCount:
		return expr.Int(st.count)
	case AggSum:
		if st.count == 0 {
			return expr.Null()
		}
		return expr.Float(st.sum)
	case AggAvg:
		if st.count == 0 {
			return expr.Null()
		}
		return expr.Float(st.sum / float64(st.count))
	case AggMin:
		if !st.seen {
			return expr.Null()
		}
		return st.min
	case AggMax:
		if !st.seen {
			return expr.Null()
		}
		return st.max
	case AggVar:
		if st.count < 2 {
			return expr.Null()
		}
		return expr.Float(st.m2 / float64(st.count-1))
	case AggStdDev:
		if st.count < 2 {
			return expr.Null()
		}
		return expr.Float(math.Sqrt(st.m2 / float64(st.count-1)))
	}
	return expr.Null()
}

// aggOutputCols builds the aggregate output column names — "$grp0…$grpN"
// followed by "$agg0…$aggM" — shared by every aggregate operator so the
// planner's post-projection contract lives in one place.
func aggOutputCols(ngroup, nagg int) []string {
	cols := make([]string, 0, ngroup+nagg)
	for i := 0; i < ngroup; i++ {
		cols = append(cols, fmt.Sprintf("$grp%d", i))
	}
	for i := 0; i < nagg; i++ {
		cols = append(cols, fmt.Sprintf("$agg%d", i))
	}
	return cols
}

// HashAggregate groups rows by GroupExprs and computes Aggs per group. Its
// output columns are "$grp0…$grpN" followed by "$agg0…$aggM", which the
// planner's post-projection maps back to user-visible expressions.
type HashAggregate struct {
	Child      Operator
	GroupExprs []expr.Expr
	Aggs       []AggSpec

	cols   []string
	groups []*aggGroup
	pos    int
}

type aggGroup struct {
	key    []expr.Value
	states []aggState
}

// Columns implements Operator.
func (h *HashAggregate) Columns() []string {
	if h.cols == nil {
		h.cols = aggOutputCols(len(h.GroupExprs), len(h.Aggs))
	}
	return h.cols
}

// Open implements Operator: it fully consumes the child and builds groups.
func (h *HashAggregate) Open() error {
	if err := h.Child.Open(); err != nil {
		return err
	}
	h.groups = nil
	h.pos = 0
	env := newRowEnv(h.Child.Columns())
	if err := env.resolve(h.GroupExprs...); err != nil {
		return err
	}
	for _, spec := range h.Aggs {
		if err := env.resolve(spec.Arg); err != nil {
			return err
		}
	}
	index := map[string]*aggGroup{}
	var order []*aggGroup
	for {
		row, err := h.Child.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		env.bind(row)
		key := make([]expr.Value, len(h.GroupExprs))
		var kb strings.Builder
		for i, g := range h.GroupExprs {
			v, err := expr.Eval(g, env)
			if err != nil {
				return fmt.Errorf("exec: GROUP BY: %w", err)
			}
			key[i] = v
			kb.WriteString(v.String())
			kb.WriteByte('\x00')
		}
		ks := kb.String()
		grp, ok := index[ks]
		if !ok {
			grp = &aggGroup{key: key, states: make([]aggState, len(h.Aggs))}
			index[ks] = grp
			order = append(order, grp)
		}
		for i, spec := range h.Aggs {
			var v expr.Value
			if spec.Arg == nil {
				v = expr.Int(1) // COUNT(*): any non-null marker
			} else {
				v, err = expr.Eval(spec.Arg, env)
				if err != nil {
					return fmt.Errorf("exec: aggregate arg: %w", err)
				}
			}
			if err := grp.states[i].update(spec.Kind, v); err != nil {
				return fmt.Errorf("exec: aggregate: %w", err)
			}
		}
	}
	// A global aggregate over zero rows still yields one output row.
	if len(order) == 0 && len(h.GroupExprs) == 0 {
		order = append(order, &aggGroup{states: make([]aggState, len(h.Aggs))})
	}
	h.groups = order
	return nil
}

// Next implements Operator.
func (h *HashAggregate) Next() (Row, error) {
	if h.pos >= len(h.groups) {
		return nil, nil
	}
	g := h.groups[h.pos]
	h.pos++
	out := make(Row, 0, len(g.key)+len(h.Aggs))
	out = append(out, g.key...)
	for i, spec := range h.Aggs {
		out = append(out, g.states[i].final(spec.Kind))
	}
	return out, nil
}

// Close implements Operator.
func (h *HashAggregate) Close() error {
	h.groups = nil
	return h.Child.Close()
}
