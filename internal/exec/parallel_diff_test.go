package exec

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"datalaws/internal/expr"
	"datalaws/internal/sql"
	"datalaws/internal/storage"
	"datalaws/internal/table"
)

// largeDiffFixture is diffFixture scaled to span many morsels: the same
// schemas and value distributions (NULLs in every nullable position, the
// 'NULL' literal-string pitfall, negative and zero values), generated
// deterministically so serial and parallel runs see identical data.
func largeDiffFixture(t *testing.T, rows int) *table.Catalog {
	t.Helper()
	cat := table.NewCatalog()
	ts, err := table.NewSchema(
		table.ColumnDef{Name: "id", Type: storage.TypeInt64},
		table.ColumnDef{Name: "grp", Type: storage.TypeInt64},
		table.ColumnDef{Name: "x", Type: storage.TypeFloat64},
		table.ColumnDef{Name: "y", Type: storage.TypeFloat64},
		table.ColumnDef{Name: "label", Type: storage.TypeString},
		table.ColumnDef{Name: "flag", Type: storage.TypeBool},
	)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := cat.Create("t", ts)
	if err != nil {
		t.Fatal(err)
	}
	labels := []string{"a", "b", "c", "NULL", "d"}
	null := expr.Null()
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	batch := make([][]expr.Value, 0, 1024)
	for i := 0; i < rows; i++ {
		r := next()
		row := []expr.Value{
			expr.Int(int64(i + 1)),
			expr.Int(int64(r % 7)),
			expr.Float(float64(int64(r%2001)-1000) / 8),
			expr.Float(float64(int64(next()%4001) - 2000)),
			expr.Str(labels[next()%uint64(len(labels))]),
			expr.Bool(next()%2 == 0),
		}
		// Sprinkle NULLs over every nullable column on co-prime strides so
		// all 3VL combinations occur.
		if i%5 == 3 {
			row[2] = null
		}
		if i%7 == 2 {
			row[3] = null
		}
		if i%11 == 6 {
			row[1] = null
		}
		if i%13 == 4 {
			row[4] = null
		}
		if i%17 == 9 {
			row[5] = null
		}
		batch = append(batch, row)
		if len(batch) == cap(batch) {
			if _, err := tb.AppendRows(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if _, err := tb.AppendRows(batch); err != nil {
			t.Fatal(err)
		}
	}
	ss, err := table.NewSchema(
		table.ColumnDef{Name: "grp", Type: storage.TypeInt64},
		table.ColumnDef{Name: "name", Type: storage.TypeString},
	)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cat.Create("g", ss)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"zero", "one", "two", "three", "four", "five", "six"} {
		if err := s.AppendRow([]expr.Value{expr.Int(int64(i)), expr.Str(name)}); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

// withSmallMorsels shrinks the morsel size so small fixtures span many
// morsels, restoring it when the test ends.
func withSmallMorsels(t *testing.T, rows int) {
	t.Helper()
	old := table.DefaultChunkRows
	table.DefaultChunkRows = rows
	t.Cleanup(func() { table.DefaultChunkRows = old })
}

// closeValue compares kind-exactly, with a relative tolerance for floats:
// the partial-aggregate merge reassociates floating-point addition, so
// SUM/AVG/VAR/STDDEV may differ from serial execution in the last few ulps.
func closeValue(a, b expr.Value) bool {
	if a.K != b.K {
		return false
	}
	if a.K == expr.KindFloat {
		if a.String() == b.String() {
			return true // covers NaN, ±Inf, -0 exactly
		}
		scale := math.Max(math.Abs(a.F), math.Abs(b.F))
		return math.Abs(a.F-b.F) <= 1e-9*scale
	}
	return a.String() == b.String()
}

func buildParallel(t *testing.T, cat *table.Catalog, q string, workers int) (Operator, error) {
	t.Helper()
	st, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return BuildSelectOpts(cat, st.(*sql.SelectStmt), nil, Options{Mode: ModeAuto, Parallelism: workers})
}

// compareRuns checks two drained results row by row IN ORDER: the gather
// re-emits morsels in serial scan order and the parallel aggregate merges
// groups in serial first-seen order, so even queries without ORDER BY must
// match serial row order.
func compareRuns(t *testing.T, q, label string, want, got []Row, wantErr, gotErr error) {
	t.Helper()
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("%q [%s]: serial err = %v, parallel err = %v", q, label, wantErr, gotErr)
	}
	if wantErr != nil {
		if wantErr.Error() != gotErr.Error() {
			t.Fatalf("%q [%s]: error mismatch: serial %q vs parallel %q", q, label, wantErr, gotErr)
		}
		return
	}
	if len(want) != len(got) {
		t.Fatalf("%q [%s]: serial %d rows vs parallel %d rows", q, label, len(want), len(got))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			t.Fatalf("%q [%s] row %d: width %d vs %d", q, label, i, len(want[i]), len(got[i]))
		}
		for c := range want[i] {
			if !closeValue(want[i][c], got[i][c]) {
				t.Fatalf("%q [%s] row %d col %d: serial %v (%s) vs parallel %v (%s)",
					q, label, i, c, want[i][c], want[i][c].K, got[i][c], got[i][c].K)
			}
		}
	}
}

// TestDifferentialParallelVsSerial runs the entire differential corpus at
// parallelism 1, 2, 4 and GOMAXPROCS against the serial row engine, over
// both the small edge-case fixture and a large many-morsel fixture.
func TestDifferentialParallelVsSerial(t *testing.T) {
	withSmallMorsels(t, 256)
	levels := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	fixtures := []struct {
		name string
		cat  *table.Catalog
	}{
		{"small", diffFixture(t)},
		{"large", largeDiffFixture(t, 4000)},
	}
	for _, fx := range fixtures {
		for _, q := range differentialQueries {
			rowOp, err := buildMode(t, fx.cat, q, ModeRow)
			if err != nil {
				t.Fatalf("plan (row) %q: %v", q, err)
			}
			want, wantErr := Drain(rowOp)
			for _, p := range levels {
				parOp, err := buildParallel(t, fx.cat, q, p)
				if err != nil {
					t.Fatalf("plan (parallel %d) %q: %v", p, q, err)
				}
				got, gotErr := Drain(parOp)
				compareRuns(t, q, fmt.Sprintf("%s p=%d", fx.name, p), want, got, wantErr, gotErr)
			}
		}
	}
}

// TestDifferentialParallelErrors checks that runtime errors surface with
// identical messages through the parallel pipelines: the gather reports the
// first erroring morsel in serial order, and the parallel aggregate the
// in-order-first worker failure.
func TestDifferentialParallelErrors(t *testing.T) {
	withSmallMorsels(t, 256)
	cat := largeDiffFixture(t, 3000)
	for _, q := range []string{
		"SELECT 1 / 0 FROM t",
		"SELECT id FROM t WHERE 1 % 0 = 1",
		"SELECT id + label FROM t WHERE label = 'a'",
		"SELECT id FROM t WHERE label AND flag",
		"SELECT sum(label) FROM t GROUP BY grp",
	} {
		rowOp, err := buildMode(t, cat, q, ModeRow)
		if err != nil {
			t.Fatalf("plan (row) %q: %v", q, err)
		}
		_, rowErr := Drain(rowOp)
		if rowErr == nil {
			t.Fatalf("%q: want a serial error", q)
		}
		for _, p := range []int{2, 4} {
			parOp, err := buildParallel(t, cat, q, p)
			if err != nil {
				t.Fatalf("plan (parallel %d) %q: %v", p, q, err)
			}
			_, parErr := Drain(parOp)
			if parErr == nil {
				t.Fatalf("%q p=%d: want an error, got none", q, p)
			}
			if rowErr.Error() != parErr.Error() {
				t.Fatalf("%q p=%d: error mismatch:\n  serial:   %v\n  parallel: %v", q, p, rowErr, parErr)
			}
		}
	}
}

// TestParallelOrderByDeterministic pins deterministic output for ORDER BY
// (+ LIMIT) under parallel execution: the ordered gather preserves serial
// scan order, so stable sort ties and LIMIT cutoffs cannot flap between
// runs or parallelism levels.
func TestParallelOrderByDeterministic(t *testing.T) {
	withSmallMorsels(t, 256)
	cat := largeDiffFixture(t, 3000)
	queries := []string{
		// x carries NULLs and duplicates, so the sort has genuine ties.
		"SELECT id, x AS ex FROM t ORDER BY ex DESC LIMIT 25",
		"SELECT id FROM t WHERE flag ORDER BY label LIMIT 40",
		"SELECT grp, count(*) FROM t GROUP BY grp ORDER BY grp",
	}
	for _, q := range queries {
		var baseline []Row
		for run := 0; run < 3; run++ {
			for _, p := range []int{2, 4} {
				op, err := buildParallel(t, cat, q, p)
				if err != nil {
					t.Fatal(err)
				}
				rows, err := Drain(op)
				if err != nil {
					t.Fatalf("%q: %v", q, err)
				}
				if baseline == nil {
					baseline = rows
					continue
				}
				compareRuns(t, q, fmt.Sprintf("run=%d p=%d", run, p), baseline, rows, nil, nil)
			}
		}
	}
}
