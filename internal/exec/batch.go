package exec

import (
	"datalaws/internal/expr"
)

// BatchSize is the number of rows a vectorized operator processes per
// NextBatch call: large enough to amortize per-batch dispatch, small enough
// to keep the working set of one pipeline stage in cache.
const BatchSize = 1024

// anyKind marks a Vector whose entries carry heterogeneous runtime kinds and
// therefore live boxed in the Any slice. It only occurs for derived columns
// (e.g. aggregate groups mixing INT and FLOAT keys); base-table vectors are
// always typed.
const anyKind = expr.Kind(0xFF)

// Vector is one column of a Batch: a typed slice plus an optional null mask.
// Exactly one of F/I/S/B/Any is populated according to Kind. A nil Null mask
// means the vector has no NULL entries; entries at masked positions are
// unspecified. Vectors produced by scans may alias storage directly, so
// consumers must treat them as read-only.
type Vector struct {
	Kind expr.Kind
	F    []float64
	I    []int64
	S    []string
	B    []bool
	Any  []expr.Value
	Null []bool
	// Stable marks a vector whose typed data array (F/I/S/B/Any) is
	// immutable for the life of the query — a zero-copy view of a table
	// snapshot — so consumers that must retain batches (the parallel
	// gather) may alias it instead of copying. The Null mask is NOT
	// covered: scans materialize it into reusable scratch.
	Stable bool
}

// Len returns the physical length of the vector.
func (v *Vector) Len() int {
	switch v.Kind {
	case expr.KindFloat:
		return len(v.F)
	case expr.KindInt:
		return len(v.I)
	case expr.KindString:
		return len(v.S)
	case expr.KindBool:
		return len(v.B)
	case anyKind:
		return len(v.Any)
	}
	return len(v.Null) // all-NULL vector: the mask carries the length
}

// IsNull reports whether entry i is NULL.
func (v *Vector) IsNull(i int) bool {
	if v.Kind == expr.KindNull {
		return true
	}
	if v.Kind == anyKind {
		return v.Any[i].IsNull()
	}
	return v.Null != nil && v.Null[i]
}

// Value boxes entry i as a runtime value.
func (v *Vector) Value(i int) expr.Value {
	if v.IsNull(i) {
		return expr.Null()
	}
	switch v.Kind {
	case expr.KindFloat:
		return expr.Float(v.F[i])
	case expr.KindInt:
		return expr.Int(v.I[i])
	case expr.KindString:
		return expr.Str(v.S[i])
	case expr.KindBool:
		return expr.Bool(v.B[i])
	case anyKind:
		return v.Any[i]
	}
	return expr.Null()
}

// newNullVector returns an all-NULL vector of physical length n.
func newNullVector(n int) *Vector {
	return &Vector{Kind: expr.KindNull, Null: make([]bool, n)}
}

// vectorFromValues builds a vector from boxed values, choosing a typed
// representation when every non-NULL entry shares one kind and falling back
// to a boxed any-vector otherwise. Kinds are preserved exactly (no int→float
// promotion) so batch results compare bit-for-bit with row results.
func vectorFromValues(vals []expr.Value) *Vector {
	kind := expr.KindNull
	uniform := true
	for _, v := range vals {
		if v.IsNull() {
			continue
		}
		if kind == expr.KindNull {
			kind = v.K
		} else if v.K != kind {
			uniform = false
			break
		}
	}
	if !uniform {
		out := &Vector{Kind: anyKind, Any: make([]expr.Value, len(vals))}
		copy(out.Any, vals)
		return out
	}
	n := len(vals)
	switch kind {
	case expr.KindNull:
		return newNullVector(n)
	case expr.KindFloat:
		out := &Vector{Kind: kind, F: make([]float64, n)}
		for i, v := range vals {
			if v.IsNull() {
				out.setNull(i, n)
				continue
			}
			out.F[i] = v.F
		}
		return out
	case expr.KindInt:
		out := &Vector{Kind: kind, I: make([]int64, n)}
		for i, v := range vals {
			if v.IsNull() {
				out.setNull(i, n)
				continue
			}
			out.I[i] = v.I
		}
		return out
	case expr.KindString:
		out := &Vector{Kind: kind, S: make([]string, n)}
		for i, v := range vals {
			if v.IsNull() {
				out.setNull(i, n)
				continue
			}
			out.S[i] = v.S
		}
		return out
	default: // KindBool
		out := &Vector{Kind: kind, B: make([]bool, n)}
		for i, v := range vals {
			if v.IsNull() {
				out.setNull(i, n)
				continue
			}
			out.B[i] = v.B
		}
		return out
	}
}

func (v *Vector) setNull(i, n int) {
	if v.Null == nil {
		v.Null = make([]bool, n)
	}
	v.Null[i] = true
}

// Batch is a horizontal slice of rows in columnar form. N is the physical
// row count of every column; Sel, when non-nil, lists the physical row
// indexes that are logically present (in order), implementing filtering
// without copying column data. A batch is owned by its consumer until the
// producing operator's next NextBatch call, and consumers may set Sel on a
// batch they received.
type Batch struct {
	N    int
	Cols []*Vector
	Sel  []int

	all []int // cached identity selection
}

// NumRows returns the logical (selected) row count.
func (b *Batch) NumRows() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.N
}

// selection returns the physical indexes of the logical rows, materializing
// and caching the identity selection when no filter has been applied.
func (b *Batch) selection() []int {
	if b.Sel != nil {
		return b.Sel
	}
	if cap(b.all) < b.N {
		b.all = make([]int, b.N)
		for i := range b.all {
			b.all[i] = i
		}
	}
	b.all = b.all[:b.N]
	return b.all
}
