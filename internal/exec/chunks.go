package exec

import (
	"fmt"

	"datalaws/internal/expr"
	"datalaws/internal/storage"
	"datalaws/internal/table"
)

// chunkSet is the Open-time capture of a chunk-aware scan's input: one
// consistent ChunkView of the table plus the chunk indices surviving
// zone-map pruning against the statement's WHERE predicate. Scans address
// chunks by dense position 0..len(keep)-1, so pruning is invisible to the
// morsel machinery — survivors simply form a shorter, still serially-ordered
// chunk list.
type chunkSet struct {
	view *table.ChunkView
	keep []int
}

// captureChunks snapshots t and prunes its chunks. alias is the qualifier
// the predicate references the table's columns under (the parent name for
// partition children).
func captureChunks(t *table.Table, where expr.Expr, alias string) (chunkSet, error) {
	if t == nil {
		return chunkSet{}, fmt.Errorf("exec: scan over nil table")
	}
	v := t.Chunks()
	return chunkSet{view: v, keep: v.Survivors(where, alias)}, nil
}

// numChunks returns the surviving chunk count.
func (cs chunkSet) numChunks() int { return len(cs.keep) }

// rows returns the view's total (pre-pruning) row count.
func (cs chunkSet) rows() int {
	if cs.view == nil {
		return 0
	}
	return cs.view.Rows()
}

// rawColumns materializes surviving chunk k's column set (decoded through
// the shared cache) and its row count.
func (cs chunkSet) rawColumns(k int) ([]storage.Column, int, error) {
	ci := cs.keep[k]
	cols, err := cs.view.Columns(ci)
	if err != nil {
		return nil, 0, err
	}
	return cols, cs.view.ChunkLen(ci), nil
}

// columns materializes surviving chunk k as vectorized column sources.
func (cs chunkSet) columns(k int) ([]vecColSrc, int, error) {
	cols, n, err := cs.rawColumns(k)
	if err != nil {
		return nil, 0, err
	}
	src, err := vecColsOf(cols, n)
	return src, n, err
}

// vecColsOf builds typed slice-header views of a chunk's columns. No
// defensive cloning happens here: decoded chunk columns are private to the
// cache entry and the view's tail snapshot was already prefix-cloned at
// capture, so every source is immutable and safe to share across morsel
// workers.
func vecColsOf(cols []storage.Column, n int) ([]vecColSrc, error) {
	src := make([]vecColSrc, len(cols))
	for i, c := range cols {
		switch tc := c.(type) {
		case *storage.Int64Column:
			src[i] = vecColSrc{kind: expr.KindInt, i64: tc.Vals[:n], nulls: tc.Nulls}
		case *storage.Float64Column:
			src[i] = vecColSrc{kind: expr.KindFloat, f64: tc.Vals[:n], nulls: tc.Nulls}
		case *storage.StringColumn:
			src[i] = vecColSrc{kind: expr.KindString, codes: tc.Codes[:n], dict: tc.Dict, nulls: tc.Nulls}
		case *storage.BoolColumn:
			src[i] = vecColSrc{kind: expr.KindBool, bools: tc.Vals, nulls: tc.Nulls}
		default:
			return nil, fmt.Errorf("exec: cannot vectorize column type %T", tc)
		}
	}
	return src, nil
}

// chunkExplain renders a scan's zone-map pruning for EXPLAIN, mirroring the
// "partitions: k/N pruned" form. Tables with no sealed chunks render
// nothing — there is nothing to prune. The survivor set is computed fresh at
// render time, so EXPLAIN reflects the table's current chunk population.
func chunkExplain(t *table.Table, where expr.Expr, alias string) string {
	if t == nil {
		return ""
	}
	v := t.Chunks()
	if v.NumSealed() == 0 {
		return ""
	}
	total := v.NumChunks()
	kept := len(v.Survivors(where, alias))
	return fmt.Sprintf(" chunks: %d/%d pruned", total-kept, total)
}
