package exec

import (
	"fmt"

	"datalaws/internal/expr"
	"datalaws/internal/storage"
	"datalaws/internal/table"
)

// VectorOperator is the batch analogue of Operator: a pull iterator over
// columnar batches. A returned batch (including its vectors) is only valid
// until the next NextBatch or Close call on the producing operator, and the
// consumer may set Sel on a batch it received.
type VectorOperator interface {
	Columns() []string
	Open() error
	// NextBatch returns the next batch, or nil at end of input.
	NextBatch() (*Batch, error)
	Close() error
}

// VecTableScan reads a base table chunk by chunk in batches whose int/float
// vectors are zero-copy views straight off the decoded storage columns — no
// per-row boxing, no table.Row materialization. Like TableScan it captures
// one consistent ChunkView at Open (concurrent appends do not tear the
// scan) and skips sealed chunks whose zone maps prove Where cannot match,
// without decoding them.
type VecTableScan struct {
	Table *table.Table
	// Where prunes sealed chunks by zone map; nil scans everything.
	Where expr.Expr
	// Alias is the qualifier Where references columns under; empty means the
	// table's own name.
	Alias string
	Interruptible

	cols   []string
	cs     chunkSet
	ki     int
	src    []vecColSrc
	n, pos int
	win    colWindow
}

// vecColSrc is the Open-time snapshot of one storage column: typed slice
// headers plus the null bitmap, enough to emit batch windows without going
// back through the Column interface.
type vecColSrc struct {
	kind  expr.Kind
	i64   []int64
	f64   []float64
	codes []uint32
	dict  []string
	bools *storage.Bitmap
	nulls *storage.Bitmap
}

// NewVecTableScan builds a vectorized scan over t with qualified output
// columns.
func NewVecTableScan(t *table.Table) *VecTableScan {
	return &VecTableScan{Table: t, cols: qualifiedCols(t), Alias: t.Name}
}

// NewVecTableScanAs is NewVecTableScan with the qualifier overridden (see
// NewTableScanAs).
func NewVecTableScanAs(t *table.Table, alias string) *VecTableScan {
	return &VecTableScan{Table: t, cols: qualifiedColsAs(t, alias), Alias: alias}
}

// Columns implements VectorOperator.
func (s *VecTableScan) Columns() []string { return s.cols }

// aliasName resolves the pruning qualifier.
func (s *VecTableScan) aliasName() string {
	if s.Alias != "" {
		return s.Alias
	}
	if s.Table != nil {
		return s.Table.Name
	}
	return ""
}

// Open implements VectorOperator.
func (s *VecTableScan) Open() error {
	cs, err := captureChunks(s.Table, s.Where, s.aliasName())
	if err != nil {
		return err
	}
	s.cs = cs
	s.ki = 0
	s.src, s.n, s.pos = nil, 0, 0
	s.ResetInterrupt()
	s.win.init(len(s.cols))
	return nil
}

// NextBatch implements VectorOperator. Batch windows never span chunks, so
// every emitted vector views a single decoded chunk (or the tail snapshot).
func (s *VecTableScan) NextBatch() (*Batch, error) {
	if err := s.CheckInterruptNow(); err != nil {
		return nil, err
	}
	for {
		if s.src == nil {
			if s.ki >= s.cs.numChunks() {
				return nil, nil
			}
			src, n, err := s.cs.columns(s.ki)
			if err != nil {
				return nil, err
			}
			s.src, s.n, s.pos = src, n, 0
		}
		if s.pos >= s.n {
			s.src = nil
			s.ki++
			continue
		}
		lo := s.pos
		hi := lo + BatchSize
		if hi > s.n {
			hi = s.n
		}
		s.pos = hi
		return s.win.window(s.src, lo, hi), nil
	}
}

// colWindow materializes [lo, hi) row windows of a column snapshot into a
// reusable batch. Int and float vectors are zero-copy views of the storage
// slices; strings, bools and null masks fill per-window scratch buffers.
// Each consumer owns its own colWindow, so parallel morsel workers never
// share output buffers.
type colWindow struct {
	batch    Batch
	nullBufs [][]bool
	strBufs  [][]string
	boolBufs [][]bool
}

// init sizes the window for nc columns; call it from Open.
func (w *colWindow) init(nc int) {
	w.batch.Cols = make([]*Vector, nc)
	for i := range w.batch.Cols {
		w.batch.Cols[i] = &Vector{}
	}
	w.nullBufs = make([][]bool, nc)
	w.strBufs = make([][]string, nc)
	w.boolBufs = make([][]bool, nc)
}

// window fills the batch with rows [lo, hi) of the snapshot. The returned
// batch is valid until the next window call.
func (w *colWindow) window(src []vecColSrc, lo, hi int) *Batch {
	n := hi - lo
	b := &w.batch
	b.N = n
	b.Sel = nil
	for c := range src {
		sc := &src[c]
		v := b.Cols[c]
		*v = Vector{Kind: sc.kind, Null: w.nullSlice(c, sc.nulls, lo, n)}
		switch sc.kind {
		case expr.KindInt:
			v.I = sc.i64[lo:hi]
			v.Stable = true
		case expr.KindFloat:
			v.F = sc.f64[lo:hi]
			v.Stable = true
		case expr.KindString:
			if cap(w.strBufs[c]) < n {
				w.strBufs[c] = make([]string, BatchSize)
			}
			buf := w.strBufs[c][:n]
			for i := 0; i < n; i++ {
				if v.Null == nil || !v.Null[i] {
					buf[i] = sc.dict[sc.codes[lo+i]]
				}
			}
			v.S = buf
		case expr.KindBool:
			if cap(w.boolBufs[c]) < n {
				w.boolBufs[c] = make([]bool, BatchSize)
			}
			buf := w.boolBufs[c][:n]
			for i := 0; i < n; i++ {
				buf[i] = sc.bools.Get(lo + i)
			}
			v.B = buf
		}
	}
	return b
}

// nullSlice materializes the [lo, lo+n) window of a null bitmap into a bool
// slice, returning nil when the whole column is null-free.
func (w *colWindow) nullSlice(c int, bm *storage.Bitmap, lo, n int) []bool {
	if bm == nil || !bm.Any() {
		return nil
	}
	if cap(w.nullBufs[c]) < n {
		w.nullBufs[c] = make([]bool, BatchSize)
	}
	buf := w.nullBufs[c][:n]
	for i := 0; i < n; i++ {
		buf[i] = bm.Get(lo + i)
	}
	return buf
}

// Close implements VectorOperator.
func (s *VecTableScan) Close() error {
	s.src, s.cs = nil, chunkSet{}
	return nil
}

// VecValuesScan replays pre-materialized boxed rows in batches.
type VecValuesScan struct {
	Cols []string
	Rows []Row
	Interruptible
	pos int
}

// Columns implements VectorOperator.
func (s *VecValuesScan) Columns() []string { return s.Cols }

// Open implements VectorOperator.
func (s *VecValuesScan) Open() error { s.pos = 0; s.ResetInterrupt(); return nil }

// NextBatch implements VectorOperator.
func (s *VecValuesScan) NextBatch() (*Batch, error) {
	if err := s.CheckInterruptNow(); err != nil {
		return nil, err
	}
	if s.pos >= len(s.Rows) {
		return nil, nil
	}
	lo := s.pos
	hi := lo + BatchSize
	if hi > len(s.Rows) {
		hi = len(s.Rows)
	}
	s.pos = hi
	return batchFromRows(s.Rows[lo:hi], len(s.Cols)), nil
}

// Close implements VectorOperator.
func (s *VecValuesScan) Close() error { return nil }

// batchFromRows transposes boxed rows into a columnar batch.
func batchFromRows(rows []Row, ncols int) *Batch {
	b := &Batch{N: len(rows), Cols: make([]*Vector, ncols)}
	vals := make([]expr.Value, len(rows))
	for c := 0; c < ncols; c++ {
		for i, r := range rows {
			vals[i] = r[c]
		}
		b.Cols[c] = vectorFromValues(vals)
	}
	return b
}

// VecFilter applies a compiled predicate kernel and narrows the batch's
// selection vector — surviving rows are never copied.
type VecFilter struct {
	Child VectorOperator
	Pred  expr.Expr

	kern   kernelFn
	selBuf []int
}

// Columns implements VectorOperator.
func (f *VecFilter) Columns() []string { return f.Child.Columns() }

// Open implements VectorOperator.
func (f *VecFilter) Open() error {
	k, err := compileKernel(f.Pred, f.Child.Columns())
	if err != nil {
		return err
	}
	f.kern = k
	return f.Child.Open()
}

// NextBatch implements VectorOperator.
func (f *VecFilter) NextBatch() (*Batch, error) {
	for {
		b, err := f.Child.NextBatch()
		if err != nil || b == nil {
			return b, err
		}
		sel := b.selection()
		v, err := f.kern(b, sel)
		if err != nil {
			return nil, fmt.Errorf("exec: WHERE: %w", err)
		}
		out := f.selBuf[:0]
		for _, i := range sel {
			t, isN, err := truth(v, i)
			if err != nil {
				return nil, fmt.Errorf("exec: WHERE: %w", err)
			}
			if !isN && t {
				out = append(out, i)
			}
		}
		f.selBuf = out
		if len(out) == 0 {
			continue
		}
		b.Sel = out
		return b, nil
	}
}

// Close implements VectorOperator.
func (f *VecFilter) Close() error { return f.Child.Close() }

// VecProject computes one output vector per compiled expression kernel.
type VecProject struct {
	Child VectorOperator
	Exprs []expr.Expr
	Names []string

	kerns []kernelFn
	out   Batch
}

// Columns implements VectorOperator.
func (p *VecProject) Columns() []string { return p.Names }

// Open implements VectorOperator.
func (p *VecProject) Open() error {
	if len(p.Exprs) != len(p.Names) {
		return fmt.Errorf("exec: project has %d exprs, %d names", len(p.Exprs), len(p.Names))
	}
	cols := p.Child.Columns()
	p.kerns = make([]kernelFn, len(p.Exprs))
	for i, e := range p.Exprs {
		k, err := compileKernel(e, cols)
		if err != nil {
			return err
		}
		p.kerns[i] = k
	}
	p.out.Cols = make([]*Vector, len(p.Exprs))
	return p.Child.Open()
}

// NextBatch implements VectorOperator.
func (p *VecProject) NextBatch() (*Batch, error) {
	b, err := p.Child.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	sel := b.selection()
	for i, k := range p.kerns {
		v, err := k(b, sel)
		if err != nil {
			return nil, fmt.Errorf("exec: projecting %s: %w", p.Exprs[i], err)
		}
		p.out.Cols[i] = v
	}
	p.out.N = b.N
	p.out.Sel = b.Sel
	return &p.out, nil
}

// Close implements VectorOperator.
func (p *VecProject) Close() error { return p.Child.Close() }

// VecConcat emits the batches of its children in order; children must have
// identical column lists (the vectorized counterpart of Concat, used by
// hybrid partial-coverage plans).
type VecConcat struct {
	Children []VectorOperator
	idx      int
}

// Columns implements VectorOperator.
func (c *VecConcat) Columns() []string {
	if len(c.Children) == 0 {
		return nil
	}
	return c.Children[0].Columns()
}

// Open implements VectorOperator.
func (c *VecConcat) Open() error {
	if len(c.Children) == 0 {
		return fmt.Errorf("exec: empty concat")
	}
	want := c.Children[0].Columns()
	for _, ch := range c.Children[1:] {
		got := ch.Columns()
		if len(got) != len(want) {
			return fmt.Errorf("exec: concat children have %d vs %d columns", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("exec: concat column %d mismatch: %q vs %q", i, got[i], want[i])
			}
		}
	}
	c.idx = 0
	return c.Children[0].Open()
}

// NextBatch implements VectorOperator.
func (c *VecConcat) NextBatch() (*Batch, error) {
	for {
		b, err := c.Children[c.idx].NextBatch()
		if err != nil {
			return nil, err
		}
		if b != nil {
			return b, nil
		}
		if err := c.Children[c.idx].Close(); err != nil {
			return nil, err
		}
		c.idx++
		if c.idx >= len(c.Children) {
			return nil, nil
		}
		if err := c.Children[c.idx].Open(); err != nil {
			return nil, err
		}
	}
}

// Close implements VectorOperator.
func (c *VecConcat) Close() error {
	if c.idx < len(c.Children) {
		return c.Children[c.idx].Close()
	}
	return nil
}

// rowAdapter adapts a VectorOperator to the row Operator interface (the
// batch→row shim): downstream row operators and Drain keep working
// unchanged above a vectorized pipeline.
type rowAdapter struct {
	V VectorOperator

	b   *Batch
	sel []int
	pos int
}

// NewRowAdapter wraps a vectorized pipeline as a row Operator.
func NewRowAdapter(v VectorOperator) Operator { return &rowAdapter{V: v} }

// Columns implements Operator.
func (a *rowAdapter) Columns() []string { return a.V.Columns() }

// Open implements Operator.
func (a *rowAdapter) Open() error {
	a.b = nil
	a.pos = 0
	return a.V.Open()
}

// Next implements Operator.
func (a *rowAdapter) Next() (Row, error) {
	for a.b == nil || a.pos >= len(a.sel) {
		b, err := a.V.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			a.b = nil
			return nil, nil
		}
		a.b = b
		a.sel = b.selection()
		a.pos = 0
	}
	i := a.sel[a.pos]
	a.pos++
	row := make(Row, len(a.b.Cols))
	for c, v := range a.b.Cols {
		row[c] = v.Value(i)
	}
	return row, nil
}

// Close implements Operator.
func (a *rowAdapter) Close() error { return a.V.Close() }

// batchAdapter adapts a row Operator to the VectorOperator interface (the
// row→batch shim), transposing pulled rows into columnar batches so a
// row-only source can feed a vectorized pipeline.
type batchAdapter struct {
	Op  Operator
	buf []Row
}

// NewBatchAdapter wraps a row operator as a vectorized one.
func NewBatchAdapter(op Operator) VectorOperator { return &batchAdapter{Op: op} }

// Columns implements VectorOperator.
func (a *batchAdapter) Columns() []string { return a.Op.Columns() }

// Open implements VectorOperator.
func (a *batchAdapter) Open() error { return a.Op.Open() }

// NextBatch implements VectorOperator.
func (a *batchAdapter) NextBatch() (*Batch, error) {
	if a.buf == nil {
		a.buf = make([]Row, 0, BatchSize)
	}
	a.buf = a.buf[:0]
	for len(a.buf) < BatchSize {
		row, err := a.Op.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			break
		}
		a.buf = append(a.buf, row)
	}
	if len(a.buf) == 0 {
		return nil, nil
	}
	return batchFromRows(a.buf, len(a.Op.Columns())), nil
}

// Close implements VectorOperator.
func (a *batchAdapter) Close() error { return a.Op.Close() }
