package exec

import (
	"math"
	"strings"
	"testing"

	"datalaws/internal/expr"
	"datalaws/internal/sql"
	"datalaws/internal/storage"
	"datalaws/internal/table"
)

// fixture builds a catalog with a measurements table and a sources table.
func fixture(t *testing.T) *table.Catalog {
	t.Helper()
	cat := table.NewCatalog()
	ms, err := table.NewSchema(
		table.ColumnDef{Name: "source", Type: storage.TypeInt64},
		table.ColumnDef{Name: "nu", Type: storage.TypeFloat64},
		table.ColumnDef{Name: "intensity", Type: storage.TypeFloat64},
	)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cat.Create("measurements", ms)
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		src int64
		nu  float64
		i   float64
	}{
		{1, 0.12, 3.0}, {1, 0.15, 2.5}, {1, 0.16, 2.4}, {1, 0.18, 2.2},
		{2, 0.12, 5.0}, {2, 0.15, 4.2}, {2, 0.16, 4.0}, {2, 0.18, 3.6},
		{3, 0.12, 0.9}, {3, 0.15, 1.1},
	}
	for _, r := range rows {
		if err := m.AppendRow([]expr.Value{expr.Int(r.src), expr.Float(r.nu), expr.Float(r.i)}); err != nil {
			t.Fatal(err)
		}
	}
	ss, err := table.NewSchema(
		table.ColumnDef{Name: "id", Type: storage.TypeInt64},
		table.ColumnDef{Name: "name", Type: storage.TypeString},
	)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cat.Create("sources", ss)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []struct {
		id   int64
		name string
	}{{1, "pulsar"}, {2, "quasar"}, {3, "grb"}} {
		s.AppendRow([]expr.Value{expr.Int(r.id), expr.Str(r.name)})
	}
	return cat
}

func run(t *testing.T, cat *table.Catalog, q string) ([]string, []Row) {
	t.Helper()
	st, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	op, err := BuildSelect(cat, st.(*sql.SelectStmt))
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	cols := op.Columns()
	rows, err := Drain(op)
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	return cols, rows
}

func TestSelectWhere(t *testing.T) {
	cat := fixture(t)
	cols, rows := run(t, cat, "SELECT intensity FROM measurements WHERE source = 1 AND nu = 0.15")
	if len(cols) != 1 || cols[0] != "intensity" {
		t.Fatalf("cols = %v", cols)
	}
	if len(rows) != 1 || rows[0][0].F != 2.5 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSelectPaperQuery2(t *testing.T) {
	cat := fixture(t)
	_, rows := run(t, cat, "SELECT source, intensity FROM measurements WHERE nu = 0.12 AND intensity > 3.0")
	if len(rows) != 1 || rows[0][0].I != 2 || rows[0][1].F != 5.0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSelectStar(t *testing.T) {
	cat := fixture(t)
	cols, rows := run(t, cat, "SELECT * FROM measurements LIMIT 2")
	if len(cols) != 3 || cols[0] != "source" {
		t.Fatalf("cols = %v", cols)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestSelectExpression(t *testing.T) {
	cat := fixture(t)
	_, rows := run(t, cat, "SELECT intensity * 1000 AS mjy FROM measurements WHERE source = 3 AND nu = 0.12")
	if len(rows) != 1 || rows[0][0].F != 900 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestAggregatesGlobal(t *testing.T) {
	cat := fixture(t)
	cols, rows := run(t, cat, "SELECT count(*), avg(intensity), min(intensity), max(intensity), sum(intensity) FROM measurements")
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	r := rows[0]
	if r[0].I != 10 {
		t.Fatalf("count = %v", r[0])
	}
	wantSum := 3.0 + 2.5 + 2.4 + 2.2 + 5.0 + 4.2 + 4.0 + 3.6 + 0.9 + 1.1
	if math.Abs(r[4].F-wantSum) > 1e-12 {
		t.Fatalf("sum = %v, want %g", r[4], wantSum)
	}
	if math.Abs(r[1].F-wantSum/10) > 1e-12 {
		t.Fatalf("avg = %v", r[1])
	}
	if r[2].F != 0.9 || r[3].F != 5.0 {
		t.Fatalf("min/max = %v %v", r[2], r[3])
	}
	if len(cols) != 5 {
		t.Fatalf("cols = %v", cols)
	}
}

func TestGroupByHavingOrder(t *testing.T) {
	cat := fixture(t)
	_, rows := run(t, cat, `SELECT source, count(*) AS n, avg(intensity) AS mean_i
		FROM measurements GROUP BY source HAVING count(*) >= 4
		ORDER BY mean_i DESC`)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	// Source 2 has the higher mean.
	if rows[0][0].I != 2 || rows[1][0].I != 1 {
		t.Fatalf("order = %v", rows)
	}
	if rows[0][1].I != 4 {
		t.Fatalf("count = %v", rows[0][1])
	}
}

func TestGroupByExprReuse(t *testing.T) {
	cat := fixture(t)
	// Group by an expression and select the same expression.
	_, rows := run(t, cat, "SELECT source % 2, count(*) FROM measurements GROUP BY source % 2 ORDER BY source % 2")
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].I != 0 || rows[0][1].I != 4 { // source 2 has 4 rows
		t.Fatalf("rows = %v", rows)
	}
	if rows[1][0].I != 1 || rows[1][1].I != 6 { // sources 1 and 3
		t.Fatalf("rows = %v", rows)
	}
}

func TestUngroupedColumnRejected(t *testing.T) {
	cat := fixture(t)
	st, err := sql.Parse("SELECT nu, count(*) FROM measurements GROUP BY source")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildSelect(cat, st.(*sql.SelectStmt)); err == nil {
		t.Fatal("want error for ungrouped column")
	}
}

func TestHavingWithoutGroupRejected(t *testing.T) {
	cat := fixture(t)
	st, err := sql.Parse("SELECT nu FROM measurements HAVING nu > 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildSelect(cat, st.(*sql.SelectStmt)); err == nil {
		t.Fatal("want error for HAVING without grouping")
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	cat := fixture(t)
	_, rows := run(t, cat, "SELECT source, nu FROM measurements ORDER BY source ASC, nu DESC LIMIT 3")
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].I != 1 || rows[0][1].F != 0.18 {
		t.Fatalf("first = %v", rows[0])
	}
	if rows[2][1].F != 0.15 {
		t.Fatalf("third = %v", rows[2])
	}
}

func TestOrderByAlias(t *testing.T) {
	cat := fixture(t)
	_, rows := run(t, cat, "SELECT intensity AS flux FROM measurements WHERE source = 1 ORDER BY flux ASC")
	if len(rows) != 4 || rows[0][0].F != 2.2 || rows[3][0].F != 3.0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestLimitZero(t *testing.T) {
	cat := fixture(t)
	_, rows := run(t, cat, "SELECT * FROM measurements LIMIT 0")
	if len(rows) != 0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestJoin(t *testing.T) {
	cat := fixture(t)
	_, rows := run(t, cat, `SELECT name, avg(intensity) FROM measurements
		JOIN sources ON source = id GROUP BY name ORDER BY name`)
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	// alphabetical: grb, pulsar, quasar
	if rows[0][0].S != "grb" || rows[1][0].S != "pulsar" || rows[2][0].S != "quasar" {
		t.Fatalf("names = %v", rows)
	}
	if math.Abs(rows[0][1].F-1.0) > 1e-12 {
		t.Fatalf("grb avg = %v", rows[0][1])
	}
}

func TestJoinQualifiedColumns(t *testing.T) {
	cat := fixture(t)
	_, rows := run(t, cat, `SELECT measurements.intensity FROM measurements
		JOIN sources ON measurements.source = sources.id
		WHERE sources.name = 'pulsar' AND measurements.nu = 0.12`)
	if len(rows) != 1 || rows[0][0].F != 3.0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestJoinNonEquiRejected(t *testing.T) {
	cat := fixture(t)
	st, err := sql.Parse("SELECT name FROM measurements JOIN sources ON source < id")
	if err != nil {
		t.Fatal(err)
	}
	op, err := BuildSelect(cat, st.(*sql.SelectStmt))
	if err == nil {
		if _, err = Drain(op); err == nil {
			t.Fatal("want error for non-equi join")
		}
	}
}

func TestUnknownTable(t *testing.T) {
	cat := fixture(t)
	st, _ := sql.Parse("SELECT a FROM nope")
	if _, err := BuildSelect(cat, st.(*sql.SelectStmt)); err == nil {
		t.Fatal("want unknown-table error")
	}
}

func TestUnknownColumnErrorsAtExec(t *testing.T) {
	cat := fixture(t)
	st, _ := sql.Parse("SELECT nope FROM measurements")
	op, err := BuildSelect(cat, st.(*sql.SelectStmt))
	if err != nil {
		return // also acceptable at plan time
	}
	if _, err := Drain(op); err == nil {
		t.Fatal("want unknown-column error")
	}
}

func TestVarStdDev(t *testing.T) {
	cat := fixture(t)
	_, rows := run(t, cat, "SELECT var(intensity), stddev(intensity) FROM measurements WHERE source = 3")
	// Values 0.9, 1.1: var = 0.02, sd = sqrt(0.02).
	if math.Abs(rows[0][0].F-0.02) > 1e-12 {
		t.Fatalf("var = %v", rows[0][0])
	}
	if math.Abs(rows[0][1].F-math.Sqrt(0.02)) > 1e-12 {
		t.Fatalf("stddev = %v", rows[0][1])
	}
}

func TestAggregateOverEmptyInput(t *testing.T) {
	cat := fixture(t)
	_, rows := run(t, cat, "SELECT count(*), sum(intensity) FROM measurements WHERE source = 99")
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].I != 0 {
		t.Fatalf("count = %v", rows[0][0])
	}
	if !rows[0][1].IsNull() {
		t.Fatalf("sum over empty = %v, want NULL", rows[0][1])
	}
}

func TestNullsSortFirst(t *testing.T) {
	cat := table.NewCatalog()
	s, _ := table.NewSchema(table.ColumnDef{Name: "v", Type: storage.TypeFloat64})
	tb, _ := cat.Create("t", s)
	tb.AppendRow([]expr.Value{expr.Float(2)})
	tb.AppendRow([]expr.Value{expr.Null()})
	tb.AppendRow([]expr.Value{expr.Float(1)})
	_, rows := run(t, cat, "SELECT v FROM t ORDER BY v")
	if !rows[0][0].IsNull() || rows[1][0].F != 1 || rows[2][0].F != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCountColumnSkipsNulls(t *testing.T) {
	cat := table.NewCatalog()
	s, _ := table.NewSchema(table.ColumnDef{Name: "v", Type: storage.TypeFloat64})
	tb, _ := cat.Create("t", s)
	tb.AppendRow([]expr.Value{expr.Float(2)})
	tb.AppendRow([]expr.Value{expr.Null()})
	_, rows := run(t, cat, "SELECT count(v), count(*) FROM t")
	if rows[0][0].I != 1 || rows[0][1].I != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestResolveColumn(t *testing.T) {
	cols := []string{"m.source", "m.nu", "s.id", "alias"}
	if i, err := ResolveColumn(cols, "nu"); err != nil || i != 1 {
		t.Fatalf("nu: %d %v", i, err)
	}
	if i, err := ResolveColumn(cols, "m.source"); err != nil || i != 0 {
		t.Fatalf("qualified: %d %v", i, err)
	}
	if i, err := ResolveColumn(cols, "alias"); err != nil || i != 3 {
		t.Fatalf("bare: %d %v", i, err)
	}
	if _, err := ResolveColumn(cols, "missing"); err == nil {
		t.Fatal("want missing error")
	}
	dup := []string{"a.x", "b.x"}
	if _, err := ResolveColumn(dup, "x"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("want ambiguous error, got %v", err)
	}
}

func TestValuesScan(t *testing.T) {
	vs := &ValuesScan{Cols: []string{"a"}, Rows: []Row{{expr.Int(1)}, {expr.Int(2)}}}
	rows, err := Drain(vs)
	if err != nil || len(rows) != 2 {
		t.Fatalf("%v %v", rows, err)
	}
	// Reopen must rewind.
	rows, err = Drain(vs)
	if err != nil || len(rows) != 2 {
		t.Fatalf("reopen: %v %v", rows, err)
	}
}

func TestScanSnapshotsRowCount(t *testing.T) {
	cat := fixture(t)
	m, _ := cat.Get("measurements")
	scan := NewTableScan(m)
	if err := scan.Open(); err != nil {
		t.Fatal(err)
	}
	// Append after open; the scan must not see the new row.
	m.AppendRow([]expr.Value{expr.Int(9), expr.Float(0.5), expr.Float(9)})
	n := 0
	for {
		r, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if r == nil {
			break
		}
		n++
	}
	if n != 10 {
		t.Fatalf("scan saw %d rows, want 10", n)
	}
}

func TestDistinctAggDedup(t *testing.T) {
	// The same aggregate appearing twice must compute once but project twice.
	cat := fixture(t)
	_, rows := run(t, cat, "SELECT avg(intensity), avg(intensity) * 2 FROM measurements WHERE source = 3")
	if math.Abs(rows[0][0].F-1.0) > 1e-12 || math.Abs(rows[0][1].F-2.0) > 1e-12 {
		t.Fatalf("rows = %v", rows)
	}
}
