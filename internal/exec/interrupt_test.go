package exec

import (
	"context"
	"errors"
	"testing"

	"datalaws/internal/expr"
	"datalaws/internal/sql"
	"datalaws/internal/storage"
	"datalaws/internal/table"
)

func bigTable(t *testing.T, n int) *table.Catalog {
	t.Helper()
	schema, err := table.NewSchema(
		table.ColumnDef{Name: "a", Type: storage.TypeInt64},
	)
	if err != nil {
		t.Fatal(err)
	}
	tb := table.New("t", schema)
	for i := 0; i < n; i++ {
		if err := tb.AppendRow([]expr.Value{expr.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	cat := table.NewCatalog()
	if err := cat.Add(tb); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestBindContextCancelsScan(t *testing.T) {
	cat := bigTable(t, 50_000)
	for _, mode := range []Mode{ModeAuto, ModeRow} {
		st, err := sql.Parse("SELECT a FROM t")
		if err != nil {
			t.Fatal(err)
		}
		op, err := BuildSelectOverMode(cat, st.(*sql.SelectStmt), nil, mode)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		BindContext(op, ctx)
		if err := op.Open(); err != nil {
			t.Fatal(err)
		}
		// Pull a few rows, then cancel: the scan must stop within one
		// interrupt stride instead of draining the table.
		n := 0
		var scanErr error
		for {
			row, err := op.Next()
			if err != nil {
				scanErr = err
				break
			}
			if row == nil {
				break
			}
			if n++; n == 3 {
				cancel()
			}
		}
		op.Close()
		if !errors.Is(scanErr, context.Canceled) {
			t.Fatalf("mode %d: err = %v after %d rows, want context.Canceled", mode, scanErr, n)
		}
		if n > 3+2*interruptStride {
			t.Fatalf("mode %d: %d rows after cancellation", mode, n)
		}
		cancel()
	}
}

func TestBindContextPreCanceledBlocksAggregate(t *testing.T) {
	cat := bigTable(t, 10_000)
	st, err := sql.Parse("SELECT count(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	op, err := BuildSelect(cat, st.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	BindContext(op, ctx)
	// The aggregate drains its child at Open; the leaf's first interrupt
	// check must abort the drain.
	if err := op.Open(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Open err = %v, want context.Canceled", err)
	}
	op.Close()
}

// TestBindContextCancelsJoinAmplification pins the join's own interrupt
// check: a join can emit far more rows than either input produces, so a
// single input batch can amplify past every leaf-level check. Two 1k-row
// tables joined on a constant key emit 1M rows; cancellation mid-stream
// must still take effect within one interrupt stride.
func TestBindContextCancelsJoinAmplification(t *testing.T) {
	schema, err := table.NewSchema(
		table.ColumnDef{Name: "k", Type: storage.TypeInt64},
		table.ColumnDef{Name: "v", Type: storage.TypeInt64},
	)
	if err != nil {
		t.Fatal(err)
	}
	cat := table.NewCatalog()
	for _, name := range []string{"l", "r"} {
		tb := table.New(name, schema)
		for i := 0; i < 1000; i++ {
			if err := tb.AppendRow([]expr.Value{expr.Int(1), expr.Int(int64(i))}); err != nil {
				t.Fatal(err)
			}
		}
		if err := cat.Add(tb); err != nil {
			t.Fatal(err)
		}
	}
	st, err := sql.Parse("SELECT l.v, r.v FROM l JOIN r ON l.k = r.k")
	if err != nil {
		t.Fatal(err)
	}
	op, err := BuildSelect(cat, st.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	BindContext(op, ctx)
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	n := 0
	var scanErr error
	for {
		row, err := op.Next()
		if err != nil {
			scanErr = err
			break
		}
		if row == nil {
			break
		}
		if n++; n == 5 {
			cancel()
		}
	}
	if !errors.Is(scanErr, context.Canceled) {
		t.Fatalf("err = %v after %d rows, want context.Canceled", scanErr, n)
	}
	if n > 5+2*interruptStride {
		t.Fatalf("join emitted %d rows after cancellation", n)
	}
}

func TestBindContextNilIsNoOp(t *testing.T) {
	cat := bigTable(t, 100)
	st, _ := sql.Parse("SELECT a FROM t")
	op, err := BuildSelect(cat, st.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	BindContext(op, nil)
	rows, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("rows = %d", len(rows))
	}
}
