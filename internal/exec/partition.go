package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"datalaws/internal/expr"
	"datalaws/internal/table"
)

// PartitionScan reads the surviving partitions of a range-partitioned table
// in partition order, exposing parent-qualified columns. The planner prunes
// partitions whose range cannot satisfy the statement's WHERE predicate
// before the scan is built, so a selective query touches only the rows (and,
// on the approximate path, the models) of the partitions it can match.
//
// It participates in all three execution strategies: row-at-a-time (this
// operator), serial vectorized (AsVectorOperator) and morsel-driven parallel
// (SplitMorsels — the surviving partitions' row ranges form one dense morsel
// space, so the existing gather/partial-aggregate machinery applies
// unchanged).
type PartitionScan struct {
	Parted *table.PartitionedTable
	// Parts are the surviving partitions in range order; Total counts the
	// partitions before pruning.
	Parts []*table.Table
	Total int
	// Where is the statement's WHERE predicate, carried down so the
	// surviving partitions' scans can zone-map-prune their chunks with it.
	Where expr.Expr
	Interruptible

	cols  []string
	scans []*TableScan
	cur   int
}

// NewPartitionScan prunes pt's partitions with the bounds where implies for
// the partition column and builds a scan over the survivors.
func NewPartitionScan(pt *table.PartitionedTable, where expr.Expr) *PartitionScan {
	keep := pt.PruneExpr(where, pt.Name)
	parts := make([]*table.Table, len(keep))
	for i, idx := range keep {
		parts[i] = pt.Part(idx)
	}
	return &PartitionScan{Parted: pt, Parts: parts, Total: pt.NumParts(), Where: where, cols: partitionCols(pt)}
}

func partitionCols(pt *table.PartitionedTable) []string {
	names := pt.Schema().Names()
	cols := make([]string, len(names))
	for i, n := range names {
		cols[i] = pt.Name + "." + n
	}
	return cols
}

// Columns implements Operator.
func (s *PartitionScan) Columns() []string { return s.cols }

// ExplainInfo implements Explainer.
func (s *PartitionScan) ExplainInfo() string {
	rows := 0
	for _, p := range s.Parts {
		rows += p.NumRows()
	}
	return fmt.Sprintf("PartitionScan %s (%d rows) partitions: %d/%d pruned",
		s.Parted.Name, rows, s.Total-len(s.Parts), s.Total)
}

// Open implements Operator.
func (s *PartitionScan) Open() error {
	s.scans = make([]*TableScan, len(s.Parts))
	for i, p := range s.Parts {
		s.scans[i] = NewTableScanAs(p, s.Parted.Name)
		s.scans[i].Where = s.Where
		s.scans[i].SetContext(s.Context())
	}
	s.cur = 0
	if len(s.scans) > 0 {
		return s.scans[0].Open()
	}
	return nil
}

// Next implements Operator, draining each surviving partition in turn.
func (s *PartitionScan) Next() (Row, error) {
	for s.cur < len(s.scans) {
		row, err := s.scans[s.cur].Next()
		if err != nil || row != nil {
			return row, err
		}
		if err := s.scans[s.cur].Close(); err != nil {
			return nil, err
		}
		s.cur++
		if s.cur < len(s.scans) {
			if err := s.scans[s.cur].Open(); err != nil {
				return nil, err
			}
		}
	}
	return nil, nil
}

// Close implements Operator.
func (s *PartitionScan) Close() error {
	if s.cur < len(s.scans) {
		return s.scans[s.cur].Close()
	}
	return nil
}

// AsVectorOperator implements Vectorizable: the serial batch form is a
// concatenation of per-partition vectorized scans.
func (s *PartitionScan) AsVectorOperator() (VectorOperator, bool) {
	children := make([]VectorOperator, len(s.Parts))
	for i, p := range s.Parts {
		vs := NewVecTableScanAs(p, s.Parted.Name)
		vs.Where = s.Where
		children[i] = vs
	}
	return &vecPartitionScan{VecConcat: VecConcat{Children: children}, src: s}, true
}

// vecPartitionScan is the serial vectorized partition scan: a VecConcat of
// the surviving partitions' scans that keeps the pruning provenance for
// EXPLAIN. Empty survivor sets (everything pruned) emit nothing.
type vecPartitionScan struct {
	VecConcat
	src *PartitionScan
}

// Columns implements VectorOperator even when every partition was pruned
// (the embedded concat has no children to ask).
func (v *vecPartitionScan) Columns() []string { return v.src.cols }

// Open implements VectorOperator.
func (v *vecPartitionScan) Open() error {
	if len(v.Children) == 0 {
		return nil
	}
	return v.VecConcat.Open()
}

// NextBatch implements VectorOperator.
func (v *vecPartitionScan) NextBatch() (*Batch, error) {
	if len(v.Children) == 0 {
		return nil, nil
	}
	return v.VecConcat.NextBatch()
}

// Close implements VectorOperator.
func (v *vecPartitionScan) Close() error {
	if len(v.Children) == 0 {
		return nil
	}
	return v.VecConcat.Close()
}

// ExplainInfo implements Explainer.
func (v *vecPartitionScan) ExplainInfo() string {
	return "Vec" + v.src.ExplainInfo()
}

// sharedPartMorsels is the worker-shared state of a parallel partition scan:
// one chunk capture per surviving partition (each zone-map-pruned by the
// statement's WHERE) plus a claim cursor over the flattened survivor-chunk
// space. Morsel indexes are dense across partitions in range order, so
// VecGather reconstructs exactly the serial partition-order output.
type sharedPartMorsels struct {
	src *PartitionScan

	mu     sync.Mutex
	opened int
	sets   []chunkSet
	units  []partChunk // flattened (partition, survivor-chunk) pairs
	cursor atomic.Int64
}

// partChunk addresses one surviving chunk of one surviving partition.
type partChunk struct {
	part int // index into src.Parts / sets
	k    int // dense survivor position within that partition's chunkSet
}

func (s *sharedPartMorsels) open() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opened == 0 {
		s.sets = make([]chunkSet, len(s.src.Parts))
		s.units = s.units[:0]
		for i, p := range s.src.Parts {
			cs, err := captureChunks(p, s.src.Where, s.src.Parted.Name)
			if err != nil {
				return err
			}
			s.sets[i] = cs
			for k := 0; k < cs.numChunks(); k++ {
				s.units = append(s.units, partChunk{part: i, k: k})
			}
		}
		s.cursor.Store(0)
	}
	s.opened++
	return nil
}

func (s *sharedPartMorsels) close() {
	s.mu.Lock()
	if s.opened > 0 {
		s.opened--
		if s.opened == 0 {
			s.sets, s.units = nil, nil
		}
	}
	s.mu.Unlock()
}

// vecPartMorselScan is one worker's view of a parallel partition scan.
type vecPartMorselScan struct {
	shared *sharedPartMorsels
	Interruptible

	win    colWindow
	cur    int // claimed position in the flattened unit list; -1 before any claim
	src    []vecColSrc
	n, pos int
}

// Columns implements VectorOperator.
func (m *vecPartMorselScan) Columns() []string { return m.shared.src.cols }

// ExplainInfo implements Explainer.
func (m *vecPartMorselScan) ExplainInfo() string {
	return "VecMorsel" + m.shared.src.ExplainInfo()
}

// Open implements VectorOperator.
func (m *vecPartMorselScan) Open() error {
	if err := m.shared.open(); err != nil {
		return err
	}
	m.win.init(len(m.shared.src.cols))
	m.cur, m.src, m.n, m.pos = -1, nil, 0, 0
	m.ResetInterrupt()
	return nil
}

// NextMorsel implements MorselSource: one morsel is one surviving chunk of
// one surviving partition.
func (m *vecPartMorselScan) NextMorsel() (int64, bool) {
	idx := m.shared.cursor.Add(1) - 1
	if idx >= int64(len(m.shared.units)) {
		return 0, false
	}
	m.cur = int(idx)
	m.src, m.n, m.pos = nil, 0, 0
	return idx, true
}

// NumMorsels implements MorselSource.
func (m *vecPartMorselScan) NumMorsels() int64 { return int64(len(m.shared.units)) }

// NextBatch implements VectorOperator, returning nil at the end of the
// current morsel. The claimed chunk decodes through the shared cache on the
// first call (NextMorsel cannot report errors).
func (m *vecPartMorselScan) NextBatch() (*Batch, error) {
	if err := m.CheckInterruptNow(); err != nil {
		return nil, err
	}
	if m.cur < 0 {
		return nil, nil
	}
	if m.src == nil {
		u := m.shared.units[m.cur]
		src, n, err := m.shared.sets[u.part].columns(u.k)
		if err != nil {
			return nil, err
		}
		m.src, m.n, m.pos = src, n, 0
	}
	if m.pos >= m.n {
		return nil, nil
	}
	lo := m.pos
	hi := lo + BatchSize
	if hi > m.n {
		hi = m.n
	}
	m.pos = hi
	return m.win.window(m.src, lo, hi), nil
}

// Close implements VectorOperator.
func (m *vecPartMorselScan) Close() error { m.shared.close(); return nil }

// SplitMorsels implements MorselSplitter: the surviving partitions' chunks
// form one combined morsel space. Inputs with at most one chunk stay
// serial, and the pool never exceeds the plan-time chunk count.
func (s *PartitionScan) SplitMorsels(workers int) ([]MorselSource, bool) {
	chunks := 0
	for _, p := range s.Parts {
		chunks += p.NumChunks()
	}
	if chunks <= 1 {
		return nil, false
	}
	if workers > chunks {
		workers = chunks
	}
	shared := &sharedPartMorsels{src: s}
	out := make([]MorselSource, workers)
	for i := range out {
		out[i] = &vecPartMorselScan{shared: shared}
	}
	return out, true
}
