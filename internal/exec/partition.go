package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"datalaws/internal/expr"
	"datalaws/internal/table"
)

// PartitionScan reads the surviving partitions of a range-partitioned table
// in partition order, exposing parent-qualified columns. The planner prunes
// partitions whose range cannot satisfy the statement's WHERE predicate
// before the scan is built, so a selective query touches only the rows (and,
// on the approximate path, the models) of the partitions it can match.
//
// It participates in all three execution strategies: row-at-a-time (this
// operator), serial vectorized (AsVectorOperator) and morsel-driven parallel
// (SplitMorsels — the surviving partitions' row ranges form one dense morsel
// space, so the existing gather/partial-aggregate machinery applies
// unchanged).
type PartitionScan struct {
	Parted *table.PartitionedTable
	// Parts are the surviving partitions in range order; Total counts the
	// partitions before pruning.
	Parts []*table.Table
	Total int
	Interruptible

	cols  []string
	scans []*TableScan
	cur   int
}

// NewPartitionScan prunes pt's partitions with the bounds where implies for
// the partition column and builds a scan over the survivors.
func NewPartitionScan(pt *table.PartitionedTable, where expr.Expr) *PartitionScan {
	keep := pt.PruneExpr(where, pt.Name)
	parts := make([]*table.Table, len(keep))
	for i, idx := range keep {
		parts[i] = pt.Part(idx)
	}
	return &PartitionScan{Parted: pt, Parts: parts, Total: pt.NumParts(), cols: partitionCols(pt)}
}

func partitionCols(pt *table.PartitionedTable) []string {
	names := pt.Schema().Names()
	cols := make([]string, len(names))
	for i, n := range names {
		cols[i] = pt.Name + "." + n
	}
	return cols
}

// Columns implements Operator.
func (s *PartitionScan) Columns() []string { return s.cols }

// ExplainInfo implements Explainer.
func (s *PartitionScan) ExplainInfo() string {
	rows := 0
	for _, p := range s.Parts {
		rows += p.NumRows()
	}
	return fmt.Sprintf("PartitionScan %s (%d rows) partitions: %d/%d pruned",
		s.Parted.Name, rows, s.Total-len(s.Parts), s.Total)
}

// Open implements Operator.
func (s *PartitionScan) Open() error {
	s.scans = make([]*TableScan, len(s.Parts))
	for i, p := range s.Parts {
		s.scans[i] = NewTableScanAs(p, s.Parted.Name)
		s.scans[i].SetContext(s.Context())
	}
	s.cur = 0
	if len(s.scans) > 0 {
		return s.scans[0].Open()
	}
	return nil
}

// Next implements Operator, draining each surviving partition in turn.
func (s *PartitionScan) Next() (Row, error) {
	for s.cur < len(s.scans) {
		row, err := s.scans[s.cur].Next()
		if err != nil || row != nil {
			return row, err
		}
		if err := s.scans[s.cur].Close(); err != nil {
			return nil, err
		}
		s.cur++
		if s.cur < len(s.scans) {
			if err := s.scans[s.cur].Open(); err != nil {
				return nil, err
			}
		}
	}
	return nil, nil
}

// Close implements Operator.
func (s *PartitionScan) Close() error {
	if s.cur < len(s.scans) {
		return s.scans[s.cur].Close()
	}
	return nil
}

// AsVectorOperator implements Vectorizable: the serial batch form is a
// concatenation of per-partition vectorized scans.
func (s *PartitionScan) AsVectorOperator() (VectorOperator, bool) {
	children := make([]VectorOperator, len(s.Parts))
	for i, p := range s.Parts {
		children[i] = NewVecTableScanAs(p, s.Parted.Name)
	}
	return &vecPartitionScan{VecConcat: VecConcat{Children: children}, src: s}, true
}

// vecPartitionScan is the serial vectorized partition scan: a VecConcat of
// the surviving partitions' scans that keeps the pruning provenance for
// EXPLAIN. Empty survivor sets (everything pruned) emit nothing.
type vecPartitionScan struct {
	VecConcat
	src *PartitionScan
}

// Columns implements VectorOperator even when every partition was pruned
// (the embedded concat has no children to ask).
func (v *vecPartitionScan) Columns() []string { return v.src.cols }

// Open implements VectorOperator.
func (v *vecPartitionScan) Open() error {
	if len(v.Children) == 0 {
		return nil
	}
	return v.VecConcat.Open()
}

// NextBatch implements VectorOperator.
func (v *vecPartitionScan) NextBatch() (*Batch, error) {
	if len(v.Children) == 0 {
		return nil, nil
	}
	return v.VecConcat.NextBatch()
}

// Close implements VectorOperator.
func (v *vecPartitionScan) Close() error {
	if len(v.Children) == 0 {
		return nil
	}
	return v.VecConcat.Close()
}

// ExplainInfo implements Explainer.
func (v *vecPartitionScan) ExplainInfo() string {
	return "Vec" + v.src.ExplainInfo()
}

// sharedPartMorsels is the worker-shared state of a parallel partition scan:
// one immutable snapshot per surviving partition plus a claim cursor over
// the combined morsel space. Morsel indexes are dense across partitions in
// range order, so VecGather reconstructs exactly the serial partition-order
// output.
type sharedPartMorsels struct {
	src *PartitionScan

	mu     sync.Mutex
	opened int
	snaps  [][]vecColSrc
	ns     []int
	starts []int64 // first global morsel index of each partition
	total  int64
	cursor atomic.Int64
}

func (s *sharedPartMorsels) open() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opened == 0 {
		nc := len(s.src.cols)
		s.snaps = make([][]vecColSrc, len(s.src.Parts))
		s.ns = make([]int, len(s.src.Parts))
		s.starts = make([]int64, len(s.src.Parts))
		var total int64
		for i, p := range s.src.Parts {
			src, n, err := snapshotVecCols(p, nc)
			if err != nil {
				return err
			}
			s.snaps[i], s.ns[i] = src, n
			s.starts[i] = total
			total += int64((n + morselRows - 1) / morselRows)
		}
		s.total = total
		s.cursor.Store(0)
	}
	s.opened++
	return nil
}

func (s *sharedPartMorsels) close() {
	s.mu.Lock()
	if s.opened > 0 {
		s.opened--
		if s.opened == 0 {
			s.snaps = nil
		}
	}
	s.mu.Unlock()
}

// vecPartMorselScan is one worker's view of a parallel partition scan.
type vecPartMorselScan struct {
	shared *sharedPartMorsels
	Interruptible

	win         colWindow
	part        int
	lo, hi, pos int
}

// Columns implements VectorOperator.
func (m *vecPartMorselScan) Columns() []string { return m.shared.src.cols }

// ExplainInfo implements Explainer.
func (m *vecPartMorselScan) ExplainInfo() string {
	return "VecMorsel" + m.shared.src.ExplainInfo()
}

// Open implements VectorOperator.
func (m *vecPartMorselScan) Open() error {
	if err := m.shared.open(); err != nil {
		return err
	}
	m.win.init(len(m.shared.src.cols))
	m.part, m.lo, m.hi, m.pos = 0, 0, 0, 0
	m.ResetInterrupt()
	return nil
}

// NextMorsel implements MorselSource: it claims the next global morsel and
// resolves it to a (partition, row range) pair.
func (m *vecPartMorselScan) NextMorsel() (int64, bool) {
	idx := m.shared.cursor.Add(1) - 1
	if idx >= m.shared.total {
		return 0, false
	}
	// Resolve the partition owning this dense index: starts is ascending, so
	// find the last start ≤ idx.
	p := len(m.shared.starts) - 1
	for p > 0 && m.shared.starts[p] > idx {
		p--
	}
	local := int(idx - m.shared.starts[p])
	m.part = p
	m.lo = local * morselRows
	m.hi = m.lo + morselRows
	if m.hi > m.shared.ns[p] {
		m.hi = m.shared.ns[p]
	}
	m.pos = m.lo
	return idx, true
}

// NumMorsels implements MorselSource.
func (m *vecPartMorselScan) NumMorsels() int64 { return m.shared.total }

// NextBatch implements VectorOperator, returning nil at the end of the
// current morsel.
func (m *vecPartMorselScan) NextBatch() (*Batch, error) {
	if err := m.CheckInterruptNow(); err != nil {
		return nil, err
	}
	if m.pos >= m.hi {
		return nil, nil
	}
	lo := m.pos
	hi := lo + BatchSize
	if hi > m.hi {
		hi = m.hi
	}
	m.pos = hi
	return m.win.window(m.shared.snaps[m.part], lo, hi), nil
}

// Close implements VectorOperator.
func (m *vecPartMorselScan) Close() error { m.shared.close(); return nil }

// SplitMorsels implements MorselSplitter: the surviving partitions' row
// ranges form one combined morsel space. Inputs small enough for a single
// morsel stay serial, and the pool never exceeds the morsel count.
func (s *PartitionScan) SplitMorsels(workers int) ([]MorselSource, bool) {
	rows := 0
	for _, p := range s.Parts {
		rows += p.NumRows()
	}
	if rows <= morselRows {
		return nil, false
	}
	if m := (rows + morselRows - 1) / morselRows; workers > m {
		workers = m
	}
	shared := &sharedPartMorsels{src: s}
	out := make([]MorselSource, workers)
	for i := range out {
		out[i] = &vecPartMorselScan{shared: shared}
	}
	return out, true
}
