package exec

import (
	"fmt"

	"datalaws/internal/table"
)

// TableScan reads every row of a base table, snapshotting the row count at
// Open so concurrent appends do not tear the scan. It checks the bound
// statement context once per stride of rows.
type TableScan struct {
	Table *table.Table
	Interruptible

	cols []string
	n    int
	pos  int
}

// NewTableScan builds a scan over t with qualified output columns.
func NewTableScan(t *table.Table) *TableScan {
	return &TableScan{Table: t, cols: qualifiedCols(t)}
}

// NewTableScanAs is NewTableScan with the qualifier overridden: partition
// child tables scan under their parent's name, so queries reference
// "parent.column" regardless of which partitions survive pruning.
func NewTableScanAs(t *table.Table, alias string) *TableScan {
	return &TableScan{Table: t, cols: qualifiedColsAs(t, alias)}
}

// qualifiedCols names a table's columns as "table.column", the form every
// scan variant (row, vectorized, morsel) exposes.
func qualifiedCols(t *table.Table) []string {
	return qualifiedColsAs(t, t.Name)
}

// qualifiedColsAs names a table's columns as "alias.column".
func qualifiedColsAs(t *table.Table, alias string) []string {
	names := t.Schema().Names()
	cols := make([]string, len(names))
	for i, n := range names {
		cols[i] = alias + "." + n
	}
	return cols
}

// Columns implements Operator.
func (s *TableScan) Columns() []string { return s.cols }

// Open implements Operator.
func (s *TableScan) Open() error {
	if s.Table == nil {
		return fmt.Errorf("exec: scan over nil table")
	}
	s.n = s.Table.NumRows()
	s.pos = 0
	s.ResetInterrupt()
	return nil
}

// Next implements Operator.
func (s *TableScan) Next() (Row, error) {
	if err := s.CheckInterrupt(); err != nil {
		return nil, err
	}
	if s.pos >= s.n {
		return nil, nil
	}
	row := s.Table.Row(s.pos)
	s.pos++
	return row, nil
}

// Close implements Operator.
func (s *TableScan) Close() error { return nil }

// ValuesScan replays pre-materialized rows; used for model scans' grids and
// tests.
type ValuesScan struct {
	Cols []string
	Rows []Row
	Interruptible
	pos int
}

// Columns implements Operator.
func (s *ValuesScan) Columns() []string { return s.Cols }

// Open implements Operator.
func (s *ValuesScan) Open() error { s.pos = 0; s.ResetInterrupt(); return nil }

// Next implements Operator.
func (s *ValuesScan) Next() (Row, error) {
	if err := s.CheckInterrupt(); err != nil {
		return nil, err
	}
	if s.pos >= len(s.Rows) {
		return nil, nil
	}
	r := s.Rows[s.pos]
	s.pos++
	return r, nil
}

// Close implements Operator.
func (s *ValuesScan) Close() error { return nil }
