package exec

import (
	"datalaws/internal/expr"
	"datalaws/internal/storage"
	"datalaws/internal/table"
)

// TableScan reads a base table chunk by chunk, capturing one consistent
// ChunkView at Open so concurrent appends do not tear the scan. Where is the
// statement's WHERE predicate, used only for zone-map pruning — sealed
// chunks whose per-column min/max provably cannot satisfy it are skipped
// without being decoded; exact filtering still happens in the Filter
// operator above.
type TableScan struct {
	Table *table.Table
	// Where prunes sealed chunks by zone map; nil scans everything.
	Where expr.Expr
	Interruptible

	cols  []string
	alias string

	cs     chunkSet
	ki     int
	cur    []storage.Column
	n, pos int
}

// NewTableScan builds a scan over t with qualified output columns.
func NewTableScan(t *table.Table) *TableScan {
	return &TableScan{Table: t, cols: qualifiedCols(t), alias: t.Name}
}

// NewTableScanAs is NewTableScan with the qualifier overridden: partition
// child tables scan under their parent's name, so queries reference
// "parent.column" regardless of which partitions survive pruning.
func NewTableScanAs(t *table.Table, alias string) *TableScan {
	return &TableScan{Table: t, cols: qualifiedColsAs(t, alias), alias: alias}
}

// qualifiedCols names a table's columns as "table.column", the form every
// scan variant (row, vectorized, morsel) exposes.
func qualifiedCols(t *table.Table) []string {
	return qualifiedColsAs(t, t.Name)
}

// qualifiedColsAs names a table's columns as "alias.column".
func qualifiedColsAs(t *table.Table, alias string) []string {
	names := t.Schema().Names()
	cols := make([]string, len(names))
	for i, n := range names {
		cols[i] = alias + "." + n
	}
	return cols
}

// Columns implements Operator.
func (s *TableScan) Columns() []string { return s.cols }

// Open implements Operator.
func (s *TableScan) Open() error {
	cs, err := captureChunks(s.Table, s.Where, s.alias)
	if err != nil {
		return err
	}
	s.cs = cs
	s.ki = 0
	s.cur, s.n, s.pos = nil, 0, 0
	s.ResetInterrupt()
	return nil
}

// Next implements Operator, advancing to the next surviving chunk when the
// current one drains. Chunks decode through the shared cache on first
// touch, so a row loop over a cold table pays one decode per chunk.
func (s *TableScan) Next() (Row, error) {
	if err := s.CheckInterrupt(); err != nil {
		return nil, err
	}
	for {
		if s.cur == nil {
			if s.ki >= s.cs.numChunks() {
				return nil, nil
			}
			cols, n, err := s.cs.rawColumns(s.ki)
			if err != nil {
				return nil, err
			}
			s.cur, s.n, s.pos = cols, n, 0
		}
		if s.pos >= s.n {
			s.cur = nil
			s.ki++
			continue
		}
		row := make(Row, len(s.cur))
		for c, col := range s.cur {
			row[c] = col.Value(s.pos)
		}
		s.pos++
		return row, nil
	}
}

// Close implements Operator.
func (s *TableScan) Close() error {
	s.cur, s.cs = nil, chunkSet{}
	return nil
}

// ValuesScan replays pre-materialized rows; used for model scans' grids and
// tests.
type ValuesScan struct {
	Cols []string
	Rows []Row
	Interruptible
	pos int
}

// Columns implements Operator.
func (s *ValuesScan) Columns() []string { return s.Cols }

// Open implements Operator.
func (s *ValuesScan) Open() error { s.pos = 0; s.ResetInterrupt(); return nil }

// Next implements Operator.
func (s *ValuesScan) Next() (Row, error) {
	if err := s.CheckInterrupt(); err != nil {
		return nil, err
	}
	if s.pos >= len(s.Rows) {
		return nil, nil
	}
	r := s.Rows[s.pos]
	s.pos++
	return r, nil
}

// Close implements Operator.
func (s *ValuesScan) Close() error { return nil }
