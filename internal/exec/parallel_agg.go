package exec

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"datalaws/internal/expr"
)

// VecParallelHashAggregate executes hash aggregation in two phases: every
// worker folds its morsels into a private partial-aggregate table (no locks
// on the data path), then a single merge recombines the partial states —
// COUNT/SUM/AVG additively, MIN/MAX by comparison, VAR/STDDEV through the
// Welford combination — preserving SQL NULL semantics (aggregates skip
// NULLs; empty inputs yield NULL, except COUNT). Groups are emitted in the
// order the serial plan would first have seen them, tracked as the minimum
// (morsel, row-within-morsel) position across workers, so output order is
// deterministic and matches serial execution. Output columns are
// "$grp0…$agg0…", like VecHashAggregate.
type VecParallelHashAggregate struct {
	pipes      []workerPipe
	GroupExprs []expr.Expr
	Aggs       []AggSpec

	cols   []string
	groups []*aggGroup
	pos    int
	failed atomic.Bool // set by the first failing worker; siblings stop claiming
	ctx    context.Context
}

// SetContext binds the statement context so workers stop claiming morsels
// when the statement is canceled; BindContext wires it through the plan.
func (h *VecParallelHashAggregate) SetContext(ctx context.Context) { h.ctx = ctx }

// Columns implements VectorOperator.
func (h *VecParallelHashAggregate) Columns() []string {
	if h.cols == nil {
		h.cols = aggOutputCols(len(h.GroupExprs), len(h.Aggs))
	}
	return h.cols
}

// Workers reports the pool size; used by EXPLAIN.
func (h *VecParallelHashAggregate) Workers() int { return len(h.pipes) }

// partialErr is a worker failure pinned to its input position, so the merge
// can report the error the serial plan would have hit first.
type partialErr struct {
	err         error
	morsel, row int64
}

func (e *partialErr) before(o *partialErr) bool {
	if e.morsel != o.morsel {
		return e.morsel < o.morsel
	}
	return e.row < o.row
}

// Open implements VectorOperator: it runs the full two-phase aggregation —
// parallel partial fold, then merge — so NextBatch only emits results.
func (h *VecParallelHashAggregate) Open() error {
	for i := range h.pipes {
		if err := h.pipes[i].pipe.Open(); err != nil {
			for j := 0; j < i; j++ {
				h.pipes[j].pipe.Close()
			}
			return err
		}
	}
	h.groups = nil
	h.pos = 0
	h.failed.Store(false)

	partials := make([]*partialAgg, len(h.pipes))
	fails := make([]partialErr, len(h.pipes))
	var wg sync.WaitGroup
	for w := range h.pipes {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			partials[w], fails[w] = h.runWorker(h.pipes[w])
		}(w)
	}
	wg.Wait()
	var fail *partialErr
	for w := range fails {
		e := &fails[w]
		if e.err == nil {
			continue
		}
		if fail == nil || e.before(fail) {
			fail = e
		}
	}
	if fail != nil {
		return fail.err
	}
	return h.merge(partials)
}

// runWorker drains one worker pipeline morsel by morsel into a private
// partial-aggregate table.
func (h *VecParallelHashAggregate) runWorker(p workerPipe) (*partialAgg, partialErr) {
	pa, err := newPartialAgg(h.GroupExprs, h.Aggs, p.pipe.Columns())
	if err != nil {
		h.failed.Store(true)
		return nil, partialErr{err: err}
	}
	for {
		// A sibling already failed: the whole Open will error, so stop
		// claiming instead of draining the rest of the input for nothing.
		if h.failed.Load() {
			return pa, partialErr{}
		}
		// A canceled statement ends the claim loop before the next morsel's
		// pipeline runs; the error surfaces through Open like any worker
		// failure, so siblings stop too.
		if h.ctx != nil {
			if err := h.ctx.Err(); err != nil {
				h.failed.Store(true)
				return pa, partialErr{err: err}
			}
		}
		idx, ok := p.src.NextMorsel()
		if !ok {
			return pa, partialErr{}
		}
		var rows int64
		for {
			b, err := p.pipe.NextBatch()
			if err != nil {
				h.failed.Store(true)
				return pa, partialErr{err: err, morsel: idx, row: rows}
			}
			if b == nil {
				break
			}
			sel := b.selection()
			if err := pa.fold(b, sel, idx, rows); err != nil {
				h.failed.Store(true)
				return pa, partialErr{err: err, morsel: idx, row: rows}
			}
			rows += int64(len(sel))
		}
	}
}

// merge recombines the workers' partial tables into the final group list.
func (h *VecParallelHashAggregate) merge(partials []*partialAgg) error {
	index := make(map[string]*partialGroup)
	var merged []*partialGroup
	for _, pa := range partials {
		if pa == nil {
			continue
		}
		for _, pg := range pa.order {
			ex, ok := index[pg.keyStr]
			if !ok {
				index[pg.keyStr] = pg
				merged = append(merged, pg)
				continue
			}
			for a := range h.Aggs {
				if err := ex.states[a].merge(&pg.states[a], h.Aggs[a].Kind); err != nil {
					return fmt.Errorf("exec: aggregate: %w", err)
				}
			}
			if pg.morsel < ex.morsel || (pg.morsel == ex.morsel && pg.row < ex.row) {
				ex.morsel, ex.row = pg.morsel, pg.row
			}
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].morsel != merged[j].morsel {
			return merged[i].morsel < merged[j].morsel
		}
		return merged[i].row < merged[j].row
	})
	h.groups = make([]*aggGroup, len(merged))
	for i, pg := range merged {
		h.groups[i] = &pg.aggGroup
	}
	// A global aggregate over zero rows still yields one output row.
	if len(h.groups) == 0 && len(h.GroupExprs) == 0 {
		h.groups = append(h.groups, &aggGroup{states: make([]aggState, len(h.Aggs))})
	}
	return nil
}

// NextBatch implements VectorOperator, emitting the merged groups.
func (h *VecParallelHashAggregate) NextBatch() (*Batch, error) {
	if h.pos >= len(h.groups) {
		return nil, nil
	}
	lo := h.pos
	hi := lo + BatchSize
	if hi > len(h.groups) {
		hi = len(h.groups)
	}
	h.pos = hi
	return emitGroupBatch(h.groups, lo, hi, len(h.GroupExprs), h.Aggs), nil
}

// Close implements VectorOperator.
func (h *VecParallelHashAggregate) Close() error {
	h.groups = nil
	var err error
	for i := range h.pipes {
		if cerr := h.pipes[i].pipe.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// partialGroup is one group's partial state plus the earliest input
// position any of its rows was seen at (for deterministic output order).
type partialGroup struct {
	aggGroup
	keyStr      string
	morsel, row int64
}

// partialAgg is one worker's aggregation state: compiled kernels plus the
// group table it folds morsels into.
type partialAgg struct {
	aggs       []AggSpec
	groupKerns []kernelFn
	argKerns   []kernelFn
	index      map[string]*partialGroup
	order      []*partialGroup
	keyVecs    []*Vector
	argVecs    []*Vector
	kb         []byte
}

func newPartialAgg(groupExprs []expr.Expr, aggs []AggSpec, cols []string) (*partialAgg, error) {
	pa := &partialAgg{
		aggs:       aggs,
		groupKerns: make([]kernelFn, len(groupExprs)),
		argKerns:   make([]kernelFn, len(aggs)),
		index:      map[string]*partialGroup{},
		keyVecs:    make([]*Vector, len(groupExprs)),
		argVecs:    make([]*Vector, len(aggs)),
	}
	for i, g := range groupExprs {
		k, err := compileKernel(g, cols)
		if err != nil {
			return nil, fmt.Errorf("exec: GROUP BY: %w", err)
		}
		pa.groupKerns[i] = k
	}
	for i, spec := range aggs {
		if spec.Arg == nil {
			continue // COUNT(*) needs no argument kernel
		}
		k, err := compileKernel(spec.Arg, cols)
		if err != nil {
			return nil, fmt.Errorf("exec: aggregate arg: %w", err)
		}
		pa.argKerns[i] = k
	}
	return pa, nil
}

// fold accumulates one batch. morsel and rowBase locate the batch's first
// selected row in the serial input order.
func (pa *partialAgg) fold(b *Batch, sel []int, morsel, rowBase int64) error {
	for i, k := range pa.groupKerns {
		v, err := k(b, sel)
		if err != nil {
			return fmt.Errorf("exec: GROUP BY: %w", err)
		}
		pa.keyVecs[i] = v
	}
	for i, k := range pa.argKerns {
		if k == nil {
			continue
		}
		v, err := k(b, sel)
		if err != nil {
			return fmt.Errorf("exec: aggregate arg: %w", err)
		}
		pa.argVecs[i] = v
	}
	if len(pa.groupKerns) == 0 {
		// Global aggregation: one group, bulk fold.
		if len(pa.order) == 0 {
			grp := &partialGroup{morsel: morsel, row: rowBase}
			grp.states = make([]aggState, len(pa.aggs))
			pa.order = append(pa.order, grp)
		}
		return foldAggArgs(&pa.order[0].aggGroup, pa.aggs, pa.argVecs, sel)
	}
	kb := pa.kb
	for pos, i := range sel {
		kb = kb[:0]
		for _, kv := range pa.keyVecs {
			kb = appendKeyEntry(kb, kv, i)
			kb = append(kb, 0)
		}
		grp, ok := pa.index[string(kb)]
		if !ok {
			key := make([]expr.Value, len(pa.keyVecs))
			for j, kv := range pa.keyVecs {
				key[j] = kv.Value(i)
			}
			grp = &partialGroup{keyStr: string(kb), morsel: morsel, row: rowBase + int64(pos)}
			grp.key = key
			grp.states = make([]aggState, len(pa.aggs))
			pa.index[grp.keyStr] = grp
			pa.order = append(pa.order, grp)
		}
		for a, spec := range pa.aggs {
			var v expr.Value
			if spec.Arg == nil {
				v = expr.Int(1)
			} else {
				v = pa.argVecs[a].Value(i)
			}
			if err := grp.states[a].update(spec.Kind, v); err != nil {
				return fmt.Errorf("exec: aggregate: %w", err)
			}
		}
	}
	pa.kb = kb
	return nil
}
