package exec

import (
	"strings"
	"testing"

	"datalaws/internal/expr"
)

func TestConcatOrdersChildren(t *testing.T) {
	a := &ValuesScan{Cols: []string{"v"}, Rows: []Row{{expr.Int(1)}, {expr.Int(2)}}}
	b := &ValuesScan{Cols: []string{"v"}, Rows: []Row{{expr.Int(3)}}}
	c := &Concat{Children: []Operator{a, b}}
	rows, err := Drain(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0].I != 1 || rows[2][0].I != 3 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestConcatEmptyChildren(t *testing.T) {
	empty := &ValuesScan{Cols: []string{"v"}}
	full := &ValuesScan{Cols: []string{"v"}, Rows: []Row{{expr.Int(7)}}}
	rows, err := Drain(&Concat{Children: []Operator{empty, full, empty}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].I != 7 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestConcatColumnMismatch(t *testing.T) {
	a := &ValuesScan{Cols: []string{"v"}}
	b := &ValuesScan{Cols: []string{"w"}}
	if err := (&Concat{Children: []Operator{a, b}}).Open(); err == nil {
		t.Fatal("want column mismatch error")
	}
	c := &ValuesScan{Cols: []string{"v", "w"}}
	if err := (&Concat{Children: []Operator{a, c}}).Open(); err == nil {
		t.Fatal("want arity mismatch error")
	}
	if err := (&Concat{}).Open(); err == nil {
		t.Fatal("want empty concat error")
	}
}

func TestPlanStringRendersAllOperators(t *testing.T) {
	scan := &ValuesScan{Cols: []string{"a", "b"}, Rows: nil}
	pred, _ := parseTestExpr(t, "a > 1")
	plan := &Limit{N: 5, Child: &Sort{
		Keys: []SortKey{{Col: 0}},
		Child: &Project{
			Names: []string{"a"},
			Exprs: []expr.Expr{&expr.Ident{Name: "a"}},
			Child: &Filter{Pred: pred, Child: scan},
		},
	}}
	out := PlanString(plan)
	for _, want := range []string{"Limit 5", "Sort", "Project a", "Filter", "ValuesScan"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plan missing %q:\n%s", want, out)
		}
	}
	// Indentation deepens down the tree.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	for i := 1; i < len(lines); i++ {
		if !strings.HasPrefix(lines[i], strings.Repeat("  ", i)) {
			t.Fatalf("line %d not indented:\n%s", i, out)
		}
	}
}

func parseTestExpr(t *testing.T, src string) (expr.Expr, error) {
	t.Helper()
	e, err := expr.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return e, nil
}
