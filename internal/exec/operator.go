// Package exec implements the volcano-style execution engine: table scans,
// filters, projections, hash aggregation, hash joins, sorting and limits,
// plus the planner that lowers a parsed SELECT onto those operators —
// vectorized into columnar batches where possible, and, with a parallelism
// budget (Options), onto morsel-driven multicore pipelines (see
// parallel.go). The model-based "zero-IO" scan of the paper plugs into the
// same Operator interface (see internal/aqp), so approximate and exact
// plans compose with the same machinery.
package exec

import (
	"errors"
	"fmt"
	"strings"

	"datalaws/internal/expr"
)

// ErrAmbiguous marks ambiguous-column resolution failures so operators can
// distinguish them from merely unknown names (which may be legitimate
// eval-time errors) and surface them at Open time.
var ErrAmbiguous = errors.New("ambiguous column")

// Row is one tuple of boxed values.
type Row []expr.Value

// Operator is a pull-based iterator over rows.
type Operator interface {
	// Columns returns the output column names. Names from base tables are
	// qualified as "table.column"; derived columns are bare.
	Columns() []string
	// Open prepares the operator; it must be called before Next.
	Open() error
	// Next returns the next row, or (nil, nil) at end of input.
	Next() (Row, error)
	// Close releases resources. It is safe to call after exhaustion.
	Close() error
}

// ResolveColumn finds the index of an identifier in a qualified column list.
// A qualified name ("t.x") must match exactly; a bare name matches a unique
// suffix. Ambiguous or missing names return an error.
func ResolveColumn(cols []string, name string) (int, error) {
	// Exact match first (covers both qualified idents and derived columns).
	for i, c := range cols {
		if c == name {
			return i, nil
		}
	}
	if !strings.Contains(name, ".") {
		found := -1
		for i, c := range cols {
			if idx := strings.LastIndexByte(c, '.'); idx >= 0 && c[idx+1:] == name {
				if found >= 0 {
					return 0, fmt.Errorf("exec: %w %q (matches %q and %q)", ErrAmbiguous, name, cols[found], c)
				}
				found = i
			}
		}
		if found >= 0 {
			return found, nil
		}
	}
	return 0, fmt.Errorf("exec: unknown column %q (have %v)", name, cols)
}

// rowEnv adapts a row plus its column names to the expression evaluator.
type rowEnv struct {
	cols []string
	row  Row
	// cache maps identifier names to resolved indexes across rows.
	cache map[string]int
}

func newRowEnv(cols []string) *rowEnv {
	return &rowEnv{cols: cols, cache: map[string]int{}}
}

// resolve pre-resolves every identifier the given expressions reference, so
// hot loops never call ResolveColumn and ambiguous columns error at Open
// time instead of surfacing as "unknown identifier" on the first row.
// Unknown names stay lazily reported (some, like aggregate placeholders,
// are legal eval-time errors).
func (e *rowEnv) resolve(exprs ...expr.Expr) error {
	for _, ex := range exprs {
		if ex == nil {
			continue
		}
		for _, name := range expr.Vars(ex) {
			if _, ok := e.cache[name]; ok {
				continue
			}
			i, err := ResolveColumn(e.cols, name)
			if err != nil {
				if errors.Is(err, ErrAmbiguous) {
					return err
				}
				e.cache[name] = -1
				continue
			}
			e.cache[name] = i
		}
	}
	return nil
}

func (e *rowEnv) bind(row Row) { e.row = row }

// Lookup implements expr.Env.
func (e *rowEnv) Lookup(name string) (expr.Value, bool) {
	if i, ok := e.cache[name]; ok {
		if i < 0 {
			return expr.Value{}, false
		}
		return e.row[i], true
	}
	i, err := ResolveColumn(e.cols, name)
	if err != nil {
		e.cache[name] = -1
		return expr.Value{}, false
	}
	e.cache[name] = i
	return e.row[i], true
}

// EvalPredicate evaluates a boolean expression over a row with SQL
// three-valued logic: NULL counts as not-matching.
func EvalPredicate(pred expr.Expr, env *rowEnv) (bool, error) {
	v, err := expr.Eval(pred, env)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	return v.AsBool()
}

// Drain runs an operator to completion and returns all rows.
func Drain(op Operator) ([]Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []Row
	for {
		r, err := op.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			return out, nil
		}
		out = append(out, r)
	}
}
