package exec

import (
	"strings"
	"testing"

	"datalaws/internal/expr"
	"datalaws/internal/sql"
	"datalaws/internal/storage"
	"datalaws/internal/table"
)

// diffFixture builds a catalog exercising every column type, NULLs in every
// nullable position, and enough rows to span selection-vector edge cases.
func diffFixture(t *testing.T) *table.Catalog {
	t.Helper()
	cat := table.NewCatalog()
	ts, err := table.NewSchema(
		table.ColumnDef{Name: "id", Type: storage.TypeInt64},
		table.ColumnDef{Name: "grp", Type: storage.TypeInt64},
		table.ColumnDef{Name: "x", Type: storage.TypeFloat64},
		table.ColumnDef{Name: "y", Type: storage.TypeFloat64},
		table.ColumnDef{Name: "label", Type: storage.TypeString},
		table.ColumnDef{Name: "flag", Type: storage.TypeBool},
	)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := cat.Create("t", ts)
	if err != nil {
		t.Fatal(err)
	}
	null := expr.Null()
	rows := [][]expr.Value{
		{expr.Int(1), expr.Int(1), expr.Float(1.5), expr.Float(10), expr.Str("a"), expr.Bool(true)},
		{expr.Int(2), expr.Int(1), expr.Float(-2.5), null, expr.Str("b"), expr.Bool(false)},
		{expr.Int(3), expr.Int(2), null, expr.Float(30), expr.Str("a"), null},
		{expr.Int(4), expr.Int(2), expr.Float(4.0), expr.Float(-40), null, expr.Bool(true)},
		{expr.Int(5), null, expr.Float(0), expr.Float(50), expr.Str("c"), expr.Bool(false)},
		{expr.Int(6), expr.Int(3), expr.Float(6.25), null, expr.Str("b"), expr.Bool(true)},
		{expr.Int(7), expr.Int(3), null, null, expr.Str("NULL"), null},
		{expr.Int(8), null, expr.Float(8), expr.Float(80), null, expr.Bool(false)},
	}
	for _, r := range rows {
		if err := tb.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	ss, err := table.NewSchema(
		table.ColumnDef{Name: "grp", Type: storage.TypeInt64},
		table.ColumnDef{Name: "name", Type: storage.TypeString},
	)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cat.Create("g", ss)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][]expr.Value{
		{expr.Int(1), expr.Str("one")},
		{expr.Int(2), expr.Str("two")},
		{expr.Int(3), expr.Str("three")},
	} {
		if err := s.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

// differentialQueries covers filters, GROUP BY aggregates, expressions, and
// three-valued-logic edge cases. Every query must produce identical results
// (values and kinds) through the row and batch pipelines.
var differentialQueries = []string{
	"SELECT * FROM t",
	"SELECT id, x FROM t WHERE x > 0",
	"SELECT id FROM t WHERE x > 0 AND y > 0",
	"SELECT id FROM t WHERE x > 0 OR y > 0",
	// NULL on one side of AND/OR exercises all nine 3VL combinations.
	"SELECT id FROM t WHERE x > 0 AND y IS NULL",
	"SELECT id FROM t WHERE x IS NULL OR y < 0",
	"SELECT id FROM t WHERE NOT (x > 0)",
	"SELECT id FROM t WHERE NOT (x > 0 OR y > 0)",
	"SELECT id FROM t WHERE x IS NOT NULL AND y IS NOT NULL",
	// NULL literals propagate through comparisons and arithmetic.
	"SELECT id FROM t WHERE x > NULL OR id < 3",
	"SELECT id, x + NULL FROM t",
	// Short-circuit: the guarded division never sees x = 0.
	"SELECT id FROM t WHERE x <> 0 AND 10.0 / x > 2",
	// Mixed int/float comparison and arithmetic.
	"SELECT id FROM t WHERE id < x",
	"SELECT id, id + x, id * 2, id - 1, id % 3, x / 2.0, -x, x % 2.5 FROM t",
	// Integer arithmetic stays integral.
	"SELECT id + id, id * id FROM t",
	// Strings: equality, ordering, and the 'NULL' literal-string pitfall.
	"SELECT id FROM t WHERE label = 'a'",
	"SELECT id FROM t WHERE label > 'a'",
	"SELECT id, label FROM t WHERE label = 'NULL'",
	"SELECT id FROM t WHERE label IS NULL",
	// Booleans.
	"SELECT id FROM t WHERE flag",
	"SELECT id FROM t WHERE flag = TRUE",
	"SELECT id FROM t WHERE NOT flag",
	"SELECT id, flag IS NULL FROM t",
	// Built-in functions over nullable inputs.
	"SELECT id, abs(x), sqrt(y), pow(x, 2), min(x, y), round(x) FROM t",
	// Global aggregates: NULL skipping, empty input, COUNT(*) vs COUNT(col).
	"SELECT count(*), count(x), count(y), count(label) FROM t",
	"SELECT sum(x), avg(x), min(x), max(x), var(x), stddev(x) FROM t",
	"SELECT count(*), sum(x) FROM t WHERE x > 100",
	"SELECT min(label), max(label) FROM t",
	// Grouped aggregates, including NULL group keys and grouped expressions.
	"SELECT grp, count(*), sum(x) FROM t GROUP BY grp",
	"SELECT grp, avg(y) FROM t GROUP BY grp ORDER BY grp",
	"SELECT label, count(*) FROM t GROUP BY label ORDER BY label",
	"SELECT grp, count(*) FROM t GROUP BY grp HAVING count(*) > 1",
	"SELECT id % 2, count(*), max(y) FROM t GROUP BY id % 2 ORDER BY id % 2",
	// Projection over aggregates.
	"SELECT grp, sum(x) / count(x), count(*) + 1 FROM t GROUP BY grp ORDER BY grp",
	// ORDER BY, aliases, LIMIT.
	"SELECT id, x AS ex FROM t ORDER BY ex DESC LIMIT 3",
	"SELECT id FROM t ORDER BY y, id LIMIT 5",
	// Join: the join itself stays row-mode, scans underneath vectorize.
	"SELECT t.id, g.name FROM t JOIN g ON t.grp = g.grp ORDER BY t.id",
	"SELECT g.name, count(*) FROM t JOIN g ON t.grp = g.grp GROUP BY g.name ORDER BY g.name",
}

func buildMode(t *testing.T, cat *table.Catalog, q string, mode Mode) (Operator, error) {
	t.Helper()
	st, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return BuildSelectOverMode(cat, st.(*sql.SelectStmt), nil, mode)
}

// sameValue compares kind and content exactly (String() folds -0/0 and NaN
// representations consistently for both paths).
func sameValue(a, b expr.Value) bool {
	return a.K == b.K && a.String() == b.String()
}

func TestDifferentialRowVsBatch(t *testing.T) {
	cat := diffFixture(t)
	for _, q := range differentialQueries {
		rowOp, err := buildMode(t, cat, q, ModeRow)
		if err != nil {
			t.Fatalf("plan (row) %q: %v", q, err)
		}
		batchOp, err := buildMode(t, cat, q, ModeAuto)
		if err != nil {
			t.Fatalf("plan (batch) %q: %v", q, err)
		}
		rowRows, rowErr := Drain(rowOp)
		batchRows, batchErr := Drain(batchOp)
		if (rowErr == nil) != (batchErr == nil) {
			t.Fatalf("%q: row err = %v, batch err = %v", q, rowErr, batchErr)
		}
		if rowErr != nil {
			if rowErr.Error() != batchErr.Error() {
				t.Fatalf("%q: error mismatch: row %q vs batch %q", q, rowErr, batchErr)
			}
			continue
		}
		if len(rowRows) != len(batchRows) {
			t.Fatalf("%q: row count %d vs batch %d", q, len(rowRows), len(batchRows))
		}
		for i := range rowRows {
			if len(rowRows[i]) != len(batchRows[i]) {
				t.Fatalf("%q row %d: width %d vs %d", q, i, len(rowRows[i]), len(batchRows[i]))
			}
			for c := range rowRows[i] {
				if !sameValue(rowRows[i][c], batchRows[i][c]) {
					t.Fatalf("%q row %d col %d: row engine %v (%s) vs batch %v (%s)",
						q, i, c, rowRows[i][c], rowRows[i][c].K, batchRows[i][c], batchRows[i][c].K)
				}
			}
		}
	}
}

// TestDifferentialErrors checks that runtime errors surface identically in
// both modes.
func TestDifferentialErrors(t *testing.T) {
	cat := diffFixture(t)
	for _, q := range []string{
		"SELECT 1 / 0 FROM t",
		"SELECT id FROM t WHERE 1 % 0 = 1",
		"SELECT id + label FROM t WHERE label = 'a'",
		"SELECT id FROM t WHERE label AND flag",
	} {
		rowOp, rerr := buildMode(t, cat, q, ModeRow)
		batchOp, berr := buildMode(t, cat, q, ModeAuto)
		if rerr != nil || berr != nil {
			t.Fatalf("plan %q: %v / %v", q, rerr, berr)
		}
		_, rowErr := Drain(rowOp)
		_, batchErr := Drain(batchOp)
		if rowErr == nil || batchErr == nil {
			t.Fatalf("%q: want errors from both modes, got row=%v batch=%v", q, rowErr, batchErr)
		}
		if rowErr.Error() != batchErr.Error() {
			t.Fatalf("%q: error mismatch:\n  row:   %v\n  batch: %v", q, rowErr, batchErr)
		}
	}
}

// TestCoreQueriesVectorize pins that the flagship shapes actually lower to
// the batch pipeline rather than silently falling back to row mode.
func TestCoreQueriesVectorize(t *testing.T) {
	cat := diffFixture(t)
	for _, q := range []string{
		"SELECT * FROM t",
		"SELECT id FROM t WHERE x > 0",
		"SELECT count(*), avg(x) FROM t WHERE x > 0",
		"SELECT grp, sum(x) FROM t GROUP BY grp",
		"SELECT id, x FROM t ORDER BY x LIMIT 2", // sort stays row, scan vectorizes
	} {
		op, err := buildMode(t, cat, q, ModeAuto)
		if err != nil {
			t.Fatal(err)
		}
		if !Vectorized(op) {
			t.Errorf("%q did not lower to the batch pipeline:\n%s", q, PlanString(op))
		}
	}
	// And that ModeRow really is row mode.
	op, err := buildMode(t, cat, "SELECT id FROM t WHERE x > 0", ModeRow)
	if err != nil {
		t.Fatal(err)
	}
	if Vectorized(op) {
		t.Error("ModeRow plan reports vectorized")
	}
}

// TestAmbiguousColumnErrorsAtOpen is the regression test for eager
// identifier resolution: an ambiguous bare column must fail at Open, not as
// a misleading "unknown identifier" error on the first row.
func TestAmbiguousColumnErrorsAtOpen(t *testing.T) {
	child := &ValuesScan{Cols: []string{"a.x", "b.x"}, Rows: []Row{{expr.Int(1), expr.Int(2)}}}
	pred, err := expr.Parse("x > 0")
	if err != nil {
		t.Fatal(err)
	}
	f := &Filter{Child: child, Pred: pred}
	openErr := f.Open()
	if openErr == nil || !strings.Contains(openErr.Error(), "ambiguous") {
		t.Fatalf("Filter.Open = %v, want ambiguous-column error", openErr)
	}

	p := &Project{Child: child, Exprs: []expr.Expr{pred}, Names: []string{"p"}}
	if err := p.Open(); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("Project.Open = %v, want ambiguous-column error", err)
	}

	h := &HashAggregate{Child: child, GroupExprs: []expr.Expr{&expr.Ident{Name: "x"}}}
	if err := h.Open(); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("HashAggregate.Open = %v, want ambiguous-column error", err)
	}

	// End to end: a join making a bare name ambiguous fails at Open time.
	cat := diffFixture(t)
	st, err := sql.Parse("SELECT t.id FROM t JOIN g ON t.grp = g.grp WHERE grp > 1")
	if err != nil {
		t.Fatal(err)
	}
	op, err := BuildSelectOverMode(cat, st.(*sql.SelectStmt), nil, ModeRow)
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Open(); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("Open = %v, want ambiguous-column error", err)
	}
}
