package exec

import (
	"context"
	"strings"
	"testing"

	"datalaws/internal/expr"
	"datalaws/internal/sql"
)

// TestParallelPlansUseGather pins that the flagship shapes actually lower
// onto the parallel operators instead of silently staying serial.
func TestParallelPlansUseGather(t *testing.T) {
	withSmallMorsels(t, 256)
	cat := largeDiffFixture(t, 3000)
	for q, want := range map[string]string{
		"SELECT * FROM t":                                              "Gather workers=4",
		"SELECT id, x FROM t WHERE x > 0":                              "Gather workers=4",
		"SELECT grp, sum(x) FROM t GROUP BY grp":                       "ParallelHashAggregate",
		"SELECT count(*) FROM t":                                       "ParallelHashAggregate",
		"SELECT grp, count(*) FROM t GROUP BY grp HAVING count(*) > 1": "ParallelHashAggregate",
		"SELECT id FROM t ORDER BY x LIMIT 2":                          "Gather workers=4", // sort stays row, scan parallelizes
	} {
		op, err := buildParallel(t, cat, q, 4)
		if err != nil {
			t.Fatal(err)
		}
		if plan := PlanString(op); !strings.Contains(plan, want) {
			t.Errorf("%q plan missing %q:\n%s", q, want, plan)
		}
	}
	// The join stage itself stays row-mode (its big input may still gather
	// underneath), and a table that fits in one morsel stays serial.
	op0, err := buildParallel(t, cat, "SELECT t.id, g.name FROM t JOIN g ON t.grp = g.grp", 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan := PlanString(op0); !strings.Contains(plan, "HashJoin") {
		t.Errorf("join plan lost its row-mode join stage:\n%s", plan)
	}
	opSmall, err := buildParallel(t, cat, "SELECT name FROM g", 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan := PlanString(opSmall); strings.Contains(plan, "Gather") {
		t.Errorf("single-morsel table unexpectedly parallelized:\n%s", plan)
	}
	// Parallelism 1 never builds a pool.
	op, err := buildParallel(t, cat, "SELECT * FROM t", 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan := PlanString(op); strings.Contains(plan, "Gather") {
		t.Errorf("parallelism 1 built a gather:\n%s", plan)
	}
}

// TestGatherPreservesScanOrder checks the ordered gather's core contract:
// a parallel scan emits rows in exactly the serial scan's order even
// without ORDER BY.
func TestGatherPreservesScanOrder(t *testing.T) {
	withSmallMorsels(t, 256)
	cat := largeDiffFixture(t, 5000)
	serialOp, err := buildMode(t, cat, "SELECT id FROM t", ModeRow)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Drain(serialOp)
	if err != nil {
		t.Fatal(err)
	}
	parOp, err := buildParallel(t, cat, "SELECT id FROM t", 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(parOp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("row count %d vs %d", len(got), len(want))
	}
	for i := range want {
		if want[i][0].I != got[i][0].I {
			t.Fatalf("row %d: serial id %d, parallel id %d — gather broke scan order", i, want[i][0].I, got[i][0].I)
		}
	}
}

// TestParallelCancellation checks that a canceled statement context stops a
// parallel query mid-flight, through both the gather and the partial
// aggregate.
func TestParallelCancellation(t *testing.T) {
	withSmallMorsels(t, 256)
	cat := largeDiffFixture(t, 20000)
	for _, q := range []string{
		"SELECT id, x FROM t WHERE x > -10000",
		"SELECT grp, sum(x), avg(y) FROM t GROUP BY grp",
	} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // already canceled: the first interrupt check must fire
		op, err := buildParallel(t, cat, q, 4)
		if err != nil {
			t.Fatal(err)
		}
		BindContext(op, ctx)
		_, drainErr := Drain(op)
		if drainErr == nil {
			t.Fatalf("%q: want context error, got full result", q)
		}
		if drainErr != context.Canceled {
			t.Fatalf("%q: err = %v, want context.Canceled", q, drainErr)
		}
	}
}

// TestParallelEarlyClose checks that abandoning a parallel cursor (LIMIT
// semantics) shuts the pool down cleanly.
func TestParallelEarlyClose(t *testing.T) {
	withSmallMorsels(t, 256)
	cat := largeDiffFixture(t, 20000)
	op, err := buildParallel(t, cat, "SELECT id FROM t LIMIT 3", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		row, err := op.Next()
		if err != nil || row == nil {
			t.Fatalf("row %d: %v, %v", i, row, err)
		}
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent.
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAggStateMerge exercises the partial-state recombination directly:
// splitting a value stream across partials and merging must agree with the
// serial fold for every aggregate kind, including NULL skipping and empty
// partials.
func TestAggStateMerge(t *testing.T) {
	vals := []expr.Value{
		expr.Float(1.5), expr.Null(), expr.Float(-2.25), expr.Float(4),
		expr.Float(10.5), expr.Null(), expr.Float(0), expr.Float(-7.75),
		expr.Float(3.125), expr.Float(8),
	}
	kinds := []AggKind{AggCount, AggSum, AggAvg, AggMin, AggMax, AggVar, AggStdDev}
	for _, kind := range kinds {
		var serial aggState
		for _, v := range vals {
			if err := serial.update(kind, v); err != nil {
				t.Fatal(err)
			}
		}
		for _, split := range []int{0, 1, 3, len(vals)} {
			var a, b, empty aggState
			for i, v := range vals {
				st := &a
				if i >= split {
					st = &b
				}
				if err := st.update(kind, v); err != nil {
					t.Fatal(err)
				}
			}
			var merged aggState
			for _, part := range []*aggState{&empty, &a, &b} {
				if err := merged.merge(part, kind); err != nil {
					t.Fatal(err)
				}
			}
			want, got := serial.final(kind), merged.final(kind)
			if !closeValue(want, got) {
				t.Errorf("kind %d split %d: serial %v vs merged %v", kind, split, want, got)
			}
		}
	}
	// MIN/MAX preserve the argument kind through merges (strings here).
	var l, r aggState
	for _, s := range []string{"pear", "apple"} {
		if err := l.update(AggMin, expr.Str(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.update(AggMin, expr.Str("banana")); err != nil {
		t.Fatal(err)
	}
	if err := l.merge(&r, AggMin); err != nil {
		t.Fatal(err)
	}
	if got := l.final(AggMin); got.S != "apple" {
		t.Errorf("string MIN merge = %v, want apple", got)
	}
}

// TestParallelReExecute checks that a parallel plan can be opened and
// drained twice (prepared-statement style) and sees fresh snapshots.
func TestParallelReExecute(t *testing.T) {
	withSmallMorsels(t, 256)
	cat := largeDiffFixture(t, 3000)
	st, err := sql.Parse("SELECT count(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	op, err := BuildSelectOpts(cat, st.(*sql.SelectStmt), nil, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	first, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 1 || len(second) != 1 || first[0][0].I != second[0][0].I {
		t.Fatalf("re-executed parallel plan disagrees: %v vs %v", first, second)
	}
}
