// Morsel-driven parallel execution.
//
// A parallelizable pipeline — a table or model scan, optionally under
// filters and projections — is split into morsels claimed from a shared
// atomic cursor, the scheduling unit of [Leis et al., SIGMOD 2014]. For
// table scans a morsel is exactly one storage chunk (the sealed chunk row
// budget matches the old fixed morsel size), so "claim a morsel" and
// "decode a chunk" coincide and zone-map-pruned chunks never enter the
// morsel space at all. Every worker owns a private copy of the whole pipeline
// (its own compiled kernels, batch buffers and interrupt state) over a
// shared immutable snapshot of the input, so no synchronization happens on
// the data path; workers coordinate only when claiming the next morsel.
//
// Two operators recombine worker output:
//
//   - VecGather re-emits produced batches in morsel order, so a parallel
//     scan streams rows in exactly the serial scan's order (ORDER BY ...
//     LIMIT stays deterministic even with ties in the sort key).
//   - VecParallelHashAggregate runs a partial-aggregate phase per worker
//     and merges the partial states once at the end (COUNT/SUM/AVG
//     additively, MIN/MAX by comparison, VAR/STDDEV through the Welford
//     combination), emitting groups in serial first-seen order.
//
// Because the merge reassociates floating-point addition, SUM/AVG/VAR
// results can differ from serial execution in the last few ulps; everything
// else — row sets, row order, NULL (3VL) semantics, error messages — is
// identical. Plans with no parallelizable source (joins, sorts as sources,
// VALUES, row-only operators) keep the serial batch pipeline.
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"datalaws/internal/expr"
	"datalaws/internal/table"
)

// Options configures how BuildSelectOpts lowers a plan.
type Options struct {
	// Mode selects batch versus row execution (see Mode).
	Mode Mode
	// Parallelism bounds the morsel-driven worker pool: 0 selects
	// GOMAXPROCS, 1 keeps the serial batch pipeline, and plans with no
	// parallelizable source fall back to serial regardless.
	Parallelism int
}

// Workers resolves the configured parallelism to a concrete worker count.
func (o Options) Workers() int {
	if o.Parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Parallelism < 1 {
		return 1
	}
	return o.Parallelism
}

// MorselSource is a VectorOperator that cooperates with sibling sources on
// a shared morsel queue. NextBatch returns nil at the end of the current
// morsel; NextMorsel claims the next unprocessed one. Morsel indexes are
// dense (0..NumMorsels-1) and ordered like the serial scan, which is what
// lets VecGather reconstruct deterministic output order. Open on any
// sibling opens the shared input exactly once.
type MorselSource interface {
	VectorOperator
	// NextMorsel claims the next morsel, reporting its dense index; ok is
	// false when the input is exhausted.
	NextMorsel() (idx int64, ok bool)
	// NumMorsels reports the total morsel count (valid after Open).
	NumMorsels() int64
}

// MorselSplitter is implemented by sources defined outside this package
// (e.g. the aqp model scan) that can split themselves into cooperating
// morsel streams for parallel execution.
type MorselSplitter interface {
	SplitMorsels(workers int) ([]MorselSource, bool)
}

// sharedTableMorsels is the worker-shared state of a parallel table scan:
// one ChunkView capture (with zone-map pruning applied) plus the morsel
// claim cursor over the surviving chunks. The capture is (re)taken when the
// first sibling of an execution opens and torn down when the last closes,
// so a re-executed plan sees fresh data.
type sharedTableMorsels struct {
	tbl   *table.Table
	where expr.Expr
	alias string
	cols  []string

	mu     sync.Mutex
	opened int
	cs     chunkSet
	total  int64
	cursor atomic.Int64
}

func (s *sharedTableMorsels) open() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opened == 0 {
		cs, err := captureChunks(s.tbl, s.where, s.alias)
		if err != nil {
			return err
		}
		s.cs = cs
		s.total = int64(cs.numChunks())
		s.cursor.Store(0)
	}
	s.opened++
	return nil
}

func (s *sharedTableMorsels) close() {
	s.mu.Lock()
	if s.opened > 0 {
		s.opened--
		if s.opened == 0 {
			s.cs = chunkSet{}
		}
	}
	s.mu.Unlock()
}

// vecMorselScan is one worker's view of a parallel table scan: it claims
// chunk morsels from the shared cursor, decodes each through the shared
// cache on first NextBatch (NextMorsel cannot report errors), and
// materializes batch windows into private buffers, exactly like
// VecTableScan does serially.
type vecMorselScan struct {
	shared *sharedTableMorsels
	Interruptible

	win    colWindow
	cur    int // claimed position in the survivor list; -1 before any claim
	src    []vecColSrc
	n, pos int
}

// Columns implements VectorOperator.
func (m *vecMorselScan) Columns() []string { return m.shared.cols }

// Open implements VectorOperator.
func (m *vecMorselScan) Open() error {
	if err := m.shared.open(); err != nil {
		return err
	}
	m.win.init(len(m.shared.cols))
	m.cur, m.src, m.n, m.pos = -1, nil, 0, 0
	m.ResetInterrupt()
	return nil
}

// NextMorsel implements MorselSource: one morsel is one surviving chunk.
func (m *vecMorselScan) NextMorsel() (int64, bool) {
	idx := m.shared.cursor.Add(1) - 1
	if idx >= m.shared.total {
		return 0, false
	}
	m.cur = int(idx)
	m.src, m.n, m.pos = nil, 0, 0
	return idx, true
}

// NumMorsels implements MorselSource.
func (m *vecMorselScan) NumMorsels() int64 { return m.shared.total }

// NextBatch implements VectorOperator, returning nil at the end of the
// current morsel.
func (m *vecMorselScan) NextBatch() (*Batch, error) {
	if err := m.CheckInterruptNow(); err != nil {
		return nil, err
	}
	if m.cur < 0 {
		return nil, nil
	}
	if m.src == nil {
		src, n, err := m.shared.cs.columns(m.cur)
		if err != nil {
			return nil, err
		}
		m.src, m.n, m.pos = src, n, 0
	}
	if m.pos >= m.n {
		return nil, nil
	}
	lo := m.pos
	hi := lo + BatchSize
	if hi > m.n {
		hi = m.n
	}
	m.pos = hi
	return m.win.window(m.src, lo, hi), nil
}

// Close implements VectorOperator.
func (m *vecMorselScan) Close() error { m.shared.close(); return nil }

// splitTableScan builds the worker-shared morsel sources for a table scan.
// Single-chunk tables stay serial — a pool cannot help, and per-query
// goroutines are not free — and the pool never exceeds the plan-time chunk
// count (workers beyond it would compile kernels and allocate buffers only
// to claim nothing).
func splitTableScan(t *table.Table, where expr.Expr, alias string, cols []string, workers int) ([]MorselSource, bool) {
	if t == nil {
		return nil, false
	}
	chunks := t.NumChunks()
	if chunks <= 1 {
		return nil, false
	}
	if workers > chunks {
		workers = chunks
	}
	shared := &sharedTableMorsels{tbl: t, where: where, alias: alias, cols: cols}
	out := make([]MorselSource, workers)
	for i := range out {
		out[i] = &vecMorselScan{shared: shared}
	}
	return out, true
}

// workerPipe is one worker's private pipeline: the full vectorized operator
// stack plus the morsel-claiming source at its bottom.
type workerPipe struct {
	pipe VectorOperator
	src  MorselSource
}

// parallelPipelines builds per-worker copies of a scan/filter/project
// subtree over a shared morsel source, reporting false when the subtree has
// an unsplittable source or an expression with no batch kernel.
func parallelPipelines(op Operator, workers int) ([]workerPipe, bool) {
	switch o := op.(type) {
	case *TableScan:
		srcs, ok := splitTableScan(o.Table, o.Where, o.alias, o.cols, workers)
		if !ok {
			return nil, false
		}
		return pipesFromSources(srcs), true
	case *Filter:
		pipes, ok := parallelPipelines(o.Child, workers)
		if !ok {
			return nil, false
		}
		if _, err := compileKernel(o.Pred, pipes[0].pipe.Columns()); err != nil {
			return nil, false
		}
		for i := range pipes {
			pipes[i].pipe = &VecFilter{Child: pipes[i].pipe, Pred: o.Pred}
		}
		return pipes, true
	case *Project:
		pipes, ok := parallelPipelines(o.Child, workers)
		if !ok {
			return nil, false
		}
		for _, e := range o.Exprs {
			if _, err := compileKernel(e, pipes[0].pipe.Columns()); err != nil {
				return nil, false
			}
		}
		for i := range pipes {
			pipes[i].pipe = &VecProject{Child: pipes[i].pipe, Exprs: o.Exprs, Names: o.Names}
		}
		return pipes, true
	}
	if ms, ok := op.(MorselSplitter); ok {
		srcs, ok := ms.SplitMorsels(workers)
		if !ok || len(srcs) == 0 {
			return nil, false
		}
		return pipesFromSources(srcs), true
	}
	return nil, false
}

func pipesFromSources(srcs []MorselSource) []workerPipe {
	pipes := make([]workerPipe, len(srcs))
	for i, s := range srcs {
		pipes[i] = workerPipe{pipe: s, src: s}
	}
	return pipes
}

// parallelize rewrites a row subtree into a morsel-driven parallel plan:
// per-worker pipelines recombined by a gather (scans) or a partial-
// aggregate merge (hash aggregation). It reports false when no source in
// the subtree can split, leaving the serial lowering to take over.
func parallelize(op Operator, workers int) (VectorOperator, bool) {
	if workers <= 1 {
		return nil, false
	}
	if pipes, ok := parallelPipelines(op, workers); ok {
		return newVecGather(pipes), true
	}
	switch o := op.(type) {
	case *HashAggregate:
		pipes, ok := parallelPipelines(o.Child, workers)
		if !ok {
			return nil, false
		}
		cols := pipes[0].pipe.Columns()
		for _, g := range o.GroupExprs {
			if _, err := compileKernel(g, cols); err != nil {
				return nil, false
			}
		}
		for _, spec := range o.Aggs {
			if spec.Arg == nil {
				continue
			}
			if _, err := compileKernel(spec.Arg, cols); err != nil {
				return nil, false
			}
		}
		return &VecParallelHashAggregate{pipes: pipes, GroupExprs: o.GroupExprs, Aggs: o.Aggs}, true
	case *Filter:
		// Filter above an aggregate (HAVING): parallelize below, filter the
		// merged groups serially — group counts are small.
		child, ok := parallelize(o.Child, workers)
		if !ok {
			return nil, false
		}
		if _, err := compileKernel(o.Pred, child.Columns()); err != nil {
			return nil, false
		}
		return &VecFilter{Child: child, Pred: o.Pred}, true
	case *Project:
		child, ok := parallelize(o.Child, workers)
		if !ok {
			return nil, false
		}
		for _, e := range o.Exprs {
			if _, err := compileKernel(e, child.Columns()); err != nil {
				return nil, false
			}
		}
		return &VecProject{Child: child, Exprs: o.Exprs, Names: o.Names}, true
	}
	return nil, false
}

// morselItem is one morsel's worth of worker output: the compacted batches
// it produced and the error that stopped it, if any.
type morselItem struct {
	idx     int64
	batches []*Batch
	err     error
}

// VecGather is the parallel scan's exchange operator: it runs one goroutine
// per worker pipeline, collects each morsel's output, and re-emits batches
// in morsel order — the serial scan's order — buffering out-of-order
// morsels until their turn. Errors surface at the position the serial plan
// would have reported them. Closing the gather (early termination, LIMIT)
// stops the pool without draining the input.
// morselLead bounds how many claimed-but-unemitted morsels the pool may
// hold per worker. Without it, one slow morsel would let the siblings race
// through the whole input and buffer the entire compacted result in the
// reorder map; with it, gather memory is O(morselLead × workers × morsel).
const morselLead = 4

type VecGather struct {
	pipes []workerPipe

	ctx     context.Context
	ch      chan morselItem
	done    chan struct{}
	credits chan struct{}
	wg      sync.WaitGroup
	closed  bool

	buf     map[int64]morselItem
	nextIdx int64
	total   int64
	cur     []*Batch
	curPos  int
	curErr  error
}

// newVecGather wraps per-worker pipelines in a gather.
func newVecGather(pipes []workerPipe) *VecGather {
	return &VecGather{pipes: pipes}
}

// Columns implements VectorOperator.
func (g *VecGather) Columns() []string { return g.pipes[0].pipe.Columns() }

// SetContext implements ContextAware: the gather itself watches the context
// while waiting on workers (each worker's scan checks it independently).
func (g *VecGather) SetContext(ctx context.Context) { g.ctx = ctx }

// Open implements VectorOperator: it opens every worker pipeline and starts
// the pool.
func (g *VecGather) Open() error {
	for i := range g.pipes {
		if err := g.pipes[i].pipe.Open(); err != nil {
			for j := 0; j < i; j++ {
				g.pipes[j].pipe.Close()
			}
			return err
		}
	}
	g.total = g.pipes[0].src.NumMorsels()
	g.nextIdx = 0
	g.buf = make(map[int64]morselItem)
	g.cur, g.curPos, g.curErr = nil, 0, nil
	g.ch = make(chan morselItem, len(g.pipes))
	g.done = make(chan struct{})
	g.credits = make(chan struct{}, morselLead*len(g.pipes))
	for i := 0; i < cap(g.credits); i++ {
		g.credits <- struct{}{}
	}
	g.closed = false
	g.wg = sync.WaitGroup{}
	for i := range g.pipes {
		g.wg.Add(1)
		go g.worker(g.pipes[i])
	}
	return nil
}

// worker claims morsels and runs its pipeline over each, compacting the
// surviving rows into fresh batches (worker buffers are reused per call, so
// output must not alias them).
func (g *VecGather) worker(p workerPipe) {
	defer g.wg.Done()
	for {
		// One credit per claimed-but-unemitted morsel: the consumer hands
		// credits back as it emits, so the pool cannot run unboundedly
		// ahead of a slow in-order morsel.
		select {
		case <-g.credits:
		case <-g.done:
			return
		}
		// A canceled statement stops the worker at its next claim, before
		// it pays for another morsel's pipeline; the consumer watches the
		// same context, so exiting without an item cannot strand it.
		if g.ctx != nil && g.ctx.Err() != nil {
			return
		}
		idx, ok := p.src.NextMorsel()
		if !ok {
			return
		}
		var out []*Batch
		var werr error
		for {
			b, err := p.pipe.NextBatch()
			if err != nil {
				werr = err
				break
			}
			if b == nil {
				break
			}
			out = append(out, cloneBatchCompact(b))
		}
		select {
		case g.ch <- morselItem{idx: idx, batches: out, err: werr}:
		case <-g.done:
			return
		}
		if werr != nil {
			return
		}
	}
}

// NextBatch implements VectorOperator, emitting batches in morsel order.
func (g *VecGather) NextBatch() (*Batch, error) {
	for {
		if g.curPos < len(g.cur) {
			b := g.cur[g.curPos]
			g.curPos++
			return b, nil
		}
		if g.curErr != nil {
			return nil, g.curErr
		}
		if g.nextIdx >= g.total {
			return nil, nil
		}
		if item, ok := g.buf[g.nextIdx]; ok {
			delete(g.buf, g.nextIdx)
			g.nextIdx++
			g.cur, g.curPos, g.curErr = item.batches, 0, item.err
			// Return the morsel's credit; non-blocking because a worker
			// that claimed and found the input exhausted keeps its credit.
			select {
			case g.credits <- struct{}{}:
			default:
			}
			continue
		}
		var ctxDone <-chan struct{}
		if g.ctx != nil {
			ctxDone = g.ctx.Done()
		}
		select {
		case item := <-g.ch:
			g.buf[item.idx] = item
		case <-ctxDone:
			return nil, g.ctx.Err()
		}
	}
}

// Close implements VectorOperator: it stops the pool (workers between sends
// exit at their next claim or send) and closes every pipeline.
func (g *VecGather) Close() error {
	if g.done != nil && !g.closed {
		g.closed = true
		close(g.done)
		g.wg.Wait()
	}
	var err error
	for i := range g.pipes {
		if cerr := g.pipes[i].pipe.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	g.buf, g.cur = nil, nil
	return err
}

// Workers reports the pool size; used by EXPLAIN.
func (g *VecGather) Workers() int { return len(g.pipes) }

// cloneBatchCompact copies a batch's selected rows into a fresh dense batch
// that does not alias the producing worker's reusable buffers, so the
// gather can hand it downstream while the worker moves on. Unfiltered
// Stable vectors (int/float scan windows over the immutable snapshot) are
// aliased instead of copied — only their scratch null masks are cloned.
func cloneBatchCompact(b *Batch) *Batch {
	sel := b.selection()
	n := len(sel)
	identity := b.Sel == nil
	out := &Batch{N: n, Cols: make([]*Vector, len(b.Cols))}
	for c, v := range b.Cols {
		out.Cols[c] = compactVector(v, sel, n, identity)
	}
	return out
}

func compactVector(v *Vector, sel []int, n int, identity bool) *Vector {
	out := &Vector{Kind: v.Kind}
	if identity && v.Stable {
		switch v.Kind {
		case expr.KindInt:
			out.I, out.Stable = v.I, true
		case expr.KindFloat:
			out.F, out.Stable = v.F, true
		}
		if out.Stable {
			if v.Null != nil {
				out.Null = append([]bool(nil), v.Null[:n]...)
			}
			return out
		}
	}
	switch v.Kind {
	case expr.KindInt:
		out.I = make([]int64, n)
		for j, i := range sel {
			out.I[j] = v.I[i]
		}
	case expr.KindFloat:
		out.F = make([]float64, n)
		for j, i := range sel {
			out.F[j] = v.F[i]
		}
	case expr.KindString:
		out.S = make([]string, n)
		for j, i := range sel {
			out.S[j] = v.S[i]
		}
	case expr.KindBool:
		out.B = make([]bool, n)
		for j, i := range sel {
			out.B[j] = v.B[i]
		}
	case anyKind:
		out.Any = make([]expr.Value, n)
		for j, i := range sel {
			out.Any[j] = v.Any[i]
		}
	default: // all-NULL vector: the mask carries the length
		out.Null = make([]bool, n)
		for j := range out.Null {
			out.Null[j] = true
		}
		return out
	}
	if v.Null != nil {
		nulls := make([]bool, n)
		any := false
		for j, i := range sel {
			if v.Null[i] {
				nulls[j] = true
				any = true
			}
		}
		if any {
			out.Null = nulls
		}
	}
	return out
}
