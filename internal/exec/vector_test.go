package exec

import (
	"testing"

	"datalaws/internal/expr"
	"datalaws/internal/storage"
	"datalaws/internal/table"
)

func TestVecTableScanSnapshotsRowCount(t *testing.T) {
	s, _ := table.NewSchema(table.ColumnDef{Name: "v", Type: storage.TypeInt64})
	tb := table.New("t", s)
	for i := 0; i < 3; i++ {
		if err := tb.AppendRow([]expr.Value{expr.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	scan := NewVecTableScan(tb)
	if err := scan.Open(); err != nil {
		t.Fatal(err)
	}
	// Rows appended after Open must not appear in this scan.
	if err := tb.AppendRow([]expr.Value{expr.Int(99)}); err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		b, err := scan.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		total += b.NumRows()
	}
	if total != 3 {
		t.Fatalf("scan saw %d rows, want 3", total)
	}
}

func TestRowAdapterReopens(t *testing.T) {
	vs := &VecValuesScan{Cols: []string{"a"}, Rows: []Row{{expr.Int(1)}, {expr.Int(2)}}}
	op := NewRowAdapter(vs)
	for pass := 0; pass < 2; pass++ {
		rows, err := Drain(op)
		if err != nil || len(rows) != 2 {
			t.Fatalf("pass %d: rows=%v err=%v", pass, rows, err)
		}
		if rows[0][0].I != 1 || rows[1][0].I != 2 {
			t.Fatalf("pass %d: rows=%v", pass, rows)
		}
	}
}

func TestBatchAdapterRoundTrip(t *testing.T) {
	src := &ValuesScan{Cols: []string{"a", "b"}, Rows: []Row{
		{expr.Int(1), expr.Str("x")},
		{expr.Null(), expr.Str("y")},
		{expr.Int(3), expr.Null()},
	}}
	rows, err := Drain(NewRowAdapter(NewBatchAdapter(src)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].I != 1 || !rows[1][0].IsNull() || !rows[2][1].IsNull() {
		t.Fatalf("round trip mangled values: %v", rows)
	}
}

func TestVectorFromValuesPreservesMixedKinds(t *testing.T) {
	vals := []expr.Value{expr.Int(1), expr.Float(2.5), expr.Null()}
	v := vectorFromValues(vals)
	if v.Kind != anyKind {
		t.Fatalf("kind = %v, want boxed any-vector", v.Kind)
	}
	if v.Value(0).K != expr.KindInt || v.Value(1).K != expr.KindFloat || !v.IsNull(2) {
		t.Fatalf("values mangled: %v %v %v", v.Value(0), v.Value(1), v.Value(2))
	}
}

func TestVectorFromValuesTyped(t *testing.T) {
	v := vectorFromValues([]expr.Value{expr.Float(1), expr.Null(), expr.Float(3)})
	if v.Kind != expr.KindFloat || v.Len() != 3 {
		t.Fatalf("kind=%v len=%d", v.Kind, v.Len())
	}
	if v.F[0] != 1 || !v.IsNull(1) || v.F[2] != 3 {
		t.Fatalf("values mangled")
	}
}

func TestVecConcatColumnMismatch(t *testing.T) {
	c := &VecConcat{Children: []VectorOperator{
		&VecValuesScan{Cols: []string{"a"}},
		&VecValuesScan{Cols: []string{"b"}},
	}}
	if err := c.Open(); err == nil {
		t.Fatal("want column mismatch error")
	}
}

func TestVecFilterEmptyBatches(t *testing.T) {
	// Three batches worth of rows where only one row matches: the filter
	// must skip fully-filtered batches rather than emitting empty ones.
	rows := make([]Row, 3*BatchSize)
	for i := range rows {
		rows[i] = Row{expr.Int(int64(i))}
	}
	pred, err := expr.Parse("v = 2500")
	if err != nil {
		t.Fatal(err)
	}
	f := &VecFilter{Child: &VecValuesScan{Cols: []string{"v"}, Rows: rows}, Pred: pred}
	out, err := Drain(NewRowAdapter(f))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0][0].I != 2500 {
		t.Fatalf("rows = %v", out)
	}
}
