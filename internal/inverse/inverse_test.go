package inverse

import (
	"math"
	"testing"

	"datalaws/internal/aqp"
	"datalaws/internal/modelstore"
	"datalaws/internal/synth"
	"datalaws/internal/table"
)

func fixture(t *testing.T) (*table.Table, *modelstore.CapturedModel, *synth.LOFARData) {
	t.Helper()
	d := synth.GenerateLOFAR(synth.LOFARConfig{
		Sources: 20, ObsPerSource: 40, NoiseFrac: 0.02, AnomalyFrac: 0, Seed: 71,
	})
	tb, err := synth.LOFARTable("measurements", d)
	if err != nil {
		t.Fatal(err)
	}
	store := modelstore.NewStore()
	m, err := store.Capture(tb, modelstore.Spec{
		Name: "spectra", Table: "measurements",
		Formula: "intensity ~ p * pow(nu, alpha)",
		Inputs:  []string{"nu"}, GroupBy: "source",
		Start: map[string]float64{"p": 1, "alpha": -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb, m, d
}

func TestGridInverseFindsProducingInputs(t *testing.T) {
	tb, m, _ := fixture(t)
	doms, err := aqp.DomainsFor(tb, []string{"nu"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Which (source, band) combinations predict intensity in [2, 3]?
	matches, err := GridInverse(m, doms, nil, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, mt := range matches {
		if mt.Value < 2 || mt.Value > 3 {
			t.Fatalf("match %v outside range", mt)
		}
	}
	// Sorted ascending by value.
	for i := 1; i < len(matches); i++ {
		if matches[i].Value < matches[i-1].Value {
			t.Fatal("matches not sorted")
		}
	}
	// Completeness: every grid combination predicting inside the range is
	// reported.
	count := 0
	for _, key := range m.Order {
		g, ok := m.GroupFor(key)
		if !ok {
			continue
		}
		for _, nu := range doms[0].Vals {
			v := m.Model.Eval(g.Params, []float64{nu})
			if v >= 2 && v <= 3 {
				count++
			}
		}
	}
	if count != len(matches) {
		t.Fatalf("found %d matches, expected %d", len(matches), count)
	}
}

func TestGridInverseRespectsLegalSet(t *testing.T) {
	tb, m, _ := fixture(t)
	doms, _ := aqp.DomainsFor(tb, []string{"nu"}, 100)
	legal, err := aqp.BuildLegalSet(tb, "source", []string{"nu"}, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	all, err := GridInverse(m, doms, nil, 0, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	restricted, err := GridInverse(m, doms, legal, 0, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(restricted) > len(all) {
		t.Fatal("legal set grew the result")
	}
	for _, mt := range restricted {
		if !legal.Contains(mt.Group, mt.Inputs) {
			t.Fatal("illegal combination leaked")
		}
	}
}

func TestGridInverseErrors(t *testing.T) {
	_, m, _ := fixture(t)
	if _, err := GridInverse(m, nil, nil, 0, 1); err == nil {
		t.Fatal("want domain-arity error")
	}
	doms := []aqp.Domain{{Col: "nu", Vals: synth.Bands}}
	if _, err := GridInverse(m, doms, nil, 5, 2); err == nil {
		t.Fatal("want empty-range error")
	}
}

func TestContinuousInverse(t *testing.T) {
	_, m, d := fixture(t)
	// Pick a target intensity inside source 3's range and invert for ν.
	truth := d.Truth[3]
	yTarget := truth.P * math.Pow(0.145, truth.Alpha)
	x, err := ContinuousInverse(m, 3, yTarget, 0.12, 0.18, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	// The fitted model differs slightly from truth; check self-consistency:
	// f(x) == yTarget.
	g, _ := m.GroupFor(3)
	back := m.Model.Eval(g.Params, []float64{x})
	if math.Abs(back-yTarget) > 1e-8 {
		t.Fatalf("f(%g) = %g, want %g", x, back, yTarget)
	}
	// The recovered ν is near 0.145 because the fit tracks the truth.
	if math.Abs(x-0.145) > 0.01 {
		t.Fatalf("inverted nu = %g, want ≈0.145", x)
	}
}

func TestContinuousInverseErrors(t *testing.T) {
	_, m, _ := fixture(t)
	// Outside the model's range on the bracket.
	if _, err := ContinuousInverse(m, 3, 1e9, 0.12, 0.18, 1e-9); err == nil {
		t.Fatal("want out-of-range error")
	}
	if _, err := ContinuousInverse(m, 424242, 1, 0.12, 0.18, 1e-9); err == nil {
		t.Fatal("want unknown-group error")
	}
}
