// Package inverse implements inverse prediction on captured models — the
// direction the paper highlights in related work (Zimmer et al., SSDBM
// 2014): given a desired output value, find the inputs likely to produce
// it. Two strategies are provided, mirroring that work's split:
//
//   - GridInverse restricts the input space to the enumerable legal domain
//     and returns the combinations whose prediction falls in the requested
//     output range ("restraint optimization" over a discrete domain).
//   - ContinuousInverse solves f(x) = y for a single continuous input by
//     monotone bisection between domain bounds, for models monotone on the
//     bracket.
package inverse

import (
	"fmt"
	"math"
	"sort"

	"datalaws/internal/aqp"
	"datalaws/internal/modelstore"
)

// Match is one input combination whose predicted output lies in the query
// range.
type Match struct {
	Group  int64
	Inputs []float64
	Value  float64
}

// GridInverse returns every (group, inputs) combination in the enumerated
// domains whose model prediction falls within [lo, hi], ordered by
// predicted value. legal (optional) restricts to combinations observed in
// the data, preserving relational semantics.
func GridInverse(m *modelstore.CapturedModel, domains []aqp.Domain, legal aqp.LegalSet, lo, hi float64) ([]Match, error) {
	if len(domains) != len(m.Model.Inputs) {
		return nil, fmt.Errorf("inverse: %d domains for %d inputs", len(domains), len(m.Model.Inputs))
	}
	if hi < lo {
		return nil, fmt.Errorf("inverse: empty output range [%g, %g]", lo, hi)
	}
	var out []Match
	idx := make([]int, len(domains))
	inputs := make([]float64, len(domains))
	row := make([]float64, len(m.Model.Params)+len(domains))
	for _, key := range m.Order {
		g := m.Groups[key]
		if !g.OK() {
			continue
		}
		for i := range idx {
			idx[i] = 0
		}
		for {
			for i := range domains {
				inputs[i] = domains[i].Vals[idx[i]]
			}
			if legal == nil || legal.Contains(key, inputs) {
				v := m.Model.EvalInto(row, g.Params, inputs)
				if v >= lo && v <= hi {
					out = append(out, Match{Group: key, Inputs: append([]float64(nil), inputs...), Value: v})
				}
			}
			i := len(idx) - 1
			for ; i >= 0; i-- {
				idx[i]++
				if idx[i] < len(domains[i].Vals) {
					break
				}
				idx[i] = 0
			}
			if i < 0 {
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out, nil
}

// ContinuousInverse solves f(group, x) = y for a single-input model over
// the bracket [xlo, xhi] by bisection. The model must be monotone on the
// bracket (checked at the endpoints); tol bounds |f(x) − y|.
func ContinuousInverse(m *modelstore.CapturedModel, group int64, y, xlo, xhi, tol float64) (float64, error) {
	if len(m.Model.Inputs) != 1 {
		return 0, fmt.Errorf("inverse: continuous inversion needs a single-input model, have %d", len(m.Model.Inputs))
	}
	if tol <= 0 {
		tol = 1e-9
	}
	g, ok := m.GroupFor(group)
	if !ok {
		return 0, fmt.Errorf("inverse: no fitted parameters for group %d", group)
	}
	f := func(x float64) float64 { return m.Model.Eval(g.Params, []float64{x}) }
	flo, fhi := f(xlo), f(xhi)
	if math.IsNaN(flo) || math.IsNaN(fhi) {
		return 0, fmt.Errorf("inverse: model not finite on the bracket")
	}
	// Require y between the endpoint values (monotone bracket).
	if (y-flo)*(y-fhi) > 0 {
		return 0, fmt.Errorf("inverse: y=%g outside model range [%g, %g] on the bracket", y, math.Min(flo, fhi), math.Max(flo, fhi))
	}
	increasing := fhi >= flo
	lo, hi := xlo, xhi
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		v := f(mid)
		if math.Abs(v-y) <= tol {
			return mid, nil
		}
		if (v < y) == increasing {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
