// Package histsyn implements histogram synopses, the classic approximate
// query answering baseline the paper positions itself against (§1:
// "synopses are compressed lossy approximations of the data"; Ioannidis &
// Poosala's histogram-based approximation). Equi-width and equi-depth
// variants estimate range aggregates under the uniform-within-bucket
// assumption; the S2 experiment compares their accuracy against captured
// user models at equal storage budgets.
package histsyn

import (
	"fmt"
	"math"
	"sort"
)

// Histogram summarizes one numeric column with per-bucket counts and sums.
type Histogram struct {
	// Bounds has len(Counts)+1 entries; bucket i covers
	// [Bounds[i], Bounds[i+1]) with the last bucket closed on both sides.
	Bounds []float64
	Counts []float64
	Sums   []float64
}

// NumBuckets returns the bucket count.
func (h *Histogram) NumBuckets() int { return len(h.Counts) }

// SizeBytes is the storage footprint (bounds + counts + sums as float64).
func (h *Histogram) SizeBytes() int {
	return 8 * (len(h.Bounds) + len(h.Counts) + len(h.Sums))
}

// BuildEquiWidth builds a histogram with equal-width buckets.
func BuildEquiWidth(vals []float64, buckets int) (*Histogram, error) {
	if len(vals) == 0 || buckets < 1 {
		return nil, fmt.Errorf("histsyn: need data and at least one bucket")
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	h := &Histogram{
		Bounds: make([]float64, buckets+1),
		Counts: make([]float64, buckets),
		Sums:   make([]float64, buckets),
	}
	w := (hi - lo) / float64(buckets)
	for i := 0; i <= buckets; i++ {
		h.Bounds[i] = lo + float64(i)*w
	}
	for _, v := range vals {
		b := int((v - lo) / w)
		if b >= buckets {
			b = buckets - 1
		}
		if b < 0 {
			b = 0
		}
		h.Counts[b]++
		h.Sums[b] += v
	}
	return h, nil
}

// BuildEquiDepth builds a histogram whose buckets hold (approximately)
// equally many values.
func BuildEquiDepth(vals []float64, buckets int) (*Histogram, error) {
	if len(vals) == 0 || buckets < 1 {
		return nil, fmt.Errorf("histsyn: need data and at least one bucket")
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if buckets > n {
		buckets = n
	}
	h := &Histogram{
		Bounds: make([]float64, 0, buckets+1),
		Counts: make([]float64, 0, buckets),
		Sums:   make([]float64, 0, buckets),
	}
	h.Bounds = append(h.Bounds, s[0])
	per := n / buckets
	idx := 0
	for b := 0; b < buckets; b++ {
		end := idx + per
		if b == buckets-1 {
			end = n
		}
		var cnt, sum float64
		for ; idx < end; idx++ {
			cnt++
			sum += s[idx]
		}
		h.Counts = append(h.Counts, cnt)
		h.Sums = append(h.Sums, sum)
		if idx < n {
			h.Bounds = append(h.Bounds, s[idx])
		} else {
			h.Bounds = append(h.Bounds, s[n-1])
		}
	}
	return h, nil
}

// overlap returns the fraction of bucket [blo, bhi) covered by [qlo, qhi].
func overlap(blo, bhi, qlo, qhi float64) float64 {
	if bhi <= blo {
		// Degenerate bucket: counts either in or out by its position.
		if blo >= qlo && blo <= qhi {
			return 1
		}
		return 0
	}
	lo := math.Max(blo, qlo)
	hi := math.Min(bhi, qhi)
	if hi <= lo {
		return 0
	}
	return (hi - lo) / (bhi - blo)
}

// EstimateCount estimates how many values fall in [qlo, qhi].
func (h *Histogram) EstimateCount(qlo, qhi float64) float64 {
	var c float64
	for i := range h.Counts {
		c += h.Counts[i] * overlap(h.Bounds[i], h.Bounds[i+1], qlo, qhi)
	}
	return c
}

// EstimateSum estimates the sum of values in [qlo, qhi].
func (h *Histogram) EstimateSum(qlo, qhi float64) float64 {
	var s float64
	for i := range h.Sums {
		s += h.Sums[i] * overlap(h.Bounds[i], h.Bounds[i+1], qlo, qhi)
	}
	return s
}

// EstimateAvg estimates the mean of values in [qlo, qhi]; NaN when the
// estimated count is zero.
func (h *Histogram) EstimateAvg(qlo, qhi float64) float64 {
	c := h.EstimateCount(qlo, qhi)
	if c == 0 {
		return math.NaN()
	}
	return h.EstimateSum(qlo, qhi) / c
}
