package histsyn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func uniformData(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64() * 100
	}
	return out
}

func TestEquiWidthCounts(t *testing.T) {
	vals := uniformData(10000, 1)
	h, err := BuildEquiWidth(vals, 20)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumBuckets() != 20 {
		t.Fatalf("buckets = %d", h.NumBuckets())
	}
	var total float64
	for _, c := range h.Counts {
		total += c
	}
	if total != 10000 {
		t.Fatalf("total count = %g", total)
	}
	// Full range covers everything.
	if got := h.EstimateCount(-1, 101); math.Abs(got-10000) > 1e-9 {
		t.Fatalf("full-range count = %g", got)
	}
}

func TestEquiWidthRangeEstimates(t *testing.T) {
	vals := uniformData(50000, 2)
	h, err := BuildEquiWidth(vals, 50)
	if err != nil {
		t.Fatal(err)
	}
	// On uniform data the estimates should be close to truth.
	exactCount := 0
	var exactSum float64
	for _, v := range vals {
		if v >= 20 && v <= 60 {
			exactCount++
			exactSum += v
		}
	}
	gotCount := h.EstimateCount(20, 60)
	if math.Abs(gotCount-float64(exactCount))/float64(exactCount) > 0.05 {
		t.Fatalf("count %g vs %d", gotCount, exactCount)
	}
	gotSum := h.EstimateSum(20, 60)
	if math.Abs(gotSum-exactSum)/exactSum > 0.05 {
		t.Fatalf("sum %g vs %g", gotSum, exactSum)
	}
	gotAvg := h.EstimateAvg(20, 60)
	if math.Abs(gotAvg-exactSum/float64(exactCount)) > 2 {
		t.Fatalf("avg %g", gotAvg)
	}
}

func TestEquiDepthBucketsBalanced(t *testing.T) {
	// Heavily skewed data: equi-depth adapts, equi-width does not.
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = math.Exp(rng.NormFloat64() * 2)
	}
	h, err := BuildEquiDepth(vals, 25)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range h.Counts {
		if c < 300 || c > 500 {
			t.Fatalf("bucket %d holds %g values; equi-depth should balance", i, c)
		}
	}
}

func TestEquiDepthEstimates(t *testing.T) {
	vals := uniformData(20000, 4)
	h, err := BuildEquiDepth(vals, 40)
	if err != nil {
		t.Fatal(err)
	}
	exact := 0
	for _, v := range vals {
		if v >= 30 && v <= 70 {
			exact++
		}
	}
	got := h.EstimateCount(30, 70)
	if math.Abs(got-float64(exact))/float64(exact) > 0.05 {
		t.Fatalf("count %g vs %d", got, exact)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := BuildEquiWidth(nil, 5); err == nil {
		t.Fatal("want error for empty data")
	}
	if _, err := BuildEquiWidth([]float64{1}, 0); err == nil {
		t.Fatal("want error for zero buckets")
	}
	if _, err := BuildEquiDepth(nil, 5); err == nil {
		t.Fatal("want error for empty data")
	}
}

func TestConstantColumn(t *testing.T) {
	vals := []float64{5, 5, 5, 5}
	h, err := BuildEquiWidth(vals, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.EstimateCount(4, 6); math.Abs(got-4) > 1e-9 {
		t.Fatalf("constant column count = %g", got)
	}
}

func TestSizeBytes(t *testing.T) {
	h, _ := BuildEquiWidth(uniformData(100, 5), 10)
	want := 8 * (11 + 10 + 10)
	if h.SizeBytes() != want {
		t.Fatalf("size = %d, want %d", h.SizeBytes(), want)
	}
}

func TestEstimateAvgEmptyRange(t *testing.T) {
	h, _ := BuildEquiWidth(uniformData(100, 6), 10)
	if !math.IsNaN(h.EstimateAvg(1000, 2000)) {
		t.Fatal("want NaN outside data range")
	}
}

func TestCountMonotoneProperty(t *testing.T) {
	vals := uniformData(5000, 7)
	h, _ := BuildEquiWidth(vals, 32)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lo := rng.Float64() * 100
		hi := lo + rng.Float64()*(100-lo)
		wider := h.EstimateCount(lo-5, hi+5)
		narrower := h.EstimateCount(lo, hi)
		return wider+1e-9 >= narrower
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
