package bloom

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.AddUint64s(uint64(i), uint64(i*7))
	}
	for i := 0; i < 1000; i++ {
		if !f.ContainsUint64s(uint64(i), uint64(i*7)) {
			t.Fatalf("false negative at %d", i)
		}
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	target := 0.01
	f := New(10000, target)
	for i := 0; i < 10000; i++ {
		f.Add([]byte(fmt.Sprintf("member-%d", i)))
	}
	fp := 0
	probes := 20000
	for i := 0; i < probes; i++ {
		if f.Contains([]byte(fmt.Sprintf("nonmember-%d", i))) {
			fp++
		}
	}
	rate := float64(fp) / float64(probes)
	if rate > target*3 {
		t.Fatalf("observed FP rate %.4f far above target %.4f", rate, target)
	}
	if est := f.EstimatedFPRate(); est > target*2 {
		t.Fatalf("estimated FP rate %.4f above target", est)
	}
}

func TestSizeScalesWithTarget(t *testing.T) {
	loose := New(10000, 0.1)
	tight := New(10000, 0.001)
	if tight.SizeBytes() <= loose.SizeBytes() {
		t.Fatalf("tighter target must use more bits: %d vs %d", tight.SizeBytes(), loose.SizeBytes())
	}
}

func TestDegenerateParams(t *testing.T) {
	f := New(0, -1) // clamped internally
	f.Add([]byte("x"))
	if !f.Contains([]byte("x")) {
		t.Fatal("clamped filter broken")
	}
	if f.N() != 1 {
		t.Fatalf("N = %d", f.N())
	}
}

func TestMembershipProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fl := New(100, 0.01)
		keys := make([][]byte, 50)
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("k%d-%d", seed, rng.Int63()))
			fl.Add(keys[i])
		}
		for _, k := range keys {
			if !fl.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
