// Package bloom implements a Bloom filter with double hashing over FNV-1a,
// used by the approximate query layer to encode the set of legal parameter
// combinations (§4.2: "generate a compressed lookup structure (e.g. Bloom
// filters) to encode all legal parameter combinations").
package bloom

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Filter is a fixed-size Bloom filter. Use New to size it for an expected
// element count and target false-positive rate.
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	k    int    // number of hash functions
	n    int    // elements added
}

// New creates a filter sized for expectedN insertions at the given target
// false-positive rate (0 < fpRate < 1). The standard sizing formulas
// m = −n·ln(p)/ln(2)² and k = m/n·ln(2) apply.
func New(expectedN int, fpRate float64) *Filter {
	if expectedN < 1 {
		expectedN = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		fpRate = 0.01
	}
	m := uint64(math.Ceil(-float64(expectedN) * math.Log(fpRate) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(expectedN) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &Filter{bits: make([]uint64, (m+63)/64), m: m, k: k}
}

// hash2 derives two independent 64-bit hashes of key.
func hash2(key []byte) (uint64, uint64) {
	h1 := fnv.New64a()
	h1.Write(key)
	a := h1.Sum64()
	h2 := fnv.New64a()
	var pre [8]byte
	binary.LittleEndian.PutUint64(pre[:], a)
	h2.Write(pre[:])
	h2.Write(key)
	b := h2.Sum64()
	if b%2 == 0 { // keep the stride odd so it cycles all positions
		b++
	}
	return a, b
}

// Add inserts key.
func (f *Filter) Add(key []byte) {
	a, b := hash2(key)
	for i := 0; i < f.k; i++ {
		pos := (a + uint64(i)*b) % f.m
		f.bits[pos/64] |= 1 << (pos % 64)
	}
	f.n++
}

// Contains reports whether key may be present (false positives possible,
// false negatives impossible).
func (f *Filter) Contains(key []byte) bool {
	a, b := hash2(key)
	for i := 0; i < f.k; i++ {
		pos := (a + uint64(i)*b) % f.m
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// AddUint64s inserts a composite integer key.
func (f *Filter) AddUint64s(parts ...uint64) {
	buf := make([]byte, 8*len(parts))
	for i, p := range parts {
		binary.LittleEndian.PutUint64(buf[i*8:], p)
	}
	f.Add(buf)
}

// ContainsUint64s tests a composite integer key.
func (f *Filter) ContainsUint64s(parts ...uint64) bool {
	buf := make([]byte, 8*len(parts))
	for i, p := range parts {
		binary.LittleEndian.PutUint64(buf[i*8:], p)
	}
	return f.Contains(buf)
}

// SizeBytes returns the filter's bit-array footprint.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// N returns the number of inserted elements.
func (f *Filter) N() int { return f.n }

// EstimatedFPRate returns the theoretical false-positive rate at the current
// fill: (1 − e^{−kn/m})^k.
func (f *Filter) EstimatedFPRate() float64 {
	return math.Pow(1-math.Exp(-float64(f.k)*float64(f.n)/float64(f.m)), float64(f.k))
}
