package fit

import (
	"fmt"
	"math"

	"datalaws/internal/stats"
)

// Prediction is a model prediction annotated with uncertainty — the error
// bounds the paper requires for approximate answers ("annotate data
// approximated through the model with an indication of the error that is to
// be expected", §2).
type Prediction struct {
	// Value is the point prediction ŷ.
	Value float64
	// SE is the standard error of the mean response at this input.
	SE float64
	// PredSE includes the residual noise: sqrt(SE² + s²).
	PredSE float64
	// Lo and Hi bound the prediction interval at the requested level.
	Lo, Hi float64
	// Level is the confidence level used for Lo/Hi.
	Level float64
}

// HalfWidth returns the prediction interval half-width.
func (p Prediction) HalfWidth() float64 { return (p.Hi - p.Lo) / 2 }

// Predict evaluates the fitted model at inputs and returns the prediction
// with a level-confidence prediction interval, using the delta method:
// Var(ŷ) ≈ gᵀ·Cov·g with g the parameter gradient at the input point.
func (m *Model) Predict(res *Result, inputs []float64, level float64) (Prediction, error) {
	if len(inputs) != len(m.Inputs) {
		return Prediction{}, fmt.Errorf("%w: %d inputs, want %d", ErrBadInput, len(inputs), len(m.Inputs))
	}
	if level <= 0 || level >= 1 {
		return Prediction{}, fmt.Errorf("%w: level %g outside (0,1)", ErrBadInput, level)
	}
	yhat := m.Eval(res.Params, inputs)
	p := Prediction{Value: yhat, Level: level}

	if res.Cov == nil || res.DF <= 0 {
		p.Lo, p.Hi = math.Inf(-1), math.Inf(1)
		p.SE, p.PredSE = math.NaN(), math.NaN()
		return p, nil
	}
	g := make([]float64, len(m.Params))
	m.Grad(res.Params, inputs, g)
	// gᵀ·Cov·g
	var v float64
	for i := range g {
		for j := range g {
			v += g[i] * res.Cov.At(i, j) * g[j]
		}
	}
	if v < 0 {
		v = 0
	}
	p.SE = math.Sqrt(v)
	p.PredSE = math.Sqrt(v + res.ResidualSE*res.ResidualSE)
	tcrit := stats.StudentT{Nu: float64(res.DF)}.Quantile(0.5 + level/2)
	p.Lo = yhat - tcrit*p.PredSE
	p.Hi = yhat + tcrit*p.PredSE
	return p, nil
}
