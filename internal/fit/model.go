package fit

import (
	"fmt"
	"strings"

	"datalaws/internal/expr"
	"datalaws/internal/mat"
)

// Model is a user-supplied statistical model: a formula "output ~ f(inputs,
// params)" where the free identifiers of the right-hand side that are not
// input columns are the unknown parameters to estimate (§3: "models consist
// of two parts, an arbitrary function of the input variables and various
// constant but unknown parameters").
type Model struct {
	// Output is the response column name (left of "~").
	Output string
	// RHS is the parsed model function.
	RHS expr.Expr
	// Inputs are the identifiers bound to data columns, in declaration
	// order.
	Inputs []string
	// Params are the identifiers to be estimated, sorted.
	Params []string

	// grads[j] is the analytic partial ∂RHS/∂Params[j], when the formula is
	// symbolically differentiable; otherwise nil and fitting falls back to
	// numeric differences.
	grads []expr.Expr
	// linear reports whether RHS is linear in Params, enabling the direct
	// OLS path.
	linear bool

	// Compiled evaluators against rows laid out as params followed by
	// inputs.
	fn      func(row []float64) float64
	gradFns []func(row []float64) float64
}

// ParseModel parses a formula of the form "output ~ expression". inputs
// names the identifiers that will be bound to data columns; every other
// identifier in the expression becomes a model parameter.
func ParseModel(formula string, inputs []string) (*Model, error) {
	parts := strings.SplitN(formula, "~", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("fit: formula %q must have the form \"output ~ expression\"", formula)
	}
	output := strings.TrimSpace(parts[0])
	if output == "" {
		return nil, fmt.Errorf("fit: formula %q has empty output", formula)
	}
	rhs, err := expr.Parse(parts[1])
	if err != nil {
		return nil, fmt.Errorf("fit: parsing model body: %w", err)
	}
	return NewModel(output, rhs, inputs)
}

// NewModel builds a Model from an already parsed right-hand side.
func NewModel(output string, rhs expr.Expr, inputs []string) (*Model, error) {
	inputSet := map[string]bool{}
	for _, in := range inputs {
		inputSet[in] = true
	}
	var params []string
	for _, v := range expr.Vars(rhs) {
		if !inputSet[v] {
			params = append(params, v)
		}
	}
	if len(params) == 0 {
		return nil, fmt.Errorf("fit: model %q has no free parameters", rhs)
	}
	m := &Model{Output: output, RHS: rhs, Inputs: append([]string(nil), inputs...), Params: params}

	index := map[string]int{}
	for j, p := range params {
		index[p] = j
	}
	for k, in := range inputs {
		index[in] = len(params) + k
	}
	fn, err := expr.Compile(rhs, index)
	if err != nil {
		return nil, fmt.Errorf("fit: model body is not numeric: %w", err)
	}
	m.fn = fn

	// Attempt analytic gradients; on failure the numeric Jacobian is used.
	m.grads = make([]expr.Expr, len(params))
	m.gradFns = make([]func([]float64) float64, len(params))
	analytic := true
	for j, p := range params {
		d, err := expr.Diff(rhs, p)
		if err != nil {
			analytic = false
			break
		}
		g, err := expr.Compile(d, index)
		if err != nil {
			analytic = false
			break
		}
		m.grads[j] = d
		m.gradFns[j] = g
	}
	if !analytic {
		m.grads = nil
		m.gradFns = nil
	}

	// Linearity: the model is linear in its parameters iff no partial
	// derivative references any parameter.
	if analytic {
		m.linear = true
		for _, d := range m.grads {
			for _, v := range expr.Vars(d) {
				if _, isParam := index[v]; isParam && index[v] < len(params) {
					m.linear = false
					break
				}
			}
			if !m.linear {
				break
			}
		}
	}
	return m, nil
}

// IsLinear reports whether the model is linear in its parameters, which
// admits the analytic OLS solution of §3 (and the analytic aggregate
// opportunities of §4.2).
func (m *Model) IsLinear() bool { return m.linear }

// HasAnalyticJacobian reports whether symbolic differentiation succeeded.
func (m *Model) HasAnalyticJacobian() bool { return m.gradFns != nil }

// Gradients returns the symbolic partials ∂f/∂param (nil when unavailable).
func (m *Model) Gradients() []expr.Expr { return m.grads }

// Formula renders the model back to "output ~ rhs" source form, the shape
// the model store persists ("store the models in their source code form").
func (m *Model) Formula() string { return m.Output + " ~ " + m.RHS.String() }

// Eval computes f(params, inputs) for one observation.
func (m *Model) Eval(params, inputs []float64) float64 {
	row := make([]float64, len(params)+len(inputs))
	copy(row, params)
	copy(row[len(params):], inputs)
	return m.fn(row)
}

// EvalInto is Eval with a caller-provided scratch row to avoid allocation in
// scan loops. row must have length len(Params)+len(Inputs).
func (m *Model) EvalInto(row, params, inputs []float64) float64 {
	copy(row, params)
	copy(row[len(params):], inputs)
	return m.fn(row)
}

// Grad fills out with the parameter gradient at (params, inputs) using
// analytic derivatives when available and central differences otherwise.
func (m *Model) Grad(params, inputs, out []float64) {
	if m.gradFns != nil {
		row := make([]float64, len(params)+len(inputs))
		copy(row, params)
		copy(row[len(params):], inputs)
		for j, g := range m.gradFns {
			out[j] = g(row)
		}
		return
	}
	numericJacobian(func(p, x []float64) float64 { return m.Eval(p, x) })(params, inputs, out)
}

// modelFunc adapts the model to the NLS interface.
func (m *Model) modelFunc() ModelFunc {
	np := len(m.Params)
	return func(params, x []float64) float64 {
		row := make([]float64, np+len(x))
		copy(row, params)
		copy(row[np:], x)
		return m.fn(row)
	}
}

func (m *Model) jacFunc() JacFunc {
	if m.gradFns == nil {
		return nil
	}
	np := len(m.Params)
	return func(params, x, grad []float64) {
		row := make([]float64, np+len(x))
		copy(row, params)
		copy(row[np:], x)
		for j, g := range m.gradFns {
			grad[j] = g(row)
		}
	}
}

// Fit estimates the model parameters from columnar data. data must contain
// the output column and every input column, all of equal length. start maps
// parameter names to starting values (missing entries default to 1, which
// the caller — per the paper, the user — is responsible for overriding when
// convergence demands it).
//
// Linear-in-parameters models are solved directly by OLS on the analytic
// design matrix; nonlinear models run Levenberg-Marquardt (or the method in
// opts) seeded from start.
func (m *Model) Fit(data map[string][]float64, start map[string]float64, opts *NLSOptions) (*Result, error) {
	y, ok := data[m.Output]
	if !ok {
		return nil, fmt.Errorf("%w: missing output column %q", ErrBadInput, m.Output)
	}
	n := len(y)
	xs := make([][]float64, n)
	inputCols := make([][]float64, len(m.Inputs))
	for k, in := range m.Inputs {
		c, ok := data[in]
		if !ok {
			return nil, fmt.Errorf("%w: missing input column %q", ErrBadInput, in)
		}
		if len(c) != n {
			return nil, fmt.Errorf("%w: column %q has %d rows, want %d", ErrBadInput, in, len(c), n)
		}
		inputCols[k] = c
	}
	for i := 0; i < n; i++ {
		row := make([]float64, len(m.Inputs))
		for k := range m.Inputs {
			row[k] = inputCols[k][i]
		}
		xs[i] = row
	}
	return m.FitRows(xs, y, start, opts)
}

// FitRows is Fit on row-major inputs, used by grouped fitting to avoid
// re-slicing columns.
func (m *Model) FitRows(xs [][]float64, y []float64, start map[string]float64, opts *NLSOptions) (*Result, error) {
	if m.linear {
		return m.fitLinear(xs, y)
	}
	s := make([]float64, len(m.Params))
	for j, p := range m.Params {
		if v, ok := start[p]; ok {
			s[j] = v
		} else {
			s[j] = 1
		}
	}
	o := opts.withDefaults()
	if o.Jacobian == nil {
		o.Jacobian = m.jacFunc()
	}
	return NLS(m.modelFunc(), xs, y, s, m.Params, &o)
}

// fitLinear solves a linear-in-parameters model directly. Writing
// f(β, x) = f(0, x) + Σ βj·gj(x) with gj = ∂f/∂βj, OLS on the gj columns
// against y − f(0, x) yields the exact least-squares estimate.
func (m *Model) fitLinear(xs [][]float64, y []float64) (*Result, error) {
	n := len(y)
	p := len(m.Params)
	if n <= p {
		return nil, fmt.Errorf("%w: n=%d, p=%d", ErrTooFewObservations, n, p)
	}
	zero := make([]float64, p)
	design := make([][]float64, n)
	adj := make([]float64, n)
	grad := make([]float64, p)
	hasIntercept := false
	for i := 0; i < n; i++ {
		m.Grad(zero, xs[i], grad)
		row := append([]float64(nil), grad...)
		design[i] = row
		adj[i] = y[i] - m.Eval(zero, xs[i])
	}
	// Detect a constant design column, which plays the intercept role.
	for j := 0; j < p; j++ {
		constant := true
		for i := 1; i < n; i++ {
			if design[i][j] != design[0][j] {
				constant = false
				break
			}
		}
		if constant && design[0][j] != 0 {
			hasIntercept = true
			break
		}
	}
	x, err := mat.NewFromRows(design)
	if err != nil {
		return nil, err
	}
	res, err := OLS(x, adj, m.Params, hasIntercept)
	if err != nil {
		return nil, err
	}
	// Restore fitted/residuals on the original y scale.
	for i := range res.Fitted {
		res.Fitted[i] = m.Eval(res.Params, xs[i])
		res.Residuals[i] = y[i] - res.Fitted[i]
	}
	return res, nil
}
