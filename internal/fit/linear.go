package fit

import (
	"fmt"
	"math"

	"datalaws/internal/mat"
)

// OLS fits the linear model y = Xβ + ε by ordinary least squares using a
// Householder QR factorization (the analytic solution of §3, computed
// stably rather than through the normal equations). names labels the columns
// of x; hasIntercept should be true when the first column of x is constant 1
// so that R² and the F-test are reported against the correct null model.
func OLS(x *mat.Matrix, y []float64, names []string, hasIntercept bool) (*Result, error) {
	if x.Rows != len(y) {
		return nil, fmt.Errorf("%w: %d design rows vs %d responses", ErrBadInput, x.Rows, len(y))
	}
	if len(names) != x.Cols {
		return nil, fmt.Errorf("%w: %d names for %d columns", ErrBadInput, len(names), x.Cols)
	}
	if x.Rows <= x.Cols {
		return nil, fmt.Errorf("%w: n=%d, p=%d", ErrTooFewObservations, x.Rows, x.Cols)
	}
	if err := checkFinite(y); err != nil {
		return nil, err
	}
	if err := checkFinite(x.Data); err != nil {
		return nil, err
	}
	f, err := mat.Factor(x)
	if err != nil {
		return nil, err
	}
	beta, err := f.Solve(y)
	if err != nil {
		return nil, err
	}
	fitted, err := x.MulVec(beta)
	if err != nil {
		return nil, err
	}
	r := &Result{
		ParamNames: append([]string(nil), names...),
		Params:     beta,
		Converged:  true,
	}
	finishResult(r, y, fitted, f, hasIntercept)
	return r, nil
}

// WLS fits y = Xβ + ε with per-observation weights w (inverse-variance
// weights), by rescaling rows with √w and delegating to the QR solver.
func WLS(x *mat.Matrix, y, w []float64, names []string, hasIntercept bool) (*Result, error) {
	if len(w) != len(y) || x.Rows != len(y) {
		return nil, fmt.Errorf("%w: inconsistent lengths", ErrBadInput)
	}
	xs := x.Clone()
	ys := make([]float64, len(y))
	for i, wi := range w {
		if wi < 0 || math.IsNaN(wi) {
			return nil, fmt.Errorf("%w: negative or NaN weight at %d", ErrBadInput, i)
		}
		s := math.Sqrt(wi)
		ys[i] = y[i] * s
		for j := 0; j < x.Cols; j++ {
			xs.Set(i, j, x.At(i, j)*s)
		}
	}
	res, err := OLS(xs, ys, names, hasIntercept)
	if err != nil {
		return nil, err
	}
	// Report residuals and fitted values on the original scale.
	fitted, err := x.MulVec(res.Params)
	if err != nil {
		return nil, err
	}
	for i := range fitted {
		res.Fitted[i] = fitted[i]
		res.Residuals[i] = y[i] - fitted[i]
	}
	return res, nil
}

// PolynomialDesign builds the Vandermonde design matrix
// [1, x, x², …, x^degree] used for polynomial regression (the model class of
// FunctionDB, one of the paper's comparison systems).
func PolynomialDesign(xs []float64, degree int) (*mat.Matrix, []string) {
	m := mat.New(len(xs), degree+1)
	names := make([]string, degree+1)
	for j := 0; j <= degree; j++ {
		if j == 0 {
			names[j] = "(intercept)"
		} else if j == 1 {
			names[j] = "x"
		} else {
			names[j] = fmt.Sprintf("x^%d", j)
		}
	}
	for i, x := range xs {
		v := 1.0
		for j := 0; j <= degree; j++ {
			m.Set(i, j, v)
			v *= x
		}
	}
	return m, names
}

// Design builds a design matrix from named columns plus an optional
// intercept; the returned names align with the matrix columns.
func Design(cols map[string][]float64, order []string, intercept bool) (*mat.Matrix, []string, error) {
	if len(order) == 0 {
		return nil, nil, fmt.Errorf("%w: no design columns", ErrBadInput)
	}
	n := -1
	for _, name := range order {
		c, ok := cols[name]
		if !ok {
			return nil, nil, fmt.Errorf("%w: missing column %q", ErrBadInput, name)
		}
		if n == -1 {
			n = len(c)
		} else if len(c) != n {
			return nil, nil, fmt.Errorf("%w: column %q has %d rows, want %d", ErrBadInput, name, len(c), n)
		}
	}
	p := len(order)
	off := 0
	if intercept {
		p++
		off = 1
	}
	m := mat.New(n, p)
	names := make([]string, p)
	if intercept {
		names[0] = "(intercept)"
		for i := 0; i < n; i++ {
			m.Set(i, 0, 1)
		}
	}
	for j, name := range order {
		names[off+j] = name
		c := cols[name]
		for i := 0; i < n; i++ {
			m.Set(i, off+j, c[i])
		}
	}
	return m, names, nil
}
