package fit

import (
	"math"
	"math/rand"
	"testing"
)

func TestPiecewisePolyFitsSmoothCurve(t *testing.T) {
	// A sine over one period: a global line fails, piecewise cubics track it.
	rng := rand.New(rand.NewSource(1))
	n := 800
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := float64(i) / float64(n) * 2 * math.Pi
		xs[i] = x
		ys[i] = math.Sin(x) + 0.02*rng.NormFloat64()
	}
	p, err := FitPiecewisePoly(xs, ys, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.R2() < 0.99 {
		t.Fatalf("piecewise R² = %g", p.R2())
	}
	// Pointwise accuracy.
	for _, x := range []float64{0.5, 1.5, 3.0, 5.0} {
		if d := math.Abs(p.Eval(x) - math.Sin(x)); d > 0.05 {
			t.Fatalf("Eval(%g) off by %g", x, d)
		}
	}
}

func TestPiecewiseBeatsGlobalLineOnNonlinearData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 600
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := float64(i) / float64(n) * 10
		xs[i] = x
		ys[i] = math.Exp(-x/3)*math.Cos(2*x) + 0.01*rng.NormFloat64()
	}
	pw, err := FitPiecewisePoly(xs, ys, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	design, names := PolynomialDesign(xs, 1)
	line, err := OLS(design, ys, names, true)
	if err != nil {
		t.Fatal(err)
	}
	if pw.R2() <= line.R2 {
		t.Fatalf("piecewise R² %g not above line R² %g", pw.R2(), line.R2)
	}
}

func TestPiecewiseErrors(t *testing.T) {
	if _, err := FitPiecewisePoly([]float64{1, 2}, []float64{1}, 2, 1); err == nil {
		t.Fatal("want length error")
	}
	if _, err := FitPiecewisePoly([]float64{1, 2, 3}, []float64{1, 2, 3}, 0, 1); err == nil {
		t.Fatal("want segment error")
	}
	if _, err := FitPiecewisePoly([]float64{1, 2, 3}, []float64{1, 2, 3}, 1, 5); err == nil {
		t.Fatal("want too-few-observations error")
	}
}

func TestPiecewiseConstantData(t *testing.T) {
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 7
	}
	p, err := FitPiecewisePoly(xs, ys, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Eval(25)-7) > 1e-9 {
		t.Fatalf("Eval = %g", p.Eval(25))
	}
	if p.R2() != 1 {
		t.Fatalf("R² = %g for perfectly explained constant data", p.R2())
	}
}

func TestPiecewiseSparseSegmentsFallBack(t *testing.T) {
	// All data in the left half: right-half segments have no points, Eval
	// there falls back to the nearest fitted segment.
	xs := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 5.0}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 * x
	}
	p, err := FitPiecewisePoly(xs, ys, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(p.Eval(3.0)) {
		t.Fatal("Eval in sparse region returned NaN")
	}
	if p.ParamBytes() <= 0 {
		t.Fatal("ParamBytes")
	}
}
