package fit

import (
	"fmt"
	"math"

	"datalaws/internal/mat"
)

// ModelFunc evaluates a model at one observation: params are the current
// parameter estimates, x the input values for the observation.
type ModelFunc func(params, x []float64) float64

// JacFunc fills grad with ∂f/∂params at one observation.
type JacFunc func(params, x, grad []float64)

// Method selects the nonlinear optimizer.
type Method uint8

// Optimizer methods. Levenberg-Marquardt is the default: it is Gauss-Newton
// with adaptive damping, so it degrades gracefully when the Gauss-Newton step
// overshoots — the convergence fragility the paper warns about in §3.
const (
	LevenbergMarquardt Method = iota
	GaussNewton
)

func (m Method) String() string {
	if m == GaussNewton {
		return "gauss-newton"
	}
	return "levenberg-marquardt"
}

// NLSOptions configures the nonlinear solver. The zero value selects
// Levenberg-Marquardt with sensible defaults.
type NLSOptions struct {
	Method   Method
	MaxIter  int     // default 100
	TolRSS   float64 // relative RSS improvement threshold, default 1e-10
	TolStep  float64 // relative parameter step threshold, default 1e-10
	Jacobian JacFunc // analytic Jacobian; nil selects central differences
	// Levenberg-Marquardt damping schedule.
	LambdaInit, LambdaUp, LambdaDown float64 // defaults 1e-3, 10, 0.1
}

func (o *NLSOptions) withDefaults() NLSOptions {
	out := NLSOptions{}
	if o != nil {
		out = *o
	}
	if out.MaxIter == 0 {
		out.MaxIter = 100
	}
	if out.TolRSS == 0 {
		out.TolRSS = 1e-10
	}
	if out.TolStep == 0 {
		out.TolStep = 1e-10
	}
	if out.LambdaInit == 0 {
		out.LambdaInit = 1e-3
	}
	if out.LambdaUp == 0 {
		out.LambdaUp = 10
	}
	if out.LambdaDown == 0 {
		out.LambdaDown = 0.1
	}
	return out
}

// NLS fits a nonlinear least-squares model f(β, x) ≈ y starting from start.
// xs holds one input row per observation. names labels the parameters.
//
// Gauss-Newton solves min‖J·δ − r‖ each step via QR; Levenberg-Marquardt
// augments the system with the damped rows √λ·diag(JᵀJ)^½ and adapts λ,
// accepting only steps that reduce the residual sum of squares.
func NLS(f ModelFunc, xs [][]float64, y []float64, start []float64, names []string, opts *NLSOptions) (*Result, error) {
	o := opts.withDefaults()
	n, p := len(y), len(start)
	if len(xs) != n {
		return nil, fmt.Errorf("%w: %d input rows vs %d responses", ErrBadInput, len(xs), n)
	}
	if len(names) != p {
		return nil, fmt.Errorf("%w: %d names for %d params", ErrBadInput, len(names), p)
	}
	if n <= p {
		return nil, fmt.Errorf("%w: n=%d, p=%d", ErrTooFewObservations, n, p)
	}
	if err := checkFinite(y); err != nil {
		return nil, err
	}
	if err := checkFinite(start); err != nil {
		return nil, err
	}

	beta := append([]float64(nil), start...)
	resid := make([]float64, n)
	rss := residuals(f, beta, xs, y, resid)
	if math.IsNaN(rss) || math.IsInf(rss, 0) {
		return nil, fmt.Errorf("%w: model not finite at starting parameters", ErrBadInput)
	}
	jac := o.Jacobian
	if jac == nil {
		jac = numericJacobian(f)
	}

	lambda := o.LambdaInit
	if o.Method == GaussNewton {
		lambda = 0
	}
	var iter int
	converged := false
	grad := make([]float64, p)
	trial := make([]float64, p)
	trialResid := make([]float64, n)

	for iter = 1; iter <= o.MaxIter; iter++ {
		// Build the Jacobian J (n×p) of the model, so residual Jacobian is −J.
		j := mat.New(n, p)
		for i := 0; i < n; i++ {
			jac(beta, xs[i], grad)
			copy(j.Data[i*p:(i+1)*p], grad)
		}

		var step []float64
		var err error
		if o.Method == GaussNewton {
			step, err = mat.SolveLS(j, resid)
			if err != nil {
				return nil, fmt.Errorf("fit: gauss-newton step failed at iteration %d: %w", iter, err)
			}
		} else {
			step, err = lmStep(j, resid, lambda)
			if err != nil {
				// Increase damping and retry on singular systems.
				lambda *= o.LambdaUp
				continue
			}
		}

		for k := range trial {
			trial[k] = beta[k] + step[k]
		}
		newRSS := residuals(f, trial, xs, y, trialResid)

		accepted := !math.IsNaN(newRSS) && !math.IsInf(newRSS, 0) && newRSS <= rss
		if o.Method == GaussNewton {
			// Classic Gauss-Newton always takes the step; divergence
			// surfaces as non-convergence.
			if math.IsNaN(newRSS) || math.IsInf(newRSS, 0) {
				return nil, fmt.Errorf("%w: diverged at iteration %d", ErrNoConverge, iter)
			}
			accepted = true
		}
		if accepted {
			relImprove := 0.0
			if rss > 0 {
				relImprove = (rss - newRSS) / rss
			}
			relStep := relativeStep(step, beta)
			copy(beta, trial)
			copy(resid, trialResid)
			rss = newRSS
			lambda *= o.LambdaDown
			if lambda < 1e-12 {
				lambda = 1e-12
			}
			if relImprove >= 0 && relImprove < o.TolRSS || relStep < o.TolStep {
				converged = true
				break
			}
		} else {
			// A rejected step that is already below the step tolerance means
			// the optimizer cannot move: more damping only shrinks it
			// further. Declaring convergence here (MINPACK's xtol on the
			// trial step) is what makes warm-started refits cheap — a fit
			// seeded at the previous optimum stops after one Jacobian build
			// instead of climbing the damping ladder to saturation.
			if relativeStep(step, beta) < o.TolStep {
				converged = true
				break
			}
			lambda *= o.LambdaUp
			if lambda > 1e12 {
				// Damping saturated: we are at a (possibly local) minimum.
				converged = true
				break
			}
		}
	}

	if !converged {
		return nil, fmt.Errorf("%w after %d iterations (rss=%g)", ErrNoConverge, o.MaxIter, rss)
	}

	// Final Jacobian at the solution for the covariance estimate.
	j := mat.New(n, p)
	for i := 0; i < n; i++ {
		jac(beta, xs[i], grad)
		copy(j.Data[i*p:(i+1)*p], grad)
	}
	fitted := make([]float64, n)
	for i := 0; i < n; i++ {
		fitted[i] = f(beta, xs[i])
	}
	var fqr *mat.QR
	if q, err := mat.Factor(j); err == nil {
		fqr = q
	}
	r := &Result{
		ParamNames: append([]string(nil), names...),
		Params:     beta,
		Converged:  true,
		Iterations: iter,
		Lambda:     lambda,
	}
	finishResult(r, y, fitted, fqr, false)
	return r, nil
}

// residuals fills out with y − f(β, x) and returns the RSS.
func residuals(f ModelFunc, beta []float64, xs [][]float64, y []float64, out []float64) float64 {
	var rss float64
	for i := range y {
		r := y[i] - f(beta, xs[i])
		out[i] = r
		rss += r * r
	}
	return rss
}

func relativeStep(step, beta []float64) float64 {
	var m float64
	for k := range step {
		d := math.Abs(step[k]) / (math.Abs(beta[k]) + 1e-12)
		if d > m {
			m = d
		}
	}
	return m
}

// numericJacobian returns a central-difference Jacobian for f.
func numericJacobian(f ModelFunc) JacFunc {
	return func(params, x, grad []float64) {
		tmp := append([]float64(nil), params...)
		for j := range params {
			h := 1e-7 * (math.Abs(params[j]) + 1e-7)
			tmp[j] = params[j] + h
			fp := f(tmp, x)
			tmp[j] = params[j] - h
			fm := f(tmp, x)
			tmp[j] = params[j]
			grad[j] = (fp - fm) / (2 * h)
		}
	}
}

// lmStep solves the damped system (JᵀJ + λ·diag(JᵀJ))·δ = Jᵀr by augmenting
// the least-squares problem with scaled unit rows, preserving QR stability.
func lmStep(j *mat.Matrix, resid []float64, lambda float64) ([]float64, error) {
	n, p := j.Rows, j.Cols
	if lambda == 0 {
		return mat.SolveLS(j, resid)
	}
	// Column norms give diag(JᵀJ).
	diag := make([]float64, p)
	for c := 0; c < p; c++ {
		var s float64
		for i := 0; i < n; i++ {
			v := j.At(i, c)
			s += v * v
		}
		// Guard zero columns so the augmented matrix keeps full rank.
		if s == 0 {
			s = 1e-12
		}
		diag[c] = s
	}
	aug := mat.New(n+p, p)
	copy(aug.Data[:n*p], j.Data)
	for c := 0; c < p; c++ {
		aug.Set(n+c, c, math.Sqrt(lambda*diag[c]))
	}
	rhs := make([]float64, n+p)
	copy(rhs, resid)
	return mat.SolveLS(aug, rhs)
}
