package fit

import (
	"fmt"
	"math"

	"datalaws/internal/stats"
)

// PiecewisePoly is a FunctionDB-style model (Thiagarajan & Madden, SIGMOD
// 2008, one of the paper's comparison systems): the input range is split
// into segments and a low-degree polynomial is fitted per segment by OLS.
// It serves as the fixed-model-class baseline the paper argues user models
// should outgrow.
type PiecewisePoly struct {
	// Breaks are the segment boundaries, len(Segments)+1 of them, covering
	// [Breaks[0], Breaks[len]]; segment i spans [Breaks[i], Breaks[i+1]).
	Breaks []float64
	// Degree is the per-segment polynomial degree.
	Degree int
	// Segments hold the per-segment fits (nil where a segment had too few
	// points; Eval falls back to the nearest fitted neighbour).
	Segments []*Result

	rss, tss float64
	ymean    float64
	n        int
}

// FitPiecewisePoly fits a piecewise polynomial with equal-width segments
// over the x range.
func FitPiecewisePoly(x, y []float64, segments, degree int) (*PiecewisePoly, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("%w: %d x vs %d y", ErrBadInput, len(x), len(y))
	}
	if segments < 1 || degree < 0 {
		return nil, fmt.Errorf("%w: segments=%d degree=%d", ErrBadInput, segments, degree)
	}
	if len(x) <= (degree+2)*1 {
		return nil, fmt.Errorf("%w: %d points for degree %d", ErrTooFewObservations, len(x), degree)
	}
	lo, hi := stats.MinMax(x)
	if math.IsNaN(lo) || hi == lo {
		hi = lo + 1
	}
	p := &PiecewisePoly{
		Breaks:   make([]float64, segments+1),
		Degree:   degree,
		Segments: make([]*Result, segments),
		n:        len(x),
	}
	w := (hi - lo) / float64(segments)
	for i := 0; i <= segments; i++ {
		p.Breaks[i] = lo + float64(i)*w
	}
	// Partition points by segment.
	segX := make([][]float64, segments)
	segY := make([][]float64, segments)
	for i := range x {
		s := p.segmentOf(x[i])
		segX[s] = append(segX[s], x[i])
		segY[s] = append(segY[s], y[i])
	}
	ymean := stats.Mean(y)
	p.ymean = ymean
	for _, v := range y {
		p.tss += (v - ymean) * (v - ymean)
	}
	for s := 0; s < segments; s++ {
		if len(segX[s]) <= degree+1 {
			// Too few points: account residuals against the global mean.
			for _, v := range segY[s] {
				p.rss += (v - ymean) * (v - ymean)
			}
			continue
		}
		design, names := PolynomialDesign(segX[s], degree)
		res, err := OLS(design, segY[s], names, true)
		if err != nil {
			for _, v := range segY[s] {
				p.rss += (v - ymean) * (v - ymean)
			}
			continue
		}
		p.Segments[s] = res
		p.rss += res.RSS
	}
	return p, nil
}

func (p *PiecewisePoly) segmentOf(x float64) int {
	n := len(p.Segments)
	w := (p.Breaks[n] - p.Breaks[0]) / float64(n)
	s := int((x - p.Breaks[0]) / w)
	if s < 0 {
		s = 0
	}
	if s >= n {
		s = n - 1
	}
	return s
}

// Eval evaluates the piecewise polynomial at x; unfitted segments fall back
// to the nearest fitted one.
func (p *PiecewisePoly) Eval(x float64) float64 {
	s := p.segmentOf(x)
	res := p.Segments[s]
	if res == nil {
		// Nearest fitted neighbour.
		for d := 1; d < len(p.Segments); d++ {
			if s-d >= 0 && p.Segments[s-d] != nil {
				res = p.Segments[s-d]
				break
			}
			if s+d < len(p.Segments) && p.Segments[s+d] != nil {
				res = p.Segments[s+d]
				break
			}
		}
		if res == nil {
			return math.NaN()
		}
	}
	v := 0.0
	pow := 1.0
	for _, c := range res.Params {
		v += c * pow
		pow *= x
	}
	return v
}

// R2 is the global coefficient of determination across all segments.
// Constant responses count as perfectly explained when the residuals are
// zero to working precision.
func (p *PiecewisePoly) R2() float64 {
	if p.tss == 0 {
		scale := 1 + math.Abs(p.ymean)
		if math.Sqrt(p.rss/float64(p.n)) < 1e-9*scale {
			return 1
		}
		return 0
	}
	return 1 - p.rss/p.tss
}

// ParamBytes is the storage footprint: breaks plus per-segment coefficient
// vectors.
func (p *PiecewisePoly) ParamBytes() int {
	n := 8 * len(p.Breaks)
	for _, s := range p.Segments {
		if s != nil {
			n += 8 * len(s.Params)
		}
	}
	return n
}
