package fit

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"datalaws/internal/mat"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// --- OLS ---

func TestOLSRecoversKnownCoefficients(t *testing.T) {
	// y = 3 + 2x, exact.
	xs := make([]float64, 40)
	ys := make([]float64, 40)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 3 + 2*xs[i]
	}
	x, names := PolynomialDesign(xs, 1)
	res, err := OLS(x, ys, names, true)
	if err != nil {
		t.Fatal(err)
	}
	if !near(res.Params[0], 3, 1e-10) || !near(res.Params[1], 2, 1e-10) {
		t.Fatalf("params = %v", res.Params)
	}
	if !near(res.R2, 1, 1e-12) {
		t.Fatalf("R2 = %g, want 1", res.R2)
	}
	if res.ResidualSE > 1e-9 {
		t.Fatalf("residual SE = %g, want ≈0", res.ResidualSE)
	}
}

func TestOLSAgainstRReference(t *testing.T) {
	// Small dataset checked by hand with the closed-form simple-regression
	// formulas: slope = (nΣxy − ΣxΣy)/(nΣx² − (Σx)²) = 670/336,
	// intercept = ȳ − slope·x̄ = 9.0125 − (670/336)·4.5.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ys := []float64{2.1, 3.9, 6.2, 7.8, 10.1, 11.9, 14.2, 15.9}
	x, names := PolynomialDesign(xs, 1)
	res, err := OLS(x, ys, names, true)
	if err != nil {
		t.Fatal(err)
	}
	wantSlope := 670.0 / 336.0
	wantIntercept := 9.0125 - wantSlope*4.5
	if !near(res.Params[0], wantIntercept, 1e-10) {
		t.Fatalf("intercept = %.10f, want %.10f", res.Params[0], wantIntercept)
	}
	if !near(res.Params[1], wantSlope, 1e-10) {
		t.Fatalf("slope = %.10f, want %.10f", res.Params[1], wantSlope)
	}
	if res.DF != 6 {
		t.Fatalf("df = %d, want 6", res.DF)
	}
	// This near-linear data must explain essentially all variance.
	if res.R2 < 0.998 {
		t.Fatalf("R2 = %g", res.R2)
	}
	// Slope p-value must be tiny, intercept insignificant.
	if res.PVals[1] > 1e-8 {
		t.Fatalf("slope p = %g", res.PVals[1])
	}
	if res.PVals[0] < 0.05 {
		t.Fatalf("intercept p = %g, want insignificant", res.PVals[0])
	}
}

func TestOLSErrors(t *testing.T) {
	x := mat.New(3, 3)
	if _, err := OLS(x, []float64{1, 2, 3}, []string{"a", "b", "c"}, false); !errors.Is(err, ErrTooFewObservations) {
		t.Fatalf("want ErrTooFewObservations, got %v", err)
	}
	x2 := mat.New(4, 2)
	if _, err := OLS(x2, []float64{1, 2, 3}, []string{"a", "b"}, false); !errors.Is(err, ErrBadInput) {
		t.Fatalf("want ErrBadInput, got %v", err)
	}
	if _, err := OLS(x2, []float64{1, 2, 3, math.NaN()}, []string{"a", "b"}, false); !errors.Is(err, ErrBadInput) {
		t.Fatalf("want ErrBadInput for NaN, got %v", err)
	}
}

func TestOLSResidualsSumToZeroWithIntercept(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 10
			ys[i] = 1 + 0.5*xs[i] + rng.NormFloat64()
		}
		x, names := PolynomialDesign(xs, 1)
		res, err := OLS(x, ys, names, true)
		if err != nil {
			return false
		}
		var s float64
		for _, r := range res.Residuals {
			s += r
		}
		return math.Abs(s) < 1e-8*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWLSMatchesOLSWithUnitWeights(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{1.1, 2.3, 2.8, 4.2, 5.1, 5.8}
	x, names := PolynomialDesign(xs, 1)
	w := []float64{1, 1, 1, 1, 1, 1}
	a, err := OLS(x, ys, names, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := WLS(x, ys, w, names, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Params {
		if !near(a.Params[i], b.Params[i], 1e-12) {
			t.Fatalf("WLS(1) != OLS: %v vs %v", b.Params, a.Params)
		}
	}
}

func TestWLSDownweightsOutlier(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{1, 2, 3, 4, 5, 60} // gross outlier at the end
	x, names := PolynomialDesign(xs, 1)
	w := []float64{1, 1, 1, 1, 1, 1e-9}
	res, err := WLS(x, ys, w, names, true)
	if err != nil {
		t.Fatal(err)
	}
	if !near(res.Params[0], 0, 1e-5) || !near(res.Params[1], 1, 1e-5) {
		t.Fatalf("weighted fit = %v, want ≈[0 1]", res.Params)
	}
}

func TestWLSRejectsNegativeWeight(t *testing.T) {
	x, names := PolynomialDesign([]float64{1, 2, 3}, 1)
	if _, err := WLS(x, []float64{1, 2, 3}, []float64{1, -1, 1}, names, true); err == nil {
		t.Fatal("want error for negative weight")
	}
}

// --- NLS ---

func powerLaw(params, x []float64) float64 {
	return params[0] * math.Pow(x[0], params[1])
}

func makePowerLawData(rng *rand.Rand, p, alpha float64, n int, noise float64) ([][]float64, []float64) {
	bands := []float64{0.12, 0.15, 0.16, 0.18}
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		nu := bands[i%len(bands)]
		xs[i] = []float64{nu}
		ys[i] = p * math.Pow(nu, alpha) * (1 + noise*rng.NormFloat64())
	}
	return xs, ys
}

func TestNLSPowerLawLM(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs, ys := makePowerLawData(rng, 0.06, -0.7, 200, 0.05)
	res, err := NLS(powerLaw, xs, ys, []float64{1, -1}, []string{"p", "alpha"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	if !near(res.Params[0], 0.06, 0.01) || !near(res.Params[1], -0.7, 0.1) {
		t.Fatalf("params = %v, want ≈[0.06 -0.7]", res.Params)
	}
	if res.R2 < 0.5 {
		t.Fatalf("R2 = %g", res.R2)
	}
}

func TestNLSPowerLawGaussNewton(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs, ys := makePowerLawData(rng, 0.06, -0.7, 100, 0.02)
	res, err := NLS(powerLaw, xs, ys, []float64{0.1, -0.5}, []string{"p", "alpha"},
		&NLSOptions{Method: GaussNewton})
	if err != nil {
		t.Fatal(err)
	}
	if !near(res.Params[0], 0.06, 0.01) || !near(res.Params[1], -0.7, 0.1) {
		t.Fatalf("params = %v", res.Params)
	}
}

func TestNLSExactDataZeroResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs, ys := makePowerLawData(rng, 0.5, -1.2, 50, 0)
	res, err := NLS(powerLaw, xs, ys, []float64{1, -1}, []string{"p", "alpha"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !near(res.Params[0], 0.5, 1e-6) || !near(res.Params[1], -1.2, 1e-6) {
		t.Fatalf("params = %v", res.Params)
	}
	if res.RSS > 1e-12 {
		t.Fatalf("RSS = %g", res.RSS)
	}
}

func TestNLSAnalyticJacobianMatchesNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs, ys := makePowerLawData(rng, 0.06, -0.7, 120, 0.03)
	analytic := func(params, x, grad []float64) {
		grad[0] = math.Pow(x[0], params[1])
		grad[1] = params[0] * math.Pow(x[0], params[1]) * math.Log(x[0])
	}
	a, err := NLS(powerLaw, xs, ys, []float64{1, -1}, []string{"p", "alpha"},
		&NLSOptions{Jacobian: analytic})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NLS(powerLaw, xs, ys, []float64{1, -1}, []string{"p", "alpha"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Params {
		if !near(a.Params[i], b.Params[i], 1e-5) {
			t.Fatalf("analytic %v vs numeric %v", a.Params, b.Params)
		}
	}
}

func TestNLSErrors(t *testing.T) {
	xs := [][]float64{{1}, {2}}
	ys := []float64{1, 2}
	if _, err := NLS(powerLaw, xs, ys, []float64{1, 1}, []string{"p", "a"}, nil); !errors.Is(err, ErrTooFewObservations) {
		t.Fatalf("want ErrTooFewObservations, got %v", err)
	}
	if _, err := NLS(powerLaw, xs, []float64{1, 2, 3}, []float64{1}, []string{"p"}, nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("want ErrBadInput, got %v", err)
	}
}

func TestNLSNonFiniteStart(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}, {4}}
	ys := []float64{1, 2, 3, 4}
	if _, err := NLS(powerLaw, xs, ys, []float64{math.NaN(), 1}, []string{"p", "a"}, nil); err == nil {
		t.Fatal("want error for NaN start")
	}
}

// --- Model (formula-driven) ---

func TestParseModelPowerLaw(t *testing.T) {
	m, err := ParseModel("intensity ~ p * pow(nu, alpha)", []string{"nu"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Output != "intensity" {
		t.Fatalf("output = %q", m.Output)
	}
	if len(m.Params) != 2 || m.Params[0] != "alpha" || m.Params[1] != "p" {
		t.Fatalf("params = %v", m.Params)
	}
	if m.IsLinear() {
		t.Fatal("power law must not be detected linear")
	}
	if !m.HasAnalyticJacobian() {
		t.Fatal("power law should have analytic jacobian")
	}
}

func TestParseModelErrors(t *testing.T) {
	if _, err := ParseModel("no tilde here", nil); err == nil {
		t.Fatal("want error for missing ~")
	}
	if _, err := ParseModel("y ~ x + 1", []string{"x"}); err == nil {
		t.Fatal("want error for parameterless model")
	}
	if _, err := ParseModel("y ~ $$", []string{"x"}); err == nil {
		t.Fatal("want parse error")
	}
}

func TestModelLinearDetection(t *testing.T) {
	cases := []struct {
		formula string
		inputs  []string
		linear  bool
	}{
		{"y ~ a + b*x", []string{"x"}, true},
		{"y ~ a + b*x + c*x*x", []string{"x"}, true},
		{"y ~ a*exp(x) + b", []string{"x"}, true}, // linear in a,b
		{"y ~ a*exp(b*x)", []string{"x"}, false},
		{"y ~ p * pow(nu, alpha)", []string{"nu"}, false},
		{"y ~ a + b*log(x)", []string{"x"}, true},
	}
	for _, c := range cases {
		m, err := ParseModel(c.formula, c.inputs)
		if err != nil {
			t.Fatalf("%q: %v", c.formula, err)
		}
		if m.IsLinear() != c.linear {
			t.Errorf("%q: IsLinear = %v, want %v", c.formula, m.IsLinear(), c.linear)
		}
	}
}

func TestModelFitLinearFormula(t *testing.T) {
	// y = 2 + 3x − 0.5x², fitted through the formula path.
	m, err := ParseModel("y ~ a + b*x + c*x*x", []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	n := 60
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := float64(i) * 0.2
		xs[i] = x
		ys[i] = 2 + 3*x - 0.5*x*x
	}
	res, err := m.Fit(map[string][]float64{"x": xs, "y": ys}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for i, nme := range res.ParamNames {
		got[nme] = res.Params[i]
	}
	if !near(got["a"], 2, 1e-8) || !near(got["b"], 3, 1e-8) || !near(got["c"], -0.5, 1e-8) {
		t.Fatalf("params = %v", got)
	}
	if res.Iterations != 0 {
		t.Fatalf("linear model must not iterate, got %d", res.Iterations)
	}
}

func TestModelFitNonlinearFormula(t *testing.T) {
	m, err := ParseModel("I ~ p * pow(nu, alpha)", []string{"nu"})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	xs, ys := makePowerLawData(rng, 0.06, -0.7, 160, 0.05)
	nus := make([]float64, len(xs))
	for i := range xs {
		nus[i] = xs[i][0]
	}
	res, err := m.Fit(map[string][]float64{"nu": nus, "I": ys},
		map[string]float64{"p": 1, "alpha": -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := res.ParamByName("p")
	alpha, _ := res.ParamByName("alpha")
	if !near(p, 0.06, 0.01) || !near(alpha, -0.7, 0.1) {
		t.Fatalf("p=%g alpha=%g", p, alpha)
	}
}

func TestModelMissingColumns(t *testing.T) {
	m, _ := ParseModel("y ~ a*x + b", []string{"x"})
	if _, err := m.Fit(map[string][]float64{"x": {1, 2, 3}}, nil, nil); err == nil {
		t.Fatal("want error for missing output column")
	}
	if _, err := m.Fit(map[string][]float64{"y": {1, 2, 3}}, nil, nil); err == nil {
		t.Fatal("want error for missing input column")
	}
}

func TestModelFormulaRoundTrip(t *testing.T) {
	m, err := ParseModel("I ~ p * pow(nu, alpha)", []string{"nu"})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ParseModel(m.Formula(), []string{"nu"})
	if err != nil {
		t.Fatalf("reparse %q: %v", m.Formula(), err)
	}
	if m2.Output != m.Output || len(m2.Params) != len(m.Params) {
		t.Fatalf("round trip mismatch: %v vs %v", m2, m)
	}
}

func TestModelGradMatchesNumeric(t *testing.T) {
	m, err := ParseModel("I ~ p * pow(nu, alpha)", []string{"nu"})
	if err != nil {
		t.Fatal(err)
	}
	params := []float64{-0.7, 0.06} // sorted order: alpha, p
	inputs := []float64{0.14}
	g := make([]float64, 2)
	m.Grad(params, inputs, g)
	// Numeric check.
	gn := make([]float64, 2)
	numericJacobian(func(p, x []float64) float64 { return m.Eval(p, x) })(params, inputs, gn)
	for i := range g {
		if !near(g[i], gn[i], 1e-5) {
			t.Fatalf("grad[%d] analytic %g vs numeric %g", i, g[i], gn[i])
		}
	}
}

// --- Grouped fitting ---

func TestGroupedFitPerSource(t *testing.T) {
	m, err := ParseModel("I ~ p * pow(nu, alpha)", []string{"nu"})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	truth := map[int64][2]float64{
		1: {0.06, -0.72}, 2: {0.07, -0.89}, 3: {0.56, -0.79},
	}
	var group []int64
	var nus, is []float64
	bands := []float64{0.12, 0.15, 0.16, 0.18}
	for src, pa := range truth {
		for rep := 0; rep < 80; rep++ {
			nu := bands[rep%4]
			group = append(group, src)
			nus = append(nus, nu)
			is = append(is, pa[0]*math.Pow(nu, pa[1])*(1+0.02*rng.NormFloat64()))
		}
	}
	gf := &GroupedFit{Model: m, Start: map[string]float64{"p": 1, "alpha": -1}}
	results, err := gf.Run(group, map[string][]float64{"nu": nus, "I": is})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("groups = %d", len(results))
	}
	for _, gr := range results {
		if gr.Err != nil {
			t.Fatalf("group %d: %v", gr.Key, gr.Err)
		}
		p, _ := gr.Res.ParamByName("p")
		alpha, _ := gr.Res.ParamByName("alpha")
		want := truth[gr.Key]
		if !near(p, want[0], 0.05*want[0]+0.01) || !near(alpha, want[1], 0.1) {
			t.Fatalf("group %d: p=%g alpha=%g want %v", gr.Key, p, alpha, want)
		}
	}
}

func TestGroupedFitSkipsTinyGroups(t *testing.T) {
	m, _ := ParseModel("I ~ p * pow(nu, alpha)", []string{"nu"})
	group := []int64{1, 1, 1, 1, 1, 2}
	nus := []float64{0.12, 0.15, 0.16, 0.18, 0.12, 0.15}
	is := []float64{1, 1, 1, 1, 1, 1}
	gf := &GroupedFit{Model: m, Start: map[string]float64{"p": 1, "alpha": 0}}
	results, err := gf.Run(group, map[string][]float64{"nu": nus, "I": is})
	if err != nil {
		t.Fatal(err)
	}
	var g2 *GroupResult
	for i := range results {
		if results[i].Key == 2 {
			g2 = &results[i]
		}
	}
	if g2 == nil || g2.Err == nil {
		t.Fatal("group 2 with 1 row should error")
	}
	if !errors.Is(g2.Err, ErrTooFewObservations) {
		t.Fatalf("got %v", g2.Err)
	}
}

func TestGroupedFitResultsSorted(t *testing.T) {
	m, _ := ParseModel("y ~ a + b*x", []string{"x"})
	var group []int64
	var xs, ys []float64
	for src := int64(9); src >= 1; src-- {
		for i := 0; i < 5; i++ {
			group = append(group, src)
			x := float64(i)
			xs = append(xs, x)
			ys = append(ys, float64(src)+2*x)
		}
	}
	gf := &GroupedFit{Model: m}
	results, err := gf.Run(group, map[string][]float64{"x": xs, "y": ys})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Key <= results[i-1].Key {
			t.Fatal("results not sorted by key")
		}
	}
	// Each group's intercept should equal its key.
	for _, gr := range results {
		a, _ := gr.Res.ParamByName("a")
		if !near(a, float64(gr.Key), 1e-8) {
			t.Fatalf("group %d intercept %g", gr.Key, a)
		}
	}
}

// --- Prediction intervals ---

func TestPredictIntervalCoverage(t *testing.T) {
	// Empirical check: ~95% of held-out draws fall inside the 95% PI.
	m, _ := ParseModel("y ~ a + b*x", []string{"x"})
	rng := rand.New(rand.NewSource(5))
	n := 200
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 10
		ys[i] = 1 + 2*xs[i] + rng.NormFloat64()*0.5
	}
	res, err := m.Fit(map[string][]float64{"x": xs, "y": ys}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	inside := 0
	trials := 2000
	for i := 0; i < trials; i++ {
		x := rng.Float64() * 10
		yTrue := 1 + 2*x + rng.NormFloat64()*0.5
		pred, err := m.Predict(res, []float64{x}, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if yTrue >= pred.Lo && yTrue <= pred.Hi {
			inside++
		}
	}
	cov := float64(inside) / float64(trials)
	if cov < 0.92 || cov > 0.98 {
		t.Fatalf("coverage = %.3f, want ≈0.95", cov)
	}
}

func TestPredictErrors(t *testing.T) {
	m, _ := ParseModel("y ~ a + b*x", []string{"x"})
	res, err := m.Fit(map[string][]float64{
		"x": {1, 2, 3, 4}, "y": {1, 2, 3, 4},
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict(res, []float64{1, 2}, 0.95); err == nil {
		t.Fatal("want error for wrong input count")
	}
	if _, err := m.Predict(res, []float64{1}, 1.5); err == nil {
		t.Fatal("want error for bad level")
	}
}

func TestConfIntContainsTruthUsually(t *testing.T) {
	// Run many simulations; the 95% CI for the slope should contain the
	// true slope in roughly 95% of them.
	m, _ := ParseModel("y ~ a + b*x", []string{"x"})
	rng := rand.New(rand.NewSource(99))
	hits, trials := 0, 300
	for tr := 0; tr < trials; tr++ {
		n := 30
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 5
			ys[i] = 2 + 1.5*xs[i] + rng.NormFloat64()
		}
		res, err := m.Fit(map[string][]float64{"x": xs, "y": ys}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, name := range res.ParamNames {
			if name != "b" {
				continue
			}
			lo, hi := res.ConfInt(i, 0.95)
			if lo <= 1.5 && 1.5 <= hi {
				hits++
			}
		}
	}
	rate := float64(hits) / float64(trials)
	if rate < 0.90 || rate > 0.99 {
		t.Fatalf("CI coverage = %.3f, want ≈0.95", rate)
	}
}

func TestSummaryRenders(t *testing.T) {
	m, _ := ParseModel("y ~ a + b*x", []string{"x"})
	res, err := m.Fit(map[string][]float64{
		"x": {1, 2, 3, 4, 5}, "y": {2.1, 4.2, 5.9, 8.1, 9.9},
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary()
	for _, want := range []string{"Param", "Residual SE", "R²", "a", "b"} {
		if !contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// --- Property: OLS through the formula path equals matrix-path OLS ---

func TestFormulaOLSMatchesMatrixOLS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 15 + rng.Intn(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 8
			ys[i] = 0.5 + 1.2*xs[i] + rng.NormFloat64()*0.3
		}
		m, err := ParseModel("y ~ a + b*x", []string{"x"})
		if err != nil {
			return false
		}
		r1, err := m.Fit(map[string][]float64{"x": xs, "y": ys}, nil, nil)
		if err != nil {
			return false
		}
		x, names := PolynomialDesign(xs, 1)
		r2, err := OLS(x, ys, names, true)
		if err != nil {
			return false
		}
		a1, _ := r1.ParamByName("a")
		b1, _ := r1.ParamByName("b")
		return near(a1, r2.Params[0], 1e-8) && near(b1, r2.Params[1], 1e-8) &&
			near(r1.ResidualSE, r2.ResidualSE, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
