// Package fit implements the model-fitting engine of the paper's §3: ordinary
// and weighted least squares for linear models (solved by Householder QR),
// Gauss-Newton and Levenberg-Marquardt iterations for nonlinear models, and
// formula-driven models parsed from user-supplied expressions (the "user
// model" the database harvests). Every fit produces a full report — parameter
// estimates, standard errors, t/p values, residual standard error, R²,
// adjusted R², and an F-test against the intercept-only model — because the
// paper requires the database to "judge the quality of the model" before
// trusting it for approximate query answering or storage optimization.
package fit

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"datalaws/internal/mat"
	"datalaws/internal/stats"
)

// Common fitting errors.
var (
	// ErrTooFewObservations is returned when there are not strictly more
	// observations than parameters ("we need more observed input/output
	// pairs than model parameters", §3).
	ErrTooFewObservations = errors.New("fit: need more observations than parameters")
	// ErrNoConverge is returned when the iterative optimizer exhausts its
	// iteration budget without meeting the convergence criterion.
	ErrNoConverge = errors.New("fit: optimizer did not converge")
	// ErrBadInput flags inconsistent input shapes or non-finite data.
	ErrBadInput = errors.New("fit: invalid input")
)

// Result is the complete outcome of a least-squares fit.
type Result struct {
	// ParamNames are the parameter labels, parallel to Params.
	ParamNames []string
	// Params are the fitted coefficient estimates β̂.
	Params []float64
	// StdErrs are the estimated standard errors of each parameter.
	StdErrs []float64
	// TVals are Params/StdErrs.
	TVals []float64
	// PVals are two-sided p-values for H0: βj = 0 under t(DF).
	PVals []float64

	// N is the number of observations; DF = N − #params.
	N, DF int

	// RSS is the residual sum of squares, TSS the total sum of squares
	// about the mean of y.
	RSS, TSS float64
	// ResidualSE is sqrt(RSS/DF) — the "Residual SE" column of the paper's
	// Table 1.
	ResidualSE float64
	// R2 is the coefficient of determination, AdjR2 its df-adjusted form.
	R2, AdjR2 float64
	// FStat and FPValue test the model against the intercept-only model.
	FStat, FPValue float64

	// Cov is the estimated parameter covariance s²·(JᵀJ)⁻¹ (nil if the
	// information matrix was singular).
	Cov *mat.Matrix
	// Residuals are y − ŷ, in input order.
	Residuals []float64
	// Fitted are the predicted values ŷ.
	Fitted []float64

	// Converged reports whether the optimizer met its tolerance
	// (always true for the direct linear solve). Iterations counts
	// optimizer steps (0 for linear).
	Converged  bool
	Iterations int
	// Lambda is the final Levenberg-Marquardt damping factor (0 for
	// Gauss-Newton and linear fits).
	Lambda float64
}

// ParamByName returns the fitted value of the named parameter.
func (r *Result) ParamByName(name string) (float64, bool) {
	for i, n := range r.ParamNames {
		if n == name {
			return r.Params[i], true
		}
	}
	return 0, false
}

// ConfInt returns the level-confidence interval for parameter i, e.g.
// level = 0.95 for a 95 % interval.
func (r *Result) ConfInt(i int, level float64) (lo, hi float64) {
	t := stats.StudentT{Nu: float64(r.DF)}.Quantile(0.5 + level/2)
	h := t * r.StdErrs[i]
	return r.Params[i] - h, r.Params[i] + h
}

// Summary renders an R-style coefficient table for logs and the CLI.
func (r *Result) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %12s %12s %8s %10s\n", "Param", "Estimate", "Std.Error", "t", "Pr(>|t|)")
	for i, n := range r.ParamNames {
		fmt.Fprintf(&sb, "%-12s %12.6g %12.6g %8.3f %10.4g\n", n, r.Params[i], r.StdErrs[i], r.TVals[i], r.PVals[i])
	}
	fmt.Fprintf(&sb, "Residual SE: %.6g on %d df;  R²: %.4f;  adj R²: %.4f\n",
		r.ResidualSE, r.DF, r.R2, r.AdjR2)
	fmt.Fprintf(&sb, "F: %.4g, p: %.4g;  converged=%v in %d iterations\n",
		r.FStat, r.FPValue, r.Converged, r.Iterations)
	return sb.String()
}

// finishResult fills in the shared goodness-of-fit block given the design or
// Jacobian factorization at the solution.
func finishResult(r *Result, y, fitted []float64, f *mat.QR, hasIntercept bool) {
	n := len(y)
	p := len(r.Params)
	r.N = n
	r.DF = n - p
	r.Fitted = fitted
	r.Residuals = make([]float64, n)
	var rss float64
	for i := range y {
		d := y[i] - fitted[i]
		r.Residuals[i] = d
		rss += d * d
	}
	r.RSS = rss
	ybar := stats.Mean(y)
	var tss float64
	for _, v := range y {
		d := v - ybar
		tss += d * d
	}
	r.TSS = tss
	if r.DF > 0 {
		r.ResidualSE = math.Sqrt(rss / float64(r.DF))
	} else {
		r.ResidualSE = math.NaN()
	}
	if tss > 0 {
		r.R2 = 1 - rss/tss
		if r.DF > 0 {
			r.AdjR2 = 1 - (rss/float64(r.DF))/(tss/float64(n-1))
		}
	} else {
		// Constant response: the model explains everything or nothing.
		if rss == 0 {
			r.R2, r.AdjR2 = 1, 1
		}
	}

	// F-test against the intercept-only model. For models without an
	// explicit intercept this is the pseudo-F the paper's workflow needs to
	// compare "against a model with fewer parameters".
	pEff := p
	if !hasIntercept {
		pEff = p + 1 // treat the implicit mean as the reduced model's parameter
	}
	num := (tss - rss) / float64(pEff-1)
	den := rss / float64(r.DF)
	if r.DF > 0 && den > 0 && pEff > 1 {
		r.FStat = num / den
		r.FPValue = stats.FDist{D1: float64(pEff - 1), D2: float64(r.DF)}.SurvivalF(r.FStat)
	} else {
		r.FStat, r.FPValue = math.NaN(), math.NaN()
	}

	// Standard errors from s²·(JᵀJ)⁻¹.
	r.StdErrs = make([]float64, p)
	r.TVals = make([]float64, p)
	r.PVals = make([]float64, p)
	if f != nil {
		if cov, err := f.InvertRTR(); err == nil {
			s2 := rss / float64(r.DF)
			cov.Scale(s2)
			r.Cov = cov
			td := stats.StudentT{Nu: float64(r.DF)}
			for j := 0; j < p; j++ {
				se := math.Sqrt(cov.At(j, j))
				r.StdErrs[j] = se
				if se > 0 {
					r.TVals[j] = r.Params[j] / se
					r.PVals[j] = 2 * (1 - td.CDF(math.Abs(r.TVals[j])))
				} else {
					r.TVals[j] = math.Inf(1)
					r.PVals[j] = 0
				}
			}
		} else {
			for j := range r.StdErrs {
				r.StdErrs[j] = math.NaN()
				r.TVals[j] = math.NaN()
				r.PVals[j] = math.NaN()
			}
		}
	}
}

func checkFinite(xs []float64) error {
	for i, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: non-finite value %g at index %d", ErrBadInput, v, i)
		}
	}
	return nil
}
