package fit

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// GroupResult pairs one group key with its fit outcome. Err is non-nil when
// the group's fit failed (too few observations, no convergence, …); the
// paper's workflow surfaces those groups rather than silently dropping them,
// since badly fitting groups are exactly the "data anomalies" of §4.2.
type GroupResult struct {
	Key int64
	Res *Result
	Err error
}

// GroupedFit fits one model instance per group — the paper's Table 1
// workflow, where a single power-law model fitted per LOFAR source yields a
// 35,692-row parameter table. group must parallel the data columns.
//
// Groups are fitted concurrently across Parallelism workers (default:
// GOMAXPROCS). Results are returned sorted by key.
type GroupedFit struct {
	Model *Model
	// Start provides per-parameter starting values for nonlinear fits.
	Start map[string]float64
	// StartFor, when non-nil, supplies per-group starting values and takes
	// precedence over Start for groups where it returns a non-nil map. A
	// refit warm-starts each group from its previously fitted parameters
	// through this hook (recursive refitting: seed the optimizer where the
	// law last held, so unchanged groups converge in one or two steps).
	StartFor func(key int64) map[string]float64
	// Opts configures the nonlinear optimizer.
	Opts *NLSOptions
	// Parallelism bounds worker goroutines; 0 selects GOMAXPROCS.
	Parallelism int
	// MinObservations skips groups with fewer rows (default: #params+1).
	MinObservations int
}

// Run executes the grouped fit over columnar data keyed by group.
func (g *GroupedFit) Run(group []int64, data map[string][]float64) ([]GroupResult, error) {
	m := g.Model
	y, ok := data[m.Output]
	if !ok {
		return nil, fmt.Errorf("%w: missing output column %q", ErrBadInput, m.Output)
	}
	n := len(y)
	if len(group) != n {
		return nil, fmt.Errorf("%w: group column has %d rows, want %d", ErrBadInput, len(group), n)
	}
	inputCols := make([][]float64, len(m.Inputs))
	for k, in := range m.Inputs {
		c, ok := data[in]
		if !ok {
			return nil, fmt.Errorf("%w: missing input column %q", ErrBadInput, in)
		}
		if len(c) != n {
			return nil, fmt.Errorf("%w: column %q has %d rows, want %d", ErrBadInput, in, len(c), n)
		}
		inputCols[k] = c
	}

	// Partition row indices by group key.
	byKey := map[int64][]int{}
	for i, k := range group {
		byKey[k] = append(byKey[k], i)
	}
	keys := make([]int64, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	minObs := g.MinObservations
	if minObs == 0 {
		minObs = len(m.Params) + 1
	}
	workers := g.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(keys) && len(keys) > 0 {
		workers = len(keys)
	}

	results := make([]GroupResult, len(keys))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				key := keys[idx]
				rows := byKey[key]
				if len(rows) < minObs {
					results[idx] = GroupResult{Key: key, Err: fmt.Errorf("%w: group %d has %d rows, need %d", ErrTooFewObservations, key, len(rows), minObs)}
					continue
				}
				xs := make([][]float64, len(rows))
				ys := make([]float64, len(rows))
				for r, i := range rows {
					row := make([]float64, len(m.Inputs))
					for c := range m.Inputs {
						row[c] = inputCols[c][i]
					}
					xs[r] = row
					ys[r] = y[i]
				}
				start := g.Start
				if g.StartFor != nil {
					if s := g.StartFor(key); s != nil {
						start = s
					}
				}
				res, err := m.FitRows(xs, ys, start, g.Opts)
				results[idx] = GroupResult{Key: key, Res: res, Err: err}
			}
		}()
	}
	for idx := range keys {
		next <- idx
	}
	close(next)
	wg.Wait()
	return results, nil
}
