package synth

import (
	"math"
	"math/rand"
)

// SensorConfig parameterizes a MauveDB-style sensor-network dataset: a grid
// of temperature sensors sampled at integer timestamps, each following a
// smooth daily curve plus sensor-specific offset and drift. The timestamp
// column is "enumerable" in the paper's sense (§4.2: "continuous integer
// timestamps, as they appear for example in tables containing time series").
type SensorConfig struct {
	Sensors int
	Steps   int // samples per sensor, one per integer timestamp
	Noise   float64
	Seed    int64
}

// DefaultSensors is a laptop-scale sensor deployment.
func DefaultSensors() SensorConfig {
	return SensorConfig{Sensors: 50, Steps: 2000, Noise: 0.3, Seed: 2}
}

// SensorTruth is the generating law of one sensor:
// temp(t) = Base + Drift·t + Amp·sin(2πt/Period + Phase).
type SensorTruth struct {
	ID                 int64
	Base, Drift        float64
	Amp, Period, Phase float64
}

// SensorData is the generated readings plus truth.
type SensorData struct {
	Sensor []int64
	T      []float64 // integer-valued timestamps stored as floats
	Temp   []float64
	Truth  map[int64]SensorTruth
}

// NumRows returns the reading count.
func (d *SensorData) NumRows() int { return len(d.Sensor) }

// GenerateSensors builds the dataset.
func GenerateSensors(cfg SensorConfig) *SensorData {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Sensors * cfg.Steps
	d := &SensorData{
		Sensor: make([]int64, 0, n),
		T:      make([]float64, 0, n),
		Temp:   make([]float64, 0, n),
		Truth:  make(map[int64]SensorTruth, cfg.Sensors),
	}
	const period = 288 // e.g. 5-minute samples, daily cycle
	for s := 1; s <= cfg.Sensors; s++ {
		id := int64(s)
		truth := SensorTruth{
			ID:     id,
			Base:   18 + rng.Float64()*6,
			Drift:  (rng.Float64() - 0.5) * 1e-3,
			Amp:    2 + rng.Float64()*3,
			Period: period,
			Phase:  rng.Float64() * 2 * math.Pi,
		}
		d.Truth[id] = truth
		for t := 0; t < cfg.Steps; t++ {
			ft := float64(t)
			temp := truth.Base + truth.Drift*ft +
				truth.Amp*math.Sin(2*math.Pi*ft/truth.Period+truth.Phase) +
				cfg.Noise*rng.NormFloat64()
			d.Sensor = append(d.Sensor, id)
			d.T = append(d.T, ft)
			d.Temp = append(d.Temp, temp)
		}
	}
	return d
}

// Columns returns named float columns.
func (d *SensorData) Columns() map[string][]float64 {
	src := make([]float64, len(d.Sensor))
	for i, s := range d.Sensor {
		src[i] = float64(s)
	}
	return map[string][]float64{"sensor": src, "t": d.T, "temp": d.Temp}
}

// RetailConfig parameterizes a TPC-DS-flavoured sales dataset: daily revenue
// per store follows trend + weekly seasonality + promo spikes — the
// "considerable regularity in the generated datasets for popular database
// benchmarks" the paper proposes as an evaluation playing field (§6).
type RetailConfig struct {
	Stores int
	Days   int
	Noise  float64
	Seed   int64
}

// DefaultRetail is a laptop-scale retail dataset.
func DefaultRetail() RetailConfig {
	return RetailConfig{Stores: 40, Days: 730, Noise: 0.04, Seed: 3}
}

// RetailTruth is the generating law of one store:
// revenue(d) = Base·(1 + Growth·d)·(1 + WeekAmp·sin(2πd/7 + Phase)).
type RetailTruth struct {
	ID              int64
	Base, Growth    float64
	WeekAmp, Phase  float64
	PromoEvery      int
	PromoMultiplier float64
}

// RetailData is the generated sales plus truth.
type RetailData struct {
	Store   []int64
	Day     []float64
	Revenue []float64
	Truth   map[int64]RetailTruth
}

// NumRows returns the row count.
func (d *RetailData) NumRows() int { return len(d.Store) }

// GenerateRetail builds the dataset.
func GenerateRetail(cfg RetailConfig) *RetailData {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Stores * cfg.Days
	d := &RetailData{
		Store:   make([]int64, 0, n),
		Day:     make([]float64, 0, n),
		Revenue: make([]float64, 0, n),
		Truth:   make(map[int64]RetailTruth, cfg.Stores),
	}
	for s := 1; s <= cfg.Stores; s++ {
		id := int64(s)
		truth := RetailTruth{
			ID:              id,
			Base:            5000 + rng.Float64()*20000,
			Growth:          rng.Float64() * 4e-4,
			WeekAmp:         0.1 + rng.Float64()*0.2,
			Phase:           rng.Float64() * 2 * math.Pi,
			PromoEvery:      90 + rng.Intn(60),
			PromoMultiplier: 1.3 + rng.Float64()*0.5,
		}
		d.Truth[id] = truth
		for day := 0; day < cfg.Days; day++ {
			fd := float64(day)
			rev := truth.Base * (1 + truth.Growth*fd) *
				(1 + truth.WeekAmp*math.Sin(2*math.Pi*fd/7+truth.Phase))
			if truth.PromoEvery > 0 && day%truth.PromoEvery == 0 && day > 0 {
				rev *= truth.PromoMultiplier
			}
			rev *= 1 + cfg.Noise*rng.NormFloat64()
			d.Store = append(d.Store, id)
			d.Day = append(d.Day, fd)
			d.Revenue = append(d.Revenue, rev)
		}
	}
	return d
}

// Columns returns named float columns.
func (d *RetailData) Columns() map[string][]float64 {
	st := make([]float64, len(d.Store))
	for i, s := range d.Store {
		st[i] = float64(s)
	}
	return map[string][]float64{"store": st, "day": d.Day, "revenue": d.Revenue}
}
