package synth

import (
	"datalaws/internal/expr"
	"datalaws/internal/storage"
	"datalaws/internal/table"
)

// LOFARTable materializes the dataset as the paper's three-column relational
// table (source BIGINT, nu DOUBLE, intensity DOUBLE).
func LOFARTable(name string, d *LOFARData) (*table.Table, error) {
	schema, err := table.NewSchema(
		table.ColumnDef{Name: "source", Type: storage.TypeInt64},
		table.ColumnDef{Name: "nu", Type: storage.TypeFloat64},
		table.ColumnDef{Name: "intensity", Type: storage.TypeFloat64},
	)
	if err != nil {
		return nil, err
	}
	t := table.New(name, schema)
	for i := range d.Source {
		if err := t.AppendRow([]expr.Value{
			expr.Int(d.Source[i]), expr.Float(d.Nu[i]), expr.Float(d.Intensity[i]),
		}); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// SensorTable materializes sensor readings (sensor BIGINT, t DOUBLE,
// temp DOUBLE).
func SensorTable(name string, d *SensorData) (*table.Table, error) {
	schema, err := table.NewSchema(
		table.ColumnDef{Name: "sensor", Type: storage.TypeInt64},
		table.ColumnDef{Name: "t", Type: storage.TypeFloat64},
		table.ColumnDef{Name: "temp", Type: storage.TypeFloat64},
	)
	if err != nil {
		return nil, err
	}
	t := table.New(name, schema)
	for i := range d.Sensor {
		if err := t.AppendRow([]expr.Value{
			expr.Int(d.Sensor[i]), expr.Float(d.T[i]), expr.Float(d.Temp[i]),
		}); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// RetailTable materializes sales (store BIGINT, day DOUBLE, revenue DOUBLE).
func RetailTable(name string, d *RetailData) (*table.Table, error) {
	schema, err := table.NewSchema(
		table.ColumnDef{Name: "store", Type: storage.TypeInt64},
		table.ColumnDef{Name: "day", Type: storage.TypeFloat64},
		table.ColumnDef{Name: "revenue", Type: storage.TypeFloat64},
	)
	if err != nil {
		return nil, err
	}
	t := table.New(name, schema)
	for i := range d.Store {
		if err := t.AppendRow([]expr.Value{
			expr.Int(d.Store[i]), expr.Float(d.Day[i]), expr.Float(d.Revenue[i]),
		}); err != nil {
			return nil, err
		}
	}
	return t, nil
}
