package synth

import (
	"math"
	"testing"

	"datalaws/internal/stats"
)

func TestGenerateLOFARShape(t *testing.T) {
	cfg := LOFARConfig{Sources: 100, ObsPerSource: 40, NoiseFrac: 0.05, AnomalyFrac: 0.1, Seed: 1}
	d := GenerateLOFAR(cfg)
	if len(d.Truth) != 100 {
		t.Fatalf("truth entries = %d", len(d.Truth))
	}
	if d.NumRows() < 100*30 || d.NumRows() > 100*55 {
		t.Fatalf("rows = %d, want ≈4000", d.NumRows())
	}
	if len(d.Nu) != d.NumRows() || len(d.Intensity) != d.NumRows() {
		t.Fatal("column lengths differ")
	}
	// Frequencies must come from the four bands.
	bandSet := map[float64]bool{}
	for _, b := range Bands {
		bandSet[b] = true
	}
	for _, nu := range d.Nu {
		if !bandSet[nu] {
			t.Fatalf("unexpected frequency %g", nu)
		}
	}
	// Roughly the configured fraction of anomalies.
	anom := 0
	for _, tr := range d.Truth {
		if tr.Anomalous {
			anom++
		}
	}
	if anom < 2 || anom > 25 {
		t.Fatalf("anomalies = %d for frac 0.1 of 100", anom)
	}
}

func TestGenerateLOFARDeterministic(t *testing.T) {
	cfg := LOFARConfig{Sources: 10, ObsPerSource: 8, NoiseFrac: 0.05, Seed: 7}
	a := GenerateLOFAR(cfg)
	b := GenerateLOFAR(cfg)
	if a.NumRows() != b.NumRows() {
		t.Fatal("row counts differ across runs")
	}
	for i := range a.Intensity {
		if a.Intensity[i] != b.Intensity[i] {
			t.Fatal("values differ across runs with same seed")
		}
	}
}

func TestLOFARFollowsPowerLaw(t *testing.T) {
	// Non-anomalous sources must track I = p·ν^α within noise.
	cfg := LOFARConfig{Sources: 20, ObsPerSource: 40, NoiseFrac: 0.02, AnomalyFrac: 0, Seed: 3}
	d := GenerateLOFAR(cfg)
	for i := range d.Source {
		tr := d.Truth[d.Source[i]]
		want := tr.P * math.Pow(d.Nu[i], tr.Alpha)
		rel := math.Abs(d.Intensity[i]-want) / want
		if rel > 0.15 {
			t.Fatalf("row %d deviates %.1f%% from the law", i, rel*100)
		}
	}
}

func TestLOFARColumns(t *testing.T) {
	d := GenerateLOFAR(LOFARConfig{Sources: 5, ObsPerSource: 8, Seed: 1})
	cols := d.Columns()
	for _, name := range []string{"source", "nu", "intensity"} {
		if len(cols[name]) != d.NumRows() {
			t.Fatalf("column %q length", name)
		}
	}
}

func TestLOFARTable(t *testing.T) {
	d := GenerateLOFAR(LOFARConfig{Sources: 5, ObsPerSource: 8, Seed: 2})
	tb, err := LOFARTable("m", d)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != d.NumRows() {
		t.Fatal("row count mismatch")
	}
	if tb.Schema().Index("intensity") != 2 {
		t.Fatal("schema")
	}
	// Spot check a row.
	row := tb.Row(3)
	if row[0].I != d.Source[3] || row[1].F != d.Nu[3] || row[2].F != d.Intensity[3] {
		t.Fatalf("row 3 = %v", row)
	}
}

func TestGenerateSensors(t *testing.T) {
	cfg := SensorConfig{Sensors: 5, Steps: 500, Noise: 0.1, Seed: 4}
	d := GenerateSensors(cfg)
	if d.NumRows() != 2500 {
		t.Fatalf("rows = %d", d.NumRows())
	}
	// Timestamps are 0..Steps-1 per sensor.
	if d.T[0] != 0 || d.T[499] != 499 || d.T[500] != 0 {
		t.Fatal("timestamp layout")
	}
	// Temperatures near the base value.
	m := stats.Mean(d.Temp)
	if m < 10 || m > 35 {
		t.Fatalf("mean temp = %g", m)
	}
	tb, err := SensorTable("s", d)
	if err != nil || tb.NumRows() != 2500 {
		t.Fatalf("table: %v", err)
	}
}

func TestGenerateRetail(t *testing.T) {
	cfg := RetailConfig{Stores: 4, Days: 365, Noise: 0.02, Seed: 5}
	d := GenerateRetail(cfg)
	if d.NumRows() != 4*365 {
		t.Fatalf("rows = %d", d.NumRows())
	}
	for _, r := range d.Revenue {
		if r <= 0 {
			t.Fatalf("non-positive revenue %g", r)
		}
	}
	// Revenue trends upward: late mean above early mean for each store.
	for s := 0; s < 4; s++ {
		start := s * 365
		early := stats.Mean(d.Revenue[start : start+100])
		late := stats.Mean(d.Revenue[start+265 : start+365])
		if late < early*0.95 {
			t.Fatalf("store %d: revenue does not trend up (%.0f → %.0f)", s+1, early, late)
		}
	}
	tb, err := RetailTable("r", d)
	if err != nil || tb.NumRows() != d.NumRows() {
		t.Fatalf("table: %v", err)
	}
}

func TestDefaultsAreSane(t *testing.T) {
	if c := DefaultLOFAR(); c.Sources != 35692 {
		t.Fatalf("default sources = %d, want the paper's 35692", c.Sources)
	}
	if c := DefaultSensors(); c.Sensors <= 0 || c.Steps <= 0 {
		t.Fatal("sensor defaults")
	}
	if c := DefaultRetail(); c.Stores <= 0 || c.Days <= 0 {
		t.Fatal("retail defaults")
	}
}
