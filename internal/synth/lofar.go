// Package synth generates the synthetic datasets the reproduction runs on.
// The paper's LOFAR sample is not public, so LOFARConfig generates data from
// the same physical law the paper's astronomers fit (I = p·ν^α per source,
// §2) with log-normal interference noise, four observing bands, and a
// controllable fraction of anomalous sources that violate the law — the
// "data anomalies" §4.2 wants the system to surface. The sensor and retail
// generators cover the paper's proposed future evaluation (MauveDB-style
// sensor data; benchmark data with "considerable regularity").
package synth

import (
	"math"
	"math/rand"
)

// Bands are the four observing frequencies of the example dataset (GHz).
// §4.2: "our telescope only creates observations at a small set of
// frequencies, so ν would only assume values in {0.12, 0.15, 0.16, 0.18}".
var Bands = []float64{0.12, 0.15, 0.16, 0.18}

// LOFARConfig parameterizes the radio-astronomy dataset.
type LOFARConfig struct {
	// Sources is the number of distinct radio sources (paper: 35,692).
	Sources int
	// ObsPerSource is the mean number of measurements per source
	// (paper: 1,452,824/35,692 ≈ 40.7).
	ObsPerSource int
	// NoiseFrac is the relative magnitude of multiplicative interference.
	NoiseFrac float64
	// AnomalyFrac is the fraction of sources that do not follow the power
	// law (e.g. spectral turn-overs); 0 disables anomalies.
	AnomalyFrac float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultLOFAR mirrors the paper's dataset shape at full scale.
func DefaultLOFAR() LOFARConfig {
	return LOFARConfig{Sources: 35692, ObsPerSource: 40, NoiseFrac: 0.05, AnomalyFrac: 0.01, Seed: 1}
}

// SourceTruth records the generating parameters of one source, for
// recovered-vs-truth evaluation.
type SourceTruth struct {
	ID        int64
	P         float64 // proportionality constant
	Alpha     float64 // spectral index
	Anomalous bool    // true when the source violates the power law
}

// LOFARData is the generated measurement set plus ground truth.
type LOFARData struct {
	// Columns, all parallel: Source, Nu (frequency, GHz), Intensity (Jy).
	Source    []int64
	Nu        []float64
	Intensity []float64
	// Truth indexes generating parameters by source ID.
	Truth map[int64]SourceTruth
}

// NumRows returns the measurement count.
func (d *LOFARData) NumRows() int { return len(d.Source) }

// GenerateLOFAR builds the dataset. Spectral indexes are drawn around −0.7
// (thermal emission; the paper's Figure 1 source has α = −0.69) and
// proportionality constants log-uniformly, matching the wide variation the
// paper shows in Table 1. Anomalous sources get a frequency-independent
// intensity with heavy noise — the power law simply does not hold for them.
func GenerateLOFAR(cfg LOFARConfig) *LOFARData {
	rng := rand.New(rand.NewSource(cfg.Seed))
	nRows := cfg.Sources * cfg.ObsPerSource
	d := &LOFARData{
		Source:    make([]int64, 0, nRows),
		Nu:        make([]float64, 0, nRows),
		Intensity: make([]float64, 0, nRows),
		Truth:     make(map[int64]SourceTruth, cfg.Sources),
	}
	for s := 1; s <= cfg.Sources; s++ {
		id := int64(s)
		anomalous := rng.Float64() < cfg.AnomalyFrac
		truth := SourceTruth{
			ID:        id,
			P:         math.Exp(rng.NormFloat64()*0.8 - 2.2), // log-normal around ~0.11
			Alpha:     -0.7 + rng.NormFloat64()*0.12,
			Anomalous: anomalous,
		}
		d.Truth[id] = truth
		// Observation count varies ±25% across sources.
		n := cfg.ObsPerSource + rng.Intn(cfg.ObsPerSource/2+1) - cfg.ObsPerSource/4
		if n < len(Bands) {
			n = len(Bands)
		}
		base := truth.P * math.Pow(0.15, truth.Alpha) // scale for anomalies
		for o := 0; o < n; o++ {
			nu := Bands[o%len(Bands)]
			var intensity float64
			if anomalous {
				// Flat spectrum with strong fluctuation: no dependence on ν.
				intensity = base * (1 + 0.5*rng.NormFloat64())
				if intensity < 0 {
					intensity = base * 0.1
				}
			} else {
				intensity = truth.P * math.Pow(nu, truth.Alpha) * (1 + cfg.NoiseFrac*rng.NormFloat64())
			}
			d.Source = append(d.Source, id)
			d.Nu = append(d.Nu, nu)
			d.Intensity = append(d.Intensity, intensity)
		}
	}
	return d
}

// Columns returns the dataset as named float columns (source as float64 for
// fitting interfaces that require numeric inputs).
func (d *LOFARData) Columns() map[string][]float64 {
	src := make([]float64, len(d.Source))
	for i, s := range d.Source {
		src[i] = float64(s)
	}
	return map[string][]float64{
		"source":    src,
		"nu":        d.Nu,
		"intensity": d.Intensity,
	}
}
