package aqp

import (
	"fmt"

	"datalaws/internal/exec"
	"datalaws/internal/expr"
	"datalaws/internal/modelstore"
	"datalaws/internal/sql"
)

// Approximate planning over range-partitioned tables. A model captured on a
// partitioned table is a family of per-partition models (see
// modelstore.CapturePartitioned); an APPROX SELECT first prunes partitions
// whose range cannot satisfy the WHERE predicate — skipping their models the
// same way the exact planner skips their rows — and then answers each
// surviving partition from its own model. Partitions with no trusted model
// (fit failed, model stale, dropped) are answered from raw rows, so one
// drifting regime degrades only its own partition to exact scanning.

// familyTemplate returns a deterministic family member covering the query's
// referenced columns, preferring earlier partitions. It establishes the
// column shape for raw-side projections and empty results, and proves at
// prepare time that the family can cover the query at all.
func (p *Prepared) familyTemplate() (*modelstore.CapturedModel, error) {
	pt := p.parted
	for i := 0; i < pt.NumParts(); i++ {
		for _, m := range p.store.ForTable(pt.Part(i).Name) {
			if covers(m, pt.Name, p.refs, p.withError) {
				return m, nil
			}
		}
	}
	return nil, fmt.Errorf("%w: no captured model covers the referenced columns of partitioned table %q",
		modelstore.ErrNoModel, pt.Name)
}

// bindPartitioned instantiates one execution's operator tree for a
// partitioned APPROX SELECT: prune partitions, route each survivor through
// its best trusted model (or its raw rows), and stitch the pieces under the
// ordinary relational pipeline.
func (p *Prepared) bindPartitioned(st *sql.SelectStmt) (*Plan, error) {
	pt := p.parted
	template, err := p.familyTemplate()
	if err != nil {
		return nil, err
	}
	keep := pt.PruneExpr(st.Where, pt.Name)

	var sources []exec.Operator
	var firstModel *modelstore.CapturedModel
	grid := 0
	hybrid := false
	inflateMax := 1.0
	for _, idx := range keep {
		child := pt.Part(idx)
		model, err := chooseModel(p.store, child.Name, pt.Name, child, p.refs, p.withError, p.opts.Policy)
		if err != nil {
			// No trusted model for this partition (never fitted, fit failed,
			// or revoked by staleness): answer its region from raw rows.
			raw, rerr := rawProjection(child, pt.Name, template, p.withError)
			if rerr != nil {
				return nil, rerr
			}
			sources = append(sources, raw)
			hybrid = true
			continue
		}
		if firstModel == nil {
			firstModel = model
		}
		domains, err := p.opts.Cache.domainsFor(child, model, p.opts.MaxDistinct)
		if err != nil {
			return nil, err
		}
		var legal LegalSet
		if !p.opts.AllowIllegal {
			legal, err = p.opts.Cache.legalFor(child, model, p.opts.UseBloom, p.opts.FPRate)
			if err != nil {
				return nil, err
			}
		}
		inflate := staleInflation(model, child, p.opts)
		if inflate > inflateMax {
			inflateMax = inflate
		}
		scan, err := NewModelScan(model, domains, legal)
		if err != nil {
			return nil, err
		}
		scan.WithError = st.WithError
		scan.Level = p.opts.Level
		scan.SEInflation = inflate
		scan.TableName = pt.Name
		grid += GridSize(domains) * model.Quality.GroupsOK

		var source exec.Operator = scan
		if empty := pushDownEqualities(scan, st, model, domains); empty {
			source = &exec.ValuesScan{Cols: scan.Columns()}
		}
		if model.Spec.Where != nil {
			// The family was fitted on a restricted region: model tuples
			// inside it, this partition's raw rows outside it.
			modelSide := &exec.Filter{Child: source, Pred: model.Spec.Where}
			rawSide, err := rawProjection(child, pt.Name, model, st.WithError)
			if err != nil {
				return nil, err
			}
			notWhere := &expr.Unary{Op: expr.OpNot, X: model.Spec.Where}
			source = &exec.Concat{Children: []exec.Operator{
				modelSide,
				&exec.Filter{Child: rawSide, Pred: notWhere},
			}}
			hybrid = true
		}
		sources = append(sources, source)
	}

	// Even when no surviving partition has a trusted model, the family
	// exists (familyTemplate proved coverage), so the plan still answers —
	// entirely from raw rows, marked hybrid. APPROX thus degrades partition
	// by partition instead of bouncing the whole query.
	if firstModel == nil {
		firstModel = template
	}

	var source exec.Operator
	switch len(sources) {
	case 0:
		// Every partition pruned: the result is provably empty.
		tmpl := &ModelScan{Model: template, TableName: pt.Name, WithError: st.WithError}
		source = &exec.ValuesScan{Cols: tmpl.Columns()}
	case 1:
		source = sources[0]
	default:
		source = &exec.Concat{Children: sources}
	}

	op, err := exec.BuildSelectOpts(p.cat, st, source, exec.Options{Mode: p.opts.ExecMode, Parallelism: p.opts.Parallelism})
	if err != nil {
		return nil, err
	}
	return &Plan{
		Op:          op,
		Model:       firstModel,
		Hybrid:      hybrid,
		GridRows:    grid,
		SEInflation: inflateMax,
		PartsTotal:  pt.NumParts(),
		PartsPruned: pt.NumParts() - len(keep),
	}, nil
}
