package aqp

import (
	"math"
	"testing"

	"datalaws/internal/exec"
	"datalaws/internal/expr"
	"datalaws/internal/modelstore"
	"datalaws/internal/sql"
	"datalaws/internal/synth"
	"datalaws/internal/table"
)

func fixture(t *testing.T) (*table.Catalog, *table.Table, *modelstore.Store, *modelstore.CapturedModel, *synth.LOFARData) {
	t.Helper()
	d := synth.GenerateLOFAR(synth.LOFARConfig{
		Sources: 25, ObsPerSource: 40, NoiseFrac: 0.03, AnomalyFrac: 0, Seed: 21,
	})
	tb, err := synth.LOFARTable("measurements", d)
	if err != nil {
		t.Fatal(err)
	}
	cat := table.NewCatalog()
	if err := cat.Add(tb); err != nil {
		t.Fatal(err)
	}
	store := modelstore.NewStore()
	m, err := store.Capture(tb, modelstore.Spec{
		Name: "spectra", Table: "measurements",
		Formula: "intensity ~ p * pow(nu, alpha)",
		Inputs:  []string{"nu"}, GroupBy: "source",
		Start: map[string]float64{"p": 1, "alpha": -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cat, tb, store, m, d
}

func TestEnumerableValues(t *testing.T) {
	_, tb, _, _, _ := fixture(t)
	vals, ok := EnumerableValues(tb, "nu", 100)
	if !ok {
		t.Fatal("nu must be enumerable")
	}
	if len(vals) != 4 || vals[0] != 0.12 || vals[3] != 0.18 {
		t.Fatalf("vals = %v", vals)
	}
	// Intensity is continuous noise: not enumerable at a low threshold.
	if _, ok := EnumerableValues(tb, "intensity", 50); ok {
		t.Fatal("intensity should not be enumerable")
	}
	if _, ok := EnumerableValues(tb, "nosuch", 10); ok {
		t.Fatal("missing column")
	}
}

func TestDomainsForAndGridSize(t *testing.T) {
	_, tb, _, _, _ := fixture(t)
	doms, err := DomainsFor(tb, []string{"nu"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if GridSize(doms) != 4 {
		t.Fatalf("grid = %d", GridSize(doms))
	}
	if _, err := DomainsFor(tb, []string{"intensity"}, 5); err == nil {
		t.Fatal("want non-enumerable error")
	}
}

func TestLegalSetExact(t *testing.T) {
	_, tb, _, _, d := fixture(t)
	ls, err := BuildLegalSet(tb, "source", []string{"nu"}, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ls.Exact() {
		t.Fatal("exact set reports inexact")
	}
	// Every observed combination is legal.
	for i := 0; i < 200; i++ {
		if !ls.Contains(d.Source[i], []float64{d.Nu[i]}) {
			t.Fatalf("observed combo %d rejected", i)
		}
	}
	// A frequency outside the bands is illegal.
	if ls.Contains(d.Source[0], []float64{0.5}) {
		t.Fatal("unobserved combo accepted")
	}
	if ls.Contains(99999, []float64{0.12}) {
		t.Fatal("unknown group accepted")
	}
}

func TestLegalSetBloom(t *testing.T) {
	_, tb, _, _, d := fixture(t)
	ls, err := BuildLegalSet(tb, "source", []string{"nu"}, true, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Exact() {
		t.Fatal("bloom set reports exact")
	}
	for i := 0; i < 200; i++ {
		if !ls.Contains(d.Source[i], []float64{d.Nu[i]}) {
			t.Fatal("bloom filter false negative")
		}
	}
	bl := ls.(*BloomLegalSet)
	if bl.FPRate() > 0.05 {
		t.Fatalf("fp rate = %g", bl.FPRate())
	}
	// Bloom must be much smaller than exact for this data.
	exact, _ := BuildLegalSet(tb, "source", []string{"nu"}, false, 0)
	if bl.SizeBytes() >= exact.SizeBytes() {
		t.Fatalf("bloom %d >= exact %d bytes", bl.SizeBytes(), exact.SizeBytes())
	}
}

func TestModelScanGeneratesGrid(t *testing.T) {
	_, tb, _, m, d := fixture(t)
	doms, err := DomainsFor(tb, []string{"nu"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := NewModelScan(m, doms, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Drain(scan)
	if err != nil {
		t.Fatal(err)
	}
	// 25 sources × 4 bands.
	if len(rows) != 100 {
		t.Fatalf("rows = %d", len(rows))
	}
	cols := scan.Columns()
	if cols[0] != "measurements.source" || cols[2] != "measurements.intensity" {
		t.Fatalf("cols = %v", cols)
	}
	// Predictions track the generating law.
	for _, row := range rows {
		src := row[0].I
		nu := row[1].F
		pred := row[2].F
		truth := d.Truth[src]
		want := truth.P * math.Pow(nu, truth.Alpha)
		if math.Abs(pred-want)/want > 0.15 {
			t.Fatalf("source %d nu %g: pred %g want %g", src, nu, pred, want)
		}
	}
}

func TestModelScanWithErrorBounds(t *testing.T) {
	_, tb, _, m, _ := fixture(t)
	doms, _ := DomainsFor(tb, []string{"nu"}, 100)
	scan, err := NewModelScan(m, doms, nil)
	if err != nil {
		t.Fatal(err)
	}
	scan.WithError = true
	scan.Level = 0.95
	rows, err := exec.Drain(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Columns()) != 5 {
		t.Fatalf("cols = %v", scan.Columns())
	}
	for _, row := range rows {
		v, lo, hi := row[2].F, row[3].F, row[4].F
		if !(lo < v && v < hi) {
			t.Fatalf("bounds do not bracket: %g [%g, %g]", v, lo, hi)
		}
	}
}

func TestPointLookupMatchesTruth(t *testing.T) {
	_, _, _, m, d := fixture(t)
	for src := int64(1); src <= 25; src++ {
		truth := d.Truth[src]
		v, lo, hi, err := PointLookup(m, src, []float64{0.14}, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		want := truth.P * math.Pow(0.14, truth.Alpha)
		if math.Abs(v-want)/want > 0.2 {
			t.Fatalf("source %d: %g want %g", src, v, want)
		}
		if !(lo < v && v < hi) {
			t.Fatalf("source %d: bounds [%g,%g] around %g", src, lo, hi, v)
		}
	}
	if _, _, _, err := PointLookup(m, 424242, []float64{0.14}, 0.95); err == nil {
		t.Fatal("want error for unknown group")
	}
	if _, _, _, err := PointLookup(m, 1, []float64{0.1, 0.2}, 0.95); err == nil {
		t.Fatal("want error for wrong input arity")
	}
}

func TestAnalyticAggregatesLinearModel(t *testing.T) {
	// Fit a linear model per sensor and compare analytic aggregates with
	// full enumeration.
	d := synth.GenerateSensors(synth.SensorConfig{Sensors: 4, Steps: 200, Noise: 0.01, Seed: 5})
	tb, err := synth.SensorTable("readings", d)
	if err != nil {
		t.Fatal(err)
	}
	store := modelstore.NewStore()
	m, err := store.Capture(tb, modelstore.Spec{
		Name: "lin", Table: "readings",
		Formula: "temp ~ a + b*t",
		Inputs:  []string{"t"}, GroupBy: "sensor",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !IsLinearInInputs(m) {
		t.Fatal("a + b*t must be linear in t")
	}
	doms, err := DomainsFor(tb, []string{"t"}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AnalyticAggregates(m, doms)
	if err != nil {
		t.Fatal(err)
	}
	// Enumerate via ModelScan for the reference.
	scan, _ := NewModelScan(m, doms, nil)
	rows, err := exec.Drain(scan)
	if err != nil {
		t.Fatal(err)
	}
	var sum, mn, mx float64
	mn, mx = math.Inf(1), math.Inf(-1)
	for _, r := range rows {
		v := r[2].F
		sum += v
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if got.Count != len(rows) {
		t.Fatalf("count %d vs %d", got.Count, len(rows))
	}
	if math.Abs(got.Sum-sum) > 1e-6*math.Abs(sum) {
		t.Fatalf("sum %g vs %g", got.Sum, sum)
	}
	if math.Abs(got.Min-mn) > 1e-9 || math.Abs(got.Max-mx) > 1e-9 {
		t.Fatalf("range [%g,%g] vs [%g,%g]", got.Min, got.Max, mn, mx)
	}
	if math.Abs(got.Avg-sum/float64(len(rows))) > 1e-9 {
		t.Fatalf("avg %g", got.Avg)
	}
}

func TestAnalyticAggregatesRejectsNonlinear(t *testing.T) {
	_, _, _, m, _ := fixture(t)
	if IsLinearInInputs(m) {
		t.Fatal("power law is not linear in nu")
	}
	doms := []Domain{{Col: "nu", Vals: synth.Bands}}
	if _, err := AnalyticAggregates(m, doms); err == nil {
		t.Fatal("want error for nonlinear model")
	}
}

func TestBuildApproxSelectPointQuery(t *testing.T) {
	cat, _, store, _, d := fixture(t)
	// The paper's first example query.
	st, err := sql.Parse("APPROX SELECT intensity FROM measurements WHERE source = 7 AND nu = 0.15")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildApproxSelect(cat, store, st.(*sql.SelectStmt), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Drain(plan.Op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	truth := d.Truth[7]
	want := truth.P * math.Pow(0.15, truth.Alpha)
	if math.Abs(rows[0][0].F-want)/want > 0.2 {
		t.Fatalf("pred %g want %g", rows[0][0].F, want)
	}
	if plan.Model.Spec.Name != "spectra" || plan.Hybrid {
		t.Fatalf("plan meta: %+v", plan)
	}
}

func TestBuildApproxSelectRangeQuery(t *testing.T) {
	cat, tb, store, _, _ := fixture(t)
	// The paper's second example query: selection over model output.
	st, _ := sql.Parse("APPROX SELECT source, intensity FROM measurements WHERE nu = 0.12 AND intensity > 3.0")
	plan, err := BuildApproxSelect(cat, store, st.(*sql.SelectStmt), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	approxRows, err := exec.Drain(plan.Op)
	if err != nil {
		t.Fatal(err)
	}
	// Exact reference.
	exactStmt, _ := sql.Parse("SELECT source, intensity FROM measurements WHERE nu = 0.12 AND intensity > 3.0")
	exOp, err := exec.BuildSelect(cat, exactStmt.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	exactRows, err := exec.Drain(exOp)
	if err != nil {
		t.Fatal(err)
	}
	// Exact rows are per-measurement; approx rows are per-source. Compare
	// the source sets.
	exactSources := map[int64]bool{}
	for _, r := range exactRows {
		exactSources[r[0].I] = true
	}
	approxSources := map[int64]bool{}
	for _, r := range approxRows {
		approxSources[r[0].I] = true
	}
	// The sets should agree except near the threshold.
	miss := 0
	for s := range exactSources {
		if !approxSources[s] {
			miss++
		}
	}
	for s := range approxSources {
		if !exactSources[s] {
			miss++
		}
	}
	if miss > len(exactSources)/2+2 {
		t.Fatalf("approx sources diverge: exact %d approx %d miss %d",
			len(exactSources), len(approxSources), miss)
	}
	_ = tb
}

func TestBuildApproxWithErrorColumns(t *testing.T) {
	cat, _, store, _, _ := fixture(t)
	st, _ := sql.Parse("APPROX SELECT intensity, intensity_lo, intensity_hi FROM measurements WHERE source = 3 AND nu = 0.16 WITH ERROR")
	plan, err := BuildApproxSelect(cat, store, st.(*sql.SelectStmt), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Drain(plan.Op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	v, lo, hi := rows[0][0].F, rows[0][1].F, rows[0][2].F
	if !(lo < v && v < hi) {
		t.Fatalf("bounds [%g, %g] around %g", lo, hi, v)
	}
}

func TestBuildApproxAggregates(t *testing.T) {
	cat, _, store, _, _ := fixture(t)
	st, _ := sql.Parse("APPROX SELECT count(*), avg(intensity) FROM measurements WHERE nu = 0.12")
	plan, err := BuildApproxSelect(cat, store, st.(*sql.SelectStmt), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Drain(plan.Op)
	if err != nil {
		t.Fatal(err)
	}
	// 25 sources, each with one 0.12 grid point.
	if rows[0][0].I != 25 {
		t.Fatalf("count = %v", rows[0][0])
	}
	// Exact average per measurement (multiple obs per source at 0.12).
	ex, _ := sql.Parse("SELECT avg(intensity) FROM measurements WHERE nu = 0.12")
	exOp, _ := exec.BuildSelect(cat, ex.(*sql.SelectStmt))
	exRows, _ := exec.Drain(exOp)
	rel := math.Abs(rows[0][1].F-exRows[0][0].F) / exRows[0][0].F
	if rel > 0.1 {
		t.Fatalf("approx avg off by %.1f%%", rel*100)
	}
}

func TestBuildApproxRejectsUncoveredColumn(t *testing.T) {
	cat, tb, store, _, _ := fixture(t)
	_ = tb
	st, _ := sql.Parse("APPROX SELECT nosuch FROM measurements")
	if _, err := BuildApproxSelect(cat, store, st.(*sql.SelectStmt), DefaultOptions()); err == nil {
		t.Fatal("want no-model error for uncovered column")
	}
}

func TestBuildApproxRejectsJoin(t *testing.T) {
	cat, _, store, _, _ := fixture(t)
	other, _ := table.NewSchema(table.ColumnDef{Name: "id", Type: 0})
	cat.Create("o", other)
	st, _ := sql.Parse("APPROX SELECT intensity FROM measurements JOIN o ON source = id")
	if _, err := BuildApproxSelect(cat, store, st.(*sql.SelectStmt), DefaultOptions()); err == nil {
		t.Fatal("want join rejection")
	}
}

func TestHybridPartialCoverage(t *testing.T) {
	cat, tb, store, _, _ := fixture(t)
	// A model fitted only on nu > 0.13: queries must route model tuples
	// inside the region and raw tuples outside it.
	w, _ := expr.Parse("nu > 0.13")
	_, err := store.Capture(tb, modelstore.Spec{
		Name: "partial", Table: "measurements",
		Formula: "intensity ~ q * pow(nu, beta)",
		Inputs:  []string{"nu"}, GroupBy: "source",
		Where: w,
		Start: map[string]float64{"q": 1, "beta": -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	store.Drop("spectra") // force the partial model
	st, _ := sql.Parse("APPROX SELECT count(*) FROM measurements WHERE nu < 0.13")
	// Three narrow bands leave less ν-driven variance, so the partial fit's
	// R² sits below the default trust threshold; relax it — this test is
	// about routing, not fit quality.
	opts := DefaultOptions()
	opts.Policy.MinMedianR2 = 0.5
	plan, err := BuildApproxSelect(cat, store, st.(*sql.SelectStmt), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Hybrid {
		t.Fatal("plan should be hybrid")
	}
	rows, err := exec.Drain(plan.Op)
	if err != nil {
		t.Fatal(err)
	}
	// nu < 0.13 lies outside the model region, so the answer must equal the
	// exact count of raw 0.12-band rows.
	ex, _ := sql.Parse("SELECT count(*) FROM measurements WHERE nu < 0.13")
	exOp, _ := exec.BuildSelect(cat, ex.(*sql.SelectStmt))
	exRows, _ := exec.Drain(exOp)
	if rows[0][0].I != exRows[0][0].I {
		t.Fatalf("hybrid raw side: %v vs exact %v", rows[0][0], exRows[0][0])
	}
}

func TestAllowAllLegalSet(t *testing.T) {
	var ls LegalSet = AllowAll{}
	if !ls.Contains(1, []float64{9.9}) || ls.SizeBytes() != 0 || ls.Exact() {
		t.Fatal("AllowAll semantics")
	}
}
