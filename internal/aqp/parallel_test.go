package aqp

import (
	"strings"
	"testing"

	"datalaws/internal/exec"
	"datalaws/internal/sql"
)

// drainParallel plans one APPROX SELECT at the given parallelism and
// materializes it.
func drainParallel(t *testing.T, q string, workers int) ([]exec.Row, *Plan) {
	t.Helper()
	cat, _, store, _, _ := fixture(t)
	st, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Parallelism = workers
	plan, err := BuildApproxSelect(cat, store, st.(*sql.SelectStmt), opts)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Drain(plan.Op)
	if err != nil {
		t.Fatal(err)
	}
	return rows, plan
}

// TestParallelModelScanMatchesSerial checks that a grouped zero-IO model
// scan split into per-worker group ranges regenerates exactly the serial
// scan's rows, in the same order — including WITH ERROR bound columns,
// whose gradient scratch is per-worker.
func TestParallelModelScanMatchesSerial(t *testing.T) {
	for _, q := range []string{
		"APPROX SELECT source, nu, intensity FROM measurements",
		"APPROX SELECT source, nu, intensity, intensity_lo, intensity_hi FROM measurements WITH ERROR",
		"APPROX SELECT source, intensity FROM measurements WHERE intensity > 2.0",
	} {
		want, _ := drainParallel(t, q, 1)
		for _, p := range []int{2, 4} {
			got, _ := drainParallel(t, q, p)
			if len(got) != len(want) {
				t.Fatalf("%q p=%d: %d rows vs serial %d", q, p, len(got), len(want))
			}
			for i := range want {
				for c := range want[i] {
					if want[i][c].K != got[i][c].K || want[i][c].String() != got[i][c].String() {
						t.Fatalf("%q p=%d row %d col %d: serial %v vs parallel %v",
							q, p, i, c, want[i][c], got[i][c])
					}
				}
			}
		}
	}
}

// TestParallelModelScanAggregates runs a grouped aggregate over the model
// scan: the partial-aggregate merge must agree with serial execution.
func TestParallelModelScanAggregates(t *testing.T) {
	q := "APPROX SELECT source, avg(intensity), count(*) FROM measurements GROUP BY source ORDER BY source"
	want, _ := drainParallel(t, q, 1)
	got, _ := drainParallel(t, q, 4)
	if len(got) != len(want) {
		t.Fatalf("%d rows vs serial %d", len(got), len(want))
	}
	for i := range want {
		if want[i][0].I != got[i][0].I || want[i][2].I != got[i][2].I {
			t.Fatalf("row %d: serial %v vs parallel %v", i, want[i], got[i])
		}
		rel := (want[i][1].F - got[i][1].F) / want[i][1].F
		if rel > 1e-9 || rel < -1e-9 {
			t.Fatalf("row %d avg: serial %g vs parallel %g", i, want[i][1].F, got[i][1].F)
		}
	}
}

// TestPointLookupStaysSerial pins that a point-pushdown scan (one group)
// does not spin up a worker pool.
func TestPointLookupStaysSerial(t *testing.T) {
	_, plan := drainParallel(t, "APPROX SELECT intensity FROM measurements WHERE source = 7 AND nu = 0.15", 4)
	if s := exec.PlanString(plan.Op); strings.Contains(s, "Gather") {
		t.Fatalf("point query built a worker pool:\n%s", s)
	}
}
