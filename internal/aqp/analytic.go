package aqp

import (
	"fmt"
	"math"

	"datalaws/internal/expr"
	"datalaws/internal/modelstore"
)

// AggStats are analytic aggregate solutions over the model's input grid,
// computed without materializing any tuples — the paper's "analytic
// solutions for linear models" opportunity (§4.2).
type AggStats struct {
	Min, Max float64
	Sum, Avg float64
	Count    int
}

// IsLinearInInputs reports whether the captured model is affine in its input
// variables (so extremes over a box domain occur at corners and sums
// decompose by input).
func IsLinearInInputs(m *modelstore.CapturedModel) bool {
	for _, in := range m.Model.Inputs {
		d, err := expr.Diff(m.Model.RHS, in)
		if err != nil {
			return false
		}
		// The derivative must not mention any input variable.
		for _, v := range expr.Vars(d) {
			for _, in2 := range m.Model.Inputs {
				if v == in2 {
					return false
				}
			}
		}
	}
	return true
}

// AnalyticAggregates computes min/max/sum/avg/count of the model output over
// the full (groups × domains) grid analytically for models affine in their
// inputs:
//
//	f(x) = c + Σ bᵢ·xᵢ  ⇒  extremes at domain corners chosen per sign(bᵢ),
//	Σ_grid f = |grid|·c + Σ bᵢ·(Σ xᵢ)·∏_{j≠i}|domain_j|.
//
// It returns an error for models that are not affine in inputs; callers
// fall back to grid enumeration (ModelScan + HashAggregate).
func AnalyticAggregates(m *modelstore.CapturedModel, domains []Domain) (*AggStats, error) {
	if !IsLinearInInputs(m) {
		return nil, fmt.Errorf("aqp: model %q is not linear in its inputs", m.Spec.Name)
	}
	if len(domains) != len(m.Model.Inputs) {
		return nil, fmt.Errorf("aqp: %d domains for %d inputs", len(domains), len(m.Model.Inputs))
	}
	grid := GridSize(domains)
	if grid == 0 {
		return nil, fmt.Errorf("aqp: empty grid")
	}

	// Per-domain precomputation.
	mins := make([]float64, len(domains))
	maxs := make([]float64, len(domains))
	sums := make([]float64, len(domains))
	for i, d := range domains {
		mn, mx := math.Inf(1), math.Inf(-1)
		var s float64
		for _, v := range d.Vals {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
			s += v
		}
		mins[i], maxs[i], sums[i] = mn, mx, s
	}

	out := &AggStats{Min: math.Inf(1), Max: math.Inf(-1)}
	zeroInputs := make([]float64, len(domains))
	grad := make([]float64, len(m.Model.Params))
	_ = grad
	for _, key := range m.Order {
		g := m.Groups[key]
		if !g.OK() {
			continue
		}
		// Affine decomposition at the group's parameters: evaluate the
		// constant term and each input coefficient by finite evaluation —
		// exact for affine functions.
		c := m.Model.Eval(g.Params, zeroInputs)
		coefs := make([]float64, len(domains))
		probe := make([]float64, len(domains))
		for i := range domains {
			copy(probe, zeroInputs)
			probe[i] = 1
			coefs[i] = m.Model.Eval(g.Params, probe) - c
		}

		// Extremes at corners.
		lo, hi := c, c
		for i, b := range coefs {
			if b >= 0 {
				lo += b * mins[i]
				hi += b * maxs[i]
			} else {
				lo += b * maxs[i]
				hi += b * mins[i]
			}
		}
		if lo < out.Min {
			out.Min = lo
		}
		if hi > out.Max {
			out.Max = hi
		}

		// Sum over the grid decomposes per input.
		gsum := float64(grid) * c
		for i, b := range coefs {
			others := grid / len(domains[i].Vals)
			gsum += b * sums[i] * float64(others)
		}
		out.Sum += gsum
		out.Count += grid
	}
	if out.Count == 0 {
		return nil, fmt.Errorf("aqp: no fitted groups")
	}
	out.Avg = out.Sum / float64(out.Count)
	return out, nil
}
