package aqp

import (
	"fmt"
	"math"

	"datalaws/internal/exec"
	"datalaws/internal/expr"
	"datalaws/internal/modelstore"
	"datalaws/internal/stats"
)

// ModelScan is the paper's zero-IO scan (§4.1): an exec.Operator that
// regenerates tuples from a captured model and its parameter table instead
// of reading stored measurements. Output columns mirror the base table
// (group column, input columns, predicted output), so the relational
// pipeline above is unchanged; with WithError, <output>_lo and <output>_hi
// prediction-interval bounds are appended.
type ModelScan struct {
	Model *modelstore.CapturedModel
	// Domains enumerates each input column's legal values, in model input
	// order.
	Domains []Domain
	// Legal restricts emitted combinations; nil admits everything.
	Legal LegalSet
	// Groups optionally restricts the scan to these group keys (nil scans
	// every fitted group). The approximate planner pushes equality
	// predicates on the group column down to this list, so a point query
	// touches one parameter-table entry instead of enumerating the grid.
	Groups []int64
	// WithError appends prediction-interval columns at Level (default 0.95).
	WithError bool
	Level     float64
	// SEInflation scales the prediction SE (staleness widening; values ≤ 1
	// are treated as 1).
	SEInflation float64
	// TableName qualifies output column names; defaults to the model's
	// table.
	TableName string
	// Interruptible binds the statement context so grid enumeration stops
	// promptly on cancellation, even when the legal set rejects long runs of
	// combinations without emitting a row.
	exec.Interruptible

	cols     []string
	groupIdx int
	comboIdx []int
	done     bool
	scratch  []float64
	grad     []float64
	rowsOut  int
}

// NewModelScan validates and constructs a scan.
func NewModelScan(m *modelstore.CapturedModel, domains []Domain, legal LegalSet) (*ModelScan, error) {
	if len(domains) != len(m.Model.Inputs) {
		return nil, fmt.Errorf("aqp: %d domains for %d model inputs", len(domains), len(m.Model.Inputs))
	}
	for i, d := range domains {
		if d.Col != m.Model.Inputs[i] {
			return nil, fmt.Errorf("aqp: domain %d is %q, model input is %q", i, d.Col, m.Model.Inputs[i])
		}
		if len(d.Vals) == 0 {
			return nil, fmt.Errorf("aqp: empty domain for %q", d.Col)
		}
	}
	return &ModelScan{Model: m, Domains: domains, Legal: legal}, nil
}

// Columns implements exec.Operator.
func (s *ModelScan) Columns() []string {
	if s.cols != nil {
		return s.cols
	}
	tbl := s.TableName
	if tbl == "" {
		tbl = s.Model.Spec.Table
	}
	var cols []string
	if s.Model.Grouped() {
		cols = append(cols, tbl+"."+s.Model.Spec.GroupBy)
	}
	for _, in := range s.Model.Model.Inputs {
		cols = append(cols, tbl+"."+in)
	}
	cols = append(cols, tbl+"."+s.Model.Model.Output)
	if s.WithError {
		cols = append(cols, tbl+"."+s.Model.Model.Output+"_lo", tbl+"."+s.Model.Model.Output+"_hi")
	}
	s.cols = cols
	return cols
}

// orderKeys returns the group keys the scan enumerates, honoring the
// planner's group restriction.
func (s *ModelScan) orderKeys() []int64 {
	if s.Groups != nil {
		return s.Groups
	}
	return s.Model.Order
}

// Open implements exec.Operator.
func (s *ModelScan) Open() error {
	if s.Level == 0 {
		s.Level = 0.95
	}
	s.groupIdx = 0
	s.comboIdx = make([]int, len(s.Domains))
	s.done = len(s.orderKeys()) == 0
	np := len(s.Model.Model.Params)
	s.scratch = make([]float64, np+len(s.Model.Model.Inputs))
	s.grad = make([]float64, np)
	s.rowsOut = 0
	s.ResetInterrupt()
	// Skip leading failed groups.
	s.skipBadGroups()
	return nil
}

func (s *ModelScan) skipBadGroups() {
	order := s.orderKeys()
	for s.groupIdx < len(order) {
		key := order[s.groupIdx]
		if g, ok := s.Model.Groups[key]; ok && g.OK() {
			return
		}
		s.groupIdx++
	}
	s.done = true
}

// Next implements exec.Operator.
func (s *ModelScan) Next() (exec.Row, error) {
	model := s.Model.Model
	order := s.orderKeys()
	for {
		if err := s.CheckInterrupt(); err != nil {
			return nil, err
		}
		if s.done || s.groupIdx >= len(order) {
			return nil, nil
		}
		key := order[s.groupIdx]
		g := s.Model.Groups[key]

		inputs := make([]float64, len(s.Domains))
		for i, d := range s.Domains {
			inputs[i] = d.Vals[s.comboIdx[i]]
		}
		s.advance()

		if s.Legal != nil && !s.Legal.Contains(key, inputs) {
			continue
		}

		yhat := model.EvalInto(s.scratch, g.Params, inputs)
		row := make(exec.Row, 0, len(s.Columns()))
		if s.Model.Grouped() {
			row = append(row, expr.Int(key))
		}
		for _, v := range inputs {
			row = append(row, expr.Float(v))
		}
		row = append(row, expr.Float(yhat))
		if s.WithError {
			lo, hi := s.predictionInterval(g, inputs, yhat, s.grad)
			row = append(row, expr.Float(lo), expr.Float(hi))
		}
		s.rowsOut++
		return row, nil
	}
}

// advance moves the (group, combo) cursor one step in odometer order.
func (s *ModelScan) advance() {
	for i := len(s.comboIdx) - 1; i >= 0; i-- {
		s.comboIdx[i]++
		if s.comboIdx[i] < len(s.Domains[i].Vals) {
			return
		}
		s.comboIdx[i] = 0
	}
	// Odometer wrapped: next group.
	s.groupIdx++
	s.skipBadGroups()
}

// predictionInterval computes the delta-method prediction interval from the
// stored per-group covariance — the "error bounds" annotation of Figure 2
// step 5. grad is caller-owned scratch (one per concurrent scan).
func (s *ModelScan) predictionInterval(g *modelstore.GroupParams, inputs []float64, yhat float64, grad []float64) (lo, hi float64) {
	if g.Cov == nil || g.DF <= 0 {
		return math.Inf(-1), math.Inf(1)
	}
	m := s.Model.Model
	m.Grad(g.Params, inputs, grad)
	var v float64
	for i := range grad {
		for j := range grad {
			v += grad[i] * g.Cov[i][j] * grad[j]
		}
	}
	if v < 0 {
		v = 0
	}
	se := math.Sqrt(v + g.ResidualSE*g.ResidualSE)
	if s.SEInflation > 1 {
		se *= s.SEInflation
	}
	tcrit := stats.StudentT{Nu: float64(g.DF)}.Quantile(0.5 + s.Level/2)
	return yhat - tcrit*se, yhat + tcrit*se
}

// Close implements exec.Operator.
func (s *ModelScan) Close() error { return nil }

// RowsEmitted reports how many rows the last run produced.
func (s *ModelScan) RowsEmitted() int { return s.rowsOut }

// PointLookup answers the paper's first example query — a point query on
// (group, inputs) — directly from the parameter table: one hash lookup and
// one model evaluation, no scan at all.
func PointLookup(m *modelstore.CapturedModel, group int64, inputs []float64, level float64) (value, lo, hi float64, err error) {
	return PointLookupScaled(m, group, inputs, level, 1)
}

// PointLookupScaled is PointLookup with a staleness widening factor applied
// to the prediction SE (factors ≤ 1 leave the bounds untouched).
func PointLookupScaled(m *modelstore.CapturedModel, group int64, inputs []float64, level, inflate float64) (value, lo, hi float64, err error) {
	g, ok := m.GroupFor(group)
	if !ok {
		return 0, 0, 0, fmt.Errorf("aqp: no fitted parameters for group %d", group)
	}
	if len(inputs) != len(m.Model.Inputs) {
		return 0, 0, 0, fmt.Errorf("aqp: %d inputs, model has %d", len(inputs), len(m.Model.Inputs))
	}
	yhat := m.Model.Eval(g.Params, inputs)
	if g.Cov == nil || g.DF <= 0 {
		return yhat, math.Inf(-1), math.Inf(1), nil
	}
	grad := make([]float64, len(g.Params))
	m.Model.Grad(g.Params, inputs, grad)
	var v float64
	for i := range grad {
		for j := range grad {
			v += grad[i] * g.Cov[i][j] * grad[j]
		}
	}
	if v < 0 {
		v = 0
	}
	se := math.Sqrt(v + g.ResidualSE*g.ResidualSE)
	if inflate > 1 {
		se *= inflate
	}
	tcrit := stats.StudentT{Nu: float64(g.DF)}.Quantile(0.5 + level/2)
	return yhat, yhat - tcrit*se, yhat + tcrit*se, nil
}

// ExplainInfo implements the executor's Explainer so EXPLAIN renders the
// zero-IO scan with its provenance.
func (s *ModelScan) ExplainInfo() string {
	legal := "all combinations"
	if s.Legal != nil {
		if s.Legal.Exact() {
			legal = "exact legal set"
		} else {
			legal = "bloom legal set"
		}
	}
	groups := s.Model.Quality.GroupsOK
	note := ""
	if s.Groups != nil {
		groups = len(s.Groups)
		note = ", point pushdown"
	}
	return fmt.Sprintf("ModelScan model=%s grid=%d×%d (%s%s, zero IO)",
		s.Model.Spec.Name, groups, GridSize(s.Domains), legal, note)
}
