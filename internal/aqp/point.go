package aqp

import (
	"fmt"
	"strings"

	"datalaws/internal/exec"
	"datalaws/internal/expr"
	"datalaws/internal/modelstore"
	"datalaws/internal/sql"
)

// bindPointLookup recognizes the point-query shape on an already-bound
// statement and, when it matches, computes the (at most one) result row
// immediately: group parameters come from one hash lookup, the prediction
// from one model evaluation. Returns ok=false for anything that needs the
// general scan pipeline; the caller then plans normally, so this is purely
// a fast path, never a semantic fork. The emitted row, column names and
// empty-result conditions (unfitted group, value outside the enumerated
// domain, illegal combination) replicate exactly what the generic
// ModelScan + Filter + Project pipeline would produce.
func (p *Prepared) bindPointLookup(st *sql.SelectStmt, model *modelstore.CapturedModel, domains []Domain, legal LegalSet, inflate float64) (exec.Operator, bool) {
	if model.Spec.Where != nil { // hybrid plans route through the raw side
		return nil, false
	}
	if len(st.GroupBy) > 0 || st.Having != nil || len(st.OrderBy) > 0 || st.Limit >= 0 {
		return nil, false
	}
	eqs, pure := conjunctEqualities(st.Where, st.From)
	if !pure {
		return nil, false
	}
	// Every input — and the group column, when grouped — must be pinned,
	// and nothing else may appear in the WHERE clause.
	want := len(model.Model.Inputs)
	if model.Grouped() {
		want++
	}
	if len(eqs) != want {
		return nil, false
	}
	var key int64
	if model.Grouped() {
		v, ok := eqs[model.Spec.GroupBy]
		if !ok {
			return nil, false
		}
		if key, ok = asGroupKey(v); !ok {
			return nil, false
		}
	}
	inputs := make([]float64, len(model.Model.Inputs))
	for i, in := range model.Model.Inputs {
		v, ok := eqs[in]
		if !ok {
			return nil, false
		}
		f, err := v.AsFloat()
		if err != nil {
			return nil, false
		}
		inputs[i] = f
	}
	// The select list must be plain references to the scan's columns.
	cols, vals, ok := p.pointProjection(st, model, key, inputs)
	if !ok {
		return nil, false
	}

	op := &pointOp{cols: cols, model: model.Spec.Name}
	// Empty-result conditions, mirroring the generic grid enumeration.
	if _, fitted := model.GroupFor(key); !fitted {
		return op, true
	}
	for i, d := range domains {
		if !domainContains(d, inputs[i]) {
			return op, true
		}
	}
	if legal != nil && !legal.Contains(key, inputs) {
		return op, true
	}
	var yhat, lo, hi float64
	if st.WithError {
		level := p.opts.Level
		if level <= 0 || level >= 1 {
			level = 0.95
		}
		var err error
		yhat, lo, hi, err = PointLookupScaled(model, key, inputs, level, inflate)
		if err != nil {
			return op, true
		}
	} else {
		// Without WITH ERROR the interval columns are unreferenced; skip
		// the gradient and t-quantile work.
		g, _ := model.GroupFor(key)
		yhat = model.Model.Eval(g.Params, inputs)
	}
	row := make(exec.Row, len(vals))
	for i, src := range vals {
		switch src.kind {
		case pointColGroup:
			row[i] = expr.Int(key)
		case pointColInput:
			row[i] = expr.Float(inputs[src.input])
		case pointColOutput:
			row[i] = expr.Float(yhat)
		case pointColLo:
			row[i] = expr.Float(lo)
		case pointColHi:
			row[i] = expr.Float(hi)
		}
	}
	op.row = row
	return op, true
}

type pointColKind uint8

const (
	pointColGroup pointColKind = iota
	pointColInput
	pointColOutput
	pointColLo
	pointColHi
)

type pointColRef struct {
	kind  pointColKind
	input int // index for pointColInput
}

// pointProjection maps the select list onto point-lookup columns, with the
// same output naming as the generic planner (alias, else the identifier's
// unqualified suffix). Any non-identifier item, star, or reference to a
// column the model cannot produce rejects the fast path.
func (p *Prepared) pointProjection(st *sql.SelectStmt, model *modelstore.CapturedModel, key int64, inputs []float64) ([]string, []pointColRef, bool) {
	cols := make([]string, len(st.Items))
	vals := make([]pointColRef, len(st.Items))
	for i, it := range st.Items {
		if it.Star {
			return nil, nil, false
		}
		id, ok := it.Expr.(*expr.Ident)
		if !ok {
			return nil, nil, false
		}
		name := unqualify(id.Name, st.From)
		if name == "" {
			return nil, nil, false
		}
		ref, ok := pointColFor(model, name, st.WithError)
		if !ok {
			return nil, nil, false
		}
		vals[i] = ref
		if it.Alias != "" {
			cols[i] = it.Alias
		} else {
			cols[i] = name
		}
	}
	return cols, vals, true
}

func pointColFor(model *modelstore.CapturedModel, name string, withError bool) (pointColRef, bool) {
	if model.Grouped() && name == model.Spec.GroupBy {
		return pointColRef{kind: pointColGroup}, true
	}
	for i, in := range model.Model.Inputs {
		if name == in {
			return pointColRef{kind: pointColInput, input: i}, true
		}
	}
	out := model.Model.Output
	switch name {
	case out:
		return pointColRef{kind: pointColOutput}, true
	case out + "_lo":
		if withError {
			return pointColRef{kind: pointColLo}, true
		}
	case out + "_hi":
		if withError {
			return pointColRef{kind: pointColHi}, true
		}
	}
	return pointColRef{}, false
}

// conjunctEqualities is the strict form of equalityConsts: it reports
// ok=false unless the whole predicate is an AND-tree of `col = literal`
// conjuncts (qualified with the queried table or bare), with no duplicate
// columns.
func conjunctEqualities(pred expr.Expr, tableName string) (map[string]expr.Value, bool) {
	out := map[string]expr.Value{}
	ok := collectConjuncts(pred, tableName, out)
	return out, ok
}

func collectConjuncts(pred expr.Expr, tableName string, out map[string]expr.Value) bool {
	b, isBin := pred.(*expr.Binary)
	if !isBin {
		return false
	}
	switch b.Op {
	case expr.OpAnd:
		return collectConjuncts(b.L, tableName, out) && collectConjuncts(b.R, tableName, out)
	case expr.OpEq:
		id, lit := asIdentLit(b.L, b.R)
		if id == nil {
			id, lit = asIdentLit(b.R, b.L)
		}
		if id == nil {
			return false
		}
		name := unqualify(id.Name, tableName)
		if name == "" {
			return false
		}
		if _, dup := out[name]; dup {
			return false
		}
		out[name] = lit.Val
		return true
	}
	return false
}

// unqualify strips a matching table qualifier, returning "" when the name
// is qualified with a different table.
func unqualify(name, tableName string) string {
	i := strings.LastIndexByte(name, '.')
	if i < 0 {
		return name
	}
	if name[:i] != tableName {
		return ""
	}
	return name[i+1:]
}

// pointOp is a one-row (or empty) operator produced by the point-lookup
// fast path.
type pointOp struct {
	cols  []string
	row   exec.Row // nil → empty result
	model string
	done  bool
}

// Columns implements exec.Operator.
func (o *pointOp) Columns() []string { return o.cols }

// Open implements exec.Operator.
func (o *pointOp) Open() error { o.done = false; return nil }

// Next implements exec.Operator.
func (o *pointOp) Next() (exec.Row, error) {
	if o.done || o.row == nil {
		return nil, nil
	}
	o.done = true
	return o.row, nil
}

// Close implements exec.Operator.
func (o *pointOp) Close() error { return nil }

// ExplainInfo implements the executor's Explainer.
func (o *pointOp) ExplainInfo() string {
	return fmt.Sprintf("PointLookup model=%s (parameter-table hash probe, zero IO)", o.model)
}
