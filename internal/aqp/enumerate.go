// Package aqp implements approximate query processing from captured models —
// the paper's §4.2. A ModelScan regenerates tuples from a model and its
// parameter table without touching the stored measurements (zero-IO scans);
// enumerable-column detection and legal-combination filters solve the
// parameter-space enumeration challenge; analytic aggregate solutions handle
// linear models without materializing the grid; and the approximate planner
// substitutes these for raw scans under APPROX SELECT, annotating outputs
// with prediction-interval error bounds when WITH ERROR is requested.
package aqp

import (
	"fmt"
	"math"
	"sort"

	"datalaws/internal/bloom"
	"datalaws/internal/table"
)

// DefaultMaxDistinct bounds how many distinct values a column may have and
// still count as enumerable. The paper's ν column has 4; timestamps in a
// bounded window may have thousands.
const DefaultMaxDistinct = 10000

// EnumerableValues returns the sorted distinct values of a complete numeric
// column if there are at most maxDistinct of them; ok is false otherwise
// (non-numeric, NULL-bearing, or high-cardinality columns do not
// enumerate). This implements §4.2's "if a parameter column is enumerable,
// we can use it without actually loading its values" detection — we load
// once at plan time and remember the domain. The column is snapshotted
// under the table lock, so enumeration is safe against concurrent appends.
func EnumerableValues(t *table.Table, col string, maxDistinct int) (vals []float64, ok bool) {
	if maxDistinct <= 0 {
		maxDistinct = DefaultMaxDistinct
	}
	snapshot, err := t.FloatColumn(col)
	if err != nil {
		return nil, false
	}
	set := map[float64]struct{}{}
	for _, v := range snapshot {
		set[v] = struct{}{}
		if len(set) > maxDistinct {
			return nil, false
		}
	}
	out := make([]float64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out, true
}

// Domain is the enumerated value set of one input column.
type Domain struct {
	Col  string
	Vals []float64
}

// DomainsFor enumerates every model input column of a table.
func DomainsFor(t *table.Table, cols []string, maxDistinct int) ([]Domain, error) {
	out := make([]Domain, len(cols))
	for i, c := range cols {
		vals, ok := EnumerableValues(t, c, maxDistinct)
		if !ok {
			return nil, fmt.Errorf("aqp: column %q is not enumerable (more than %d distinct values)", c, maxDistinct)
		}
		out[i] = Domain{Col: c, Vals: vals}
	}
	return out, nil
}

// GridSize returns the number of input combinations in the cross product.
func GridSize(domains []Domain) int {
	n := 1
	for _, d := range domains {
		n *= len(d.Vals)
	}
	return n
}

// LegalSet answers whether a (group, inputs) combination occurred in the
// original data, preserving relational semantics for point queries (§4.2
// "legal parameter combinations"). Implementations trade memory for
// exactness.
type LegalSet interface {
	Contains(group int64, inputs []float64) bool
	SizeBytes() int
	// Exact reports whether Contains can return false positives.
	Exact() bool
}

// AllowAll is a LegalSet that admits every combination (used when the model
// is trusted to generalize, accepting the relational-semantics violation the
// paper warns about).
type AllowAll struct{}

// Contains implements LegalSet.
func (AllowAll) Contains(int64, []float64) bool { return true }

// SizeBytes implements LegalSet.
func (AllowAll) SizeBytes() int { return 0 }

// Exact implements LegalSet.
func (AllowAll) Exact() bool { return false }

func comboKey(group int64, inputs []float64) string {
	// Fixed-width binary key; math.Float64bits keeps -0/0 distinct, which is
	// fine for legality checks built from the same encoder.
	b := make([]byte, 8+8*len(inputs))
	putUint64(b, uint64(group))
	for i, v := range inputs {
		putUint64(b[8+8*i:], math.Float64bits(v))
	}
	return string(b)
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// ExactLegalSet stores every observed combination in a hash set.
type ExactLegalSet struct {
	set map[string]struct{}
}

// Contains implements LegalSet. The key is built on the stack (for up to 7
// inputs) and the string conversion in the map probe is elided by the
// compiler, so the model scan's per-combination legality check is
// allocation-free and safe under concurrent scans sharing a cached set.
func (s *ExactLegalSet) Contains(group int64, inputs []float64) bool {
	var arr [64]byte
	need := 8 + 8*len(inputs)
	var b []byte
	if need <= len(arr) {
		b = arr[:need]
	} else {
		b = make([]byte, need)
	}
	putUint64(b, uint64(group))
	for i, v := range inputs {
		putUint64(b[8+8*i:], math.Float64bits(v))
	}
	_, ok := s.set[string(b)]
	return ok
}

// SizeBytes implements LegalSet.
func (s *ExactLegalSet) SizeBytes() int {
	n := 0
	for k := range s.set {
		n += len(k) + 16 // key bytes + map overhead estimate
	}
	return n
}

// Exact implements LegalSet.
func (s *ExactLegalSet) Exact() bool { return true }

// BloomLegalSet approximates the combination set with a Bloom filter.
type BloomLegalSet struct {
	f *bloom.Filter
}

// Contains implements LegalSet, stack-allocating the hash parts for up to 7
// inputs (see ExactLegalSet.Contains).
func (s *BloomLegalSet) Contains(group int64, inputs []float64) bool {
	var arr [8]uint64
	var parts []uint64
	if 1+len(inputs) <= len(arr) {
		parts = arr[:1+len(inputs)]
	} else {
		parts = make([]uint64, 1+len(inputs))
	}
	parts[0] = uint64(group)
	for i, v := range inputs {
		parts[1+i] = math.Float64bits(v)
	}
	return s.f.ContainsUint64s(parts...)
}

// SizeBytes implements LegalSet.
func (s *BloomLegalSet) SizeBytes() int { return s.f.SizeBytes() }

// Exact implements LegalSet.
func (s *BloomLegalSet) Exact() bool { return false }

// FPRate returns the theoretical false-positive rate at the current fill.
func (s *BloomLegalSet) FPRate() float64 { return s.f.EstimatedFPRate() }

// BuildLegalSet scans the table once and records every observed
// (group, inputs) combination. groupCol may be "" for ungrouped models.
// With useBloom, a Bloom filter sized for fpRate replaces the exact set.
func BuildLegalSet(t *table.Table, groupCol string, inputCols []string, useBloom bool, fpRate float64) (LegalSet, error) {
	n, group, inputs, err := t.ModelView(groupCol, inputCols)
	if err != nil {
		return nil, err
	}
	if useBloom {
		f := bloom.New(n, fpRate)
		parts := make([]uint64, 1+len(inputCols))
		for r := 0; r < n; r++ {
			if group != nil {
				parts[0] = uint64(group[r])
			} else {
				parts[0] = 0
			}
			for i := range inputs {
				parts[1+i] = math.Float64bits(inputs[i][r])
			}
			f.AddUint64s(parts...)
		}
		return &BloomLegalSet{f: f}, nil
	}
	set := make(map[string]struct{}, n)
	row := make([]float64, len(inputCols))
	for r := 0; r < n; r++ {
		var g int64
		if group != nil {
			g = group[r]
		}
		for i := range inputs {
			row[i] = inputs[i][r]
		}
		set[comboKey(g, row)] = struct{}{}
	}
	return &ExactLegalSet{set: set}, nil
}

// ExportLegalCombos flattens an exact legal set for the replication wire:
// one group key plus width input values per combination, inputs
// concatenated row-major. ok is false for inexact sets (Bloom, AllowAll) —
// their combinations cannot be enumerated, so replicas receiving such a
// model fall back to AllowAll.
func ExportLegalCombos(ls LegalSet) (groups []int64, inputs []float64, width int, ok bool) {
	els, isExact := ls.(*ExactLegalSet)
	if !isExact {
		return nil, nil, 0, false
	}
	for k := range els.set {
		w := len(k)/8 - 1
		if width == 0 {
			width = w
		}
		groups = append(groups, int64(getUint64(k)))
		for i := 0; i < w; i++ {
			inputs = append(inputs, math.Float64frombits(getUint64(k[8+8*i:])))
		}
	}
	return groups, inputs, width, true
}

// LegalSetFromCombos rebuilds an exact legal set from ExportLegalCombos
// output — the replica-side constructor, no table scan involved.
func LegalSetFromCombos(groups []int64, inputs []float64, width int) LegalSet {
	set := make(map[string]struct{}, len(groups))
	row := make([]float64, width)
	for i, g := range groups {
		copy(row, inputs[i*width:(i+1)*width])
		set[comboKey(g, row)] = struct{}{}
	}
	return &ExactLegalSet{set: set}
}

func getUint64(s string) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(s[i]) << (8 * i)
	}
	return v
}
