package aqp

import (
	"context"
	"fmt"

	"datalaws/internal/exec"
	"datalaws/internal/expr"
	"datalaws/internal/modelstore"
)

// AsVectorOperator implements exec.Vectorizable: the plan lowering swaps the
// row-at-a-time ModelScan for a batch implementation that evaluates the
// captured model's formula over whole input-grid slices in one compiled
// kernel pass — the paper's zero-IO scan at vectorized speed.
func (s *ModelScan) AsVectorOperator() (exec.VectorOperator, bool) {
	v, err := newVecModelScan(s)
	if err != nil {
		return nil, false
	}
	return v, true
}

// vecModelScan regenerates tuples from a captured model in columnar batches.
// It enumerates the same (group, input-combination) odometer as ModelScan,
// but fills input and parameter vectors for up to BatchSize legal rows and
// evaluates the model once per batch through an expr.VecKernel, so batches
// freely span group boundaries (fitted parameters ride along as per-row
// vectors). All mutable state — kernels, buffers, cursor, interrupt counter
// — is private to the scan, so several vecModelScans over one ModelScan can
// run in parallel (the morsel split hands each worker its own, restricted
// to claimed group ranges via setKeys).
type vecModelScan struct {
	s    *ModelScan
	kern expr.VecKernel
	exec.Interruptible

	keys     []int64 // group keys this scan enumerates
	groupIdx int
	comboIdx []int
	done     bool

	args     []expr.VecArg // np parameter vectors followed by ni input vectors
	paramBuf [][]float64
	inputBuf [][]float64
	keyBuf   []int64
	grpBuf   []*modelstore.GroupParams // per-row group, for error bounds
	yhat     []float64
	lo, hi   []float64
	inputs   []float64 // one-row scratch for legality checks
	grad     []float64 // per-scan gradient scratch for error bounds
	rowsOut  int
	batch    exec.Batch
}

func newVecModelScan(s *ModelScan) (*vecModelScan, error) {
	model := s.Model.Model
	np, ni := len(model.Params), len(model.Inputs)
	index := make(map[string]int, np+ni)
	for j, p := range model.Params {
		index[p] = j
	}
	for j, in := range model.Inputs {
		index[in] = np + j
	}
	kern, err := expr.CompileVec(model.RHS, index)
	if err != nil {
		return nil, fmt.Errorf("aqp: vectorizing model %s: %w", s.Model.Spec.Name, err)
	}
	return &vecModelScan{s: s, kern: kern}, nil
}

// Columns implements exec.VectorOperator.
func (v *vecModelScan) Columns() []string { return v.s.Columns() }

// SetContext implements exec.ContextAware; each scan owns its interrupt
// state, so parallel siblings never share a counter.
func (v *vecModelScan) SetContext(ctx context.Context) { v.Interruptible.SetContext(ctx) }

// Open implements exec.VectorOperator.
func (v *vecModelScan) Open() error {
	if err := v.openBufs(); err != nil {
		return err
	}
	v.s.rowsOut = 0
	v.setKeys(v.s.orderKeys())
	return nil
}

// openBufs allocates the scan's private buffers without positioning the
// group cursor; the morsel split opens buffers once and repositions via
// setKeys per claimed morsel.
func (v *vecModelScan) openBufs() error {
	s := v.s
	if s.Level == 0 {
		s.Level = 0.95
	}
	model := s.Model.Model
	np, ni := len(model.Params), len(model.Inputs)
	v.comboIdx = make([]int, len(s.Domains))
	v.args = make([]expr.VecArg, np+ni)
	// Batches never exceed the (possibly pushdown-restricted) grid, so a
	// point lookup allocates one-row buffers, not BatchSize ones.
	bcap := GridSize(s.Domains) * len(s.orderKeys())
	if bcap <= 0 || bcap > exec.BatchSize {
		bcap = exec.BatchSize
	}
	v.paramBuf = make([][]float64, np)
	for j := range v.paramBuf {
		v.paramBuf[j] = make([]float64, bcap)
	}
	v.inputBuf = make([][]float64, ni)
	for j := range v.inputBuf {
		v.inputBuf[j] = make([]float64, bcap)
	}
	v.keyBuf = make([]int64, bcap)
	v.grpBuf = make([]*modelstore.GroupParams, bcap)
	v.yhat = make([]float64, bcap)
	if s.WithError {
		v.lo = make([]float64, bcap)
		v.hi = make([]float64, bcap)
	}
	v.inputs = make([]float64, ni)
	v.grad = make([]float64, np)
	v.rowsOut = 0
	v.ResetInterrupt()
	return nil
}

// setKeys points the scan at a group-key range and rewinds the odometer.
func (v *vecModelScan) setKeys(keys []int64) {
	v.keys = keys
	v.groupIdx = 0
	for i := range v.comboIdx {
		v.comboIdx[i] = 0
	}
	v.done = len(keys) == 0
	if !v.done {
		v.skipBadGroups()
	}
}

func (v *vecModelScan) skipBadGroups() {
	s := v.s
	for v.groupIdx < len(v.keys) {
		key := v.keys[v.groupIdx]
		if g, ok := s.Model.Groups[key]; ok && g.OK() {
			return
		}
		v.groupIdx++
	}
	v.done = true
}

// advance moves the (group, combo) cursor one step in odometer order,
// exactly as the row scan does.
func (v *vecModelScan) advance() {
	s := v.s
	for i := len(v.comboIdx) - 1; i >= 0; i-- {
		v.comboIdx[i]++
		if v.comboIdx[i] < len(s.Domains[i].Vals) {
			return
		}
		v.comboIdx[i] = 0
	}
	v.groupIdx++
	v.skipBadGroups()
}

// NextBatch implements exec.VectorOperator.
func (v *vecModelScan) NextBatch() (*exec.Batch, error) {
	s := v.s
	model := s.Model.Model
	np := len(model.Params)
	n := 0
	for n < len(v.keyBuf) && !v.done && v.groupIdx < len(v.keys) {
		if err := v.CheckInterrupt(); err != nil {
			return nil, err
		}
		key := v.keys[v.groupIdx]
		g := s.Model.Groups[key]
		for i := range v.inputs {
			v.inputs[i] = s.Domains[i].Vals[v.comboIdx[i]]
		}
		v.advance()
		if s.Legal != nil && !s.Legal.Contains(key, v.inputs) {
			continue
		}
		v.keyBuf[n] = key
		v.grpBuf[n] = g
		for j := 0; j < np; j++ {
			v.paramBuf[j][n] = g.Params[j]
		}
		for j, x := range v.inputs {
			v.inputBuf[j][n] = x
		}
		n++
	}
	if n == 0 {
		return nil, nil
	}
	for j := 0; j < np; j++ {
		v.args[j] = expr.VecArg{Vec: v.paramBuf[j]}
	}
	for j := range v.inputBuf {
		v.args[np+j] = expr.VecArg{Vec: v.inputBuf[j]}
	}
	v.kern(n, v.args, v.yhat)
	v.rowsOut += n

	cols := make([]*exec.Vector, 0, len(v.Columns()))
	if s.Model.Grouped() {
		cols = append(cols, &exec.Vector{Kind: expr.KindInt, I: v.keyBuf[:n]})
	}
	for j := range v.inputBuf {
		cols = append(cols, &exec.Vector{Kind: expr.KindFloat, F: v.inputBuf[j][:n]})
	}
	cols = append(cols, &exec.Vector{Kind: expr.KindFloat, F: v.yhat[:n]})
	if s.WithError {
		for i := 0; i < n; i++ {
			for j := range v.inputBuf {
				v.inputs[j] = v.inputBuf[j][i]
			}
			lo, hi := s.predictionInterval(v.grpBuf[i], v.inputs, v.yhat[i], v.grad)
			v.lo[i], v.hi[i] = lo, hi
		}
		cols = append(cols,
			&exec.Vector{Kind: expr.KindFloat, F: v.lo[:n]},
			&exec.Vector{Kind: expr.KindFloat, F: v.hi[:n]})
	}
	v.batch = exec.Batch{N: n, Cols: cols}
	return &v.batch, nil
}

// Close implements exec.VectorOperator. Emitted-row counts flow back to the
// wrapped scan here; parallel siblings are closed sequentially by their
// gather, so the addition never races.
func (v *vecModelScan) Close() error {
	v.s.rowsOut += v.rowsOut
	v.rowsOut = 0
	return nil
}

// ExplainInfo mirrors the row scan's EXPLAIN rendering.
func (v *vecModelScan) ExplainInfo() string { return "Vec" + v.s.ExplainInfo() }
