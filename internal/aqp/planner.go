package aqp

import (
	"fmt"
	"strings"
	"sync"

	"datalaws/internal/exec"
	"datalaws/internal/expr"
	"datalaws/internal/modelstore"
	"datalaws/internal/sql"
	"datalaws/internal/table"
)

// Options configures approximate planning.
type Options struct {
	// Policy filters which stored models are trusted.
	Policy modelstore.SelectionPolicy
	// MaxDistinct bounds enumerable-domain detection.
	MaxDistinct int
	// UseBloom selects the Bloom-filter legal set; FPRate its target rate.
	UseBloom bool
	FPRate   float64
	// Level is the confidence level for WITH ERROR bounds.
	Level float64
	// AllowIllegal disables legal-combination filtering entirely (emit the
	// full grid, accepting rows that never existed).
	AllowIllegal bool
	// Cache memoizes domains and legal sets across queries (nil disables).
	Cache *Cache
	// ExecMode selects batch (vectorized) or row execution for the plan; the
	// zero value lowers to the batch pipeline whenever possible.
	ExecMode exec.Mode
	// Parallelism bounds the morsel-driven worker pool when lowering the
	// plan (0 = GOMAXPROCS, 1 = serial). Grouped model scans split across
	// workers by parameter-table ranges; point lookups and ungrouped
	// models stay serial.
	Parallelism int
	// StaleInflate widens WITH ERROR bounds of a model that is stale but
	// still trusted (the table grew since the fit, within the policy's
	// staleness tolerance): the prediction SE is scaled by 1 + growth
	// fraction. Honest bounds for live data — the fit-time residual scale
	// understates uncertainty about rows it never saw.
	StaleInflate bool
	// FallbackExact makes the session layer answer an APPROX SELECT with the
	// exact plan when no trusted model covers it (ErrNoModel) instead of
	// failing — the safe default for live systems where a model may be
	// revoked by staleness at any time. Wired in the engine's session layer,
	// not here: BuildApproxSelect still reports ErrNoModel so callers can
	// distinguish the routes.
	FallbackExact bool
	// Inflate, when non-nil, supplies an extra per-model SE inflation floor
	// combined (by max) with the growth-based factor when StaleInflate is
	// on. Read replicas use it to widen bounds by the primary's measured
	// staleness plus replication lag — the local stub tables never grow, so
	// growth-based inflation alone would claim false freshness. The dynamic
	// type must be comparable: Options is compared with == to detect knob
	// changes.
	Inflate Inflator
}

// Inflator supplies a staleness inflation factor (≥ 1) for a model by name;
// values at or below 1 add nothing.
type Inflator interface {
	InflationFor(model string) float64
}

// DefaultOptions are sensible defaults: exact legal set, 95 % intervals.
func DefaultOptions() Options {
	return Options{Policy: modelstore.DefaultPolicy, MaxDistinct: DefaultMaxDistinct, FPRate: 0.01, Level: 0.95}
}

// Plan is an approximate query plan with its provenance.
type Plan struct {
	Op    exec.Operator
	Model *modelstore.CapturedModel
	// Hybrid reports partial-coverage routing (model region ∪ raw rest).
	Hybrid bool
	// GridRows is the full model grid size before legality filtering.
	GridRows int
	// SEInflation is the staleness widening applied to WITH ERROR bounds
	// (1 when the model is fresh or StaleInflate is off).
	SEInflation float64
	// PartsTotal/PartsPruned report partition pruning on range-partitioned
	// tables: of PartsTotal partitions, PartsPruned were eliminated before
	// their models (or rows) were touched. Both are 0 for unpartitioned
	// tables.
	PartsTotal  int
	PartsPruned int
}

// BuildApproxSelect plans an APPROX SELECT: it picks the best applicable
// captured model for the queried table, replaces the raw scan with a
// ModelScan over the enumerated input grid (zero IO against the
// measurements), and reuses the exact relational pipeline on top. When the
// chosen model was fitted on a restricted subset (Spec.Where), the plan is
// hybrid: model tuples inside the region are concatenated with raw tuples
// outside it (§4.1 "multiple, partial or grouped models").
//
// It is the one-shot form of PrepareApproxSelect + Bind.
func BuildApproxSelect(cat *table.Catalog, store *modelstore.Store, st *sql.SelectStmt, opts Options) (*Plan, error) {
	p, err := PrepareApproxSelect(cat, store, st, opts)
	if err != nil {
		return nil, err
	}
	return p.Bind(st)
}

// Prepared is a rebindable approximate plan: model selection, domain
// enumeration and legal-set construction — the expensive, data-dependent
// parts of approximate planning — happen once at prepare time, and each
// Bind only stamps out a fresh operator tree for one execution. Repeated
// zero-IO point lookups through a prepared statement therefore skip grid
// re-planning entirely. A Prepared is safe for concurrent Bind calls.
type Prepared struct {
	cat       *table.Catalog
	store     *modelstore.Store
	opts      Options
	tableName string
	withError bool
	refs      map[string]bool

	// parted is set when the FROM table is range-partitioned; Bind then
	// routes through the per-partition planner (partition.go) instead of the
	// single-model path below.
	parted *table.PartitionedTable

	mu sync.Mutex
	// Plan-time artifacts, revalidated against table/model versions on every
	// Bind so appends and refits are picked up without a re-prepare.
	model        *modelstore.CapturedModel
	domains      []Domain
	legal        LegalSet
	tableVersion uint64
	modelVersion int
	inflate      float64 // staleness SE widening; 1 when fresh
}

// PrepareApproxSelect resolves the model, domains and legal set for an
// APPROX SELECT template. The statement may contain unbound parameters:
// model choice depends only on which columns are referenced, never on
// comparison values.
func PrepareApproxSelect(cat *table.Catalog, store *modelstore.Store, st *sql.SelectStmt, opts Options) (*Prepared, error) {
	if len(st.Joins) > 0 {
		return nil, fmt.Errorf("aqp: APPROX SELECT with JOIN is not supported; run the exact query")
	}
	p := &Prepared{
		cat:       cat,
		store:     store,
		opts:      opts,
		tableName: st.From,
		withError: st.WithError,
		refs:      queryColumnRefs(st),
	}
	if pt, ok := cat.GetPartitioned(st.From); ok {
		p.parted = pt
		// Partitioned plans resolve per partition at Bind (pruning depends on
		// the bound predicate values); prepare only proves some family member
		// can cover the referenced columns.
		if _, err := p.familyTemplate(); err != nil {
			return nil, err
		}
		return p, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.revalidateLocked(); err != nil {
		return nil, err
	}
	return p, nil
}

// revalidateLocked (re)selects the model and rebuilds domains and legal set
// when the underlying table or model store moved; it is a no-op when both
// versions still match. Callers hold p.mu.
func (p *Prepared) revalidateLocked() error {
	t, err := p.cat.Lookup(p.tableName)
	if err != nil {
		return fmt.Errorf("aqp: %w", err)
	}
	tv := t.Version()
	if p.model != nil && tv == p.tableVersion {
		if cur, ok := p.store.Get(p.model.Spec.Name); ok && cur == p.model && cur.Version == p.modelVersion {
			return nil
		}
	}
	model, err := chooseModel(p.store, p.tableName, p.tableName, t, p.refs, p.withError, p.opts.Policy)
	if err != nil {
		return err
	}
	domains, err := p.opts.Cache.domainsFor(t, model, p.opts.MaxDistinct)
	if err != nil {
		return err
	}
	var legal LegalSet
	if !p.opts.AllowIllegal {
		legal, err = p.opts.Cache.legalFor(t, model, p.opts.UseBloom, p.opts.FPRate)
		if err != nil {
			return err
		}
	}
	p.model, p.domains, p.legal = model, domains, legal
	p.tableVersion, p.modelVersion = tv, model.Version
	p.inflate = staleInflation(model, t, p.opts)
	return nil
}

// staleInflation is the error-bound widening for a model that answers while
// stale: prediction SEs scale by 1 + growth fraction since the fit. A fresh
// model (or StaleInflate off) keeps factor 1.
func staleInflation(m *modelstore.CapturedModel, t *table.Table, opts Options) float64 {
	factor := 1.0
	if opts.StaleInflate {
		if st := m.StalenessAgainst(t); st.GrowthFrac > 0 {
			factor = 1 + st.GrowthFrac
		}
		if opts.Inflate != nil {
			if f := opts.Inflate.InflationFor(m.Spec.Name); f > factor {
				factor = f
			}
		}
	}
	return factor
}

// Bind instantiates one execution's operator tree from the prepared
// artifacts. st must be the (parameter-bound) statement the plan was
// prepared from: same FROM table, same referenced columns.
func (p *Prepared) Bind(st *sql.SelectStmt) (*Plan, error) {
	if p.parted != nil {
		return p.bindPartitioned(st)
	}
	p.mu.Lock()
	if err := p.revalidateLocked(); err != nil {
		p.mu.Unlock()
		return nil, err
	}
	model, domains, legal, inflate := p.model, p.domains, p.legal, p.inflate
	p.mu.Unlock()

	// Point-lookup fast path: a bound statement that is exactly the
	// paper's first example query — plain projections, WHERE pinning the
	// group and every input to a constant — skips the scan pipeline
	// entirely and answers from the parameter table: one hash lookup and
	// one model evaluation.
	if op, ok := p.bindPointLookup(st, model, domains, legal, inflate); ok {
		return &Plan{Op: op, Model: model, GridRows: GridSize(domains) * model.Quality.GroupsOK, SEInflation: inflate}, nil
	}

	scan, err := NewModelScan(model, domains, legal)
	if err != nil {
		return nil, err
	}
	scan.WithError = st.WithError
	scan.Level = p.opts.Level
	scan.SEInflation = inflate
	scan.TableName = st.From

	// Point-lookup pushdown: equality conjuncts on the group column or an
	// input column narrow the enumerated grid before it is generated, so a
	// bound `source = ? AND nu = ?` touches one parameter-table entry
	// instead of the full grid. The original WHERE still runs above the
	// scan, so pushdown is purely an enumeration restriction. A literal
	// outside the enumerated domain (all values the table has ever held)
	// proves the whole result empty.
	var source exec.Operator = scan
	if empty := pushDownEqualities(scan, st, model, domains); empty {
		source = &exec.ValuesScan{Cols: scan.Columns()}
	}
	hybrid := false
	if model.Spec.Where != nil {
		// Partial coverage: model rows must satisfy the fitted region, raw
		// rows cover its complement.
		hybrid = true
		t, err := p.cat.Lookup(st.From)
		if err != nil {
			return nil, fmt.Errorf("aqp: %w", err)
		}
		modelSide := &exec.Filter{Child: source, Pred: model.Spec.Where}
		rawSide, err := rawProjection(t, st.From, model, st.WithError)
		if err != nil {
			return nil, err
		}
		notWhere := &expr.Unary{Op: expr.OpNot, X: model.Spec.Where}
		source = &exec.Concat{Children: []exec.Operator{
			modelSide,
			&exec.Filter{Child: rawSide, Pred: notWhere},
		}}
	}

	op, err := exec.BuildSelectOpts(p.cat, st, source, exec.Options{Mode: p.opts.ExecMode, Parallelism: p.opts.Parallelism})
	if err != nil {
		return nil, err
	}
	return &Plan{Op: op, Model: model, Hybrid: hybrid, GridRows: GridSize(domains) * model.Quality.GroupsOK, SEInflation: inflate}, nil
}

// pushDownEqualities narrows a model scan using top-level `col = literal`
// conjuncts of the statement's WHERE clause: an equality on the group
// column restricts the scan to that single group, and an equality on an
// input column collapses that domain to one value. It reports true when a
// literal falls outside the enumerated domain, proving the result empty
// (the unrestricted grid would never have contained it either).
func pushDownEqualities(scan *ModelScan, st *sql.SelectStmt, model *modelstore.CapturedModel, domains []Domain) (empty bool) {
	if st.Where == nil {
		return false
	}
	eqs := equalityConsts(st.Where, st.From)
	if len(eqs) == 0 {
		return false
	}
	if model.Grouped() {
		if v, ok := eqs[model.Spec.GroupBy]; ok {
			if key, ok := asGroupKey(v); ok {
				scan.Groups = []int64{key}
			}
		}
	}
	narrowed := domains
	for i, d := range domains {
		v, ok := eqs[d.Col]
		if !ok {
			continue
		}
		f, err := v.AsFloat()
		if err != nil {
			continue
		}
		if !domainContains(d, f) {
			return true
		}
		if len(d.Vals) == 1 {
			continue
		}
		if &narrowed[0] == &domains[0] {
			narrowed = append([]Domain(nil), domains...)
		}
		narrowed[i] = Domain{Col: d.Col, Vals: []float64{f}}
	}
	scan.Domains = narrowed
	return false
}

// equalityConsts collects `col = literal` (or `literal = col`) conjuncts
// from the top-level AND tree of a predicate, keyed by unqualified column
// name. Columns qualified with a different table are ignored.
func equalityConsts(pred expr.Expr, tableName string) map[string]expr.Value {
	out := map[string]expr.Value{}
	var walk func(e expr.Expr)
	walk = func(e expr.Expr) {
		b, ok := e.(*expr.Binary)
		if !ok {
			return
		}
		switch b.Op {
		case expr.OpAnd:
			walk(b.L)
			walk(b.R)
		case expr.OpEq:
			id, lit := asIdentLit(b.L, b.R)
			if id == nil {
				id, lit = asIdentLit(b.R, b.L)
			}
			if id == nil {
				return
			}
			name := unqualify(id.Name, tableName)
			if name == "" {
				return
			}
			if prev, seen := out[name]; seen {
				// Contradictory duplicates are left for the filter to
				// resolve; identical duplicates are harmless.
				if c, err := expr.Compare(prev, lit.Val); err != nil || c != 0 {
					delete(out, name)
				}
				return
			}
			out[name] = lit.Val
		}
	}
	walk(pred)
	return out
}

func asIdentLit(a, b expr.Expr) (*expr.Ident, *expr.Lit) {
	id, ok := a.(*expr.Ident)
	if !ok {
		return nil, nil
	}
	lit, ok := b.(*expr.Lit)
	if !ok || lit.Val.IsNull() {
		return nil, nil
	}
	return id, lit
}

// asGroupKey converts an equality literal to an integral group key.
func asGroupKey(v expr.Value) (int64, bool) {
	switch v.K {
	case expr.KindInt:
		return v.I, true
	case expr.KindFloat:
		if v.F == float64(int64(v.F)) {
			return int64(v.F), true
		}
	}
	return 0, false
}

func domainContains(d Domain, v float64) bool {
	for _, x := range d.Vals {
		if x == v {
			return true
		}
	}
	return false
}

// queryColumnRefs collects the identifiers a query references, with alias
// references removed (they resolve to projected expressions, not columns).
func queryColumnRefs(st *sql.SelectStmt) map[string]bool {
	aliases := map[string]bool{}
	for _, it := range st.Items {
		if it.Alias != "" {
			aliases[it.Alias] = true
		}
	}
	refs := map[string]bool{}
	add := func(e expr.Expr) {
		if e == nil {
			return
		}
		for _, v := range expr.Vars(e) {
			refs[v] = true
		}
	}
	for _, it := range st.Items {
		if !it.Star {
			add(it.Expr)
		}
	}
	add(st.Where)
	for _, g := range st.GroupBy {
		add(g)
	}
	add(st.Having)
	for _, k := range st.OrderBy {
		if id, ok := k.Expr.(*expr.Ident); ok && aliases[id.Name] {
			continue
		}
		add(k.Expr)
	}
	return refs
}

// chooseModel picks the best stored model whose generated columns cover the
// query's references. lookupName is the table the models were fitted on;
// qualName is the name query references qualify with — they differ only for
// partitions, whose models live on the child table while queries reference
// the parent.
func chooseModel(store *modelstore.Store, lookupName, qualName string, t *table.Table, refs map[string]bool, withError bool, pol modelstore.SelectionPolicy) (*modelstore.CapturedModel, error) {
	var best *modelstore.CapturedModel
	for _, m := range store.ForTable(lookupName) {
		if m.Quality.MedianR2 < pol.MinMedianR2 {
			continue
		}
		if pol.MaxStalenessFrac > 0 && m.StalenessAgainst(t).GrowthFrac > pol.MaxStalenessFrac {
			continue
		}
		if !covers(m, qualName, refs, withError) {
			continue
		}
		if best == nil || m.Quality.MedianR2 > best.Quality.MedianR2 ||
			(m.Quality.MedianR2 == best.Quality.MedianR2 &&
				m.Quality.MedianResidualSE < best.Quality.MedianResidualSE) {
			best = m
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: no trusted model covers the referenced columns of %q", modelstore.ErrNoModel, lookupName)
	}
	return best, nil
}

func covers(m *modelstore.CapturedModel, tableName string, refs map[string]bool, withError bool) bool {
	avail := map[string]bool{}
	if m.Grouped() {
		avail[m.Spec.GroupBy] = true
	}
	for _, in := range m.Model.Inputs {
		avail[in] = true
	}
	avail[m.Model.Output] = true
	if withError {
		avail[m.Model.Output+"_lo"] = true
		avail[m.Model.Output+"_hi"] = true
	}
	for r := range refs {
		name := r
		if i := strings.LastIndexByte(r, '.'); i >= 0 {
			if r[:i] != tableName {
				return false
			}
			name = r[i+1:]
		}
		if !avail[name] {
			return false
		}
	}
	return true
}

// rawProjection shapes a raw table scan to the model scan's column list so
// the two sides of a hybrid plan concatenate. Raw rows are exact, so their
// error bounds collapse to the value itself. tableName qualifies the output
// columns (the parent name when t is a partition child).
func rawProjection(t *table.Table, tableName string, m *modelstore.CapturedModel, withError bool) (exec.Operator, error) {
	scan := exec.NewTableScanAs(t, tableName)
	var exprs []expr.Expr
	var names []string
	addCol := func(col string) {
		exprs = append(exprs, &expr.Ident{Name: tableName + "." + col})
		names = append(names, tableName+"."+col)
	}
	if m.Grouped() {
		addCol(m.Spec.GroupBy)
	}
	for _, in := range m.Model.Inputs {
		addCol(in)
	}
	addCol(m.Model.Output)
	if withError {
		out := &expr.Ident{Name: tableName + "." + m.Model.Output}
		exprs = append(exprs, out, out)
		names = append(names,
			tableName+"."+m.Model.Output+"_lo",
			tableName+"."+m.Model.Output+"_hi")
	}
	return &exec.Project{Child: scan, Exprs: exprs, Names: names}, nil
}
