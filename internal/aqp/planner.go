package aqp

import (
	"fmt"
	"strings"

	"datalaws/internal/exec"
	"datalaws/internal/expr"
	"datalaws/internal/modelstore"
	"datalaws/internal/sql"
	"datalaws/internal/table"
)

// Options configures approximate planning.
type Options struct {
	// Policy filters which stored models are trusted.
	Policy modelstore.SelectionPolicy
	// MaxDistinct bounds enumerable-domain detection.
	MaxDistinct int
	// UseBloom selects the Bloom-filter legal set; FPRate its target rate.
	UseBloom bool
	FPRate   float64
	// Level is the confidence level for WITH ERROR bounds.
	Level float64
	// AllowIllegal disables legal-combination filtering entirely (emit the
	// full grid, accepting rows that never existed).
	AllowIllegal bool
	// Cache memoizes domains and legal sets across queries (nil disables).
	Cache *Cache
	// ExecMode selects batch (vectorized) or row execution for the plan; the
	// zero value lowers to the batch pipeline whenever possible.
	ExecMode exec.Mode
}

// DefaultOptions are sensible defaults: exact legal set, 95 % intervals.
func DefaultOptions() Options {
	return Options{Policy: modelstore.DefaultPolicy, MaxDistinct: DefaultMaxDistinct, FPRate: 0.01, Level: 0.95}
}

// Plan is an approximate query plan with its provenance.
type Plan struct {
	Op    exec.Operator
	Model *modelstore.CapturedModel
	// Hybrid reports partial-coverage routing (model region ∪ raw rest).
	Hybrid bool
	// GridRows is the full model grid size before legality filtering.
	GridRows int
}

// BuildApproxSelect plans an APPROX SELECT: it picks the best applicable
// captured model for the queried table, replaces the raw scan with a
// ModelScan over the enumerated input grid (zero IO against the
// measurements), and reuses the exact relational pipeline on top. When the
// chosen model was fitted on a restricted subset (Spec.Where), the plan is
// hybrid: model tuples inside the region are concatenated with raw tuples
// outside it (§4.1 "multiple, partial or grouped models").
func BuildApproxSelect(cat *table.Catalog, store *modelstore.Store, st *sql.SelectStmt, opts Options) (*Plan, error) {
	if len(st.Joins) > 0 {
		return nil, fmt.Errorf("aqp: APPROX SELECT with JOIN is not supported; run the exact query")
	}
	t, ok := cat.Get(st.From)
	if !ok {
		return nil, fmt.Errorf("aqp: unknown table %q", st.From)
	}
	refs := queryColumnRefs(st)
	model, err := chooseModel(store, st.From, t, refs, st.WithError, opts.Policy)
	if err != nil {
		return nil, err
	}

	domains, err := opts.Cache.domainsFor(t, model, opts.MaxDistinct)
	if err != nil {
		return nil, err
	}
	var legal LegalSet
	if !opts.AllowIllegal {
		legal, err = opts.Cache.legalFor(t, model, opts.UseBloom, opts.FPRate)
		if err != nil {
			return nil, err
		}
	}
	scan, err := NewModelScan(model, domains, legal)
	if err != nil {
		return nil, err
	}
	scan.WithError = st.WithError
	scan.Level = opts.Level
	scan.TableName = st.From

	var source exec.Operator = scan
	hybrid := false
	if model.Spec.Where != nil {
		// Partial coverage: model rows must satisfy the fitted region, raw
		// rows cover its complement.
		hybrid = true
		modelSide := &exec.Filter{Child: scan, Pred: model.Spec.Where}
		rawSide, err := rawProjection(t, st.From, model, st.WithError)
		if err != nil {
			return nil, err
		}
		notWhere := &expr.Unary{Op: expr.OpNot, X: model.Spec.Where}
		source = &exec.Concat{Children: []exec.Operator{
			modelSide,
			&exec.Filter{Child: rawSide, Pred: notWhere},
		}}
	}

	op, err := exec.BuildSelectOverMode(cat, st, source, opts.ExecMode)
	if err != nil {
		return nil, err
	}
	return &Plan{Op: op, Model: model, Hybrid: hybrid, GridRows: GridSize(domains) * model.Quality.GroupsOK}, nil
}

// queryColumnRefs collects the identifiers a query references, with alias
// references removed (they resolve to projected expressions, not columns).
func queryColumnRefs(st *sql.SelectStmt) map[string]bool {
	aliases := map[string]bool{}
	for _, it := range st.Items {
		if it.Alias != "" {
			aliases[it.Alias] = true
		}
	}
	refs := map[string]bool{}
	add := func(e expr.Expr) {
		if e == nil {
			return
		}
		for _, v := range expr.Vars(e) {
			refs[v] = true
		}
	}
	for _, it := range st.Items {
		if !it.Star {
			add(it.Expr)
		}
	}
	add(st.Where)
	for _, g := range st.GroupBy {
		add(g)
	}
	add(st.Having)
	for _, k := range st.OrderBy {
		if id, ok := k.Expr.(*expr.Ident); ok && aliases[id.Name] {
			continue
		}
		add(k.Expr)
	}
	return refs
}

// chooseModel picks the best stored model whose generated columns cover the
// query's references.
func chooseModel(store *modelstore.Store, tableName string, t *table.Table, refs map[string]bool, withError bool, pol modelstore.SelectionPolicy) (*modelstore.CapturedModel, error) {
	var best *modelstore.CapturedModel
	for _, m := range store.ForTable(tableName) {
		if m.Quality.MedianR2 < pol.MinMedianR2 {
			continue
		}
		if pol.MaxStalenessFrac > 0 && m.StalenessAgainst(t).GrowthFrac > pol.MaxStalenessFrac {
			continue
		}
		if !covers(m, tableName, refs, withError) {
			continue
		}
		if best == nil || m.Quality.MedianR2 > best.Quality.MedianR2 ||
			(m.Quality.MedianR2 == best.Quality.MedianR2 &&
				m.Quality.MedianResidualSE < best.Quality.MedianResidualSE) {
			best = m
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: no trusted model covers the referenced columns of %q", modelstore.ErrNoModel, tableName)
	}
	return best, nil
}

func covers(m *modelstore.CapturedModel, tableName string, refs map[string]bool, withError bool) bool {
	avail := map[string]bool{}
	if m.Grouped() {
		avail[m.Spec.GroupBy] = true
	}
	for _, in := range m.Model.Inputs {
		avail[in] = true
	}
	avail[m.Model.Output] = true
	if withError {
		avail[m.Model.Output+"_lo"] = true
		avail[m.Model.Output+"_hi"] = true
	}
	for r := range refs {
		name := r
		if i := strings.LastIndexByte(r, '.'); i >= 0 {
			if r[:i] != tableName {
				return false
			}
			name = r[i+1:]
		}
		if !avail[name] {
			return false
		}
	}
	return true
}

// rawProjection shapes a raw table scan to the model scan's column list so
// the two sides of a hybrid plan concatenate. Raw rows are exact, so their
// error bounds collapse to the value itself.
func rawProjection(t *table.Table, tableName string, m *modelstore.CapturedModel, withError bool) (exec.Operator, error) {
	scan := exec.NewTableScan(t)
	var exprs []expr.Expr
	var names []string
	addCol := func(col string) {
		exprs = append(exprs, &expr.Ident{Name: tableName + "." + col})
		names = append(names, tableName+"."+col)
	}
	if m.Grouped() {
		addCol(m.Spec.GroupBy)
	}
	for _, in := range m.Model.Inputs {
		addCol(in)
	}
	addCol(m.Model.Output)
	if withError {
		out := &expr.Ident{Name: tableName + "." + m.Model.Output}
		exprs = append(exprs, out, out)
		names = append(names,
			tableName+"."+m.Model.Output+"_lo",
			tableName+"."+m.Model.Output+"_hi")
	}
	return &exec.Project{Child: scan, Exprs: exprs, Names: names}, nil
}
