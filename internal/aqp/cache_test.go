package aqp

import (
	"testing"

	"datalaws/internal/exec"
	"datalaws/internal/expr"
	"datalaws/internal/sql"
)

func TestCacheHitsOnRepeatedQueries(t *testing.T) {
	cat, _, store, _, _ := fixture(t)
	opts := DefaultOptions()
	opts.Cache = NewCache()
	st, _ := sql.Parse("APPROX SELECT avg(intensity) FROM measurements WHERE nu = 0.12")
	sel := st.(*sql.SelectStmt)

	for i := 0; i < 3; i++ {
		plan, err := BuildApproxSelect(cat, store, sel, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := exec.Drain(plan.Op); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := opts.Cache.Stats()
	// First query misses both artifacts, the next two hit both.
	if misses != 2 {
		t.Fatalf("misses = %d, want 2", misses)
	}
	if hits != 4 {
		t.Fatalf("hits = %d, want 4", hits)
	}
}

func TestCacheInvalidatedByAppend(t *testing.T) {
	cat, tb, store, _, _ := fixture(t)
	opts := DefaultOptions()
	opts.Cache = NewCache()
	st, _ := sql.Parse("APPROX SELECT avg(intensity) FROM measurements WHERE nu = 0.12")
	sel := st.(*sql.SelectStmt)

	if _, err := BuildApproxSelect(cat, store, sel, opts); err != nil {
		t.Fatal(err)
	}
	// Appending a row bumps the table version; the stale entries must not
	// be served. (The appended combination must now be legal, proving the
	// legal set was rebuilt.)
	if err := tb.AppendRow([]expr.Value{expr.Int(1), expr.Float(0.99), expr.Float(5)}); err != nil {
		t.Fatal(err)
	}
	plan, err := BuildApproxSelect(cat, store, sel, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, misses := opts.Cache.Stats()
	if misses != 4 { // 2 initial + 2 after invalidation
		t.Fatalf("misses = %d, want 4", misses)
	}
	// The fresh domain includes the new frequency.
	scanDoms, err := opts.Cache.domainsFor(tb, plan.Model, opts.MaxDistinct)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range scanDoms[0].Vals {
		if v == 0.99 {
			found = true
		}
	}
	if !found {
		t.Fatal("rebuilt domain missing the appended value")
	}
}

func TestCacheInvalidatedByRefit(t *testing.T) {
	cat, tb, store, _, _ := fixture(t)
	opts := DefaultOptions()
	opts.Cache = NewCache()
	st, _ := sql.Parse("APPROX SELECT avg(intensity) FROM measurements WHERE nu = 0.12")
	sel := st.(*sql.SelectStmt)
	if _, err := BuildApproxSelect(cat, store, sel, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Refit("spectra", tb); err != nil {
		t.Fatal(err)
	}
	// Model version changed: the cache key differs, so both artifacts miss.
	if _, err := BuildApproxSelect(cat, store, sel, opts); err != nil {
		t.Fatal(err)
	}
	_, misses := opts.Cache.Stats()
	if misses != 4 {
		t.Fatalf("misses = %d, want 4", misses)
	}
}

func TestNilCacheWorks(t *testing.T) {
	cat, _, store, _, _ := fixture(t)
	opts := DefaultOptions() // Cache nil
	st, _ := sql.Parse("APPROX SELECT intensity FROM measurements WHERE source = 1 AND nu = 0.12")
	plan, err := BuildApproxSelect(cat, store, st.(*sql.SelectStmt), opts)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Drain(plan.Op)
	if err != nil || len(rows) != 1 {
		t.Fatalf("%v %v", rows, err)
	}
	var nilCache *Cache
	if h, m := nilCache.Stats(); h != 0 || m != 0 {
		t.Fatal("nil cache stats")
	}
}
