package aqp

import (
	"fmt"
	"sync"

	"datalaws/internal/modelstore"
	"datalaws/internal/table"
)

// Cache memoizes the expensive per-plan artifacts of approximate planning —
// enumerated input domains and legal-combination sets — keyed by model
// identity/version and table version, so repeated APPROX queries against
// unchanged data skip the table scans that build them. Appends bump the
// table version and naturally invalidate stale entries.
type Cache struct {
	mu      sync.Mutex
	domains map[string]cachedDomains
	legal   map[string]cachedLegal

	hits, misses int
}

type cachedDomains struct {
	tableVersion uint64
	domains      []Domain
}

type cachedLegal struct {
	tableVersion uint64
	legal        LegalSet
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{domains: map[string]cachedDomains{}, legal: map[string]cachedLegal{}}
}

// Stats reports cache effectiveness.
func (c *Cache) Stats() (hits, misses int) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func domainsKey(m *modelstore.CapturedModel, maxDistinct int) string {
	return fmt.Sprintf("%s|v%d|d%d", m.Spec.Name, m.Version, maxDistinct)
}

func legalKey(m *modelstore.CapturedModel, useBloom bool, fpRate float64) string {
	return fmt.Sprintf("%s|v%d|b%v|f%g", m.Spec.Name, m.Version, useBloom, fpRate)
}

// domainsFor returns (possibly cached) enumerated domains for the model's
// inputs at the table's current version.
func (c *Cache) domainsFor(t *table.Table, m *modelstore.CapturedModel, maxDistinct int) ([]Domain, error) {
	if c == nil {
		return DomainsFor(t, m.Model.Inputs, maxDistinct)
	}
	v := t.Version()
	key := domainsKey(m, maxDistinct)
	c.mu.Lock()
	if e, ok := c.domains[key]; ok && e.tableVersion == v {
		c.hits++
		c.mu.Unlock()
		return e.domains, nil
	}
	c.misses++
	c.mu.Unlock()
	doms, err := DomainsFor(t, m.Model.Inputs, maxDistinct)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.domains[key] = cachedDomains{tableVersion: v, domains: doms}
	c.mu.Unlock()
	return doms, nil
}

// PrimeDomains installs precomputed domains for (model, maxDistinct) at the
// table's current version, as if domainsFor had built them locally. Read
// replicas use it: their stub tables hold zero rows, so a local enumeration
// would yield empty domains (and silently empty grids) — the primary ships
// its enumerated domains with each model delta instead. The stub table's
// version never changes, so a primed entry stays valid until the next delta
// re-primes it.
func (c *Cache) PrimeDomains(t *table.Table, m *modelstore.CapturedModel, maxDistinct int, domains []Domain) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.domains[domainsKey(m, maxDistinct)] = cachedDomains{tableVersion: t.Version(), domains: domains}
	c.mu.Unlock()
}

// PrimeLegal installs a precomputed legal set for (model, useBloom, fpRate)
// at the table's current version — the legal-set counterpart of
// PrimeDomains.
func (c *Cache) PrimeLegal(t *table.Table, m *modelstore.CapturedModel, useBloom bool, fpRate float64, legal LegalSet) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.legal[legalKey(m, useBloom, fpRate)] = cachedLegal{tableVersion: t.Version(), legal: legal}
	c.mu.Unlock()
}

// Domains returns (possibly cached) enumerated domains for the model's
// inputs — the exported surface the server's delta builder uses so shipped
// domains reuse the planner's cache.
func (c *Cache) Domains(t *table.Table, m *modelstore.CapturedModel, maxDistinct int) ([]Domain, error) {
	return c.domainsFor(t, m, maxDistinct)
}

// Legal returns a (possibly cached) legal set for the model — the exported
// counterpart of Domains.
func (c *Cache) Legal(t *table.Table, m *modelstore.CapturedModel, useBloom bool, fpRate float64) (LegalSet, error) {
	return c.legalFor(t, m, useBloom, fpRate)
}

// legalFor returns a (possibly cached) legal set for the model at the
// table's current version.
func (c *Cache) legalFor(t *table.Table, m *modelstore.CapturedModel, useBloom bool, fpRate float64) (LegalSet, error) {
	if c == nil {
		return BuildLegalSet(t, m.Spec.GroupBy, m.Model.Inputs, useBloom, fpRate)
	}
	v := t.Version()
	key := legalKey(m, useBloom, fpRate)
	c.mu.Lock()
	if e, ok := c.legal[key]; ok && e.tableVersion == v {
		c.hits++
		c.mu.Unlock()
		return e.legal, nil
	}
	c.misses++
	c.mu.Unlock()
	ls, err := BuildLegalSet(t, m.Spec.GroupBy, m.Model.Inputs, useBloom, fpRate)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.legal[key] = cachedLegal{tableVersion: v, legal: ls}
	c.mu.Unlock()
	return ls, nil
}
