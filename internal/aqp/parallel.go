package aqp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"datalaws/internal/exec"
)

// SplitMorsels implements exec.MorselSplitter: a grouped model scan splits
// into per-worker scans that claim contiguous ranges of the parameter table
// (group keys) from a shared cursor. Statistical-law extraction is
// independent per group, so workers regenerate disjoint grid slices with no
// coordination beyond the claim; morsel indexes follow group order, which
// lets the exec gather reproduce the serial scan's row order exactly.
// Scans restricted to a single group (the planner's point pushdown) or
// ungrouped models report false and stay serial.
func (s *ModelScan) SplitMorsels(workers int) ([]exec.MorselSource, bool) {
	groups := len(s.orderKeys())
	if workers <= 1 || groups < 2 {
		return nil, false
	}
	if workers > groups {
		workers = groups
	}
	shared := &sharedModelMorsels{scan: s, workers: workers}
	out := make([]exec.MorselSource, workers)
	for i := range out {
		v, err := newVecModelScan(s)
		if err != nil {
			return nil, false
		}
		out[i] = &modelMorselScan{vecModelScan: v, shared: shared}
	}
	return out, true
}

// sharedModelMorsels is the worker-shared state of a parallel model scan:
// the group-key order, the per-morsel chunk size, and the claim cursor.
// Chunking is sized for a few morsels per worker so dynamic claiming
// rebalances groups whose grids reject different legal fractions.
type sharedModelMorsels struct {
	scan    *ModelScan
	workers int

	mu     sync.Mutex
	opened int
	keys   []int64
	chunk  int
	total  int64
	cursor atomic.Int64
}

func (s *sharedModelMorsels) open() {
	s.mu.Lock()
	if s.opened == 0 {
		s.keys = s.scan.orderKeys()
		chunk := (len(s.keys) + s.workers*4 - 1) / (s.workers * 4)
		if chunk < 1 {
			chunk = 1
		}
		s.chunk = chunk
		s.total = int64((len(s.keys) + chunk - 1) / chunk)
		s.cursor.Store(0)
		s.scan.rowsOut = 0
	}
	s.opened++
	s.mu.Unlock()
}

func (s *sharedModelMorsels) close() {
	s.mu.Lock()
	if s.opened > 0 {
		s.opened--
	}
	s.mu.Unlock()
}

// modelMorselScan is one worker's view of a parallel model scan: a private
// vecModelScan repositioned onto each claimed group range.
type modelMorselScan struct {
	*vecModelScan
	shared *sharedModelMorsels
}

// Open implements exec.VectorOperator.
func (m *modelMorselScan) Open() error {
	m.shared.open()
	if err := m.vecModelScan.openBufs(); err != nil {
		return err
	}
	m.vecModelScan.setKeys(nil)
	return nil
}

// NextMorsel implements exec.MorselSource, claiming the next group range.
func (m *modelMorselScan) NextMorsel() (int64, bool) {
	idx := m.shared.cursor.Add(1) - 1
	if idx >= m.shared.total {
		return 0, false
	}
	lo := int(idx) * m.shared.chunk
	hi := lo + m.shared.chunk
	if hi > len(m.shared.keys) {
		hi = len(m.shared.keys)
	}
	m.vecModelScan.setKeys(m.shared.keys[lo:hi])
	return idx, true
}

// NumMorsels implements exec.MorselSource.
func (m *modelMorselScan) NumMorsels() int64 { return m.shared.total }

// Close implements exec.VectorOperator.
func (m *modelMorselScan) Close() error {
	err := m.vecModelScan.Close()
	m.shared.close()
	return err
}

// ExplainInfo renders the parallel model scan in EXPLAIN output.
func (m *modelMorselScan) ExplainInfo() string {
	return fmt.Sprintf("MorselModelScan model=%s groups=%d (zero IO)",
		m.shared.scan.Model.Spec.Name, len(m.shared.scan.orderKeys()))
}
