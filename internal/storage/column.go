package storage

import (
	"fmt"

	"datalaws/internal/expr"
)

// ColType enumerates the storage types of a column.
type ColType uint8

// Supported column types.
const (
	TypeInt64 ColType = iota
	TypeFloat64
	TypeString
	TypeBool
)

func (t ColType) String() string {
	switch t {
	case TypeInt64:
		return "BIGINT"
	case TypeFloat64:
		return "DOUBLE"
	case TypeString:
		return "VARCHAR"
	case TypeBool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("ColType(%d)", uint8(t))
}

// ValueKind maps a storage type to the runtime value kind.
func (t ColType) ValueKind() expr.Kind {
	switch t {
	case TypeInt64:
		return expr.KindInt
	case TypeFloat64:
		return expr.KindFloat
	case TypeString:
		return expr.KindString
	case TypeBool:
		return expr.KindBool
	}
	return expr.KindNull
}

// Column is a typed, nullable, append-only column.
type Column interface {
	Type() ColType
	Len() int
	// Value returns the i-th entry boxed as a runtime value (NULL when the
	// null bit is set).
	Value(i int) expr.Value
	// AppendValue appends a boxed value, coercing compatible kinds; a NULL
	// appends a null entry.
	AppendValue(v expr.Value) error
	// IsNull reports whether entry i is NULL.
	IsNull(i int) bool
}

// Int64Column stores 64-bit integers.
type Int64Column struct {
	Vals  []int64
	Nulls *Bitmap
}

// NewInt64Column returns an empty integer column.
func NewInt64Column() *Int64Column { return &Int64Column{Nulls: NewBitmap(0)} }

// Type implements Column.
func (c *Int64Column) Type() ColType { return TypeInt64 }

// Len implements Column.
func (c *Int64Column) Len() int { return len(c.Vals) }

// IsNull implements Column.
func (c *Int64Column) IsNull(i int) bool { return c.Nulls.Get(i) }

// Append adds a non-null value.
func (c *Int64Column) Append(v int64) {
	c.Vals = append(c.Vals, v)
	c.Nulls.Append(false)
}

// AppendNull adds a NULL entry.
func (c *Int64Column) AppendNull() {
	c.Vals = append(c.Vals, 0)
	c.Nulls.Append(true)
}

// Value implements Column.
func (c *Int64Column) Value(i int) expr.Value {
	if c.Nulls.Get(i) {
		return expr.Null()
	}
	return expr.Int(c.Vals[i])
}

// AppendValue implements Column.
func (c *Int64Column) AppendValue(v expr.Value) error {
	switch v.K {
	case expr.KindNull:
		c.AppendNull()
	case expr.KindInt:
		c.Append(v.I)
	case expr.KindFloat:
		c.Append(int64(v.F))
	case expr.KindBool:
		if v.B {
			c.Append(1)
		} else {
			c.Append(0)
		}
	default:
		return fmt.Errorf("storage: cannot store %s in BIGINT column", v.K)
	}
	return nil
}

// Float64Column stores double-precision floats.
type Float64Column struct {
	Vals  []float64
	Nulls *Bitmap
}

// NewFloat64Column returns an empty float column.
func NewFloat64Column() *Float64Column { return &Float64Column{Nulls: NewBitmap(0)} }

// Type implements Column.
func (c *Float64Column) Type() ColType { return TypeFloat64 }

// Len implements Column.
func (c *Float64Column) Len() int { return len(c.Vals) }

// IsNull implements Column.
func (c *Float64Column) IsNull(i int) bool { return c.Nulls.Get(i) }

// Append adds a non-null value.
func (c *Float64Column) Append(v float64) {
	c.Vals = append(c.Vals, v)
	c.Nulls.Append(false)
}

// AppendNull adds a NULL entry.
func (c *Float64Column) AppendNull() {
	c.Vals = append(c.Vals, 0)
	c.Nulls.Append(true)
}

// Value implements Column.
func (c *Float64Column) Value(i int) expr.Value {
	if c.Nulls.Get(i) {
		return expr.Null()
	}
	return expr.Float(c.Vals[i])
}

// AppendValue implements Column.
func (c *Float64Column) AppendValue(v expr.Value) error {
	switch v.K {
	case expr.KindNull:
		c.AppendNull()
	case expr.KindInt:
		c.Append(float64(v.I))
	case expr.KindFloat:
		c.Append(v.F)
	default:
		return fmt.Errorf("storage: cannot store %s in DOUBLE column", v.K)
	}
	return nil
}

// StringColumn stores strings with dictionary encoding: each distinct string
// is kept once and rows store dictionary codes.
type StringColumn struct {
	Codes []uint32
	Dict  []string
	index map[string]uint32
	Nulls *Bitmap
}

// NewStringColumn returns an empty dictionary-encoded string column.
func NewStringColumn() *StringColumn {
	return &StringColumn{index: map[string]uint32{}, Nulls: NewBitmap(0)}
}

// Type implements Column.
func (c *StringColumn) Type() ColType { return TypeString }

// Len implements Column.
func (c *StringColumn) Len() int { return len(c.Codes) }

// IsNull implements Column.
func (c *StringColumn) IsNull(i int) bool { return c.Nulls.Get(i) }

// Append adds a non-null string.
func (c *StringColumn) Append(s string) {
	code, ok := c.index[s]
	if !ok {
		code = uint32(len(c.Dict))
		c.Dict = append(c.Dict, s)
		c.index[s] = code
	}
	c.Codes = append(c.Codes, code)
	c.Nulls.Append(false)
}

// AppendNull adds a NULL entry.
func (c *StringColumn) AppendNull() {
	c.Codes = append(c.Codes, 0)
	c.Nulls.Append(true)
}

// Get returns the string at i (empty for NULL).
func (c *StringColumn) Get(i int) string {
	if c.Nulls.Get(i) {
		return ""
	}
	return c.Dict[c.Codes[i]]
}

// Value implements Column.
func (c *StringColumn) Value(i int) expr.Value {
	if c.Nulls.Get(i) {
		return expr.Null()
	}
	return expr.Str(c.Dict[c.Codes[i]])
}

// AppendValue implements Column.
func (c *StringColumn) AppendValue(v expr.Value) error {
	switch v.K {
	case expr.KindNull:
		c.AppendNull()
	case expr.KindString:
		c.Append(v.S)
	default:
		return fmt.Errorf("storage: cannot store %s in VARCHAR column", v.K)
	}
	return nil
}

// Cardinality returns the number of distinct strings stored.
func (c *StringColumn) Cardinality() int { return len(c.Dict) }

// BoolColumn stores booleans.
type BoolColumn struct {
	Vals  *Bitmap
	Nulls *Bitmap
}

// NewBoolColumn returns an empty boolean column.
func NewBoolColumn() *BoolColumn { return &BoolColumn{Vals: NewBitmap(0), Nulls: NewBitmap(0)} }

// Type implements Column.
func (c *BoolColumn) Type() ColType { return TypeBool }

// Len implements Column.
func (c *BoolColumn) Len() int { return c.Vals.Len() }

// IsNull implements Column.
func (c *BoolColumn) IsNull(i int) bool { return c.Nulls.Get(i) }

// Append adds a non-null boolean.
func (c *BoolColumn) Append(v bool) {
	c.Vals.Append(v)
	c.Nulls.Append(false)
}

// AppendNull adds a NULL entry.
func (c *BoolColumn) AppendNull() {
	c.Vals.Append(false)
	c.Nulls.Append(true)
}

// Value implements Column.
func (c *BoolColumn) Value(i int) expr.Value {
	if c.Nulls.Get(i) {
		return expr.Null()
	}
	return expr.Bool(c.Vals.Get(i))
}

// AppendValue implements Column.
func (c *BoolColumn) AppendValue(v expr.Value) error {
	switch v.K {
	case expr.KindNull:
		c.AppendNull()
	case expr.KindBool:
		c.Append(v.B)
	case expr.KindInt:
		c.Append(v.I != 0)
	default:
		return fmt.Errorf("storage: cannot store %s in BOOLEAN column", v.K)
	}
	return nil
}

// NewColumn constructs an empty column of the given type.
func NewColumn(t ColType) Column {
	switch t {
	case TypeInt64:
		return NewInt64Column()
	case TypeFloat64:
		return NewFloat64Column()
	case TypeString:
		return NewStringColumn()
	case TypeBool:
		return NewBoolColumn()
	}
	panic(fmt.Sprintf("storage: unknown column type %d", t))
}
