// Package storage implements the columnar storage substrate: typed columns
// with null bitmaps and a set of lightweight encodings (plain, run-length,
// delta-varint, dictionary, XOR-float) with binary serialization. The
// model-residual encoding that implements the paper's "true semantic
// compression" lives in internal/compress and builds on the primitives here.
package storage

// Bitmap is a simple growable bitset used to track NULL positions.
type Bitmap struct {
	bits []uint64
	n    int
}

// NewBitmap returns a bitmap sized for n bits, all unset.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{bits: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of addressable bits.
func (b *Bitmap) Len() int { return b.n }

// Append adds one bit at the end.
func (b *Bitmap) Append(set bool) {
	idx := b.n
	b.n++
	if idx/64 >= len(b.bits) {
		b.bits = append(b.bits, 0)
	}
	if set {
		b.bits[idx/64] |= 1 << (idx % 64)
	}
}

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.bits[i/64]&(1<<(i%64)) != 0
}

// Set sets or clears bit i.
func (b *Bitmap) Set(i int, v bool) {
	if i < 0 || i >= b.n {
		return
	}
	if v {
		b.bits[i/64] |= 1 << (i % 64)
	} else {
		b.bits[i/64] &^= 1 << (i % 64)
	}
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			c++
		}
	}
	return c
}

// Any reports whether at least one bit is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.bits {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	nb := &Bitmap{bits: make([]uint64, len(b.bits)), n: b.n}
	copy(nb.bits, b.bits)
	return nb
}

// ClonePrefix returns a deep copy of the first n bits (all of them when n
// exceeds the length). Scans use it to snapshot null masks: unlike a typed
// value slice, a bitmap packs many rows into one word, so a concurrent
// Append mutates words a reader of earlier rows would touch — readers must
// copy while holding the owning table's lock.
func (b *Bitmap) ClonePrefix(n int) *Bitmap {
	if n > b.n {
		n = b.n
	}
	if n < 0 {
		n = 0
	}
	words := (n + 63) / 64
	nb := &Bitmap{bits: make([]uint64, words), n: n}
	copy(nb.bits, b.bits[:words])
	if rem := n % 64; rem != 0 && words > 0 {
		// Mask out bits beyond n so Any() reflects only the snapshot.
		nb.bits[words-1] &= (1 << rem) - 1
	}
	return nb
}
