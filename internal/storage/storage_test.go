package storage

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"datalaws/internal/expr"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(0)
	for i := 0; i < 130; i++ {
		b.Append(i%3 == 0)
	}
	if b.Len() != 130 {
		t.Fatalf("len = %d", b.Len())
	}
	for i := 0; i < 130; i++ {
		if b.Get(i) != (i%3 == 0) {
			t.Fatalf("bit %d wrong", i)
		}
	}
	if b.Count() != 44 {
		t.Fatalf("count = %d, want 44", b.Count())
	}
	b.Set(1, true)
	if !b.Get(1) {
		t.Fatal("Set failed")
	}
	b.Set(1, false)
	if b.Get(1) {
		t.Fatal("clear failed")
	}
	if b.Get(-1) || b.Get(1000) {
		t.Fatal("out of range must be false")
	}
	c := b.Clone()
	c.Set(0, false)
	if !b.Get(0) {
		t.Fatal("Clone aliases")
	}
}

func TestBitmapAny(t *testing.T) {
	b := NewBitmap(0)
	for i := 0; i < 10; i++ {
		b.Append(false)
	}
	if b.Any() {
		t.Fatal("Any on all-clear")
	}
	b.Append(true)
	if !b.Any() {
		t.Fatal("Any missed set bit")
	}
}

func TestInt64Column(t *testing.T) {
	c := NewInt64Column()
	c.Append(1)
	c.AppendNull()
	c.Append(-7)
	if c.Len() != 3 || c.Type() != TypeInt64 {
		t.Fatal("shape")
	}
	if !c.IsNull(1) || c.IsNull(0) {
		t.Fatal("null tracking")
	}
	if v := c.Value(0); v.K != expr.KindInt || v.I != 1 {
		t.Fatalf("Value(0) = %v", v)
	}
	if v := c.Value(1); !v.IsNull() {
		t.Fatalf("Value(1) = %v", v)
	}
	if err := c.AppendValue(expr.Str("x")); err == nil {
		t.Fatal("want type error")
	}
	if err := c.AppendValue(expr.Float(2.9)); err != nil || c.Vals[3] != 2 {
		t.Fatalf("float coercion: %v %v", err, c.Vals)
	}
	if err := c.AppendValue(expr.Bool(true)); err != nil || c.Vals[4] != 1 {
		t.Fatal("bool coercion")
	}
}

func TestFloat64Column(t *testing.T) {
	c := NewFloat64Column()
	c.Append(1.5)
	c.AppendNull()
	if err := c.AppendValue(expr.Int(3)); err != nil || c.Vals[2] != 3 {
		t.Fatal("int coercion")
	}
	if err := c.AppendValue(expr.Str("x")); err == nil {
		t.Fatal("want type error")
	}
	if v := c.Value(0); v.F != 1.5 {
		t.Fatalf("Value = %v", v)
	}
}

func TestStringColumnDictionary(t *testing.T) {
	c := NewStringColumn()
	for i := 0; i < 100; i++ {
		c.Append([]string{"a", "b", "c"}[i%3])
	}
	if c.Cardinality() != 3 {
		t.Fatalf("cardinality = %d", c.Cardinality())
	}
	if c.Get(4) != "b" {
		t.Fatalf("Get(4) = %q", c.Get(4))
	}
	c.AppendNull()
	if c.Get(100) != "" || !c.IsNull(100) {
		t.Fatal("null handling")
	}
	if err := c.AppendValue(expr.Int(1)); err == nil {
		t.Fatal("want type error")
	}
}

func TestBoolColumn(t *testing.T) {
	c := NewBoolColumn()
	c.Append(true)
	c.Append(false)
	c.AppendNull()
	if err := c.AppendValue(expr.Int(1)); err != nil {
		t.Fatal(err)
	}
	if v := c.Value(0); !v.B {
		t.Fatal("Value(0)")
	}
	if v := c.Value(3); !v.B {
		t.Fatal("int→bool coercion")
	}
	if !c.IsNull(2) {
		t.Fatal("null")
	}
	if err := c.AppendValue(expr.Str("t")); err == nil {
		t.Fatal("want type error")
	}
}

func roundTrip(t *testing.T, c Column) Column {
	t.Helper()
	b := EncodeColumn(c)
	d, err := DecodeColumn(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if d.Len() != c.Len() || d.Type() != c.Type() {
		t.Fatalf("shape mismatch after round trip")
	}
	for i := 0; i < c.Len(); i++ {
		a, b := c.Value(i), d.Value(i)
		if a.IsNull() != b.IsNull() {
			t.Fatalf("null mismatch at %d", i)
		}
		if !a.IsNull() && !expr.Equal(a, b) {
			t.Fatalf("value mismatch at %d: %v vs %v", i, a, b)
		}
	}
	return d
}

func TestEncodeDecodeInt64Sequential(t *testing.T) {
	c := NewInt64Column()
	for i := int64(0); i < 1000; i++ {
		c.Append(1000000 + i)
	}
	b := EncodeColumn(c)
	// Sequential data must pick delta and be far smaller than plain.
	if Encoding(b[1]) != EncDelta {
		t.Fatalf("encoding = %s, want delta", Encoding(b[1]))
	}
	if len(b) > 2100 {
		t.Fatalf("delta encoding too large: %d bytes", len(b))
	}
	roundTrip(t, c)
}

func TestEncodeDecodeInt64RLE(t *testing.T) {
	c := NewInt64Column()
	for i := 0; i < 1000; i++ {
		c.Append(int64(i / 250)) // 4 long runs
	}
	b := EncodeColumn(c)
	if Encoding(b[1]) != EncRLE {
		t.Fatalf("encoding = %s, want rle", Encoding(b[1]))
	}
	if len(b) > 40 {
		t.Fatalf("RLE too large: %d", len(b))
	}
	roundTrip(t, c)
}

func TestEncodeDecodeInt64Random(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewInt64Column()
	for i := 0; i < 500; i++ {
		c.Append(rng.Int63() - rng.Int63())
		if i%17 == 0 {
			c.AppendNull()
		}
	}
	roundTrip(t, c)
}

func TestEncodeDecodeFloatConstant(t *testing.T) {
	c := NewFloat64Column()
	for i := 0; i < 1000; i++ {
		c.Append(3.14159)
	}
	b := EncodeColumn(c)
	if Encoding(b[1]) != EncXOR {
		t.Fatalf("encoding = %s, want xor", Encoding(b[1]))
	}
	// First value costs 9 bytes, repeats 1 byte each.
	if len(b) > 1100 {
		t.Fatalf("XOR too large for constant column: %d", len(b))
	}
	roundTrip(t, c)
}

func TestEncodeDecodeFloatRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewFloat64Column()
	for i := 0; i < 500; i++ {
		c.Append(rng.NormFloat64() * 1e6)
	}
	c.AppendNull()
	c.Append(math.Inf(1))
	c.Append(math.NaN())
	b := EncodeColumn(c)
	d, err := DecodeColumn(b)
	if err != nil {
		t.Fatal(err)
	}
	dc := d.(*Float64Column)
	cc := c
	for i := range cc.Vals {
		if cc.Nulls.Get(i) != dc.Nulls.Get(i) {
			t.Fatalf("null mismatch at %d", i)
		}
		a, bv := cc.Vals[i], dc.Vals[i]
		if math.IsNaN(a) != math.IsNaN(bv) || (!math.IsNaN(a) && a != bv) {
			t.Fatalf("value mismatch at %d: %v vs %v", i, a, bv)
		}
	}
}

func TestEncodeDecodeString(t *testing.T) {
	c := NewStringColumn()
	words := []string{"pulsar", "quasar", "black hole", "grb", ""}
	for i := 0; i < 300; i++ {
		c.Append(words[i%len(words)])
	}
	c.AppendNull()
	d := roundTrip(t, c).(*StringColumn)
	if d.Cardinality() != len(words) {
		t.Fatalf("dict size = %d", d.Cardinality())
	}
	// Decoded column must keep accepting appends (index rebuilt).
	d.Append("pulsar")
	if d.Cardinality() != len(words) {
		t.Fatal("index not rebuilt after decode")
	}
}

func TestEncodeDecodeBool(t *testing.T) {
	c := NewBoolColumn()
	for i := 0; i < 77; i++ {
		c.Append(i%2 == 0)
	}
	c.AppendNull()
	roundTrip(t, c)
}

func TestDecodeColumnErrors(t *testing.T) {
	if _, err := DecodeColumn(nil); err == nil {
		t.Fatal("want error for empty input")
	}
	if _, err := DecodeColumn([]byte{99, 0, 1, 0}); err == nil {
		t.Fatal("want error for unknown type")
	}
	// Truncated payload.
	c := NewInt64Column()
	for i := int64(0); i < 100; i++ {
		c.Append(i * 1000003)
	}
	b := EncodeColumn(c)
	if _, err := DecodeColumn(b[:len(b)/2]); err == nil {
		t.Fatal("want error for truncated frame")
	}
}

func TestEncodeRoundTripProperty(t *testing.T) {
	f := func(vals []int64) bool {
		c := NewInt64Column()
		for _, v := range vals {
			c.Append(v)
		}
		b := EncodeColumn(c)
		d, err := DecodeColumn(b)
		if err != nil {
			return false
		}
		dv := d.(*Int64Column).Vals
		if len(dv) != len(c.Vals) {
			return false
		}
		for i := range dv {
			if dv[i] != c.Vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeFloatRoundTripProperty(t *testing.T) {
	f := func(vals []float64) bool {
		c := NewFloat64Column()
		for _, v := range vals {
			c.Append(v)
		}
		b := EncodeColumn(c)
		d, err := DecodeColumn(b)
		if err != nil {
			return false
		}
		dv := d.(*Float64Column).Vals
		if len(dv) != len(c.Vals) {
			return false
		}
		for i := range dv {
			if math.Float64bits(dv[i]) != math.Float64bits(c.Vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
