package storage

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoding identifies the physical layout of a serialized column.
type Encoding uint8

// Encodings. EncodeColumn picks the smallest candidate for the column's
// type; DecodeColumn dispatches on the stored tag.
const (
	EncPlain Encoding = iota
	EncDelta          // zig-zag varint deltas (sorted/sequential ints)
	EncRLE            // run-length (low-cardinality ints)
	EncDict           // dictionary codes + string table
	EncXOR            // byte-aligned XOR chaining for floats
)

func (e Encoding) String() string {
	switch e {
	case EncPlain:
		return "plain"
	case EncDelta:
		return "delta"
	case EncRLE:
		return "rle"
	case EncDict:
		return "dict"
	case EncXOR:
		return "xor"
	}
	return fmt.Sprintf("Encoding(%d)", uint8(e))
}

// --- int64 payloads ---

func encInt64Plain(vals []int64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], uint64(v))
	}
	return out
}

func decInt64Plain(b []byte, n int) ([]int64, error) {
	if len(b) != 8*n {
		return nil, fmt.Errorf("storage: plain int payload %d bytes, want %d", len(b), 8*n)
	}
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return vals, nil
}

func encInt64Delta(vals []int64) []byte {
	buf := make([]byte, 0, len(vals)*2)
	var prev int64
	tmp := make([]byte, binary.MaxVarintLen64)
	for _, v := range vals {
		n := binary.PutVarint(tmp, v-prev)
		buf = append(buf, tmp[:n]...)
		prev = v
	}
	return buf
}

func encInt64RLE(vals []int64) []byte {
	var buf []byte
	tmp := make([]byte, binary.MaxVarintLen64)
	i := 0
	for i < len(vals) {
		j := i
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		n := binary.PutVarint(tmp, vals[i])
		buf = append(buf, tmp[:n]...)
		n = binary.PutUvarint(tmp, uint64(j-i))
		buf = append(buf, tmp[:n]...)
		i = j
	}
	return buf
}

// --- float64 payloads ---

func encFloat64Plain(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

func decFloat64Plain(b []byte, n int) ([]float64, error) {
	if len(b) != 8*n {
		return nil, fmt.Errorf("storage: plain float payload %d bytes, want %d", len(b), 8*n)
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return vals, nil
}

// encFloat64XOR chains values through XOR with the previous value and stores
// only the nonzero middle bytes of each XOR word, with a header byte packing
// the leading- and trailing-zero byte counts. Repeated values cost one byte.
func encFloat64XOR(vals []float64) []byte {
	var buf []byte
	var prev uint64
	word := make([]byte, 8)
	for _, v := range vals {
		bits := math.Float64bits(v)
		x := bits ^ prev
		prev = bits
		if x == 0 {
			buf = append(buf, 0x88) // lead=8 encoded as 8<<4: full zero word
			continue
		}
		binary.BigEndian.PutUint64(word, x)
		lead := 0
		for lead < 8 && word[lead] == 0 {
			lead++
		}
		trail := 0
		for trail < 8-lead && word[7-trail] == 0 {
			trail++
		}
		buf = append(buf, byte(lead<<4|trail))
		buf = append(buf, word[lead:8-trail]...)
	}
	return buf
}

// --- column framing ---

func encodeNulls(nulls *Bitmap) []byte {
	if nulls == nil || !nulls.Any() {
		return []byte{0}
	}
	out := []byte{1}
	tmp := make([]byte, binary.MaxVarintLen64)
	n := binary.PutUvarint(tmp, uint64(nulls.Len()))
	out = append(out, tmp[:n]...)
	for i := 0; i < nulls.Len(); i += 8 {
		var b byte
		for k := 0; k < 8 && i+k < nulls.Len(); k++ {
			if nulls.Get(i + k) {
				b |= 1 << k
			}
		}
		out = append(out, b)
	}
	return out
}

func decodeNulls(b []byte, n int) (*Bitmap, int, error) {
	if len(b) == 0 {
		return nil, 0, fmt.Errorf("storage: missing null marker")
	}
	if b[0] == 0 {
		bm := NewBitmap(0)
		for i := 0; i < n; i++ {
			bm.Append(false)
		}
		return bm, 1, nil
	}
	off := 1
	cnt, sz := binary.Uvarint(b[off:])
	if sz <= 0 || int(cnt) != n {
		return nil, 0, fmt.Errorf("storage: bad null bitmap length")
	}
	off += sz
	need := (n + 7) / 8
	if off+need > len(b) {
		return nil, 0, fmt.Errorf("storage: truncated null bitmap")
	}
	bm := NewBitmap(0)
	for i := 0; i < n; i++ {
		bm.Append(b[off+i/8]&(1<<(i%8)) != 0)
	}
	return bm, off + need, nil
}

// EncodeColumn serializes c, selecting the smallest applicable encoding.
// The frame is [type][encoding][uvarint rows][payload…][nulls].
func EncodeColumn(c Column) []byte {
	header := func(enc Encoding, n int) []byte {
		out := []byte{byte(c.Type()), byte(enc)}
		tmp := make([]byte, binary.MaxVarintLen64)
		sz := binary.PutUvarint(tmp, uint64(n))
		return append(out, tmp[:sz]...)
	}
	switch col := c.(type) {
	case *Int64Column:
		plain := encInt64Plain(col.Vals)
		delta := encInt64Delta(col.Vals)
		rle := encInt64RLE(col.Vals)
		enc, payload := EncPlain, plain
		if len(delta) < len(payload) {
			enc, payload = EncDelta, delta
		}
		if len(rle) < len(payload) {
			enc, payload = EncRLE, rle
		}
		out := header(enc, len(col.Vals))
		out = append(out, payload...)
		return append(out, encodeNulls(col.Nulls)...)
	case *Float64Column:
		plain := encFloat64Plain(col.Vals)
		xor := encFloat64XOR(col.Vals)
		enc, payload := EncPlain, plain
		if len(xor) < len(payload) {
			enc, payload = EncXOR, xor
		}
		out := header(enc, len(col.Vals))
		out = append(out, payload...)
		return append(out, encodeNulls(col.Nulls)...)
	case *StringColumn:
		out := header(EncDict, len(col.Codes))
		tmp := make([]byte, binary.MaxVarintLen64)
		sz := binary.PutUvarint(tmp, uint64(len(col.Dict)))
		out = append(out, tmp[:sz]...)
		for _, s := range col.Dict {
			sz = binary.PutUvarint(tmp, uint64(len(s)))
			out = append(out, tmp[:sz]...)
			out = append(out, s...)
		}
		for _, code := range col.Codes {
			sz = binary.PutUvarint(tmp, uint64(code))
			out = append(out, tmp[:sz]...)
		}
		return append(out, encodeNulls(col.Nulls)...)
	case *BoolColumn:
		n := col.Len()
		out := header(EncPlain, n)
		for i := 0; i < n; i += 8 {
			var b byte
			for k := 0; k < 8 && i+k < n; k++ {
				if col.Vals.Get(i + k) {
					b |= 1 << k
				}
			}
			out = append(out, b)
		}
		return append(out, encodeNulls(col.Nulls)...)
	}
	panic(fmt.Sprintf("storage: unknown column %T", c))
}

// DecodeColumn reverses EncodeColumn.
func DecodeColumn(b []byte) (Column, error) {
	if len(b) < 3 {
		return nil, fmt.Errorf("storage: column frame too short")
	}
	typ := ColType(b[0])
	enc := Encoding(b[1])
	n64, sz := binary.Uvarint(b[2:])
	if sz <= 0 {
		return nil, fmt.Errorf("storage: bad row count")
	}
	n := int(n64)
	body := b[2+sz:]
	switch typ {
	case TypeInt64:
		// Payload length is implicit for varint encodings: find the split
		// by decoding. We locate the nulls trailer by decoding from the end
		// is fragile; instead each int encoding decodes greedily and
		// reports the bytes it consumed via re-encode length.
		var vals []int64
		var consumed int
		var err error
		switch enc {
		case EncPlain:
			if len(body) < 8*n {
				return nil, fmt.Errorf("storage: truncated plain payload")
			}
			vals, err = decInt64Plain(body[:8*n], n)
			consumed = 8 * n
		case EncDelta:
			vals, consumed, err = decInt64DeltaCount(body, n)
		case EncRLE:
			vals, consumed, err = decInt64RLECount(body, n)
		default:
			return nil, fmt.Errorf("storage: bad int encoding %s", enc)
		}
		if err != nil {
			return nil, err
		}
		nulls, _, err := decodeNulls(body[consumed:], n)
		if err != nil {
			return nil, err
		}
		return &Int64Column{Vals: vals, Nulls: nulls}, nil
	case TypeFloat64:
		var vals []float64
		var consumed int
		var err error
		switch enc {
		case EncPlain:
			if len(body) < 8*n {
				return nil, fmt.Errorf("storage: truncated plain payload")
			}
			vals, err = decFloat64Plain(body[:8*n], n)
			consumed = 8 * n
		case EncXOR:
			vals, consumed, err = decFloat64XORCount(body, n)
		default:
			return nil, fmt.Errorf("storage: bad float encoding %s", enc)
		}
		if err != nil {
			return nil, err
		}
		nulls, _, err := decodeNulls(body[consumed:], n)
		if err != nil {
			return nil, err
		}
		return &Float64Column{Vals: vals, Nulls: nulls}, nil
	case TypeString:
		if enc != EncDict {
			return nil, fmt.Errorf("storage: bad string encoding %s", enc)
		}
		off := 0
		dn, sz := binary.Uvarint(body[off:])
		if sz <= 0 {
			return nil, fmt.Errorf("storage: bad dictionary size")
		}
		off += sz
		col := NewStringColumn()
		dict := make([]string, dn)
		for i := range dict {
			l, sz := binary.Uvarint(body[off:])
			if sz <= 0 || off+sz+int(l) > len(body) {
				return nil, fmt.Errorf("storage: truncated dictionary entry %d", i)
			}
			off += sz
			dict[i] = string(body[off : off+int(l)])
			off += int(l)
		}
		codes := make([]uint32, n)
		for i := 0; i < n; i++ {
			c64, sz := binary.Uvarint(body[off:])
			if sz <= 0 || c64 >= dn && !(dn == 0 && c64 == 0) {
				return nil, fmt.Errorf("storage: bad code at row %d", i)
			}
			off += sz
			codes[i] = uint32(c64)
		}
		nulls, _, err := decodeNulls(body[off:], n)
		if err != nil {
			return nil, err
		}
		col.Codes = codes
		col.Dict = dict
		col.Nulls = nulls
		for i, s := range dict {
			col.index[s] = uint32(i)
		}
		return col, nil
	case TypeBool:
		need := (n + 7) / 8
		if len(body) < need {
			return nil, fmt.Errorf("storage: truncated bool payload")
		}
		col := NewBoolColumn()
		nulls, _, err := decodeNulls(body[need:], n)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			col.Vals.Append(body[i/8]&(1<<(i%8)) != 0)
		}
		col.Nulls = nulls
		return col, nil
	}
	return nil, fmt.Errorf("storage: unknown column type %d", typ)
}

func decInt64DeltaCount(b []byte, n int) ([]int64, int, error) {
	vals := make([]int64, n)
	var prev int64
	off := 0
	for i := 0; i < n; i++ {
		d, sz := binary.Varint(b[off:])
		if sz <= 0 {
			return nil, 0, fmt.Errorf("storage: truncated delta payload at row %d", i)
		}
		off += sz
		prev += d
		vals[i] = prev
	}
	return vals, off, nil
}

func decInt64RLECount(b []byte, n int) ([]int64, int, error) {
	vals := make([]int64, 0, n)
	off := 0
	for len(vals) < n {
		v, sz := binary.Varint(b[off:])
		if sz <= 0 {
			return nil, 0, fmt.Errorf("storage: truncated RLE value")
		}
		off += sz
		run, sz := binary.Uvarint(b[off:])
		if sz <= 0 {
			return nil, 0, fmt.Errorf("storage: truncated RLE run")
		}
		off += sz
		if len(vals)+int(run) > n {
			return nil, 0, fmt.Errorf("storage: RLE overflow")
		}
		for k := uint64(0); k < run; k++ {
			vals = append(vals, v)
		}
	}
	return vals, off, nil
}

func decFloat64XORCount(b []byte, n int) ([]float64, int, error) {
	vals := make([]float64, n)
	var prev uint64
	off := 0
	word := make([]byte, 8)
	for i := 0; i < n; i++ {
		if off >= len(b) {
			return nil, 0, fmt.Errorf("storage: truncated XOR payload at row %d", i)
		}
		h := b[off]
		off++
		lead := int(h >> 4)
		trail := int(h & 0x0f)
		if lead == 8 {
			vals[i] = math.Float64frombits(prev)
			continue
		}
		mid := 8 - lead - trail
		if mid <= 0 || off+mid > len(b) {
			return nil, 0, fmt.Errorf("storage: corrupt XOR header at row %d", i)
		}
		for k := range word {
			word[k] = 0
		}
		copy(word[lead:8-trail], b[off:off+mid])
		off += mid
		prev ^= binary.BigEndian.Uint64(word)
		vals[i] = math.Float64frombits(prev)
	}
	return vals, off, nil
}
