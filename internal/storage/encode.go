package storage

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoding identifies the physical layout of a serialized column.
type Encoding uint8

// Encodings. EncodeColumn picks the smallest candidate for the column's
// type; DecodeColumn dispatches on the stored tag.
const (
	EncPlain  Encoding = iota
	EncDelta           // zig-zag varint deltas (sorted/sequential ints)
	EncRLE             // run-length (low-cardinality ints)
	EncDict            // dictionary codes + string table
	EncXOR             // byte-aligned XOR chaining for floats
	EncLinear          // linear-law fit + XOR residuals vs the fitted line
)

func (e Encoding) String() string {
	switch e {
	case EncPlain:
		return "plain"
	case EncDelta:
		return "delta"
	case EncRLE:
		return "rle"
	case EncDict:
		return "dict"
	case EncXOR:
		return "xor"
	case EncLinear:
		return "linear"
	}
	return fmt.Sprintf("Encoding(%d)", uint8(e))
}

// --- int64 payloads ---

func encInt64Plain(vals []int64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], uint64(v))
	}
	return out
}

func decInt64Plain(b []byte, n int) ([]int64, error) {
	if len(b) != 8*n {
		return nil, fmt.Errorf("storage: plain int payload %d bytes, want %d", len(b), 8*n)
	}
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return vals, nil
}

func encInt64Delta(vals []int64) []byte {
	buf := make([]byte, 0, len(vals)*2)
	var prev int64
	tmp := make([]byte, binary.MaxVarintLen64)
	for _, v := range vals {
		n := binary.PutVarint(tmp, v-prev)
		buf = append(buf, tmp[:n]...)
		prev = v
	}
	return buf
}

func encInt64RLE(vals []int64) []byte {
	var buf []byte
	tmp := make([]byte, binary.MaxVarintLen64)
	i := 0
	for i < len(vals) {
		j := i
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		n := binary.PutVarint(tmp, vals[i])
		buf = append(buf, tmp[:n]...)
		n = binary.PutUvarint(tmp, uint64(j-i))
		buf = append(buf, tmp[:n]...)
		i = j
	}
	return buf
}

// --- float64 payloads ---

func encFloat64Plain(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

func decFloat64Plain(b []byte, n int) ([]float64, error) {
	if len(b) != 8*n {
		return nil, fmt.Errorf("storage: plain float payload %d bytes, want %d", len(b), 8*n)
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return vals, nil
}

// appendPackedWord appends one XOR word: a zero word costs one byte (0x88,
// lead=8 encoded as 8<<4), otherwise a header byte packs the leading- and
// trailing-zero byte counts followed by the nonzero middle bytes. word is an
// 8-byte scratch buffer the caller reuses across values.
func appendPackedWord(buf []byte, x uint64, word []byte) []byte {
	if x == 0 {
		return append(buf, 0x88)
	}
	binary.BigEndian.PutUint64(word, x)
	lead := 0
	for lead < 8 && word[lead] == 0 {
		lead++
	}
	trail := 0
	for trail < 8-lead && word[7-trail] == 0 {
		trail++
	}
	buf = append(buf, byte(lead<<4|trail))
	return append(buf, word[lead:8-trail]...)
}

// readPackedWord reads one appendPackedWord frame starting at b[off],
// returning the word and the bytes consumed. word is 8 bytes of scratch.
func readPackedWord(b []byte, off int, word []byte) (uint64, int, error) {
	if off >= len(b) {
		return 0, 0, fmt.Errorf("storage: truncated XOR payload")
	}
	h := b[off]
	lead := int(h >> 4)
	trail := int(h & 0x0f)
	if lead == 8 {
		return 0, 1, nil
	}
	mid := 8 - lead - trail
	if mid <= 0 || off+1+mid > len(b) {
		return 0, 0, fmt.Errorf("storage: corrupt XOR header")
	}
	for k := range word {
		word[k] = 0
	}
	copy(word[lead:8-trail], b[off+1:off+1+mid])
	return binary.BigEndian.Uint64(word), 1 + mid, nil
}

// encFloat64XOR chains values through XOR with the previous value and stores
// only the nonzero middle bytes of each XOR word, with a header byte packing
// the leading- and trailing-zero byte counts. Repeated values cost one byte.
func encFloat64XOR(vals []float64) []byte {
	var buf []byte
	var prev uint64
	word := make([]byte, 8)
	for _, v := range vals {
		bits := math.Float64bits(v)
		buf = appendPackedWord(buf, bits^prev, word)
		prev = bits
	}
	return buf
}

// EncodeXORFloats packs a float64 slice with the XOR-chaining codec the
// column encoder uses for EncXOR frames (Gorilla-style: consecutive equal or
// close values share high bits, so their XOR has few nonzero bytes). It is
// exported for residual streams — internal/compress stores model residuals
// through it — so the engine has exactly one XOR float implementation.
func EncodeXORFloats(vals []float64) []byte { return encFloat64XOR(vals) }

// DecodeXORFloats reverses EncodeXORFloats for exactly n values, returning
// the values and the payload bytes consumed.
func DecodeXORFloats(b []byte, n int) ([]float64, int, error) {
	return decFloat64XORCount(b, n)
}

// linPred evaluates the fitted line a + b·i. math.FMA keeps the evaluation
// bit-identical across architectures (the compiler may otherwise fuse or not
// fuse the multiply-add differently per platform), which EncLinear's
// bit-exact reconstruction depends on: encoder and decoder must predict the
// same float for frames to round-trip across machines.
func linPred(a, b float64, i int) float64 { return math.FMA(b, float64(i), a) }

// fitLinear least-squares fits vals against the row index, ignoring NaN/Inf.
// The parameters are stored in the frame, so the fit itself only affects
// compression ratio, never correctness.
func fitLinear(vals []float64) (a, b float64) {
	var n, sx, sy, sxx, sxy float64
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		x := float64(i)
		n++
		sx += x
		sy += v
		sxx += x * x
		sxy += x * v
	}
	if n < 2 {
		return 0, 0
	}
	det := n*sxx - sx*sx
	if det == 0 {
		return sy / n, 0
	}
	b = (n*sxy - sx*sy) / det
	a = (sy - b*sx) / n
	if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
		return 0, 0
	}
	return a, b
}

// encFloat64Linear is the paper-flavored law-as-compressor encoding: fit a
// linear law to the column, store the two parameters, then store each value
// as the XOR of its bits against the prediction's bits — lossless for every
// input (NaN payloads included), and near-free when the data follows the
// law. Returns nil when the column is too short to be worth a 16-byte
// parameter header.
func encFloat64Linear(vals []float64) []byte {
	if len(vals) < 4 {
		return nil
	}
	a, b := fitLinear(vals)
	buf := make([]byte, 16, 16+len(vals))
	binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(a))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(b))
	word := make([]byte, 8)
	for i, v := range vals {
		x := math.Float64bits(v) ^ math.Float64bits(linPred(a, b, i))
		buf = appendPackedWord(buf, x, word)
	}
	return buf
}

func decFloat64LinearCount(b []byte, n int) ([]float64, int, error) {
	if len(b) < 16 {
		return nil, 0, fmt.Errorf("storage: truncated linear header")
	}
	a := math.Float64frombits(binary.LittleEndian.Uint64(b[0:]))
	slope := math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	off := 16
	vals := make([]float64, n)
	word := make([]byte, 8)
	for i := 0; i < n; i++ {
		x, sz, err := readPackedWord(b, off, word)
		if err != nil {
			return nil, 0, fmt.Errorf("storage: linear payload row %d: %w", i, err)
		}
		off += sz
		vals[i] = math.Float64frombits(math.Float64bits(linPred(a, slope, i)) ^ x)
	}
	return vals, off, nil
}

// --- column framing ---

func encodeNulls(nulls *Bitmap) []byte {
	if nulls == nil || !nulls.Any() {
		return []byte{0}
	}
	out := []byte{1}
	tmp := make([]byte, binary.MaxVarintLen64)
	n := binary.PutUvarint(tmp, uint64(nulls.Len()))
	out = append(out, tmp[:n]...)
	for i := 0; i < nulls.Len(); i += 8 {
		var b byte
		for k := 0; k < 8 && i+k < nulls.Len(); k++ {
			if nulls.Get(i + k) {
				b |= 1 << k
			}
		}
		out = append(out, b)
	}
	return out
}

func decodeNulls(b []byte, n int) (*Bitmap, int, error) {
	if len(b) == 0 {
		return nil, 0, fmt.Errorf("storage: missing null marker")
	}
	if b[0] == 0 {
		bm := NewBitmap(0)
		for i := 0; i < n; i++ {
			bm.Append(false)
		}
		return bm, 1, nil
	}
	off := 1
	cnt, sz := binary.Uvarint(b[off:])
	if sz <= 0 || int(cnt) != n {
		return nil, 0, fmt.Errorf("storage: bad null bitmap length")
	}
	off += sz
	need := (n + 7) / 8
	if off+need > len(b) {
		return nil, 0, fmt.Errorf("storage: truncated null bitmap")
	}
	bm := NewBitmap(0)
	for i := 0; i < n; i++ {
		bm.Append(b[off+i/8]&(1<<(i%8)) != 0)
	}
	return bm, off + need, nil
}

// EncodeColumn serializes c, selecting the smallest applicable encoding.
// The frame is [type][encoding][uvarint rows][payload…][nulls].
func EncodeColumn(c Column) []byte {
	header := func(enc Encoding, n int) []byte {
		out := []byte{byte(c.Type()), byte(enc)}
		tmp := make([]byte, binary.MaxVarintLen64)
		sz := binary.PutUvarint(tmp, uint64(n))
		return append(out, tmp[:sz]...)
	}
	switch col := c.(type) {
	case *Int64Column:
		plain := encInt64Plain(col.Vals)
		delta := encInt64Delta(col.Vals)
		rle := encInt64RLE(col.Vals)
		enc, payload := EncPlain, plain
		if len(delta) < len(payload) {
			enc, payload = EncDelta, delta
		}
		if len(rle) < len(payload) {
			enc, payload = EncRLE, rle
		}
		out := header(enc, len(col.Vals))
		out = append(out, payload...)
		return append(out, encodeNulls(col.Nulls)...)
	case *Float64Column:
		plain := encFloat64Plain(col.Vals)
		xor := encFloat64XOR(col.Vals)
		enc, payload := EncPlain, plain
		if len(xor) < len(payload) {
			enc, payload = EncXOR, xor
		}
		if linear := encFloat64Linear(col.Vals); linear != nil && len(linear) < len(payload) {
			enc, payload = EncLinear, linear
		}
		out := header(enc, len(col.Vals))
		out = append(out, payload...)
		return append(out, encodeNulls(col.Nulls)...)
	case *StringColumn:
		out := header(EncDict, len(col.Codes))
		tmp := make([]byte, binary.MaxVarintLen64)
		sz := binary.PutUvarint(tmp, uint64(len(col.Dict)))
		out = append(out, tmp[:sz]...)
		for _, s := range col.Dict {
			sz = binary.PutUvarint(tmp, uint64(len(s)))
			out = append(out, tmp[:sz]...)
			out = append(out, s...)
		}
		for _, code := range col.Codes {
			sz = binary.PutUvarint(tmp, uint64(code))
			out = append(out, tmp[:sz]...)
		}
		return append(out, encodeNulls(col.Nulls)...)
	case *BoolColumn:
		n := col.Len()
		out := header(EncPlain, n)
		for i := 0; i < n; i += 8 {
			var b byte
			for k := 0; k < 8 && i+k < n; k++ {
				if col.Vals.Get(i + k) {
					b |= 1 << k
				}
			}
			out = append(out, b)
		}
		return append(out, encodeNulls(col.Nulls)...)
	}
	panic(fmt.Sprintf("storage: unknown column %T", c))
}

// maxDecodeRows bounds the row count a column frame may claim, matching the
// chunk-size ceiling the table layer enforces when persisting. Anything
// larger is corruption, rejected before it can size an allocation.
const maxDecodeRows = 1 << 31

// DecodeColumn reverses EncodeColumn.
func DecodeColumn(b []byte) (Column, error) {
	if len(b) < 3 {
		return nil, fmt.Errorf("storage: column frame too short")
	}
	typ := ColType(b[0])
	enc := Encoding(b[1])
	n64, sz := binary.Uvarint(b[2:])
	if sz <= 0 {
		return nil, fmt.Errorf("storage: bad row count")
	}
	if n64 > maxDecodeRows {
		return nil, fmt.Errorf("storage: implausible row count %d", n64)
	}
	n := int(n64)
	body := b[2+sz:]
	// Every encoding except RLE spends at least one payload byte per row, so
	// a row count exceeding the remaining frame is corrupt. Checking before
	// the decoders run keeps allocation proportional to the input, not to an
	// attacker-chosen header. (RLE allocates with a clamped capacity instead.)
	if enc != EncRLE && typ != TypeBool && n > len(body) {
		return nil, fmt.Errorf("storage: row count %d exceeds frame", n)
	}
	switch typ {
	case TypeInt64:
		// Payload length is implicit for varint encodings: find the split
		// by decoding. We locate the nulls trailer by decoding from the end
		// is fragile; instead each int encoding decodes greedily and
		// reports the bytes it consumed via re-encode length.
		var vals []int64
		var consumed int
		var err error
		switch enc {
		case EncPlain:
			if len(body) < 8*n {
				return nil, fmt.Errorf("storage: truncated plain payload")
			}
			vals, err = decInt64Plain(body[:8*n], n)
			consumed = 8 * n
		case EncDelta:
			vals, consumed, err = decInt64DeltaCount(body, n)
		case EncRLE:
			vals, consumed, err = decInt64RLECount(body, n)
		default:
			return nil, fmt.Errorf("storage: bad int encoding %s", enc)
		}
		if err != nil {
			return nil, err
		}
		nulls, _, err := decodeNulls(body[consumed:], n)
		if err != nil {
			return nil, err
		}
		return &Int64Column{Vals: vals, Nulls: nulls}, nil
	case TypeFloat64:
		var vals []float64
		var consumed int
		var err error
		switch enc {
		case EncPlain:
			if len(body) < 8*n {
				return nil, fmt.Errorf("storage: truncated plain payload")
			}
			vals, err = decFloat64Plain(body[:8*n], n)
			consumed = 8 * n
		case EncXOR:
			vals, consumed, err = decFloat64XORCount(body, n)
		case EncLinear:
			vals, consumed, err = decFloat64LinearCount(body, n)
		default:
			return nil, fmt.Errorf("storage: bad float encoding %s", enc)
		}
		if err != nil {
			return nil, err
		}
		nulls, _, err := decodeNulls(body[consumed:], n)
		if err != nil {
			return nil, err
		}
		return &Float64Column{Vals: vals, Nulls: nulls}, nil
	case TypeString:
		if enc != EncDict {
			return nil, fmt.Errorf("storage: bad string encoding %s", enc)
		}
		off := 0
		dn, sz := binary.Uvarint(body[off:])
		if sz <= 0 {
			return nil, fmt.Errorf("storage: bad dictionary size")
		}
		if dn > uint64(len(body)) { // each entry needs ≥1 length byte
			return nil, fmt.Errorf("storage: implausible dictionary size %d", dn)
		}
		off += sz
		col := NewStringColumn()
		dict := make([]string, dn)
		for i := range dict {
			l, sz := binary.Uvarint(body[off:])
			if sz <= 0 || off+sz+int(l) > len(body) {
				return nil, fmt.Errorf("storage: truncated dictionary entry %d", i)
			}
			off += sz
			dict[i] = string(body[off : off+int(l)])
			off += int(l)
		}
		codes := make([]uint32, n)
		for i := 0; i < n; i++ {
			c64, sz := binary.Uvarint(body[off:])
			if sz <= 0 || c64 >= dn && !(dn == 0 && c64 == 0) {
				return nil, fmt.Errorf("storage: bad code at row %d", i)
			}
			off += sz
			codes[i] = uint32(c64)
		}
		nulls, _, err := decodeNulls(body[off:], n)
		if err != nil {
			return nil, err
		}
		col.Codes = codes
		col.Dict = dict
		col.Nulls = nulls
		for i, s := range dict {
			col.index[s] = uint32(i)
		}
		return col, nil
	case TypeBool:
		need := (n + 7) / 8
		if len(body) < need {
			return nil, fmt.Errorf("storage: truncated bool payload")
		}
		col := NewBoolColumn()
		nulls, _, err := decodeNulls(body[need:], n)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			col.Vals.Append(body[i/8]&(1<<(i%8)) != 0)
		}
		col.Nulls = nulls
		return col, nil
	}
	return nil, fmt.Errorf("storage: unknown column type %d", typ)
}

func decInt64DeltaCount(b []byte, n int) ([]int64, int, error) {
	vals := make([]int64, n)
	var prev int64
	off := 0
	for i := 0; i < n; i++ {
		d, sz := binary.Varint(b[off:])
		if sz <= 0 {
			return nil, 0, fmt.Errorf("storage: truncated delta payload at row %d", i)
		}
		off += sz
		prev += d
		vals[i] = prev
	}
	return vals, off, nil
}

func decInt64RLECount(b []byte, n int) ([]int64, int, error) {
	// Runs compress, so n may legitimately dwarf len(b); clamp the upfront
	// capacity to the input size and let append grow on real data.
	cap0 := n
	if cap0 > len(b) {
		cap0 = len(b)
	}
	vals := make([]int64, 0, cap0)
	off := 0
	for len(vals) < n {
		v, sz := binary.Varint(b[off:])
		if sz <= 0 {
			return nil, 0, fmt.Errorf("storage: truncated RLE value")
		}
		off += sz
		run, sz := binary.Uvarint(b[off:])
		if sz <= 0 {
			return nil, 0, fmt.Errorf("storage: truncated RLE run")
		}
		off += sz
		if len(vals)+int(run) > n {
			return nil, 0, fmt.Errorf("storage: RLE overflow")
		}
		for k := uint64(0); k < run; k++ {
			vals = append(vals, v)
		}
	}
	return vals, off, nil
}

func decFloat64XORCount(b []byte, n int) ([]float64, int, error) {
	vals := make([]float64, n)
	var prev uint64
	off := 0
	word := make([]byte, 8)
	for i := 0; i < n; i++ {
		x, sz, err := readPackedWord(b, off, word)
		if err != nil {
			return nil, 0, fmt.Errorf("storage: XOR payload row %d: %w", i, err)
		}
		off += sz
		prev ^= x
		vals[i] = math.Float64frombits(prev)
	}
	return vals, off, nil
}
