package storage

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"datalaws/internal/expr"
)

// buildFuzzColumn interprets raw fuzz bytes as an append program: the first
// byte picks the column type, then each step consumes a tag byte (NULL vs
// value, and for RLE-friendliness a "repeat previous" mode) plus a value
// payload. Every byte string maps to some valid column, so the fuzzer
// explores encoder choice boundaries (sequential vs RLE vs raw ints, XOR vs
// linear floats, dictionary widths) rather than just rejecting inputs.
func buildFuzzColumn(data []byte) Column {
	if len(data) == 0 {
		return NewInt64Column()
	}
	kind, data := data[0]%4, data[1:]
	take := func(n int) []byte {
		if len(data) < n {
			pad := make([]byte, n)
			copy(pad, data)
			data = nil
			return pad
		}
		v := data[:n]
		data = data[n:]
		return v
	}
	switch kind {
	case 0:
		col := NewInt64Column()
		var prev, stride int64
		for len(data) > 0 {
			tag := take(1)[0]
			switch {
			case tag%8 == 0:
				col.AppendNull()
			case tag%8 < 4: // repeat-with-stride runs exercise RLE/sequential
				for i := byte(0); i < tag%8; i++ {
					prev += stride
					col.Append(prev)
				}
			default:
				prev = int64(binary.LittleEndian.Uint64(take(8)))
				stride = int64(tag>>4) - 7
				col.Append(prev)
			}
		}
		return col
	case 1:
		col := NewFloat64Column()
		var prev float64
		for len(data) > 0 {
			tag := take(1)[0]
			switch {
			case tag%8 == 0:
				col.AppendNull()
			case tag%8 < 4: // repeats hit the XOR codec's zero-delta path
				for i := byte(0); i < tag%8; i++ {
					col.Append(prev)
				}
			default:
				// Raw bit pattern: NaN payloads, ±Inf, -0 and subnormals all
				// reachable, so round-trips must be bit-exact, not Value-equal.
				prev = math.Float64frombits(binary.LittleEndian.Uint64(take(8)))
				col.Append(prev)
			}
		}
		return col
	case 2:
		col := NewStringColumn()
		for len(data) > 0 {
			tag := take(1)[0]
			if tag%8 == 0 {
				col.AppendNull()
				continue
			}
			col.Append(string(take(int(tag % 8))))
		}
		return col
	default:
		col := NewBoolColumn()
		for len(data) > 0 {
			tag := take(1)[0]
			switch {
			case tag%4 == 0:
				col.AppendNull()
			default:
				col.Append(tag%2 == 1)
			}
		}
		return col
	}
}

func sameColumn(t *testing.T, a, b Column) {
	t.Helper()
	if a.Type() != b.Type() || a.Len() != b.Len() {
		t.Fatalf("shape: %v/%d vs %v/%d", a.Type(), a.Len(), b.Type(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.IsNull(i) != b.IsNull(i) {
			t.Fatalf("row %d: null %v vs %v", i, a.IsNull(i), b.IsNull(i))
		}
		if a.IsNull(i) {
			continue
		}
		av, bv := a.Value(i), b.Value(i)
		if ac, ok := a.(*Float64Column); ok {
			bits := math.Float64bits(ac.Vals[i])
			if got := math.Float64bits(b.(*Float64Column).Vals[i]); got != bits {
				t.Fatalf("row %d: float bits %016x vs %016x", i, bits, got)
			}
			continue
		}
		if av.K != bv.K || av.String() != bv.String() {
			t.Fatalf("row %d: %v (%s) vs %v (%s)", i, av, av.K, bv, bv.K)
		}
	}
}

// FuzzEncodeColumn drives EncodeColumn/DecodeColumn from two directions:
// columns built from the input must round-trip bit-for-bit (and re-encode to
// the identical frame — the encoders are deterministic), and the raw input
// fed straight into DecodeColumn must error cleanly rather than panic.
func FuzzEncodeColumn(f *testing.F) {
	f.Add([]byte{})                                            // empty input → empty column
	f.Add([]byte{0})                                           // empty int column
	f.Add([]byte{1})                                           // empty float column
	f.Add([]byte{0, 0, 8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 8, 0})    // ints with NULLs interleaved
	f.Add([]byte{0, 9, 1, 2, 3, 1, 2, 3})                      // single-run RLE: one value, stride 0 repeats
	f.Add([]byte{1, 12, 0, 0, 0, 0, 0, 0, 248, 127, 1, 1, 1})  // +Inf then zero-delta repeats
	f.Add([]byte{1, 0, 0, 0})                                  // all-NULL float column
	f.Add([]byte{2, 3, 'a', 'b', 'c', 3, 'a', 'b', 'c', 0, 5}) // dict strings with dup + NULL
	f.Add([]byte{3, 1, 3, 0, 1, 3})                            // bools with NULL
	f.Fuzz(func(t *testing.T, data []byte) {
		col := buildFuzzColumn(data)
		frame := EncodeColumn(col)
		got, err := DecodeColumn(frame)
		if err != nil {
			t.Fatalf("decode of fresh encode failed: %v", err)
		}
		sameColumn(t, col, got)
		if re := EncodeColumn(got); !bytes.Equal(frame, re) {
			t.Fatalf("re-encode differs: %d vs %d bytes", len(frame), len(re))
		}
		// Decoded columns stay appendable (string dict index must rebuild).
		if err := got.AppendValue(expr.Null()); err != nil {
			t.Fatalf("append to decoded column: %v", err)
		}
		if !got.IsNull(got.Len() - 1) {
			t.Fatal("appended NULL not readable on decoded column")
		}

		// Adversarial direction: arbitrary bytes must never panic the decoder.
		// Skip frames whose header claims a huge row count: RLE runs make
		// them decodable in principle, but materializing millions of rows per
		// iteration would stall the fuzzer without covering new code.
		if n, sz := binary.Uvarint(data[min(2, len(data)):]); sz <= 0 || n <= 1<<20 {
			if c, err := DecodeColumn(data); err == nil {
				// Whatever it accepted must be internally consistent.
				_ = EncodeColumn(c)
			}
		}
	})
}
